//! Offline stand-in for the `crossbeam` crate.
//!
//! Implements the subset the workspace uses — `queue::{SegQueue,
//! ArrayQueue}`, `deque::{Worker, Stealer, Injector, Steal}`,
//! `utils::Backoff` — on a short-spin mutex so the simulated-fabric hot
//! paths stay syscall-free in the common (uncontended) case.

use std::cell::Cell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Minimal test-and-test-and-set spinlock used by the queue types below.
struct Spin<T> {
    locked: AtomicBool,
    value: std::cell::UnsafeCell<T>,
}

unsafe impl<T: Send> Send for Spin<T> {}
unsafe impl<T: Send> Sync for Spin<T> {}

impl<T> Spin<T> {
    fn new(value: T) -> Self {
        Self { locked: AtomicBool::new(false), value: std::cell::UnsafeCell::new(value) }
    }

    fn with<R>(&self, f: impl FnOnce(&mut T) -> R) -> R {
        let mut spins = 0u32;
        loop {
            if !self.locked.swap(true, Ordering::Acquire) {
                break;
            }
            while self.locked.load(Ordering::Relaxed) {
                spins += 1;
                if spins < 64 {
                    std::hint::spin_loop();
                } else {
                    std::thread::yield_now();
                }
            }
        }
        // Safety: the `locked` flag gives us exclusive access.
        let out = f(unsafe { &mut *self.value.get() });
        self.locked.store(false, Ordering::Release);
        out
    }
}

pub mod queue {
    use super::*;

    /// Unbounded MPMC FIFO queue (stand-in for crossbeam's segmented
    /// lock-free queue; here a spinlocked ring).
    pub struct SegQueue<T> {
        inner: Spin<VecDeque<T>>,
    }

    impl<T> SegQueue<T> {
        pub fn new() -> Self {
            Self { inner: Spin::new(VecDeque::new()) }
        }

        pub fn push(&self, value: T) {
            self.inner.with(|q| q.push_back(value));
        }

        pub fn pop(&self) -> Option<T> {
            self.inner.with(|q| q.pop_front())
        }

        pub fn len(&self) -> usize {
            self.inner.with(|q| q.len())
        }

        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Default for SegQueue<T> {
        fn default() -> Self {
            Self::new()
        }
    }

    /// Bounded MPMC FIFO queue (stand-in for crossbeam's lock-free array
    /// queue). Capacity is reserved at construction and never exceeded,
    /// so push/pop are allocation-free for the queue's whole lifetime.
    pub struct ArrayQueue<T> {
        inner: Spin<VecDeque<T>>,
        cap: usize,
    }

    impl<T> ArrayQueue<T> {
        /// Creates a queue holding at most `cap` items.
        ///
        /// # Panics
        /// Panics if `cap` is zero (matches crossbeam).
        pub fn new(cap: usize) -> Self {
            assert!(cap > 0, "ArrayQueue capacity must be non-zero");
            Self { inner: Spin::new(VecDeque::with_capacity(cap)), cap }
        }

        /// Pushes `value`, handing it back if the queue is full.
        pub fn push(&self, value: T) -> Result<(), T> {
            self.inner.with(|q| {
                if q.len() >= self.cap {
                    Err(value)
                } else {
                    q.push_back(value);
                    Ok(())
                }
            })
        }

        pub fn pop(&self) -> Option<T> {
            self.inner.with(|q| q.pop_front())
        }

        pub fn len(&self) -> usize {
            self.inner.with(|q| q.len())
        }

        pub fn capacity(&self) -> usize {
            self.cap
        }

        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        pub fn is_full(&self) -> bool {
            self.len() >= self.cap
        }
    }
}

pub mod deque {
    use super::*;

    /// Result of a steal attempt.
    pub enum Steal<T> {
        Empty,
        Success(T),
        Retry,
    }

    impl<T> Steal<T> {
        pub fn success(self) -> Option<T> {
            match self {
                Steal::Success(v) => Some(v),
                _ => None,
            }
        }

        pub fn is_retry(&self) -> bool {
            matches!(self, Steal::Retry)
        }

        pub fn is_empty(&self) -> bool {
            matches!(self, Steal::Empty)
        }

        pub fn is_success(&self) -> bool {
            matches!(self, Steal::Success(_))
        }
    }

    /// Owner-side handle of a work-stealing deque.
    pub struct Worker<T> {
        inner: Arc<Spin<VecDeque<T>>>,
    }

    impl<T> Worker<T> {
        pub fn new_fifo() -> Self {
            Self { inner: Arc::new(Spin::new(VecDeque::new())) }
        }

        pub fn new_lifo() -> Self {
            Self::new_fifo()
        }

        pub fn push(&self, value: T) {
            self.inner.with(|q| q.push_back(value));
        }

        pub fn pop(&self) -> Option<T> {
            self.inner.with(|q| q.pop_front())
        }

        pub fn is_empty(&self) -> bool {
            self.inner.with(|q| q.is_empty())
        }

        pub fn stealer(&self) -> Stealer<T> {
            Stealer { inner: self.inner.clone() }
        }
    }

    /// Thief-side handle of a work-stealing deque.
    pub struct Stealer<T> {
        inner: Arc<Spin<VecDeque<T>>>,
    }

    impl<T> Clone for Stealer<T> {
        fn clone(&self) -> Self {
            Self { inner: self.inner.clone() }
        }
    }

    impl<T> Stealer<T> {
        pub fn steal(&self) -> Steal<T> {
            match self.inner.with(|q| q.pop_front()) {
                Some(v) => Steal::Success(v),
                None => Steal::Empty,
            }
        }
    }

    /// Global FIFO injector queue.
    pub struct Injector<T> {
        inner: Spin<VecDeque<T>>,
    }

    impl<T> Injector<T> {
        pub fn new() -> Self {
            Self { inner: Spin::new(VecDeque::new()) }
        }

        pub fn push(&self, value: T) {
            self.inner.with(|q| q.push_back(value));
        }

        pub fn steal(&self) -> Steal<T> {
            match self.inner.with(|q| q.pop_front()) {
                Some(v) => Steal::Success(v),
                None => Steal::Empty,
            }
        }

        /// Steals a batch into `dest`, returning the first stolen item.
        pub fn steal_batch_and_pop(&self, dest: &Worker<T>) -> Steal<T> {
            let mut batch = self.inner.with(|q| {
                let n = (q.len() / 2 + 1).min(32).min(q.len());
                q.drain(..n).collect::<Vec<_>>()
            });
            if batch.is_empty() {
                return Steal::Empty;
            }
            let first = batch.remove(0);
            for item in batch {
                dest.push(item);
            }
            Steal::Success(first)
        }

        pub fn is_empty(&self) -> bool {
            self.inner.with(|q| q.is_empty())
        }
    }

    impl<T> Default for Injector<T> {
        fn default() -> Self {
            Self::new()
        }
    }
}

pub mod utils {
    use super::*;

    /// Exponential backoff for spin loops.
    pub struct Backoff {
        step: Cell<u32>,
    }

    const SPIN_LIMIT: u32 = 6;
    const YIELD_LIMIT: u32 = 10;

    impl Backoff {
        pub fn new() -> Self {
            Self { step: Cell::new(0) }
        }

        pub fn reset(&self) {
            self.step.set(0);
        }

        pub fn spin(&self) {
            for _ in 0..(1u32 << self.step.get().min(SPIN_LIMIT)) {
                std::hint::spin_loop();
            }
            if self.step.get() <= SPIN_LIMIT {
                self.step.set(self.step.get() + 1);
            }
        }

        pub fn snooze(&self) {
            if self.step.get() <= SPIN_LIMIT {
                for _ in 0..(1u32 << self.step.get()) {
                    std::hint::spin_loop();
                }
            } else {
                std::thread::yield_now();
            }
            if self.step.get() <= YIELD_LIMIT {
                self.step.set(self.step.get() + 1);
            }
        }

        pub fn is_completed(&self) -> bool {
            self.step.get() > YIELD_LIMIT
        }
    }

    impl Default for Backoff {
        fn default() -> Self {
            Self::new()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::deque::{Injector, Worker};
    use super::queue::{ArrayQueue, SegQueue};

    #[test]
    fn arrayqueue_bounds_and_fifo() {
        let q: ArrayQueue<u32> = ArrayQueue::new(2);
        assert!(q.is_empty());
        q.push(1).unwrap();
        q.push(2).unwrap();
        assert!(q.is_full());
        assert_eq!(q.push(3), Err(3));
        assert_eq!(q.pop(), Some(1));
        q.push(3).unwrap();
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
        assert_eq!(q.pop(), None);
        assert_eq!(q.capacity(), 2);
    }

    #[test]
    fn segqueue_fifo_mpmc() {
        let q = SegQueue::new();
        std::thread::scope(|s| {
            for t in 0..4 {
                let q = &q;
                s.spawn(move || {
                    for i in 0..1000 {
                        q.push(t * 1000 + i);
                    }
                });
            }
        });
        let mut seen = 0;
        while q.pop().is_some() {
            seen += 1;
        }
        assert_eq!(seen, 4000);
        assert!(q.is_empty());
    }

    #[test]
    fn deque_steal_paths() {
        let local = Worker::new_fifo();
        let inj = Injector::new();
        for i in 0..10 {
            inj.push(i);
        }
        let first = inj.steal_batch_and_pop(&local).success().unwrap();
        assert_eq!(first, 0);
        let stealer = local.stealer();
        let mut got = vec![first];
        while let Some(v) = local.pop().or_else(|| stealer.steal().success()) {
            got.push(v);
        }
        while let Some(v) = inj.steal().success() {
            got.push(v);
        }
        got.sort();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }
}
