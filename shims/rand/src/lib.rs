//! Offline stand-in for the `rand` crate (0.8-era API subset).
//!
//! Deterministic xoshiro256** generator seeded via splitmix64, with
//! `Rng::gen_range` over integer/float ranges and `gen_bool`. Only the
//! surface the workspace uses is implemented.

/// Low-level generator interface (object-safe).
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding interface.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// High-level sampling helpers.
pub trait Rng: RngCore {
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability out of range");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore> Rng for R {}

fn unit_f64(bits: u64) -> f64 {
    // 53 high bits -> uniform in [0, 1).
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A range from which a single value can be sampled.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
}

/// Types uniformly sampleable from a range. The single blanket
/// `SampleRange` impl below mirrors upstream rand so that type
/// inference flows from the use site into integer-literal ranges
/// (e.g. `slice[rng.gen_range(0..4)]` infers `usize`).
pub trait SampleUniform: Sized + PartialOrd {
    /// Uniform in `[lo, hi)` (`inclusive = false`) or `[lo, hi]`.
    fn sample_uniform(rng: &mut dyn FnMut() -> u64, lo: Self, hi: Self, inclusive: bool) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "empty range in gen_range");
        T::sample_uniform(&mut || rng.next_u64(), self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "empty range in gen_range");
        T::sample_uniform(&mut || rng.next_u64(), lo, hi, true)
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform(
                rng: &mut dyn FnMut() -> u64,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + inclusive as u128;
                let v = ((rng() as u128) << 64 | rng() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform(
                rng: &mut dyn FnMut() -> u64,
                lo: Self,
                hi: Self,
                _inclusive: bool,
            ) -> Self {
                lo + (hi - lo) * unit_f64(rng()) as $t
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

pub mod rngs {
    use super::*;

    /// Deterministic xoshiro256** generator (API stand-in for rand's
    /// StdRng; the stream differs from upstream, which only matters for
    /// byte-exact reproduction of upstream seeds).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            Self {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let x: usize = a.gen_range(0..4);
            assert_eq!(x, b.gen_range(0..4));
            assert!(x < 4);
            let f = a.gen_range(-1.0f64..1.0);
            assert_eq!(f, b.gen_range(-1.0f64..1.0));
            assert!((-1.0..1.0).contains(&f));
            let i = a.gen_range(0..=10usize);
            assert_eq!(i, b.gen_range(0..=10usize));
            assert!(i <= 10);
        }
    }

    #[test]
    fn gen_bool_rates() {
        let mut r = StdRng::seed_from_u64(7);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits = {hits}");
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }

    #[test]
    fn negative_int_ranges() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v: i64 = r.gen_range(-50i64..50);
            assert!((-50..50).contains(&v));
        }
    }
}
