//! Offline stand-in for the `criterion` crate.
//!
//! Implements the API subset the workspace's benches use — groups,
//! `bench_function`, `Bencher::iter`/`iter_batched`, `Throughput`,
//! `criterion_group!`/`criterion_main!` — over a plain wall-clock
//! harness: warm up, then time fixed-size batches and report the mean
//! with min/max across samples. No plotting, CSV, or statistics beyond
//! that; output format echoes criterion's `time: [low mean high]` line.

use std::time::{Duration, Instant};

/// Top-level harness configuration (a subset of criterion's builder).
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be >= 2");
        self.sample_size = n;
        self
    }

    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    pub fn warm_up_time(mut self, t: Duration) -> Self {
        self.warm_up_time = t;
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), throughput: None }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_benchmark(self, &id, None, f);
        self
    }
}

/// Throughput annotation: scales the per-iteration report.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// How `iter_batched` amortizes setup (ignored by this harness beyond
/// batch sizing).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        run_benchmark(self.criterion, &full, self.throughput, f);
        self
    }

    pub fn finish(self) {}
}

/// Passed to the measured closure; collects per-sample timings.
pub struct Bencher {
    iters_per_sample: u64,
    samples: Vec<Duration>,
    target_samples: usize,
}

impl Bencher {
    /// Times `routine` in batches of `iters_per_sample` calls.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..self.target_samples {
            let t0 = Instant::now();
            for _ in 0..self.iters_per_sample {
                std::hint::black_box(routine());
            }
            self.samples.push(t0.elapsed());
        }
    }

    /// Times `routine` over inputs produced (untimed) by `setup`.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.target_samples {
            let inputs: Vec<I> = (0..self.iters_per_sample).map(|_| setup()).collect();
            let t0 = Instant::now();
            for input in inputs {
                std::hint::black_box(routine(input));
            }
            self.samples.push(t0.elapsed());
        }
    }
}

fn run_benchmark<F>(c: &Criterion, id: &str, throughput: Option<Throughput>, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    // Calibration: find an iteration count whose batch lands near the
    // per-sample time budget.
    let mut calib = Bencher { iters_per_sample: 1, samples: Vec::new(), target_samples: 1 };
    f(&mut calib);
    let single = calib
        .samples
        .first()
        .copied()
        .unwrap_or(Duration::from_nanos(1))
        .max(Duration::from_nanos(1));
    let per_sample = c.measurement_time.max(Duration::from_millis(10)) / c.sample_size as u32;
    let iters = (per_sample.as_nanos() / single.as_nanos()).clamp(1, 100_000_000) as u64;

    // Warm-up.
    let warm_end = Instant::now() + c.warm_up_time;
    let mut warm =
        Bencher { iters_per_sample: iters.min(1000), samples: Vec::new(), target_samples: 1 };
    while Instant::now() < warm_end {
        f(&mut warm);
        warm.samples.clear();
    }

    // Measurement.
    let mut bencher =
        Bencher { iters_per_sample: iters, samples: Vec::new(), target_samples: c.sample_size };
    f(&mut bencher);

    let per_iter: Vec<f64> = bencher
        .samples
        .iter()
        .map(|d| d.as_nanos() as f64 / bencher.iters_per_sample as f64)
        .collect();
    let mean = per_iter.iter().sum::<f64>() / per_iter.len().max(1) as f64;
    let low = per_iter.iter().cloned().fold(f64::INFINITY, f64::min);
    let high = per_iter.iter().cloned().fold(0.0f64, f64::max);

    print!("{id:<44} time: [{} {} {}]", fmt_ns(low), fmt_ns(mean), fmt_ns(high));
    match throughput {
        Some(Throughput::Elements(n)) => {
            let rate = n as f64 / (mean * 1e-9);
            print!("  thrpt: {:.3} Melem/s", rate / 1e6);
        }
        Some(Throughput::Bytes(n)) => {
            let rate = n as f64 / (mean * 1e-9);
            print!("  thrpt: {:.3} MiB/s", rate / (1024.0 * 1024.0));
        }
        None => {}
    }
    println!();
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} us", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// Re-export point used by generated harness code.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default()
            .sample_size(2)
            .measurement_time(Duration::from_millis(20))
            .warm_up_time(Duration::from_millis(5));
        let mut g = c.benchmark_group("shim");
        g.throughput(Throughput::Elements(1));
        let mut count = 0u64;
        g.bench_function("incr", |b| b.iter(|| count += 1));
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
        assert!(count > 0);
    }
}
