//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset the workspace's property tests use: the
//! [`Strategy`] trait (ranges, `Just`, tuples, `prop_map`, unions),
//! `any::<T>()`, `collection::vec`, `array::uniform3`, `sample::select`,
//! `ProptestConfig { cases }`, and the `proptest!` / `prop_oneof!` /
//! `prop_assert!` / `prop_assert_eq!` macros.
//!
//! Cases are generated from a deterministic per-test RNG (seeded from
//! the test name), so failures reproduce across runs. Shrinking is not
//! implemented: a failing case panics with the assertion message.

pub mod test_runner {
    /// Deterministic splitmix64 stream seeded from the test name.
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn from_name(name: &str) -> Self {
            // FNV-1a over the test name: stable across runs and platforms.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            Self { state: h }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }

        /// Uniform in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

/// Per-test configuration (`#![proptest_config(...)]`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64, max_shrink_iters: 0 }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A generator of values of type `Value`.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    /// Always produces a clone of the wrapped value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// `s.prop_map(f)` adapter.
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, U> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice between boxed alternative strategies
    /// (built by `prop_oneof!`).
    pub struct Union<T> {
        options: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> Union<T> {
        pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Self { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].generate(rng)
        }
    }

    /// Helper for `prop_oneof!`: erases the concrete strategy type.
    pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
    where
        S: Strategy + 'static,
    {
        Box::new(s)
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128).wrapping_sub(self.start as i128) as u128;
                    let raw = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
                    (self.start as i128 + (raw % span) as i128) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128).wrapping_sub(lo as i128) as u128 + 1;
                    let raw = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
                    (lo as i128 + (raw % span) as i128) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for std::ops::Range<u128> {
        type Value = u128;
        fn generate(&self, rng: &mut TestRng) -> u128 {
            assert!(self.start < self.end, "empty range strategy");
            let span = self.end - self.start;
            let raw = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
            self.start + raw % span
        }
    }

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + (self.end - self.start) * rng.unit_f64() as $t
                }
            }
        )*};
    }

    float_range_strategy!(f32, f64);

    macro_rules! tuple_strategy {
        ($(($($n:ident),+))*) => {$(
            #[allow(non_snake_case)]
            impl<$($n: Strategy),+> Strategy for ($($n,)+) {
                type Value = ($($n::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($n,)+) = self;
                    ($($n.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, G)
        (A, B, C, D, E, G, H)
        (A, B, C, D, E, G, H, I)
    }

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arb_uint {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arb_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for u128 {
        fn arbitrary(rng: &mut TestRng) -> u128 {
            ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
        }
    }

    impl Arbitrary for i128 {
        fn arbitrary(rng: &mut TestRng) -> i128 {
            u128::arbitrary(rng) as i128
        }
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            rng.unit_f64() * 2.0 - 1.0
        }
    }

    impl Arbitrary for f32 {
        fn arbitrary(rng: &mut TestRng) -> f32 {
            f64::arbitrary(rng) as f32
        }
    }

    /// `any::<T>()` strategy.
    pub struct Any<T> {
        _marker: std::marker::PhantomData<fn() -> T>,
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    pub fn any<T: Arbitrary>() -> Any<T> {
        Any { _marker: std::marker::PhantomData }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Size specification for `vec`: a fixed size or a half-open range.
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            Self { lo: r.start, hi: r.end }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            Self { lo: *r.start(), hi: *r.end() + 1 }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let n = self.size.lo + rng.below(span.max(1)) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `proptest::collection::vec(element, size)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }
}

pub mod array {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    pub struct UniformArray3<S> {
        element: S,
    }

    impl<S: Strategy> Strategy for UniformArray3<S> {
        type Value = [S::Value; 3];
        fn generate(&self, rng: &mut TestRng) -> [S::Value; 3] {
            [self.element.generate(rng), self.element.generate(rng), self.element.generate(rng)]
        }
    }

    /// `prop::array::uniform3(strategy)`.
    pub fn uniform3<S: Strategy>(element: S) -> UniformArray3<S> {
        UniformArray3 { element }
    }
}

pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    pub struct Select<T: Clone> {
        options: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.options[rng.below(self.options.len() as u64) as usize].clone()
        }
    }

    /// `proptest::sample::select(vec![...])`.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select needs at least one option");
        Select { options }
    }
}

pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Namespace alias matching upstream's `prelude::prop`.
    pub mod prop {
        pub use crate::{array, collection, sample, strategy};
    }
}

/// Runs `cases` deterministic cases of a property body. Used by the
/// `proptest!` macro expansion; kept public for direct invocation.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_cases! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_cases! { cfg = (<$crate::ProptestConfig as ::core::default::Default>::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_cases {
    (cfg = ($cfg:expr);) => {};
    (cfg = ($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($p:pat in $s:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng =
                $crate::test_runner::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__config.cases {
                let _ = __case;
                $(let $p = $crate::strategy::Strategy::generate(&($s), &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_cases! { cfg = ($cfg); $($rest)* }
    };
}

/// Uniform choice among alternative strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::boxed($s)),+])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_even() -> impl Strategy<Value = u64> {
        (0u64..1000).prop_map(|x| x * 2)
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        #[test]
        fn ranges_in_bounds(x in 3usize..17, y in -5i64..5, f in -1.0f64..1.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-5..5).contains(&y));
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn vec_and_tuple(v in prop::collection::vec((0u8..3, any::<bool>()), 1..20)) {
            prop_assert!(!v.is_empty() && v.len() < 20);
            for (a, _) in v {
                prop_assert!(a < 3);
            }
        }

        #[test]
        fn oneof_and_map(x in prop_oneof![Just(1u64), Just(2), arb_even()]) {
            prop_assert!(x == 1 || x % 2 == 0);
        }

        #[test]
        fn uniform3_bounds(a in prop::array::uniform3(-1.0f64..1.0)) {
            prop_assert!(a.iter().all(|v| (-1.0..1.0).contains(v)));
        }

        #[test]
        fn select_picks_member(b in prop::sample::select(vec![b'A', b'C', b'G', b'T'])) {
            prop_assert!(b"ACGT".contains(&b));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut r1 = crate::test_runner::TestRng::from_name("x");
        let mut r2 = crate::test_runner::TestRng::from_name("x");
        let s = 0u64..100;
        for _ in 0..100 {
            assert_eq!(s.generate(&mut r1), s.generate(&mut r2));
        }
    }
}
