//! iRPCLib: the paper's Listing 2 — an LCI backend for an imaginary RPC
//! library — translated to Rust.
//!
//! The upper layer registers RPC handlers into indices and serializes
//! arguments; the backend ships (handler index = tag, serialized args =
//! payload) to the target rank and delivers incoming messages back up.
//! All threads produce and consume communication and periodically call
//! `do_background_work`, exactly as the paper describes.
//!
//! Run with: `cargo run --release --example irpclib`

use lci::{Comp, CompDesc, Device, PostResult, Runtime};
use lci_fabric::Fabric;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A message descriptor type defined by the upper layer (paper `msg_t`).
struct RpcMsg {
    rank: usize,
    tag: u32,
    data: Vec<u8>,
}

/// The backend layer of iRPCLib (paper Listing 2).
struct IrpcBackend {
    rt: Runtime,
    /// Shared send-completion handler (`shandler`).
    shandler: Comp,
    /// Shared receive completion queue (`rcq`) + its remote handle.
    rcq: Comp,
    rcomp: u32,
}

impl IrpcBackend {
    /// `global_init`: bring up the runtime, allocate shared completion
    /// resources, register the receive CQ for remote posting.
    fn global_init(fabric: Arc<Fabric>, rank: usize) -> IrpcBackend {
        let rt = Runtime::with_defaults(fabric, rank).unwrap();
        // Source-side completion: the send buffer comes back in the
        // descriptor; dropping it frees the message (the Rust analog of
        // the paper's `std::free(status.buf)` in `send_cb`).
        let shandler = Comp::alloc_handler(|_status: CompDesc| {
            // buffer dropped here
        });
        let rcq = Comp::alloc_cq();
        let rcomp = rt.register_rcomp(rcq.clone());
        IrpcBackend { rt, shandler, rcq, rcomp }
    }

    /// `thread_init`: one device per thread for threading efficiency.
    fn thread_init(&self) -> Device {
        self.rt.alloc_device().unwrap()
    }

    /// `send_msg`: ship an RPC; returns false when the send failed
    /// temporarily (paper: "the upper layer can do something meaningful,
    /// such as polling other task queues").
    fn send_msg(&self, device: &Device, rank: usize, buf: Vec<u8>, tag: u32) -> bool {
        let status = self
            .rt
            .post_am_x(rank, buf, self.shandler.clone(), self.rcomp)
            .tag(tag)
            .device(device)
            .call()
            .unwrap();
        match status {
            PostResult::Retry(_) => false, // the send failed temporarily
            PostResult::Done(desc) => {
                // The send completed immediately: manually invoke the
                // callback (paper line 42).
                self.shandler.signal(desc);
                true
            }
            PostResult::Posted => true,
        }
    }

    /// `poll_msg`: deliver an incoming RPC to the upper layer.
    fn poll_msg(&self) -> Option<RpcMsg> {
        let status = self.rcq.pop()?;
        Some(RpcMsg { rank: status.rank, tag: status.tag, data: status.data.into_vec() })
    }

    /// `do_background_work`: progress the thread-local device.
    fn do_background_work(&self, device: &Device) -> bool {
        device.progress().unwrap()
    }
}

fn main() {
    const NRANKS: usize = 2;
    const NTHREADS: usize = 2;
    const RPCS_PER_THREAD: u64 = 100;

    let fabric = Fabric::new(NRANKS);
    let handles: Vec<_> = (0..NRANKS)
        .map(|rank| {
            let fabric = fabric.clone();
            std::thread::spawn(move || {
                let backend = Arc::new(IrpcBackend::global_init(fabric.clone(), rank));
                // Devices allocated in deterministic order on the main
                // thread so indices pair up across ranks.
                let devices: Vec<Device> = (0..NTHREADS).map(|_| backend.thread_init()).collect();
                fabric.oob_barrier();

                let served = Arc::new(AtomicU64::new(0));
                let expected = (NTHREADS as u64) * RPCS_PER_THREAD;
                std::thread::scope(|scope| {
                    for (tid, device) in devices.into_iter().enumerate() {
                        let backend = backend.clone();
                        let served = served.clone();
                        scope.spawn(move || {
                            let peer = 1 - rank;
                            let mut sent = 0u64;
                            // Every thread produces RPCs and serves
                            // incoming ones until both sides are done.
                            while sent < RPCS_PER_THREAD
                                || served.load(Ordering::Acquire) < expected
                            {
                                if sent < RPCS_PER_THREAD {
                                    let arg = format!("rpc {sent} from r{rank}t{tid}");
                                    if backend.send_msg(&device, peer, arg.into_bytes(), tid as u32)
                                    {
                                        sent += 1;
                                    }
                                }
                                backend.do_background_work(&device);
                                while let Some(msg) = backend.poll_msg() {
                                    // "Execute" the RPC: handlers have no
                                    // restrictions (unlike AM handlers).
                                    assert_eq!(msg.rank, peer);
                                    assert!((msg.tag as usize) < NTHREADS);
                                    assert!(!msg.data.is_empty());
                                    served.fetch_add(1, Ordering::AcqRel);
                                }
                            }
                        });
                    }
                });
                fabric.oob_barrier();
                println!(
                    "rank {rank}: served {} RPCs across {NTHREADS} threads",
                    served.load(Ordering::Acquire)
                );
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    println!("irpclib: OK");
}
