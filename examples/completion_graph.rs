//! Completion-graph example (paper §3.2.5): composing a non-blocking
//! "gather to rank 0" collective as a partial order of communication
//! operations and local functions — the CUDA-Graph-like completion
//! object in action.
//!
//! Rank 0's graph: [recv from 1] ─┐
//!                 [recv from 2] ─┼─> [combine] -> [broadcast result]
//!                 [recv from 3] ─┘
//!
//! Run with: `cargo run --release --example completion_graph`

use lci::{Comp, GraphBuilder, PostResult, Runtime};
use lci_fabric::sync::SpinLock;
use lci_fabric::Fabric;
use std::sync::Arc;

const NRANKS: usize = 4;

fn main() {
    let fabric = Fabric::new(NRANKS);
    let handles: Vec<_> = (0..NRANKS)
        .map(|rank| {
            let fabric = fabric.clone();
            std::thread::spawn(move || run(fabric, rank))
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    println!("completion_graph: OK");
}

fn run(fabric: Arc<Fabric>, rank: usize) {
    let rt = Runtime::with_defaults(fabric.clone(), rank).unwrap();
    fabric.oob_barrier();

    if rank == 0 {
        let collected: Arc<SpinLock<Vec<u64>>> = Arc::new(SpinLock::new(vec![0; NRANKS]));
        let mut gb = GraphBuilder::new();

        // One receive node per peer; each stores its contribution.
        let recv_nodes: Vec<_> = (1..NRANKS)
            .map(|peer| {
                let rt = rt.clone();
                let collected = collected.clone();
                gb.add_comm(move |comp| {
                    let rt2 = rt.clone();
                    let collected = collected.clone();
                    // Deliver through a handler that stores the value,
                    // then signals the graph node.
                    let store = Comp::alloc_handler(move |desc| {
                        let v = u64::from_le_bytes(desc.as_slice()[..8].try_into().unwrap());
                        collected.lock()[desc.rank] = v;
                        comp.signal(lci::CompDesc::empty());
                    });
                    match rt2.post_recv(peer, vec![0u8; 16], 9, store).unwrap() {
                        PostResult::Done(_) => unreachable!("handler consumes the descriptor"),
                        PostResult::Posted => {}
                        PostResult::Retry(_) => unreachable!("recv never retries"),
                    }
                })
            })
            .collect();

        // Combine node: runs only after every receive completed.
        let total = Arc::new(SpinLock::new(0u64));
        let combine = {
            let collected = collected.clone();
            let total = total.clone();
            gb.add_fn(move || {
                *total.lock() = collected.lock().iter().sum();
            })
        };
        for &r in &recv_nodes {
            gb.add_edge(r, combine);
        }

        // Broadcast node: sends the combined result to every peer.
        let bcast = {
            let rt = rt.clone();
            let total = total.clone();
            gb.add_comm(move |comp| {
                let sum = *total.lock();
                let sync = Comp::alloc_sync(NRANKS - 1);
                for peer in 1..NRANKS {
                    loop {
                        match rt
                            .post_send(peer, sum.to_le_bytes().to_vec(), 10, sync.clone())
                            .unwrap()
                        {
                            PostResult::Retry(_) => {
                                rt.progress().unwrap();
                            }
                            PostResult::Done(d) => {
                                sync.signal(d);
                                break;
                            }
                            PostResult::Posted => break,
                        }
                    }
                }
                // Bridge: when all sends complete, complete the node.
                std::thread::spawn({
                    let sync = sync.clone();
                    move || {
                        while !sync.as_sync().unwrap().test() {
                            std::hint::spin_loop();
                        }
                        comp.signal(lci::CompDesc::empty());
                    }
                });
            })
        };
        gb.add_edge(combine, bcast);

        let graph = gb.build();
        graph.start();
        graph.wait_with(|| {
            rt.progress().unwrap();
        });
        let expect: u64 = (1..NRANKS as u64).map(|r| r * 100).sum();
        assert_eq!(*total.lock(), expect);
        println!("rank 0: gathered sum = {} (expected {expect})", *total.lock());
    } else {
        // Peers: contribute rank*100, then await the broadcast result.
        let contribution = (rank as u64) * 100;
        let scomp = Comp::alloc_sync(1);
        while let PostResult::Retry(_) =
            rt.post_send(0, contribution.to_le_bytes().to_vec(), 9, scomp.clone()).unwrap()
        {
            rt.progress().unwrap();
        }
        let rcq = Comp::alloc_cq();
        rt.post_recv(0, vec![0u8; 16], 10, rcq.clone()).unwrap();
        let result = loop {
            rt.progress().unwrap();
            if let Some(desc) = rcq.pop() {
                break u64::from_le_bytes(desc.as_slice()[..8].try_into().unwrap());
            }
        };
        println!("rank {rank}: broadcast result = {result}");
    }
    fabric.oob_barrier();
}
