//! octo-mini example: the rotating-star Barnes-Hut simulation over the
//! mini-AMT runtime (paper §5.4), on two simulated ranks with the LCI
//! parcelport.
//!
//! Run with: `cargo run --release --example octo_mini`

use amt::{run_octo_rank, OctoConfig};
use lci_fabric::Fabric;
use lcw::{BackendKind, Platform, ResourceMode, WorldConfig};

fn main() {
    let cfg = OctoConfig {
        n_particles: 2_000,
        steps: 5,
        nthreads: 2,
        chunk: 128,
        // `--transport {sim-ibv,sim-ofi,shm}` / LCI_TRANSPORT selects
        // the wire; the ibv-like sim is the default.
        world: WorldConfig::new(
            BackendKind::Lci,
            Platform::from_args_or_env(Platform::Expanse),
            ResourceMode::Dedicated(2),
        ),
        ..OctoConfig::default()
    };
    println!(
        "rotating star: {} particles, {} steps, 2 ranks x {} workers, LCI parcelport",
        cfg.n_particles, cfg.steps, cfg.nthreads
    );

    let nranks = 2;
    let fabric = Fabric::new(nranks);
    let handles: Vec<_> = (0..nranks)
        .map(|r| {
            let fabric = fabric.clone();
            std::thread::spawn(move || run_octo_rank(fabric, r, cfg))
        })
        .collect();
    let stats: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();

    for (rank, s) in stats.iter().enumerate() {
        println!(
            "rank {rank}: {} particles at end, {} parcels sent, momentum proxy {:.4}",
            s.final_local_particles, s.parcels_sent, s.momentum_proxy
        );
    }
    let total: usize = stats.iter().map(|s| s.final_local_particles).sum();
    assert_eq!(total, cfg.n_particles, "particles conserved across migration");

    println!("time per step (max across ranks):");
    for step in 0..cfg.steps {
        let t = stats.iter().map(|s| s.step_times[step].as_secs_f64()).fold(0.0, f64::max);
        println!("  step {step}: {:.4}s", t);
    }
    println!("octo_mini: OK");
}
