//! k-mer counting example: runs the HipMer-style two-pass pipeline
//! (paper §5.3) on two simulated ranks with two worker threads each and
//! prints the occurrence histogram.
//!
//! Run with: `cargo run --release --example kmer_count`

use kmer::{run_rank, serial_reference, KmerConfig, ReadSetConfig};
use lci_fabric::Fabric;
use lcw::{BackendKind, Platform, ResourceMode, WorldConfig};

fn main() {
    // With a FASTA/FASTQ path argument, report on the real file instead
    // of the synthetic set (single-process reference pipeline).
    if let Some(path) = std::env::args().nth(1) {
        let reads = kmer::load_reads(&path).expect("readable FASTA/FASTQ");
        println!("loaded {} reads from {path}", reads.len());
        let bloom = kmer::TwoLayerBloom::new(reads.iter().map(|r| r.len()).sum::<usize>() * 2);
        let map = kmer::ShardedMap::new(64);
        for r in &reads {
            kmer::canonical_kmers(r, 31, |c| bloom.insert(c));
        }
        for r in &reads {
            kmer::canonical_kmers(r, 31, |c| {
                if bloom.likely_multiple(c) {
                    map.increment(c);
                }
            });
        }
        println!("distinct multi-occurrence 31-mers: {}", map.len());
        return;
    }
    let reads = ReadSetConfig {
        genome_len: 30_000,
        n_reads: 3_000,
        read_len: 100,
        error_rate: 0.01,
        seed: 42,
    };
    let cfg = KmerConfig {
        reads,
        k: 31,
        nthreads: 2,
        agg_size: 8192,
        // `--transport {sim-ibv,sim-ofi,shm}` / LCI_TRANSPORT selects
        // the wire; the ibv-like sim is the default.
        world: WorldConfig::new(
            BackendKind::Lci,
            Platform::from_args_or_env(Platform::Expanse),
            ResourceMode::Dedicated(2),
        ),
        expected_distinct: reads.genome_len * 2,
        max_count: 16,
    };

    println!(
        "counting {}-mers of {} reads (coverage ~{:.0}x, {:.1}% error)",
        cfg.k,
        reads.n_reads,
        (reads.n_reads * reads.read_len) as f64 / reads.genome_len as f64,
        reads.error_rate * 100.0
    );

    let nranks = 2;
    let fabric = Fabric::new(nranks);
    let handles: Vec<_> = (0..nranks)
        .map(|r| {
            let fabric = fabric.clone();
            std::thread::spawn(move || run_rank(fabric, r, cfg))
        })
        .collect();
    let results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();

    let res = &results[0];
    println!(
        "distributed: {} distinct multi-occurrence k-mers in {:.3}s",
        res.distinct,
        res.count_time.as_secs_f64()
    );
    println!("count histogram (count: k-mers):");
    for (count, n) in res.histogram.iter().enumerate().skip(1).filter(|(_, &n)| n > 0) {
        println!("  {count:>3}{}: {n}", if count == cfg.max_count { "+" } else { " " });
    }

    // Cross-check against the serial reference implementation.
    let serial = serial_reference(&cfg, nranks);
    assert_eq!(
        serial.histogram[2..],
        res.histogram[2..],
        "count>=2 buckets must match the serial reference exactly"
    );
    println!("matches serial reference (count-1 bucket is Bloom-FP noise): OK");
}
