//! Quickstart: two ranks exchange messages with every completion style.
//!
//! Run with: `cargo run --release --example quickstart`

use lci::{collective, Comp, PostResult, Runtime};
use lci_fabric::Fabric;

fn main() {
    // The fabric is the simulated interconnect; ranks are threads.
    let fabric = Fabric::new(2);
    let f1 = fabric.clone();
    let peer = std::thread::spawn(move || rank1(f1));
    rank0(fabric);
    peer.join().unwrap();
    println!("quickstart: OK");
}

fn rank0(fabric: std::sync::Arc<Fabric>) {
    let rt = Runtime::with_defaults(fabric, 0).unwrap();
    println!("rank {}/{} up", rt.rank_me(), rt.rank_n());

    // 1. Two-sided send with a synchronizer completion. Retry covers
    // transient shortages (including the peer still bootstrapping).
    let scomp = Comp::alloc_sync(1);
    let ret = loop {
        match rt.post_send(1, b"hello via send-recv".as_slice(), 1, scomp.clone()).unwrap() {
            PostResult::Retry(_) => {
                rt.progress().unwrap();
            }
            other => break other,
        }
    };
    match ret {
        PostResult::Done(_) => println!("rank0: send completed immediately (inject)"),
        PostResult::Posted => {
            scomp.as_sync().unwrap().wait_with(|| {
                rt.progress().unwrap();
            });
            println!("rank0: send completed asynchronously");
        }
        PostResult::Retry(_) => unreachable!(),
    }

    // 2. Large zero-copy send (rendezvous protocol kicks in).
    let big = vec![7u8; 100_000];
    let scomp = Comp::alloc_sync(1);
    loop {
        match rt.post_send(1, big.clone(), 2, scomp.clone()).unwrap() {
            PostResult::Retry(_) => {
                rt.progress().unwrap();
            }
            PostResult::Posted => break,
            PostResult::Done(_) => break,
        }
    }
    scomp.as_sync().unwrap().wait_with(|| {
        rt.progress().unwrap();
    });
    println!("rank0: 100 KB rendezvous send complete");

    collective::barrier(&rt).unwrap();
}

fn rank1(fabric: std::sync::Arc<Fabric>) {
    let rt = Runtime::with_defaults(fabric, 1).unwrap();

    // Completion queue for the receives.
    let cq = Comp::alloc_cq();
    rt.post_recv(0, vec![0u8; 64], 1, cq.clone()).unwrap();
    rt.post_recv(0, vec![0u8; 128 * 1024], 2, cq.clone()).unwrap();

    let mut got = 0;
    while got < 2 {
        rt.progress().unwrap();
        if let Some(desc) = cq.pop() {
            println!(
                "rank1: received tag={} {} bytes from rank {}",
                desc.tag,
                desc.data.len(),
                desc.rank
            );
            got += 1;
        }
    }
    collective::barrier(&rt).unwrap();
}
