//! Quickstart: two ranks exchange messages with every completion style.
//!
//! Run with: `cargo run --release --example quickstart`
//! (`--transport {sim-ibv,sim-ofi,shm}` or LCI_TRANSPORT selects the
//! wire; the ibv-like sim is the default.)

use lci::{collective, Comp, PostResult, Runtime};
use lci_fabric::Fabric;

/// The runtime configuration, honoring the transport selector.
fn config() -> lci::RuntimeConfig {
    let platform = lcw::Platform::from_args_or_env(lcw::Platform::Expanse);
    lci::RuntimeConfig::default().with_device(platform.device_config())
}

fn main() {
    // The fabric: a simulated interconnect, or shared-memory rings.
    let fabric = Fabric::new(2);
    let f1 = fabric.clone();
    let peer = std::thread::spawn(move || rank1(f1));
    rank0(fabric);
    peer.join().unwrap();
    println!("quickstart: OK");
}

fn rank0(fabric: std::sync::Arc<Fabric>) {
    let rt = Runtime::new(fabric, 0, config()).unwrap();
    println!("rank {}/{} up", rt.rank_me(), rt.rank_n());

    // 1. Two-sided send with a synchronizer completion. Retry covers
    // transient shortages (including the peer still bootstrapping).
    let scomp = Comp::alloc_sync(1);
    let ret = loop {
        match rt.post_send(1, b"hello via send-recv".as_slice(), 1, scomp.clone()).unwrap() {
            PostResult::Retry(_) => {
                rt.progress().unwrap();
            }
            other => break other,
        }
    };
    match ret {
        PostResult::Done(_) => println!("rank0: send completed immediately (inject)"),
        PostResult::Posted => {
            scomp.as_sync().unwrap().wait_with(|| {
                rt.progress().unwrap();
            });
            println!("rank0: send completed asynchronously");
        }
        PostResult::Retry(_) => unreachable!(),
    }

    // 2. Large zero-copy send (rendezvous protocol kicks in).
    let big = vec![7u8; 100_000];
    let scomp = Comp::alloc_sync(1);
    loop {
        match rt.post_send(1, big.clone(), 2, scomp.clone()).unwrap() {
            PostResult::Retry(_) => {
                rt.progress().unwrap();
            }
            PostResult::Posted => break,
            PostResult::Done(_) => break,
        }
    }
    scomp.as_sync().unwrap().wait_with(|| {
        rt.progress().unwrap();
    });
    println!("rank0: 100 KB rendezvous send complete");

    collective::barrier(&rt).unwrap();
}

fn rank1(fabric: std::sync::Arc<Fabric>) {
    let rt = Runtime::new(fabric, 1, config()).unwrap();

    // Completion queue for the receives.
    let cq = Comp::alloc_cq();
    rt.post_recv(0, vec![0u8; 64], 1, cq.clone()).unwrap();
    rt.post_recv(0, vec![0u8; 128 * 1024], 2, cq.clone()).unwrap();

    let mut got = 0;
    while got < 2 {
        rt.progress().unwrap();
        if let Some(desc) = cq.pop() {
            println!(
                "rank1: received tag={} {} bytes from rank {}",
                desc.tag,
                desc.data.len(),
                desc.rank
            );
            got += 1;
        }
    }
    collective::barrier(&rt).unwrap();
}
