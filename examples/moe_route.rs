//! MoE token routing on the sparse vector exchange (`alltoallv`): the
//! workload shape that motivated it.
//!
//! Four ranks each own a shard of experts and a batch of tokens. Every
//! iteration runs the canonical mixture-of-experts layer step:
//!
//! 1. **Gate** — the batch activates a top-k expert subset drawn from
//!    a Zipf-skewed distribution (hot experts exist, like a trained
//!    router; a small batch touches a handful of experts, not all), and
//!    each token picks an expert within it. A per-source capacity
//!    factor bounds how many tokens one source may ship to one expert;
//!    overflow tokens are *dropped* (stay local, identity function)
//!    exactly as real MoE layers do.
//! 2. **Dispatch** — tokens are packed by owning rank and exchanged
//!    with [`lcw::World::alltoallv`]; the receive side is unknown until
//!    the one-round count exchange ([`lcw::World::exchange_counts`])
//!    learns it. Cold (rank, rank) pairs ship *nothing* — the sparse
//!    path skips them, visible in `coll_skipped_pairs`.
//! 3. **Compute** — the owner applies its expert's transform to every
//!    received token in place.
//! 4. **Combine** — the same exchange in reverse (count vectors
//!    swapped) returns transformed tokens, which scatter back to their
//!    original batch slots.
//!
//! Every buffer is allocated once before the loop; the warm
//! dispatch→compute→combine iterations allocate nothing (the lci
//! steady-state allocation audit enforces this for the same call
//! pattern). The run prints per-iteration routing stats and verifies
//! every token byte-for-byte.
//!
//! Run with: `cargo run --release --example moe_route`
//! (`--transport {sim-ibv,sim-ofi,shm}` or LCI_TRANSPORT selects the
//! wire; env knobs: MOE_TOKENS, MOE_SKEW_X10, MOE_ITERS.)

use lci_fabric::Fabric;
use lcw::{BackendKind, ResourceMode, World, WorldConfig};

const NRANKS: usize = 4;
const EXPERTS_PER_RANK: usize = 4;
const TOK_BYTES: usize = 64; // byte 0 carries the expert id, rest payload
const CAPACITY_FACTOR: f64 = 1.25;

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn tokens_per_rank() -> usize {
    env_usize("MOE_TOKENS", 512)
}

fn skew_x10() -> usize {
    env_usize("MOE_SKEW_X10", 12)
}

fn iters() -> usize {
    env_usize("MOE_ITERS", 8)
}

fn main() {
    let platform = lcw::Platform::from_args_or_env(lcw::Platform::Expanse);
    let cfg = WorldConfig::new(BackendKind::Lci, platform, ResourceMode::Shared)
        .with_coll_chunk_size(16 << 10);
    let fabric = Fabric::new(NRANKS);
    let handles: Vec<_> = (0..NRANKS)
        .map(|rank| {
            let fabric = fabric.clone();
            std::thread::Builder::new()
                .name(format!("moe-r{rank}"))
                .spawn(move || run(World::new(fabric, rank, cfg)))
                .expect("spawn rank")
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    println!("moe_route: OK");
}

/// One LCG draw as a uniform in [0, 1).
fn lcg_uniform(x: &mut u64) -> f64 {
    *x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
    (*x >> 11) as f64 / (1u64 << 53) as f64
}

/// A Zipf-weighted draw from `set`, returning the chosen position.
fn zipf_pick(x: &mut u64, set: &[usize], weights: &[f64]) -> usize {
    let total: f64 = set.iter().map(|&e| weights[e]).sum();
    let mut u = lcg_uniform(x) * total;
    for (i, &e) in set.iter().enumerate() {
        if u < weights[e] {
            return i;
        }
        u -= weights[e];
    }
    set.len() - 1
}

/// The expert "FFN": a cheap reversible byte transform keyed by the
/// global expert id, applied to every payload byte of a token.
fn expert_transform(expert: usize, b: u8) -> u8 {
    b.wrapping_mul(2 * expert as u8 + 3).wrapping_add(expert as u8)
}

fn token_byte(rank: usize, tok: usize, i: usize) -> u8 {
    (rank.wrapping_mul(131) ^ tok.wrapping_mul(7) ^ i) as u8
}

fn run(world: World) {
    let rank = world.rank();
    let n = world.size();
    let nexperts = n * EXPERTS_PER_RANK;
    let ntok = tokens_per_rank();
    let s = skew_x10() as f64 / 10.0;
    // Top-k batch activation: each iteration this source's router
    // activates only `k` Zipf-drawn experts (a small batch touches a
    // handful of experts, not all of them) — ranks owning none of the
    // active experts become cold pairs the sparse exchange skips.
    let k = EXPERTS_PER_RANK;
    // Per-source, per-expert token cap: capacity_factor * (my batch /
    // active experts). Tokens past the cap are dropped (identity).
    let cap = ((ntok as f64 / k as f64) * CAPACITY_FACTOR).ceil() as usize;
    let weights: Vec<f64> = (1..=nexperts).map(|e| 1.0 / (e as f64).powf(s)).collect();
    let rt = world.lci_runtime().expect("lci backend");

    // One-time allocations; the iteration loop below reuses all of it.
    let mut pool = Vec::with_capacity(nexperts);
    let mut active = Vec::with_capacity(k);
    let mut batch = vec![0u8; ntok * TOK_BYTES];
    let mut gates = vec![0usize; ntok]; // expert per token, usize::MAX = dropped
    let mut load = vec![0usize; nexperts]; // per-expert tokens from this src
    let mut send_counts = vec![0usize; n];
    let mut recv_counts = vec![0usize; n];
    let mut fill = vec![0usize; n]; // pack cursor per destination rank
    let mut perm = vec![0usize; ntok]; // token -> slot in the packed send buf
    let mut send_buf = vec![0u8; ntok * TOK_BYTES];
    let mut recv_buf = vec![0u8; n * ntok * TOK_BYTES]; // worst case: everything lands here
    let mut back_buf = vec![0u8; ntok * TOK_BYTES];

    world.barrier().expect("startup barrier");
    let before = rt.device().stats();

    for iter in 0..iters() {
        // -- Gate: activate the batch's expert set, then route each
        // token within it, enforcing the per-expert cap.
        let mut x = (rank as u64)
            .wrapping_mul(0x9E3779B97F4A7C15)
            .wrapping_add((iter as u64).wrapping_mul(0xD1B54A32D192ED03))
            | 1;
        pool.clear();
        pool.extend(0..nexperts);
        active.clear();
        for _ in 0..k {
            let i = zipf_pick(&mut x, &pool, &weights);
            active.push(pool.swap_remove(i));
        }
        for (i, b) in batch.iter_mut().enumerate() {
            *b = token_byte(rank, i / TOK_BYTES, i % TOK_BYTES);
        }
        load.iter_mut().for_each(|l| *l = 0);
        send_counts.iter_mut().for_each(|c| *c = 0);
        let mut dropped = 0usize;
        for g in gates.iter_mut() {
            let e = active[zipf_pick(&mut x, &active, &weights)];
            if load[e] == cap {
                *g = usize::MAX;
                dropped += 1;
                continue;
            }
            load[e] += 1;
            *g = e;
            send_counts[e / EXPERTS_PER_RANK] += TOK_BYTES;
        }

        // -- Dispatch: pack by owner rank (expert id rides in byte 0),
        // learn the receive side, exchange.
        let mut off = 0;
        for (d, c) in send_counts.iter().enumerate() {
            fill[d] = off;
            off += c;
        }
        for t in 0..ntok {
            let e = gates[t];
            if e == usize::MAX {
                continue;
            }
            let dst = &mut fill[e / EXPERTS_PER_RANK];
            perm[t] = *dst;
            send_buf[*dst..*dst + TOK_BYTES]
                .copy_from_slice(&batch[t * TOK_BYTES..(t + 1) * TOK_BYTES]);
            send_buf[*dst] = (e % EXPERTS_PER_RANK) as u8;
            *dst += TOK_BYTES;
        }
        world.exchange_counts(&send_counts, &mut recv_counts).expect("count exchange");
        let inbound: usize = recv_counts.iter().sum();
        let outbound: usize = send_counts.iter().sum();
        world
            .alltoallv(&send_buf[..outbound], &send_counts, &mut recv_buf[..inbound], &recv_counts)
            .expect("dispatch");

        // -- Compute: apply the owned expert's transform in place.
        for tok in recv_buf[..inbound].chunks_exact_mut(TOK_BYTES) {
            let e = rank * EXPERTS_PER_RANK + tok[0] as usize;
            for b in tok[1..].iter_mut() {
                *b = expert_transform(e, *b);
            }
        }

        // -- Combine: the same exchange, reversed.
        world
            .alltoallv(&recv_buf[..inbound], &recv_counts, &mut back_buf[..outbound], &send_counts)
            .expect("combine");

        // -- Unpack + verify every byte against a local replay.
        for t in 0..ntok {
            let e = gates[t];
            for i in 1..TOK_BYTES {
                let orig = token_byte(rank, t, i);
                let want = if e == usize::MAX { orig } else { expert_transform(e, orig) };
                let got =
                    if e == usize::MAX { batch[t * TOK_BYTES + i] } else { back_buf[perm[t] + i] };
                assert_eq!(got, want, "iter {iter} token {t} byte {i} (expert {e})");
            }
        }

        if rank == 0 {
            let cold = send_counts.iter().filter(|&&c| c == 0).count();
            println!(
                "iter {iter}: rank0 routed {} dropped {dropped} (cap {cap}/expert) \
                 inbound {} tok, {cold} cold peer(s)",
                ntok - dropped,
                inbound / TOK_BYTES,
            );
        }
    }

    world.barrier().expect("closing barrier");
    let d = rt.device().stats().since(&before);
    println!(
        "rank {rank}: skipped_pairs={} v_bytes_hwm={} KiB",
        d.coll_skipped_pairs,
        d.coll_v_bytes_hwm >> 10
    );
}
