#!/bin/bash
# Regenerates every paper table/figure into bench_results/.
# Usage: ./run_benches.sh [quick] [--matrix] [--coll] [--a2av] [--json]
#                         [--transport sim-ibv|sim-ofi|shm|tcp]
#
# With --transport (or LCI_TRANSPORT set) the microbenchmark sweeps run
# on that single transport and the output files carry its name, e.g.
# bench_results/msgrate_thread_tcp.txt.
#
# --json additionally parses every results file written by this run
# into a machine-readable .json sibling and consolidates them all into
# bench_results/BENCH_10.json (see split_bench_output.py --json-only).
#
# --matrix runs ONLY the thread-per-core scale matrix (the 8→128-thread
# sweep; BENCH_MATRIX_THREADS overrides the axis) into
# bench_results/scale_matrix.txt. Without it the matrix runs after the
# figure benches.
#
# --coll runs ONLY the collectives sweep (chunk-pipelined ring/pairwise
# vs the coll_naive ablation; BENCH_COLL_SIZES/BENCH_COLL_RANKS override
# the axes) into bench_results/collectives.txt. Without it the sweep
# runs after the figure benches.
#
# --a2av runs ONLY the sparse alltoallv / MoE-routing skew sweep
# (sparse vs padded-dense vs coll_naive; BENCH_A2AV_RANKS/
# BENCH_A2AV_SKEWS/BENCH_A2AV_TOKENS override the axes) into
# bench_results/alltoallv.txt. Without it the sweep runs after the
# figure benches.
set -u
TRANSPORT="${LCI_TRANSPORT:-}"
MATRIX_ONLY=0
COLL_ONLY=0
A2AV_ONLY=0
JSON=0
while [ $# -gt 0 ]; do
  case "$1" in
    quick) export BENCH_QUICK=1 ;;
    --matrix) MATRIX_ONLY=1 ;;
    --coll) COLL_ONLY=1 ;;
    --a2av) A2AV_ONLY=1 ;;
    --json) JSON=1 ;;
    --transport) shift; TRANSPORT="$1" ;;
    --transport=*) TRANSPORT="${1#*=}" ;;
    *) echo "unknown arg: $1" >&2; exit 2 ;;
  esac
  shift
done
if [ -n "$TRANSPORT" ]; then
  export LCI_TRANSPORT="$TRANSPORT"
  SUFFIX="_${TRANSPORT}"
else
  SUFFIX=""
fi
if [ "${BENCH_QUICK:-}" != "1" ]; then
  export BENCH_MAX_THREADS=${BENCH_MAX_THREADS:-4}
  export BENCH_ITERS=${BENCH_ITERS:-2000}
fi
mkdir -p bench_results
WRITTEN=()
finish() {
  if [ "$JSON" = 1 ] && [ "${#WRITTEN[@]}" -gt 0 ]; then
    python3 split_bench_output.py --json-only "${WRITTEN[@]}"
  fi
}
# The scale matrix sweeps its own transport axis in-process, so its
# output file is unsuffixed (like shm_scale) unless a transport was
# forced, in which case only that transport ran.
run_matrix() {
  echo "=== running scale_matrix ==="
  cargo bench -p bench --bench scale_matrix 2>/dev/null \
    | tee "bench_results/scale_matrix${SUFFIX}.txt" | tail -8
  WRITTEN+=("bench_results/scale_matrix${SUFFIX}.txt")
}
# The collectives sweep covers its own transport axis in one run
# (sim-ibv + sim-ofi thread-per-rank, multi-process shm): unsuffixed.
run_coll() {
  echo "=== running collectives ==="
  cargo bench -p bench --bench collectives 2>/dev/null \
    | tee bench_results/collectives.txt | tail -8
  WRITTEN+=(bench_results/collectives.txt)
}
# The alltoallv sweep covers its own transport axis in one run
# (sim-ibv + sim-ofi thread-per-rank, multi-process shm + tcp):
# unsuffixed.
run_a2av() {
  echo "=== running alltoallv ==="
  cargo bench -p bench --bench alltoallv 2>/dev/null \
    | tee bench_results/alltoallv.txt | tail -8
  WRITTEN+=(bench_results/alltoallv.txt)
}
if [ "$MATRIX_ONLY" = 1 ]; then
  run_matrix
  finish
  exit 0
fi
if [ "$COLL_ONLY" = 1 ]; then
  run_coll
  finish
  exit 0
fi
if [ "$A2AV_ONLY" = 1 ]; then
  run_a2av
  finish
  exit 0
fi
for b in table1_semantics fig2_msgrate_process fig3_msgrate_thread fig4_bandwidth \
         fig5_resources fig6_kmer fig7_octotiger ablations; do
  echo "=== running $b ==="
  cargo bench -p bench --bench "$b" 2>/dev/null | tee "bench_results/${b#*_}${SUFFIX}.txt" | tail -4
  WRITTEN+=("bench_results/${b#*_}${SUFFIX}.txt")
done
run_matrix
run_coll
run_a2av
# Real multi-process scaling over both wires (shm segment + tcp
# loopback mesh; each row carries its wire, whatever the sweep
# transport above was — LCI_TRANSPORT pins the axis to one wire).
echo "=== running shm_scale ==="
cargo bench -p bench --bench shm_scale 2>/dev/null | tee bench_results/shm_scale.txt | tail -8
WRITTEN+=(bench_results/shm_scale.txt)
echo "=== criterion micro ==="
cargo bench -p bench --bench micro_criterion 2>/dev/null | tee bench_results/micro_criterion.txt | grep -E "time:|thrpt:" | head -20
WRITTEN+=(bench_results/micro_criterion.txt)
finish
