#!/bin/bash
# Regenerates every paper table/figure into bench_results/.
# Usage: ./run_benches.sh [quick]
set -u
mkdir -p bench_results
if [ "${1:-}" = "quick" ]; then
  export BENCH_QUICK=1
else
  export BENCH_MAX_THREADS=${BENCH_MAX_THREADS:-4}
  export BENCH_ITERS=${BENCH_ITERS:-2000}
fi
for b in table1_semantics fig2_msgrate_process fig3_msgrate_thread fig4_bandwidth \
         fig5_resources fig6_kmer fig7_octotiger ablations; do
  echo "=== running $b ==="
  cargo bench -p bench --bench "$b" 2>/dev/null | tee "bench_results/${b#*_}.txt" | tail -4
done
echo "=== criterion micro ==="
cargo bench -p bench --bench micro_criterion 2>/dev/null | tee bench_results/micro_criterion.txt | grep -E "time:|thrpt:" | head -20
