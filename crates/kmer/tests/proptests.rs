//! Property-based tests for the k-mer substrate: codec laws, Bloom
//! filter guarantees, concurrent-map exactness, and the pipeline's
//! count-conservation invariant.

use kmer::bloom::TwoLayerBloom;
use kmer::chashmap::ShardedMap;
use kmer::kmer::{canonical_kmers, encode_base, kmer_hash, revcomp};
use proptest::prelude::*;

fn arb_dna(len: std::ops::Range<usize>) -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(proptest::sample::select(vec![b'A', b'C', b'G', b'T']), len)
}

proptest! {
    /// revcomp is an involution on every k-mer of every read.
    #[test]
    fn revcomp_involution(read in arb_dna(8..64), k in 1usize..8) {
        for w in read.windows(k) {
            let mut code: u128 = 0;
            for &b in w {
                code = (code << 2) | encode_base(b);
            }
            prop_assert_eq!(revcomp(revcomp(code, k), k), code);
        }
    }

    /// A read and its reverse complement produce the same canonical
    /// k-mer multiset.
    #[test]
    fn canonical_strand_invariance(read in arb_dna(10..80), k in 2usize..10) {
        let rc: Vec<u8> = read
            .iter()
            .rev()
            .map(|&b| match b {
                b'A' => b'T',
                b'T' => b'A',
                b'C' => b'G',
                _ => b'C',
            })
            .collect();
        let mut a = Vec::new();
        canonical_kmers(&read, k, |c| a.push(c));
        let mut b = Vec::new();
        canonical_kmers(&rc, k, |c| b.push(c));
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
    }

    /// The number of k-mers per read is exactly len - k + 1 (or zero).
    #[test]
    fn kmer_count_law(read in arb_dna(0..60), k in 1usize..12) {
        let mut n = 0usize;
        canonical_kmers(&read, k, |_| n += 1);
        prop_assert_eq!(n, read.len().saturating_sub(k - 1).min(read.len()));
    }

    /// Bloom: no false negatives, ever — anything inserted twice tests
    /// as multiple.
    #[test]
    fn bloom_no_false_negatives(codes in proptest::collection::vec(any::<u64>(), 1..200)) {
        let b = TwoLayerBloom::new(10_000);
        for &c in &codes {
            b.insert(c as u128);
            b.insert(c as u128);
        }
        for &c in &codes {
            prop_assert!(b.likely_multiple(c as u128));
        }
    }

    /// Order-independence of the *guarantee*: however a multiset is
    /// permuted, every element occurring at least twice is a layer-2
    /// member. (Full membership equality would be false — which
    /// singletons become false positives depends on insert order, an
    /// inherent Bloom property documented in `kmer::bloom`.)
    #[test]
    fn bloom_repeats_promoted_any_order(codes in proptest::collection::vec(0u64..500, 1..100)) {
        let mut counts = std::collections::HashMap::new();
        for &c in &codes {
            *counts.entry(c).or_insert(0u32) += 1;
        }
        let run = |cs: &[u64]| {
            let b = TwoLayerBloom::new(1000);
            for &c in cs {
                b.insert(c as u128);
            }
            b
        };
        let mut rev = codes.clone();
        rev.reverse();
        for b in [run(&codes), run(&rev)] {
            for (&c, &n) in &counts {
                if n >= 2 {
                    prop_assert!(b.likely_multiple(c as u128));
                }
            }
        }
    }

    /// ShardedMap counts exactly under any increment multiset.
    #[test]
    fn sharded_map_exact(incs in proptest::collection::vec(0u64..32, 1..300)) {
        let m = ShardedMap::new(8);
        let mut model = std::collections::HashMap::new();
        for &k in &incs {
            m.increment(k as u128);
            *model.entry(k).or_insert(0u32) += 1;
        }
        for (&k, &v) in &model {
            prop_assert_eq!(m.get(k as u128), v);
        }
        prop_assert_eq!(m.len(), model.len());
        // Histogram sums to the number of distinct keys.
        let hist = m.histogram(64);
        prop_assert_eq!(hist.iter().sum::<u64>(), model.len() as u64);
    }

    /// FASTA write/read is the identity on arbitrary read sets.
    #[test]
    fn fasta_roundtrip(reads in proptest::collection::vec(arb_dna(1..200), 1..20)) {
        let mut buf = Vec::new();
        kmer::write_fasta(&mut buf, &reads).unwrap();
        let parsed = kmer::read_fasta(&buf[..]).unwrap();
        prop_assert_eq!(parsed, reads);
    }

    /// Rank mapping uses the high hash bits, shard selection other bits:
    /// both must be full-range.
    #[test]
    fn hash_splits_are_reasonable(code in any::<u128>()) {
        let h = kmer_hash(code);
        // Smoke property: different nranks give in-range destinations.
        for n in [2usize, 3, 7, 64] {
            prop_assert!(((h >> 32) as usize % n) < n);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    /// Pipeline conservation: the serial reference's total counted
    /// occurrences (sum count*bucket) never exceeds the total k-mers in
    /// the read set, and every count>=2 k-mer of an error-free read set
    /// with coverage >= 2 is found.
    #[test]
    fn serial_pipeline_conservation(seed in any::<u64>(), n_reads in 50usize..200) {
        let cfg = kmer::KmerConfig {
            reads: kmer::ReadSetConfig {
                genome_len: 1000,
                n_reads,
                read_len: 50,
                error_rate: 0.0,
                seed,
            },
            k: 15,
            nthreads: 1,
            agg_size: 512,
            world: lcw::WorldConfig::new(
                lcw::BackendKind::Lci,
                lcw::Platform::Expanse,
                lcw::ResourceMode::Shared,
            ),
            expected_distinct: 4000,
            max_count: 128,
        };
        let res = kmer::serial_reference(&cfg, 1);
        let total_kmers = (n_reads * (50 - 15 + 1)) as u64;
        let counted: u64 = res
            .histogram
            .iter()
            .enumerate()
            .map(|(c, &n)| c as u64 * n)
            .sum();
        prop_assert!(counted <= total_kmers);
        // With ~2.5x+ coverage and zero errors, some k-mers repeat.
        if n_reads >= 100 {
            prop_assert!(res.distinct > 0);
        }
    }
}
