//! A sharded concurrent hash map — the libcuckoo substitute (DESIGN.md).
//!
//! The role in the pipeline is the same as libcuckoo's in HipMer: a
//! thread-safe k-mer → count table whose insert path scales across the
//! RPC-serving threads. Sharding by key hash keeps lock contention low
//! (shard count ≫ thread count) without unsafe code.

use crate::kmer::kmer_hash;
use parking_lot::Mutex;
use std::collections::HashMap;

/// A sharded `u128 -> u32` counter map.
pub struct ShardedMap {
    shards: Box<[Mutex<HashMap<u128, u32>>]>,
    mask: u64,
}

impl ShardedMap {
    /// Creates a map with `shards` shards (rounded up to a power of two).
    pub fn new(shards: usize) -> Self {
        let n = shards.next_power_of_two().max(2);
        let shards = (0..n).map(|_| Mutex::new(HashMap::new())).collect::<Vec<_>>();
        Self { shards: shards.into_boxed_slice(), mask: (n - 1) as u64 }
    }

    #[inline]
    fn shard(&self, code: u128) -> &Mutex<HashMap<u128, u32>> {
        // Use the upper hash bits: the lower ones already select ranks.
        let h = kmer_hash(code).rotate_right(17);
        &self.shards[(h & self.mask) as usize]
    }

    /// Adds one occurrence of `code`.
    pub fn increment(&self, code: u128) {
        let mut s = self.shard(code).lock();
        *s.entry(code).or_insert(0) += 1;
    }

    /// Current count of `code`.
    pub fn get(&self, code: u128) -> u32 {
        self.shard(code).lock().get(&code).copied().unwrap_or(0)
    }

    /// Number of distinct keys.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Histogram of counts: `hist[i]` = number of k-mers occurring
    /// exactly `i` times (index 0 unused), capped at `max_count`.
    pub fn histogram(&self, max_count: usize) -> Vec<u64> {
        let mut hist = vec![0u64; max_count + 1];
        for s in self.shards.iter() {
            for &c in s.lock().values() {
                let idx = (c as usize).min(max_count);
                hist[idx] += 1;
            }
        }
        hist
    }

    /// Drains all entries (for test comparison).
    pub fn drain_entries(&self) -> Vec<(u128, u32)> {
        let mut out = Vec::new();
        for s in self.shards.iter() {
            out.extend(s.lock().drain());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn increment_and_get() {
        let m = ShardedMap::new(16);
        m.increment(42);
        m.increment(42);
        m.increment(7);
        assert_eq!(m.get(42), 2);
        assert_eq!(m.get(7), 1);
        assert_eq!(m.get(100), 0);
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn concurrent_increments_exact() {
        let m = Arc::new(ShardedMap::new(64));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = m.clone();
                std::thread::spawn(move || {
                    for i in 0..10_000u128 {
                        m.increment(i % 100);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        for i in 0..100u128 {
            assert_eq!(m.get(i), 400, "key {i}");
        }
    }

    #[test]
    fn histogram_counts() {
        let m = ShardedMap::new(4);
        for _ in 0..3 {
            m.increment(1);
        }
        for _ in 0..2 {
            m.increment(2);
        }
        m.increment(3);
        let h = m.histogram(10);
        assert_eq!(h[1], 1);
        assert_eq!(h[2], 1);
        assert_eq!(h[3], 1);
        // Cap behaviour.
        let h2 = m.histogram(2);
        assert_eq!(h2[2], 2, "count-3 k-mer folds into the cap bucket");
    }
}
