//! RPC layer (paper §5.3).
//!
//! Each k-mer is statically mapped to a rank by hash and shipped to its
//! home rank as a 16-byte active message. Earlier revisions carried a
//! hand-rolled per-destination aggregation buffer here (HipMer's
//! design); that duplication is gone — batching now happens inside the
//! communication runtime itself via LCI's sender-side coalescing
//! ([`lci::coalesce`]), configured through
//! [`WorldConfig::with_coalescing`](lcw::WorldConfig). The application
//! just posts one small AM per k-mer; the runtime packs messages bound
//! for the same rank into shared wire frames and the receive side
//! delivers them back as individual AMs, so this module stays
//! backend-agnostic (the MPI/GASNet baselines send the same per-k-mer
//! messages, unaggregated — they have no equivalent facility).

use crate::kmer::KmerCode;
use lcw::{Endpoint, Msg};
use std::sync::atomic::{AtomicU64, Ordering};

/// Bytes per serialized k-mer.
pub const KMER_BYTES: usize = 16;

/// Sends one k-mer to `dest`, retrying on transient resource shortage.
/// `drain` is invoked while the send path pushes back, so the caller
/// keeps consuming incoming RPCs (deadlock freedom). Bumps the shared
/// per-destination sent counter on success.
pub fn send_kmer(
    ep: &mut Endpoint,
    dest: usize,
    code: KmerCode,
    tag: u32,
    sent: &[AtomicU64],
    drain: &mut impl FnMut(&mut Endpoint),
) {
    let bytes = code.to_le_bytes();
    while !ep.send_am(dest, &bytes, tag) {
        // Retry status: poll and serve to free resources.
        ep.progress();
        drain(ep);
    }
    sent[dest].fetch_add(1, Ordering::AcqRel);
}

/// Decodes the k-mers of an incoming message (one per message when the
/// runtime delivers coalesced sub-messages individually; the
/// `chunks_exact` form also accepts legacy multi-k-mer payloads).
pub fn decode_kmers(msg: &Msg) -> impl Iterator<Item = KmerCode> + '_ {
    msg.data.chunks_exact(KMER_BYTES).map(|c| KmerCode::from_le_bytes(c.try_into().unwrap()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use lci_fabric::Fabric;
    use lcw::{BackendKind, Platform, ResourceMode, World, WorldConfig};
    use std::sync::Arc;

    #[test]
    fn runtime_coalescing_batches_and_counts() {
        let fabric = Fabric::new(2);
        let cfg = WorldConfig::new(BackendKind::Lci, Platform::Expanse, ResourceMode::Shared)
            .with_coalescing(1024);
        let f2 = fabric.clone();
        let receiver = std::thread::spawn(move || {
            let w = World::new(f2, 1, cfg);
            let mut ep = w.endpoint(0);
            let mut got: Vec<u128> = Vec::new();
            while got.len() < 1000 {
                ep.progress();
                if let Some(m) = ep.poll_msg() {
                    assert_eq!(m.tag, 1);
                    assert_eq!(m.data.len(), KMER_BYTES);
                    got.extend(decode_kmers(&m));
                }
            }
            got.sort_unstable();
            assert_eq!(got, (0..1000u128).collect::<Vec<_>>());
        });
        let w = World::new(fabric, 0, cfg);
        let mut ep = w.endpoint(0);
        let sent = Arc::new((0..2).map(|_| AtomicU64::new(0)).collect::<Vec<_>>());
        let mut drain = |_: &mut Endpoint| {};
        for code in 0..1000u128 {
            send_kmer(&mut ep, 1, code, 1, &sent, &mut drain);
        }
        ep.flush();
        assert_eq!(sent[1].load(Ordering::SeqCst), 1000);
        assert_eq!(sent[0].load(Ordering::SeqCst), 0);
        // The runtime — not the application — did the aggregation.
        let stats = ep.lci_device().unwrap().stats();
        assert_eq!(stats.coalesced_msgs, 1000);
        assert!(stats.coalesce_flushes > 0);
        assert!(
            stats.coalesce_flushes < 1000,
            "frames must carry multiple sub-messages, got {} flushes",
            stats.coalesce_flushes
        );
        // Pump until receiver finishes.
        for _ in 0..10_000 {
            ep.progress();
        }
        receiver.join().unwrap();
    }
}
