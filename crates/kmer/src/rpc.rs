//! RPC-with-aggregation layer (paper §5.3).
//!
//! Each k-mer is statically mapped to a rank by hash. Rather than one
//! message per k-mer, k-mers destined to the same rank accumulate in a
//! per-destination aggregation buffer (8 KiB by default) that is flushed
//! as one active message — HipMer's design, with the paper's
//! multithreaded twist: the aggregation targets are *ranks*, so
//! multithreading divides the number of buffers per worker by the thread
//! count, and every thread serves incoming RPCs (the all-worker setup).

use crate::kmer::KmerCode;
use lcw::{Endpoint, Msg};
use std::sync::atomic::{AtomicU64, Ordering};

/// Bytes per serialized k-mer.
pub const KMER_BYTES: usize = 16;

/// Per-thread aggregation state.
pub struct Aggregator {
    bufs: Vec<Vec<u8>>,
    cap: usize,
    /// Shared per-destination sent counters (k-mers, not messages).
    sent: std::sync::Arc<Vec<AtomicU64>>,
}

impl Aggregator {
    /// Creates buffers for `nranks` destinations with `cap` bytes each.
    pub fn new(nranks: usize, cap: usize, sent: std::sync::Arc<Vec<AtomicU64>>) -> Self {
        assert!(cap >= KMER_BYTES);
        assert_eq!(sent.len(), nranks);
        Self { bufs: (0..nranks).map(|_| Vec::with_capacity(cap)).collect(), cap, sent }
    }

    /// Appends a k-mer for `dest`, flushing the buffer when full.
    /// `drain` is invoked while the send path pushes back, so the caller
    /// keeps consuming incoming RPCs (deadlock freedom).
    pub fn push(
        &mut self,
        ep: &mut Endpoint,
        dest: usize,
        code: KmerCode,
        tag: u32,
        drain: &mut impl FnMut(&mut Endpoint),
    ) {
        let buf = &mut self.bufs[dest];
        buf.extend_from_slice(&code.to_le_bytes());
        if buf.len() + KMER_BYTES > self.cap {
            self.flush_one(ep, dest, tag, drain);
        }
    }

    /// Flushes one destination buffer.
    fn flush_one(
        &mut self,
        ep: &mut Endpoint,
        dest: usize,
        tag: u32,
        drain: &mut impl FnMut(&mut Endpoint),
    ) {
        if self.bufs[dest].is_empty() {
            return;
        }
        let n_kmers = (self.bufs[dest].len() / KMER_BYTES) as u64;
        loop {
            if ep.send_am(dest, &self.bufs[dest], tag) {
                break;
            }
            // Retry status: poll and serve to free resources.
            ep.progress();
            drain(ep);
        }
        self.sent[dest].fetch_add(n_kmers, Ordering::AcqRel);
        self.bufs[dest].clear();
    }

    /// Flushes every non-empty buffer (end of a pass).
    pub fn flush_all(&mut self, ep: &mut Endpoint, tag: u32, drain: &mut impl FnMut(&mut Endpoint)) {
        for dest in 0..self.bufs.len() {
            self.flush_one(ep, dest, tag, drain);
        }
    }
}

/// Decodes the k-mers of an incoming aggregated message.
pub fn decode_kmers(msg: &Msg) -> impl Iterator<Item = KmerCode> + '_ {
    msg.data.chunks_exact(KMER_BYTES).map(|c| KmerCode::from_le_bytes(c.try_into().unwrap()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use lci_fabric::Fabric;
    use lcw::{BackendKind, Platform, ResourceMode, World, WorldConfig};
    use std::sync::Arc;

    #[test]
    fn aggregation_batches_and_counts() {
        let fabric = Fabric::new(2);
        let cfg = WorldConfig::new(BackendKind::Lci, Platform::Expanse, ResourceMode::Shared);
        let f2 = fabric.clone();
        let receiver = std::thread::spawn(move || {
            let w = World::new(f2, 1, cfg);
            let mut ep = w.endpoint(0);
            let mut got: Vec<u128> = Vec::new();
            while got.len() < 1000 {
                ep.progress();
                if let Some(m) = ep.poll_msg() {
                    assert_eq!(m.tag, 1);
                    assert!(m.data.len() <= 1024);
                    got.extend(decode_kmers(&m));
                }
            }
            got.sort_unstable();
            assert_eq!(got, (0..1000u128).collect::<Vec<_>>());
        });
        let w = World::new(fabric, 0, cfg);
        let mut ep = w.endpoint(0);
        let sent = Arc::new((0..2).map(|_| AtomicU64::new(0)).collect::<Vec<_>>());
        let mut agg = Aggregator::new(2, 1024, sent.clone());
        let mut drain = |_: &mut Endpoint| {};
        for code in 0..1000u128 {
            agg.push(&mut ep, 1, code, 1, &mut drain);
        }
        agg.flush_all(&mut ep, 1, &mut drain);
        assert_eq!(sent[1].load(Ordering::SeqCst), 1000);
        assert_eq!(sent[0].load(Ordering::SeqCst), 0);
        // Pump until receiver finishes.
        for _ in 0..10_000 {
            ep.progress();
        }
        receiver.join().unwrap();
    }
}
