//! A hand-written atomic two-layer Bloom filter (paper §5.3).
//!
//! HipMer's k-mer stage uses a two-layer filter: layer 1 records k-mers
//! seen at least once; layer 2 records k-mers seen at least twice. Only
//! layer-2 members enter the count table, filtering out the long tail of
//! single-occurrence (likely erroneous) k-mers and shrinking the
//! hashtable's memory footprint.
//!
//! This is a **blocked** Bloom filter: all probe bits of an element live
//! in one 64-bit word, so one `fetch_or` inserts the element *and*
//! reports atomically whether it was already present. That makes the
//! layer-1 → layer-2 promotion linearizable: of two racing first
//! inserts, exactly one observes "new" and exactly one observes
//! "present" — a k-mer seen twice always reaches layer 2 (a plain
//! per-bit filter would have a promotion race). Blocked filters trade a
//! slightly higher false-positive rate for exactly this property plus
//! one cache miss per op.

use crate::kmer::kmer_hash;
use std::sync::atomic::{AtomicU64, Ordering};

/// Probe bits per element (within one word).
const PROBES: u32 = 3;

struct Layer {
    words: Box<[AtomicU64]>,
    mask: u64,
}

impl Layer {
    fn new(bits: usize) -> Self {
        let words = (bits / 64).next_power_of_two().max(16);
        let v: Vec<AtomicU64> = (0..words).map(|_| AtomicU64::new(0)).collect();
        Self { words: v.into_boxed_slice(), mask: (words - 1) as u64 }
    }

    /// The (word index, in-word bit mask) block for hash `h`.
    #[inline]
    fn block(&self, h: u64) -> (usize, u64) {
        let word = (h & self.mask) as usize;
        // Derive PROBES bit positions from the upper hash bits.
        let mut bits = 0u64;
        let mut g = h | 1;
        for i in 0..PROBES {
            g = g.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(31 + i);
            bits |= 1u64 << (g % 64);
        }
        (word, bits)
    }

    /// Atomically inserts; returns whether the element was (possibly)
    /// present before this call.
    fn test_and_set(&self, h: u64) -> bool {
        let (w, bits) = self.block(h);
        let prev = self.words[w].fetch_or(bits, Ordering::AcqRel);
        prev & bits == bits
    }

    /// Tests without modifying.
    fn test(&self, h: u64) -> bool {
        let (w, bits) = self.block(h);
        self.words[w].load(Ordering::Acquire) & bits == bits
    }
}

/// The two-layer filter.
pub struct TwoLayerBloom {
    seen_once: Layer,
    seen_twice: Layer,
}

impl TwoLayerBloom {
    /// Creates a filter sized for roughly `expected` distinct elements
    /// (about 16 bits per element per layer — blocked filters want some
    /// slack).
    pub fn new(expected: usize) -> Self {
        let bits = expected.saturating_mul(16).max(1024);
        Self { seen_once: Layer::new(bits), seen_twice: Layer::new(bits) }
    }

    /// Records one occurrence of the k-mer with code-hash `h`.
    pub fn insert_hash(&self, h: u64) {
        if self.seen_once.test_and_set(h) {
            // Second (or later) sighting: promote to layer 2. Exactly
            // one of two racing first inserts takes this branch.
            self.seen_twice.test_and_set(h);
        }
    }

    /// Records one occurrence of `code`.
    pub fn insert(&self, code: u128) {
        self.insert_hash(kmer_hash(code));
    }

    /// Whether the k-mer was (probably) seen at least twice.
    pub fn likely_multiple_hash(&self, h: u64) -> bool {
        self.seen_twice.test(h)
    }

    /// Whether `code` was (probably) seen at least twice.
    pub fn likely_multiple(&self, code: u128) -> bool {
        self.likely_multiple_hash(kmer_hash(code))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn singletons_filtered_repeats_pass() {
        let b = TwoLayerBloom::new(10_000);
        for code in 0..1000u128 {
            b.insert(code); // once each
        }
        for code in 2000..2100u128 {
            b.insert(code);
            b.insert(code); // twice each
        }
        let fp: usize = (0..1000u128).filter(|&c| b.likely_multiple(c)).count();
        assert!(fp < 50, "false-positive burst: {fp}");
        for code in 2000..2100u128 {
            assert!(b.likely_multiple(code), "repeat must pass the filter");
        }
    }

    #[test]
    fn unseen_rarely_positive() {
        let b = TwoLayerBloom::new(100_000);
        for code in 0..5_000u128 {
            b.insert(code);
            b.insert(code);
        }
        let fp = (1_000_000..1_010_000u128).filter(|&c| b.likely_multiple(c)).count();
        assert!(fp < 100, "false positive rate too high: {fp}/10000");
    }

    #[test]
    fn concurrent_double_insert_always_promotes() {
        // The linearizability property the blocked design buys: when a
        // code is inserted exactly twice, concurrently, it must be in
        // layer 2 afterwards. Run many racing rounds.
        for round in 0..50u64 {
            let b = Arc::new(TwoLayerBloom::new(1000));
            let codes: Vec<u128> = (0..64u128).map(|i| (round as u128) << 32 | i).collect();
            let c1 = codes.clone();
            let b1 = b.clone();
            let t1 = std::thread::spawn(move || {
                for &c in &c1 {
                    b1.insert(c);
                }
            });
            let c2 = codes.clone();
            let b2 = b.clone();
            let t2 = std::thread::spawn(move || {
                for &c in c2.iter().rev() {
                    b2.insert(c);
                }
            });
            t1.join().unwrap();
            t2.join().unwrap();
            for &c in &codes {
                assert!(b.likely_multiple(c), "round {round}: promotion lost in race");
            }
        }
    }

    #[test]
    fn concurrent_inserts_no_loss() {
        let b = Arc::new(TwoLayerBloom::new(100_000));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let b = b.clone();
                std::thread::spawn(move || {
                    for code in 0..5_000u128 {
                        b.insert(code);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        for code in 0..5_000u128 {
            assert!(b.likely_multiple(code));
        }
    }

    #[test]
    fn deterministic_independent_of_order() {
        let mk = |codes: &[u128]| {
            let b = TwoLayerBloom::new(10_000);
            for &c in codes {
                b.insert(c);
            }
            (0..100u128).map(|c| b.likely_multiple(c)).collect::<Vec<bool>>()
        };
        let forward: Vec<u128> = (0..100).flat_map(|c| [c, c]).collect();
        let mut shuffled = forward.clone();
        shuffled.reverse();
        assert_eq!(mk(&forward), mk(&shuffled));
    }
}
