//! k-mer extraction and 2-bit encoding.
//!
//! A *read* is a DNA sequence shorter than the strand it came from; a
//! *k-mer* is a length-`k` substring. Bases pack 2 bits each into a
//! `u128`, supporting `k` up to 63. As in HipMer, a k-mer and its
//! reverse complement are identified (canonical form: the
//! lexicographically smaller of the two encodings), so reads from either
//! strand count together.

/// Packed k-mer code.
pub type KmerCode = u128;

/// Encodes one base (A=0, C=1, G=2, T=3). Unknown bases map to A, the
/// usual permissive convention for synthetic pipelines.
#[inline]
pub fn encode_base(b: u8) -> u128 {
    match b {
        b'A' | b'a' => 0,
        b'C' | b'c' => 1,
        b'G' | b'g' => 2,
        b'T' | b't' => 3,
        _ => 0,
    }
}

/// Complement of a 2-bit base code.
#[inline]
fn comp2(code: u128) -> u128 {
    3 - code
}

/// Reverse complement of a packed k-mer.
pub fn revcomp(code: KmerCode, k: usize) -> KmerCode {
    let mut out: u128 = 0;
    let mut c = code;
    for _ in 0..k {
        out = (out << 2) | comp2(c & 3);
        c >>= 2;
    }
    out
}

/// Iterates the canonical k-mers of `read`, calling `f` for each.
///
/// Uses a rolling encoding: O(1) work per position.
pub fn canonical_kmers(read: &[u8], k: usize, mut f: impl FnMut(KmerCode)) {
    assert!((1..=63).contains(&k), "k must be in 1..=63");
    if read.len() < k {
        return;
    }
    let mask: u128 = if k == 64 { u128::MAX } else { (1u128 << (2 * k)) - 1 };
    let mut fwd: u128 = 0; // forward strand code
    let mut rev: u128 = 0; // reverse-complement code (rolling)
    let shift = 2 * (k - 1);
    for (i, &b) in read.iter().enumerate() {
        let c = encode_base(b);
        fwd = ((fwd << 2) | c) & mask;
        rev = (rev >> 2) | (comp2(c) << shift);
        if i + 1 >= k {
            f(fwd.min(rev));
        }
    }
}

/// A 64-bit mix of a k-mer code (splitmix-style), used for rank mapping,
/// Bloom indices, and map sharding.
#[inline]
pub fn kmer_hash(code: KmerCode) -> u64 {
    let lo = code as u64;
    let hi = (code >> 64) as u64;
    let mut x = lo ^ hi.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect(read: &[u8], k: usize) -> Vec<KmerCode> {
        let mut v = Vec::new();
        canonical_kmers(read, k, |c| v.push(c));
        v
    }

    #[test]
    fn kmer_count_per_read() {
        assert_eq!(collect(b"ACGTACGT", 4).len(), 5);
        assert_eq!(collect(b"ACG", 4).len(), 0);
        assert_eq!(collect(b"ACGT", 4).len(), 1);
    }

    #[test]
    fn canonical_is_strand_invariant() {
        // ACGT's reverse complement is ACGT itself; try an asymmetric one.
        let fwd = collect(b"AACCGGTT", 5);
        let rc = collect(b"AACCGGTT", 5); // same read
        assert_eq!(fwd, rc);
        // A read and its reverse complement yield the same canonical set.
        let read = b"ACCGTAGGTA";
        let rc_read: Vec<u8> = read
            .iter()
            .rev()
            .map(|&b| match b {
                b'A' => b'T',
                b'C' => b'G',
                b'G' => b'C',
                _ => b'A',
            })
            .collect();
        let mut a = collect(read, 6);
        let mut b = collect(&rc_read, 6);
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn revcomp_involution() {
        let read = b"ACGGTTACGGAT";
        let mut codes = Vec::new();
        // Build raw forward codes manually.
        let k = 7;
        for w in read.windows(k) {
            let mut c: u128 = 0;
            for &b in w {
                c = (c << 2) | encode_base(b);
            }
            codes.push(c);
        }
        for c in codes {
            assert_eq!(revcomp(revcomp(c, k), k), c);
        }
    }

    #[test]
    fn rolling_matches_naive() {
        let read = b"TTGACCAGTAGGCAT";
        let k = 5;
        let rolled = collect(read, k);
        let mut naive = Vec::new();
        for w in read.windows(k) {
            let mut c: u128 = 0;
            for &b in w {
                c = (c << 2) | encode_base(b);
            }
            naive.push(c.min(revcomp(c, k)));
        }
        assert_eq!(rolled, naive);
    }

    #[test]
    fn hash_spreads() {
        // Adjacent codes should map to different ranks most of the time.
        let n = 1000u128;
        let mut buckets = [0usize; 8];
        for c in 0..n {
            buckets[(kmer_hash(c) % 8) as usize] += 1;
        }
        for &b in &buckets {
            assert!(b > 60, "bucket underfilled: {buckets:?}");
        }
    }
}
