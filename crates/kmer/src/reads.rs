//! Synthetic read-set generation.
//!
//! The paper uses the human chr14 dataset (7.75 GB, 37 M reads, 1.8 G
//! k-mers at k = 51), which is not redistributable. This generator
//! produces a read set with the same *shape*: a random reference genome,
//! reads sampled at random offsets with overlap (so most true k-mers
//! occur multiple times: `coverage` ≈ reads·len / genome), and per-base
//! substitution errors (so a long tail of single-occurrence erroneous
//! k-mers exists for the Bloom filter to remove) — the two properties
//! the HipMer pipeline's behaviour depends on.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Read-set parameters.
#[derive(Clone, Copy, Debug)]
pub struct ReadSetConfig {
    /// Reference genome length in bases.
    pub genome_len: usize,
    /// Number of reads to sample.
    pub n_reads: usize,
    /// Read length in bases.
    pub read_len: usize,
    /// Per-base substitution error probability.
    pub error_rate: f64,
    /// RNG seed (same seed ⇒ same read set on every rank).
    pub seed: u64,
}

impl Default for ReadSetConfig {
    fn default() -> Self {
        Self { genome_len: 100_000, n_reads: 5_000, read_len: 100, error_rate: 0.01, seed: 42 }
    }
}

const BASES: [u8; 4] = [b'A', b'C', b'G', b'T'];

/// Generates the reference genome for `cfg`.
pub fn generate_genome(cfg: &ReadSetConfig) -> Vec<u8> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    (0..cfg.genome_len).map(|_| BASES[rng.gen_range(0..4)]).collect()
}

/// Generates all reads for `cfg` (single collection; callers slice it
/// across ranks/threads).
pub fn generate_reads(cfg: &ReadSetConfig) -> Vec<Vec<u8>> {
    let genome = generate_genome(cfg);
    generate_reads_from(&genome, cfg)
}

/// Generates reads against an existing `genome`.
pub fn generate_reads_from(genome: &[u8], cfg: &ReadSetConfig) -> Vec<Vec<u8>> {
    assert!(genome.len() >= cfg.read_len, "genome shorter than a read");
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xD00D_F00D);
    (0..cfg.n_reads)
        .map(|_| {
            let start = rng.gen_range(0..=genome.len() - cfg.read_len);
            let mut read = genome[start..start + cfg.read_len].to_vec();
            for b in read.iter_mut() {
                if rng.gen_bool(cfg.error_rate) {
                    // Substitute with a *different* base.
                    let cur = *b;
                    loop {
                        let nb = BASES[rng.gen_range(0..4)];
                        if nb != cur {
                            *b = nb;
                            break;
                        }
                    }
                }
            }
            read
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_by_seed() {
        let cfg = ReadSetConfig { n_reads: 50, ..Default::default() };
        let a = generate_reads(&cfg);
        let b = generate_reads(&cfg);
        assert_eq!(a, b);
        let c = generate_reads(&ReadSetConfig { seed: 43, ..cfg });
        assert_ne!(a, c);
    }

    #[test]
    fn shapes_match_config() {
        let cfg = ReadSetConfig {
            genome_len: 5_000,
            n_reads: 123,
            read_len: 80,
            error_rate: 0.0,
            seed: 7,
        };
        let reads = generate_reads(&cfg);
        assert_eq!(reads.len(), 123);
        assert!(reads.iter().all(|r| r.len() == 80));
    }

    #[test]
    fn error_free_reads_are_substrings() {
        let cfg = ReadSetConfig {
            genome_len: 2_000,
            n_reads: 20,
            read_len: 50,
            error_rate: 0.0,
            seed: 9,
        };
        let genome = generate_genome(&cfg);
        let reads = generate_reads_from(&genome, &cfg);
        for r in &reads {
            assert!(
                genome.windows(50).any(|w| w == &r[..]),
                "error-free read must appear in the genome"
            );
        }
    }

    #[test]
    fn errors_change_some_bases() {
        let cfg = ReadSetConfig {
            genome_len: 2_000,
            n_reads: 50,
            read_len: 100,
            error_rate: 0.05,
            seed: 11,
        };
        let genome = generate_genome(&cfg);
        let clean = generate_reads_from(&genome, &ReadSetConfig { error_rate: 0.0, ..cfg });
        let noisy = generate_reads_from(&genome, &cfg);
        // Same offsets (same seed) but with substitutions sprinkled in.
        let diffs: usize = clean
            .iter()
            .zip(&noisy)
            .map(|(c, n)| c.iter().zip(n).filter(|(a, b)| a != b).count())
            .sum();
        assert!(diffs > 0, "some bases must differ");
    }
}
