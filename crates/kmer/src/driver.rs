//! The two-pass k-mer counting driver (paper §5.3).
//!
//! Pass 1 streams every k-mer to its home rank and inserts it into the
//! two-layer Bloom filter; pass 2 streams them again, and the home rank
//! counts those the filter marks as multi-occurrence. All worker threads
//! both produce (extract + aggregate + send) and consume (serve incoming
//! RPCs) — the *all-worker* setup the paper uses for LCI.
//!
//! Pass termination exchanges per-destination sent counts once all local
//! producers finished; every rank then drains until its received count
//! matches. This mirrors HipMer's barrier-separated stages. On the LCI
//! backend the exchange rides the data-path collectives ([`lci::coll`]);
//! baseline backends fall back to the fabric's out-of-band allgather
//! (the PMI stand-in).

use crate::bloom::TwoLayerBloom;
use crate::chashmap::ShardedMap;
use crate::kmer::{canonical_kmers, kmer_hash};
use crate::reads::{generate_reads, ReadSetConfig};
use crate::rpc::{decode_kmers, send_kmer};
use lci_fabric::Fabric;
use lcw::{Endpoint, World, WorldConfig};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

/// Full mini-app configuration.
#[derive(Clone, Copy, Debug)]
pub struct KmerConfig {
    /// Read-set shape (identical on every rank: same seed).
    pub reads: ReadSetConfig,
    /// k-mer length (paper: 51).
    pub k: usize,
    /// Worker threads per rank.
    pub nthreads: usize,
    /// Per-destination batching threshold in bytes (paper: 8 KiB).
    /// Plumbed into the LCI runtime's sender-side coalescing; the
    /// baseline backends have no equivalent and send per-k-mer messages.
    pub agg_size: usize,
    /// Communication backend/platform/mode.
    pub world: WorldConfig,
    /// Expected distinct k-mers (Bloom sizing).
    pub expected_distinct: usize,
    /// Histogram cap.
    pub max_count: usize,
}

impl Default for KmerConfig {
    fn default() -> Self {
        Self {
            reads: ReadSetConfig::default(),
            k: 31,
            nthreads: 2,
            agg_size: 8192,
            world: WorldConfig::new(
                lcw::BackendKind::Lci,
                lcw::Platform::Expanse,
                lcw::ResourceMode::Dedicated(2),
            ),
            expected_distinct: 200_000,
            max_count: 64,
        }
    }
}

/// Result of a rank's run.
#[derive(Clone, Debug)]
pub struct KmerResult {
    /// Global histogram (merged across ranks): `histogram[i]` = k-mers
    /// occurring exactly `i` times (only those passing the filter).
    pub histogram: Vec<u64>,
    /// Global number of counted (multi-occurrence) distinct k-mers.
    pub distinct: u64,
    /// Wall time of the counting stage (passes 1+2) on this rank.
    pub count_time: Duration,
}

struct RankShared {
    bloom: TwoLayerBloom,
    map: ShardedMap,
    received: AtomicU64,
    expected: AtomicU64,
    expected_ready: AtomicBool,
}

/// Allgather equal-size byte blocks over the data path when the LCI
/// backend is live, falling back to the out-of-band channel otherwise.
fn exchange_allgather(world: &World, fabric: &Fabric, rank: usize, mine: Vec<u8>) -> Vec<Vec<u8>> {
    if world.lci_runtime().is_some() && !mine.is_empty() {
        let len = mine.len();
        let mut flat = vec![0u8; len * fabric.nranks()];
        world.allgather_bytes(&mine, &mut flat).expect("data-path allgather");
        flat.chunks_exact(len).map(|c| c.to_vec()).collect()
    } else {
        fabric.oob_allgather(rank, mine)
    }
}

/// Data-path barrier on the LCI backend; out-of-band barrier otherwise.
fn exchange_barrier(world: &World, fabric: &Fabric) {
    if world.lci_runtime().is_some() {
        world.barrier().expect("data-path barrier");
    } else {
        fabric.oob_barrier();
    }
}

/// Runs the mini-app on `rank`. Every rank of the fabric must call this
/// with identical `cfg`. Returns the merged global result.
pub fn run_rank(fabric: Arc<Fabric>, rank: usize, cfg: KmerConfig) -> KmerResult {
    let nranks = fabric.nranks();
    // Batching moved from an application-level aggregator into the
    // communication runtime: agg_size becomes LCI's coalescing threshold.
    let mut world_cfg = cfg.world;
    if world_cfg.backend == lcw::BackendKind::Lci {
        world_cfg = world_cfg.with_coalescing(cfg.agg_size);
    }
    let world = Arc::new(World::new(fabric.clone(), rank, world_cfg));
    let shared = Arc::new(RankShared {
        bloom: TwoLayerBloom::new(cfg.expected_distinct),
        map: ShardedMap::new(256),
        received: AtomicU64::new(0),
        expected: AtomicU64::new(0),
        expected_ready: AtomicBool::new(false),
    });

    // Deterministic read set; this rank's threads take strided slices.
    let reads = Arc::new(generate_reads(&cfg.reads));
    // Bootstrap barrier: other ranks may still be constructing their
    // runtimes, so this one stays on the out-of-band channel.
    fabric.oob_barrier();
    let t0 = Instant::now();

    for pass in 1..=2u32 {
        let sent: Arc<Vec<AtomicU64>> = Arc::new((0..nranks).map(|_| AtomicU64::new(0)).collect());
        let thread_barrier = Arc::new(Barrier::new(cfg.nthreads + 1));

        std::thread::scope(|scope| {
            for t in 0..cfg.nthreads {
                let world = world.clone();
                let shared = shared.clone();
                let reads = reads.clone();
                let sent = sent.clone();
                let barrier = thread_barrier.clone();
                scope.spawn(move || {
                    let mut ep = world.endpoint(t);
                    run_pass_worker(
                        &mut ep, &shared, &reads, &cfg, pass, rank, nranks, t, &sent, &barrier,
                    );
                });
            }
            // Main thread: wait for all producers to flush, then publish
            // the global expected-count via the out-of-band channel.
            thread_barrier.wait();
            let mine: Vec<u8> = sent
                .iter()
                .map(|a| a.load(Ordering::Acquire))
                .flat_map(|v| v.to_le_bytes())
                .collect();
            let all = exchange_allgather(&world, &fabric, rank, mine);
            let mut expected = 0u64;
            for row in &all {
                let chunk = &row[rank * 8..rank * 8 + 8];
                expected += u64::from_le_bytes(chunk.try_into().unwrap());
            }
            shared.expected.store(expected, Ordering::Release);
            shared.expected_ready.store(true, Ordering::Release);
            // Workers drain to completion and hit the end-of-pass barrier.
            thread_barrier.wait();
            shared.expected_ready.store(false, Ordering::Release);
            shared.received.store(0, Ordering::Release);
        });
        exchange_barrier(&world, &fabric);
    }
    let count_time = t0.elapsed();

    // Merge histograms across ranks: a sum-allreduce. On LCI this rides
    // the chunk-pipelined ring; baselines sum the out-of-band allgather.
    let local_hist = shared.map.histogram(cfg.max_count);
    let mut bytes: Vec<u8> = local_hist.iter().flat_map(|v| v.to_le_bytes()).collect();
    let histogram: Vec<u64> = if world.lci_runtime().is_some() {
        world.allreduce(&mut bytes, &lci::SumU64).expect("data-path allreduce");
        bytes.chunks_exact(8).map(|c| u64::from_le_bytes(c.try_into().unwrap())).collect()
    } else {
        let all = fabric.oob_allgather(rank, bytes);
        let mut histogram = vec![0u64; cfg.max_count + 1];
        for row in &all {
            for (i, chunk) in row.chunks_exact(8).enumerate() {
                histogram[i] += u64::from_le_bytes(chunk.try_into().unwrap());
            }
        }
        histogram
    };
    let distinct = histogram.iter().sum();
    KmerResult { histogram, distinct, count_time }
}

/// One worker thread's share of one pass.
#[allow(clippy::too_many_arguments)]
fn run_pass_worker(
    ep: &mut Endpoint,
    shared: &RankShared,
    reads: &[Vec<u8>],
    cfg: &KmerConfig,
    pass: u32,
    rank: usize,
    nranks: usize,
    tid: usize,
    sent: &Arc<Vec<AtomicU64>>,
    barrier: &Barrier,
) {
    let apply = |shared: &RankShared, code: u128| match pass {
        1 => shared.bloom.insert(code),
        _ => {
            if shared.bloom.likely_multiple(code) {
                shared.map.increment(code);
            }
        }
    };
    let mut drain = |ep: &mut Endpoint| {
        while let Some(msg) = ep.poll_msg() {
            debug_assert_eq!(msg.tag, pass);
            let mut n = 0u64;
            for code in decode_kmers(&msg) {
                apply(shared, code);
                n += 1;
            }
            shared.received.fetch_add(n, Ordering::AcqRel);
        }
    };

    let stride = nranks * cfg.nthreads;
    let offset = rank * cfg.nthreads + tid;
    let mut since_poll = 0usize;
    let mut idx = offset;
    while idx < reads.len() {
        let read = &reads[idx];
        canonical_kmers(read, cfg.k, |code| {
            let dest = (kmer_hash(code) >> 32) as usize % nranks;
            if dest == rank {
                apply(shared, code);
            } else {
                send_kmer(ep, dest, code, pass, sent, &mut drain);
            }
        });
        since_poll += 1;
        if since_poll >= 4 {
            // Periodic background work (paper Listing 2's
            // do_background_work): progress + serve RPCs.
            ep.progress();
            drain(ep);
            since_poll = 0;
        }
        idx += stride;
    }
    // Ship anything still sitting in the runtime's coalescing buffers
    // before the sent-counts are exchanged.
    ep.flush();
    // Producers done: let the main thread exchange sent-counts, while we
    // keep serving.
    barrier.wait();
    loop {
        ep.progress();
        drain(ep);
        // Exit only once (a) this rank received everything destined to
        // it AND (b) this endpoint's own outbound work fully completed —
        // a rendezvous send still needs our progress to serve the RTR
        // even after every peer counted its arrivals.
        if shared.expected_ready.load(Ordering::Acquire)
            && shared.received.load(Ordering::Acquire) >= shared.expected.load(Ordering::Acquire)
            && ep.quiesced()
        {
            break;
        }
        std::thread::yield_now();
    }
    barrier.wait();
}

/// Single-process reference: the same two-pass algorithm without any
/// communication. To validate the distributed pipeline bit-exactly it
/// mirrors its structure: one Bloom filter and one count map per
/// simulated home rank, k-mers routed by the same hash (a Bloom filter's
/// false positives depend on which keys share a filter, so the partition
/// must match). `serial_reference(cfg, 1)` is the plain single-table
/// pipeline.
pub fn serial_reference(cfg: &KmerConfig, nranks: usize) -> KmerResult {
    let reads = generate_reads(&cfg.reads);
    let blooms: Vec<TwoLayerBloom> =
        (0..nranks).map(|_| TwoLayerBloom::new(cfg.expected_distinct)).collect();
    let maps: Vec<ShardedMap> = (0..nranks).map(|_| ShardedMap::new(16)).collect();
    let t0 = Instant::now();
    for read in &reads {
        canonical_kmers(read, cfg.k, |code| {
            let dest = (kmer_hash(code) >> 32) as usize % nranks;
            blooms[dest].insert(code);
        });
    }
    for read in &reads {
        canonical_kmers(read, cfg.k, |code| {
            let dest = (kmer_hash(code) >> 32) as usize % nranks;
            if blooms[dest].likely_multiple(code) {
                maps[dest].increment(code);
            }
        });
    }
    let mut histogram = vec![0u64; cfg.max_count + 1];
    for m in &maps {
        for (i, v) in m.histogram(cfg.max_count).into_iter().enumerate() {
            histogram[i] += v;
        }
    }
    let distinct = histogram.iter().sum();
    KmerResult { histogram, distinct, count_time: t0.elapsed() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcw::{BackendKind, Platform, ResourceMode};

    fn small_cfg(backend: BackendKind, nthreads: usize) -> KmerConfig {
        KmerConfig {
            reads: ReadSetConfig {
                genome_len: 3_000,
                n_reads: 400,
                read_len: 60,
                error_rate: 0.02,
                seed: 5,
            },
            k: 21,
            nthreads,
            agg_size: 512,
            world: WorldConfig::new(
                backend,
                Platform::Expanse,
                if backend == BackendKind::Lci {
                    ResourceMode::Dedicated(nthreads)
                } else {
                    ResourceMode::Shared
                },
            ),
            expected_distinct: 20_000,
            max_count: 32,
        }
    }

    fn run_distributed(nranks: usize, cfg: KmerConfig) -> KmerResult {
        let fabric = Fabric::new(nranks);
        let handles: Vec<_> = (0..nranks)
            .map(|r| {
                let fabric = fabric.clone();
                std::thread::spawn(move || run_rank(fabric, r, cfg))
            })
            .collect();
        let mut results: Vec<KmerResult> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        let first = results.remove(0);
        for r in &results {
            assert_eq!(r.histogram, first.histogram, "ranks must agree");
        }
        first
    }

    /// Histograms must agree exactly on every count >= 2 bucket (those
    /// are order-independent: a k-mer's own second insert always
    /// promotes it). The count-1 bucket holds Bloom false positives,
    /// whose membership depends on *insert order* — inherently different
    /// between serial and concurrent runs — so it only gets a tolerance.
    fn assert_histograms_agree(dist: &KmerResult, serial: &KmerResult) {
        assert_eq!(dist.histogram[2..], serial.histogram[2..], "count>=2 buckets are exact");
        let d1 = dist.histogram[1] as i64;
        let s1 = serial.histogram[1] as i64;
        assert!(
            (d1 - s1).abs() <= 1 + s1 / 10,
            "count-1 (false-positive) bucket drifted: {d1} vs {s1}"
        );
    }

    #[test]
    fn distributed_matches_serial_lci() {
        let cfg = small_cfg(BackendKind::Lci, 2);
        let serial = serial_reference(&cfg, 2);
        let dist = run_distributed(2, cfg);
        assert_histograms_agree(&dist, &serial);
        assert!(dist.distinct > 0, "workload must produce repeated k-mers");
    }

    #[test]
    fn distributed_matches_serial_gasnet() {
        let cfg = small_cfg(BackendKind::Gasnet, 2);
        let serial = serial_reference(&cfg, 2);
        let dist = run_distributed(2, cfg);
        assert_histograms_agree(&dist, &serial);
    }

    #[test]
    fn four_ranks_single_thread_reference_mode() {
        let cfg = small_cfg(BackendKind::Lci, 1);
        let serial = serial_reference(&cfg, 4);
        let dist = run_distributed(4, cfg);
        assert_histograms_agree(&dist, &serial);
    }

    #[test]
    fn histogram_reflects_coverage() {
        // High coverage, error-free: most k-mers occur many times.
        let mut cfg = small_cfg(BackendKind::Lci, 2);
        cfg.reads.error_rate = 0.0;
        cfg.reads.n_reads = 1000;
        let res = serial_reference(&cfg, 1);
        let multi: u64 = res.histogram.iter().skip(3).sum();
        assert!(multi > 0, "coverage should create high-count k-mers");
    }
}
