//! # kmer — the k-mer counting mini-app (paper §5.3)
//!
//! A reproduction of the HipMer k-mer counting stage used as the paper's
//! first application-level benchmark. With error-prone DNA reads as
//! input, the mini-app computes the histogram of k-mer occurrence
//! counts. The pipeline traverses the read set twice:
//!
//! 1. the first traversal inserts every k-mer into a **two-layer Bloom
//!    filter** ([`bloom`]);
//! 2. the second traversal consults the filter and inserts k-mers seen
//!    more than once into a **concurrent hash map** ([`chashmap`]),
//!    filtering out single-occurrence k-mers (likely sequencing errors)
//!    to shrink the table.
//!
//! Each k-mer is statically mapped to a rank by hash; k-mers travel as
//! RPC-style active messages with **per-destination aggregation buffers**
//! ([`rpc`]), 8 KiB per destination by default, exactly as in the paper.
//! The multithreaded implementation reduces the number of aggregation
//! targets by the thread count and lets every thread serve incoming
//! RPCs (the *all-worker* setup).
//!
//! The human chr14 dataset is not redistributable; [`reads`] generates a
//! synthetic read set with the same shape (reference genome, overlapping
//! error-prone reads) — see DESIGN.md's substitution table.

pub mod bloom;
pub mod chashmap;
pub mod driver;
pub mod fasta;
pub mod kmer;
pub mod reads;
pub mod rpc;

pub use bloom::TwoLayerBloom;
pub use chashmap::ShardedMap;
pub use driver::{run_rank, serial_reference, KmerConfig, KmerResult};
pub use fasta::{load_reads, read_fasta, read_fastq, write_fasta};
pub use kmer::{canonical_kmers, encode_base, KmerCode};
pub use reads::{generate_reads, ReadSetConfig};
