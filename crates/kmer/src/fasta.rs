//! Minimal FASTA/FASTQ reading and FASTA writing.
//!
//! The paper's dataset (human chr14) ships as FASTQ; this module lets
//! the mini-app run on real files when available while the synthetic
//! generator ([`crate::reads`]) covers the redistribution gap. Parsing
//! is deliberately permissive: sequence lines may wrap, headers are
//! ignored, and non-ACGT characters are kept (the k-mer encoder maps
//! them to `A`).

use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

/// Reads all sequences from a FASTA stream (`>`-headed records).
pub fn read_fasta(input: impl Read) -> std::io::Result<Vec<Vec<u8>>> {
    let mut reads = Vec::new();
    let mut current: Vec<u8> = Vec::new();
    let mut started = false;
    for line in BufReader::new(input).lines() {
        let line = line?;
        let line = line.trim_end();
        if let Some(_header) = line.strip_prefix('>') {
            if started && !current.is_empty() {
                reads.push(std::mem::take(&mut current));
            }
            started = true;
        } else if !line.is_empty() {
            current.extend_from_slice(line.as_bytes());
        }
    }
    if !current.is_empty() {
        reads.push(current);
    }
    Ok(reads)
}

/// Reads all sequences from a FASTQ stream (4-line records: `@header`,
/// sequence, `+`, qualities). Qualities are discarded.
pub fn read_fastq(input: impl Read) -> std::io::Result<Vec<Vec<u8>>> {
    let mut reads = Vec::new();
    let mut lines = BufReader::new(input).lines();
    while let Some(header) = lines.next() {
        let header = header?;
        if header.is_empty() {
            continue;
        }
        if !header.starts_with('@') {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("FASTQ record must start with '@', got {header:?}"),
            ));
        }
        let seq = lines.next().transpose()?.ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::UnexpectedEof, "missing sequence line")
        })?;
        let plus = lines.next().transpose()?.ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::UnexpectedEof, "missing '+' line")
        })?;
        if !plus.starts_with('+') {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "FASTQ separator line must start with '+'",
            ));
        }
        let _qual = lines.next().transpose()?.ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::UnexpectedEof, "missing quality line")
        })?;
        reads.push(seq.into_bytes());
    }
    Ok(reads)
}

/// Loads reads from a path, picking the format by extension
/// (`.fa`/`.fasta` vs `.fq`/`.fastq`).
pub fn load_reads(path: impl AsRef<Path>) -> std::io::Result<Vec<Vec<u8>>> {
    let path = path.as_ref();
    let file = std::fs::File::open(path)?;
    match path.extension().and_then(|e| e.to_str()) {
        Some("fq") | Some("fastq") => read_fastq(file),
        _ => read_fasta(file),
    }
}

/// Writes sequences as FASTA with 70-column wrapping.
pub fn write_fasta(mut out: impl Write, reads: &[Vec<u8>]) -> std::io::Result<()> {
    for (i, read) in reads.iter().enumerate() {
        writeln!(out, ">read_{i}")?;
        for chunk in read.chunks(70) {
            out.write_all(chunk)?;
            out.write_all(b"\n")?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fasta_roundtrip() {
        let reads: Vec<Vec<u8>> = vec![
            b"ACGTACGTACGT".to_vec(),
            vec![b'G'; 200], // forces line wrapping
            b"TTTT".to_vec(),
        ];
        let mut buf = Vec::new();
        write_fasta(&mut buf, &reads).unwrap();
        let parsed = read_fasta(&buf[..]).unwrap();
        assert_eq!(parsed, reads);
    }

    #[test]
    fn fasta_multiline_and_blank_lines() {
        let text = b">r1\nACGT\nACGT\n\n>r2\nTTAA\n";
        let parsed = read_fasta(&text[..]).unwrap();
        assert_eq!(parsed, vec![b"ACGTACGT".to_vec(), b"TTAA".to_vec()]);
    }

    #[test]
    fn fastq_parses_and_drops_quality() {
        let text = b"@r1 desc\nACGT\n+\nIIII\n@r2\nGGCC\n+r2\nJJJJ\n";
        let parsed = read_fastq(&text[..]).unwrap();
        assert_eq!(parsed, vec![b"ACGT".to_vec(), b"GGCC".to_vec()]);
    }

    #[test]
    fn fastq_rejects_malformed() {
        assert!(read_fastq(&b"ACGT\n"[..]).is_err());
        assert!(read_fastq(&b"@r1\nACGT\nIIII\nIIII\n"[..]).is_err());
        assert!(read_fastq(&b"@r1\nACGT\n"[..]).is_err());
    }

    #[test]
    fn load_reads_by_extension() {
        let dir = std::env::temp_dir();
        let fa = dir.join("lci_repro_test.fasta");
        std::fs::write(&fa, ">x\nACGTT\n").unwrap();
        assert_eq!(load_reads(&fa).unwrap(), vec![b"ACGTT".to_vec()]);
        let fq = dir.join("lci_repro_test.fastq");
        std::fs::write(&fq, "@x\nACGTT\n+\nIIIII\n").unwrap();
        assert_eq!(load_reads(&fq).unwrap(), vec![b"ACGTT".to_vec()]);
        let _ = std::fs::remove_file(fa);
        let _ = std::fs::remove_file(fq);
    }

    #[test]
    fn pipeline_runs_on_fasta_reads() {
        // End-to-end: serialize synthetic reads to FASTA, parse them
        // back, count k-mers.
        let cfg = crate::ReadSetConfig {
            genome_len: 1000,
            n_reads: 100,
            read_len: 50,
            error_rate: 0.0,
            seed: 21,
        };
        let reads = crate::generate_reads(&cfg);
        let mut buf = Vec::new();
        write_fasta(&mut buf, &reads).unwrap();
        let parsed = read_fasta(&buf[..]).unwrap();
        assert_eq!(parsed, reads);
        let mut n = 0u64;
        for r in &parsed {
            crate::canonical_kmers(r, 21, |_| n += 1);
        }
        assert_eq!(n, 100 * 30);
    }
}
