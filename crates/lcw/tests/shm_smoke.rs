//! Multi-process smoke tests over the real transports: each test
//! re-executes this test binary as the worker ranks (via
//! `bootstrap::launch`-style env rendezvous), so the traffic crosses
//! real OS process boundaries — separate address spaces, the segment's
//! rings (or the tcp socket mesh) as the only wire.
//!
//! The parent (the test as `cargo test` runs it) forks the children and
//! asserts their exit codes; a child re-runs exactly this test function,
//! finds `LCI_SHM_PATH` (or `LCI_TCP_ROOT`) in its environment, and
//! becomes a rank. The whole suite is transport-agnostic: it runs over
//! shm by default and over the tcp mesh with `LCI_TRANSPORT=tcp` — the
//! launcher picks the rendezvous, and `World::from_env` follows it.
#![cfg(unix)]

use lci_fabric::bootstrap::test_child_args;
use lcw::{BackendKind, Platform, QuiesceError, ResourceMode, World, WorldConfig};
use std::time::Duration;

const JOB_TIMEOUT: Duration = Duration::from_secs(120);
const QUIESCE: Duration = Duration::from_secs(30);

fn shm_cfg() -> WorldConfig {
    WorldConfig::new(BackendKind::Lci, Platform::ShmHost, ResourceMode::Shared)
}

/// Parent side: fork `nranks` children re-running `test_name` and check
/// they all exited 0. Child side: return the attached world.
fn launch(nranks: usize, test_name: &str, cfg: WorldConfig) -> Option<World> {
    match World::from_env(cfg).expect("attach") {
        Some(w) => Some(w),
        None => {
            let report = World::spawn_local(nranks, &test_child_args(test_name), JOB_TIMEOUT)
                .expect("spawn");
            assert!(report.all_ok(), "child exit codes: {:?}", report.exit_codes);
            None
        }
    }
}

fn recv_msg(ep: &mut lcw::Endpoint) -> lcw::Msg {
    loop {
        ep.progress();
        if let Some(m) = ep.poll_msg() {
            return m;
        }
    }
}

/// Two processes bounce tagged active messages; payloads checked both
/// directions, both ranks drain cleanly.
#[test]
fn multiproc_am_pingpong() {
    let Some(w) = launch(2, "multiproc_am_pingpong", shm_cfg()) else { return };
    let mut ep = w.endpoint(0);
    const ROUNDS: u64 = 50;
    if w.rank() == 0 {
        for i in 0..ROUNDS {
            let ball = [i as u8; 32];
            while !ep.send_am(1, &ball, i as u32) {
                ep.progress();
            }
            let echo = recv_msg(&mut ep);
            assert_eq!(echo.src, 1);
            assert_eq!(echo.tag, i as u32 + 1000);
            assert_eq!(echo.data, ball);
        }
    } else {
        for i in 0..ROUNDS {
            let m = recv_msg(&mut ep);
            assert_eq!(m.src, 0);
            assert_eq!(m.tag, i as u32);
            assert_eq!(m.data, vec![i as u8; 32]);
            while !ep.send_am(0, &m.data, m.tag + 1000) {
                ep.progress();
            }
        }
    }
    ep.quiesce(QUIESCE).expect("drain");
    let stats = ep.lci_device().expect("lci").stats();
    assert!(
        stats.shm_ring_hwm > 0 || stats.tcp_writev_frames > 0,
        "traffic never crossed the inter-process wire"
    );
}

/// A coalesced small-message stream between processes: frames carrying
/// many sub-messages survive the ring codec in order.
#[test]
fn multiproc_coalesced_stream() {
    let cfg = shm_cfg().with_coalescing(2048);
    let Some(w) = launch(2, "multiproc_coalesced_stream", cfg) else { return };
    let mut ep = w.endpoint(0);
    const MSGS: u64 = 500;
    if w.rank() == 0 {
        for seq in 0..MSGS {
            while !ep.send_am(1, &seq.to_le_bytes(), 7) {
                ep.progress();
            }
        }
        ep.flush();
        // Wait for the receiver's ack so the stream is known-delivered
        // before this process exits.
        let ack = recv_msg(&mut ep);
        assert_eq!(ack.tag, 8);
        ep.quiesce(QUIESCE).expect("drain");
        let stats = ep.lci_device().expect("lci").stats();
        assert!(stats.coalesced_msgs > 0, "coalescing enabled but never used");
    } else {
        for seq in 0..MSGS {
            let m = recv_msg(&mut ep);
            assert_eq!(m.tag, 7);
            assert_eq!(u64::from_le_bytes(m.data[..].try_into().unwrap()), seq, "stream reordered");
        }
        while !ep.send_am(0, &[1], 8) {
            ep.progress();
        }
        ep.quiesce(QUIESCE).expect("drain");
    }
}

/// A 256 KiB rendezvous transfer between processes: the chunked write
/// pipeline rides the segment's spill region end to end.
#[test]
fn multiproc_rendezvous_256k() {
    let Some(w) = launch(2, "multiproc_rendezvous_256k", shm_cfg()) else { return };
    let mut ep = w.endpoint(0);
    const LEN: usize = 256 << 10;
    let pattern: Vec<u8> = (0..LEN).map(|i| (i as u32).wrapping_mul(2654435761) as u8).collect();
    if w.rank() == 0 {
        while !ep.send(1, &pattern, 9) {
            ep.progress();
        }
        ep.quiesce(QUIESCE).expect("drain");
    } else {
        let tok = ep.post_recv(0, 9, LEN);
        let m = loop {
            ep.progress();
            if let Some(m) = ep.test_recv(&tok) {
                break m;
            }
        };
        assert_eq!(m.data.len(), LEN);
        assert_eq!(m.data, pattern, "rendezvous payload corrupted crossing processes");
        ep.quiesce(QUIESCE).expect("drain");
    }
}

/// A peer that dies mid-handshake must surface as an error, not a hang:
/// rank 1 exits abruptly (skipping all destructors, exit code 7) while
/// rank 0 has a rendezvous send in flight to it; rank 0's `quiesce`
/// returns `PeerDead`/`Timeout` instead of spinning forever, and the
/// launcher reports rank 1's real exit code.
/// Three processes run the full blocking collective surface through
/// the World wrappers: barrier, chunk-pipelined ring allreduce (blocks
/// split across multiple rendezvous chunks), Bruck allgather, the
/// bounded-inflight alltoall, and the sparse size-adaptive alltoallv
/// with its count exchange — every byte crossing the segment between
/// real address spaces.
#[test]
fn multiproc_collectives() {
    let cfg = shm_cfg().with_coll_chunk_size(16 << 10);
    let Some(w) = launch(3, "multiproc_collectives", cfg) else { return };
    let n = w.size();
    let rank = w.rank();

    w.barrier().expect("barrier");

    // Allreduce: 64 Ki u64s -> ~170 KiB blocks, several chunks each.
    let elems = 64 << 10;
    let mut bytes = vec![0u8; elems * 8];
    for (i, c) in bytes.chunks_exact_mut(8).enumerate() {
        c.copy_from_slice(&((rank * 7 + i) as u64).to_le_bytes());
    }
    w.allreduce(&mut bytes, &lci::SumU64).expect("allreduce");
    for (i, c) in bytes.chunks_exact(8).enumerate() {
        let want: u64 = (0..n).map(|r| (r * 7 + i) as u64).sum();
        assert_eq!(u64::from_le_bytes(c.try_into().unwrap()), want, "element {i}");
    }

    // Allgather: distinct per-rank fill.
    let mine = vec![rank as u8 + 1; 4096];
    let mut all = vec![0u8; 4096 * n];
    w.allgather_bytes(&mine, &mut all).expect("allgather");
    for r in 0..n {
        assert!(all[r * 4096..(r + 1) * 4096].iter().all(|&b| b == r as u8 + 1), "slot {r}");
    }

    // Alltoall: rendezvous-sized (src, dst)-tagged blocks.
    let block = 32 << 10;
    let send: Vec<u8> = (0..n * block).map(|i| (rank * 8 + i / block) as u8).collect();
    let mut recv = vec![0u8; n * block];
    w.alltoall_bytes(&send, &mut recv).expect("alltoall");
    for src in 0..n {
        assert!(
            recv[src * block..(src + 1) * block].iter().all(|&b| b == (src * 8 + rank) as u8),
            "block from {src}"
        );
    }

    // Alltoallv: a skewed sparse matrix — zero pairs skipped, an
    // inline-sized block, an eager block, and a multi-chunk block — with
    // the receive side learned through the count exchange (the MoE
    // dispatch shape). counts[src][dst], diagonal self-copied locally.
    let counts = [[64usize, 0, 40 << 10], [16, 8, 0], [0, 24 << 10, 5]];
    let send_counts = counts[rank].to_vec();
    let recv_counts = w.alltoallv_counts(&send_counts).expect("count exchange");
    for (src, &c) in recv_counts.iter().enumerate() {
        assert_eq!(c, counts[src][rank], "learned count from {src}");
    }
    let vsend: Vec<u8> = (0..n)
        .flat_map(|dst| (0..send_counts[dst]).map(move |i| (rank * 41 + dst * 13 + i) as u8))
        .collect();
    let mut vrecv = vec![0u8; recv_counts.iter().sum()];
    w.alltoallv(&vsend, &send_counts, &mut vrecv, &recv_counts).expect("alltoallv");
    let mut off = 0;
    for (src, &c) in recv_counts.iter().enumerate() {
        for i in 0..c {
            assert_eq!(vrecv[off + i], (src * 41 + rank * 13 + i) as u8, "byte {i} from {src}");
        }
        off += c;
    }
    let skipped = w.lci_runtime().expect("lci").device().stats().coll_skipped_pairs;
    let want_skipped = [1u64, 1, 1][rank];
    assert_eq!(skipped, want_skipped, "sparse pairs must post nothing");

    w.barrier().expect("closing barrier");
}

#[test]
fn multiproc_abrupt_peer_exit() {
    match World::from_env(shm_cfg()).expect("attach") {
        None => {
            let report =
                World::spawn_local(2, &test_child_args("multiproc_abrupt_peer_exit"), JOB_TIMEOUT)
                    .expect("spawn");
            assert_eq!(report.exit_codes, vec![0, 7], "expected rank 0 ok, rank 1 abrupt");
        }
        Some(w) => {
            if w.rank() == 1 {
                // Wait for the go-signal so rank 0's send is in flight
                // first, then die without detaching: no destructors, no
                // goodbye.
                let mut ep = w.endpoint(0);
                let m = recv_msg(&mut ep);
                assert_eq!(m.tag, 99);
                std::process::exit(7);
            }
            let mut ep = w.endpoint(0);
            // A rendezvous-sized send needs the peer to answer the RTS;
            // it never will. Post it, then tell the peer to die.
            let doomed = vec![0xEEu8; 256 << 10];
            while !ep.send(1, &doomed, 11) {
                ep.progress();
            }
            while !ep.send_am(1, &[0], 99) {
                ep.progress();
            }
            match ep.quiesce(QUIESCE) {
                Err(QuiesceError::PeerDead(r)) => assert_eq!(r, 1),
                Err(QuiesceError::Timeout) => {} // acceptable: error, not a hang
                Ok(()) => panic!("quiesce claimed clean drain with a dead peer"),
            }
        }
    }
}
