//! Multi-process smoke tests pinned to the tcp transport (the generic
//! suite in `shm_smoke.rs` covers both wires via `LCI_TRANSPORT`; these
//! tests force tcp so `cargo test` always exercises the socket mesh,
//! and add the tcp-specific assertions: writev counters, and positive
//! `PeerDead` detection from a killed peer's socket EOF).
#![cfg(unix)]

use lci_fabric::bootstrap::test_child_args;
use lcw::{BackendKind, Platform, QuiesceError, ResourceMode, World, WorldConfig};
use std::time::Duration;

const JOB_TIMEOUT: Duration = Duration::from_secs(120);
const QUIESCE: Duration = Duration::from_secs(30);

fn tcp_cfg() -> WorldConfig {
    WorldConfig::new(BackendKind::Lci, Platform::TcpHost, ResourceMode::Shared)
}

/// Parent side: force the tcp rendezvous, fork `nranks` children and
/// check exit codes. Child side: return the attached world.
fn launch(nranks: usize, test_name: &str, cfg: WorldConfig) -> Option<World> {
    match World::from_env(cfg).expect("attach") {
        Some(w) => Some(w),
        None => {
            std::env::set_var(lci_fabric::bootstrap::ENV_TRANSPORT, "tcp");
            let report = World::spawn_local(nranks, &test_child_args(test_name), JOB_TIMEOUT)
                .expect("spawn");
            assert!(report.all_ok(), "child exit codes: {:?}", report.exit_codes);
            None
        }
    }
}

fn recv_msg(ep: &mut lcw::Endpoint) -> lcw::Msg {
    loop {
        ep.progress();
        if let Some(m) = ep.poll_msg() {
            return m;
        }
    }
}

/// Four processes stream tagged messages rank-to-rank around a ring;
/// every rank's device must show vectored writes on the wire.
#[test]
fn tcp_multiproc_ring_stream() {
    let Some(w) = launch(4, "tcp_multiproc_ring_stream", tcp_cfg()) else { return };
    let mut ep = w.endpoint(0);
    let n = w.size();
    let rank = w.rank();
    let right = (rank + 1) % n;
    const MSGS: u64 = 200;
    let mut sent = 0u64;
    let mut got = 0u64;
    while sent < MSGS || got < MSGS {
        if sent < MSGS && ep.send_am(right, &sent.to_le_bytes(), 5) {
            sent += 1;
        }
        ep.progress();
        if let Some(m) = ep.poll_msg() {
            assert_eq!(m.src, (rank + n - 1) % n);
            assert_eq!(m.tag, 5);
            assert_eq!(u64::from_le_bytes(m.data[..].try_into().unwrap()), got, "reordered");
            got += 1;
        }
    }
    ep.quiesce(QUIESCE).expect("drain");
    let stats = ep.lci_device().expect("lci").stats();
    assert!(stats.tcp_writev_frames >= MSGS, "stream never crossed the socket mesh");
    assert!(stats.tcp_writev_calls > 0);
    assert!(stats.avg_writev_fill() >= 1.0);
    assert_eq!(stats.shm_ring_hwm, 0, "tcp job must not touch shm rings");
}

/// A killed peer surfaces as `PeerDead` — positively, within the
/// quiesce timeout — because its mesh sockets EOF. Rank 1 exits
/// abruptly (code 7) with rank 0's rendezvous handshake in flight.
#[test]
fn tcp_multiproc_peer_kill() {
    match World::from_env(tcp_cfg()).expect("attach") {
        None => {
            std::env::set_var(lci_fabric::bootstrap::ENV_TRANSPORT, "tcp");
            let report =
                World::spawn_local(2, &test_child_args("tcp_multiproc_peer_kill"), JOB_TIMEOUT)
                    .expect("spawn");
            assert_eq!(report.exit_codes, vec![0, 7], "expected rank 0 ok, rank 1 abrupt");
        }
        Some(w) => {
            if w.rank() == 1 {
                let mut ep = w.endpoint(0);
                let m = recv_msg(&mut ep);
                assert_eq!(m.tag, 99);
                std::process::exit(7);
            }
            let mut ep = w.endpoint(0);
            // A rendezvous-sized send needs the peer to answer the RTS;
            // it never will. Post it, then tell the peer to die.
            let doomed = vec![0xEEu8; 256 << 10];
            while !ep.send(1, &doomed, 11) {
                ep.progress();
            }
            while !ep.send_am(1, &[0], 99) {
                ep.progress();
            }
            match ep.quiesce(QUIESCE) {
                Err(QuiesceError::PeerDead(r)) => assert_eq!(r, 1),
                other => panic!("expected PeerDead(1) from the socket EOF, got {other:?}"),
            }
        }
    }
}
