//! Regression tests for bugs found while running the paper's
//! benchmarks at scale.

use lci_fabric::Fabric;
use lcw::{BackendKind, Platform, ResourceMode, World, WorldConfig};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Orphaned-message regression: with in-order ANY/ANY matching, an
/// arrival may complete a pre-posted request belonging to *any*
/// endpoint of the channel. The AM pool must therefore be shared: if a
/// thread that stops polling could strand messages in a private queue,
/// this test livelocks (it did before the fix).
///
/// Scenario: two rank-0 worker threads; worker A performs ONE exchange
/// and exits; worker B then performs many. B's replies must never be
/// lost to A's (now unpolled) requests.
#[test]
fn shared_mpi_pool_survives_early_thread_exit() {
    let fabric = Fabric::new(2);
    let cfg = WorldConfig::new(BackendKind::Mpi, Platform::Expanse, ResourceMode::Shared);
    let f2 = fabric.clone();
    let total_pings: u64 = 40;
    let server = std::thread::spawn(move || {
        let w = World::new(f2, 1, cfg);
        let mut ep = w.endpoint(0);
        let mut served = 0;
        while served < total_pings {
            ep.progress();
            while let Some(m) = ep.poll_msg() {
                while !ep.send_am(0, &m.data, m.tag + 1000) {
                    ep.progress();
                }
                served += 1;
            }
            std::thread::yield_now();
        }
        while !ep.quiesced() {
            ep.progress();
        }
    });

    let w = Arc::new(World::new(fabric, 0, cfg));
    let replies = Arc::new(AtomicU64::new(0));

    // Worker A: one exchange, then gone (its pre-posted requests stay).
    {
        let w = w.clone();
        let replies = replies.clone();
        std::thread::spawn(move || {
            let mut ep = w.endpoint(0);
            while !ep.send_am(1, &[1u8; 16], 1) {
                ep.progress();
            }
            loop {
                ep.progress();
                if ep.poll_msg().is_some() {
                    replies.fetch_add(1, Ordering::SeqCst);
                    return;
                }
                std::thread::yield_now();
            }
        })
        .join()
        .unwrap();
    }

    // Worker B: the remaining exchanges; must receive every reply even
    // when the channel matches them against A's stale requests.
    let mut ep = w.endpoint(1);
    for i in 1..total_pings {
        while !ep.send_am(1, &[2u8; 16], i as u32 + 1) {
            ep.progress();
        }
        let before = replies.load(Ordering::SeqCst);
        while replies.load(Ordering::SeqCst) == before {
            ep.progress();
            if ep.poll_msg().is_some() {
                replies.fetch_add(1, Ordering::SeqCst);
            }
            std::thread::yield_now();
        }
    }
    assert_eq!(replies.load(Ordering::SeqCst), total_pings);
    server.join().unwrap();
}

/// Rendezvous-termination regression: a rank whose inbound quota is met
/// must keep progressing until its *own* zero-copy sends complete (the
/// source serves the RTR after the destination has already counted all
/// its arrivals). `Endpoint::quiesced` is the contract; this test hangs
/// without it being honoured by the sender below.
#[test]
fn rendezvous_sender_must_drain_after_receiver_done() {
    let fabric = Fabric::new(2);
    let cfg = WorldConfig::new(BackendKind::Lci, Platform::Expanse, ResourceMode::Shared);
    let f2 = fabric.clone();
    let n: usize = 4;
    let size = 64 * 1024; // far above eager: zero-copy rendezvous
    let receiver = std::thread::spawn(move || {
        let w = World::new(f2, 1, cfg);
        let mut ep = w.endpoint(0);
        let mut got = 0;
        while got < n {
            ep.progress();
            if let Some(m) = ep.poll_msg() {
                assert_eq!(m.data.len(), size);
                got += 1;
            }
            std::thread::yield_now();
        }
        // Receiver exits immediately after counting; completing the
        // handshakes is the sender's responsibility.
    });
    let w = World::new(fabric, 0, cfg);
    let mut ep = w.endpoint(0);
    let payload = vec![7u8; size];
    for i in 0..n {
        while !ep.send_am(1, &payload, i as u32) {
            ep.progress();
            let _ = ep.poll_msg();
        }
    }
    // The fix under test: drain until quiesced (all FINs written).
    while !ep.quiesced() {
        ep.progress();
        std::thread::yield_now();
    }
    receiver.join().unwrap();
}
