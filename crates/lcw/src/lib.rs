//! # LCW — the Lightweight Communication Wrapper (paper §5.2)
//!
//! To ensure uniformity across communication libraries, the paper builds
//! a thin wrapper (LCW) over LCI, MPI, and GASNet-EX and writes the
//! microbenchmarks against it. This crate is that wrapper: simple
//! non-blocking active messages and send-receive primitives over
//!
//! * **LCI** (shared or dedicated-device mode),
//! * **MPI-sim** (`MPI_Isend` / pre-posted `MPI_Irecv` for AMs),
//! * **VCI-sim** (*mpix*; dedicated mode uses one VCI per thread),
//! * **GASNet-sim** (`am_request_medium`; send-receive unsupported,
//!   as in the paper).
//!
//! A [`World`] is created once per rank; each benchmark thread then takes
//! an [`Endpoint`] (its per-thread view: a dedicated device/VCI in
//! dedicated mode, a handle to the shared resources otherwise).

use crossbeam::queue::SegQueue;
use lci::{Comp, CompKind, PostResult};
use lci_baselines::channel::ChannelConfig;
use lci_baselines::{Gasnet, GasnetConfig, MpiComm, MpiConfig, VciComm, ANY_SOURCE, ANY_TAG};
use lci_fabric::sync::LockDiscipline;
use lci_fabric::{DeviceConfig, Fabric, Rank};
use std::collections::VecDeque;
use std::sync::Arc;

/// Which library backs the wrapper.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BackendKind {
    /// The LCI runtime of this repository.
    Lci,
    /// Standard-MPI stand-in (single coarse-locked channel).
    Mpi,
    /// MPICH-VCI stand-in (N coarse channels).
    Vci,
    /// GASNet-EX stand-in (shared AM endpoint).
    Gasnet,
}

/// Which transport the fabric devices ride: a simulated platform (paper
/// Table 2) or the real shared-memory wire.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Platform {
    /// SDSC Expanse: InfiniBand / libibverbs-like fine-grained locks.
    Expanse,
    /// NCSA Delta: Slingshot-11 / libfabric-like endpoint lock.
    Delta,
    /// Same-host shared-memory rings: real inter-process transport (or
    /// the in-process segment when the fabric is not attached).
    ShmHost,
    /// Real TCP sockets: full mesh with epoll-parked progress and
    /// vectored write batching (DESIGN.md §4.12). Works loopback
    /// in-process, or across processes via `LCI_TRANSPORT=tcp`.
    TcpHost,
}

impl Platform {
    /// The fabric device configuration for this platform.
    pub fn device_config(self) -> DeviceConfig {
        match self {
            Platform::Expanse => DeviceConfig::ibv(),
            Platform::Delta => DeviceConfig::ofi(),
            Platform::ShmHost => DeviceConfig::shm(),
            Platform::TcpHost => DeviceConfig::tcp(),
        }
    }

    /// Parses a transport selector (the `--transport` flag /
    /// `LCI_TRANSPORT` values): `sim-ibv`/`ibv`, `sim-ofi`/`ofi`, `shm`,
    /// `tcp`.
    pub fn from_name(name: &str) -> Option<Platform> {
        match name {
            "sim-ibv" | "ibv" => Some(Platform::Expanse),
            "sim-ofi" | "ofi" => Some(Platform::Delta),
            "shm" => Some(Platform::ShmHost),
            "tcp" => Some(Platform::TcpHost),
            _ => None,
        }
    }

    /// Reads the transport selector from `LCI_TRANSPORT`, if set and
    /// valid.
    pub fn from_env() -> Option<Platform> {
        std::env::var(lci_fabric::bootstrap::ENV_TRANSPORT)
            .ok()
            .and_then(|v| Platform::from_name(v.trim()))
    }

    /// The transport selected on the command line (`--transport <name>`
    /// or `--transport=<name>`) or, failing that, by `LCI_TRANSPORT`;
    /// `default` when neither is present. Unknown names panic with the
    /// valid selectors — a silent fallback would bench the wrong wire.
    pub fn from_args_or_env(default: Platform) -> Platform {
        let parse = |v: &str| {
            Platform::from_name(v).unwrap_or_else(|| {
                panic!("unknown transport {v:?}; expected sim-ibv, sim-ofi, shm, or tcp")
            })
        };
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            if a == "--transport" {
                if let Some(v) = args.next() {
                    return parse(&v);
                }
            } else if let Some(v) = a.strip_prefix("--transport=") {
                return parse(v);
            }
        }
        Platform::from_env().unwrap_or(default)
    }

    /// Like [`from_args_or_env`](Platform::from_args_or_env) but with no
    /// default: `None` means "no selector given, run the full sweep".
    pub fn selected() -> Option<Platform> {
        let mut args = std::env::args().skip(1);
        let explicit = loop {
            let Some(a) = args.next() else { break false };
            if a == "--transport" || a.starts_with("--transport=") {
                break true;
            }
        };
        if explicit {
            Some(Platform::from_args_or_env(Platform::Expanse))
        } else {
            Platform::from_env()
        }
    }

    /// The selector name this platform answers to (round-trips through
    /// [`from_name`](Platform::from_name)).
    pub fn transport_name(self) -> &'static str {
        match self {
            Platform::Expanse => "sim-ibv",
            Platform::Delta => "sim-ofi",
            Platform::ShmHost => "shm",
            Platform::TcpHost => "tcp",
        }
    }
}

/// Resource-sharing pattern of the thread-based mode (paper §5.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ResourceMode {
    /// All threads share one set of communication resources.
    Shared,
    /// Each thread gets dedicated resources (LCI device / MPICH VCI).
    /// The payload is the thread count.
    Dedicated(usize),
}

/// World configuration.
#[derive(Clone, Copy, Debug)]
pub struct WorldConfig {
    /// Library selection.
    pub backend: BackendKind,
    /// Platform (lock-granularity) selection.
    pub platform: Platform,
    /// Shared vs dedicated resources.
    pub mode: ResourceMode,
    /// Eager threshold / staging size for all libraries.
    pub eager_size: usize,
    /// Packet/staging pool size scale (per rank).
    pub pool_packets: usize,
    /// Sender-side small-message coalescing (LCI backend only; the
    /// other libraries have no equivalent and ignore it).
    pub coalesce: lci::CoalesceConfig,
    /// Zero-copy eager delivery on the receive side (LCI backend only;
    /// the other libraries always copy into staging buffers).
    pub zero_copy: bool,
    /// Chunked pipelined rendezvous writes (LCI backend only; off
    /// recovers the monolithic single-write large-message path).
    pub rdv_chunking: bool,
    /// Registration cache in the fabric device (LCI backend only here:
    /// LCI's rendezvous path registers memory per message, so it is the
    /// backend that feels the cache).
    pub reg_cache: bool,
    /// Steady-state storage recycling — pooled op contexts and recycled
    /// staging buffers (LCI backend only; the ablation knob for the
    /// allocate-per-operation baseline).
    pub alloc_recycling: bool,
    /// Who drives progress (LCI backend only): polling workers (the
    /// default), dedicated progress threads with doorbell parking, or
    /// the hybrid. With `Dedicated`/`Hybrid`, [`Endpoint::progress`]
    /// defers to the engine per the mode instead of always polling.
    pub progress_mode: lci::ProgressMode,
    /// Matching-engine bucket count (LCI backend only): the hash-table
    /// width the tag-matching engine shards its bucket locks over.
    pub matching_buckets: usize,
    /// Thread-per-core resource layout (LCI backend only): per-core
    /// packet/buffer-pool stripes, per-core stats cells, core-pinned
    /// progress threads (see [`lci::Placement`]).
    pub placement: lci::Placement,
    /// Collectives ablation (LCI backend only): route `lci::coll` calls
    /// through the naive clone-heavy baselines instead of the
    /// chunk-pipelined engines.
    pub coll_naive: bool,
    /// Collective pipeline chunk granularity in bytes (LCI backend
    /// only; see [`lci::RuntimeConfig::coll_chunk_size`]).
    pub coll_chunk_size: usize,
    /// Collective send-window depth — chunks in flight per rank before
    /// a post blocks (LCI backend only; see
    /// [`lci::RuntimeConfig::coll_max_inflight`]).
    pub coll_max_inflight: usize,
    /// Vectored write batching on the tcp transport (tcp platform
    /// only) — the ablation knob for syscall amortization: off forces
    /// one `write` per frame.
    pub tcp_batch: bool,
}

impl WorldConfig {
    /// A config for `backend` on `platform` with the given mode.
    pub fn new(backend: BackendKind, platform: Platform, mode: ResourceMode) -> Self {
        Self {
            backend,
            platform,
            mode,
            eager_size: 8192,
            pool_packets: 512,
            coalesce: lci::CoalesceConfig::default(),
            zero_copy: true,
            rdv_chunking: true,
            reg_cache: true,
            alloc_recycling: true,
            progress_mode: lci::ProgressMode::Workers,
            matching_buckets: 1024,
            placement: lci::Placement::default(),
            coll_naive: false,
            coll_chunk_size: 64 << 10,
            coll_max_inflight: 4,
            tcp_batch: true,
        }
    }

    /// The fabric device configuration this world's platform and knobs
    /// select (single source for every backend's channel config).
    fn device_config(&self) -> DeviceConfig {
        self.platform.device_config().with_tcp_batch(self.tcp_batch)
    }

    /// Enables or disables vectored write batching on the tcp transport
    /// — the ablation knob for `writev` syscall amortization.
    pub fn with_tcp_batch(mut self, on: bool) -> Self {
        self.tcp_batch = on;
        self
    }

    /// Enables LCI sender-side coalescing with a `max_bytes` flush
    /// threshold. A coalesced frame must fit one packet, so thresholds
    /// above `eager_size` are capped at world-creation time.
    pub fn with_coalescing(mut self, max_bytes: usize) -> Self {
        self.coalesce = lci::CoalesceConfig::enabled_with_bytes(max_bytes);
        self
    }

    /// Selects zero-copy vs copying eager delivery on the receive side
    /// (LCI backend only) — the ablation knob for the receive path.
    pub fn with_zero_copy(mut self, on: bool) -> Self {
        self.zero_copy = on;
        self
    }

    /// Selects chunked pipelined vs monolithic rendezvous writes (LCI
    /// backend only) — the ablation knob for the large-message pipeline.
    pub fn with_rdv_chunking(mut self, on: bool) -> Self {
        self.rdv_chunking = on;
        self
    }

    /// Enables or disables the fabric registration cache — the ablation
    /// knob for per-message memory registration cost.
    pub fn with_reg_cache(mut self, on: bool) -> Self {
        self.reg_cache = on;
        self
    }

    /// Enables or disables steady-state storage recycling — the ablation
    /// knob for per-operation allocation cost.
    pub fn with_alloc_recycling(mut self, on: bool) -> Self {
        self.alloc_recycling = on;
        self
    }

    /// Selects who drives progress on the LCI backend (polling workers,
    /// dedicated progress threads, or the hybrid) — the ablation knob
    /// for the progress engine.
    pub fn with_progress_mode(mut self, mode: lci::ProgressMode) -> Self {
        self.progress_mode = mode;
        self
    }

    /// Sets the matching-engine bucket count (LCI backend only) — the
    /// contention knob for the tag-matching hash table.
    pub fn with_matching_buckets(mut self, buckets: usize) -> Self {
        self.matching_buckets = buckets;
        self
    }

    /// Sets the thread-per-core placement policy (LCI backend only) —
    /// the ablation knob for core-aware resource layout.
    pub fn with_placement(mut self, placement: lci::Placement) -> Self {
        self.placement = placement;
        self
    }

    /// Selects the naive collective baselines instead of the pipelined
    /// engines (LCI backend only) — the collectives ablation knob.
    pub fn with_coll_naive(mut self, on: bool) -> Self {
        self.coll_naive = on;
        self
    }

    /// Sets the collective pipeline chunk granularity in bytes (LCI
    /// backend only).
    pub fn with_coll_chunk_size(mut self, bytes: usize) -> Self {
        self.coll_chunk_size = bytes;
        self
    }

    /// Sets the collective send-window depth (LCI backend only).
    pub fn with_coll_max_inflight(mut self, chunks: usize) -> Self {
        self.coll_max_inflight = chunks;
        self
    }
}

/// A received message.
#[derive(Debug)]
pub struct Msg {
    /// Source rank.
    pub src: Rank,
    /// Message tag.
    pub tag: u32,
    /// Payload.
    pub data: Vec<u8>,
}

/// A pending receive handle.
pub enum RecvToken {
    /// LCI synchronizer.
    Lci(Comp),
    /// Baseline channel request.
    Chan(lci_baselines::Request),
}

enum WorldInner {
    Lci { rt: lci::Runtime, devices: Vec<lci::Device>, am_cqs: Vec<Comp>, noop: Comp },
    Mpi { comm: MpiComm, am_recvs: AmPool },
    Vci { comm: VciComm, am_recvs: Vec<AmPool> },
    Gasnet { g: Arc<Gasnet>, inbox: Arc<SegQueue<Msg>> },
}

/// Per-rank wrapper state. Create on the rank's main thread, then hand
/// one [`Endpoint`] to each benchmark thread.
pub struct World {
    inner: WorldInner,
    cfg: WorldConfig,
    fabric: Arc<Fabric>,
    rank: Rank,
    nranks: usize,
}

impl World {
    /// Initializes the wrapper for `rank` over `fabric`.
    ///
    /// In dedicated mode all per-thread resources are created here, in
    /// deterministic order, so device/VCI indices pair up across ranks.
    pub fn new(fabric: Arc<Fabric>, rank: Rank, cfg: WorldConfig) -> World {
        let fab = fabric.clone();
        let nranks = fabric.nranks();
        let nthreads = match cfg.mode {
            ResourceMode::Shared => 1,
            ResourceMode::Dedicated(n) => n,
        };
        let inner = match cfg.backend {
            BackendKind::Lci => {
                // Frames land in packets: cap the coalescing threshold
                // at the packet payload size.
                let mut coalesce = cfg.coalesce;
                coalesce.max_bytes = coalesce.max_bytes.min(cfg.eager_size);
                let rt_cfg = lci::RuntimeConfig {
                    device: cfg.device_config().with_reg_cache(cfg.reg_cache),
                    rdv_chunking: cfg.rdv_chunking,
                    packet: lci::PacketPoolConfig {
                        payload_size: cfg.eager_size,
                        count: cfg.pool_packets.max(nthreads * 96),
                    },
                    eager_size: cfg.eager_size,
                    prepost: 64,
                    matching: lci::MatchingConfig { buckets: cfg.matching_buckets },
                    coalesce,
                    zero_copy_recv: cfg.zero_copy,
                    alloc_recycling: cfg.alloc_recycling,
                    progress_mode: cfg.progress_mode,
                    placement: cfg.placement,
                    coll_naive: cfg.coll_naive,
                    coll_chunk_size: cfg.coll_chunk_size,
                    coll_max_inflight: cfg.coll_max_inflight,
                    ..lci::RuntimeConfig::default()
                };
                let rt = lci::Runtime::new(fabric, rank, rt_cfg).expect("lci runtime");
                // One AM completion queue per thread (the paper's message
                // rate bench uses one CQ per thread); rcomp indices are
                // the thread ids, registered in the same order everywhere.
                let am_cqs: Vec<Comp> = (0..nthreads).map(|_| Comp::alloc_cq()).collect();
                for cq in &am_cqs {
                    rt.register_rcomp(cq.clone());
                }
                let devices = match cfg.mode {
                    ResourceMode::Shared => Vec::new(),
                    ResourceMode::Dedicated(n) => {
                        (0..n).map(|_| rt.alloc_device().expect("device")).collect()
                    }
                };
                // One shared no-op completion handler for all endpoints
                // (send-side completions the wrapper ignores), instead of
                // allocating one per `endpoint()` call.
                let noop = Comp::alloc_handler(|_| {});
                WorldInner::Lci { rt, devices, am_cqs, noop }
            }
            BackendKind::Mpi => {
                let mut mcfg = MpiConfig::ibv();
                mcfg.channel.device = cfg.device_config().with_discipline(LockDiscipline::Blocking);
                mcfg.channel.eager_size = cfg.eager_size;
                WorldInner::Mpi {
                    comm: MpiComm::init(fabric, rank, mcfg),
                    am_recvs: Arc::new(parking_lot::Mutex::new(VecDeque::new())),
                }
            }
            BackendKind::Vci => {
                let dev = cfg.device_config().with_discipline(LockDiscipline::Blocking);
                let ccfg = ChannelConfig { device: dev, eager_size: cfg.eager_size, prepost: 64 };
                WorldInner::Vci {
                    comm: VciComm::init(fabric, rank, nthreads, ccfg),
                    am_recvs: (0..nthreads)
                        .map(|_| Arc::new(parking_lot::Mutex::new(VecDeque::new())))
                        .collect(),
                }
            }
            BackendKind::Gasnet => {
                let gcfg = GasnetConfig {
                    device: cfg.device_config().with_discipline(LockDiscipline::TryLock),
                    max_medium: cfg.eager_size,
                    prepost: 64,
                };
                let g = Gasnet::init(fabric, rank, gcfg);
                let inbox: Arc<SegQueue<Msg>> = Arc::new(SegQueue::new());
                let sink = inbox.clone();
                g.register_handler(move |src, tag, payload| {
                    sink.push(Msg { src, tag, data: payload.to_vec() });
                });
                WorldInner::Gasnet { g, inbox }
            }
        };
        World { inner, cfg, fabric: fab, rank, nranks }
    }

    /// Attaches to a spawner-provided shared-memory segment when the
    /// rendezvous environment (`LCI_SHM_PATH`/`LCI_RANK`) is present and
    /// builds the worker's world over it; `Ok(None)` when this process
    /// was started directly (run the launcher side instead).
    ///
    /// The platform is forced to the transport the rendezvous selected
    /// ([`Platform::ShmHost`] or [`Platform::TcpHost`]) — an attached
    /// fabric's peers live in other processes, which only the real
    /// transports can reach — and only the LCI backend is supported
    /// (the baseline sims are in-process by construction).
    pub fn from_env(mut cfg: WorldConfig) -> std::io::Result<Option<World>> {
        let Some(ctx) = lci_fabric::bootstrap::from_env()? else { return Ok(None) };
        if cfg.backend != BackendKind::Lci {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "multi-process worlds require the LCI backend",
            ));
        }
        cfg.platform =
            if ctx.fabric.tcp_rank().is_some() { Platform::TcpHost } else { Platform::ShmHost };
        Ok(Some(World::new(ctx.fabric, ctx.rank, cfg)))
    }

    /// Launcher side of a multi-process job: forks `nranks` copies of
    /// the current binary (passing `child_args`) over a fresh named
    /// segment and waits for them. The children find the segment via
    /// [`World::from_env`]. See [`lci_fabric::bootstrap::spawn_local`].
    pub fn spawn_local(
        nranks: usize,
        child_args: &[std::ffi::OsString],
        timeout: std::time::Duration,
    ) -> std::io::Result<lci_fabric::bootstrap::ParentReport> {
        lci_fabric::bootstrap::spawn_local(nranks, child_args, timeout)
    }

    /// The fabric backing this world.
    pub fn fabric(&self) -> &Arc<Fabric> {
        &self.fabric
    }

    /// This rank.
    pub fn rank(&self) -> Rank {
        self.rank
    }

    /// World size.
    pub fn size(&self) -> usize {
        self.nranks
    }

    /// Whether the backend supports the send-receive primitives
    /// (GASNet-sim does not, as in the paper).
    pub fn supports_sendrecv(&self) -> bool {
        !matches!(self.inner, WorldInner::Gasnet { .. })
    }

    /// The backing LCI runtime, when this world runs the LCI backend —
    /// the handle the `lci::coll` collectives (and anything else beyond
    /// the wrapper surface) operate on.
    pub fn lci_runtime(&self) -> Option<&lci::Runtime> {
        match &self.inner {
            WorldInner::Lci { rt, .. } => Some(rt),
            _ => None,
        }
    }

    fn coll_rt(&self) -> lci::Result<&lci::Runtime> {
        self.lci_runtime().ok_or_else(|| {
            lci::FatalError::InvalidArg("collectives require the LCI backend".into())
        })
    }

    /// Data-path barrier across all ranks (LCI backend only; see
    /// [`lci::coll::barrier`]).
    pub fn barrier(&self) -> lci::Result<()> {
        lci::coll::barrier(self.coll_rt()?)
    }

    /// In-place byte allreduce (LCI backend only; see
    /// [`lci::coll::allreduce`]).
    pub fn allreduce<O: lci::ReduceOp + ?Sized>(&self, buf: &mut [u8], op: &O) -> lci::Result<()> {
        lci::coll::allreduce(self.coll_rt()?, buf, op)
    }

    /// Broadcast over a byte slice (LCI backend only; see
    /// [`lci::coll::broadcast_bytes`]).
    pub fn broadcast_bytes(&self, root: Rank, buf: &mut [u8]) -> lci::Result<()> {
        lci::coll::broadcast_bytes(self.coll_rt()?, root, buf)
    }

    /// Flat-buffer allgather (LCI backend only; see
    /// [`lci::coll::allgather_bytes`]).
    pub fn allgather_bytes(&self, mine: &[u8], out: &mut [u8]) -> lci::Result<()> {
        lci::coll::allgather_bytes(self.coll_rt()?, mine, out)
    }

    /// Flat-buffer alltoall (LCI backend only; see
    /// [`lci::coll::alltoall_bytes`]).
    pub fn alltoall_bytes(&self, send: &[u8], recv: &mut [u8]) -> lci::Result<()> {
        lci::coll::alltoall_bytes(self.coll_rt()?, send, recv)
    }

    /// Uneven-block alltoallv over flat buffers with per-peer count
    /// vectors (LCI backend only; see [`lci::coll::alltoallv`] for the
    /// sparse-skipping, size-adaptive, skew-scheduled engine).
    pub fn alltoallv(
        &self,
        send: &[u8],
        send_counts: &[usize],
        recv: &mut [u8],
        recv_counts: &[usize],
    ) -> lci::Result<()> {
        lci::coll::alltoallv(self.coll_rt()?, send, send_counts, recv, recv_counts)
    }

    /// One-round count exchange for the recv-side-unknown alltoallv
    /// case (LCI backend only; see [`lci::coll::alltoallv_counts`]):
    /// returns the receive-count vector matching `send_counts`.
    pub fn alltoallv_counts(&self, send_counts: &[usize]) -> lci::Result<Vec<usize>> {
        lci::coll::alltoallv_counts(self.coll_rt()?, send_counts)
    }

    /// In-place variant of [`World::alltoallv_counts`] writing into a
    /// caller-owned vector (allocation-free when warm; see
    /// [`lci::coll::exchange_counts`]).
    pub fn exchange_counts(
        &self,
        send_counts: &[usize],
        recv_counts: &mut [usize],
    ) -> lci::Result<()> {
        lci::coll::exchange_counts(self.coll_rt()?, send_counts, recv_counts)
    }

    /// Takes the per-thread endpoint `tid`. In dedicated mode `tid`
    /// selects the thread's device/VCI; in shared mode all endpoints
    /// reference the same resources. Call once per thread.
    pub fn endpoint(&self, tid: usize) -> Endpoint {
        let inner = match &self.inner {
            WorldInner::Lci { rt, devices, am_cqs, noop } => {
                // Shared mode routes through the caller's home device
                // (the default device unless extra devices exist);
                // dedicated mode keeps the explicit tid → device map.
                let device = match self.cfg.mode {
                    ResourceMode::Shared => rt.home_device(),
                    ResourceMode::Dedicated(_) => devices[tid].clone(),
                };
                EpInner::Lci {
                    rt: rt.clone(),
                    device,
                    am_cq: am_cqs[tid % am_cqs.len()].clone(),
                    rcomp: (tid % am_cqs.len()) as u32,
                    noop: noop.clone(),
                }
            }
            WorldInner::Mpi { comm, am_recvs } => {
                EpInner::Mpi { comm: comm.clone(), am_recvs: am_recvs.clone() }
            }
            WorldInner::Vci { comm, am_recvs } => EpInner::Vci {
                comm: comm.clone(),
                vci: tid,
                am_recvs: am_recvs[tid % am_recvs.len()].clone(),
            },
            WorldInner::Gasnet { g, inbox } => {
                EpInner::Gasnet { g: g.clone(), inbox: inbox.clone() }
            }
        };
        Endpoint { inner, fabric: self.fabric.clone(), nranks: self.nranks, rank: self.rank }
    }
}

/// Why [`Endpoint::quiesce`] gave up.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QuiesceError {
    /// A peer process exited or died mid-conversation (shared-memory
    /// transport only; the sims cannot lose a rank).
    PeerDead(Rank),
    /// The endpoint still had in-flight work when the timeout expired.
    Timeout,
}

impl std::fmt::Display for QuiesceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QuiesceError::PeerDead(r) => write!(f, "peer rank {r} exited or died"),
            QuiesceError::Timeout => write!(f, "quiesce timed out with work in flight"),
        }
    }
}

impl std::error::Error for QuiesceError {}

/// How many pre-posted AM receives the MPI/VCI endpoints keep.
const MPI_AM_PREPOST: usize = 32;

/// The pre-posted ANY/ANY receive pool for MPI-style AM emulation.
///
/// Shared across every endpoint of a channel: with in-order wildcard
/// matching, an arrival may complete *any* posted request, so a
/// per-thread pool would strand messages in the queue of a thread that
/// stopped polling (the shared-resource hazard the paper's §5.2
/// microbenchmarks exercise).
type AmPool = Arc<parking_lot::Mutex<VecDeque<lci_baselines::Request>>>;

enum EpInner {
    Lci { rt: lci::Runtime, device: lci::Device, am_cq: Comp, rcomp: u32, noop: Comp },
    Mpi { comm: MpiComm, am_recvs: AmPool },
    Vci { comm: VciComm, vci: usize, am_recvs: AmPool },
    Gasnet { g: Arc<Gasnet>, inbox: Arc<SegQueue<Msg>> },
}

/// A per-thread communication endpoint.
pub struct Endpoint {
    inner: EpInner,
    fabric: Arc<Fabric>,
    nranks: usize,
    rank: Rank,
}

impl Endpoint {
    /// This rank.
    pub fn rank(&self) -> Rank {
        self.rank
    }

    /// World size.
    pub fn size(&self) -> usize {
        self.nranks
    }

    /// Non-blocking active message. Returns `false` when the library
    /// asks the caller to retry (temporary resource shortage).
    pub fn send_am(&mut self, dst: Rank, data: &[u8], tag: u32) -> bool {
        match &mut self.inner {
            EpInner::Lci { rt, device, rcomp, noop, .. } => {
                match rt
                    .post_am_x(dst, data, noop.clone(), *rcomp)
                    .tag(tag)
                    .device(device)
                    .call()
                    .expect("lci am")
                {
                    PostResult::Done(_) | PostResult::Posted => true,
                    PostResult::Retry(_) => false,
                }
            }
            EpInner::Mpi { comm, .. } => {
                // MPI AMs: plain isend; the receiver's pre-posted irecvs
                // play the AM buffer pool (paper §5.2).
                let r = comm.isend(dst, data.to_vec(), tag);
                let _ = r; // completes when staged; nothing to track
                true
            }
            EpInner::Vci { comm, vci, .. } => {
                let r = comm.isend(*vci, dst, data.to_vec(), tag);
                let _ = r;
                true
            }
            EpInner::Gasnet { g, .. } => g.am_try_request_medium(dst, 0, tag, data),
        }
    }

    /// Polls for a delivered active message.
    pub fn poll_msg(&mut self) -> Option<Msg> {
        match &mut self.inner {
            EpInner::Lci { am_cq, .. } => {
                let desc = am_cq.pop()?;
                debug_assert_eq!(desc.kind, CompKind::Am);
                Some(Msg { src: desc.rank, tag: desc.tag, data: desc.data.into_vec() })
            }
            EpInner::Mpi { comm, am_recvs } => {
                let mut pool = am_recvs.lock();
                Self::fill_am_recvs(&mut pool, |s, t, m| comm.irecv(s, t, m));
                let front = pool.front()?;
                if front.is_done() {
                    let req = pool.pop_front().unwrap();
                    let st = req.take_status().expect("status");
                    Some(Msg { src: st.src, tag: st.tag, data: st.data })
                } else {
                    None
                }
            }
            EpInner::Vci { comm, vci, am_recvs } => {
                let v = *vci;
                let mut pool = am_recvs.lock();
                Self::fill_am_recvs(&mut pool, |s, t, m| comm.irecv(v, s, t, m));
                let front = pool.front()?;
                if front.is_done() {
                    let req = pool.pop_front().unwrap();
                    let st = req.take_status().expect("status");
                    Some(Msg { src: st.src, tag: st.tag, data: st.data })
                } else {
                    None
                }
            }
            EpInner::Gasnet { inbox, .. } => inbox.pop(),
        }
    }

    fn fill_am_recvs(
        q: &mut VecDeque<lci_baselines::Request>,
        mut post: impl FnMut(Rank, u32, usize) -> lci_baselines::Request,
    ) {
        while q.len() < MPI_AM_PREPOST {
            q.push_back(post(ANY_SOURCE, ANY_TAG, 65536));
        }
    }

    /// Non-blocking two-sided send. `false` = retry.
    pub fn send(&mut self, dst: Rank, data: &[u8], tag: u32) -> bool {
        match &mut self.inner {
            EpInner::Lci { rt, device, noop, .. } => {
                match rt
                    .post_send_x(dst, data, tag, noop.clone())
                    .device(device)
                    .call()
                    .expect("lci send")
                {
                    PostResult::Done(_) | PostResult::Posted => true,
                    PostResult::Retry(_) => false,
                }
            }
            EpInner::Mpi { comm, .. } => {
                comm.isend(dst, data.to_vec(), tag);
                true
            }
            EpInner::Vci { comm, vci, .. } => {
                comm.isend(*vci, dst, data.to_vec(), tag);
                true
            }
            EpInner::Gasnet { .. } => panic!("GASNet LCW does not support send-receive"),
        }
    }

    /// Posts a two-sided receive; pair with
    /// [`test_recv`](Endpoint::test_recv).
    pub fn post_recv(&mut self, src: Rank, tag: u32, max_size: usize) -> RecvToken {
        match &mut self.inner {
            EpInner::Lci { rt, device, .. } => {
                let comp = Comp::alloc_sync(1);
                match rt
                    .post_recv_x(src, vec![0u8; max_size], tag, comp.clone())
                    .device(device)
                    .call()
                    .expect("lci recv")
                {
                    PostResult::Done(desc) => {
                        // Deliver through the synchronizer for uniformity.
                        comp.signal(desc);
                        RecvToken::Lci(comp)
                    }
                    PostResult::Posted => RecvToken::Lci(comp),
                    PostResult::Retry(_) => unreachable!("lci recv never retries"),
                }
            }
            EpInner::Mpi { comm, .. } => RecvToken::Chan(comm.irecv(src, tag, max_size)),
            EpInner::Vci { comm, vci, .. } => RecvToken::Chan(comm.irecv(*vci, src, tag, max_size)),
            EpInner::Gasnet { .. } => panic!("GASNet LCW does not support send-receive"),
        }
    }

    /// Tests a pending receive; returns the message when complete.
    pub fn test_recv(&mut self, token: &RecvToken) -> Option<Msg> {
        match token {
            RecvToken::Lci(comp) => {
                let sync = comp.as_sync().expect("sync token");
                if sync.test() {
                    let desc = sync.take().pop().expect("desc");
                    Some(Msg { src: desc.rank, tag: desc.tag, data: desc.data.into_vec() })
                } else {
                    None
                }
            }
            RecvToken::Chan(req) => {
                if req.is_done() {
                    let st = req.take_status().expect("status");
                    Some(Msg { src: st.src, tag: st.tag, data: st.data })
                } else {
                    None
                }
            }
        }
    }

    /// Whether this endpoint has no in-flight work that still needs its
    /// progress (pending rendezvous handshakes, backlogged sends).
    ///
    /// A worker that stops calling [`progress`](Endpoint::progress)
    /// before `quiesced()` holds can strand a zero-copy transfer: the
    /// destination counts the message only after the FIN, which needs
    /// the *source* to serve the RTR.
    pub fn quiesced(&self) -> bool {
        match &self.inner {
            EpInner::Lci { device, .. } => {
                let (s, r) = device.pending_rendezvous();
                s == 0
                    && r == 0
                    && device.backlog_len() == 0
                    && device.coalesce_pending() == 0
                    && device.outbound_pending() == 0
            }
            EpInner::Mpi { comm, .. } => comm.pending() == 0,
            EpInner::Vci { comm, vci, .. } => comm.pending(*vci) == 0,
            EpInner::Gasnet { .. } => true, // medium AMs complete at post
        }
    }

    /// Drives progress until [`quiesced`](Endpoint::quiesced) holds,
    /// giving up when the deadline expires or — on the shm and tcp
    /// transports — when a peer process is observed dead. A survivor of
    /// an abrupt peer exit gets `Err(PeerDead(rank))` here instead of
    /// spinning forever on a handshake the peer will never answer.
    pub fn quiesce(&mut self, timeout: std::time::Duration) -> Result<(), QuiesceError> {
        let deadline = std::time::Instant::now() + timeout;
        loop {
            if self.quiesced() {
                return Ok(());
            }
            if let Some(r) = self.fabric.dead_peer() {
                return Err(QuiesceError::PeerDead(r));
            }
            if std::time::Instant::now() >= deadline {
                return Err(QuiesceError::Timeout);
            }
            self.progress();
            std::thread::yield_now();
        }
    }

    /// Ships any messages buffered by sender-side coalescing now (the
    /// LCI backend; a no-op elsewhere). Call before exchanging sent
    /// counts or entering a termination barrier.
    pub fn flush(&mut self) {
        if let EpInner::Lci { device, .. } = &self.inner {
            device.flush_coalesced().expect("lci flush");
        }
    }

    /// The LCI device backing this endpoint (for stats/diagnostics);
    /// `None` on the baseline backends.
    pub fn lci_device(&self) -> Option<&lci::Device> {
        match &self.inner {
            EpInner::Lci { device, .. } => Some(device),
            _ => None,
        }
    }

    /// Makes communication progress on this endpoint's resources. On
    /// the LCI backend this is the *worker-side* entry point: with a
    /// dedicated progress engine it defers per the runtime's progress
    /// mode (no-op in `Dedicated`, steal-when-parked in `Hybrid`)
    /// instead of always polling.
    pub fn progress(&mut self) -> bool {
        match &mut self.inner {
            EpInner::Lci { device, .. } => device.worker_progress().expect("lci progress"),
            EpInner::Mpi { comm, .. } => comm.progress(),
            EpInner::Vci { comm, vci, .. } => comm.progress(*vci),
            EpInner::Gasnet { g, .. } => g.poll(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(backend: BackendKind, platform: Platform, mode: ResourceMode) {
        roundtrip_cfg(WorldConfig::new(backend, platform, mode));
    }

    /// Runs the AM echo roundtrip under `cfg`; returns rank 0's LCI
    /// device stats (None on the baseline backends).
    fn roundtrip_cfg(cfg: WorldConfig) -> Option<lci::StatsSnapshot> {
        let fabric = Fabric::new(2);
        let f2 = fabric.clone();
        let t = std::thread::spawn(move || {
            let w = World::new(f2, 1, cfg);
            w.rank(); // silence
            let mut ep = w.endpoint(0);
            // Receive an AM, echo it back.
            let msg = loop {
                ep.progress();
                if let Some(m) = ep.poll_msg() {
                    break m;
                }
            };
            assert_eq!(msg.src, 0);
            assert_eq!(msg.data, vec![9u8; 32]);
            while !ep.send_am(0, &msg.data, msg.tag + 1) {
                ep.progress();
            }
            // Keep progressing until the echo has drained from our side
            // (a fixed iteration count races against the peer's matching
            // on the baseline backends; `quiesced` is the contract).
            while !ep.quiesced() {
                ep.progress();
                std::thread::yield_now();
            }
        });
        let w = World::new(fabric, 0, cfg);
        let mut ep = w.endpoint(0);
        while !ep.send_am(1, &[9u8; 32], 5) {
            ep.progress();
        }
        let reply = loop {
            ep.progress();
            if let Some(m) = ep.poll_msg() {
                break m;
            }
        };
        assert_eq!(reply.tag, 6);
        assert_eq!(reply.data, vec![9u8; 32]);
        t.join().unwrap();
        ep.lci_device().map(|d| d.stats())
    }

    #[test]
    fn am_roundtrip_lci_shared() {
        roundtrip(BackendKind::Lci, Platform::Expanse, ResourceMode::Shared);
    }

    #[test]
    fn am_roundtrip_lci_dedicated() {
        roundtrip(BackendKind::Lci, Platform::Expanse, ResourceMode::Dedicated(1));
    }

    #[test]
    fn am_roundtrip_lci_delta() {
        roundtrip(BackendKind::Lci, Platform::Delta, ResourceMode::Shared);
    }

    #[test]
    fn am_roundtrip_mpi() {
        roundtrip(BackendKind::Mpi, Platform::Expanse, ResourceMode::Shared);
    }

    #[test]
    fn am_roundtrip_vci() {
        roundtrip(BackendKind::Vci, Platform::Delta, ResourceMode::Dedicated(1));
    }

    #[test]
    fn am_roundtrip_gasnet() {
        roundtrip(BackendKind::Gasnet, Platform::Expanse, ResourceMode::Shared);
    }

    #[test]
    fn progress_mode_dedicated_roundtrip() {
        // Workers never poll in Dedicated mode: the roundtrip completes
        // on the engine's polling alone, and the worker-poll counter
        // stays at zero (the zero-worker-poll regression check).
        let cfg = WorldConfig::new(BackendKind::Lci, Platform::Delta, ResourceMode::Shared)
            .with_progress_mode(lci::ProgressMode::Dedicated(1));
        let stats = roundtrip_cfg(cfg).expect("lci stats");
        assert_eq!(stats.worker_polls, 0, "worker polled in Dedicated mode");
        assert!(stats.progress_calls > 0, "engine never polled");
    }

    #[test]
    fn progress_mode_hybrid_roundtrip() {
        let cfg = WorldConfig::new(BackendKind::Lci, Platform::Expanse, ResourceMode::Shared)
            .with_progress_mode(lci::ProgressMode::Hybrid(1));
        let stats = roundtrip_cfg(cfg).expect("lci stats");
        assert!(stats.progress_calls > 0);
    }

    #[test]
    fn sendrecv_lci_and_mpi() {
        for backend in [BackendKind::Lci, BackendKind::Mpi] {
            let fabric = Fabric::new(2);
            let cfg = WorldConfig::new(backend, Platform::Expanse, ResourceMode::Shared);
            let f2 = fabric.clone();
            let t = std::thread::spawn(move || {
                let w = World::new(f2, 1, cfg);
                let mut ep = w.endpoint(0);
                let tok = ep.post_recv(0, 3, 4096);
                loop {
                    ep.progress();
                    if let Some(m) = ep.test_recv(&tok) {
                        assert_eq!(m.data, vec![4u8; 2048]);
                        break;
                    }
                    std::thread::yield_now();
                }
            });
            let w = World::new(fabric, 0, cfg);
            assert!(w.supports_sendrecv());
            let mut ep = w.endpoint(0);
            while !ep.send(1, &vec![4u8; 2048], 3) {
                ep.progress();
            }
            // Drain until the send no longer needs this side's progress:
            // the MPI baseline moves a buffered send only on *sender*
            // progress, and the receiver may post its matching recv
            // arbitrarily late (thread-spawn race) — a fixed iteration
            // count here hangs the receiver intermittently.
            while !ep.quiesced() {
                ep.progress();
                std::thread::yield_now();
            }
            t.join().unwrap();
        }
    }

    #[test]
    fn gasnet_lacks_sendrecv() {
        let fabric = Fabric::new(1);
        let w = World::new(
            fabric,
            0,
            WorldConfig::new(BackendKind::Gasnet, Platform::Expanse, ResourceMode::Shared),
        );
        assert!(!w.supports_sendrecv());
    }
}
