//! In-process loopback tests for the tcp backend: two ranks in one
//! process, connected by real kernel sockets (the in-process mesh the
//! fabric builds lazily), so frames cross `writev`/`readv` and the
//! stream codec without needing a multi-process launch.
//!
//! The headline test is the syscall-amortization ablation: the same
//! burst of sends with vectored write batching on vs off, compared by
//! the `tcp_writev_frames / tcp_writev_calls` gather fill — batching
//! must ship many frames per syscall, the ablation exactly one.
#![cfg(unix)]

use lci_fabric::backend::{NetContext, NetDevice};
use lci_fabric::types::{CqeKind, RecvBufDesc};
use lci_fabric::{Cqe, DeviceConfig, Fabric};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn pair(cfg: DeviceConfig) -> (Arc<dyn NetDevice>, Arc<dyn NetDevice>) {
    let fabric = Fabric::new(2);
    let d0 = NetContext::new(fabric.clone(), 0).create_device(cfg);
    let d1 = NetContext::new(fabric, 1).create_device(cfg);
    (d0, d1)
}

/// Polls `dev` until `want` completions arrive (sockets are async even
/// on loopback: the peer's bytes land when the kernel says so).
fn poll_until(dev: &Arc<dyn NetDevice>, want: usize) -> Vec<Cqe> {
    let deadline = Instant::now() + Duration::from_secs(10);
    let mut cqes = Vec::new();
    while cqes.len() < want {
        dev.poll_cq(&mut cqes, 64).unwrap();
        assert!(Instant::now() < deadline, "timed out at {}/{want} completions", cqes.len());
        std::thread::yield_now();
    }
    cqes
}

fn post_packet_recv(dev: &Arc<dyn NetDevice>, buf: &mut [u8], ctx: u64) {
    // SAFETY: test keeps buf alive and unaliased until completion.
    let desc = unsafe { RecvBufDesc::new(buf.as_mut_ptr(), buf.len(), ctx) };
    dev.post_recv(desc).unwrap();
}

#[test]
fn send_recv_roundtrip_over_sockets() {
    let (d0, d1) = pair(DeviceConfig::tcp());
    let mut rbuf = vec![0u8; 64];
    post_packet_recv(&d1, &mut rbuf, 42);
    d0.post_send(1, 0, &[1, 2, 3], 0xAB, 7).unwrap();

    let cqes = poll_until(&d0, 1);
    assert_eq!(cqes[0].kind, CqeKind::SendDone);
    assert_eq!(cqes[0].ctx, 7);

    let cqes = poll_until(&d1, 1);
    assert_eq!(cqes[0].kind, CqeKind::RecvDone);
    assert_eq!(cqes[0].ctx, 42);
    assert_eq!(cqes[0].imm, 0xAB);
    assert_eq!(cqes[0].len, 3);
    assert_eq!(cqes[0].src_rank, 0);
    assert_eq!(&rbuf[..3], &[1, 2, 3]);

    let ts = d0.transport_stats();
    assert!(ts.tcp_writev_calls > 0, "nothing crossed the socket");
}

#[test]
fn self_send_skips_the_socket() {
    let (d0, _d1) = pair(DeviceConfig::tcp());
    let mut rbuf = vec![0u8; 16];
    post_packet_recv(&d0, &mut rbuf, 5);
    d0.post_send(0, 0, b"self", 1, 2).unwrap();
    let cqes = poll_until(&d0, 2);
    assert!(cqes.iter().any(|c| c.kind == CqeKind::SendDone));
    assert!(cqes.iter().any(|c| c.kind == CqeKind::RecvDone));
    assert_eq!(&rbuf[..4], b"self");
    assert_eq!(d0.transport_stats().tcp_writev_calls, 0, "self-sends must not hit the kernel");
}

#[test]
fn rdma_write_with_imm_over_sockets() {
    let (d0, d1) = pair(DeviceConfig::tcp());
    let target = [0u8; 128];
    let mr = d1.register(target.as_ptr(), target.len()).unwrap();
    let mut notif = vec![0u8; 8];
    post_packet_recv(&d1, &mut notif, 9);

    d0.post_write(1, 0, &[5u8; 16], mr.rkey, 32, Some(0x77), 3).unwrap();

    let cqes = poll_until(&d0, 1);
    assert_eq!(cqes[0].kind, CqeKind::WriteDone);
    assert_eq!(cqes[0].ctx, 3);

    let cqes = poll_until(&d1, 1);
    assert_eq!(cqes[0].kind, CqeKind::WriteImmRecv);
    assert_eq!(cqes[0].imm, 0x77);
    assert_eq!(&target[32..48], &[5u8; 16]);
}

#[test]
fn rdma_read_over_sockets() {
    let (d0, d1) = pair(DeviceConfig::tcp());
    let src: Vec<u8> = (0..64).collect();
    let mr = d1.register(src.as_ptr(), src.len()).unwrap();

    let mut dst = vec![0u8; 16];
    // SAFETY: dst outlives the read completion below.
    let desc = unsafe { RecvBufDesc::new(dst.as_mut_ptr(), dst.len(), 11) };
    d0.post_read(1, desc, mr.rkey, 8).unwrap();

    // The READ_REQ/READ_RESP exchange needs the responder polling too.
    let deadline = Instant::now() + Duration::from_secs(10);
    let mut cqes = Vec::new();
    let mut other = Vec::new();
    while cqes.is_empty() {
        d0.poll_cq(&mut cqes, 16).unwrap();
        d1.poll_cq(&mut other, 16).unwrap();
        assert!(Instant::now() < deadline, "read never completed");
    }
    assert_eq!(cqes[0].kind, CqeKind::ReadDone);
    assert_eq!(cqes[0].ctx, 11);
    assert_eq!(cqes[0].len, 16);
    assert_eq!(&dst[..], &src[8..24]);
}

/// Runs one 256-send burst (posted without polling, so the per-peer
/// queue fills) and returns `(writev_calls, writev_frames)` after
/// everything delivered.
fn burst_counters(batch: bool) -> (u64, u64) {
    const BURST: usize = 256;
    let (d0, d1) = pair(DeviceConfig::tcp().with_tcp_batch(batch));
    let mut rbufs: Vec<Vec<u8>> = (0..BURST).map(|_| vec![0u8; 64]).collect();
    for (i, b) in rbufs.iter_mut().enumerate() {
        post_packet_recv(&d1, b, i as u64);
    }
    // Queue the whole burst before any progress call: frames accumulate
    // in the send queue exactly as they do between an engine's polls.
    for i in 0..BURST {
        d0.post_send(1, 0, &[i as u8; 32], i as u64, i as u64).unwrap();
    }
    let _ = poll_until(&d0, BURST); // SendDones + flush
    let cqes = poll_until(&d1, BURST);
    assert_eq!(cqes.len(), BURST);
    let ts = d0.transport_stats();
    assert_eq!(ts.tcp_writev_frames, BURST as u64, "every frame ships exactly once");
    (ts.tcp_writev_calls, ts.tcp_writev_frames)
}

/// The tentpole ablation, counter edition: batching gathers many frames
/// per productive syscall; the one-write-per-frame ablation pins the
/// fill at exactly 1.0. (The wall-clock side of this — ≥2x message rate
/// on a 4-process stream — is measured by the `shm_scale` bench and
/// checked in CI.)
#[test]
fn writev_batching_fill_ablation() {
    let (calls_b, frames_b) = burst_counters(true);
    let (calls_u, frames_u) = burst_counters(false);
    assert_eq!(calls_u, frames_u, "unbatched mode must write one frame per syscall");
    let fill = frames_b as f64 / calls_b as f64;
    assert!(
        fill >= 2.0,
        "batched gather fill {fill:.2} ({frames_b} frames / {calls_b} writevs) \
         below the 2x amortization floor"
    );
    assert!(calls_b < calls_u, "batching must issue fewer syscalls ({calls_b} vs {calls_u})");
}

/// Teardown with queued-but-unflushed frames must not wedge: the
/// best-effort flush pushes them out so the peer still sees the bytes.
#[test]
fn teardown_flushes_pending_frames() {
    let (d0, d1) = pair(DeviceConfig::tcp());
    let mut rbuf = vec![0u8; 64];
    post_packet_recv(&d1, &mut rbuf, 1);
    d0.post_send(1, 0, b"bye", 0, 0).unwrap();
    let (cqes, _) = d0.teardown();
    assert!(cqes.iter().any(|c| c.kind == CqeKind::SendDone));
    let cqes = poll_until(&d1, 1);
    assert_eq!(cqes[0].kind, CqeKind::RecvDone);
    assert_eq!(&rbuf[..3], b"bye");
}
