//! Property tests for the shm frame codec and ring: arbitrary
//! header/payload/iovec frames round-trip through `produce`/`peek`/
//! `release`, including wrap-around at the ring boundary, spill-region
//! wrap, and capacity-1 rings. The same codec carries the coalesce
//! path's frames, so this doubles as its conformance surface.

use lci_fabric::shm::ring::test_support::OwnedChannel;
use lci_fabric::shm::ring::{
    decode_header, encode_header, ChanGeometry, FrameHeader, ProduceError, FLAG_HAS_IMM,
    HEADER_LEN, KIND_READ_REQ, KIND_READ_RESP, KIND_SEND, KIND_WRITE,
};
use proptest::prelude::*;

fn arb_header(seed: (u8, u8, u64, u32, u32, u64, u64, u64)) -> FrameHeader {
    let (kind_sel, flags, imm, src_dev, dst_dev, a, b, c) = seed;
    let kind = [KIND_SEND, KIND_WRITE, KIND_READ_REQ, KIND_READ_RESP][kind_sel as usize % 4];
    // FLAG_SPILLED is codec-owned; FLAG_HAS_IMM and spare bits pass through.
    FrameHeader { kind, flags: flags & FLAG_HAS_IMM, imm, src_dev, dst_dev, a, b, c }
}

proptest! {
    /// Header encode/decode is the identity for arbitrary field values.
    #[test]
    fn header_codec_roundtrip(
        seed in (any::<u8>(), any::<u8>(), any::<u64>(), any::<u32>(), any::<u32>(),
                 any::<u64>(), any::<u64>(), any::<u64>()),
        len in any::<u32>(),
        spill in any::<u64>(),
    ) {
        let h = arb_header(seed);
        let mut buf = [0u8; HEADER_LEN];
        encode_header(&mut buf, &h, len, spill);
        let (h2, len2, spill2) = decode_header(&buf);
        prop_assert_eq!(h2, h);
        prop_assert_eq!(len2, len);
        prop_assert_eq!(spill2, spill);
    }

    /// Frames round-trip through the ring in FIFO order for arbitrary
    /// iovec payloads, across ring sizes down to one slot. The frame
    /// count (up to 64) exceeds every ring capacity used, so the slot
    /// indices and the spill byte-ring wrap several times.
    #[test]
    fn ring_roundtrip_with_wraparound(
        slots in 1u64..5,
        slot_size in proptest::sample::select(vec![96usize, 128, 256]),
        frames in proptest::collection::vec(
            (
                (any::<u8>(), any::<u8>(), any::<u64>(), any::<u32>(), any::<u32>(),
                 any::<u64>(), any::<u64>(), any::<u64>()),
                proptest::collection::vec(
                    proptest::collection::vec(any::<u8>(), 0..300), 0..4),
            ),
            1..64,
        ),
    ) {
        let geo = ChanGeometry { ring_slots: slots, slot_size, spill_cap: 2048 };
        let oc = OwnedChannel::new(geo);
        let c = oc.chan();
        let mut queued: std::collections::VecDeque<(FrameHeader, Vec<u8>)> =
            std::collections::VecDeque::new();
        for (seed, segs) in &frames {
            let h = arb_header(*seed);
            let seg_refs: Vec<&[u8]> = segs.iter().map(|s| s.as_slice()).collect();
            let flat: Vec<u8> = segs.concat();
            loop {
                match c.produce(&h, &seg_refs) {
                    Ok(()) => {
                        queued.push_back((h, flat));
                        break;
                    }
                    Err(ProduceError::RingFull) | Err(ProduceError::SpillFull) => {
                        // Drain one queued frame to make room, checking it.
                        let (eh, ep) = queued.pop_front().expect("full ring implies queued frames");
                        let f = c.peek().expect("occupied ring must peek");
                        prop_assert_eq!(f.header.kind, eh.kind);
                        prop_assert_eq!(f.header.imm, eh.imm);
                        prop_assert_eq!(f.payload(), &ep[..]);
                        c.release(&f);
                    }
                    Err(ProduceError::TooLarge) => {
                        // Possible only when every seg hit max length on a
                        // tiny spill; skip this frame.
                        break;
                    }
                }
            }
        }
        // Drain the tail; everything comes out in order and intact,
        // with codec-owned FLAG_SPILLED masked off.
        while let Some((eh, ep)) = queued.pop_front() {
            let f = c.peek().expect("queued frame present");
            let got = FrameHeader {
                flags: f.header.flags & FLAG_HAS_IMM,
                ..f.header
            };
            prop_assert_eq!(got, eh);
            prop_assert_eq!(f.payload_len, ep.len());
            prop_assert_eq!(f.payload(), &ep[..]);
            c.release(&f);
        }
        prop_assert!(c.peek().is_none());
        prop_assert_eq!(c.occupancy(), 0);
    }

    /// A capacity-1 ring with spill alternates strictly: one in, one out.
    #[test]
    fn capacity_one_ring_alternates(
        payloads in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..700), 1..32),
    ) {
        let geo = ChanGeometry { ring_slots: 1, slot_size: 128, spill_cap: 2048 };
        let oc = OwnedChannel::new(geo);
        let c = oc.chan();
        for (i, p) in payloads.iter().enumerate() {
            let h = FrameHeader { kind: KIND_SEND, imm: i as u64, ..Default::default() };
            c.produce(&h, &[p]).unwrap();
            prop_assert_eq!(
                c.produce(&h, &[&[0u8; 4]]),
                Err(ProduceError::RingFull)
            );
            let f = c.peek().expect("one frame queued");
            prop_assert_eq!(f.header.imm, i as u64);
            prop_assert_eq!(f.payload(), &p[..]);
            c.release(&f);
        }
        prop_assert_eq!(c.occupancy_hwm(), 1);
    }
}
