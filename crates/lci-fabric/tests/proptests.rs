//! Property-based tests for the fabric's core data structures.

use lci_fabric::sync::{MpmcArray, SpinLock};
use lci_fabric::types::WirePayload;
use lci_fabric::{DeviceConfig, Fabric, NetContext, RecvBufDesc};
use proptest::prelude::*;

proptest! {
    /// WirePayload round-trips arbitrary byte strings and picks the
    /// inline representation iff they fit.
    #[test]
    fn wire_payload_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..4096)) {
        let p = WirePayload::from_slice(&data);
        prop_assert_eq!(p.as_slice(), &data[..]);
        prop_assert_eq!(p.len(), data.len());
        match &p {
            WirePayload::None => prop_assert!(data.is_empty()),
            WirePayload::Inline { .. } => prop_assert!((1..=64).contains(&data.len())),
            WirePayload::Heap(_) => prop_assert!(data.len() > 64),
        }
    }

    /// MpmcArray: a sequence of pushes/stores/clears behaves like a
    /// Vec<Option<T>> model.
    #[test]
    fn mpmc_array_matches_model(ops in proptest::collection::vec(0u8..3, 1..200)) {
        let arr: MpmcArray<u64> = MpmcArray::with_capacity(2);
        let mut model: Vec<Option<u64>> = Vec::new();
        let mut counter = 0u64;
        for op in ops {
            match op {
                0 => {
                    counter += 1;
                    let idx = arr.push(counter);
                    model.push(Some(counter));
                    prop_assert_eq!(idx, model.len() - 1);
                }
                1 if !model.is_empty() => {
                    counter += 1;
                    let idx = counter as usize % model.len();
                    arr.store(idx, counter);
                    model[idx] = Some(counter);
                }
                _ if !model.is_empty() => {
                    let idx = counter as usize % model.len();
                    arr.clear_at(idx);
                    model[idx] = None;
                }
                _ => {}
            }
        }
        prop_assert_eq!(arr.len(), model.len());
        for (i, v) in model.iter().enumerate() {
            prop_assert_eq!(arr.read(i), *v);
        }
        prop_assert_eq!(arr.read(model.len() + 1), None);
    }

    /// The registration table validates exactly the in-bounds accesses.
    #[test]
    fn registration_bounds(len in 1usize..4096, offset in 0usize..8192, access in 1usize..8192) {
        let fabric = Fabric::new(1);
        let buf = vec![0u8; len];
        let mr = fabric.mem().register(0, buf.as_ptr(), len);
        let ok = fabric.mem().validate(mr.rkey, offset, access).is_ok();
        prop_assert_eq!(ok, offset.checked_add(access).is_some_and(|e| e <= len));
    }

    /// Messages delivered through a device preserve content, immediate
    /// data, and source identity for arbitrary payloads.
    #[test]
    fn device_delivery_integrity(
        payloads in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..1500), 1..16),
        imm_seed in any::<u64>(),
    ) {
        let fabric = Fabric::new(2);
        let d0 = NetContext::new(fabric.clone(), 0).create_device(DeviceConfig::ibv());
        let d1 = NetContext::new(fabric, 1).create_device(DeviceConfig::ofi());

        // Pre-post enough receives on the ofi device.
        let mut bufs: Vec<Vec<u8>> = (0..payloads.len()).map(|_| vec![0u8; 2048]).collect();
        for (i, b) in bufs.iter_mut().enumerate() {
            // SAFETY: buffers outlive the deliveries below.
            let desc = unsafe { RecvBufDesc::new(b.as_mut_ptr(), b.len(), i as u64) };
            d1.post_recv(desc).unwrap();
        }
        for (i, p) in payloads.iter().enumerate() {
            let imm = imm_seed.wrapping_add(i as u64);
            d0.post_send(1, 0, p, imm, 0).unwrap();
        }
        let mut seen = vec![false; payloads.len()];
        let mut cqes = Vec::new();
        while seen.iter().any(|s| !s) {
            cqes.clear();
            d1.poll_cq(&mut cqes, 16).unwrap();
            for c in &cqes {
                if c.kind == lci_fabric::CqeKind::RecvDone {
                    let slot = c.ctx as usize;
                    prop_assert!(!seen[slot]);
                    seen[slot] = true;
                    // Find which payload this was by imm.
                    let idx = (c.imm.wrapping_sub(imm_seed)) as usize;
                    prop_assert_eq!(c.len, payloads[idx].len());
                    prop_assert_eq!(&bufs[slot][..c.len], &payloads[idx][..]);
                    prop_assert_eq!(c.src_rank, 0);
                }
            }
        }
    }

    /// SpinLock under arbitrary interleaved add/sub sequences conserves
    /// the running total.
    #[test]
    fn spinlock_conserves(ops in proptest::collection::vec(-50i64..50, 1..100)) {
        let lock = SpinLock::new(0i64);
        let expected: i64 = ops.iter().sum();
        std::thread::scope(|s| {
            for chunk in ops.chunks(10) {
                let chunk = chunk.to_vec();
                let lock = &lock;
                s.spawn(move || {
                    for v in chunk {
                        *lock.lock() += v;
                    }
                });
            }
        });
        prop_assert_eq!(*lock.lock(), expected);
    }
}
