//! Property tests for the TCP stream codec: arbitrary frame sequences
//! survive arbitrary fragmentation. A TCP stream has no record
//! boundaries — a `writev` on one side can be torn anywhere, and reads
//! on the other side deliver whatever the kernel has — so the decoder
//! must reassemble identical frames from *any* chunking of the byte
//! stream, including one-byte-at-a-time delivery and chunks that
//! straddle a header/payload boundary.

use lci_fabric::buf_pool::{BufPool, BufPoolConfig};
use lci_fabric::shm::ring::{
    FrameHeader, FLAG_HAS_IMM, HEADER_LEN, KIND_READ_REQ, KIND_READ_RESP, KIND_SEND, KIND_WRITE,
};
use lci_fabric::tcp::stream::{encode_frame, FrameDecoder, StreamError, MAX_FRAME_PAYLOAD};
use proptest::prelude::*;

fn arb_header(seed: (u8, u8, u64, u32, u32, u64, u64, u64)) -> FrameHeader {
    let (kind_sel, flags, imm, src_dev, dst_dev, a, b, c) = seed;
    let kind = [KIND_SEND, KIND_WRITE, KIND_READ_REQ, KIND_READ_RESP][kind_sel as usize % 4];
    FrameHeader { kind, flags: flags & FLAG_HAS_IMM, imm, src_dev, dst_dev, a, b, c }
}

/// Deterministic payload bytes so corruption shows as a value mismatch,
/// not just a length mismatch.
fn payload_bytes(len: usize, salt: u64) -> Vec<u8> {
    (0..len).map(|i| (i as u64).wrapping_mul(2654435761).wrapping_add(salt) as u8).collect()
}

/// Splits `stream` into chunks whose sizes cycle through `cuts`
/// (1-based), modelling adversarial kernel delivery.
fn feed_in_chunks(
    dec: &mut FrameDecoder,
    stream: &[u8],
    cuts: &[usize],
) -> Vec<(FrameHeader, Vec<u8>)> {
    let mut out = Vec::new();
    let mut off = 0;
    let mut i = 0;
    while off < stream.len() {
        let take = cuts[i % cuts.len()].clamp(1, stream.len() - off);
        i += 1;
        dec.push(&stream[off..off + take]);
        off += take;
        while let Some(f) = dec.decode_next().expect("valid stream") {
            out.push((f.header, f.payload.to_vec()));
        }
    }
    out
}

proptest! {
    /// Any frame sequence, fed through any fragmentation pattern, comes
    /// out intact and in order.
    #[test]
    fn frames_survive_arbitrary_fragmentation(
        seeds in prop::collection::vec(
            ((any::<u8>(), any::<u8>(), any::<u64>(), any::<u32>(), any::<u32>(),
              any::<u64>(), any::<u64>(), any::<u64>()), 0usize..2000),
            1..8),
        cuts in prop::collection::vec(1usize..4096, 1..6),
    ) {
        let pool = BufPool::new(BufPoolConfig::default());
        let mut stream = Vec::new();
        let mut expect = Vec::new();
        for (seed, len) in &seeds {
            let h = arb_header(*seed);
            let body = payload_bytes(*len, seed.2);
            // Encode through the same path the send queue uses,
            // splitting the payload into up to three gather segments.
            let (s1, rest) = body.split_at(body.len() / 3);
            let (s2, s3) = rest.split_at(rest.len() / 2);
            let buf = encode_frame(&pool, &h, &[s1, s2, s3]).expect("fits");
            stream.extend_from_slice(&buf[..]);
            expect.push((h, body));
        }
        let mut dec = FrameDecoder::new();
        let got = feed_in_chunks(&mut dec, &stream, &cuts);
        prop_assert_eq!(got.len(), expect.len());
        for ((gh, gp), (eh, ep)) in got.iter().zip(expect.iter()) {
            prop_assert_eq!(gh, eh);
            prop_assert_eq!(gp, ep);
        }
        prop_assert_eq!(dec.pending_bytes(), 0);
    }

    /// Byte-at-a-time delivery — the worst legal fragmentation — still
    /// reassembles exactly.
    #[test]
    fn single_byte_delivery(
        seed in (any::<u8>(), any::<u8>(), any::<u64>(), any::<u32>(), any::<u32>(),
                 any::<u64>(), any::<u64>(), any::<u64>()),
        len in 0usize..300,
    ) {
        let pool = BufPool::new(BufPoolConfig::default());
        let h = arb_header(seed);
        let body = payload_bytes(len, seed.2);
        let buf = encode_frame(&pool, &h, &[&body]).expect("fits");
        let mut dec = FrameDecoder::new();
        let got = feed_in_chunks(&mut dec, &buf[..], &[1]);
        prop_assert_eq!(got.len(), 1);
        prop_assert_eq!(&got[0].0, &h);
        prop_assert_eq!(&got[0].1, &body);
    }

    /// A frame larger than the reassembly buffer's initial capacity
    /// forces a grow mid-frame; the bytes still come out exact.
    #[test]
    fn oversized_frames_grow_the_buffer(
        len in (64usize << 10)..MAX_FRAME_PAYLOAD,
        cut in 1usize..65536,
    ) {
        let pool = BufPool::new(BufPoolConfig::default());
        let h = FrameHeader { kind: KIND_SEND, ..FrameHeader::default() };
        let body = payload_bytes(len, 7);
        let buf = encode_frame(&pool, &h, &[&body]).expect("fits");
        let mut dec = FrameDecoder::new();
        let got = feed_in_chunks(&mut dec, &buf[..], &[cut]);
        prop_assert_eq!(got.len(), 1);
        prop_assert_eq!(got[0].1.len(), len);
        prop_assert_eq!(&got[0].1, &body);
    }

    /// A corrupt kind byte surfaces as `BadKind` no matter where the
    /// stream was fragmented before it.
    #[test]
    fn corrupt_kind_is_detected(
        bad_kind in 6u8..=255,
        prefix_len in 0usize..200,
        cut in 1usize..128,
    ) {
        let pool = BufPool::new(BufPoolConfig::default());
        // One good frame, then a corrupt header.
        let good = FrameHeader { kind: KIND_WRITE, ..FrameHeader::default() };
        let body = payload_bytes(prefix_len, 3);
        let buf = encode_frame(&pool, &good, &[&body]).expect("fits");
        let mut stream = buf[..].to_vec();
        let corrupt = FrameHeader { kind: bad_kind, ..FrameHeader::default() };
        let cbuf = encode_frame(&pool, &corrupt, &[]).expect("fits");
        stream.extend_from_slice(&cbuf[..]);

        let mut dec = FrameDecoder::new();
        let mut off = 0;
        let mut decoded = 0usize;
        let mut err = None;
        'outer: while off < stream.len() {
            let take = cut.clamp(1, stream.len() - off);
            dec.push(&stream[off..off + take]);
            off += take;
            loop {
                match dec.decode_next() {
                    Ok(Some(_)) => decoded += 1,
                    Ok(None) => break,
                    Err(e) => { err = Some(e); break 'outer; }
                }
            }
        }
        prop_assert_eq!(decoded, 1, "the good frame decodes first");
        prop_assert_eq!(err, Some(StreamError::BadKind(bad_kind)));
    }
}

/// An oversize length field is rejected before any allocation of that
/// size happens (a malicious peer must not drive reassembly growth).
#[test]
fn oversize_length_is_detected() {
    let mut raw = vec![0u8; HEADER_LEN];
    // Hand-roll a header claiming a payload beyond the frame limit.
    let h = FrameHeader { kind: KIND_SEND, ..FrameHeader::default() };
    lci_fabric::shm::ring::encode_header(&mut raw, &h, (MAX_FRAME_PAYLOAD + 1) as u32, 0);
    let mut dec = FrameDecoder::new();
    dec.push(&raw);
    assert_eq!(dec.decode_next().unwrap_err(), StreamError::Oversize(MAX_FRAME_PAYLOAD + 1));
}
