//! Cross-core buffer-pool behaviour: buffers taken on one core and
//! freed on another must come home (remote-free-to-owner), shelves must
//! converge instead of leaking, and concurrent cross-core traffic must
//! never double-deliver one buffer's storage.

use lci_fabric::buf_pool::{BufPool, BufPoolConfig};
use lci_fabric::topology;
use proptest::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

fn pool(stripes: usize, max_per_class: usize) -> BufPool {
    BufPool::new(BufPoolConfig { enabled: true, max_per_class, stripes })
}

/// Producer-consumer pipeline: each producer core takes and fills a
/// buffer, ships it to a consumer bound to a *different* core, and the
/// consumer drops it (cross-core free) before acking. Origin-return
/// means the buffer lands back on the producer's own stripe, so every
/// take after warmup is an owner-local hit — exactly, not
/// probabilistically: each producer's shelf holds at most one buffer,
/// which surplus-only stealing refuses to take.
#[test]
fn cross_core_pipeline_is_owner_local() {
    const PRODUCERS: usize = 4;
    const ITERS: usize = 500;
    let pool = pool(PRODUCERS * 2, 64);
    let (tx, rx) = std::sync::mpsc::sync_channel::<(usize, lci_fabric::PoolBuf)>(PRODUCERS);
    let acks: Vec<_> = (0..PRODUCERS).map(|_| std::sync::mpsc::sync_channel::<()>(1)).collect();
    let (ack_tx, ack_rx): (Vec<_>, Vec<_>) = acks.into_iter().unzip();

    std::thread::scope(|s| {
        for (p, ack) in ack_rx.into_iter().enumerate() {
            let tx = tx.clone();
            let pool = pool.clone();
            s.spawn(move || {
                topology::bind_current_thread(p);
                for i in 0..ITERS {
                    let mut b = pool.take_len(256);
                    b[0] = (p * 31 + i) as u8;
                    tx.send((p, b)).unwrap();
                    // Wait until the consumer has freed our buffer, so
                    // the next take finds it home on our own stripe.
                    ack.recv().unwrap();
                }
            });
        }
        drop(tx);
        s.spawn(move || {
            // The consumer lives on a core no producer owns. In-flight
            // is one per producer, so per-producer arrival order is the
            // send order and the expected stamp is reconstructible.
            topology::bind_current_thread(PRODUCERS);
            let mut counts = [0usize; PRODUCERS];
            for (p, buf) in rx {
                assert_eq!(buf[0], (p * 31 + counts[p]) as u8, "payload survived the core hop");
                counts[p] += 1;
                drop(buf); // cross-core free: must return to its origin
                ack_tx[p].send(()).unwrap();
            }
        });
    });

    let s = pool.stats();
    assert_eq!(
        s.hits + s.misses,
        (PRODUCERS * ITERS) as u64,
        "every take is accounted exactly once"
    );
    // One warmup miss per producer allocates its working set; every
    // take after that is an owner-local hit, and nobody ever steals.
    assert_eq!(s.misses, PRODUCERS as u64, "exactly one warmup miss per producer");
    assert_eq!(s.steals, 0, "singleton shelves are never stolen");
    assert_eq!(s.local_hits, (PRODUCERS * (ITERS - 1)) as u64, "steady state is fully owner-local");
}

/// Concurrent takers on every stripe against one remote freeing thread:
/// storage handed out twice simultaneously would tear the fill pattern.
#[test]
fn no_double_delivery_under_contention() {
    const CORES: usize = 4;
    const ITERS: usize = 300;
    let pool = pool(CORES, 16);
    let live = Arc::new(AtomicU64::new(0));

    std::thread::scope(|s| {
        for c in 0..CORES {
            let pool = pool.clone();
            let live = live.clone();
            s.spawn(move || {
                topology::bind_current_thread(c);
                for i in 0..ITERS {
                    let mut b = pool.take_len(512);
                    // Claim the storage exclusively and check nobody
                    // else writes it while we hold it.
                    let stamp = ((c * ITERS + i) & 0xFF) as u8;
                    b.iter_mut().for_each(|x| *x = stamp);
                    live.fetch_add(1, Ordering::AcqRel);
                    std::thread::yield_now();
                    assert!(b.iter().all(|&x| x == stamp), "no concurrent writer on our buffer");
                    live.fetch_sub(1, Ordering::AcqRel);
                }
            });
        }
    });
    assert_eq!(live.load(Ordering::Acquire), 0);
    let s = pool.stats();
    assert_eq!(s.hits + s.misses, (CORES * ITERS) as u64);
}

proptest! {
    /// Arbitrary interleavings of take-on-core-A / free-on-core-B keep
    /// the pool's books exact: every take is accounted as exactly one
    /// hit or miss, buffers come back with the requested length, and
    /// the payload written under one take is never clobbered while
    /// held. `bind_current_thread` is rebindable, so one thread can
    /// deterministically replay any cross-core schedule.
    #[test]
    fn cross_core_interleavings_keep_books(
        ops in proptest::collection::vec((0usize..4, 0usize..4, 64usize..2048), 1..120),
    ) {
        let pool = pool(4, 8);
        // Buffers parked per core model arbitrary hold times.
        let mut parked: Vec<Vec<(u8, lci_fabric::PoolBuf)>> = (0..4).map(|_| Vec::new()).collect();
        let mut takes = 0u64;
        for (i, &(take_core, free_core, len)) in ops.iter().enumerate() {
            topology::bind_current_thread(take_core);
            let stamp = (i & 0xFF) as u8;
            let mut b = pool.take_len(len);
            prop_assert_eq!(b.len(), len);
            b.iter_mut().for_each(|x| *x = stamp);
            takes += 1;
            parked[take_core].push((stamp, b));
            if let Some((stamp, b)) = parked[free_core].pop() {
                topology::bind_current_thread(free_core);
                prop_assert!(b.iter().all(|&x| x == stamp), "no aliasing while parked");
                drop(b);
            }
        }
        // Drain the rest, freeing everything from one core: all
        // storage converges onto live shelves, none is lost.
        topology::bind_current_thread(3);
        for shelf in parked.iter_mut() {
            for (stamp, b) in shelf.drain(..) {
                prop_assert!(b.iter().all(|&x| x == stamp), "no aliasing at drain");
            }
        }
        let s = pool.stats();
        prop_assert_eq!(s.hits + s.misses, takes);
    }
}
