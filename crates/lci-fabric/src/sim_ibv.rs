//! The ibv-like backend (paper §4.2.3).
//!
//! Mirrors the libibverbs/mlx5 lock structure the paper analyses:
//!
//! * every **queue pair** (one per target rank) has its own posting lock
//!   (standing in for the QP spinlock + uUAR lock);
//! * the **completion queue** has its own lock, taken by `ibv_poll_cq`
//!   (pollers contend with each other, *not* with posters — the NIC
//!   writes CQEs by DMA, modelled as a lock-free staging queue);
//! * the **shared receive queue** has its own lock;
//! * memory (de)registration takes no backend locks beyond the
//!   registration table's internal append lock (the paper notes ibv
//!   registration acquires no locks). When the device-level
//!   [registration cache](crate::reg_cache) is enabled (the default),
//!   its mutex sits in front — a deliberate trade: one short cache
//!   mutex hold replaces a registration-table append per message.
//!
//! The `ibv_td_strategy` attribute controls QP lock sharing:
//! `per_qp` gives every QP its own trylock-wrapped lock; `all_qp` shares
//! one trylock-wrapped lock across all QPs; `none` shares one lock that is
//! always acquired *blockingly* (the provider's own lock, which LCI cannot
//! wrap).
//!
//! With `per_qp`, a worker thread posting a send and a progress thread
//! polling the CQ touch disjoint locks — the contention-free guarantee the
//! paper highlights for AMT-style runtimes.

use crate::backend::{deliver_into, DeviceConfig, NetDevice, SendDesc, TdStrategy};
use crate::buf_pool::{BufPool, BufPoolStats};
use crate::fabric::{Fabric, RxEndpoint};
use crate::mem::{MemoryRegion, Rkey};
use crate::reg_cache::{RegCache, RegCacheStats};
use crate::sync::{Doorbell, LockDiscipline, SpinLock};
use crate::types::{
    Cqe, CqeKind, DevId, NetError, NetResult, Rank, RecvBufDesc, RetryReason, WireMsg, WireMsgKind,
    WirePayload,
};
use crossbeam::queue::ArrayQueue;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Bookkeeping protected by a QP lock. The lock itself *is* the modelled
/// resource (uUAR doorbell serialization); the counter provides
/// observability for tests and ablations.
#[derive(Default)]
struct QpState {
    posted: u64,
}

/// The ibv-like device.
pub struct IbvDevice {
    fabric: Arc<Fabric>,
    rank: Rank,
    dev_id: DevId,
    cfg: DeviceConfig,
    rx: Arc<RxEndpoint>,
    /// One entry per target rank; entries may alias the same lock
    /// depending on the thread-domain strategy.
    qps: Vec<Arc<SpinLock<QpState>>>,
    /// Whether QP locks are acquired with the trylock wrapper. Under
    /// `TdStrategy::None` the provider lock is blocking regardless of the
    /// device discipline.
    qp_discipline: LockDiscipline,
    /// CQEs written by the "NIC" (lock-free staging, like DMA'd CQEs).
    /// A fixed ring, as on real hardware: sized at creation, never
    /// allocating on the post path. A full ring bounds the number of
    /// unpolled local completions (send-queue depth) and surfaces as
    /// `Retry(QueueFull)`.
    cq_staging: ArrayQueue<Cqe>,
    /// The polled CQ; its lock models the `ibv_poll_cq` spinlock.
    cq: SpinLock<VecDeque<Cqe>>,
    /// The shared receive queue and its spinlock.
    srq: SpinLock<VecDeque<RecvBufDesc>>,
    /// Registration cache (per device, like a provider's domain cache).
    reg_cache: RegCache,
    /// Recycled staging-buffer pool feeding `WirePayload::Heap`.
    buf_pool: BufPool,
    posted_recvs: AtomicUsize,
    /// Shared with the RX endpoint; rung by [`IbvDevice::stage_cqe`]
    /// whenever the "NIC" writes a local completion so a parked progress
    /// thread wakes to reap it.
    bell: Arc<Doorbell>,
}

impl IbvDevice {
    /// Creates the device. Called by
    /// [`NetContext::create_device`](crate::backend::NetContext::create_device).
    pub(crate) fn new(
        fabric: Arc<Fabric>,
        rank: Rank,
        dev_id: DevId,
        rx: Arc<RxEndpoint>,
        bell: Arc<Doorbell>,
        cfg: DeviceConfig,
    ) -> Self {
        let nranks = fabric.nranks();
        let (qps, qp_discipline) = match cfg.td_strategy {
            TdStrategy::PerQp => (
                (0..nranks).map(|_| Arc::new(SpinLock::new(QpState::default()))).collect(),
                cfg.discipline,
            ),
            TdStrategy::AllQp => {
                let shared = Arc::new(SpinLock::new(QpState::default()));
                ((0..nranks).map(|_| shared.clone()).collect(), cfg.discipline)
            }
            TdStrategy::None => {
                let shared = Arc::new(SpinLock::new(QpState::default()));
                // The provider's own lock: always blocking.
                ((0..nranks).map(|_| shared.clone()).collect(), LockDiscipline::Blocking)
            }
        };
        Self {
            fabric,
            rank,
            dev_id,
            cfg,
            rx,
            qps,
            qp_discipline,
            cq_staging: ArrayQueue::new((cfg.rx_capacity * 2).max(256)),
            cq: SpinLock::new(VecDeque::new()),
            srq: SpinLock::new(VecDeque::new()),
            reg_cache: RegCache::new(cfg.reg_cache),
            buf_pool: BufPool::new(cfg.buf_pool),
            posted_recvs: AtomicUsize::new(0),
            bell,
        }
    }

    /// Writes a NIC completion into the staging ring. On the rare race
    /// where the ring filled between the capacity pre-check and this
    /// push, the CQE goes straight to the polled CQ instead — never
    /// dropped. Rings the doorbell either way: a completion is now
    /// waiting for a poll.
    #[inline]
    fn stage_cqe(&self, cqe: Cqe) {
        if let Err(cqe) = self.cq_staging.push(cqe) {
            self.cq.lock().push_back(cqe);
        }
        self.bell.ring();
    }

    /// Acquires the QP lock for `target` per the effective discipline.
    #[inline]
    fn lock_qp(&self, target: Rank) -> NetResult<crate::sync::SpinGuard<'_, QpState>> {
        let lock = self
            .qps
            .get(target)
            .ok_or_else(|| NetError::fatal(format!("target rank {target} out of range")))?;
        self.qp_discipline.acquire(lock).ok_or(NetError::Retry(RetryReason::LockBusy))
    }

    /// Drains inbound wire messages into completions, consuming pre-posted
    /// receives. Called with the CQ guard held (we are "the NIC + poller").
    ///
    /// The receive descriptor is taken *before* the wire message is
    /// popped so the ring stays strictly FIFO: when no receive is posted
    /// (RNR) the message simply stays on the wire, like an RC transport
    /// retransmitting in order. Popping first and re-queueing at the back
    /// would let later messages overtake — a deadlock source when the
    /// overtaken message is the one the receiver is waiting on.
    fn deliver_inbound(&self, cq: &mut VecDeque<Cqe>, budget: usize) -> NetResult<()> {
        for _ in 0..budget {
            // Take a pre-posted receive under the SRQ lock; copy outside it.
            let desc = {
                let Some(mut srq) = self.cfg.discipline.acquire(&self.srq) else { break };
                match srq.pop_front() {
                    Some(d) => d,
                    None => break, // RNR: leave the wire untouched
                }
            };
            let Some(msg) = self.rx.pop() else {
                // Nothing inbound: hand the receive back (front: it is
                // the oldest posted one).
                if let Some(mut srq) = self.cfg.discipline.acquire(&self.srq) {
                    srq.push_front(desc);
                } else {
                    // SRQ briefly contended: push at the back instead;
                    // receive order within an SRQ is not meaningful.
                    self.srq.lock().push_back(desc);
                }
                break;
            };
            self.posted_recvs.fetch_sub(1, Ordering::AcqRel);
            let cqe = deliver_into(&msg, &desc)?;
            cq.push_back(cqe);
        }
        Ok(())
    }
}

impl NetDevice for IbvDevice {
    fn rank(&self) -> Rank {
        self.rank
    }

    fn dev_id(&self) -> DevId {
        self.dev_id
    }

    fn config(&self) -> &DeviceConfig {
        &self.cfg
    }

    fn post_send(
        &self,
        target: Rank,
        target_dev: DevId,
        data: &[u8],
        imm: u64,
        ctx: u64,
    ) -> NetResult<()> {
        let ep = self.fabric.endpoint(target, target_dev)?;
        if self.cq_staging.is_full() {
            return Err(NetError::Retry(RetryReason::QueueFull));
        }
        let mut qp = self.lock_qp(target)?;
        ep.push(WireMsg {
            src_rank: self.rank,
            src_dev: self.dev_id,
            imm,
            kind: WireMsgKind::Send,
            payload: self.buf_pool.stage(data),
        })?;
        qp.posted += 1;
        drop(qp);
        // The NIC reports the send completion; the send buffer was staged.
        self.stage_cqe(Cqe::local(CqeKind::SendDone, ctx));
        Ok(())
    }

    fn post_send_batch(
        &self,
        target: Rank,
        target_dev: DevId,
        msgs: &[SendDesc<'_>],
    ) -> NetResult<usize> {
        let ep = self.fabric.endpoint(target, target_dev)?;
        if self.cq_staging.is_full() {
            return Err(NetError::Retry(RetryReason::QueueFull));
        }
        // One QP lock acquisition (doorbell) covers the whole batch.
        let mut qp = self.lock_qp(target)?;
        let mut posted = 0;
        for m in msgs {
            let res = ep.push(WireMsg {
                src_rank: self.rank,
                src_dev: self.dev_id,
                imm: m.imm,
                kind: WireMsgKind::Send,
                payload: self.buf_pool.stage(m.data),
            });
            match res {
                Ok(()) => posted += 1,
                Err(e) if posted == 0 => return Err(e),
                Err(_) => break, // ring full mid-batch: partial progress
            }
        }
        qp.posted += posted as u64;
        drop(qp);
        for m in &msgs[..posted] {
            self.stage_cqe(Cqe::local(CqeKind::SendDone, m.ctx));
        }
        Ok(posted)
    }

    fn post_recv(&self, desc: RecvBufDesc) -> NetResult<()> {
        let mut srq =
            self.cfg.discipline.acquire(&self.srq).ok_or(NetError::Retry(RetryReason::LockBusy))?;
        srq.push_back(desc);
        self.posted_recvs.fetch_add(1, Ordering::AcqRel);
        drop(srq);
        // A fresh receive can unpark RNR-parked wire messages: wake the
        // progress thread so it re-polls (delivery happens in poll_cq).
        if self.rx.occupancy() > 0 {
            self.bell.ring();
        }
        Ok(())
    }

    fn post_recv_batch(&self, descs: &[RecvBufDesc]) -> NetResult<usize> {
        // One SRQ lock acquisition covers the whole batch; the queue is
        // unbounded, so once the lock is held every buffer posts.
        let mut srq =
            self.cfg.discipline.acquire(&self.srq).ok_or(NetError::Retry(RetryReason::LockBusy))?;
        srq.extend(descs.iter().copied());
        self.posted_recvs.fetch_add(descs.len(), Ordering::AcqRel);
        drop(srq);
        if !descs.is_empty() && self.rx.occupancy() > 0 {
            self.bell.ring();
        }
        Ok(descs.len())
    }

    fn poll_cq(&self, out: &mut Vec<Cqe>, max: usize) -> NetResult<usize> {
        let mut cq =
            self.cfg.discipline.acquire(&self.cq).ok_or(NetError::Retry(RetryReason::LockBusy))?;
        // Move NIC-written CQEs into the polled CQ.
        while let Some(cqe) = self.cq_staging.pop() {
            cq.push_back(cqe);
        }
        // Deliver inbound traffic (bounded so one poll cannot starve).
        self.deliver_inbound(&mut cq, max.max(self.cfg.cq_drain_batch))?;
        let n = max.min(cq.len());
        out.extend(cq.drain(..n));
        Ok(n)
    }

    fn post_write(
        &self,
        target: Rank,
        target_dev: DevId,
        data: &[u8],
        rkey: Rkey,
        offset: usize,
        imm: Option<u64>,
        ctx: u64,
    ) -> NetResult<()> {
        let base = self.fabric.mem().validate(rkey, offset, data.len())?;
        let mut qp = self.lock_qp(target)?;
        // SAFETY: `validate` bounds-checked the access against a live
        // registration; the registration contract makes the region
        // externally-shared bytes.
        unsafe {
            std::ptr::copy_nonoverlapping(data.as_ptr(), base as *mut u8, data.len());
        }
        if let Some(imm) = imm {
            let ep = self.fabric.endpoint(target, target_dev)?;
            // If the notify cannot be queued the whole op retries; the
            // data copy is idempotent and the target must not read before
            // the notification arrives.
            ep.push(WireMsg {
                src_rank: self.rank,
                src_dev: self.dev_id,
                imm,
                kind: WireMsgKind::WriteImm,
                payload: WirePayload::None,
            })?;
        }
        qp.posted += 1;
        drop(qp);
        self.stage_cqe(Cqe::local(CqeKind::WriteDone, ctx));
        Ok(())
    }

    fn post_read(
        &self,
        target: Rank,
        local: RecvBufDesc,
        rkey: Rkey,
        offset: usize,
    ) -> NetResult<()> {
        let base = self.fabric.mem().validate(rkey, offset, local.len)?;
        let mut qp = self.lock_qp(target)?;
        // SAFETY: bounds validated; local buffer validity is the
        // RecvBufDesc contract.
        unsafe {
            std::ptr::copy_nonoverlapping(base as *const u8, local.ptr, local.len);
        }
        qp.posted += 1;
        drop(qp);
        let mut cqe = Cqe::local(CqeKind::ReadDone, local.ctx);
        cqe.len = local.len;
        self.stage_cqe(cqe);
        Ok(())
    }

    fn register(&self, ptr: *const u8, len: usize) -> NetResult<MemoryRegion> {
        // ibv memory registration acquires no backend locks (paper
        // §4.2.3); with the cache disabled the table's internal append
        // lock is the only one.
        Ok(self.reg_cache.register(self.fabric.mem(), self.rank, ptr, len))
    }

    fn deregister(&self, mr: &MemoryRegion) -> NetResult<()> {
        self.reg_cache.release(self.fabric.mem(), mr);
        Ok(())
    }

    fn reg_cache_stats(&self) -> RegCacheStats {
        self.reg_cache.stats()
    }

    fn buf_pool(&self) -> Option<BufPool> {
        Some(self.buf_pool.clone())
    }

    fn buf_pool_stats(&self) -> BufPoolStats {
        self.buf_pool.stats()
    }

    fn posted_recvs(&self) -> usize {
        self.posted_recvs.load(Ordering::Acquire)
    }

    fn doorbell(&self) -> Option<Arc<Doorbell>> {
        Some(self.bell.clone())
    }

    fn inbound_pending(&self) -> usize {
        self.rx.occupancy()
    }

    fn teardown(&self) -> (Vec<Cqe>, Vec<RecvBufDesc>) {
        self.rx.close();
        let mut cqes = Vec::new();
        while let Some(c) = self.cq_staging.pop() {
            cqes.push(c);
        }
        cqes.extend(self.cq.lock().drain(..));
        // Parked wire messages are dropped with the endpoint; their
        // payloads were staged copies.
        let descs: Vec<RecvBufDesc> = self.srq.lock().drain(..).collect();
        self.posted_recvs.store(0, Ordering::Release);
        (cqes, descs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::NetContext;

    fn pair(cfg: DeviceConfig) -> (Arc<dyn NetDevice>, Arc<dyn NetDevice>) {
        let fabric = Fabric::new(2);
        let d0 = NetContext::new(fabric.clone(), 0).create_device(cfg);
        let d1 = NetContext::new(fabric, 1).create_device(cfg);
        (d0, d1)
    }

    fn post_packet_recv(dev: &Arc<dyn NetDevice>, buf: &mut [u8], ctx: u64) {
        // SAFETY: test keeps buf alive and unaliased until completion.
        let desc = unsafe { RecvBufDesc::new(buf.as_mut_ptr(), buf.len(), ctx) };
        dev.post_recv(desc).unwrap();
    }

    #[test]
    fn send_recv_roundtrip() {
        let (d0, d1) = pair(DeviceConfig::ibv());
        let mut rbuf = vec![0u8; 64];
        post_packet_recv(&d1, &mut rbuf, 42);
        d0.post_send(1, 0, &[1, 2, 3], 0xAB, 7).unwrap();

        let mut cqes = Vec::new();
        d0.poll_cq(&mut cqes, 8).unwrap();
        assert_eq!(cqes.len(), 1);
        assert_eq!(cqes[0].kind, CqeKind::SendDone);
        assert_eq!(cqes[0].ctx, 7);

        cqes.clear();
        d1.poll_cq(&mut cqes, 8).unwrap();
        assert_eq!(cqes.len(), 1);
        assert_eq!(cqes[0].kind, CqeKind::RecvDone);
        assert_eq!(cqes[0].ctx, 42);
        assert_eq!(cqes[0].imm, 0xAB);
        assert_eq!(cqes[0].len, 3);
        assert_eq!(cqes[0].src_rank, 0);
        assert_eq!(&rbuf[..3], &[1, 2, 3]);
    }

    #[test]
    fn batched_post_roundtrip_and_partial_progress() {
        let fabric = Fabric::new(2);
        let cfg = DeviceConfig::ibv().with_rx_capacity(2);
        let d0 = NetContext::new(fabric.clone(), 0).create_device(cfg);
        let d1 = NetContext::new(fabric, 1).create_device(cfg);
        let bufs: Vec<[u8; 1]> = (0..4u8).map(|i| [i]).collect();
        let msgs: Vec<SendDesc> = bufs
            .iter()
            .enumerate()
            .map(|(i, b)| SendDesc { data: b, imm: i as u64, ctx: i as u64 })
            .collect();
        assert_eq!(d0.post_send_batch(1, 0, &msgs).unwrap(), 2);
        let mut rbufs: Vec<Vec<u8>> = (0..2).map(|_| vec![0u8; 8]).collect();
        for (i, b) in rbufs.iter_mut().enumerate() {
            post_packet_recv(&d1, b, i as u64);
        }
        let mut cqes = Vec::new();
        d1.poll_cq(&mut cqes, 8).unwrap();
        assert_eq!(cqes.len(), 2);
        assert_eq!(cqes[0].imm, 0);
        assert_eq!(cqes[1].imm, 1);
        // Ring drained: the tail posts now.
        assert_eq!(d0.post_send_batch(1, 0, &msgs[2..]).unwrap(), 2);
    }

    #[test]
    fn batched_recv_posts_all_under_one_lock() {
        let (d0, d1) = pair(DeviceConfig::ibv());
        let mut rbufs: Vec<Vec<u8>> = (0..4).map(|_| vec![0u8; 8]).collect();
        let descs: Vec<RecvBufDesc> = rbufs
            .iter_mut()
            .enumerate()
            // SAFETY: test keeps bufs alive and unaliased until delivery.
            .map(|(i, b)| unsafe { RecvBufDesc::new(b.as_mut_ptr(), b.len(), i as u64) })
            .collect();
        assert_eq!(d1.post_recv_batch(&descs).unwrap(), 4);
        assert_eq!(d1.posted_recvs(), 4);
        for i in 0..4u8 {
            d0.post_send(1, 0, &[i], i as u64, 0).unwrap();
        }
        let mut cqes = Vec::new();
        d1.poll_cq(&mut cqes, 8).unwrap();
        assert_eq!(cqes.len(), 4);
        // Receives are consumed in posting order.
        for (i, c) in cqes.iter().enumerate() {
            assert_eq!(c.ctx, i as u64);
            assert_eq!(rbufs[i][0], i as u8);
        }
        assert_eq!(d1.posted_recvs(), 0);
    }

    #[test]
    fn rnr_message_waits_for_recv() {
        let (d0, d1) = pair(DeviceConfig::ibv());
        d0.post_send(1, 0, b"hello", 0, 0).unwrap();
        let mut cqes = Vec::new();
        // No receive posted: nothing delivered, message parked.
        d1.poll_cq(&mut cqes, 8).unwrap();
        assert!(cqes.is_empty());
        let mut rbuf = vec![0u8; 64];
        post_packet_recv(&d1, &mut rbuf, 1);
        d1.poll_cq(&mut cqes, 8).unwrap();
        assert_eq!(cqes.len(), 1);
        assert_eq!(&rbuf[..5], b"hello");
    }

    #[test]
    fn rdma_write_with_imm() {
        let (d0, d1) = pair(DeviceConfig::ibv());
        let target = [0u8; 128];
        let mr = d1.register(target.as_ptr(), target.len()).unwrap();
        let mut notif = vec![0u8; 8];
        post_packet_recv(&d1, &mut notif, 9);

        d0.post_write(1, 0, &[5u8; 16], mr.rkey, 32, Some(0x77), 3).unwrap();

        let mut cqes = Vec::new();
        d0.poll_cq(&mut cqes, 8).unwrap();
        assert_eq!(cqes[0].kind, CqeKind::WriteDone);
        assert_eq!(cqes[0].ctx, 3);

        cqes.clear();
        d1.poll_cq(&mut cqes, 8).unwrap();
        assert_eq!(cqes[0].kind, CqeKind::WriteImmRecv);
        assert_eq!(cqes[0].imm, 0x77);
        assert_eq!(&target[32..48], &[5u8; 16]);
    }

    #[test]
    fn rdma_read() {
        let (d0, d1) = pair(DeviceConfig::ibv());
        let src: Vec<u8> = (0..64).collect();
        let mr = d1.register(src.as_ptr(), src.len()).unwrap();

        let mut dst = vec![0u8; 16];
        let desc = unsafe { RecvBufDesc::new(dst.as_mut_ptr(), dst.len(), 11) };
        d0.post_read(1, desc, mr.rkey, 8).unwrap();

        let mut cqes = Vec::new();
        d0.poll_cq(&mut cqes, 8).unwrap();
        assert_eq!(cqes[0].kind, CqeKind::ReadDone);
        assert_eq!(cqes[0].ctx, 11);
        assert_eq!(cqes[0].len, 16);
        assert_eq!(&dst[..], &src[8..24]);
    }

    #[test]
    fn rdma_write_out_of_bounds_is_fatal() {
        let (d0, d1) = pair(DeviceConfig::ibv());
        let target = [0u8; 8];
        let mr = d1.register(target.as_ptr(), target.len()).unwrap();
        let err = d0.post_write(1, 0, &[0u8; 16], mr.rkey, 0, None, 0).unwrap_err();
        assert!(matches!(err, NetError::Fatal(_)));
    }

    #[test]
    fn trylock_poll_reports_busy() {
        let fabric = Fabric::new(1);
        let ctx = NetContext::new(fabric, 0);
        let cfg = DeviceConfig::ibv();
        let dev = ctx.create_device(cfg);
        // Simulate a concurrent poller by grabbing the CQ lock through a
        // second handle on another thread and holding it.
        let dev2 = dev.clone();
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let stop2 = stop.clone();
        let t = std::thread::spawn(move || {
            // Busy-poll in a tight loop to hold the lock often.
            let mut out = Vec::new();
            while !stop2.load(Ordering::Relaxed) {
                let _ = dev2.poll_cq(&mut out, 1);
                out.clear();
            }
        });
        // At least sometimes we should see LockBusy from our side.
        let mut saw_busy = false;
        let mut out = Vec::new();
        for _ in 0..200_000 {
            match dev.poll_cq(&mut out, 1) {
                Err(NetError::Retry(RetryReason::LockBusy)) => {
                    saw_busy = true;
                    break;
                }
                _ => out.clear(),
            }
        }
        stop.store(true, Ordering::Relaxed);
        t.join().unwrap();
        // On a single-core box the interleaving may never collide, so we
        // do not assert saw_busy; we only assert no deadlock/panic.
        let _ = saw_busy;
    }

    #[test]
    fn dedicated_devices_do_not_share_qps() {
        let fabric = Fabric::new(2);
        let c0 = NetContext::new(fabric.clone(), 0);
        let a = c0.create_device(DeviceConfig::ibv());
        let b = c0.create_device(DeviceConfig::ibv());
        assert_eq!(a.dev_id(), 0);
        assert_eq!(b.dev_id(), 1);
        // Target device 1 on rank 1 does not exist yet -> PeerNotReady.
        assert!(matches!(
            b.post_send(1, 1, &[1], 0, 0),
            Err(NetError::Retry(RetryReason::PeerNotReady))
        ));
    }
}
