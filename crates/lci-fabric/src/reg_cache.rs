//! An LRU memory-registration cache shared by both simulated backends.
//!
//! Registration is the hidden cost of the zero-copy rendezvous protocol:
//! every receive-side buffer must be registered before the RTR can ship
//! and deregistered after the FIN. Real communication stacks amortize
//! this with a registration cache (libfabric's MR cache, UCX's rcache,
//! and the chunked-pipeline stacks cited in PAPERS.md); this module is
//! that layer for the simulated fabric.
//!
//! Semantics:
//!
//! * [`RegCache::register`] returns a cached [`MemoryRegion`] when
//!   `(base, len)` was registered before (a **hit** — no registration
//!   table traffic), otherwise performs the real registration and caches
//!   it (a **miss**).
//! * [`RegCache::release`] is the cached `deregister`: it drops one
//!   reference but keeps the entry alive in the cache so the next
//!   `register` of the same buffer hits.
//! * Entries are only truly deregistered on **eviction**, when the cache
//!   exceeds its entry-count or byte bound. Entries still referenced by
//!   an in-flight operation are never evicted.
//!
//! The cache is guarded by a blocking mutex — the "domain mutex" of the
//! paper's libfabric analysis (§4.2.4): a registration failure cannot be
//! back-propagated as an LCI `retry`, so the lock is not trylock-wrapped.
//! The well-known hazard of real registration caches applies here too
//! (and is accepted, as real stacks accept it): after `release`, a freed
//! buffer whose address is recycled by the allocator for a same-sized
//! allocation will hit the cached registration.
//!
//! The cache sits under `NetDevice::register`/`deregister`, so the
//! deferred-deregistration semantics apply to **every** registration —
//! the internal rendezvous receives *and* the user-facing RMA path: an
//! explicitly deregistered rkey keeps validating remote Put/Get until
//! the entry is evicted. Callers needing strict deregister-now behaviour
//! must disable the cache (`DeviceConfig::with_reg_cache(false)`).

use crate::mem::{MemoryRegion, RegistrationTable};
use crate::types::Rank;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Registration-cache tuning knobs (part of
/// [`DeviceConfig`](crate::backend::DeviceConfig)).
#[derive(Clone, Copy, Debug)]
pub struct RegCacheConfig {
    /// Whether the cache is used at all. Off recovers per-message
    /// registration (the ablation baseline).
    pub enabled: bool,
    /// Maximum cached registrations (released entries beyond this are
    /// evicted LRU-first).
    pub max_entries: usize,
    /// Maximum total bytes covered by cached registrations.
    pub max_bytes: usize,
}

impl Default for RegCacheConfig {
    fn default() -> Self {
        Self { enabled: true, max_entries: 128, max_bytes: 64 << 20 }
    }
}

/// Hit/miss/eviction counters, readable through
/// [`NetDevice::reg_cache_stats`](crate::backend::NetDevice::reg_cache_stats).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RegCacheStats {
    /// Registrations served from the cache.
    pub hits: u64,
    /// Registrations that went to the registration table.
    pub misses: u64,
    /// Cached registrations truly deregistered to respect the bounds.
    pub evictions: u64,
}

struct Entry {
    mr: MemoryRegion,
    /// Outstanding `register` minus `release` calls; entries with
    /// references are pinned (never evicted).
    refs: usize,
    /// LRU clock stamp of the last `register` touching this entry.
    stamp: u64,
}

struct Inner {
    map: HashMap<(usize, usize), Entry>,
    bytes: usize,
    clock: u64,
}

/// The cache. One per device (the per-domain cache of a real provider).
pub struct RegCache {
    cfg: RegCacheConfig,
    inner: Mutex<Inner>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl RegCache {
    /// Creates an empty cache with `cfg` bounds.
    pub fn new(cfg: RegCacheConfig) -> Self {
        Self {
            cfg,
            inner: Mutex::new(Inner { map: HashMap::new(), bytes: 0, clock: 0 }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Registers `[ptr, ptr+len)` through the cache (see module docs).
    pub fn register(
        &self,
        table: &RegistrationTable,
        rank: Rank,
        ptr: *const u8,
        len: usize,
    ) -> MemoryRegion {
        if !self.cfg.enabled {
            return table.register(rank, ptr, len);
        }
        let key = (ptr as usize, len);
        let mut inner = self.inner.lock();
        inner.clock += 1;
        let stamp = inner.clock;
        if let Some(e) = inner.map.get_mut(&key) {
            e.refs += 1;
            e.stamp = stamp;
            self.hits.fetch_add(1, Ordering::Relaxed);
            return e.mr;
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let mr = table.register(rank, ptr, len);
        inner.bytes += len;
        inner.map.insert(key, Entry { mr, refs: 1, stamp });
        self.evict_over_bounds(&mut inner, table);
        mr
    }

    /// Releases one reference on a cached registration. The entry stays
    /// cached (the next `register` hits); an `mr` the cache does not own
    /// is deregistered directly.
    pub fn release(&self, table: &RegistrationTable, mr: &MemoryRegion) {
        if !self.cfg.enabled {
            table.deregister(mr);
            return;
        }
        let mut inner = self.inner.lock();
        match inner.map.get_mut(&(mr.base, mr.len)) {
            Some(e) if e.mr.rkey == mr.rkey => {
                e.refs = e.refs.saturating_sub(1);
            }
            _ => table.deregister(mr),
        }
    }

    /// Evicts released LRU entries until the bounds hold (pinned entries
    /// may keep the cache transiently over its bounds).
    fn evict_over_bounds(&self, inner: &mut Inner, table: &RegistrationTable) {
        while inner.map.len() > self.cfg.max_entries || inner.bytes > self.cfg.max_bytes {
            let victim = inner
                .map
                .iter()
                .filter(|(_, e)| e.refs == 0)
                .min_by_key(|(_, e)| e.stamp)
                .map(|(k, _)| *k);
            let Some(key) = victim else { break };
            let e = inner.map.remove(&key).expect("victim present");
            inner.bytes -= e.mr.len;
            table.deregister(&e.mr);
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Point-in-time counter snapshot.
    pub fn stats(&self) -> RegCacheStats {
        RegCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }

    /// Number of cached registrations (diagnostics).
    pub fn len(&self) -> usize {
        self.inner.lock().map.len()
    }

    /// Whether the cache holds no registrations.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache(max_entries: usize, max_bytes: usize) -> RegCache {
        RegCache::new(RegCacheConfig { enabled: true, max_entries, max_bytes })
    }

    #[test]
    fn hit_after_release() {
        let t = RegistrationTable::new();
        let c = cache(8, 1 << 20);
        let buf = vec![0u8; 256];
        let a = c.register(&t, 0, buf.as_ptr(), buf.len());
        c.release(&t, &a);
        let b = c.register(&t, 0, buf.as_ptr(), buf.len());
        assert_eq!(a.rkey, b.rkey, "released entry stays cached");
        assert_eq!(c.stats(), RegCacheStats { hits: 1, misses: 1, evictions: 0 });
        // The registration stayed alive across the release.
        assert!(t.validate(a.rkey, 0, 256).is_ok());
    }

    #[test]
    fn distinct_keys_miss() {
        let t = RegistrationTable::new();
        let c = cache(8, 1 << 20);
        let buf = vec![0u8; 256];
        let a = c.register(&t, 0, buf.as_ptr(), 256);
        let b = c.register(&t, 0, buf.as_ptr(), 128);
        assert_ne!(a.rkey, b.rkey, "different lengths are different entries");
        assert_eq!(c.stats().misses, 2);
    }

    #[test]
    fn entry_bound_evicts_lru() {
        let t = RegistrationTable::new();
        let c = cache(2, 1 << 20);
        let bufs: Vec<Vec<u8>> = (0..3).map(|_| vec![0u8; 64]).collect();
        let mrs: Vec<_> = bufs
            .iter()
            .map(|b| {
                let mr = c.register(&t, 0, b.as_ptr(), b.len());
                c.release(&t, &mr);
                mr
            })
            .collect();
        // Third insert evicted the oldest released entry (the first).
        assert_eq!(c.len(), 2);
        assert_eq!(c.stats().evictions, 1);
        assert!(t.validate(mrs[0].rkey, 0, 1).is_err(), "evicted entry is dead");
        assert!(t.validate(mrs[2].rkey, 0, 1).is_ok());
    }

    #[test]
    fn pinned_entries_survive_bounds() {
        let t = RegistrationTable::new();
        let c = cache(1, 1 << 20);
        let a_buf = [0u8; 64];
        let b_buf = [0u8; 64];
        let a = c.register(&t, 0, a_buf.as_ptr(), 64);
        let _b = c.register(&t, 0, b_buf.as_ptr(), 64);
        // `a` is still referenced: over-bound but not evictable.
        assert_eq!(c.stats().evictions, 0);
        assert!(t.validate(a.rkey, 0, 1).is_ok());
        c.release(&t, &a);
        // A later insert can now evict the released ones.
        let c_buf = [0u8; 64];
        let _ = c.register(&t, 0, c_buf.as_ptr(), 64);
        assert!(c.stats().evictions >= 1);
    }

    #[test]
    fn byte_bound_evicts() {
        let t = RegistrationTable::new();
        let c = cache(64, 100);
        let a_buf = [0u8; 80];
        let b_buf = [0u8; 80];
        let a = c.register(&t, 0, a_buf.as_ptr(), 80);
        c.release(&t, &a);
        let _b = c.register(&t, 0, b_buf.as_ptr(), 80);
        assert_eq!(c.stats().evictions, 1, "160 B over a 100 B bound evicts the released entry");
    }

    #[test]
    fn disabled_passthrough() {
        let t = RegistrationTable::new();
        let c = RegCache::new(RegCacheConfig { enabled: false, ..Default::default() });
        let buf = [0u8; 64];
        let a = c.register(&t, 0, buf.as_ptr(), 64);
        let b = c.register(&t, 0, buf.as_ptr(), 64);
        assert_ne!(a.rkey, b.rkey, "no caching when disabled");
        c.release(&t, &a);
        assert!(t.validate(a.rkey, 0, 1).is_err(), "release deregisters directly");
        assert_eq!(c.stats(), RegCacheStats::default());
    }

    #[test]
    fn foreign_mr_release_deregisters() {
        let t = RegistrationTable::new();
        let c = cache(8, 1 << 20);
        let buf = [0u8; 64];
        let mr = t.register(0, buf.as_ptr(), 64);
        c.release(&t, &mr);
        assert!(t.validate(mr.rkey, 0, 1).is_err());
    }
}
