//! The tcp `NetDevice`: ibv-style lock structure on the posting side
//! (per-QP posting locks, lock-free CQE staging, SRQ + CQ spinlocks,
//! trylock wrapper discipline), with a real socket mesh as the wire.
//!
//! Posting encodes the frame into one contiguous pooled buffer and
//! *enqueues* it on the per-peer send queue under the QP lock —
//! completing locally, like a NIC accepting a WQE. The progress path
//! ([`poll_cq`](TcpDevice::poll_cq)) then drains each queue into as few
//! `writev` calls as the socket accepts (each queued frame is one
//! iovec; no flatten copy), bulk-reads inbound bytes into the stream
//! decoder, and routes reassembled frames by `dst_dev` through the same
//! desc-first FIFO/RNR discipline as the shm drain.

use super::stream::{self, MAX_FRAME_PAYLOAD};
use super::{Conn, ConnIo, TcpFabric, TcpRankState};
use crate::backend::{deliver_into, DeviceConfig, NetDevice, SendDesc, TdStrategy, TransportStats};
use crate::buf_pool::{BufPool, BufPoolStats};
use crate::fabric::{Fabric, RxEndpoint};
use crate::mem::{MemoryRegion, Rkey};
use crate::reg_cache::{RegCache, RegCacheStats};
use crate::shm::device::DevShared;
use crate::shm::ring::{
    FrameHeader, FLAG_HAS_IMM, KIND_READ_REQ, KIND_READ_RESP, KIND_SEND, KIND_WRITE,
};
use crate::shm::PendingRead;
use crate::sync::{Doorbell, LockDiscipline, SpinLock};
use crate::types::{
    Cqe, CqeKind, DevId, NetError, NetResult, Rank, RecvBufDesc, RetryReason, WireMsg, WireMsgKind,
    WirePayload,
};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Bookkeeping behind a QP lock, as in the ibv backend.
#[derive(Default)]
struct QpState {
    posted: u64,
}

/// Outcome of routing one inbound frame (same discipline as shm).
enum Routed {
    Done,
    Parked,
}

/// The TCP device.
pub struct TcpDevice {
    fabric: Arc<Fabric>,
    tcp: Arc<TcpFabric>,
    state: Arc<TcpRankState>,
    rank: Rank,
    dev_id: DevId,
    cfg: DeviceConfig,
    rx: Arc<RxEndpoint>,
    qps: Vec<Arc<SpinLock<QpState>>>,
    qp_discipline: LockDiscipline,
    shared: Arc<DevShared>,
    srq: SpinLock<VecDeque<RecvBufDesc>>,
    reg_cache: RegCache,
    buf_pool: BufPool,
    posted_recvs: AtomicUsize,
    /// The writev-batching knob: `false` is the one-write-per-frame
    /// ablation.
    batched: bool,
}

impl TcpDevice {
    /// Creates the device. Called by
    /// [`NetContext::create_device`](crate::backend::NetContext::create_device).
    pub(crate) fn new(
        fabric: Arc<Fabric>,
        rank: Rank,
        dev_id: DevId,
        rx: Arc<RxEndpoint>,
        bell: Arc<Doorbell>,
        cfg: DeviceConfig,
    ) -> Self {
        let tcp = fabric.tcp_fabric().clone();
        let state = tcp.state(rank);
        let nranks = fabric.nranks();
        let (qps, qp_discipline) = match cfg.td_strategy {
            TdStrategy::PerQp => (
                (0..nranks).map(|_| Arc::new(SpinLock::new(QpState::default()))).collect(),
                cfg.discipline,
            ),
            TdStrategy::AllQp => {
                let shared = Arc::new(SpinLock::new(QpState::default()));
                ((0..nranks).map(|_| shared.clone()).collect(), cfg.discipline)
            }
            TdStrategy::None => {
                let shared = Arc::new(SpinLock::new(QpState::default()));
                ((0..nranks).map(|_| shared.clone()).collect(), LockDiscipline::Blocking)
            }
        };
        let shared = Arc::new(DevShared::new(dev_id, (cfg.rx_capacity * 2).max(256), bell));
        state.register_dev(shared.clone());
        // The bridge's backstop flush follows the same gather/no-gather
        // mode as this rank's devices (ablation runs set it uniformly).
        state.set_batched_hint(cfg.tcp_batch);
        Self {
            fabric,
            tcp,
            state,
            rank,
            dev_id,
            cfg,
            rx,
            qps,
            qp_discipline,
            shared,
            srq: SpinLock::new(VecDeque::new()),
            reg_cache: RegCache::new(cfg.reg_cache),
            buf_pool: BufPool::new(cfg.buf_pool),
            posted_recvs: AtomicUsize::new(0),
            batched: cfg.tcp_batch,
        }
    }

    fn too_large() -> NetError {
        NetError::fatal("payload exceeds the tcp frame limit")
    }

    /// Peer-readiness check. The mesh is fully connected at attach, so
    /// cross-process the only failure is a dead peer; in-process (and
    /// self) the target device table is local and checked directly.
    fn ready(&self, target: Rank, target_dev: DevId) -> NetResult<()> {
        if target >= self.fabric.nranks() {
            return Err(NetError::fatal(format!("target rank {target} out of range")));
        }
        if self.state.peer_dead(target) {
            return Err(NetError::fatal(format!("tcp peer rank {target} has exited")));
        }
        if self.tcp.multiproc && target != self.rank {
            Ok(())
        } else {
            self.fabric.endpoint(target, target_dev).map(|_| ())
        }
    }

    /// Acquires the QP lock for `target` per the effective discipline.
    #[inline]
    fn lock_qp(&self, target: Rank) -> NetResult<crate::sync::SpinGuard<'_, QpState>> {
        let lock = self
            .qps
            .get(target)
            .ok_or_else(|| NetError::fatal(format!("target rank {target} out of range")))?;
        self.qp_discipline.acquire(lock).ok_or(NetError::Retry(RetryReason::LockBusy))
    }

    /// The mesh connection toward `target` (never `self.rank`).
    fn conn(&self, target: Rank) -> NetResult<&Arc<Conn>> {
        self.state
            .conn(target)
            .ok_or_else(|| NetError::fatal(format!("no tcp connection to rank {target}")))
    }

    /// Encodes and enqueues one frame toward `target` under the QP +
    /// send-queue locks; the socket flush happens on the progress path.
    fn enqueue_frame(&self, target: Rank, h: &FrameHeader, segs: &[&[u8]]) -> NetResult<()> {
        let conn = self.conn(target)?;
        let frame = stream::encode_frame(&self.buf_pool, h, segs).ok_or_else(Self::too_large)?;
        let mut qp = self.lock_qp(target)?;
        let mut sg =
            self.qp_discipline.acquire(&conn.send).ok_or(NetError::Retry(RetryReason::LockBusy))?;
        conn.enqueue_locked(&mut sg, frame)?;
        qp.posted += 1;
        Ok(())
    }

    /// Flushes send queues and drains inbound sockets for every
    /// connection of this rank, routing up to `budget` frames per
    /// connection. Connections busy under a sibling device's progress
    /// pass are skipped (try-lock), keeping pollers contention-free.
    fn progress_conns(&self, budget: usize) -> NetResult<()> {
        for peer in 0..self.fabric.nranks() {
            let Some(conn) = self.state.conn(peer) else { continue };
            if conn.is_dead() {
                self.state.mark_peer_dead(peer);
                continue;
            }
            if let Some(mut sg) = conn.send.try_lock() {
                if conn.flush_locked(&mut sg, self.batched, &self.state) == ConnIo::Dead {
                    self.state.mark_peer_dead(peer);
                    continue;
                }
            }
            let Some(mut rg) = conn.recv.try_lock() else { continue };
            if conn.fill_and_decode(&mut rg, &self.buf_pool) == ConnIo::Dead {
                self.state.mark_peer_dead(peer);
                continue;
            }
            let mut done = 0;
            while done < budget {
                let Some(front) = rg.inbox.front() else { break };
                let header = front.header;
                match self.route_frame(peer, &header, &front.payload)? {
                    Routed::Done => {
                        rg.inbox.pop_front();
                        done += 1;
                    }
                    Routed::Parked => break,
                }
            }
            conn.recv_pending.store(
                rg.inbox.len()
                    + usize::from(rg.dec.pending_bytes() >= crate::shm::ring::HEADER_LEN),
                Ordering::Release,
            );
        }
        Ok(())
    }

    /// Applies one reassembled frame on the consuming side. Identical
    /// routing to the shm drain; rkeys are validated here, in the
    /// process that owns the registration table.
    fn route_frame(&self, src: Rank, h: &FrameHeader, payload: &[u8]) -> NetResult<Routed> {
        match h.kind {
            KIND_SEND => {
                let ep = match self.fabric.endpoint(self.rank, h.dst_dev as DevId) {
                    Ok(ep) => ep,
                    // Target device not created yet: park, strict FIFO.
                    Err(NetError::Retry(_)) => return Ok(Routed::Parked),
                    Err(e) => return Err(e),
                };
                let msg = WireMsg {
                    src_rank: src,
                    src_dev: h.src_dev as DevId,
                    imm: h.imm,
                    kind: WireMsgKind::Send,
                    payload: self.buf_pool.stage(payload),
                };
                match ep.push(msg) {
                    Ok(()) => Ok(Routed::Done),
                    Err(NetError::Retry(_)) => Ok(Routed::Parked),
                    // Endpoint closed (device torn down): drop the
                    // frame, as teardown drops parked wire messages.
                    Err(NetError::Fatal(_)) => Ok(Routed::Done),
                }
            }
            KIND_WRITE => {
                let len = payload.len();
                let base = self.fabric.mem().validate(Rkey(h.a as u32), h.b as usize, len)?;
                // SAFETY: `validate` bounds-checked against a live local
                // registration; the payload is contiguous decoder bytes.
                unsafe {
                    std::ptr::copy_nonoverlapping(payload.as_ptr(), base as *mut u8, len);
                }
                if h.flags & FLAG_HAS_IMM != 0 {
                    let ep = match self.fabric.endpoint(self.rank, h.dst_dev as DevId) {
                        Ok(ep) => ep,
                        // The copy above is idempotent: park and redo.
                        Err(NetError::Retry(_)) => return Ok(Routed::Parked),
                        Err(e) => return Err(e),
                    };
                    let msg = WireMsg {
                        src_rank: src,
                        src_dev: h.src_dev as DevId,
                        imm: h.imm,
                        kind: WireMsgKind::WriteImm,
                        payload: WirePayload::None,
                    };
                    match ep.push(msg) {
                        Ok(()) => {}
                        Err(NetError::Retry(_)) => return Ok(Routed::Parked),
                        Err(NetError::Fatal(_)) => {}
                    }
                }
                Ok(Routed::Done)
            }
            KIND_READ_REQ => {
                let len = h.imm as usize;
                let base = self.fabric.mem().validate(Rkey(h.a as u32), h.b as usize, len)?;
                // Respond on the same connection; its send queue is
                // shared with local posters, so try-lock only.
                let conn = self.conn(src)?;
                let Some(mut sg) = conn.send.try_lock() else {
                    return Ok(Routed::Parked);
                };
                let resp = FrameHeader {
                    kind: KIND_READ_RESP,
                    flags: 0,
                    imm: 0,
                    src_dev: self.dev_id as u32,
                    dst_dev: h.src_dev,
                    a: 0,
                    b: 0,
                    c: h.c,
                };
                // SAFETY: validated registered bytes, alive for the
                // duration of the registration.
                let resp_payload = unsafe { std::slice::from_raw_parts(base as *const u8, len) };
                let frame = stream::encode_frame(&self.buf_pool, &resp, &[resp_payload])
                    .ok_or_else(Self::too_large)?;
                match conn.enqueue_locked(&mut sg, frame) {
                    Ok(()) => Ok(Routed::Done),
                    Err(NetError::Retry(_)) => Ok(Routed::Parked),
                    // Requester died: nobody is waiting for the bytes.
                    Err(NetError::Fatal(_)) => Ok(Routed::Done),
                }
            }
            KIND_READ_RESP => {
                let pending = self.state.reads().lock().take(h.c as u32);
                let Some(PendingRead { desc, dev }) = pending else {
                    return Err(NetError::fatal(format!("unknown tcp read response id {}", h.c)));
                };
                let n = payload.len().min(desc.len);
                // SAFETY: the descriptor contract keeps `ptr..len` valid
                // until the ReadDone completion we are about to stage.
                unsafe {
                    std::ptr::copy_nonoverlapping(payload.as_ptr(), desc.ptr, n);
                }
                if let Some(d) = self.state.dev_by_id(dev) {
                    let mut cqe = Cqe::local(CqeKind::ReadDone, desc.ctx);
                    cqe.len = n;
                    d.stage_cqe(cqe);
                }
                Ok(Routed::Done)
            }
            k => Err(NetError::fatal(format!("unknown tcp frame kind {k}"))),
        }
    }

    /// Identical to the ibv backend: desc-first so the RX ring stays
    /// strictly FIFO under RNR.
    fn deliver_inbound(&self, cq: &mut VecDeque<Cqe>, budget: usize) -> NetResult<()> {
        for _ in 0..budget {
            let desc = {
                let Some(mut srq) = self.cfg.discipline.acquire(&self.srq) else { break };
                match srq.pop_front() {
                    Some(d) => d,
                    None => break,
                }
            };
            let Some(msg) = self.rx.pop() else {
                if let Some(mut srq) = self.cfg.discipline.acquire(&self.srq) {
                    srq.push_front(desc);
                } else {
                    self.srq.lock().push_back(desc);
                }
                break;
            };
            self.posted_recvs.fetch_sub(1, Ordering::AcqRel);
            let cqe = deliver_into(&msg, &desc)?;
            cq.push_back(cqe);
        }
        Ok(())
    }
}

impl NetDevice for TcpDevice {
    fn rank(&self) -> Rank {
        self.rank
    }

    fn dev_id(&self) -> DevId {
        self.dev_id
    }

    fn config(&self) -> &DeviceConfig {
        &self.cfg
    }

    fn post_send(
        &self,
        target: Rank,
        target_dev: DevId,
        data: &[u8],
        imm: u64,
        ctx: u64,
    ) -> NetResult<()> {
        self.ready(target, target_dev)?;
        if self.shared.staging().is_full() {
            return Err(NetError::Retry(RetryReason::QueueFull));
        }
        if target == self.rank {
            // Self-sends skip the socket: push straight onto the local
            // endpoint (a Retry surfaces before any completion stages).
            let ep = self.fabric.endpoint(target, target_dev)?;
            ep.push(WireMsg {
                src_rank: self.rank,
                src_dev: self.dev_id,
                imm,
                kind: WireMsgKind::Send,
                payload: self.buf_pool.stage(data),
            })?;
            self.shared.stage_cqe(Cqe::local(CqeKind::SendDone, ctx));
            return Ok(());
        }
        let h = FrameHeader {
            kind: KIND_SEND,
            flags: 0,
            imm,
            src_dev: self.dev_id as u32,
            dst_dev: target_dev as u32,
            a: 0,
            b: 0,
            c: 0,
        };
        self.enqueue_frame(target, &h, &[data])?;
        self.shared.stage_cqe(Cqe::local(CqeKind::SendDone, ctx));
        Ok(())
    }

    fn post_send_batch(
        &self,
        target: Rank,
        target_dev: DevId,
        msgs: &[SendDesc<'_>],
    ) -> NetResult<usize> {
        self.ready(target, target_dev)?;
        if self.shared.staging().is_full() {
            return Err(NetError::Retry(RetryReason::QueueFull));
        }
        if target == self.rank {
            let mut posted = 0;
            for m in msgs {
                match self.post_send(target, target_dev, m.data, m.imm, m.ctx) {
                    Ok(()) => posted += 1,
                    Err(e) if posted == 0 => return Err(e),
                    Err(_) => break,
                }
            }
            return Ok(posted);
        }
        let conn = self.conn(target)?;
        // One QP + send-queue lock acquisition covers the whole batch.
        let mut qp = self.lock_qp(target)?;
        let mut sg =
            self.qp_discipline.acquire(&conn.send).ok_or(NetError::Retry(RetryReason::LockBusy))?;
        let mut posted = 0;
        for m in msgs {
            if m.data.len() > MAX_FRAME_PAYLOAD {
                return Err(Self::too_large());
            }
            let h = FrameHeader {
                kind: KIND_SEND,
                flags: 0,
                imm: m.imm,
                src_dev: self.dev_id as u32,
                dst_dev: target_dev as u32,
                a: 0,
                b: 0,
                c: 0,
            };
            let frame =
                stream::encode_frame(&self.buf_pool, &h, &[m.data]).ok_or_else(Self::too_large)?;
            match conn.enqueue_locked(&mut sg, frame) {
                Ok(()) => posted += 1,
                Err(e) if posted == 0 => return Err(e),
                Err(_) => break, // queue full mid-batch: partial progress
            }
        }
        qp.posted += posted as u64;
        drop(sg);
        drop(qp);
        for m in &msgs[..posted] {
            self.shared.stage_cqe(Cqe::local(CqeKind::SendDone, m.ctx));
        }
        Ok(posted)
    }

    fn post_recv(&self, desc: RecvBufDesc) -> NetResult<()> {
        let mut srq =
            self.cfg.discipline.acquire(&self.srq).ok_or(NetError::Retry(RetryReason::LockBusy))?;
        srq.push_back(desc);
        self.posted_recvs.fetch_add(1, Ordering::AcqRel);
        drop(srq);
        if self.rx.occupancy() > 0 || self.state.conn_pending() > 0 {
            self.shared.bell().ring();
        }
        Ok(())
    }

    fn post_recv_batch(&self, descs: &[RecvBufDesc]) -> NetResult<usize> {
        let mut srq =
            self.cfg.discipline.acquire(&self.srq).ok_or(NetError::Retry(RetryReason::LockBusy))?;
        srq.extend(descs.iter().copied());
        self.posted_recvs.fetch_add(descs.len(), Ordering::AcqRel);
        drop(srq);
        if !descs.is_empty() && (self.rx.occupancy() > 0 || self.state.conn_pending() > 0) {
            self.shared.bell().ring();
        }
        Ok(descs.len())
    }

    fn poll_cq(&self, out: &mut Vec<Cqe>, max: usize) -> NetResult<usize> {
        let budget = max.max(self.cfg.cq_drain_batch);
        // Progress the sockets *before* taking our CQ lock: routing may
        // stage CQEs (ReadDone) onto this very device, and `stage_cqe`'s
        // overflow path locks the polled CQ.
        self.progress_conns(budget)?;
        let mut cq = self
            .cfg
            .discipline
            .acquire(self.shared.polled_cq())
            .ok_or(NetError::Retry(RetryReason::LockBusy))?;
        while let Some(cqe) = self.shared.staging().pop() {
            cq.push_back(cqe);
        }
        self.deliver_inbound(&mut cq, budget)?;
        let n = max.min(cq.len());
        out.extend(cq.drain(..n));
        Ok(n)
    }

    fn post_write(
        &self,
        target: Rank,
        target_dev: DevId,
        data: &[u8],
        rkey: Rkey,
        offset: usize,
        imm: Option<u64>,
        ctx: u64,
    ) -> NetResult<()> {
        self.ready(target, target_dev)?;
        if !self.tcp.multiproc {
            // In-process the registration table is shared: validate at
            // post time, same fatal surface as the sims. Cross-process
            // the rkey belongs to the target's table; the drain there
            // validates.
            self.fabric.mem().validate(rkey, offset, data.len())?;
        }
        if target == self.rank {
            let base = self.fabric.mem().validate(rkey, offset, data.len())?;
            // SAFETY: bounds-checked against a live local registration.
            unsafe {
                std::ptr::copy_nonoverlapping(data.as_ptr(), base as *mut u8, data.len());
            }
            if let Some(imm) = imm {
                let ep = self.fabric.endpoint(target, target_dev)?;
                ep.push(WireMsg {
                    src_rank: self.rank,
                    src_dev: self.dev_id,
                    imm,
                    kind: WireMsgKind::WriteImm,
                    payload: WirePayload::None,
                })?;
            }
            self.shared.stage_cqe(Cqe::local(CqeKind::WriteDone, ctx));
            return Ok(());
        }
        let h = FrameHeader {
            kind: KIND_WRITE,
            flags: if imm.is_some() { FLAG_HAS_IMM } else { 0 },
            imm: imm.unwrap_or(0),
            src_dev: self.dev_id as u32,
            dst_dev: target_dev as u32,
            a: rkey.0 as u64,
            b: offset as u64,
            c: 0,
        };
        self.enqueue_frame(target, &h, &[data])?;
        self.shared.stage_cqe(Cqe::local(CqeKind::WriteDone, ctx));
        Ok(())
    }

    fn post_read(
        &self,
        target: Rank,
        local: RecvBufDesc,
        rkey: Rkey,
        offset: usize,
    ) -> NetResult<()> {
        self.ready(target, self.dev_id)?;
        if !self.tcp.multiproc {
            self.fabric.mem().validate(rkey, offset, local.len)?;
        }
        if target == self.rank {
            let base = self.fabric.mem().validate(rkey, offset, local.len)?;
            // SAFETY: validated registered source; the descriptor
            // contract keeps the destination valid until ReadDone.
            unsafe {
                std::ptr::copy_nonoverlapping(base as *const u8, local.ptr, local.len);
            }
            let mut cqe = Cqe::local(CqeKind::ReadDone, local.ctx);
            cqe.len = local.len;
            self.shared.stage_cqe(cqe);
            return Ok(());
        }
        let len = local.len;
        let req_id = self
            .state
            .reads()
            .lock()
            .alloc(PendingRead { desc: local, dev: self.dev_id })
            .ok_or(NetError::Retry(RetryReason::QueueFull))?;
        let h = FrameHeader {
            kind: KIND_READ_REQ,
            flags: 0,
            imm: len as u64,
            src_dev: self.dev_id as u32,
            dst_dev: 0,
            a: rkey.0 as u64,
            b: offset as u64,
            c: req_id as u64,
        };
        match self.enqueue_frame(target, &h, &[]) {
            Ok(()) => Ok(()),
            Err(e) => {
                // Back the pending slot out; the descriptor was never
                // exposed to a peer.
                self.state.reads().lock().take(req_id);
                Err(e)
            }
        }
    }

    fn register(&self, ptr: *const u8, len: usize) -> NetResult<MemoryRegion> {
        Ok(self.reg_cache.register(self.fabric.mem(), self.rank, ptr, len))
    }

    fn deregister(&self, mr: &MemoryRegion) -> NetResult<()> {
        self.reg_cache.release(self.fabric.mem(), mr);
        Ok(())
    }

    fn reg_cache_stats(&self) -> RegCacheStats {
        self.reg_cache.stats()
    }

    fn buf_pool(&self) -> Option<BufPool> {
        Some(self.buf_pool.clone())
    }

    fn buf_pool_stats(&self) -> BufPoolStats {
        self.buf_pool.stats()
    }

    fn posted_recvs(&self) -> usize {
        self.posted_recvs.load(Ordering::Acquire)
    }

    fn doorbell(&self) -> Option<Arc<Doorbell>> {
        Some(self.shared.bell().clone())
    }

    fn inbound_pending(&self) -> usize {
        // Undrained socket/queue work counts too: a parked progress
        // engine must not sleep while frames wait for a flush or route.
        self.rx.occupancy() + self.state.conn_pending()
    }

    fn outbound_pending(&self) -> usize {
        self.state.outbound_pending()
    }

    fn transport_stats(&self) -> TransportStats {
        TransportStats {
            shm_ring_hwm: 0,
            doorbell_cross_proc_wakes: self.state.cross_proc_wakes(),
            tcp_writev_calls: self.state.writev_calls.load(Ordering::Relaxed),
            tcp_writev_frames: self.state.writev_frames.load(Ordering::Relaxed),
        }
    }

    fn teardown(&self) -> (Vec<Cqe>, Vec<RecvBufDesc>) {
        self.rx.close();
        // Best-effort flush so peers see our final frames before the
        // sockets close with this process.
        for peer in 0..self.fabric.nranks() {
            if let Some(conn) = self.state.conn(peer) {
                let mut sg = conn.send.lock();
                let _ = conn.flush_locked(&mut sg, self.batched, &self.state);
            }
        }
        let mut cqes = Vec::new();
        while let Some(c) = self.shared.staging().pop() {
            cqes.push(c);
        }
        cqes.extend(self.shared.polled_cq().lock().drain(..));
        let mut descs: Vec<RecvBufDesc> = self.srq.lock().drain(..).collect();
        // Reads this device posted that will never complete hand their
        // landing buffers back too.
        descs.extend(self.state.reads().lock().drain_dev(self.dev_id).into_iter().map(|p| p.desc));
        self.posted_recvs.store(0, Ordering::Release);
        (cqes, descs)
    }
}
