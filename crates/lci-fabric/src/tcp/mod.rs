//! The TCP backend (DESIGN.md §4.12): remote-rank transport behind the
//! same [`NetDevice`](crate::backend::NetDevice) trait as the sims and
//! the shm rings.
//!
//! Topology is a full connection mesh: one non-blocking `TCP_NODELAY`
//! socket per unordered rank pair, shared bidirectionally. Frames reuse
//! the shm 64-byte header followed by the payload on the byte stream
//! ([`stream`]); the consuming rank routes each reassembled frame by
//! `dst_dev` exactly like the shm drain, so devices, RNR discipline,
//! and the zero-copy demux above ride unchanged.
//!
//! The perf core is syscall amortization: posts *enqueue* an encoded
//! frame (one pooled contiguous buffer) on a per-peer send queue and
//! complete immediately; the progress path drains a whole queue into a
//! single `writev`, gathering one iovec per frame — no flatten copy.
//! Receives bulk-read into the decoder's reassembly slab. An
//! edge-triggered epoll instance per rank feeds a bridge thread that
//! converts socket readiness into [`Doorbell`](crate::sync::Doorbell)
//! rings, so Dedicated/Hybrid engines park instead of spinning —
//! the cross-host mirror of the shm futex bridge.
//!
//! Two modes, like shm: **in-process** (lazy loopback mesh, so any test
//! or bench switches with a `DeviceConfig` alone) and **multi-process**
//! ([`crate::bootstrap`] exchanges listener addresses through a root
//! service and dials the mesh). Peer death is an `ECONNRESET`/EOF on
//! the pair socket and surfaces exactly like a died shm peer.

#![cfg(unix)]

pub mod stream;
pub mod sys;

mod device;
pub(crate) mod oob;

pub use device::TcpDevice;

use crate::buf_pool::BufPool;
use crate::shm::device::DevShared;
use crate::shm::ring::FrameHeader;
use crate::shm::ReadTable;
use crate::sync::SpinLock;
use crate::types::{NetError, NetResult, RetryReason};
use std::collections::VecDeque;
use std::net::{TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock, Weak};

use crate::buf_pool::PoolBuf;
use stream::FrameDecoder;

/// Per-peer send-queue bounds: frames queued beyond these surface as
/// `Retry(RxFull)`, engaging the same backlog machinery as a full ring.
const SENDQ_FRAMES: usize = 4096;
const SENDQ_BYTES: usize = 8 << 20;

/// Decoded-but-unrouted inbound frames buffered per connection. A full
/// inbox pauses socket reads (TCP flow control backpressures the peer)
/// until routing unparks.
const INBOX_CAP: usize = 1024;

/// Socket-read budget per connection per poll cycle.
const READ_BUDGET: usize = 256 << 10;

/// Outcome of one connection-level I/O pass.
#[derive(PartialEq, Eq)]
pub(crate) enum ConnIo {
    Ok,
    /// The peer is gone (EOF / ECONNRESET / EPIPE) or the stream is
    /// corrupt; the caller marks the rank dead and wakes engines.
    Dead,
}

struct SendState {
    q: VecDeque<PoolBuf>,
    /// Bytes of the front frame already written (partial `writev`).
    head_off: usize,
    bytes: usize,
}

struct InFrame {
    header: FrameHeader,
    payload: PoolBuf,
}

struct RecvState {
    dec: FrameDecoder,
    inbox: VecDeque<InFrame>,
}

/// One mesh socket (this rank ↔ one peer) plus its queues and
/// readiness flags.
pub(crate) struct Conn {
    peer: usize,
    /// Keeps the fd alive; all I/O goes through raw `writev`/`readv`.
    _stream: TcpStream,
    fd: i32,
    send: SpinLock<SendState>,
    recv: SpinLock<RecvState>,
    /// Socket may have inbound bytes. Set by the bridge on EPOLLIN
    /// edges, cleared only when a read returns `EAGAIN` (with a re-read
    /// to close the edge race). Always true on non-evented platforms.
    readable: AtomicBool,
    /// A write hit `EAGAIN`; cleared by the bridge on EPOLLOUT edges.
    /// While set, engines may park — the edge will wake them.
    write_blocked: AtomicBool,
    dead: AtomicBool,
    /// Frames currently queued for send (lock-free mirror of `q.len()`
    /// for `inbound_pending`).
    send_backlog: AtomicUsize,
    /// Bridge backstop bookkeeping: set when the bridge samples a
    /// non-empty send queue, cleared by any successful write. A queue
    /// still stale at the *next* sweep has a poster that stopped
    /// polling, and the bridge flushes it — posts complete locally, so
    /// without this a rank that blocks after its last post (an OOB
    /// collective, a worker join) would strand the frames forever.
    flush_stale: AtomicBool,
    /// Inbox occupancy + partial-frame hint (lock-free mirror for
    /// `inbound_pending`).
    recv_pending: AtomicUsize,
}

impl Conn {
    fn new(peer: usize, stream: TcpStream) -> std::io::Result<Conn> {
        stream.set_nodelay(true)?;
        stream.set_nonblocking(true)?;
        let fd = stream.as_raw_fd();
        Ok(Conn {
            peer,
            _stream: stream,
            fd,
            send: SpinLock::new(SendState {
                q: VecDeque::with_capacity(SENDQ_FRAMES),
                head_off: 0,
                bytes: 0,
            }),
            recv: SpinLock::new(RecvState {
                dec: FrameDecoder::new(),
                inbox: VecDeque::with_capacity(INBOX_CAP),
            }),
            readable: AtomicBool::new(true),
            write_blocked: AtomicBool::new(false),
            dead: AtomicBool::new(false),
            send_backlog: AtomicUsize::new(0),
            flush_stale: AtomicBool::new(false),
            recv_pending: AtomicUsize::new(0),
        })
    }

    fn is_dead(&self) -> bool {
        self.dead.load(Ordering::Acquire)
    }

    /// Queues one encoded frame. The caller holds the send lock.
    fn enqueue_locked(&self, g: &mut SendState, frame: PoolBuf) -> NetResult<()> {
        if self.is_dead() {
            return Err(NetError::fatal(format!("tcp peer rank {} has exited", self.peer)));
        }
        if g.q.len() >= SENDQ_FRAMES || g.bytes + frame.len() > SENDQ_BYTES {
            return Err(NetError::Retry(RetryReason::RxFull));
        }
        g.bytes += frame.len();
        g.q.push_back(frame);
        self.send_backlog.store(g.q.len(), Ordering::Release);
        Ok(())
    }

    /// Pops fully-written frames after a `writev` of `n` bytes; returns
    /// how many frames completed.
    fn advance_sent(&self, g: &mut SendState, mut n: usize) -> u64 {
        let mut done = 0;
        while n > 0 {
            let remaining = g.q.front().expect("wrote bytes of a frame").len() - g.head_off;
            if n >= remaining {
                let f = g.q.pop_front().expect("front exists");
                g.bytes -= f.len();
                g.head_off = 0;
                n -= remaining;
                done += 1;
            } else {
                g.head_off += n;
                n = 0;
            }
        }
        self.send_backlog.store(g.q.len(), Ordering::Release);
        self.flush_stale.store(false, Ordering::Release);
        done
    }

    /// Drains the send queue into as few `writev` calls as the socket
    /// accepts (`batched`), or one `write` per frame (the ablation).
    /// Counters land in `state`. The caller holds the send lock.
    fn flush_locked(&self, g: &mut SendState, batched: bool, state: &TcpRankState) -> ConnIo {
        loop {
            if self.is_dead() {
                return ConnIo::Dead;
            }
            if g.q.is_empty() {
                return ConnIo::Ok;
            }
            if self.write_blocked.load(Ordering::Acquire) {
                return ConnIo::Ok;
            }
            match self.writev_once(g, batched, state) {
                Ok(true) => continue,
                Ok(false) => {
                    // EAGAIN. Set the parked-is-safe flag, then probe once
                    // more: an EPOLLOUT edge between the failed write and
                    // the store would otherwise be lost forever.
                    if !sys::EVENTED {
                        return ConnIo::Ok;
                    }
                    self.write_blocked.store(true, Ordering::Release);
                    match self.writev_once(g, batched, state) {
                        Ok(true) => {
                            self.write_blocked.store(false, Ordering::Release);
                            continue;
                        }
                        Ok(false) => return ConnIo::Ok,
                        Err(()) => return ConnIo::Dead,
                    }
                }
                Err(()) => return ConnIo::Dead,
            }
        }
    }

    /// One gather-write attempt. `Ok(true)` = progress, `Ok(false)` =
    /// `EAGAIN`, `Err` = peer gone.
    fn writev_once(
        &self,
        g: &mut SendState,
        batched: bool,
        state: &TcpRankState,
    ) -> Result<bool, ()> {
        let mut iovs = [sys::IoVec { base: std::ptr::null_mut(), len: 0 }; sys::MAX_IOV];
        let take = if batched { g.q.len().min(sys::MAX_IOV) } else { 1 };
        for (i, f) in g.q.iter().take(take).enumerate() {
            let s: &[u8] = if i == 0 { &f[g.head_off..] } else { f };
            iovs[i] = sys::IoVec::from_slice(s);
        }
        match sys::writev(self.fd, &iovs[..take]) {
            Ok(n) => {
                let done = self.advance_sent(g, n);
                state.writev_calls.fetch_add(1, Ordering::Relaxed);
                state.writev_frames.fetch_add(done, Ordering::Relaxed);
                Ok(true)
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => Ok(false),
            Err(_) => Err(()),
        }
    }

    /// Reads the socket into the reassembly buffer and decodes complete
    /// frames into the inbox, staging payloads through `pool`. The
    /// caller holds the recv lock.
    fn fill_and_decode(&self, g: &mut RecvState, pool: &BufPool) -> ConnIo {
        let mut budget = READ_BUDGET;
        let status = loop {
            // Decode what is buffered before reading more.
            let mut corrupt = false;
            loop {
                if g.inbox.len() >= INBOX_CAP {
                    break;
                }
                match g.dec.decode_next() {
                    Ok(Some(f)) => {
                        let payload = pool.stage_copy(f.payload);
                        let header = f.header;
                        g.inbox.push_back(InFrame { header, payload });
                    }
                    Ok(None) => break,
                    // Corrupt stream: unrecoverable, treat as peer loss.
                    Err(_) => {
                        corrupt = true;
                        break;
                    }
                }
            }
            if corrupt {
                break ConnIo::Dead;
            }
            if g.inbox.len() >= INBOX_CAP || budget == 0 || self.is_dead() {
                break ConnIo::Ok;
            }
            if sys::EVENTED && !self.readable.load(Ordering::Acquire) {
                break ConnIo::Ok;
            }
            match self.read_once(g, &mut budget) {
                Ok(true) => continue,
                Ok(false) => {
                    if !sys::EVENTED {
                        break ConnIo::Ok;
                    }
                    // EAGAIN: clear the flag, then probe once more so an
                    // edge that fired between the failed read and the
                    // store cannot strand buffered bytes.
                    self.readable.store(false, Ordering::Release);
                    match self.read_once(g, &mut budget) {
                        Ok(true) => {
                            self.readable.store(true, Ordering::Release);
                            continue;
                        }
                        Ok(false) => break ConnIo::Ok,
                        Err(()) => break ConnIo::Dead,
                    }
                }
                Err(()) => break ConnIo::Dead,
            }
        };
        self.recv_pending.store(
            g.inbox.len() + usize::from(g.dec.pending_bytes() >= crate::shm::ring::HEADER_LEN),
            Ordering::Release,
        );
        status
    }

    /// One scatter-read attempt. `Ok(true)` = progress, `Ok(false)` =
    /// `EAGAIN`, `Err` = EOF or error (peer gone).
    fn read_once(&self, g: &mut RecvState, budget: &mut usize) -> Result<bool, ()> {
        let space = g.dec.fill_space();
        let cap = space.len().min(*budget);
        let mut iovs = [sys::IoVec::from_mut_slice(&mut space[..cap])];
        match sys::readv(self.fd, &mut iovs) {
            Ok(0) => Err(()),
            Ok(n) => {
                g.dec.advance_filled(n);
                *budget = budget.saturating_sub(n);
                Ok(true)
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => Ok(false),
            Err(_) => Err(()),
        }
    }

    /// Work hint for `inbound_pending`: anything that needs another
    /// poll rather than a doorbell ring to make progress.
    fn pending_hint(&self) -> usize {
        let mut n = self.recv_pending.load(Ordering::Acquire);
        if self.readable.load(Ordering::Acquire) && !self.is_dead() {
            n += 1;
        }
        if self.send_backlog.load(Ordering::Acquire) > 0
            && !self.write_blocked.load(Ordering::Acquire)
        {
            n += 1;
        }
        n
    }
}

/// Fabric-level TCP state: the mesh sockets plus per-local-rank runtime
/// state, created lazily per rank (mirrors [`crate::shm::ShmFabric`]).
pub(crate) struct TcpFabric {
    nranks: usize,
    pub(crate) multiproc: bool,
    pub(crate) my_rank: usize,
    states: Vec<OnceLock<Arc<TcpRankState>>>,
    /// Pre-established sockets for ranks hosted in this process, taken
    /// when the rank's state is first built. `pending[rank][peer]`.
    pending: Mutex<Vec<Vec<Option<TcpStream>>>>,
    /// Root-service OOB channel (multi-process mode only).
    pub(crate) oob: Option<oob::OobClient>,
}

impl TcpFabric {
    /// In-process mode: a loopback socket pair per rank pair, built
    /// eagerly so single-process tests and benches measure the real
    /// socket stack.
    // Symmetric `pending[i][j]`/`pending[j][i]` writes: index loops are
    // the clear form here.
    #[allow(clippy::needless_range_loop)]
    pub(crate) fn in_process(nranks: usize) -> std::io::Result<TcpFabric> {
        let mut pending: Vec<Vec<Option<TcpStream>>> =
            (0..nranks).map(|_| (0..nranks).map(|_| None).collect()).collect();
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        for i in 0..nranks {
            for j in i + 1..nranks {
                let a = TcpStream::connect(addr)?;
                let (b, _) = listener.accept()?;
                pending[i][j] = Some(a);
                pending[j][i] = Some(b);
            }
        }
        Ok(TcpFabric {
            nranks,
            multiproc: false,
            my_rank: 0,
            states: (0..nranks).map(|_| OnceLock::new()).collect(),
            pending: Mutex::new(pending),
            oob: None,
        })
    }

    /// Multi-process mode: this process owns exactly `my_rank`; `conns`
    /// holds the established mesh socket per peer (None at `my_rank`).
    pub(crate) fn attached(
        conns: Vec<Option<TcpStream>>,
        my_rank: usize,
        nranks: usize,
        oob: oob::OobClient,
    ) -> TcpFabric {
        let mut pending: Vec<Vec<Option<TcpStream>>> =
            (0..nranks).map(|_| (0..nranks).map(|_| None).collect()).collect();
        pending[my_rank] = conns;
        TcpFabric {
            nranks,
            multiproc: true,
            my_rank,
            states: (0..nranks).map(|_| OnceLock::new()).collect(),
            pending: Mutex::new(pending),
            oob: Some(oob),
        }
    }

    /// The runtime state for a rank hosted by this process, created on
    /// first use (when its first tcp device is built).
    pub(crate) fn state(&self, rank: usize) -> Arc<TcpRankState> {
        debug_assert!(!self.multiproc || rank == self.my_rank);
        self.states[rank]
            .get_or_init(|| {
                let conns = std::mem::take(&mut self.pending.lock().expect("pending")[rank]);
                TcpRankState::new(rank, self.nranks, conns)
            })
            .clone()
    }

    /// First peer known dead on any locally hosted rank (multi-process
    /// mode only: in-process "peers" share this process's fate).
    pub(crate) fn dead_peer(&self) -> Option<usize> {
        if !self.multiproc {
            return None;
        }
        let st = self.states[self.my_rank].get()?;
        (0..self.nranks).find(|&r| st.peer_dead(r))
    }
}

/// Per-(process, rank) runtime state for the tcp transport.
pub(crate) struct TcpRankState {
    conns: Vec<Option<Arc<Conn>>>,
    /// Local tcp devices on this rank (append-only), for doorbell
    /// fan-out and `ReadDone` routing.
    devs: crate::sync::MpmcArray<Arc<DevShared>>,
    /// Outstanding `post_read`s awaiting a `READ_RESP` frame.
    reads: SpinLock<ReadTable>,
    /// Peers observed gone on the mesh sockets.
    dead: Vec<AtomicBool>,
    /// `writev` syscalls that made progress / frames fully shipped.
    pub(crate) writev_calls: AtomicU64,
    pub(crate) writev_frames: AtomicU64,
    /// Times the epoll bridge woke this rank's doorbells.
    cross_wakes: AtomicU64,
    /// Whether the bridge's backstop flush gathers (mirrors the
    /// devices' `tcp_batch` knob so the one-write-per-frame ablation
    /// keeps its exact syscall accounting even when the bridge steps
    /// in).
    batched_hint: AtomicBool,
    bridge_shutdown: Arc<AtomicBool>,
    bridge: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl TcpRankState {
    fn new(rank: usize, nranks: usize, raw: Vec<Option<TcpStream>>) -> Arc<TcpRankState> {
        let mut conns: Vec<Option<Arc<Conn>>> = (0..nranks).map(|_| None).collect();
        for (peer, s) in raw.into_iter().enumerate() {
            if let Some(s) = s {
                conns[peer] =
                    Some(Arc::new(Conn::new(peer, s).expect("tcp conn setup (nodelay/nonblock)")));
            }
        }
        let shutdown = Arc::new(AtomicBool::new(false));
        Arc::new_cyclic(|weak: &Weak<TcpRankState>| {
            let bridge = spawn_bridge(rank, &conns, shutdown.clone(), weak.clone());
            TcpRankState {
                conns,
                devs: crate::sync::MpmcArray::with_capacity(4),
                reads: SpinLock::new(ReadTable::new()),
                dead: (0..nranks).map(|_| AtomicBool::new(false)).collect(),
                writev_calls: AtomicU64::new(0),
                writev_frames: AtomicU64::new(0),
                cross_wakes: AtomicU64::new(0),
                batched_hint: AtomicBool::new(true),
                bridge_shutdown: shutdown,
                bridge: Mutex::new(bridge),
            }
        })
    }

    pub(crate) fn register_dev(&self, dev: Arc<DevShared>) {
        self.devs.push(dev);
    }

    pub(crate) fn conn(&self, peer: usize) -> Option<&Arc<Conn>> {
        self.conns.get(peer).and_then(|c| c.as_ref())
    }

    pub(crate) fn reads(&self) -> &SpinLock<ReadTable> {
        &self.reads
    }

    pub(crate) fn dev_by_id(&self, dev: crate::types::DevId) -> Option<Arc<DevShared>> {
        (0..self.devs.len()).filter_map(|i| self.devs.read(i)).find(|d| d.dev_id() == dev)
    }

    pub(crate) fn ring_all_bells(&self) {
        for i in 0..self.devs.len() {
            if let Some(d) = self.devs.read(i) {
                d.bell().ring();
            }
        }
    }

    pub(crate) fn peer_dead(&self, peer: usize) -> bool {
        self.dead.get(peer).map(|d| d.load(Ordering::Acquire)).unwrap_or(false)
    }

    /// Marks `peer` gone and wakes every engine so in-flight waits
    /// observe the death instead of parking forever. Idempotent.
    pub(crate) fn mark_peer_dead(&self, peer: usize) {
        if let Some(c) = self.conn(peer) {
            c.dead.store(true, Ordering::Release);
        }
        if !self.dead[peer].swap(true, Ordering::AcqRel) {
            self.ring_all_bells();
        }
    }

    /// Work queued on this rank's connections that needs polling (not a
    /// doorbell) to advance.
    pub(crate) fn conn_pending(&self) -> usize {
        self.conns.iter().flatten().map(|c| c.pending_hint()).sum()
    }

    /// Frames accepted by `post_send`/`post_write` but not yet flushed
    /// to a socket. Sends complete locally at post time (like a NIC
    /// accepting a WQE), so quiescence checks must count this: a rank
    /// that stops polling with frames still queued strands its peers.
    pub(crate) fn outbound_pending(&self) -> usize {
        self.conns.iter().flatten().map(|c| c.send_backlog.load(Ordering::Acquire)).sum()
    }

    pub(crate) fn set_batched_hint(&self, batched: bool) {
        self.batched_hint.store(batched, Ordering::Release);
    }

    /// Bridge-side flush backstop. Marks every non-empty send queue
    /// stale; a queue *already* stale from the previous sweep has sat
    /// a full bridge interval with no write — its poster stopped
    /// polling — so the bridge flushes it here. The one-interval grace
    /// keeps the fast path intact: an actively polled queue drains (and
    /// clears the mark) long before two sweeps pass, so batching still
    /// happens in `poll_cq` where frames accumulate between polls.
    /// Returns whether any queue was flushed.
    fn backstop_flush(&self) -> bool {
        let batched = self.batched_hint.load(Ordering::Acquire);
        let mut flushed = false;
        for (peer, conn) in self.conns.iter().enumerate() {
            let Some(c) = conn else { continue };
            if c.is_dead() || c.send_backlog.load(Ordering::Acquire) == 0 {
                continue;
            }
            if !c.flush_stale.swap(true, Ordering::AcqRel) {
                continue; // first sighting: give the poster one interval
            }
            let Some(mut sg) = c.send.try_lock() else { continue };
            if c.flush_locked(&mut sg, batched, self) == ConnIo::Dead {
                drop(sg);
                self.mark_peer_dead(peer);
            } else {
                flushed = true;
            }
        }
        flushed
    }

    pub(crate) fn cross_proc_wakes(&self) -> u64 {
        self.cross_wakes.load(Ordering::Relaxed)
    }
}

impl Drop for TcpRankState {
    fn drop(&mut self) {
        self.bridge_shutdown.store(true, Ordering::Release);
        if let Some(h) = self.bridge.lock().expect("bridge handle poisoned").take() {
            let _ = h.join();
        }
    }
}

/// The socket-readiness bridge: parks in `epoll_wait` over every mesh
/// socket of this rank and converts readiness edges into local
/// [`Doorbell`](crate::sync::Doorbell) rings — the tcp counterpart of
/// the shm futex bridge. On platforms without epoll it degrades to a
/// timed tick that re-arms the readable flags.
fn spawn_bridge(
    rank: usize,
    conns: &[Option<Arc<Conn>>],
    shutdown: Arc<AtomicBool>,
    state: Weak<TcpRankState>,
) -> Option<std::thread::JoinHandle<()>> {
    #[cfg(target_os = "linux")]
    {
        let ep = sys::Epoll::new().expect("epoll_create1");
        let flat: Vec<Arc<Conn>> = conns.iter().flatten().cloned().collect();
        for c in &flat {
            ep.add(c.fd, c.peer as u64).expect("epoll_ctl add");
        }
        let handle = std::thread::Builder::new()
            .name(format!("lci-tcp-epoll{rank}"))
            .spawn(move || {
                // The state is built with `Arc::new_cyclic`, so the Weak
                // cannot upgrade until construction returns; only after
                // the first success does `None` mean "state dropped".
                while state.upgrade().is_none() {
                    if shutdown.load(Ordering::Acquire) {
                        return;
                    }
                    std::thread::yield_now();
                }
                loop {
                    if shutdown.load(Ordering::Acquire) {
                        break;
                    }
                    // Short wait while frames sit unflushed so the backstop
                    // (below) reaches an abandoned queue within ~2 ms; the
                    // long tick otherwise.
                    let timeout = match state.upgrade() {
                        Some(st) if st.outbound_pending() > 0 => 1,
                        Some(_) => 100,
                        None => break,
                    };
                    let mut woke = false;
                    let r = ep.wait(timeout, |tag, readable, writable| {
                        let Some(c) = flat.iter().find(|c| c.peer as u64 == tag) else { return };
                        if readable {
                            c.readable.store(true, Ordering::Release);
                            woke = true;
                        }
                        if writable && c.write_blocked.swap(false, Ordering::AcqRel) {
                            woke = true;
                        }
                    });
                    if r.is_err() {
                        break;
                    }
                    let Some(st) = state.upgrade() else { break };
                    woke |= st.backstop_flush();
                    if woke {
                        st.cross_wakes.fetch_add(1, Ordering::Relaxed);
                        st.ring_all_bells();
                    }
                }
            })
            .expect("failed to spawn tcp epoll bridge");
        Some(handle)
    }
    #[cfg(not(target_os = "linux"))]
    {
        let flat: Vec<Arc<Conn>> = conns.iter().flatten().cloned().collect();
        let handle = std::thread::Builder::new()
            .name(format!("lci-tcp-tick{rank}"))
            .spawn(move || {
                // See the epoll bridge: the cyclic Weak upgrades only
                // after construction finishes.
                while state.upgrade().is_none() {
                    if shutdown.load(Ordering::Acquire) {
                        return;
                    }
                    std::thread::yield_now();
                }
                loop {
                    if shutdown.load(Ordering::Acquire) {
                        break;
                    }
                    std::thread::sleep(std::time::Duration::from_millis(1));
                    for c in &flat {
                        c.readable.store(true, Ordering::Release);
                    }
                    let Some(st) = state.upgrade() else { break };
                    st.backstop_flush();
                    st.cross_wakes.fetch_add(1, Ordering::Relaxed);
                    st.ring_all_bells();
                }
            })
            .expect("failed to spawn tcp tick bridge");
        Some(handle)
    }
}
