//! Thin OS layer for the TCP transport: vectored socket I/O and epoll.
//!
//! Same discipline as [`crate::shm::os`]: no external crates, symbols
//! declared directly against the C runtime the standard library already
//! links. epoll is Linux-only; other platforms fall back to a timed
//! polling bridge (see `tcp::spawn_bridge`), which keeps the crate
//! compiling and the in-process tcp mode testable everywhere.

#![cfg(unix)]

use std::io;
use std::os::raw::c_void;

/// Whether the platform has an event-driven readiness bridge (epoll).
/// Off-path fallbacks poll on a timer and must always attempt reads.
pub const EVENTED: bool = cfg!(target_os = "linux");

/// Maximum iovecs one `writev` call gathers. Linux IOV_MAX is 1024; we
/// stay under it and keep the stack-resident iovec array small.
pub const MAX_IOV: usize = 256;

/// One gather/scatter segment (`struct iovec`).
#[repr(C)]
#[derive(Clone, Copy)]
pub struct IoVec {
    pub base: *mut c_void,
    pub len: usize,
}

impl IoVec {
    /// An iovec over an immutable slice. `writev` never writes through
    /// it; the const-to-mut cast mirrors the C prototype.
    pub fn from_slice(s: &[u8]) -> IoVec {
        IoVec { base: s.as_ptr() as *mut c_void, len: s.len() }
    }

    /// An iovec over a mutable slice (for `readv`).
    pub fn from_mut_slice(s: &mut [u8]) -> IoVec {
        IoVec { base: s.as_mut_ptr().cast(), len: s.len() }
    }
}

/// Gather-writes `iovs` to `fd`. Retries `EINTR`; every other error —
/// including `EAGAIN` — surfaces as `io::Error` for the caller to map.
pub fn writev(fd: i32, iovs: &[IoVec]) -> io::Result<usize> {
    loop {
        // SAFETY: each iovec points at caller-owned bytes that outlive
        // the call; the count is the array length.
        let n = unsafe { ffi::writev(fd, iovs.as_ptr(), iovs.len().min(MAX_IOV) as i32) };
        if n >= 0 {
            return Ok(n as usize);
        }
        let e = io::Error::last_os_error();
        if e.kind() != io::ErrorKind::Interrupted {
            return Err(e);
        }
    }
}

/// Scatter-reads from `fd` into `iovs`. Retries `EINTR`; `Ok(0)` is
/// end-of-stream (peer closed).
pub fn readv(fd: i32, iovs: &mut [IoVec]) -> io::Result<usize> {
    loop {
        // SAFETY: each iovec points at caller-owned writable bytes that
        // outlive the call.
        let n = unsafe { ffi::readv(fd, iovs.as_mut_ptr(), iovs.len().min(MAX_IOV) as i32) };
        if n >= 0 {
            return Ok(n as usize);
        }
        let e = io::Error::last_os_error();
        if e.kind() != io::ErrorKind::Interrupted {
            return Err(e);
        }
    }
}

/// Whether an I/O error means the peer is gone (as opposed to
/// transient backpressure, which is `WouldBlock`).
pub fn is_disconnect(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::BrokenPipe
            | io::ErrorKind::ConnectionReset
            | io::ErrorKind::ConnectionAborted
            | io::ErrorKind::NotConnected
            | io::ErrorKind::UnexpectedEof
    )
}

/// Edge-triggered epoll instance watching connection fds (Linux only).
/// `wait` decodes events into `(peer_index, readable, writable)`.
#[cfg(target_os = "linux")]
pub struct Epoll {
    epfd: i32,
}

#[cfg(target_os = "linux")]
impl Epoll {
    pub const IN: u32 = 0x001;
    pub const OUT: u32 = 0x004;
    const ERR: u32 = 0x008;
    const HUP: u32 = 0x010;
    const RDHUP: u32 = 0x2000;
    const ET: u32 = 1 << 31;

    pub fn new() -> io::Result<Epoll> {
        // SAFETY: plain syscall, no pointers.
        let epfd = unsafe { ffi::epoll_create1(0) };
        if epfd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Epoll { epfd })
    }

    /// Registers `fd` edge-triggered for both directions; `tag` comes
    /// back verbatim in [`wait`](Epoll::wait) events.
    pub fn add(&self, fd: i32, tag: u64) -> io::Result<()> {
        let mut ev =
            ffi::EpollEvent { events: Self::IN | Self::OUT | Self::RDHUP | Self::ET, data: tag };
        // SAFETY: `ev` is a valid epoll_event for the duration of the call.
        let r = unsafe { ffi::epoll_ctl(self.epfd, ffi::EPOLL_CTL_ADD, fd, &mut ev) };
        if r < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Waits up to `timeout_ms` for events; invokes `f(tag, readable,
    /// writable)` per event. Returns the event count.
    pub fn wait(&self, timeout_ms: i32, mut f: impl FnMut(u64, bool, bool)) -> io::Result<usize> {
        let mut evs = [ffi::EpollEvent { events: 0, data: 0 }; 64];
        // SAFETY: the event buffer is valid for `evs.len()` entries.
        let n =
            unsafe { ffi::epoll_wait(self.epfd, evs.as_mut_ptr(), evs.len() as i32, timeout_ms) };
        if n < 0 {
            let e = io::Error::last_os_error();
            if e.kind() == io::ErrorKind::Interrupted {
                return Ok(0);
            }
            return Err(e);
        }
        for ev in &evs[..n as usize] {
            let bits = ev.events;
            let readable = bits & (Self::IN | Self::ERR | Self::HUP | Self::RDHUP) != 0;
            let writable = bits & (Self::OUT | Self::ERR | Self::HUP) != 0;
            f(ev.data, readable, writable);
        }
        Ok(n as usize)
    }
}

#[cfg(target_os = "linux")]
impl Drop for Epoll {
    fn drop(&mut self) {
        // SAFETY: epfd is a live fd owned by this instance.
        unsafe { ffi::close(self.epfd) };
    }
}

mod ffi {
    use super::IoVec;
    use std::os::raw::c_int;

    extern "C" {
        pub fn writev(fd: c_int, iov: *const IoVec, iovcnt: c_int) -> isize;
        pub fn readv(fd: c_int, iov: *mut IoVec, iovcnt: c_int) -> isize;
        #[cfg(target_os = "linux")]
        pub fn close(fd: c_int) -> c_int;
    }

    #[cfg(target_os = "linux")]
    pub const EPOLL_CTL_ADD: c_int = 1;

    /// `struct epoll_event`; packed on x86_64 (the kernel ABI), natural
    /// alignment elsewhere.
    #[cfg(target_os = "linux")]
    #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
    #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    #[cfg(target_os = "linux")]
    extern "C" {
        pub fn epoll_create1(flags: c_int) -> c_int;
        pub fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        pub fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            max: c_int,
            timeout: c_int,
        ) -> c_int;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read;
    use std::os::unix::io::AsRawFd;

    #[test]
    fn writev_gathers_across_iovecs() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let tx = std::net::TcpStream::connect(addr).unwrap();
        let (mut rx, _) = listener.accept().unwrap();
        let parts: [&[u8]; 3] = [b"hel", b"lo ", b"tcp"];
        let iovs: Vec<IoVec> = parts.iter().map(|p| IoVec::from_slice(p)).collect();
        let n = writev(tx.as_raw_fd(), &iovs).unwrap();
        assert_eq!(n, 9);
        let mut buf = [0u8; 9];
        rx.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"hello tcp");
    }

    #[test]
    fn readv_scatters_and_sees_eof() {
        use std::io::Write;
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut tx = std::net::TcpStream::connect(addr).unwrap();
        let (rx, _) = listener.accept().unwrap();
        tx.write_all(b"abcdef").unwrap();
        drop(tx);
        let (mut a, mut b) = ([0u8; 4], [0u8; 4]);
        let mut iovs = [IoVec::from_mut_slice(&mut a), IoVec::from_mut_slice(&mut b)];
        let n = readv(rx.as_raw_fd(), &mut iovs).unwrap();
        assert_eq!(n, 6);
        assert_eq!(&a, b"abcd");
        assert_eq!(&b[..2], b"ef");
        let mut iovs = [IoVec::from_mut_slice(&mut a)];
        assert_eq!(readv(rx.as_raw_fd(), &mut iovs).unwrap(), 0); // EOF
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn epoll_reports_readiness_edges() {
        use std::io::Write;
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut tx = std::net::TcpStream::connect(addr).unwrap();
        let (rx, _) = listener.accept().unwrap();
        rx.set_nonblocking(true).unwrap();
        let ep = Epoll::new().unwrap();
        ep.add(rx.as_raw_fd(), 42).unwrap();
        // Fresh socket: writable edge arrives immediately.
        let mut saw = None;
        ep.wait(1000, |tag, r, w| saw = Some((tag, r, w))).unwrap();
        let (tag, _, w) = saw.expect("expected initial writability event");
        assert_eq!(tag, 42);
        assert!(w);
        // Data arrival: readable edge.
        tx.write_all(b"x").unwrap();
        let mut readable = false;
        while !readable {
            ep.wait(1000, |_, r, _| readable |= r).unwrap();
        }
    }
}
