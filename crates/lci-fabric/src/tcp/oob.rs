//! Out-of-band bootstrap channel for multi-process TCP jobs: a tiny
//! root service (the PMI stand-in) hosted by the launcher.
//!
//! Every child keeps one *blocking* socket to the root, entirely off
//! the data path: it carries the mesh address exchange at attach time
//! and the `Fabric::oob_barrier` / `oob_allgather` collectives the
//! upper layers use for setup. The wire protocol is deliberately tiny:
//!
//! ```text
//! hello     (child → root, once):  "LCIT" · rank u32 · nranks u32
//! request   (child → root):        op u8 (1=barrier, 2=allgather)
//!                                  · len u32 · payload
//! response  (root → child):        status u8 (0=ok, 1=peer dead)
//!                                  · [allgather: nranks × (len u32 · bytes)]
//! ```
//!
//! A child that exits (cleanly or not) EOFs its root socket; the root
//! marks it dead and fails every in-flight and future round with
//! status 1, so surviving ranks get an error instead of a hang —
//! the OOB mirror of the data path's `PeerDead` surfacing.

#![cfg(unix)]

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

const MAGIC: &[u8; 4] = b"LCIT";
const OP_BARRIER: u8 = 1;
const OP_ALLGATHER: u8 = 2;

/// Upper bound on one OOB contribution (bootstrap metadata only).
const MAX_OOB_LEN: usize = 1 << 20;

fn write_u32(w: &mut impl Write, v: u32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn read_u32(r: &mut impl Read) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

/// Child-side handle on the root service.
pub(crate) struct OobClient {
    stream: Mutex<TcpStream>,
    nranks: usize,
}

impl OobClient {
    /// Connects to the root and sends the hello. Retries refused
    /// connections until `deadline` (the root listens before spawning,
    /// so this is belt-and-braces).
    pub(crate) fn connect(
        root: SocketAddr,
        rank: usize,
        nranks: usize,
        deadline: Instant,
    ) -> io::Result<OobClient> {
        let mut stream = loop {
            match TcpStream::connect(root) {
                Ok(s) => break s,
                Err(e) if Instant::now() < deadline => {
                    let _ = e;
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(e) => return Err(e),
            }
        };
        stream.set_nodelay(true)?;
        stream.write_all(MAGIC)?;
        write_u32(&mut stream, rank as u32)?;
        write_u32(&mut stream, nranks as u32)?;
        Ok(OobClient { stream: Mutex::new(stream), nranks })
    }

    fn request(&self, op: u8, payload: &[u8]) -> io::Result<Option<Vec<Vec<u8>>>> {
        let mut s = self.stream.lock().expect("oob client poisoned");
        s.write_all(&[op])?;
        write_u32(&mut *s, payload.len() as u32)?;
        s.write_all(payload)?;
        let mut status = [0u8; 1];
        s.read_exact(&mut status)?;
        if status[0] != 0 {
            return Err(io::Error::new(
                io::ErrorKind::ConnectionReset,
                "tcp oob: a peer rank died during the collective",
            ));
        }
        if op != OP_ALLGATHER {
            return Ok(None);
        }
        let mut out = Vec::with_capacity(self.nranks);
        for _ in 0..self.nranks {
            let len = read_u32(&mut *s)? as usize;
            if len > MAX_OOB_LEN {
                return Err(io::Error::new(io::ErrorKind::InvalidData, "oob blob oversized"));
            }
            let mut b = vec![0u8; len];
            s.read_exact(&mut b)?;
            out.push(b);
        }
        Ok(Some(out))
    }

    pub(crate) fn barrier(&self) -> io::Result<()> {
        self.request(OP_BARRIER, &[]).map(|_| ())
    }

    pub(crate) fn allgather(&self, data: &[u8]) -> io::Result<Vec<Vec<u8>>> {
        self.request(OP_ALLGATHER, data).map(|o| o.expect("allgather returns blobs"))
    }
}

/// Shared state of one rendezvous round at the root.
struct RoundState {
    contrib: Vec<Option<Vec<u8>>>,
    arrived: usize,
    /// Completed-round counter; waiters wake when it advances.
    gen: u64,
    /// Result of the round that completed at `gen` (kept until the next
    /// round completes; every waiter reads it before contributing again).
    result: Arc<Vec<Vec<u8>>>,
    dead: bool,
}

/// Launcher-side root service: accepts one connection per rank, then
/// serves barrier/allgather rounds until every child disconnects.
pub(crate) struct RootServer {
    addr: SocketAddr,
}

impl RootServer {
    /// Binds a loopback listener and spawns the service threads. The
    /// returned server only carries the address children dial; service
    /// threads exit on their own once all children hang up (the
    /// listener socket closes with the accept thread).
    pub(crate) fn spawn(
        host: &str,
        nranks: usize,
        accept_deadline: Instant,
    ) -> io::Result<RootServer> {
        let listener = TcpListener::bind((host, 0))?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let state = Arc::new((
            Mutex::new(RoundState {
                contrib: vec![None; nranks],
                arrived: 0,
                gen: 0,
                result: Arc::new(Vec::new()),
                dead: false,
            }),
            Condvar::new(),
        ));
        std::thread::Builder::new()
            .name("lci-tcp-root".into())
            .spawn(move || accept_loop(listener, nranks, accept_deadline, state))
            .expect("failed to spawn tcp oob root");
        Ok(RootServer { addr })
    }

    pub(crate) fn addr(&self) -> SocketAddr {
        self.addr
    }
}

fn accept_loop(
    listener: TcpListener,
    nranks: usize,
    deadline: Instant,
    state: Arc<(Mutex<RoundState>, Condvar)>,
) {
    let mut seen = vec![false; nranks];
    let mut accepted = 0;
    while accepted < nranks && Instant::now() < deadline {
        let mut stream = match listener.accept() {
            Ok((s, _)) => s,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
                continue;
            }
            Err(_) => return,
        };
        let _ = stream.set_nodelay(true);
        let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
        let mut hello = [0u8; 12];
        if stream.read_exact(&mut hello).is_err() || &hello[..4] != MAGIC {
            continue;
        }
        let rank = u32::from_le_bytes(hello[4..8].try_into().expect("4 bytes")) as usize;
        let n = u32::from_le_bytes(hello[8..12].try_into().expect("4 bytes")) as usize;
        if rank >= nranks || n != nranks || std::mem::replace(&mut seen[rank], true) {
            continue;
        }
        let _ = stream.set_read_timeout(None);
        accepted += 1;
        let state = state.clone();
        std::thread::Builder::new()
            .name(format!("lci-tcp-oob{rank}"))
            .spawn(move || serve_child(stream, rank, nranks, state))
            .expect("failed to spawn oob handler");
    }
    // Ranks that never registered would wedge every round: fail them.
    if accepted < nranks {
        let (lock, cond) = &*state;
        lock.lock().expect("oob state poisoned").dead = true;
        cond.notify_all();
    }
}

fn serve_child(
    mut stream: TcpStream,
    rank: usize,
    nranks: usize,
    state: Arc<(Mutex<RoundState>, Condvar)>,
) {
    let (lock, cond) = &*state;
    loop {
        let mut op = [0u8; 1];
        if stream.read_exact(&mut op).is_err() {
            // Child gone: poison current and future rounds.
            let mut g = lock.lock().expect("oob state poisoned");
            g.dead = true;
            cond.notify_all();
            return;
        }
        let payload = match read_u32(&mut stream) {
            Ok(len) if (len as usize) <= MAX_OOB_LEN => {
                let mut b = vec![0u8; len as usize];
                if stream.read_exact(&mut b).is_err() {
                    let mut g = lock.lock().expect("oob state poisoned");
                    g.dead = true;
                    cond.notify_all();
                    return;
                }
                b
            }
            _ => {
                let mut g = lock.lock().expect("oob state poisoned");
                g.dead = true;
                cond.notify_all();
                return;
            }
        };
        let result = {
            let mut g = lock.lock().expect("oob state poisoned");
            let my_gen = g.gen;
            g.contrib[rank] = Some(payload);
            g.arrived += 1;
            if g.arrived == nranks {
                g.arrived = 0;
                let blobs: Vec<Vec<u8>> =
                    g.contrib.iter_mut().map(|c| c.take().expect("contribution set")).collect();
                g.result = Arc::new(blobs);
                g.gen += 1;
                cond.notify_all();
                Ok(g.result.clone())
            } else {
                loop {
                    // Round completion wins over death: a rank that got
                    // its response and exited cleanly EOFs its socket,
                    // which must not poison rounds that already closed.
                    if g.gen != my_gen {
                        break Ok(g.result.clone());
                    }
                    if g.dead {
                        break Err(());
                    }
                    g = cond.wait(g).expect("oob state poisoned");
                }
            }
        };
        let ok = match result {
            Err(()) => stream.write_all(&[1]).is_ok(),
            Ok(blobs) => {
                let mut ok = stream.write_all(&[0]).is_ok();
                if ok && op[0] == OP_ALLGATHER {
                    for b in blobs.iter() {
                        ok = write_u32(&mut stream, b.len() as u32).is_ok()
                            && stream.write_all(b).is_ok();
                        if !ok {
                            break;
                        }
                    }
                }
                ok
            }
        };
        if !ok {
            let mut g = lock.lock().expect("oob state poisoned");
            g.dead = true;
            cond.notify_all();
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn barrier_and_allgather_rounds() {
        let deadline = Instant::now() + Duration::from_secs(10);
        let root = RootServer::spawn("127.0.0.1", 3, deadline).unwrap();
        let addr = root.addr();
        let handles: Vec<_> = (0..3usize)
            .map(|rank| {
                std::thread::spawn(move || {
                    let c = OobClient::connect(addr, rank, 3, deadline).unwrap();
                    c.barrier().unwrap();
                    for round in 0..3u8 {
                        let out = c.allgather(&[round * 10 + rank as u8]).unwrap();
                        assert_eq!(
                            out,
                            (0..3).map(|r| vec![round * 10 + r as u8]).collect::<Vec<_>>()
                        );
                    }
                    c.barrier().unwrap();
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn dead_peer_fails_round_instead_of_hanging() {
        let deadline = Instant::now() + Duration::from_secs(10);
        let root = RootServer::spawn("127.0.0.1", 2, deadline).unwrap();
        let addr = root.addr();
        let c0 = OobClient::connect(addr, 0, 2, deadline).unwrap();
        let c1 = OobClient::connect(addr, 1, 2, deadline).unwrap();
        // Rank 1 registers, then vanishes without entering the barrier.
        drop(c1);
        let err = c0.barrier().expect_err("barrier with a dead peer must fail");
        assert_eq!(err.kind(), io::ErrorKind::ConnectionReset);
    }
}
