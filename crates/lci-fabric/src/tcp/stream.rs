//! The TCP stream codec: the shm frame format on a byte stream.
//!
//! A frame on the wire is the 64-byte [`shm::ring`] header followed by
//! the payload; the `spill` word is always zero (streams have no spill
//! region — the length field alone delimits frames). Unlike the shm
//! rings, where frames arrive whole by construction, a TCP stream
//! fragments arbitrarily: a header can straddle two reads, a payload
//! can arrive one byte at a time, a `writev` can be torn mid-iovec.
//! [`FrameDecoder`] reassembles against all of that — it buffers
//! undecoded bytes across reads and yields a frame only when header and
//! payload are both complete.
//!
//! [`shm::ring`]: crate::shm::ring

use crate::buf_pool::{BufPool, MAX_CLASS};
use crate::shm::ring::{
    decode_header, encode_header, FrameHeader, HEADER_LEN, KIND_READ_REQ, KIND_READ_RESP,
    KIND_SEND, KIND_WRITE,
};

/// Largest payload one TCP frame carries: the whole frame (header +
/// payload) must fit a pooled buffer class so send queues gather iovecs
/// from recycled storage. The upper stack chunks rendezvous transfers
/// far below this.
pub const MAX_FRAME_PAYLOAD: usize = MAX_CLASS - HEADER_LEN;

/// Initial (and steady-state minimum) reassembly buffer size.
const DECODER_INIT_CAP: usize = 64 << 10;

/// A corrupt or unsupported byte stream. Unlike ring frames — which are
/// trusted shared memory — stream bytes cross a socket, so the decoder
/// validates before believing a length field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamError {
    /// Unknown frame kind: the stream is corrupt or desynchronized.
    BadKind(u8),
    /// Length field exceeds [`MAX_FRAME_PAYLOAD`]: corrupt stream.
    Oversize(usize),
}

impl std::fmt::Display for StreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamError::BadKind(k) => write!(f, "tcp stream: unknown frame kind {k}"),
            StreamError::Oversize(n) => write!(f, "tcp stream: frame payload {n} exceeds limit"),
        }
    }
}

impl std::error::Error for StreamError {}

/// Encodes one frame (header + gathered payload segments) into a single
/// contiguous pooled buffer, ready to sit in a per-peer send queue as
/// one `writev` iovec. Returns `None` when the payload can never fit a
/// frame (fatal, mirrors `ProduceError::TooLarge`).
pub fn encode_frame(
    pool: &BufPool,
    h: &FrameHeader,
    segs: &[&[u8]],
) -> Option<crate::buf_pool::PoolBuf> {
    let len: usize = segs.iter().map(|s| s.len()).sum();
    if len > MAX_FRAME_PAYLOAD {
        return None;
    }
    let mut buf = pool.take_empty(HEADER_LEN + len);
    let v = buf.vec_mut();
    v.resize(HEADER_LEN, 0);
    encode_header(v, h, len as u32, 0);
    for s in segs {
        v.extend_from_slice(s);
    }
    Some(buf)
}

/// One reassembled frame, borrowing the decoder's buffer. The payload
/// must be consumed (copied/staged) before the next decode call.
#[derive(Debug)]
pub struct DecodedFrame<'a> {
    pub header: FrameHeader,
    pub payload: &'a [u8],
}

/// Incremental frame reassembler over an arbitrarily fragmented byte
/// stream.
///
/// The buffer is a flat `Vec` with a consume cursor: bytes land at
/// `filled` (either via [`push`](Self::push) or by reading straight
/// into [`fill_space`](Self::fill_space)), frames are carved off at
/// `pos`, and the un-consumed tail is compacted to the front before
/// each refill. Storage grows only when a single frame outsizes the
/// current buffer, then stays — no steady-state allocation.
pub struct FrameDecoder {
    buf: Vec<u8>,
    /// Bytes `[pos, filled)` are received and not yet decoded.
    pos: usize,
    filled: usize,
}

impl Default for FrameDecoder {
    fn default() -> Self {
        Self::new()
    }
}

impl FrameDecoder {
    pub fn new() -> FrameDecoder {
        FrameDecoder { buf: vec![0; DECODER_INIT_CAP], pos: 0, filled: 0 }
    }

    /// Bytes received but not yet carved into frames.
    pub fn pending_bytes(&self) -> usize {
        self.filled - self.pos
    }

    /// Compacts and returns the writable tail for a socket read; call
    /// [`advance_filled`](Self::advance_filled) with the byte count
    /// actually read. Never empty: grows the buffer when a partial
    /// oversized frame has filled it.
    pub fn fill_space(&mut self) -> &mut [u8] {
        if self.pos > 0 {
            self.buf.copy_within(self.pos..self.filled, 0);
            self.filled -= self.pos;
            self.pos = 0;
        }
        if self.filled == self.buf.len() {
            let new_len = (self.buf.len() * 2).min(HEADER_LEN + MAX_FRAME_PAYLOAD);
            debug_assert!(new_len > self.buf.len(), "frame larger than the frame limit");
            self.buf.resize(new_len.max(self.buf.len() + 1), 0);
        }
        &mut self.buf[self.filled..]
    }

    /// Marks `n` bytes of [`fill_space`](Self::fill_space) as received.
    pub fn advance_filled(&mut self, n: usize) {
        debug_assert!(self.filled + n <= self.buf.len());
        self.filled += n;
    }

    /// Copies `bytes` in (test/bench convenience; the device reads the
    /// socket directly into [`fill_space`](Self::fill_space)).
    pub fn push(&mut self, mut bytes: &[u8]) {
        while !bytes.is_empty() {
            let space = self.fill_space();
            let n = space.len().min(bytes.len());
            space[..n].copy_from_slice(&bytes[..n]);
            self.advance_filled(n);
            bytes = &bytes[n..];
        }
    }

    /// Carves the next complete frame off the stream, if one has fully
    /// arrived. `Ok(None)` means "need more bytes".
    pub fn decode_next(&mut self) -> Result<Option<DecodedFrame<'_>>, StreamError> {
        if self.pending_bytes() < HEADER_LEN {
            return Ok(None);
        }
        let (header, len, _spill) = decode_header(&self.buf[self.pos..self.pos + HEADER_LEN]);
        let len = len as usize;
        if !matches!(header.kind, KIND_SEND | KIND_WRITE | KIND_READ_REQ | KIND_READ_RESP) {
            return Err(StreamError::BadKind(header.kind));
        }
        if len > MAX_FRAME_PAYLOAD {
            return Err(StreamError::Oversize(len));
        }
        if self.pending_bytes() < HEADER_LEN + len {
            return Ok(None);
        }
        let start = self.pos + HEADER_LEN;
        self.pos = start + len;
        Ok(Some(DecodedFrame { header, payload: &self.buf[start..start + len] }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buf_pool::{BufPool, BufPoolConfig};

    fn hdr(kind: u8, imm: u64) -> FrameHeader {
        FrameHeader { kind, flags: 0, imm, src_dev: 1, dst_dev: 2, a: 3, b: 4, c: 5 }
    }

    #[test]
    fn roundtrip_whole_frames() {
        let pool = BufPool::new(BufPoolConfig::default());
        let mut dec = FrameDecoder::new();
        for i in 0..4u64 {
            let payload = vec![i as u8; 10 * i as usize];
            let f = encode_frame(&pool, &hdr(KIND_SEND, i), &[&payload]).unwrap();
            dec.push(&f);
        }
        for i in 0..4u64 {
            let f = dec.decode_next().unwrap().expect("frame");
            assert_eq!(f.header.imm, i);
            assert_eq!(f.payload, vec![i as u8; 10 * i as usize].as_slice());
        }
        assert!(dec.decode_next().unwrap().is_none());
    }

    #[test]
    fn survives_byte_at_a_time() {
        let pool = BufPool::new(BufPoolConfig::default());
        let f = encode_frame(&pool, &hdr(KIND_WRITE, 9), &[b"abc", b"def"]).unwrap();
        let mut dec = FrameDecoder::new();
        for (i, b) in f.iter().enumerate() {
            if i + 1 < f.len() {
                dec.push(std::slice::from_ref(b));
                assert!(dec.decode_next().unwrap().is_none(), "frame appeared early at byte {i}");
            } else {
                dec.push(std::slice::from_ref(b));
            }
        }
        let out = dec.decode_next().unwrap().expect("frame");
        assert_eq!(out.header.imm, 9);
        assert_eq!(out.payload, b"abcdef");
    }

    #[test]
    fn rejects_bad_kind_and_oversize() {
        let mut raw = vec![0u8; HEADER_LEN];
        encode_header(&mut raw, &hdr(77, 0), 0, 0);
        let mut dec = FrameDecoder::new();
        dec.push(&raw);
        assert_eq!(dec.decode_next().unwrap_err(), StreamError::BadKind(77));

        let mut raw = vec![0u8; HEADER_LEN];
        encode_header(&mut raw, &hdr(KIND_SEND, 0), (MAX_FRAME_PAYLOAD + 1) as u32, 0);
        let mut dec = FrameDecoder::new();
        dec.push(&raw);
        assert!(matches!(dec.decode_next(), Err(StreamError::Oversize(_))));
    }

    #[test]
    fn grows_for_oversized_frame_then_reuses() {
        let pool = BufPool::new(BufPoolConfig::default());
        let big = vec![7u8; 200 << 10]; // larger than the 64 KiB initial buffer
        let f = encode_frame(&pool, &hdr(KIND_READ_RESP, 1), &[&big]).unwrap();
        let mut dec = FrameDecoder::new();
        dec.push(&f);
        let out = dec.decode_next().unwrap().expect("frame");
        assert_eq!(out.payload.len(), big.len());
        assert!(out.payload.iter().all(|&b| b == 7));
    }

    #[test]
    fn encode_rejects_over_limit() {
        let pool = BufPool::new(BufPoolConfig::default());
        let too_big = vec![0u8; MAX_FRAME_PAYLOAD + 1];
        assert!(encode_frame(&pool, &hdr(KIND_SEND, 0), &[&too_big]).is_none());
    }
}
