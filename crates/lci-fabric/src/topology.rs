//! Thread→core topology map for thread-per-core resource placement.
//!
//! The paper's scaling results assume one worker thread per core, with
//! each thread's hot-path resources (packet pool, staging shelves,
//! context slab, stats counters) living on that core so steady-state
//! operation never bounces a shared cache line between cores. This
//! module provides the *logical* core map those structures key off:
//!
//! * [`ncores`] — detected core count: the `LCI_CORES` environment
//!   override wins, then a sysfs parse of
//!   `/sys/devices/system/cpu/online` (Linux), then
//!   `std::thread::available_parallelism`, clamped to at least 1.
//! * [`current_core`] — the calling thread's logical core id, assigned
//!   round-robin over `0..ncores()` the first time a thread asks, or
//!   set explicitly with [`bind_current_thread`].
//!
//! Logical, not physical: the crate has no libc dependency, so OS
//! affinity (`sched_setaffinity`) is delegated to the launcher (taskset
//! / srun / the shm multi-process launcher). When more threads exist
//! than cores — the oversubscribed regime the scale matrix labels
//! honestly — several threads share a logical core and therefore a
//! stripe; they contend on a per-stripe leaf lock but never migrate
//! lines between *different* cores, which is the property the
//! per-core layout exists to protect.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Upper bound on the detected core count; a parse gone wrong must not
/// make every pool allocate thousands of stripes.
pub const MAX_CORES: usize = 1024;

/// Parses a Linux cpulist (`"0-3,8,10-11"`) and returns the number of
/// cpus it names. Returns `None` on empty or malformed input.
pub fn parse_cpu_list(s: &str) -> Option<usize> {
    let mut count = 0usize;
    for part in s.trim().split(',') {
        let part = part.trim();
        if part.is_empty() {
            return None;
        }
        match part.split_once('-') {
            Some((lo, hi)) => {
                let lo: usize = lo.trim().parse().ok()?;
                let hi: usize = hi.trim().parse().ok()?;
                if hi < lo {
                    return None;
                }
                count += hi - lo + 1;
            }
            None => {
                let _: usize = part.parse().ok()?;
                count += 1;
            }
        }
    }
    if count == 0 {
        None
    } else {
        Some(count)
    }
}

fn detect_ncores() -> usize {
    if let Ok(v) = std::env::var("LCI_CORES") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n.min(MAX_CORES);
            }
        }
    }
    if let Ok(list) = std::fs::read_to_string("/sys/devices/system/cpu/online") {
        if let Some(n) = parse_cpu_list(&list) {
            return n.clamp(1, MAX_CORES);
        }
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1).clamp(1, MAX_CORES)
}

/// Number of logical cores the process lays resources out over.
/// Cached after the first call; override with `LCI_CORES`.
pub fn ncores() -> usize {
    static NCORES: OnceLock<usize> = OnceLock::new();
    *NCORES.get_or_init(detect_ncores)
}

/// Round-robin cursor handing fresh threads a home core.
static NEXT_CORE: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// This thread's logical core; `usize::MAX` = not yet assigned.
    static HOME_CORE: Cell<usize> = const { Cell::new(usize::MAX) };
}

/// The calling thread's logical core id.
///
/// Assigned round-robin over `0..ncores()` on first use, so the first
/// `ncores()` threads land on distinct cores — the thread-per-core
/// regime — and later threads share (oversubscription). Stable for the
/// life of the thread unless rebound with [`bind_current_thread`].
#[inline]
pub fn current_core() -> usize {
    HOME_CORE.with(|c| {
        let v = c.get();
        if v != usize::MAX {
            return v;
        }
        let assigned = NEXT_CORE.fetch_add(1, Ordering::Relaxed) % ncores();
        c.set(assigned);
        assigned
    })
}

/// Explicitly binds the calling thread to logical core `core`.
///
/// Used by pinned progress engines (placement puts a `Dedicated`
/// engine's thread on the core of the devices it polls) and by tests
/// that need to emulate cross-core traffic on a small host. Rebinding
/// is allowed; ids at or above [`ncores`] are accepted (stripe lookups
/// reduce modulo their stripe count).
pub fn bind_current_thread(core: usize) {
    HOME_CORE.with(|c| c.set(core));
}

/// Rounds a requested stripe count to the power of two the striped
/// structures index with (`core & mask`), clamped to `1..=MAX_CORES`.
/// `0` means "one stripe per detected core".
pub fn stripe_count(requested: usize) -> usize {
    let n = if requested == 0 { ncores() } else { requested };
    n.clamp(1, MAX_CORES).next_power_of_two()
}

/// A value padded out to (double) cache-line granularity so adjacent
/// stripes never share a line — the whole point of striping.
#[repr(align(128))]
#[derive(Default, Debug)]
pub struct CachePadded<T>(pub T);

/// A per-core striped counter: updates hit the calling core's cell
/// (no cross-core line bouncing); reads fold all cells.
///
/// Cells wrap individually — a decrement on a different core than the
/// matching increment may drive one cell "negative" (wrapped) — but
/// [`sum`](Self::sum) folds with wrapping adds, so the total is exact
/// whenever the true value is non-negative.
#[derive(Debug)]
pub struct StripedU64 {
    cells: Box<[CachePadded<AtomicU64>]>,
    mask: usize,
}

impl StripedU64 {
    /// A counter with `stripes` cells (`0` = one per detected core).
    pub fn new(stripes: usize) -> Self {
        let n = stripe_count(stripes);
        Self { cells: (0..n).map(|_| CachePadded::default()).collect(), mask: n - 1 }
    }

    #[inline]
    fn cell(&self) -> &AtomicU64 {
        &self.cells[current_core() & self.mask].0
    }

    /// Adds `n` to the calling core's cell.
    #[inline]
    pub fn add(&self, n: u64) {
        self.cell().fetch_add(n, Ordering::Relaxed);
    }

    /// Increments the calling core's cell.
    #[inline]
    pub fn bump(&self) {
        self.add(1);
    }

    /// Subtracts `n` (per-cell wrapping; the folded sum stays exact).
    #[inline]
    pub fn sub(&self, n: u64) {
        self.cell().fetch_sub(n, Ordering::Relaxed);
    }

    /// Folds all cells into the counter's current value.
    pub fn sum(&self) -> u64 {
        self.cells.iter().fold(0u64, |acc, c| acc.wrapping_add(c.0.load(Ordering::Relaxed)))
    }

    /// Number of cells.
    pub fn stripes(&self) -> usize {
        self.cells.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpu_list_parsing() {
        assert_eq!(parse_cpu_list("0"), Some(1));
        assert_eq!(parse_cpu_list("0-3"), Some(4));
        assert_eq!(parse_cpu_list("0-3,8"), Some(5));
        assert_eq!(parse_cpu_list("0-1,4-7,9\n"), Some(7));
        assert_eq!(parse_cpu_list(""), None);
        assert_eq!(parse_cpu_list("3-1"), None);
        assert_eq!(parse_cpu_list("a-b"), None);
        assert_eq!(parse_cpu_list("0,,2"), None);
    }

    #[test]
    fn core_ids_are_stable_and_bounded() {
        let a = current_core();
        assert_eq!(a, current_core(), "home core is sticky");
        assert!(a < ncores());
        let handles: Vec<_> =
            (0..4).map(|_| std::thread::spawn(|| (current_core(), current_core()))).collect();
        for h in handles {
            let (x, y) = h.join().unwrap();
            assert_eq!(x, y);
            assert!(x < ncores());
        }
    }

    #[test]
    fn bind_overrides_assignment() {
        std::thread::spawn(|| {
            bind_current_thread(7);
            assert_eq!(current_core(), 7);
            bind_current_thread(2);
            assert_eq!(current_core(), 2);
        })
        .join()
        .unwrap();
    }

    #[test]
    fn stripe_count_rounds_to_pow2() {
        assert_eq!(stripe_count(1), 1);
        assert_eq!(stripe_count(3), 4);
        assert_eq!(stripe_count(8), 8);
        assert_eq!(stripe_count(0), ncores().next_power_of_two());
        assert_eq!(stripe_count(usize::MAX), MAX_CORES);
    }

    #[test]
    fn striped_counter_folds_across_cores() {
        let c = StripedU64::new(4);
        std::thread::scope(|s| {
            for core in 0..8 {
                let c = &c;
                s.spawn(move || {
                    bind_current_thread(core);
                    for _ in 0..100 {
                        c.bump();
                    }
                });
            }
        });
        assert_eq!(c.sum(), 800);
        // Cross-core decrement wraps one cell; the fold stays exact.
        std::thread::scope(|s| {
            let c = &c;
            s.spawn(move || {
                bind_current_thread(3);
                c.sub(800);
            });
        });
        assert_eq!(c.sum(), 0);
    }
}
