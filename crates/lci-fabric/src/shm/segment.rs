//! The shared segment: one mapping holding everything two (or more)
//! processes need to exchange traffic — a header page with the geometry
//! and bootstrap barrier, a peer table (pid, liveness, doorbell futex),
//! an out-of-band allgather area, and the `nranks × nranks` directed
//! channel array.
//!
//! ## Layout
//!
//! ```text
//! [0, 4096)              SegHeader  (magic, geometry, attach/oob barrier)
//! [4096, +64*nranks)     PeerSlot[nranks]
//! [ag_base, +4160*n)     allgather slots: u64 len + 4096 data each
//! [chan_base, ...)       Channel[src*nranks + dst], page-aligned stride
//! ```
//!
//! The creator writes the geometry words and then the magic with a
//! Release store; attachers spin on the magic with Acquire loads before
//! reading anything else. All cross-process blocking goes through the
//! futex words in the header / peer slots (see [`super::os`]).

use super::os::{self, Mapping};
use super::ring::{ChanGeometry, Channel};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::time::{Duration, Instant};

const SHM_MAGIC: u64 = 0x4C43_4953_484D_5631; // "LCISHMV1"
const HEADER_BYTES: usize = 4096;
const PEER_BYTES: usize = 64;
/// Maximum per-rank payload of an out-of-band allgather.
pub const ALLGATHER_MAX: usize = 4096;
const AG_SLOT_BYTES: usize = 64 + ALLGATHER_MAX;

/// Peer has never attached.
pub const PEER_ABSENT: u32 = 0;
/// Peer attached and (as far as we know) alive.
pub const PEER_ATTACHED: u32 = 1;
/// Peer detached cleanly (fabric dropped).
pub const PEER_EXITED: u32 = 2;
/// Peer's process died without detaching.
pub const PEER_DIED: u32 = 3;

/// Header page at offset 0 of the segment.
#[repr(C)]
struct SegHeader {
    magic: AtomicU64,
    nranks: AtomicU64,
    ring_slots: AtomicU64,
    slot_size: AtomicU64,
    spill_cap: AtomicU64,
    /// Ranks that have completed `attach`.
    attach_count: AtomicU64,
    /// Futex word bumped on every attach.
    attach_seq: AtomicU32,
    /// Out-of-band barrier generation (futex word).
    barrier_seq: AtomicU32,
    /// Ranks arrived at the current barrier generation.
    barrier_count: AtomicU32,
}

/// Per-rank slot: identity, liveness, and the cross-process doorbell.
#[repr(C, align(64))]
pub struct PeerSlot {
    pub pid: AtomicU64,
    /// One of `PEER_*`.
    pub state: AtomicU32,
    /// Doorbell futex word: bumped by remote producers after enqueueing
    /// frames for this rank.
    pub futex_seq: AtomicU32,
    /// Number of threads parked (or about to park) on `futex_seq`.
    pub waiters: AtomicU32,
}

const _: () = assert!(std::mem::size_of::<SegHeader>() <= HEADER_BYTES);
const _: () = assert!(std::mem::size_of::<PeerSlot>() <= PEER_BYTES);

/// Segment-level geometry knobs, env-overridable:
/// `LCI_SHM_SLOTS`, `LCI_SHM_SLOT_SIZE`, `LCI_SHM_SPILL`.
pub fn geometry_from_env() -> ChanGeometry {
    let env_u64 = |k: &str, default: u64| {
        std::env::var(k).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
    };
    ChanGeometry {
        ring_slots: env_u64("LCI_SHM_SLOTS", 256).max(1),
        slot_size: (env_u64("LCI_SHM_SLOT_SIZE", 256).max(128) as usize) & !63,
        spill_cap: env_u64("LCI_SHM_SPILL", 2 << 20),
    }
}

/// A created or attached shared segment.
pub struct ShmSegment {
    map: Mapping,
    nranks: usize,
    geo: ChanGeometry,
    ag_base: usize,
    chan_base: usize,
    chan_stride: usize,
    /// Backing file (multi-process mode); unlinked by rank 0 after the
    /// attach barrier, kept here for failure-path cleanup.
    path: Option<PathBuf>,
}

fn align_up(x: usize, a: usize) -> usize {
    (x + a - 1) & !(a - 1)
}

struct Layout {
    ag_base: usize,
    chan_base: usize,
    chan_stride: usize,
    total: usize,
}

fn layout(nranks: usize, geo: ChanGeometry) -> Layout {
    let ag_base = HEADER_BYTES + nranks * PEER_BYTES;
    let chan_base = align_up(ag_base + nranks * AG_SLOT_BYTES, 4096);
    let chan_stride = align_up(geo.channel_bytes(), 4096);
    Layout { ag_base, chan_base, chan_stride, total: chan_base + nranks * nranks * chan_stride }
}

impl ShmSegment {
    /// Creates an anonymous (fork-shared, not named) segment for
    /// in-process use or pre-fork spawning.
    pub fn create_anonymous(nranks: usize, geo: ChanGeometry) -> std::io::Result<ShmSegment> {
        let l = layout(nranks, geo);
        let map = Mapping::anonymous(l.total)?;
        let seg = ShmSegment {
            map,
            nranks,
            geo,
            ag_base: l.ag_base,
            chan_base: l.chan_base,
            chan_stride: l.chan_stride,
            path: None,
        };
        seg.init_header();
        Ok(seg)
    }

    /// Creates a named segment backed by `path` (typically under
    /// `/dev/shm`). The file is fully sized and initialized before this
    /// returns, so children spawned afterwards can attach immediately.
    #[cfg(unix)]
    pub fn create_file(
        path: &Path,
        nranks: usize,
        geo: ChanGeometry,
    ) -> std::io::Result<ShmSegment> {
        let l = layout(nranks, geo);
        let file =
            std::fs::OpenOptions::new().read(true).write(true).create_new(true).open(path)?;
        file.set_len(l.total as u64)?;
        let map = Mapping::file(&file, l.total)?;
        let seg = ShmSegment {
            map,
            nranks,
            geo,
            ag_base: l.ag_base,
            chan_base: l.chan_base,
            chan_stride: l.chan_stride,
            path: Some(path.to_path_buf()),
        };
        seg.init_header();
        Ok(seg)
    }

    /// Attaches to a segment created by [`create_file`], waiting up to
    /// `timeout` for the file to exist and its magic to be published.
    ///
    /// [`create_file`]: ShmSegment::create_file
    #[cfg(unix)]
    pub fn attach_file(path: &Path, timeout: Duration) -> std::io::Result<ShmSegment> {
        let deadline = Instant::now() + timeout;
        let file = loop {
            match std::fs::OpenOptions::new().read(true).write(true).open(path) {
                Ok(f) if f.metadata()?.len() as usize >= HEADER_BYTES => break f,
                Ok(_) | Err(_) if Instant::now() < deadline => {
                    std::thread::sleep(Duration::from_millis(1))
                }
                Ok(_) => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::TimedOut,
                        "shm segment never fully created",
                    ))
                }
                Err(e) => return Err(e),
            }
        };
        // Peek the header page for the geometry, then map the full size.
        let peek = Mapping::file(&file, HEADER_BYTES)?;
        let hdr = unsafe { &*(peek.ptr() as *const SegHeader) };
        while hdr.magic.load(Ordering::Acquire) != SHM_MAGIC {
            if Instant::now() >= deadline {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::TimedOut,
                    "shm segment magic never published",
                ));
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        let nranks = hdr.nranks.load(Ordering::Acquire) as usize;
        let geo = ChanGeometry {
            ring_slots: hdr.ring_slots.load(Ordering::Acquire),
            slot_size: hdr.slot_size.load(Ordering::Acquire) as usize,
            spill_cap: hdr.spill_cap.load(Ordering::Acquire),
        };
        drop(peek);
        let l = layout(nranks, geo);
        let map = Mapping::file(&file, l.total)?;
        Ok(ShmSegment {
            map,
            nranks,
            geo,
            ag_base: l.ag_base,
            chan_base: l.chan_base,
            chan_stride: l.chan_stride,
            path: Some(path.to_path_buf()),
        })
    }

    fn init_header(&self) {
        let h = self.header();
        h.nranks.store(self.nranks as u64, Ordering::Relaxed);
        h.ring_slots.store(self.geo.ring_slots, Ordering::Relaxed);
        h.slot_size.store(self.geo.slot_size as u64, Ordering::Relaxed);
        h.spill_cap.store(self.geo.spill_cap, Ordering::Relaxed);
        h.magic.store(SHM_MAGIC, Ordering::Release);
    }

    fn header(&self) -> &SegHeader {
        // SAFETY: offset 0 of a mapping at least HEADER_BYTES long.
        unsafe { &*(self.map.ptr() as *const SegHeader) }
    }

    /// Number of ranks the segment was sized for.
    pub fn nranks(&self) -> usize {
        self.nranks
    }

    /// Channel geometry.
    pub fn geometry(&self) -> ChanGeometry {
        self.geo
    }

    /// The per-rank peer slot.
    pub fn peer(&self, rank: usize) -> &PeerSlot {
        assert!(rank < self.nranks);
        // SAFETY: in-bounds, 64-aligned slot of the live mapping.
        unsafe { &*(self.map.ptr().add(HEADER_BYTES + rank * PEER_BYTES) as *const PeerSlot) }
    }

    /// The directed channel `src → dst`.
    pub fn channel(&self, src: usize, dst: usize) -> Channel {
        assert!(src < self.nranks && dst < self.nranks);
        let off = self.chan_base + (src * self.nranks + dst) * self.chan_stride;
        // SAFETY: in-bounds, page-aligned, zero-initialized region that
        // lives as long as the mapping.
        unsafe { Channel::attach(self.map.ptr().add(off), self.geo) }
    }

    /// Marks `rank` attached (records its pid) and bumps the attach
    /// barrier.
    pub fn attach(&self, rank: usize) {
        let p = self.peer(rank);
        p.pid.store(os::pid(), Ordering::Release);
        p.state.store(PEER_ATTACHED, Ordering::Release);
        let h = self.header();
        h.attach_count.fetch_add(1, Ordering::AcqRel);
        h.attach_seq.fetch_add(1, Ordering::Release);
        os::futex_wake(&h.attach_seq, u32::MAX);
    }

    /// Blocks until all ranks have attached.
    pub fn attach_barrier(&self, timeout: Duration) -> std::io::Result<()> {
        let h = self.header();
        let deadline = Instant::now() + timeout;
        loop {
            if h.attach_count.load(Ordering::Acquire) >= self.nranks as u64 {
                return Ok(());
            }
            if Instant::now() >= deadline {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::TimedOut,
                    format!(
                        "shm attach barrier: {}/{} ranks after {timeout:?}",
                        h.attach_count.load(Ordering::Acquire),
                        self.nranks
                    ),
                ));
            }
            let seen = h.attach_seq.load(Ordering::Acquire);
            if h.attach_count.load(Ordering::Acquire) >= self.nranks as u64 {
                return Ok(());
            }
            os::futex_wait(&h.attach_seq, seen, Duration::from_millis(50));
        }
    }

    /// Transitions `rank` from `PEER_ATTACHED` to `state` (exited/died).
    /// Doorbells the peer table so barrier waiters re-examine liveness.
    pub fn set_peer_state(&self, rank: usize, state: u32) {
        let p = self.peer(rank);
        let _ = p.state.compare_exchange(PEER_ATTACHED, state, Ordering::AcqRel, Ordering::Acquire);
        let h = self.header();
        h.barrier_seq.fetch_add(0, Ordering::AcqRel); // fence-like touch
        os::futex_wake(&h.barrier_seq, u32::MAX);
        self.ring_doorbell(rank);
    }

    /// First peer that is known dead (marked died, or attached with a
    /// dead pid), if any.
    pub fn dead_peer(&self) -> Option<usize> {
        (0..self.nranks).find(|&r| {
            let p = self.peer(r);
            match p.state.load(Ordering::Acquire) {
                PEER_DIED => true,
                PEER_ATTACHED => !os::process_alive(p.pid.load(Ordering::Acquire)),
                _ => false,
            }
        })
    }

    /// Cross-process out-of-band barrier over all ranks.
    ///
    /// # Panics
    /// Panics if a peer dies while the barrier is incomplete — there is
    /// no way to make progress, matching the blocking contract of the
    /// in-process barrier.
    pub fn barrier(&self) {
        let h = self.header();
        let gen = h.barrier_seq.load(Ordering::Acquire);
        if h.barrier_count.fetch_add(1, Ordering::AcqRel) + 1 == self.nranks as u32 {
            h.barrier_count.store(0, Ordering::Release);
            h.barrier_seq.fetch_add(1, Ordering::Release);
            os::futex_wake(&h.barrier_seq, u32::MAX);
            return;
        }
        let mut checks = 0u32;
        while h.barrier_seq.load(Ordering::Acquire) == gen {
            os::futex_wait(&h.barrier_seq, gen, Duration::from_millis(20));
            checks += 1;
            if checks.is_multiple_of(8) {
                if let Some(r) = self.dead_peer() {
                    panic!("shm oob barrier: peer rank {r} died");
                }
            }
        }
    }

    /// Cross-process allgather: every rank contributes `data`
    /// (≤ [`ALLGATHER_MAX`] bytes); returns all contributions in rank
    /// order. Collective — all ranks must call it.
    pub fn allgather(&self, rank: usize, data: &[u8]) -> Vec<Vec<u8>> {
        assert!(data.len() <= ALLGATHER_MAX, "allgather payload too large");
        let slot = self.map.ptr().wrapping_add(self.ag_base + rank * AG_SLOT_BYTES);
        // SAFETY: in-bounds slot owned by this rank between barriers.
        unsafe {
            (slot as *mut u64).write_unaligned(data.len() as u64);
            std::ptr::copy_nonoverlapping(data.as_ptr(), slot.add(64), data.len());
        }
        self.barrier();
        let out = (0..self.nranks)
            .map(|r| {
                let s = self.map.ptr().wrapping_add(self.ag_base + r * AG_SLOT_BYTES);
                // SAFETY: peers finished writing before the barrier.
                unsafe {
                    let len = (s as *const u64).read_unaligned() as usize;
                    std::slice::from_raw_parts(s.add(64), len.min(ALLGATHER_MAX)).to_vec()
                }
            })
            .collect();
        // Nobody may overwrite a slot until everyone has read.
        self.barrier();
        out
    }

    /// Rings `rank`'s cross-process doorbell: bumps its futex word and
    /// wakes its bridge thread if one is parked. Returns whether a
    /// waiter was (probably) woken.
    pub fn ring_doorbell(&self, rank: usize) -> bool {
        let p = self.peer(rank);
        p.futex_seq.fetch_add(1, Ordering::Release);
        if p.waiters.load(Ordering::Acquire) > 0 {
            os::futex_wake(&p.futex_seq, u32::MAX);
            true
        } else {
            false
        }
    }

    /// Parks on `rank`'s doorbell futex until its sequence moves past
    /// `seen` or `timeout` elapses. Returns the current sequence.
    pub fn doorbell_wait(&self, rank: usize, seen: u32, timeout: Duration) -> u32 {
        let p = self.peer(rank);
        p.waiters.fetch_add(1, Ordering::AcqRel);
        if p.futex_seq.load(Ordering::Acquire) == seen {
            os::futex_wait(&p.futex_seq, seen, timeout);
        }
        p.waiters.fetch_sub(1, Ordering::AcqRel);
        p.futex_seq.load(Ordering::Acquire)
    }

    /// Current doorbell sequence for `rank`.
    pub fn doorbell_seq(&self, rank: usize) -> u32 {
        self.peer(rank).futex_seq.load(Ordering::Acquire)
    }

    /// Removes the backing file (multi-process mode). Safe to call once
    /// every rank has attached: the mapping stays valid until unmapped.
    pub fn unlink(&self) {
        if let Some(p) = &self.path {
            let _ = std::fs::remove_file(p);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shm::ring::{FrameHeader, KIND_SEND};

    fn geo() -> ChanGeometry {
        ChanGeometry { ring_slots: 8, slot_size: 128, spill_cap: 4096 }
    }

    #[test]
    fn anonymous_segment_channels_are_independent() {
        let seg = ShmSegment::create_anonymous(3, geo()).unwrap();
        let h = FrameHeader { kind: KIND_SEND, ..Default::default() };
        seg.channel(0, 1).produce(&h, &[b"to-1"]).unwrap();
        seg.channel(0, 2).produce(&h, &[b"to-2"]).unwrap();
        assert_eq!(seg.channel(0, 1).occupancy(), 1);
        assert_eq!(seg.channel(0, 2).occupancy(), 1);
        assert_eq!(seg.channel(1, 0).occupancy(), 0);
        let c = seg.channel(0, 2);
        let f = c.peek().unwrap();
        assert_eq!(f.payload(), b"to-2");
        c.release(&f);
    }

    #[test]
    fn attach_and_liveness() {
        let seg = ShmSegment::create_anonymous(2, geo()).unwrap();
        assert_eq!(seg.peer(1).state.load(Ordering::Acquire), PEER_ABSENT);
        seg.attach(0);
        seg.attach(1);
        seg.attach_barrier(Duration::from_secs(1)).unwrap();
        assert!(seg.dead_peer().is_none());
        seg.set_peer_state(1, PEER_DIED);
        assert_eq!(seg.dead_peer(), Some(1));
        // Idempotent: a second transition attempt does not regress.
        seg.set_peer_state(1, PEER_EXITED);
        assert_eq!(seg.peer(1).state.load(Ordering::Acquire), PEER_DIED);
    }

    #[test]
    fn doorbell_seq_and_wait() {
        let seg = ShmSegment::create_anonymous(2, geo()).unwrap();
        let s0 = seg.doorbell_seq(1);
        seg.ring_doorbell(1);
        assert_eq!(seg.doorbell_seq(1), s0 + 1);
        // Already-moved sequence: wait returns immediately.
        let cur = seg.doorbell_wait(1, s0, Duration::from_secs(5));
        assert_eq!(cur, s0 + 1);
    }

    #[test]
    fn barrier_and_allgather_across_threads() {
        let seg = std::sync::Arc::new(ShmSegment::create_anonymous(3, geo()).unwrap());
        let handles: Vec<_> = (0..3)
            .map(|r| {
                let seg = seg.clone();
                std::thread::spawn(move || {
                    seg.attach(r);
                    seg.attach_barrier(Duration::from_secs(5)).unwrap();
                    for round in 0..5u8 {
                        let mine = vec![r as u8 + round; (r + 1) * 3];
                        let all = seg.allgather(r, &mine);
                        for (pr, blob) in all.iter().enumerate() {
                            assert_eq!(blob, &vec![pr as u8 + round; (pr + 1) * 3]);
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[cfg(unix)]
    #[test]
    fn file_segment_create_attach_round_trip() {
        let path = std::env::temp_dir().join(format!("lci-shm-test-{}", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let seg = ShmSegment::create_file(&path, 2, geo()).unwrap();
        let att = ShmSegment::attach_file(&path, Duration::from_secs(2)).unwrap();
        assert_eq!(att.nranks(), 2);
        assert_eq!(att.geometry(), geo());
        // Frames written through one mapping are visible via the other.
        let h = FrameHeader { kind: KIND_SEND, imm: 7, ..Default::default() };
        seg.channel(0, 1).produce(&h, &[b"cross"]).unwrap();
        let c = att.channel(0, 1);
        let f = c.peek().unwrap();
        assert_eq!((f.header.imm, f.payload()), (7, &b"cross"[..]));
        c.release(&f);
        assert_eq!(seg.channel(0, 1).occupancy(), 0);
        seg.unlink();
        assert!(!path.exists());
    }
}
