//! The shared-memory wire format: a fixed-capacity SPSC slot ring per
//! directed `(rank, dev) → (rank, dev)` channel plus a per-channel spill
//! region for frames larger than a slot's inline capacity.
//!
//! Everything here operates over raw memory handed in by the caller
//! (a shared segment in production, a plain heap buffer in tests), so
//! the codec and ring protocol are proptestable without any OS setup.
//!
//! ## Frame layout (64-byte header, cache-line aligned slots)
//!
//! ```text
//! off  field          notes
//!  0   kind     u8    KIND_SEND / KIND_WRITE_IMM / KIND_WRITE / ...
//!  1   flags    u8    bit0 = payload lives in the spill region
//!  4   len      u32   payload length in bytes
//!  8   imm      u64   user immediate
//! 16   src_dev  u32   originating device on the source rank
//! 20   dst_dev  u32   target device on the destination rank
//! 24   a        u64   op-specific (rkey)
//! 32   b        u64   op-specific (remote offset)
//! 40   c        u64   op-specific (request id)
//! 48   spill    u64   free-running spill offset (valid iff spilled)
//! 64   payload        inline payload when it fits in the slot
//! ```
//!
//! ## Ring protocol
//!
//! `head`/`tail` are free-running u64 counters (slot = `idx % slots`),
//! the classic Lamport SPSC: the producer publishes a slot with a
//! Release store of `head`, the consumer observes it with an Acquire
//! load, and releases the slot back with a Release store of `tail`.
//! Producer-side and consumer-side serialization (there may be several
//! threads on either end) is the caller's job — the device wraps
//! `produce` in a per-channel spin lock and `peek`/`release` run under
//! the progress engine's try-lock discipline.
//!
//! ## Spill reclamation
//!
//! The spill region is a byte ring with free-running `spill_head` /
//! `spill_tail`. An oversize payload is placed contiguously: if it
//! would straddle the wrap point the producer pads `spill_head` to the
//! boundary first, so `spill` in the frame header always points at
//! contiguous bytes. Spilled frames leave the ring strictly FIFO, so
//! the consumer reclaims by storing `spill_tail = spill + len` — the
//! pad bytes are reclaimed implicitly because the *next* frame's
//! `spill` already sits past them.

use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, Ordering};

/// Frame header length; also the inline-payload offset within a slot.
pub const HEADER_LEN: usize = 64;

/// Eager two-sided message (becomes a `WireMsgKind::Send`).
pub const KIND_SEND: u8 = 1;
/// RDMA write: payload lands in the target's registered memory; with
/// [`FLAG_HAS_IMM`] it also raises a `WriteImm` notification.
pub const KIND_WRITE: u8 = 3;
/// RDMA read request: `a`/`b` name the remote region, `c` the request,
/// `imm` the length to read.
pub const KIND_READ_REQ: u8 = 4;
/// RDMA read response: payload for pending request `c`.
pub const KIND_READ_RESP: u8 = 5;

/// Flag bit: payload is in the spill region, not inline.
pub const FLAG_SPILLED: u8 = 1;
/// Flag bit: a `KIND_WRITE` frame carries a write-with-immediate.
pub const FLAG_HAS_IMM: u8 = 2;

/// Decoded (or to-be-encoded) frame header. `payload_len`, the
/// [`FLAG_SPILLED`] bit, and the spill offset are managed by the ring
/// itself; callers set the remaining flag bits (e.g. [`FLAG_HAS_IMM`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FrameHeader {
    pub kind: u8,
    pub flags: u8,
    pub imm: u64,
    pub src_dev: u32,
    pub dst_dev: u32,
    /// Op-specific word (rkey for Write/Read).
    pub a: u64,
    /// Op-specific word (remote offset for Write/Read).
    pub b: u64,
    /// Op-specific word (request id for Read).
    pub c: u64,
}

/// Why a `produce` could not complete.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProduceError {
    /// All slots are in flight; retryable once the consumer drains.
    RingFull,
    /// The spill region cannot hold the payload right now; retryable.
    SpillFull,
    /// The payload can never fit (larger than half the spill region);
    /// retrying would deadlock, so this is fatal.
    TooLarge,
}

/// Channel geometry. `ring_slots` ≥ 1 and `slot_size` > `HEADER_LEN`;
/// neither needs to be a power of two (indices are free-running).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChanGeometry {
    pub ring_slots: u64,
    pub slot_size: usize,
    pub spill_cap: u64,
}

impl ChanGeometry {
    /// Inline payload capacity of one slot.
    pub fn inline_cap(&self) -> usize {
        self.slot_size - HEADER_LEN
    }

    /// Bytes one directed channel occupies: header + slots + spill.
    pub fn channel_bytes(&self) -> usize {
        CHAN_HDR_LEN + self.ring_slots as usize * self.slot_size + self.spill_cap as usize
    }

    /// Largest payload a single frame can ever carry.
    pub fn max_payload(&self) -> usize {
        (self.spill_cap / 2).max(self.inline_cap() as u64) as usize
    }
}

/// Per-channel control block, first `CHAN_HDR_LEN` bytes of the channel.
#[repr(C, align(128))]
pub struct ChanHdr {
    /// Producer cursor (free-running slot count).
    pub head: AtomicU64,
    /// Consumer cursor (free-running slot count).
    pub tail: AtomicU64,
    /// Producer cursor into the spill byte ring.
    pub spill_head: AtomicU64,
    /// Consumer cursor into the spill byte ring.
    pub spill_tail: AtomicU64,
    /// High-water mark of ring occupancy (slots), for DeviceStats.
    pub occ_hwm: AtomicU64,
}

/// Size reserved for [`ChanHdr`] at the front of a channel.
pub const CHAN_HDR_LEN: usize = 128;

const _: () = assert!(std::mem::size_of::<ChanHdr>() <= CHAN_HDR_LEN);

/// One directed SPSC channel over caller-provided memory.
///
/// Cloneable view: holds raw pointers into memory owned elsewhere (the
/// segment mapping). The caller guarantees the memory outlives every
/// `Channel` and that producers/consumers are serialized per side.
#[derive(Clone, Copy)]
pub struct Channel {
    hdr: *const ChanHdr,
    slots: *mut u8,
    spill: *mut u8,
    geo: ChanGeometry,
}

// SAFETY: the channel is a view over shared memory; the SPSC protocol
// (plus caller-side serialization) coordinates all concurrent access.
unsafe impl Send for Channel {}
unsafe impl Sync for Channel {}

/// A decoded frame still resident in the ring. Payload bytes stay valid
/// until [`Channel::release`]; copy them out first.
pub struct Frame<'a> {
    pub header: FrameHeader,
    pub payload_len: usize,
    payload: *const u8,
    spilled: bool,
    spill_off: u64,
    tail: u64,
    _ring: PhantomData<&'a Channel>,
}

impl Frame<'_> {
    /// Borrow the payload bytes (inline slot bytes or spill bytes).
    pub fn payload(&self) -> &[u8] {
        // SAFETY: `peek` computed a contiguous in-bounds range and the
        // slot is not recycled until `release`.
        unsafe { std::slice::from_raw_parts(self.payload, self.payload_len) }
    }
}

impl Channel {
    /// Attaches a channel view to `base` (a `channel_bytes()`-sized,
    /// 128-byte-aligned region: ChanHdr, then slots, then spill).
    ///
    /// # Safety
    /// `base` must be valid for `geo.channel_bytes()` bytes, outlive the
    /// returned view, and be zero-initialized the first time (the
    /// all-zero `ChanHdr` is the empty channel).
    pub unsafe fn attach(base: *mut u8, geo: ChanGeometry) -> Channel {
        debug_assert!(geo.ring_slots >= 1);
        debug_assert!(geo.slot_size > HEADER_LEN);
        debug_assert_eq!(base as usize % std::mem::align_of::<ChanHdr>(), 0);
        let slots = unsafe { base.add(CHAN_HDR_LEN) };
        let spill = unsafe { slots.add(geo.ring_slots as usize * geo.slot_size) };
        Channel { hdr: base.cast(), slots, spill, geo }
    }

    fn hdr(&self) -> &ChanHdr {
        // SAFETY: guaranteed valid by the `attach` contract.
        unsafe { &*self.hdr }
    }

    /// Channel geometry.
    pub fn geometry(&self) -> ChanGeometry {
        self.geo
    }

    /// Frames currently queued (producer and consumer views may lag).
    pub fn occupancy(&self) -> usize {
        let h = self.hdr().head.load(Ordering::Acquire);
        let t = self.hdr().tail.load(Ordering::Acquire);
        (h - t) as usize
    }

    /// High-water mark of ring occupancy since creation.
    pub fn occupancy_hwm(&self) -> u64 {
        self.hdr().occ_hwm.load(Ordering::Relaxed)
    }

    /// Encodes one frame (header + gathered payload segments) into the
    /// ring. The caller must serialize producers on this channel.
    pub fn produce(&self, h: &FrameHeader, segs: &[&[u8]]) -> Result<(), ProduceError> {
        let hdr = self.hdr();
        let payload_len: usize = segs.iter().map(|s| s.len()).sum();
        let head = hdr.head.load(Ordering::Relaxed);
        let tail = hdr.tail.load(Ordering::Acquire);
        if head - tail >= self.geo.ring_slots {
            return Err(ProduceError::RingFull);
        }
        let slot =
            unsafe { self.slots.add((head % self.geo.ring_slots) as usize * self.geo.slot_size) };

        let (flags, spill_off) = if payload_len <= self.geo.inline_cap() {
            let mut dst = unsafe { slot.add(HEADER_LEN) };
            for seg in segs {
                unsafe {
                    std::ptr::copy_nonoverlapping(seg.as_ptr(), dst, seg.len());
                    dst = dst.add(seg.len());
                }
            }
            (h.flags & !FLAG_SPILLED, 0u64)
        } else {
            let len = payload_len as u64;
            let cap = self.geo.spill_cap;
            if cap == 0 || len > cap / 2 {
                return Err(ProduceError::TooLarge);
            }
            let sh = hdr.spill_head.load(Ordering::Relaxed);
            let st = hdr.spill_tail.load(Ordering::Acquire);
            let pos = sh % cap;
            // Pad to the wrap point if the payload would straddle it, so
            // spilled payloads are always contiguous.
            let off = if pos + len > cap { sh + (cap - pos) } else { sh };
            if off + len - st > cap {
                return Err(ProduceError::SpillFull);
            }
            let mut dst = unsafe { self.spill.add((off % cap) as usize) };
            for seg in segs {
                unsafe {
                    std::ptr::copy_nonoverlapping(seg.as_ptr(), dst, seg.len());
                    dst = dst.add(seg.len());
                }
            }
            hdr.spill_head.store(off + len, Ordering::Release);
            (h.flags | FLAG_SPILLED, off)
        };

        // SAFETY: the slot is ours until the Release store of head.
        unsafe {
            encode_header(
                std::slice::from_raw_parts_mut(slot, HEADER_LEN),
                &FrameHeader { flags, ..*h },
                payload_len as u32,
                spill_off,
            );
        }
        hdr.head.store(head + 1, Ordering::Release);
        let occ = head + 1 - tail;
        hdr.occ_hwm.fetch_max(occ, Ordering::Relaxed);
        Ok(())
    }

    /// Decodes the oldest queued frame without consuming it. The caller
    /// must serialize consumers on this channel and call [`release`]
    /// (after copying the payload out) to free the slot.
    ///
    /// [`release`]: Channel::release
    pub fn peek(&self) -> Option<Frame<'_>> {
        let hdr = self.hdr();
        let tail = hdr.tail.load(Ordering::Relaxed);
        let head = hdr.head.load(Ordering::Acquire);
        if head == tail {
            return None;
        }
        let slot =
            unsafe { self.slots.add((tail % self.geo.ring_slots) as usize * self.geo.slot_size) };
        // SAFETY: slot published by the producer's Release store of head.
        let raw = unsafe { std::slice::from_raw_parts(slot as *const u8, HEADER_LEN) };
        let (header, payload_len, spill_off) = decode_header(raw);
        let spilled = header.flags & FLAG_SPILLED != 0;
        let payload = if spilled {
            unsafe { self.spill.add((spill_off % self.geo.spill_cap) as usize) as *const u8 }
        } else {
            unsafe { slot.add(HEADER_LEN) as *const u8 }
        };
        Some(Frame {
            header,
            payload_len: payload_len as usize,
            payload,
            spilled,
            spill_off,
            tail,
            _ring: PhantomData,
        })
    }

    /// Returns a peeked frame's slot (and spill bytes) to the producer.
    pub fn release(&self, f: &Frame<'_>) {
        let hdr = self.hdr();
        if f.spilled {
            // FIFO among spilled frames: everything before this frame's
            // payload end — including any pad the producer inserted
            // before it — is now reclaimable.
            hdr.spill_tail.store(f.spill_off + f.payload_len as u64, Ordering::Release);
        }
        hdr.tail.store(f.tail + 1, Ordering::Release);
    }
}

/// Encodes a frame header into `buf` (≥ `HEADER_LEN` bytes).
pub fn encode_header(buf: &mut [u8], h: &FrameHeader, payload_len: u32, spill: u64) {
    buf[0] = h.kind;
    buf[1] = h.flags;
    buf[2] = 0;
    buf[3] = 0;
    buf[4..8].copy_from_slice(&payload_len.to_le_bytes());
    buf[8..16].copy_from_slice(&h.imm.to_le_bytes());
    buf[16..20].copy_from_slice(&h.src_dev.to_le_bytes());
    buf[20..24].copy_from_slice(&h.dst_dev.to_le_bytes());
    buf[24..32].copy_from_slice(&h.a.to_le_bytes());
    buf[32..40].copy_from_slice(&h.b.to_le_bytes());
    buf[40..48].copy_from_slice(&h.c.to_le_bytes());
    buf[48..56].copy_from_slice(&spill.to_le_bytes());
    buf[56..64].fill(0);
}

/// Decodes a frame header: `(header, payload_len, spill_off)`.
pub fn decode_header(buf: &[u8]) -> (FrameHeader, u32, u64) {
    let u32_at = |o: usize| u32::from_le_bytes(buf[o..o + 4].try_into().unwrap());
    let u64_at = |o: usize| u64::from_le_bytes(buf[o..o + 8].try_into().unwrap());
    let h = FrameHeader {
        kind: buf[0],
        flags: buf[1],
        imm: u64_at(8),
        src_dev: u32_at(16),
        dst_dev: u32_at(20),
        a: u64_at(24),
        b: u64_at(32),
        c: u64_at(40),
    };
    (h, u32_at(4), u64_at(48))
}

/// Test support: a heap-backed channel. Not part of the transport; kept
/// public (hidden) so integration tests and proptests can exercise the
/// codec without a segment.
#[doc(hidden)]
pub mod test_support {
    use super::*;

    /// A heap-backed channel for tests: owns the memory a [`Channel`]
    /// views.
    pub struct OwnedChannel {
        mem: Box<[u8]>,
        chan: Channel,
    }

    impl OwnedChannel {
        pub fn new(geo: ChanGeometry) -> OwnedChannel {
            // Over-allocate so the ChanHdr can be placed 128-aligned.
            let bytes = geo.channel_bytes() + 128;
            let mut mem = vec![0u8; bytes].into_boxed_slice();
            let base = mem.as_mut_ptr();
            let aligned = unsafe { base.add(base.align_offset(128)) };
            let chan = unsafe { Channel::attach(aligned, geo) };
            OwnedChannel { mem, chan }
        }

        pub fn chan(&self) -> &Channel {
            let _ = &self.mem;
            &self.chan
        }
    }
}

#[cfg(test)]
mod tests {
    use super::test_support::OwnedChannel;
    use super::*;

    fn geo(slots: u64, slot_size: usize, spill: u64) -> ChanGeometry {
        ChanGeometry { ring_slots: slots, slot_size, spill_cap: spill }
    }

    fn hdr(kind: u8, imm: u64) -> FrameHeader {
        FrameHeader { kind, flags: 0, imm, src_dev: 1, dst_dev: 2, a: 3, b: 4, c: 5 }
    }

    fn consume_one(chan: &Channel) -> (FrameHeader, Vec<u8>) {
        let f = chan.peek().expect("frame queued");
        let out = (f.header, f.payload().to_vec());
        chan.release(&f);
        out
    }

    #[test]
    fn header_round_trip() {
        let mut buf = [0u8; HEADER_LEN];
        let h = FrameHeader {
            kind: KIND_READ_RESP,
            flags: FLAG_SPILLED | FLAG_HAS_IMM,
            imm: 0xDEAD_BEEF_1234_5678,
            src_dev: 7,
            dst_dev: 9,
            a: u64::MAX,
            b: 42,
            c: 0x0102_0304_0506_0708,
        };
        encode_header(&mut buf, &h, 12345, 999);
        let (h2, len, spill) = decode_header(&buf);
        assert_eq!(h2, h);
        assert_eq!((len, spill), (12345, 999));
    }

    #[test]
    fn inline_round_trip_and_fifo() {
        let oc = OwnedChannel::new(geo(4, 128, 0));
        let c = oc.chan();
        for i in 0..3u8 {
            let payload = vec![i; 32];
            c.produce(&hdr(KIND_SEND, i as u64), &[&payload]).unwrap();
        }
        assert_eq!(c.occupancy(), 3);
        for i in 0..3u8 {
            let (h, p) = consume_one(c);
            assert_eq!(h.imm, i as u64);
            assert_eq!(p, vec![i; 32]);
        }
        assert_eq!(c.occupancy(), 0);
    }

    #[test]
    fn ring_full_then_wrap() {
        let oc = OwnedChannel::new(geo(2, 128, 0));
        let c = oc.chan();
        c.produce(&hdr(KIND_SEND, 0), &[b"a"]).unwrap();
        c.produce(&hdr(KIND_SEND, 1), &[b"b"]).unwrap();
        assert_eq!(c.produce(&hdr(KIND_SEND, 2), &[b"c"]), Err(ProduceError::RingFull));
        assert_eq!(consume_one(c).1, b"a");
        // Freed slot is reusable: indices wrap around the 2-slot ring.
        c.produce(&hdr(KIND_SEND, 2), &[b"c"]).unwrap();
        assert_eq!(consume_one(c).1, b"b");
        assert_eq!(consume_one(c).1, b"c");
    }

    #[test]
    fn capacity_one_ring() {
        let oc = OwnedChannel::new(geo(1, 96, 0));
        let c = oc.chan();
        for i in 0..10u8 {
            c.produce(&hdr(KIND_SEND, i as u64), &[&[i; 8]]).unwrap();
            assert_eq!(c.produce(&hdr(KIND_SEND, 99), &[b"x"]), Err(ProduceError::RingFull));
            let (h, p) = consume_one(c);
            assert_eq!(h.imm, i as u64);
            assert_eq!(p, vec![i; 8]);
        }
        assert_eq!(c.occupancy_hwm(), 1);
    }

    #[test]
    fn gather_segments_concatenate() {
        let oc = OwnedChannel::new(geo(2, 256, 0));
        let c = oc.chan();
        c.produce(&hdr(KIND_SEND, 0), &[b"ab", b"", b"cde", b"f"]).unwrap();
        assert_eq!(consume_one(c).1, b"abcdef");
    }

    #[test]
    fn spill_round_trip_and_reclaim() {
        let g = geo(8, 96, 800);
        let oc = OwnedChannel::new(g);
        let c = oc.chan();
        let big = (0..300u32).map(|i| i as u8).collect::<Vec<_>>();
        // 300 B > 32 B inline cap → spilled. Two frames use 600 of the
        // 800-byte region; a third would pad to the wrap point (200 B)
        // and need 300 more — 1100 > 800, so it must wait.
        c.produce(&hdr(KIND_SEND, 0), &[&big]).unwrap();
        c.produce(&hdr(KIND_SEND, 1), &[&big]).unwrap();
        assert_eq!(c.produce(&hdr(KIND_SEND, 2), &[&big]), Err(ProduceError::SpillFull));
        assert_eq!(consume_one(c).1, big);
        // Reclaimed: now there is room again, and the third payload
        // wraps (pad inserted at offset 600 → 800, payload at 0).
        c.produce(&hdr(KIND_SEND, 2), &[&big]).unwrap();
        assert_eq!(consume_one(c).1, big);
        assert_eq!(consume_one(c).1, big);
    }

    #[test]
    fn spill_too_large_is_fatal() {
        let oc = OwnedChannel::new(geo(2, 96, 256));
        let c = oc.chan();
        let big = vec![7u8; 129]; // > cap/2
        assert_eq!(c.produce(&hdr(KIND_SEND, 0), &[&big]), Err(ProduceError::TooLarge));
        // And with no spill region at all, anything over inline is fatal.
        let oc2 = OwnedChannel::new(geo(2, 96, 0));
        assert_eq!(
            oc2.chan().produce(&hdr(KIND_SEND, 0), &[&[0u8; 64]]),
            Err(ProduceError::TooLarge)
        );
    }

    #[test]
    fn mixed_inline_and_spilled_interleave() {
        let g = geo(16, 96, 4096);
        let oc = OwnedChannel::new(g);
        let c = oc.chan();
        let mut expect = Vec::new();
        for i in 0..12u8 {
            let len = if i % 3 == 0 { 500 } else { 8 };
            let payload = vec![i; len];
            c.produce(&hdr(KIND_SEND, i as u64), &[&payload]).unwrap();
            expect.push(payload);
        }
        for e in expect {
            assert_eq!(consume_one(c).1, e);
        }
        assert!(c.occupancy_hwm() >= 12);
    }

    #[test]
    fn spsc_across_threads() {
        let oc = std::sync::Arc::new(OwnedChannel::new(geo(4, 128, 2048)));
        let oc2 = oc.clone();
        let n = 5_000u64;
        let producer = std::thread::spawn(move || {
            let mut sent = 0u64;
            while sent < n {
                let len = (sent % 200) as usize; // mixes inline + spill
                let payload = vec![(sent % 251) as u8; len];
                match oc2.chan().produce(&hdr(KIND_SEND, sent), &[&payload]) {
                    Ok(()) => sent += 1,
                    Err(ProduceError::RingFull) | Err(ProduceError::SpillFull) => {
                        std::thread::yield_now()
                    }
                    Err(e) => panic!("{e:?}"),
                }
            }
        });
        let mut seen = 0u64;
        while seen < n {
            match oc.chan().peek() {
                Some(f) => {
                    assert_eq!(f.header.imm, seen);
                    let expect_len = (seen % 200) as usize;
                    assert_eq!(f.payload(), &vec![(seen % 251) as u8; expect_len][..]);
                    oc.chan().release(&f);
                    seen += 1;
                }
                None => std::thread::yield_now(),
            }
        }
        producer.join().unwrap();
    }
}
