//! The shared-memory backend (DESIGN.md §4.9): real inter-process
//! transport behind the same [`NetDevice`](crate::backend::NetDevice)
//! trait as the simulated backends.
//!
//! Traffic travels through one directed SPSC [`ring`] channel per rank
//! pair inside a [`segment`] mapped by every participating process.
//! Frames carry `(src_dev, dst_dev)` so any number of devices per rank
//! share the rank-pair channel; the consuming rank routes each frame to
//! the right device's RX endpoint at drain time, preserving the strict
//! FIFO / RNR discipline of the simulated wire.
//!
//! Two modes share all of this code:
//!
//! * **in-process** — `Fabric::new(n)` lazily creates an anonymous
//!   segment the first time a `shm` device is built, so every existing
//!   test and bench can switch transports with a `DeviceConfig` alone;
//! * **multi-process** — [`crate::bootstrap`] attaches each process to
//!   a named segment; a per-process bridge thread converts the
//!   segment's futex doorbell into local [`Doorbell`] rings so parked
//!   progress engines wake across process boundaries without spinning.

pub mod os;
pub mod ring;
pub mod segment;

pub(crate) mod device;

pub use device::ShmDevice;
pub use segment::{geometry_from_env, ShmSegment, ALLGATHER_MAX};

use crate::sync::SpinLock;
use crate::types::{DevId, RecvBufDesc};
use device::DevShared;
use ring::Channel;
use segment::PEER_EXITED;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, Weak};
use std::time::Duration;

/// Capacity of the pending-read table (outstanding `post_read`s per
/// rank). Preallocated so the read path makes no steady-state
/// allocations.
const READ_TABLE_CAP: usize = 1024;

/// Fabric-level shared-memory state: the segment plus per-local-rank
/// runtime state, created lazily per rank.
pub(crate) struct ShmFabric {
    pub(crate) seg: Arc<ShmSegment>,
    states: Vec<OnceLock<Arc<ShmRankState>>>,
    /// True when ranks live in different processes (bootstrap attach).
    pub(crate) multiproc: bool,
    /// This process's rank; only meaningful when `multiproc`.
    pub(crate) my_rank: usize,
}

impl ShmFabric {
    /// In-process mode: anonymous segment, every rank local.
    pub(crate) fn in_process(nranks: usize) -> std::io::Result<ShmFabric> {
        let seg = Arc::new(ShmSegment::create_anonymous(nranks, geometry_from_env())?);
        for r in 0..nranks {
            seg.attach(r);
        }
        Ok(ShmFabric {
            seg,
            states: (0..nranks).map(|_| OnceLock::new()).collect(),
            multiproc: false,
            my_rank: 0,
        })
    }

    /// Multi-process mode: this process owns exactly `my_rank` of an
    /// externally created-and-attached segment.
    pub(crate) fn attached(seg: Arc<ShmSegment>, my_rank: usize) -> ShmFabric {
        let nranks = seg.nranks();
        ShmFabric {
            seg,
            states: (0..nranks).map(|_| OnceLock::new()).collect(),
            multiproc: true,
            my_rank,
        }
    }

    /// The runtime state for a rank hosted by this process, created on
    /// first use.
    pub(crate) fn state(&self, rank: usize) -> Arc<ShmRankState> {
        debug_assert!(!self.multiproc || rank == self.my_rank);
        self.states[rank]
            .get_or_init(|| ShmRankState::new(self.seg.clone(), rank, self.multiproc))
            .clone()
    }

    /// The state for `rank` if that rank lives in this process and has
    /// been initialized (a device exists). Used by producers to ring
    /// in-process doorbells directly.
    pub(crate) fn local_state(&self, rank: usize) -> Option<Arc<ShmRankState>> {
        if self.multiproc && rank != self.my_rank {
            return None;
        }
        self.states[rank].get().cloned()
    }

    /// First peer known to be dead (multi-process mode), if any.
    pub(crate) fn dead_peer(&self) -> Option<usize> {
        if self.multiproc {
            self.seg.dead_peer()
        } else {
            None
        }
    }
}

impl Drop for ShmFabric {
    fn drop(&mut self) {
        if self.multiproc {
            // Clean detach: quiesced peers see EXITED, not DIED.
            self.seg.set_peer_state(self.my_rank, PEER_EXITED);
        }
    }
}

/// Per-(process, rank) runtime state for the shm transport.
pub(crate) struct ShmRankState {
    pub(crate) rank: usize,
    pub(crate) seg: Arc<ShmSegment>,
    /// Outbound channels, indexed by destination rank (`rank → dst`).
    outbound: Vec<Channel>,
    /// Inbound channels, indexed by source rank (`src → rank`).
    inbound: Vec<Channel>,
    /// Serializes producers per outbound channel (several devices or
    /// threads on this rank share one rank-pair ring).
    prod_locks: Vec<SpinLock<()>>,
    /// Serializes consumers per inbound channel across this rank's
    /// devices; acquired with try-lock only, so progress engines never
    /// block each other here.
    drain_locks: Vec<SpinLock<()>>,
    /// Local shm devices on this rank (append-only registry), used to
    /// ring doorbells and to route `ReadDone` completions.
    devs: crate::sync::MpmcArray<Arc<DevShared>>,
    /// Outstanding `post_read`s awaiting a `READ_RESP` frame.
    reads: SpinLock<ReadTable>,
    /// Times the futex bridge woke and fanned out to local doorbells.
    cross_wakes: AtomicU64,
    bridge_shutdown: Arc<AtomicBool>,
    bridge: Mutex<Option<std::thread::JoinHandle<()>>>,
}

pub(crate) struct PendingRead {
    pub(crate) desc: RecvBufDesc,
    pub(crate) dev: DevId,
}

/// Fixed-capacity slab of pending reads with an intrusive free list:
/// no allocations after construction.
pub(crate) struct ReadTable {
    slots: Vec<Option<PendingRead>>,
    free: Vec<u32>,
}

impl ReadTable {
    pub(crate) fn new() -> ReadTable {
        ReadTable {
            slots: (0..READ_TABLE_CAP).map(|_| None).collect(),
            free: (0..READ_TABLE_CAP as u32).rev().collect(),
        }
    }

    pub(crate) fn alloc(&mut self, pr: PendingRead) -> Option<u32> {
        let id = self.free.pop()?;
        self.slots[id as usize] = Some(pr);
        Some(id)
    }

    pub(crate) fn take(&mut self, id: u32) -> Option<PendingRead> {
        let pr = self.slots.get_mut(id as usize)?.take()?;
        self.free.push(id);
        Some(pr)
    }

    /// Removes and returns every pending read posted by `dev` (teardown
    /// path; not steady state).
    pub(crate) fn drain_dev(&mut self, dev: DevId) -> Vec<PendingRead> {
        let mut out = Vec::new();
        for (id, slot) in self.slots.iter_mut().enumerate() {
            if slot.as_ref().is_some_and(|p| p.dev == dev) {
                out.push(slot.take().expect("checked Some"));
                self.free.push(id as u32);
            }
        }
        out
    }
}

impl ShmRankState {
    fn new(seg: Arc<ShmSegment>, rank: usize, multiproc: bool) -> Arc<ShmRankState> {
        let nranks = seg.nranks();
        let shutdown = Arc::new(AtomicBool::new(false));
        Arc::new_cyclic(|weak: &Weak<ShmRankState>| {
            let bridge = if multiproc {
                Some(spawn_bridge(seg.clone(), rank, shutdown.clone(), weak.clone()))
            } else {
                None
            };
            ShmRankState {
                rank,
                outbound: (0..nranks).map(|d| seg.channel(rank, d)).collect(),
                inbound: (0..nranks).map(|s| seg.channel(s, rank)).collect(),
                prod_locks: (0..nranks).map(|_| SpinLock::new(())).collect(),
                drain_locks: (0..nranks).map(|_| SpinLock::new(())).collect(),
                devs: crate::sync::MpmcArray::with_capacity(4),
                reads: SpinLock::new(ReadTable::new()),
                cross_wakes: AtomicU64::new(0),
                bridge_shutdown: shutdown,
                bridge: Mutex::new(bridge),
                seg,
            }
        })
    }

    pub(crate) fn register_dev(&self, dev: Arc<DevShared>) {
        self.devs.push(dev);
    }

    pub(crate) fn outbound(&self, dst: usize) -> &Channel {
        &self.outbound[dst]
    }

    pub(crate) fn inbound(&self, src: usize) -> &Channel {
        &self.inbound[src]
    }

    pub(crate) fn prod_lock(&self, dst: usize) -> &SpinLock<()> {
        &self.prod_locks[dst]
    }

    pub(crate) fn drain_lock(&self, src: usize) -> &SpinLock<()> {
        &self.drain_locks[src]
    }

    pub(crate) fn reads(&self) -> &SpinLock<ReadTable> {
        &self.reads
    }

    pub(crate) fn dev_by_id(&self, dev: DevId) -> Option<Arc<DevShared>> {
        (0..self.devs.len()).filter_map(|i| self.devs.read(i)).find(|d| d.dev_id() == dev)
    }

    /// Rings every local shm device doorbell on this rank.
    pub(crate) fn ring_all_bells(&self) {
        for i in 0..self.devs.len() {
            if let Some(d) = self.devs.read(i) {
                d.bell().ring();
            }
        }
    }

    /// Total frames queued toward this rank across all inbound channels.
    pub(crate) fn inbound_occupancy(&self) -> usize {
        self.inbound.iter().map(|c| c.occupancy()).sum()
    }

    /// Highest ring-occupancy high-water mark over every channel that
    /// touches this rank (inbound and outbound).
    pub(crate) fn ring_occ_hwm(&self) -> u64 {
        self.inbound
            .iter()
            .chain(self.outbound.iter())
            .map(|c| c.occupancy_hwm())
            .max()
            .unwrap_or(0)
    }

    pub(crate) fn cross_proc_wakes(&self) -> u64 {
        self.cross_wakes.load(Ordering::Relaxed)
    }
}

impl Drop for ShmRankState {
    fn drop(&mut self) {
        self.bridge_shutdown.store(true, Ordering::Release);
        if let Some(h) = self.bridge.lock().expect("bridge handle poisoned").take() {
            // Unpark the bridge so it observes the shutdown flag.
            self.seg.ring_doorbell(self.rank);
            let _ = h.join();
        }
    }
}

/// The cross-process doorbell bridge: parks on this rank's futex word
/// in the segment and fans each wake out to the local [`Doorbell`]s of
/// every shm device on the rank — the piece that lets a `Dedicated`
/// progress engine sleep while a *remote process* produces frames.
///
/// [`Doorbell`]: crate::sync::Doorbell
fn spawn_bridge(
    seg: Arc<ShmSegment>,
    rank: usize,
    shutdown: Arc<AtomicBool>,
    state: Weak<ShmRankState>,
) -> std::thread::JoinHandle<()> {
    std::thread::Builder::new()
        .name(format!("lci-shm-bridge{rank}"))
        .spawn(move || {
            let mut seen = seg.doorbell_seq(rank);
            loop {
                if shutdown.load(Ordering::Acquire) {
                    break;
                }
                let cur = seg.doorbell_wait(rank, seen, Duration::from_millis(100));
                if cur == seen {
                    continue;
                }
                seen = cur;
                let Some(st) = state.upgrade() else { break };
                st.cross_wakes.fetch_add(1, Ordering::Relaxed);
                st.ring_all_bells();
            }
        })
        .expect("failed to spawn shm doorbell bridge")
}
