//! The shm `NetDevice`: same lock structure as the ibv-like backend
//! (per-QP posting locks, lock-free CQE staging, SRQ + CQ spinlocks,
//! trylock wrapper discipline), but the wire is a real shared-memory
//! channel other *processes* can produce into.
//!
//! Posting encodes a frame into the outbound rank-pair channel under
//! the QP lock (which doubles as the ring's single-producer guarantee,
//! together with the rank-level producer lock shared by sibling
//! devices). Polling first **drains** inbound channels — routing each
//! frame by `dst_dev` into the right local device's RX endpoint or
//! applying it to registered memory — then consumes the RX endpoint
//! against pre-posted receives exactly like the simulated backends, so
//! the desc-first FIFO/RNR discipline is preserved unchanged.

use super::ring::{
    FrameHeader, ProduceError, FLAG_HAS_IMM, KIND_READ_REQ, KIND_READ_RESP, KIND_SEND, KIND_WRITE,
};
use super::segment::{PEER_ABSENT, PEER_ATTACHED};
use super::{PendingRead, ShmFabric, ShmRankState};
use crate::backend::{deliver_into, DeviceConfig, NetDevice, SendDesc, TdStrategy, TransportStats};
use crate::buf_pool::{BufPool, BufPoolStats};
use crate::fabric::{Fabric, RxEndpoint};
use crate::mem::{MemoryRegion, Rkey};
use crate::reg_cache::{RegCache, RegCacheStats};
use crate::sync::{Doorbell, LockDiscipline, SpinLock};
use crate::types::{
    Cqe, CqeKind, DevId, NetError, NetResult, Rank, RecvBufDesc, RetryReason, WireMsg, WireMsgKind,
    WirePayload,
};
use crossbeam::queue::ArrayQueue;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Bookkeeping behind a QP lock, as in the ibv backend.
#[derive(Default)]
struct QpState {
    posted: u64,
}

/// The completion-side of a device, shared with the rank state so the
/// channel drain (which may run on a *sibling* device's poll) can stage
/// `ReadDone` CQEs and ring the doorbell of the posting device.
pub(crate) struct DevShared {
    dev_id: DevId,
    cq_staging: ArrayQueue<Cqe>,
    cq: SpinLock<VecDeque<Cqe>>,
    bell: Arc<Doorbell>,
}

impl DevShared {
    pub(crate) fn dev_id(&self) -> DevId {
        self.dev_id
    }

    pub(crate) fn bell(&self) -> &Arc<Doorbell> {
        &self.bell
    }

    /// Same overflow contract as the ibv backend's `stage_cqe`: staging
    /// ring first, polled CQ as spillover, never dropped; ring the bell
    /// either way.
    pub(crate) fn stage_cqe(&self, cqe: Cqe) {
        if let Err(cqe) = self.cq_staging.push(cqe) {
            self.cq.lock().push_back(cqe);
        }
        self.bell.ring();
    }
}

/// Outcome of routing one inbound frame.
enum Routed {
    /// Frame fully applied; release its slot.
    Done,
    /// Frame cannot be applied yet (RX full, device absent, response
    /// ring full): leave it in place — strict FIFO, like RNR.
    Parked,
}

/// The shared-memory device.
pub struct ShmDevice {
    fabric: Arc<Fabric>,
    shm: Arc<ShmFabric>,
    state: Arc<ShmRankState>,
    rank: Rank,
    dev_id: DevId,
    cfg: DeviceConfig,
    rx: Arc<RxEndpoint>,
    qps: Vec<Arc<SpinLock<QpState>>>,
    qp_discipline: LockDiscipline,
    shared: Arc<DevShared>,
    srq: SpinLock<VecDeque<RecvBufDesc>>,
    reg_cache: RegCache,
    buf_pool: BufPool,
    posted_recvs: AtomicUsize,
}

impl ShmDevice {
    /// Creates the device. Called by
    /// [`NetContext::create_device`](crate::backend::NetContext::create_device).
    pub(crate) fn new(
        fabric: Arc<Fabric>,
        rank: Rank,
        dev_id: DevId,
        rx: Arc<RxEndpoint>,
        bell: Arc<Doorbell>,
        cfg: DeviceConfig,
    ) -> Self {
        let shm = fabric.shm_fabric().clone();
        let state = shm.state(rank);
        let nranks = fabric.nranks();
        let (qps, qp_discipline) = match cfg.td_strategy {
            TdStrategy::PerQp => (
                (0..nranks).map(|_| Arc::new(SpinLock::new(QpState::default()))).collect(),
                cfg.discipline,
            ),
            TdStrategy::AllQp => {
                let shared = Arc::new(SpinLock::new(QpState::default()));
                ((0..nranks).map(|_| shared.clone()).collect(), cfg.discipline)
            }
            TdStrategy::None => {
                let shared = Arc::new(SpinLock::new(QpState::default()));
                ((0..nranks).map(|_| shared.clone()).collect(), LockDiscipline::Blocking)
            }
        };
        let shared = Arc::new(DevShared {
            dev_id,
            cq_staging: ArrayQueue::new((cfg.rx_capacity * 2).max(256)),
            cq: SpinLock::new(VecDeque::new()),
            bell,
        });
        state.register_dev(shared.clone());
        Self {
            fabric,
            shm,
            state,
            rank,
            dev_id,
            cfg,
            rx,
            qps,
            qp_discipline,
            shared,
            srq: SpinLock::new(VecDeque::new()),
            reg_cache: RegCache::new(cfg.reg_cache),
            buf_pool: BufPool::new(cfg.buf_pool),
            posted_recvs: AtomicUsize::new(0),
        }
    }

    fn map_produce(e: ProduceError) -> NetError {
        match e {
            ProduceError::RingFull | ProduceError::SpillFull => {
                NetError::Retry(RetryReason::RxFull)
            }
            ProduceError::TooLarge => {
                NetError::fatal("payload exceeds the shm frame limit (spill region / 2)")
            }
        }
    }

    /// Peer-readiness check with the same surface as the sims: absent
    /// peer → `Retry(PeerNotReady)`. In multi-process mode the remote
    /// device table is unknowable, so liveness comes from the segment's
    /// peer table; a cleanly-exited or dead peer is a fatal target.
    fn ready(&self, target: Rank, target_dev: DevId) -> NetResult<()> {
        if self.shm.multiproc && target != self.rank {
            if target >= self.fabric.nranks() {
                return Err(NetError::fatal(format!("target rank {target} out of range")));
            }
            match self.shm.seg.peer(target).state.load(Ordering::Acquire) {
                PEER_ATTACHED => Ok(()),
                PEER_ABSENT => Err(NetError::Retry(RetryReason::PeerNotReady)),
                _ => Err(NetError::fatal(format!("shm peer rank {target} has exited"))),
            }
        } else {
            self.fabric.endpoint(target, target_dev).map(|_| ())
        }
    }

    /// Acquires the QP lock for `target` per the effective discipline.
    #[inline]
    fn lock_qp(&self, target: Rank) -> NetResult<crate::sync::SpinGuard<'_, QpState>> {
        let lock = self
            .qps
            .get(target)
            .ok_or_else(|| NetError::fatal(format!("target rank {target} out of range")))?;
        self.qp_discipline.acquire(lock).ok_or(NetError::Retry(RetryReason::LockBusy))
    }

    /// Acquires the rank-level producer lock for the outbound channel.
    #[inline]
    fn lock_prod(&self, target: Rank) -> NetResult<crate::sync::SpinGuard<'_, ()>> {
        self.qp_discipline
            .acquire(self.state.prod_lock(target))
            .ok_or(NetError::Retry(RetryReason::LockBusy))
    }

    /// Wakes the consuming rank: in-process (or self) by ringing its
    /// device doorbells directly, cross-process via the segment futex
    /// (the peer's bridge thread fans it out).
    fn notify(&self, target: Rank) {
        if let Some(st) = self.shm.local_state(target) {
            st.ring_all_bells();
        } else {
            self.shm.seg.ring_doorbell(target);
        }
    }

    /// Routes every inbound channel's queued frames, bounded per
    /// channel by `budget`. Channels busy under a sibling device's
    /// drain are skipped (try-lock), keeping pollers contention-free.
    fn drain_channels(&self, budget: usize) -> NetResult<()> {
        for src in 0..self.fabric.nranks() {
            let Some(_guard) = self.state.drain_lock(src).try_lock() else { continue };
            let chan = self.state.inbound(src);
            let mut done = 0;
            while done < budget {
                let Some(frame) = chan.peek() else { break };
                match self.route_frame(src, &frame)? {
                    Routed::Done => {
                        chan.release(&frame);
                        done += 1;
                    }
                    Routed::Parked => break,
                }
            }
        }
        Ok(())
    }

    /// Applies one frame on the consuming side. Rkeys are validated
    /// here, in the process that owns the registration table — the
    /// producer cannot see it across a process boundary.
    fn route_frame(&self, src: Rank, frame: &super::ring::Frame<'_>) -> NetResult<Routed> {
        let h = &frame.header;
        match h.kind {
            KIND_SEND => {
                let ep = match self.fabric.endpoint(self.rank, h.dst_dev as DevId) {
                    Ok(ep) => ep,
                    // Target device not created yet: park, strict FIFO.
                    Err(NetError::Retry(_)) => return Ok(Routed::Parked),
                    Err(e) => return Err(e),
                };
                let msg = WireMsg {
                    src_rank: src,
                    src_dev: h.src_dev as DevId,
                    imm: h.imm,
                    kind: WireMsgKind::Send,
                    payload: self.buf_pool.stage(frame.payload()),
                };
                match ep.push(msg) {
                    Ok(()) => Ok(Routed::Done),
                    Err(NetError::Retry(_)) => Ok(Routed::Parked),
                    // Endpoint closed (device torn down): drop the
                    // frame, as teardown drops parked wire messages.
                    Err(NetError::Fatal(_)) => Ok(Routed::Done),
                }
            }
            KIND_WRITE => {
                let len = frame.payload_len;
                let base = self.fabric.mem().validate(Rkey(h.a as u32), h.b as usize, len)?;
                // SAFETY: `validate` bounds-checked against a live local
                // registration; frame payload is contiguous ring bytes.
                unsafe {
                    std::ptr::copy_nonoverlapping(frame.payload().as_ptr(), base as *mut u8, len);
                }
                if h.flags & FLAG_HAS_IMM != 0 {
                    let ep = match self.fabric.endpoint(self.rank, h.dst_dev as DevId) {
                        Ok(ep) => ep,
                        // The copy above is idempotent: park and redo.
                        Err(NetError::Retry(_)) => return Ok(Routed::Parked),
                        Err(e) => return Err(e),
                    };
                    let msg = WireMsg {
                        src_rank: src,
                        src_dev: h.src_dev as DevId,
                        imm: h.imm,
                        kind: WireMsgKind::WriteImm,
                        payload: WirePayload::None,
                    };
                    match ep.push(msg) {
                        Ok(()) => {}
                        Err(NetError::Retry(_)) => return Ok(Routed::Parked),
                        Err(NetError::Fatal(_)) => {}
                    }
                }
                Ok(Routed::Done)
            }
            KIND_READ_REQ => {
                let len = h.imm as usize;
                let base = self.fabric.mem().validate(Rkey(h.a as u32), h.b as usize, len)?;
                // Respond on our outbound channel to the requester; the
                // producer lock is shared with local posters.
                let Some(_pg) = self.state.prod_lock(src).try_lock() else {
                    return Ok(Routed::Parked);
                };
                let resp = FrameHeader {
                    kind: KIND_READ_RESP,
                    flags: 0,
                    imm: 0,
                    src_dev: self.dev_id as u32,
                    dst_dev: h.src_dev,
                    a: 0,
                    b: 0,
                    c: h.c,
                };
                // SAFETY: validated registered bytes, alive for the
                // duration of the registration.
                let payload = unsafe { std::slice::from_raw_parts(base as *const u8, len) };
                match self.state.outbound(src).produce(&resp, &[payload]) {
                    Ok(()) => {
                        self.notify(src);
                        Ok(Routed::Done)
                    }
                    Err(ProduceError::TooLarge) => Err(Self::map_produce(ProduceError::TooLarge)),
                    Err(_) => Ok(Routed::Parked),
                }
            }
            KIND_READ_RESP => {
                let pending = self.state.reads().lock().take(h.c as u32);
                let Some(PendingRead { desc, dev }) = pending else {
                    return Err(NetError::fatal(format!("unknown shm read response id {}", h.c)));
                };
                let n = frame.payload_len.min(desc.len);
                // SAFETY: the descriptor contract keeps `ptr..len` valid
                // until the ReadDone completion we are about to stage.
                unsafe {
                    std::ptr::copy_nonoverlapping(frame.payload().as_ptr(), desc.ptr, n);
                }
                if let Some(d) = self.state.dev_by_id(dev) {
                    let mut cqe = Cqe::local(CqeKind::ReadDone, desc.ctx);
                    cqe.len = n;
                    d.stage_cqe(cqe);
                }
                Ok(Routed::Done)
            }
            k => Err(NetError::fatal(format!("unknown shm frame kind {k}"))),
        }
    }

    /// Identical to the ibv backend: desc-first so the RX ring stays
    /// strictly FIFO under RNR.
    fn deliver_inbound(&self, cq: &mut VecDeque<Cqe>, budget: usize) -> NetResult<()> {
        for _ in 0..budget {
            let desc = {
                let Some(mut srq) = self.cfg.discipline.acquire(&self.srq) else { break };
                match srq.pop_front() {
                    Some(d) => d,
                    None => break,
                }
            };
            let Some(msg) = self.rx.pop() else {
                if let Some(mut srq) = self.cfg.discipline.acquire(&self.srq) {
                    srq.push_front(desc);
                } else {
                    self.srq.lock().push_back(desc);
                }
                break;
            };
            self.posted_recvs.fetch_sub(1, Ordering::AcqRel);
            let cqe = deliver_into(&msg, &desc)?;
            cq.push_back(cqe);
        }
        Ok(())
    }
}

impl NetDevice for ShmDevice {
    fn rank(&self) -> Rank {
        self.rank
    }

    fn dev_id(&self) -> DevId {
        self.dev_id
    }

    fn config(&self) -> &DeviceConfig {
        &self.cfg
    }

    fn post_send(
        &self,
        target: Rank,
        target_dev: DevId,
        data: &[u8],
        imm: u64,
        ctx: u64,
    ) -> NetResult<()> {
        self.ready(target, target_dev)?;
        if self.shared.cq_staging.is_full() {
            return Err(NetError::Retry(RetryReason::QueueFull));
        }
        let mut qp = self.lock_qp(target)?;
        let prod = self.lock_prod(target)?;
        let h = FrameHeader {
            kind: KIND_SEND,
            flags: 0,
            imm,
            src_dev: self.dev_id as u32,
            dst_dev: target_dev as u32,
            a: 0,
            b: 0,
            c: 0,
        };
        self.state.outbound(target).produce(&h, &[data]).map_err(Self::map_produce)?;
        qp.posted += 1;
        drop(prod);
        drop(qp);
        self.notify(target);
        self.shared.stage_cqe(Cqe::local(CqeKind::SendDone, ctx));
        Ok(())
    }

    fn post_send_batch(
        &self,
        target: Rank,
        target_dev: DevId,
        msgs: &[SendDesc<'_>],
    ) -> NetResult<usize> {
        self.ready(target, target_dev)?;
        if self.shared.cq_staging.is_full() {
            return Err(NetError::Retry(RetryReason::QueueFull));
        }
        // One QP + producer lock acquisition covers the whole batch.
        let mut qp = self.lock_qp(target)?;
        let prod = self.lock_prod(target)?;
        let chan = self.state.outbound(target);
        let mut posted = 0;
        for m in msgs {
            let h = FrameHeader {
                kind: KIND_SEND,
                flags: 0,
                imm: m.imm,
                src_dev: self.dev_id as u32,
                dst_dev: target_dev as u32,
                a: 0,
                b: 0,
                c: 0,
            };
            match chan.produce(&h, &[m.data]) {
                Ok(()) => posted += 1,
                Err(ProduceError::TooLarge) => {
                    return Err(Self::map_produce(ProduceError::TooLarge))
                }
                Err(e) if posted == 0 => return Err(Self::map_produce(e)),
                Err(_) => break, // ring full mid-batch: partial progress
            }
        }
        qp.posted += posted as u64;
        drop(prod);
        drop(qp);
        self.notify(target);
        for m in &msgs[..posted] {
            self.shared.stage_cqe(Cqe::local(CqeKind::SendDone, m.ctx));
        }
        Ok(posted)
    }

    fn post_recv(&self, desc: RecvBufDesc) -> NetResult<()> {
        let mut srq =
            self.cfg.discipline.acquire(&self.srq).ok_or(NetError::Retry(RetryReason::LockBusy))?;
        srq.push_back(desc);
        self.posted_recvs.fetch_add(1, Ordering::AcqRel);
        drop(srq);
        if self.rx.occupancy() > 0 || self.state.inbound_occupancy() > 0 {
            self.shared.bell.ring();
        }
        Ok(())
    }

    fn post_recv_batch(&self, descs: &[RecvBufDesc]) -> NetResult<usize> {
        let mut srq =
            self.cfg.discipline.acquire(&self.srq).ok_or(NetError::Retry(RetryReason::LockBusy))?;
        srq.extend(descs.iter().copied());
        self.posted_recvs.fetch_add(descs.len(), Ordering::AcqRel);
        drop(srq);
        if !descs.is_empty() && (self.rx.occupancy() > 0 || self.state.inbound_occupancy() > 0) {
            self.shared.bell.ring();
        }
        Ok(descs.len())
    }

    fn poll_cq(&self, out: &mut Vec<Cqe>, max: usize) -> NetResult<usize> {
        let budget = max.max(self.cfg.cq_drain_batch);
        // Drain the shared channels *before* taking our CQ lock: the
        // router may stage CQEs (ReadDone) onto this very device, and
        // `stage_cqe`'s overflow path locks the polled CQ.
        self.drain_channels(budget)?;
        let mut cq = self
            .cfg
            .discipline
            .acquire(&self.shared.cq)
            .ok_or(NetError::Retry(RetryReason::LockBusy))?;
        while let Some(cqe) = self.shared.cq_staging.pop() {
            cq.push_back(cqe);
        }
        self.deliver_inbound(&mut cq, budget)?;
        let n = max.min(cq.len());
        out.extend(cq.drain(..n));
        Ok(n)
    }

    fn post_write(
        &self,
        target: Rank,
        target_dev: DevId,
        data: &[u8],
        rkey: Rkey,
        offset: usize,
        imm: Option<u64>,
        ctx: u64,
    ) -> NetResult<()> {
        self.ready(target, target_dev)?;
        if !self.shm.multiproc {
            // In-process the registration table is shared: validate at
            // post time, same fatal surface as the sims. Cross-process
            // the rkey belongs to the target's table; the drain there
            // validates.
            self.fabric.mem().validate(rkey, offset, data.len())?;
        }
        let mut qp = self.lock_qp(target)?;
        let prod = self.lock_prod(target)?;
        let h = FrameHeader {
            kind: KIND_WRITE,
            flags: if imm.is_some() { FLAG_HAS_IMM } else { 0 },
            imm: imm.unwrap_or(0),
            src_dev: self.dev_id as u32,
            dst_dev: target_dev as u32,
            a: rkey.0 as u64,
            b: offset as u64,
            c: 0,
        };
        self.state.outbound(target).produce(&h, &[data]).map_err(Self::map_produce)?;
        qp.posted += 1;
        drop(prod);
        drop(qp);
        self.notify(target);
        self.shared.stage_cqe(Cqe::local(CqeKind::WriteDone, ctx));
        Ok(())
    }

    fn post_read(
        &self,
        target: Rank,
        local: RecvBufDesc,
        rkey: Rkey,
        offset: usize,
    ) -> NetResult<()> {
        self.ready(target, self.dev_id)?;
        if !self.shm.multiproc {
            self.fabric.mem().validate(rkey, offset, local.len)?;
        }
        let len = local.len;
        let req_id = self
            .state
            .reads()
            .lock()
            .alloc(PendingRead { desc: local, dev: self.dev_id })
            .ok_or(NetError::Retry(RetryReason::QueueFull))?;
        let res = (|| {
            let mut qp = self.lock_qp(target)?;
            let prod = self.lock_prod(target)?;
            let h = FrameHeader {
                kind: KIND_READ_REQ,
                flags: 0,
                imm: len as u64,
                src_dev: self.dev_id as u32,
                dst_dev: 0,
                a: rkey.0 as u64,
                b: offset as u64,
                c: req_id as u64,
            };
            self.state.outbound(target).produce(&h, &[]).map_err(Self::map_produce)?;
            qp.posted += 1;
            drop(prod);
            drop(qp);
            Ok(())
        })();
        match res {
            Ok(()) => {
                self.notify(target);
                Ok(())
            }
            Err(e) => {
                // Back the pending slot out; the descriptor was never
                // exposed to a peer.
                self.state.reads().lock().take(req_id);
                Err(e)
            }
        }
    }

    fn register(&self, ptr: *const u8, len: usize) -> NetResult<MemoryRegion> {
        Ok(self.reg_cache.register(self.fabric.mem(), self.rank, ptr, len))
    }

    fn deregister(&self, mr: &MemoryRegion) -> NetResult<()> {
        self.reg_cache.release(self.fabric.mem(), mr);
        Ok(())
    }

    fn reg_cache_stats(&self) -> RegCacheStats {
        self.reg_cache.stats()
    }

    fn buf_pool(&self) -> Option<BufPool> {
        Some(self.buf_pool.clone())
    }

    fn buf_pool_stats(&self) -> BufPoolStats {
        self.buf_pool.stats()
    }

    fn posted_recvs(&self) -> usize {
        self.posted_recvs.load(Ordering::Acquire)
    }

    fn doorbell(&self) -> Option<Arc<Doorbell>> {
        Some(self.shared.bell.clone())
    }

    fn inbound_pending(&self) -> usize {
        // Undrained channel frames count too: a parked progress engine
        // must not sleep while frames wait in the shared rings.
        self.rx.occupancy() + self.state.inbound_occupancy()
    }

    fn transport_stats(&self) -> TransportStats {
        TransportStats {
            shm_ring_hwm: self.state.ring_occ_hwm(),
            doorbell_cross_proc_wakes: self.state.cross_proc_wakes(),
        }
    }

    fn teardown(&self) -> (Vec<Cqe>, Vec<RecvBufDesc>) {
        self.rx.close();
        let mut cqes = Vec::new();
        while let Some(c) = self.shared.cq_staging.pop() {
            cqes.push(c);
        }
        cqes.extend(self.shared.cq.lock().drain(..));
        let mut descs: Vec<RecvBufDesc> = self.srq.lock().drain(..).collect();
        // Reads this device posted that will never complete hand their
        // landing buffers back too.
        descs.extend(self.state.reads().lock().drain_dev(self.dev_id).into_iter().map(|p| p.desc));
        self.posted_recvs.store(0, Ordering::Release);
        (cqes, descs)
    }
}
