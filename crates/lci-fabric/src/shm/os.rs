//! Thin OS layer for the shared-memory transport: shared mappings,
//! futex wait/wake, and process-liveness probes.
//!
//! No external crates: the symbols are declared directly against the C
//! runtime the Rust standard library already links. Everything
//! cross-process (file-backed mappings, futexes) is Linux-gated; other
//! Unixes fall back to process-private mappings and timed polling, which
//! keeps the in-process `shm` mode (and the whole crate) compiling and
//! testable everywhere while multi-process mode remains Linux-only.

use std::sync::atomic::AtomicU32;
use std::time::Duration;

/// A shared-memory mapping (or, on the fallback path, a process-private
/// aligned allocation). Bytes are zero-initialized.
pub struct Mapping {
    ptr: *mut u8,
    len: usize,
    kind: MappingKind,
}

enum MappingKind {
    #[cfg(unix)]
    Mmap,
    Heap(std::alloc::Layout),
}

// SAFETY: the mapping is plain memory; concurrent access is coordinated
// by the transport's atomics, as for any shared allocation.
unsafe impl Send for Mapping {}
unsafe impl Sync for Mapping {}

impl Mapping {
    /// Base address.
    pub fn ptr(&self) -> *mut u8 {
        self.ptr
    }

    /// Mapping length in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the mapping is empty (never true for live mappings).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Maps `len` bytes of anonymous memory shared with child processes
    /// on Unix; private aligned heap memory elsewhere (single-process
    /// use only).
    pub fn anonymous(len: usize) -> std::io::Result<Mapping> {
        #[cfg(unix)]
        {
            let ptr = unsafe {
                ffi::mmap(
                    std::ptr::null_mut(),
                    len,
                    ffi::PROT_READ | ffi::PROT_WRITE,
                    ffi::MAP_SHARED | ffi::MAP_ANONYMOUS,
                    -1,
                    0,
                )
            };
            if ptr == ffi::MAP_FAILED {
                return Err(std::io::Error::last_os_error());
            }
            Ok(Mapping { ptr: ptr.cast(), len, kind: MappingKind::Mmap })
        }
        #[cfg(not(unix))]
        {
            Self::heap(len)
        }
    }

    /// Maps `len` bytes of `file` (which must already be `len` bytes
    /// long) shared across processes. Unix only.
    #[cfg(unix)]
    pub fn file(file: &std::fs::File, len: usize) -> std::io::Result<Mapping> {
        use std::os::unix::io::AsRawFd;
        let ptr = unsafe {
            ffi::mmap(
                std::ptr::null_mut(),
                len,
                ffi::PROT_READ | ffi::PROT_WRITE,
                ffi::MAP_SHARED,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr == ffi::MAP_FAILED {
            return Err(std::io::Error::last_os_error());
        }
        Ok(Mapping { ptr: ptr.cast(), len, kind: MappingKind::Mmap })
    }

    #[allow(dead_code)]
    fn heap(len: usize) -> std::io::Result<Mapping> {
        let layout = std::alloc::Layout::from_size_align(len.max(1), 4096)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidInput, e))?;
        // SAFETY: layout has non-zero size.
        let ptr = unsafe { std::alloc::alloc_zeroed(layout) };
        if ptr.is_null() {
            return Err(std::io::Error::new(std::io::ErrorKind::OutOfMemory, "alloc failed"));
        }
        Ok(Mapping { ptr, len, kind: MappingKind::Heap(layout) })
    }
}

impl Drop for Mapping {
    fn drop(&mut self) {
        match self.kind {
            #[cfg(unix)]
            MappingKind::Mmap => unsafe {
                ffi::munmap(self.ptr.cast(), self.len);
            },
            MappingKind::Heap(layout) => unsafe {
                std::alloc::dealloc(self.ptr, layout);
            },
        }
    }
}

/// This process's id.
pub fn pid() -> u64 {
    std::process::id() as u64
}

/// Whether a process with `pid` currently exists (signal-0 probe).
/// Conservatively `true` on platforms without the probe.
pub fn process_alive(pid: u64) -> bool {
    #[cfg(unix)]
    {
        if pid == 0 {
            return false;
        }
        // kill(pid, 0): 0 = exists, EPERM = exists but not ours,
        // ESRCH = gone.
        let r = unsafe { ffi::kill(pid as i32, 0) };
        r == 0 || std::io::Error::last_os_error().raw_os_error() == Some(ffi::EPERM)
    }
    #[cfg(not(unix))]
    {
        let _ = pid;
        true
    }
}

/// Forcibly kills a process (SIGKILL on Unix; no-op elsewhere). Used by
/// the bootstrap launcher to reap children that outlive their timeout.
pub fn kill_process(pid: u64) {
    #[cfg(unix)]
    unsafe {
        ffi::kill(pid as i32, 9);
    }
    #[cfg(not(unix))]
    let _ = pid;
}

/// Blocks until `word != expected` (best effort) or `timeout` elapses.
///
/// On Linux this is a shared (cross-process) `FUTEX_WAIT`; elsewhere a
/// coarse timed poll, sufficient for the single-process fallback.
pub fn futex_wait(word: &AtomicU32, expected: u32, timeout: Duration) {
    #[cfg(target_os = "linux")]
    {
        let ts = ffi::Timespec {
            tv_sec: timeout.as_secs() as i64,
            tv_nsec: i64::from(timeout.subsec_nanos()),
        };
        // SAFETY: the futex word is a valid, live AtomicU32; FUTEX_WAIT
        // with a non-PRIVATE op works across processes on shared memory.
        unsafe {
            ffi::syscall(
                ffi::SYS_FUTEX,
                word as *const AtomicU32,
                ffi::FUTEX_WAIT,
                expected as usize,
                &ts as *const ffi::Timespec,
            );
        }
    }
    #[cfg(not(target_os = "linux"))]
    {
        use std::sync::atomic::Ordering;
        let deadline = std::time::Instant::now() + timeout.min(Duration::from_millis(2));
        while word.load(Ordering::Acquire) == expected && std::time::Instant::now() < deadline {
            std::thread::yield_now();
        }
    }
}

/// Wakes up to `n` waiters blocked in [`futex_wait`] on `word`.
pub fn futex_wake(word: &AtomicU32, n: u32) {
    #[cfg(target_os = "linux")]
    // SAFETY: see `futex_wait`.
    unsafe {
        ffi::syscall(
            ffi::SYS_FUTEX,
            word as *const AtomicU32,
            ffi::FUTEX_WAKE,
            n as usize,
            std::ptr::null::<ffi::Timespec>(),
        );
    }
    #[cfg(not(target_os = "linux"))]
    {
        let _ = (word, n);
    }
}

#[cfg(unix)]
mod ffi {
    use std::os::raw::{c_int, c_void};

    pub const PROT_READ: c_int = 1;
    pub const PROT_WRITE: c_int = 2;
    pub const MAP_SHARED: c_int = 0x01;
    #[cfg(target_os = "linux")]
    pub const MAP_ANONYMOUS: c_int = 0x20;
    #[cfg(not(target_os = "linux"))]
    pub const MAP_ANONYMOUS: c_int = 0x1000; // BSD/macOS MAP_ANON
    pub const MAP_FAILED: *mut c_void = usize::MAX as *mut c_void;
    pub const EPERM: i32 = 1;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> c_int;
        pub fn kill(pid: c_int, sig: c_int) -> c_int;
    }

    #[cfg(target_os = "linux")]
    mod linux {
        #[cfg(target_arch = "x86_64")]
        pub const SYS_FUTEX: std::os::raw::c_long = 202;
        #[cfg(target_arch = "aarch64")]
        pub const SYS_FUTEX: std::os::raw::c_long = 98;
        pub const FUTEX_WAIT: usize = 0;
        pub const FUTEX_WAKE: usize = 1;

        #[repr(C)]
        pub struct Timespec {
            pub tv_sec: i64,
            pub tv_nsec: i64,
        }

        extern "C" {
            pub fn syscall(
                num: std::os::raw::c_long,
                a: *const std::sync::atomic::AtomicU32,
                op: usize,
                val: usize,
                timeout: *const Timespec,
            ) -> std::os::raw::c_long;
        }
    }
    #[cfg(target_os = "linux")]
    pub use linux::*;
}

#[cfg(not(unix))]
mod ffi {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::Ordering;
    use std::sync::Arc;

    #[test]
    fn anonymous_mapping_is_zeroed_and_writable() {
        let m = Mapping::anonymous(8192).unwrap();
        assert_eq!(m.len(), 8192);
        let s = unsafe { std::slice::from_raw_parts_mut(m.ptr(), m.len()) };
        assert!(s.iter().all(|&b| b == 0));
        s[4095] = 7;
        assert_eq!(s[4095], 7);
    }

    #[test]
    fn process_alive_self_and_bogus() {
        assert!(process_alive(pid()));
        assert!(!cfg!(unix) || !process_alive(0x3FFF_FF17));
    }

    #[test]
    fn futex_wait_times_out() {
        let w = AtomicU32::new(0);
        let t0 = std::time::Instant::now();
        futex_wait(&w, 0, Duration::from_millis(20));
        assert!(t0.elapsed() >= Duration::from_millis(10));
    }

    #[test]
    fn futex_wake_releases_waiter() {
        let w = Arc::new(AtomicU32::new(0));
        let w2 = w.clone();
        let h = std::thread::spawn(move || {
            while w2.load(Ordering::Acquire) == 0 {
                futex_wait(&w2, 0, Duration::from_secs(2));
            }
        });
        std::thread::sleep(Duration::from_millis(20));
        w.store(1, Ordering::Release);
        futex_wake(&w, u32::MAX);
        h.join().unwrap();
    }
}
