//! # lci-fabric — an in-process simulated RDMA fabric
//!
//! This crate is the *network substrate* for the Rust reproduction of
//! "LCI: a Lightweight Communication Interface for Efficient Asynchronous
//! Multithreaded Communication" (SC 2025).
//!
//! The paper evaluates LCI on InfiniBand (through libibverbs) and
//! Slingshot-11 (through libfabric). Neither the hardware nor mature Rust
//! bindings are available here, so this crate provides a faithful
//! *behavioural* substitute: an in-process fabric connecting N ranks, over
//! which two backends expose exactly the lock granularities the paper
//! analyses in §4.2:
//!
//! * [`sim_ibv`] — mirrors the libibverbs/mlx5 analysis (§4.2.3): every
//!   queue pair, completion queue and shared receive queue carries its own
//!   spinlock; *thread-domain* strategies (`per_qp`, `all_qp`, `none`)
//!   control how queue pairs share their posting locks.
//! * [`sim_ofi`] — mirrors the libfabric cxi/verbs provider analysis
//!   (§4.2.4): a single endpoint spinlock serializes `post_send`,
//!   `post_recv` and `poll_cq`, and memory registration goes through a
//!   mutex-protected registration cache.
//!
//! Data movement is performed with real `memcpy`s (inline for tiny
//! messages, heap-staged for eager messages, direct registered-memory
//! copies for RDMA), so per-message software overhead and bandwidth
//! saturation behave like a real memory-limited NIC path. Propagation
//! delay is not modelled; the paper's metrics (message rate, bandwidth)
//! are overhead-dominated, not latency-dominated.
//!
//! ## Model
//!
//! * A [`Fabric`] connects `nranks` ranks. Ranks live in the same process
//!   (threads), which is the substitution documented in DESIGN.md: all
//!   paper comparisons are *relative* between libraries running on the
//!   identical fabric.
//! * Each rank opens a [`NetContext`] and creates one or more network
//!   devices ([`NetDevice`]). A device owns an RX ring (the "wire" into
//!   it), a completion queue, a shared receive queue of pre-posted
//!   buffers, and per-target queue pairs.
//! * `post_send` stages the payload and pushes it onto the *target*
//!   device's RX ring; the copy into the pre-posted receive buffer happens
//!   on the target side during `poll_cq` (standing in for NIC DMA).
//! * `post_write`/`post_read` copy directly between local memory and
//!   remote *registered* memory (see [`mem`]), optionally consuming a
//!   pre-posted receive at the target to deliver an immediate-data
//!   notification — exactly like `IBV_WR_RDMA_WRITE_WITH_IMM`.
//! * Backpressure: the RX ring is bounded; a full ring surfaces as
//!   [`RetryReason::RxFull`], which the LCI layer translates into its
//!   `retry` status. A message whose target has no pre-posted receive
//!   stays in the ring until the target replenishes its queue
//!   (receiver-not-ready, RNR, behaviour).

pub mod backend;
pub mod bootstrap;
pub mod buf_pool;
pub mod fabric;
pub mod mem;
pub mod reg_cache;
pub mod shm;
pub mod sim_ibv;
pub mod sim_ofi;
pub mod sync;
pub mod tcp;
pub mod topology;
pub mod types;

pub use backend::{
    BackendKind, DeviceConfig, NetContext, NetDevice, SendDesc, TdStrategy, TransportStats,
};
pub use buf_pool::{BufPool, BufPoolConfig, BufPoolStats, PoolBuf};
pub use fabric::Fabric;
pub use mem::{MemoryRegion, Rkey};
pub use reg_cache::{RegCache, RegCacheConfig, RegCacheStats};
pub use sync::Doorbell;
pub use types::{Cqe, CqeKind, DevId, NetError, NetResult, Rank, RecvBufDesc, RetryReason};
