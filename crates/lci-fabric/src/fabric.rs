//! The fabric: rank registry, RX endpoints (the "wire"), and out-of-band
//! bootstrap (the PMI stand-in).

use crate::mem::RegistrationTable;
use crate::shm::{ShmFabric, ShmSegment};
use crate::sync::{Doorbell, MpmcArray};
use crate::types::{DevId, NetError, NetResult, Rank, RetryReason, WireMsg};
use crossbeam::queue::ArrayQueue;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// Default RX-ring capacity (messages in flight toward one device).
pub const DEFAULT_RX_CAPACITY: usize = 4096;

/// The receive half of a device as seen from the rest of the fabric:
/// a bounded multi-producer ring standing in for the NIC's inbound
/// pipeline. Senders push; only the owning device pops (during its
/// `poll_cq`).
///
/// The ring is a fixed-capacity lock-free array queue — like a real
/// inbound FIFO it is sized at creation and never allocates on the push
/// path (the allocation-free steady-state discipline, DESIGN.md §4.7).
/// A full ring surfaces as RNR backpressure.
pub struct RxEndpoint {
    ring: ArrayQueue<WireMsg>,
    closed: AtomicBool,
    /// Rung on every successful push so a parked progress thread on the
    /// owning device wakes when wire traffic arrives.
    bell: Option<Arc<Doorbell>>,
}

impl RxEndpoint {
    /// Creates an endpoint with the given ring capacity.
    pub fn new(capacity: usize) -> Self {
        Self { ring: ArrayQueue::new(capacity.max(1)), closed: AtomicBool::new(false), bell: None }
    }

    /// Creates an endpoint whose pushes ring `bell` (the owning device's
    /// doorbell).
    pub fn with_doorbell(capacity: usize, bell: Arc<Doorbell>) -> Self {
        Self {
            ring: ArrayQueue::new(capacity.max(1)),
            closed: AtomicBool::new(false),
            bell: Some(bell),
        }
    }

    /// Pushes a message toward the owning device.
    pub fn push(&self, msg: WireMsg) -> NetResult<()> {
        if self.closed.load(Ordering::Acquire) {
            return Err(NetError::fatal("target device closed"));
        }
        self.ring.push(msg).map_err(|_| NetError::Retry(RetryReason::RxFull))?;
        if let Some(bell) = &self.bell {
            bell.ring();
        }
        Ok(())
    }

    /// Pops the next inbound message, if any. Only the owning device
    /// calls this.
    pub fn pop(&self) -> Option<WireMsg> {
        self.ring.pop()
    }

    /// Occupancy snapshot (diagnostics).
    pub fn occupancy(&self) -> usize {
        self.ring.len()
    }

    /// Marks the endpoint closed; subsequent pushes fail fatally.
    pub fn close(&self) {
        self.closed.store(true, Ordering::Release);
    }

    /// Whether the endpoint has been closed.
    pub fn is_closed(&self) -> bool {
        self.closed.load(Ordering::Acquire)
    }
}

/// Out-of-band bootstrap state: a tiny PMI. Real LCI bootstraps through
/// PMI1/PMI2/PMIx/MPI; our ranks share an address space, so a barrier and
/// an allgather suffice.
struct Oob {
    mutex: Mutex<OobInner>,
    cond: Condvar,
}

struct OobInner {
    barrier_count: usize,
    barrier_gen: usize,
    gather: Vec<Option<Vec<u8>>>,
}

/// The simulated interconnect: connects `nranks` ranks, owns the device
/// registry and the memory registration table.
pub struct Fabric {
    nranks: usize,
    /// Per-rank device registry: `(rank, dev_id) -> RxEndpoint`.
    /// MPMC arrays (paper §4.1.1): appended at device creation, read
    /// lock-free on every send.
    endpoints: Vec<MpmcArray<Arc<RxEndpoint>>>,
    mem: RegistrationTable,
    oob: Oob,
    /// Shared-memory transport state, created lazily the first time an
    /// `shm` device is built (in-process mode) or eagerly by the
    /// multi-process bootstrap ([`Fabric::attached`]).
    shm: OnceLock<Arc<ShmFabric>>,
    /// TCP transport state, created lazily the first time a `tcp`
    /// device is built (in-process loopback mesh) or eagerly by the
    /// multi-process bootstrap (`Fabric::attached_tcp`).
    #[cfg(unix)]
    tcp: OnceLock<Arc<crate::tcp::TcpFabric>>,
}

impl Fabric {
    /// Creates a fabric connecting `nranks` ranks.
    pub fn new(nranks: usize) -> Arc<Self> {
        assert!(nranks >= 1, "fabric needs at least one rank");
        Arc::new(Self {
            nranks,
            endpoints: (0..nranks).map(|_| MpmcArray::with_capacity(4)).collect(),
            mem: RegistrationTable::new(),
            oob: Oob {
                mutex: Mutex::new(OobInner {
                    barrier_count: 0,
                    barrier_gen: 0,
                    gather: vec![None; nranks],
                }),
                cond: Condvar::new(),
            },
            shm: OnceLock::new(),
            #[cfg(unix)]
            tcp: OnceLock::new(),
        })
    }

    /// Creates a fabric attached to an existing multi-process shared
    /// segment: this process hosts only `my_rank`; the other ranks are
    /// other OS processes. OOB collectives go through the segment.
    pub fn attached(seg: Arc<ShmSegment>, my_rank: Rank) -> Arc<Self> {
        let nranks = seg.nranks();
        assert!(my_rank < nranks, "rank {my_rank} out of range");
        let f = Self::new(nranks);
        f.shm
            .set(Arc::new(ShmFabric::attached(seg, my_rank)))
            .ok()
            .expect("fresh fabric cannot already have shm state");
        f
    }

    /// The shared-memory transport state, creating an in-process
    /// anonymous segment on first use (so any test or bench switches to
    /// the shm transport with a `DeviceConfig` alone).
    pub(crate) fn shm_fabric(&self) -> &Arc<ShmFabric> {
        self.shm.get_or_init(|| {
            Arc::new(
                ShmFabric::in_process(self.nranks)
                    .expect("failed to create in-process shm segment"),
            )
        })
    }

    /// This process's rank when attached to a multi-process segment.
    pub fn shm_rank(&self) -> Option<Rank> {
        self.shm.get().filter(|s| s.multiproc).map(|s| s.my_rank)
    }

    /// First shm peer known to be dead or cleanly exited, if any
    /// (multi-process mode only).
    pub fn shm_dead_peer(&self) -> Option<Rank> {
        self.shm.get().and_then(|s| s.dead_peer())
    }

    /// Creates a fabric attached to a multi-process TCP mesh: this
    /// process hosts only `my_rank`; `conns` holds one established mesh
    /// socket per peer. OOB collectives go through the root service.
    #[cfg(unix)]
    pub(crate) fn attached_tcp(
        conns: Vec<Option<std::net::TcpStream>>,
        my_rank: Rank,
        nranks: usize,
        oob: crate::tcp::oob::OobClient,
    ) -> Arc<Self> {
        assert!(my_rank < nranks, "rank {my_rank} out of range");
        let f = Self::new(nranks);
        f.tcp
            .set(Arc::new(crate::tcp::TcpFabric::attached(conns, my_rank, nranks, oob)))
            .ok()
            .expect("fresh fabric cannot already have tcp state");
        f
    }

    /// The TCP transport state, creating an in-process loopback mesh on
    /// first use (so any test or bench switches to the tcp transport
    /// with a `DeviceConfig` alone).
    #[cfg(unix)]
    pub(crate) fn tcp_fabric(&self) -> &Arc<crate::tcp::TcpFabric> {
        self.tcp.get_or_init(|| {
            Arc::new(
                crate::tcp::TcpFabric::in_process(self.nranks)
                    .expect("failed to create in-process tcp loopback mesh"),
            )
        })
    }

    /// This process's rank when attached to a multi-process TCP mesh.
    pub fn tcp_rank(&self) -> Option<Rank> {
        #[cfg(unix)]
        {
            self.tcp.get().filter(|t| t.multiproc).map(|t| t.my_rank)
        }
        #[cfg(not(unix))]
        {
            None
        }
    }

    /// First tcp peer known to be dead or cleanly exited, if any
    /// (multi-process mode only).
    pub fn tcp_dead_peer(&self) -> Option<Rank> {
        #[cfg(unix)]
        {
            self.tcp.get().and_then(|t| t.dead_peer())
        }
        #[cfg(not(unix))]
        {
            None
        }
    }

    /// First peer known dead on any attached multi-process transport.
    pub fn dead_peer(&self) -> Option<Rank> {
        self.shm_dead_peer().or_else(|| self.tcp_dead_peer())
    }

    /// Number of ranks the fabric connects.
    pub fn nranks(&self) -> usize {
        self.nranks
    }

    /// The global memory registration table.
    pub fn mem(&self) -> &RegistrationTable {
        &self.mem
    }

    /// Registers a new device for `rank`; returns its [`DevId`].
    pub(crate) fn add_device(&self, rank: Rank, ep: Arc<RxEndpoint>) -> DevId {
        assert!(rank < self.nranks, "rank {rank} out of range");
        self.endpoints[rank].push(ep)
    }

    /// Looks up a target endpoint for a send (lock-free read).
    pub(crate) fn endpoint(&self, rank: Rank, dev: DevId) -> NetResult<Arc<RxEndpoint>> {
        if rank >= self.nranks {
            return Err(NetError::fatal(format!("rank {rank} out of range")));
        }
        self.endpoints[rank].read(dev).ok_or(NetError::Retry(RetryReason::PeerNotReady))
    }

    /// Number of devices currently created on `rank`.
    pub fn device_count(&self, rank: Rank) -> usize {
        self.endpoints[rank].len()
    }

    /// Out-of-band barrier across all ranks (bootstrap only; do not use on
    /// the data path).
    pub fn oob_barrier(&self) {
        if let Some(shm) = self.shm.get() {
            if shm.multiproc {
                shm.seg.barrier();
                return;
            }
        }
        #[cfg(unix)]
        if let Some(tcp) = self.tcp.get() {
            if tcp.multiproc {
                tcp.oob
                    .as_ref()
                    .expect("multiproc tcp fabric has an oob client")
                    .barrier()
                    .expect("tcp oob barrier failed (a peer rank died)");
                return;
            }
        }
        let mut g = self.oob.mutex.lock().expect("oob poisoned");
        let gen = g.barrier_gen;
        g.barrier_count += 1;
        if g.barrier_count == self.nranks {
            g.barrier_count = 0;
            g.barrier_gen += 1;
            self.oob.cond.notify_all();
        } else {
            while g.barrier_gen == gen {
                g = self.oob.cond.wait(g).expect("oob poisoned");
            }
        }
    }

    /// Out-of-band allgather: every rank contributes `data`; all ranks
    /// receive everyone's contribution, rank-ordered. Bootstrap only.
    ///
    /// Built from three barriers (write / read / reset) so consecutive
    /// rounds can never interleave.
    pub fn oob_allgather(&self, rank: Rank, data: Vec<u8>) -> Vec<Vec<u8>> {
        if let Some(shm) = self.shm.get() {
            if shm.multiproc {
                return shm.seg.allgather(rank, &data);
            }
        }
        #[cfg(unix)]
        if let Some(tcp) = self.tcp.get() {
            if tcp.multiproc {
                return tcp
                    .oob
                    .as_ref()
                    .expect("multiproc tcp fabric has an oob client")
                    .allgather(&data)
                    .expect("tcp oob allgather failed (a peer rank died)");
            }
        }
        {
            let mut g = self.oob.mutex.lock().expect("oob poisoned");
            g.gather[rank] = Some(data);
        }
        self.oob_barrier(); // every slot written
        let result: Vec<Vec<u8>> = {
            let g = self.oob.mutex.lock().expect("oob poisoned");
            g.gather.iter().map(|o| o.clone().expect("allgather slot missing")).collect()
        };
        self.oob_barrier(); // every rank has read
        if rank == 0 {
            let mut g = self.oob.mutex.lock().expect("oob poisoned");
            for slot in g.gather.iter_mut() {
                *slot = None;
            }
        }
        self.oob_barrier(); // reset visible before any next-round write
        result
    }
}

impl std::fmt::Debug for Fabric {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Fabric").field("nranks", &self.nranks).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{WireMsgKind, WirePayload};
    use std::sync::atomic::AtomicUsize;

    fn msg(i: u64) -> WireMsg {
        WireMsg {
            src_rank: 0,
            src_dev: 0,
            imm: i,
            kind: WireMsgKind::Send,
            payload: WirePayload::None,
        }
    }

    #[test]
    fn rx_endpoint_fifo_and_bound() {
        let ep = RxEndpoint::new(2);
        ep.push(msg(1)).unwrap();
        ep.push(msg(2)).unwrap();
        let e = ep.push(msg(3)).unwrap_err();
        assert_eq!(e, NetError::Retry(RetryReason::RxFull));
        assert_eq!(ep.pop().unwrap().imm, 1);
        ep.push(msg(3)).unwrap();
        assert_eq!(ep.pop().unwrap().imm, 2);
        assert_eq!(ep.pop().unwrap().imm, 3);
        assert!(ep.pop().is_none());
    }

    #[test]
    fn rx_endpoint_close() {
        let ep = RxEndpoint::new(4);
        ep.close();
        assert!(matches!(ep.push(msg(1)), Err(NetError::Fatal(_))));
    }

    #[test]
    fn fabric_device_registry() {
        let f = Fabric::new(2);
        let ep = Arc::new(RxEndpoint::new(4));
        let id = f.add_device(1, ep.clone());
        assert_eq!(id, 0);
        assert!(Arc::ptr_eq(&f.endpoint(1, 0).unwrap(), &ep));
        assert!(matches!(f.endpoint(1, 5), Err(NetError::Retry(RetryReason::PeerNotReady))));
        assert!(f.endpoint(7, 0).is_err());
    }

    #[test]
    fn oob_barrier_synchronizes() {
        let f = Fabric::new(4);
        let flag = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let f = f.clone();
                let flag = flag.clone();
                std::thread::spawn(move || {
                    flag.fetch_add(1, Ordering::SeqCst);
                    f.oob_barrier();
                    assert_eq!(flag.load(Ordering::SeqCst), 4);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn oob_allgather_collects_all() {
        let f = Fabric::new(3);
        let handles: Vec<_> = (0..3)
            .map(|r| {
                let f = f.clone();
                std::thread::spawn(move || {
                    let out = f.oob_allgather(r, vec![r as u8; r + 1]);
                    assert_eq!(out.len(), 3);
                    for (i, v) in out.iter().enumerate() {
                        assert_eq!(v, &vec![i as u8; i + 1]);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn oob_allgather_two_rounds() {
        let f = Fabric::new(2);
        let handles: Vec<_> = (0..2)
            .map(|r| {
                let f = f.clone();
                std::thread::spawn(move || {
                    for round in 0..2u8 {
                        let out = f.oob_allgather(r, vec![round * 10 + r as u8]);
                        assert_eq!(out, vec![vec![round * 10], vec![round * 10 + 1]]);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }
}
