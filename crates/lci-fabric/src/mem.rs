//! Memory registration (paper §3.3.1).
//!
//! LCI follows the common practice of low-level communication libraries:
//! memory registration is optional for local buffers but mandatory for
//! remote buffers. The fabric keeps a global registration table; RDMA
//! operations validate their target against it before copying, exactly
//! like an RDMA NIC validates an `rkey` before DMA.
//!
//! The table is the MPMC array of paper §4.1.1 in its natural habitat:
//! appended rarely (registration), read on every RDMA operation
//! (lock-free).

use crate::sync::MpmcArray;
use crate::types::{NetError, NetResult, Rank};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Remote key addressing a registered region (index into the table).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Rkey(pub u32);

/// One registered region.
#[derive(Debug)]
pub struct Registration {
    /// Owning rank (RDMA access is validated against it for diagnostics;
    /// the fabric is a flat address space like a real rkey space).
    pub rank: Rank,
    /// Base address.
    pub base: usize,
    /// Region length in bytes.
    pub len: usize,
    /// Cleared on deregistration; RDMA against a dead region is fatal.
    alive: AtomicBool,
}

/// A local handle for a registration; deregister through
/// [`RegistrationTable::deregister`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MemoryRegion {
    /// The remote key other ranks use to address this region.
    pub rkey: Rkey,
    /// Base address (local convenience).
    pub base: usize,
    /// Length in bytes.
    pub len: usize,
}

/// The fabric-global registration table.
pub struct RegistrationTable {
    entries: MpmcArray<Arc<Registration>>,
}

impl RegistrationTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self { entries: MpmcArray::with_capacity(64) }
    }

    /// Registers `[ptr, ptr+len)` for remote access on behalf of `rank`.
    ///
    /// # Safety contract (documented, not compiler-enforced)
    /// As with real RDMA, the caller promises the region stays allocated
    /// until deregistered, and accepts that remote peers may read/write it
    /// at any time in that window. Rust aliasing is respected by treating
    /// the region as externally-shared bytes (all fabric accesses go
    /// through raw pointers, never references).
    pub fn register(&self, rank: Rank, ptr: *const u8, len: usize) -> MemoryRegion {
        let reg =
            Arc::new(Registration { rank, base: ptr as usize, len, alive: AtomicBool::new(true) });
        let idx = self.entries.push(reg);
        MemoryRegion { rkey: Rkey(idx as u32), base: ptr as usize, len }
    }

    /// Deregisters a region. Later RDMA referencing its rkey fails.
    pub fn deregister(&self, mr: &MemoryRegion) {
        if let Some(reg) = self.entries.read(mr.rkey.0 as usize) {
            reg.alive.store(false, Ordering::Release);
        }
    }

    /// Validates an RDMA access of `len` bytes at `offset` within the
    /// region named by `rkey`, returning the absolute base address of the
    /// access.
    pub fn validate(&self, rkey: Rkey, offset: usize, len: usize) -> NetResult<usize> {
        let reg = self
            .entries
            .read(rkey.0 as usize)
            .ok_or_else(|| NetError::fatal(format!("unknown rkey {rkey:?}")))?;
        if !reg.alive.load(Ordering::Acquire) {
            return Err(NetError::fatal(format!("rkey {rkey:?} is deregistered")));
        }
        let end = offset
            .checked_add(len)
            .ok_or_else(|| NetError::fatal("RDMA access length overflow"))?;
        if end > reg.len {
            return Err(NetError::fatal(format!(
                "RDMA access out of bounds: offset {offset} + len {len} > region len {}",
                reg.len
            )));
        }
        Ok(reg.base + offset)
    }

    /// Number of registrations ever made (dead entries included).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl Default for RegistrationTable {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_validate_roundtrip() {
        let t = RegistrationTable::new();
        let buf = vec![0u8; 4096];
        let mr = t.register(0, buf.as_ptr(), buf.len());
        let addr = t.validate(mr.rkey, 100, 200).unwrap();
        assert_eq!(addr, buf.as_ptr() as usize + 100);
    }

    #[test]
    fn validate_rejects_out_of_bounds() {
        let t = RegistrationTable::new();
        let buf = [0u8; 128];
        let mr = t.register(0, buf.as_ptr(), buf.len());
        assert!(t.validate(mr.rkey, 100, 100).is_err());
        assert!(t.validate(mr.rkey, 0, 129).is_err());
        assert!(t.validate(mr.rkey, 0, 128).is_ok());
    }

    #[test]
    fn validate_rejects_unknown_and_dead_rkey() {
        let t = RegistrationTable::new();
        assert!(t.validate(Rkey(42), 0, 1).is_err());
        let buf = [0u8; 64];
        let mr = t.register(1, buf.as_ptr(), buf.len());
        t.deregister(&mr);
        assert!(t.validate(mr.rkey, 0, 1).is_err());
    }

    #[test]
    fn many_registrations_resize() {
        let t = RegistrationTable::new();
        let bufs: Vec<Vec<u8>> = (0..300).map(|_| vec![0u8; 16]).collect();
        let mrs: Vec<_> = bufs.iter().map(|b| t.register(0, b.as_ptr(), b.len())).collect();
        for (b, mr) in bufs.iter().zip(&mrs) {
            assert_eq!(t.validate(mr.rkey, 0, 16).unwrap(), b.as_ptr() as usize);
        }
    }
}
