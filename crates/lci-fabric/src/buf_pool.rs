//! Size-classed recycled byte-buffer pool.
//!
//! The paper's packet pool (§4.1.2) exists so the critical path never
//! touches malloc; this module extends the same discipline to every
//! *staging* buffer the fabric and the LCI runtime allocate per
//! operation: `WirePayload::Heap` send staging, coalesced-frame
//! aggregation buffers, rendezvous gather-scratch slots, and the
//! unexpected-rendezvous bounce buffer. Buffers are recycled through
//! power-of-two size-class shelves guarded by leaf spinlocks (never
//! held while another lock is taken, so cross-device returns — a
//! receiver dropping a sender-staged payload — cannot deadlock).
//!
//! Shelves are laid out **per core** ([`topology`](crate::topology)):
//! each logical core owns a stripe of size-class shelves plus its own
//! counters, so the steady-state take/put fast path touches only
//! owner-local cache lines — no shared head pointer bounces between
//! cores. Every buffer remembers the stripe it was taken on and
//! returns **to that origin stripe** on drop (the slab-allocator
//! remote-free-to-owner discipline): a producer whose buffers are
//! consumed and freed on other cores keeps finding its storage on its
//! own shelf, so the steady-state take path stays owner-local instead
//! of stealing every round trip. A take that still finds its home
//! stripe empty scans the other stripes (steal) before falling back to
//! the allocator, so shelves converge instead of leaking when threads
//! migrate or ownership genuinely moves.
//!
//! A [`PoolBuf`] carries an `Arc` back to its owning pool and returns
//! its storage on drop; [`PoolBuf::detached`] wraps a plain vector with
//! no recycling for the ablation opt-out and for oversize payloads.
//! Local-hit/steal/miss/recycled-byte counters surface through
//! [`BufPoolStats`] and the LCI `DeviceStats` overlay.

use crate::sync::SpinLock;
use crate::topology;
use crate::types::{WirePayload, INLINE_MAX};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Smallest recycled size class, in bytes.
pub const MIN_CLASS: usize = 128;
/// Largest recycled size class, in bytes; bigger buffers are not pooled.
pub const MAX_CLASS: usize = 1 << 20;
/// Number of power-of-two shelves between [`MIN_CLASS`] and [`MAX_CLASS`].
const NCLASSES: usize = (MAX_CLASS / MIN_CLASS).trailing_zeros() as usize + 1;

/// Capacity of the size class with index `idx`.
#[inline]
fn class_size(idx: usize) -> usize {
    MIN_CLASS << idx
}

/// Index of the smallest class holding `len` bytes; `None` when `len`
/// exceeds [`MAX_CLASS`].
#[inline]
fn class_of(len: usize) -> Option<usize> {
    if len > MAX_CLASS {
        return None;
    }
    let c = len.next_power_of_two().max(MIN_CLASS);
    Some((c / MIN_CLASS).trailing_zeros() as usize)
}

/// Buffer-pool configuration (a [`DeviceConfig`](crate::DeviceConfig)
/// field).
#[derive(Clone, Copy, Debug)]
pub struct BufPoolConfig {
    /// Master switch; when off every request returns a detached (heap,
    /// non-recycled) buffer — the ablation baseline.
    pub enabled: bool,
    /// Maximum buffers kept per size class **per core stripe**; returns
    /// past this bound are dropped (freed) instead of shelved.
    pub max_per_class: usize,
    /// Number of per-core stripes; `0` (the default) means one stripe
    /// per detected core ([`topology::ncores`]), rounded to a power of
    /// two.
    pub stripes: usize,
}

impl Default for BufPoolConfig {
    fn default() -> Self {
        Self { enabled: true, max_per_class: 64, stripes: 0 }
    }
}

/// Point-in-time pool counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BufPoolStats {
    /// Requests satisfied from a shelf (`local_hits + steals`).
    pub hits: u64,
    /// Requests satisfied from the calling core's own stripe.
    pub local_hits: u64,
    /// Requests satisfied by stealing from another core's stripe.
    pub steals: u64,
    /// Requests that had to allocate (cold shelves, oversize, or pool
    /// disabled).
    pub misses: u64,
    /// Bytes of capacity returned to shelves for reuse.
    pub recycled_bytes: u64,
}

/// One core's shelves plus its counters, padded so neighbouring
/// stripes never share a cache line.
#[repr(align(128))]
struct Stripe {
    shelves: [SpinLock<Vec<Vec<u8>>>; NCLASSES],
    local_hits: AtomicU64,
    steals: AtomicU64,
    misses: AtomicU64,
    recycled_bytes: AtomicU64,
}

impl Default for Stripe {
    fn default() -> Self {
        Self {
            shelves: std::array::from_fn(|_| SpinLock::new(Vec::new())),
            local_hits: AtomicU64::new(0),
            steals: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            recycled_bytes: AtomicU64::new(0),
        }
    }
}

struct PoolShared {
    stripes: Box<[Stripe]>,
    /// `stripes.len() - 1`; stripe counts are powers of two.
    mask: usize,
    max_per_class: usize,
}

impl PoolShared {
    /// The calling core's home stripe.
    #[inline]
    fn home(&self) -> &Stripe {
        &self.stripes[topology::current_core() & self.mask]
    }

    /// Returns `vec`'s storage to its `origin` stripe — the stripe it
    /// was taken on — or frees it when the shelf is full or the
    /// capacity shrank below the class size. Cross-core frees are the
    /// slow path: they take the origin's shelf lock once, and the
    /// owner's next take finds the storage locally.
    fn put(&self, class: usize, origin: usize, mut vec: Vec<u8>) {
        if vec.capacity() < class_size(class) {
            return;
        }
        let stripe = &self.stripes[origin & self.mask];
        let mut shelf = stripe.shelves[class].lock();
        if shelf.len() < self.max_per_class {
            vec.clear();
            shelf.push(vec);
            drop(shelf);
            stripe.recycled_bytes.fetch_add(class_size(class) as u64, Ordering::Relaxed);
        }
    }

    /// Pops a recycled buffer: owner-local fast path first, then a
    /// try-lock steal sweep over the other stripes, else `None`.
    fn take(&self, class: usize) -> Option<Vec<u8>> {
        let me = topology::current_core() & self.mask;
        let stripe = &self.stripes[me];
        if let Some(v) = stripe.shelves[class].lock().pop() {
            stripe.local_hits.fetch_add(1, Ordering::Relaxed);
            return Some(v);
        }
        // Slow path: steal a sibling stripe's *surplus* (shelf len ≥ 2).
        // `try_lock` only — a stripe busy serving its owner is skipped,
        // not waited on. Taking a victim's last buffer is refused: with
        // supply exactly matching demand that only moves the hole around
        // the ring (the victim's next owner-local take misses and steals
        // in turn, forever). Missing here instead allocates once, and
        // the new storage homes on this stripe — resident sets grow
        // until every core's steady-state working set is owner-local.
        for off in 1..self.stripes.len() {
            let victim = &self.stripes[(me + off) & self.mask];
            if let Some(mut shelf) = victim.shelves[class].try_lock() {
                if shelf.len() >= 2 {
                    let v = shelf.pop().expect("len >= 2");
                    drop(shelf);
                    stripe.steals.fetch_add(1, Ordering::Relaxed);
                    return Some(v);
                }
            }
        }
        None
    }
}

/// A size-classed recycled byte-buffer pool. Cheap to clone (a shared
/// handle); all clones feed the same shelves.
#[derive(Clone)]
pub struct BufPool {
    shared: Arc<PoolShared>,
    enabled: bool,
}

impl BufPool {
    /// Creates a pool with `cfg`.
    pub fn new(cfg: BufPoolConfig) -> Self {
        let nstripes = topology::stripe_count(cfg.stripes);
        Self {
            shared: Arc::new(PoolShared {
                stripes: (0..nstripes).map(|_| Stripe::default()).collect(),
                mask: nstripes - 1,
                max_per_class: cfg.max_per_class.max(1),
            }),
            enabled: cfg.enabled,
        }
    }

    /// Number of per-core stripes the pool was laid out with.
    pub fn stripes(&self) -> usize {
        self.shared.stripes.len()
    }

    /// Whether buffers are actually recycled (false under the ablation
    /// opt-out: every request allocates and every return frees).
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// An empty buffer with capacity for at least `len` bytes.
    pub fn take_empty(&self, len: usize) -> PoolBuf {
        let class = if self.enabled { class_of(len) } else { None };
        let Some(class) = class else {
            self.shared.home().misses.fetch_add(1, Ordering::Relaxed);
            return PoolBuf::detached(Vec::with_capacity(len));
        };
        let origin = topology::current_core() & self.shared.mask;
        let vec = match self.shared.take(class) {
            Some(v) => v,
            None => {
                self.shared.home().misses.fetch_add(1, Ordering::Relaxed);
                Vec::with_capacity(class_size(class))
            }
        };
        PoolBuf { vec, class, origin, pool: Some(self.shared.clone()) }
    }

    /// A zero-filled buffer of exactly `len` bytes.
    pub fn take_len(&self, len: usize) -> PoolBuf {
        let mut b = self.take_empty(len);
        b.vec.resize(len, 0);
        b
    }

    /// A recycled copy of `src`.
    pub fn stage_copy(&self, src: &[u8]) -> PoolBuf {
        let mut b = self.take_empty(src.len());
        b.vec.extend_from_slice(src);
        b
    }

    /// Stages `src` as a wire payload: empty → `None`, small → `Inline`,
    /// larger → a recycled `Heap` buffer.
    pub fn stage(&self, src: &[u8]) -> WirePayload {
        if src.is_empty() {
            WirePayload::None
        } else if src.len() <= INLINE_MAX {
            let mut data = [0u8; INLINE_MAX];
            data[..src.len()].copy_from_slice(src);
            WirePayload::Inline { data, len: src.len() as u8 }
        } else {
            WirePayload::Heap(self.stage_copy(src))
        }
    }

    /// One stripe's counters (`None` past the stripe count) — the
    /// per-core view behind [`stats`](Self::stats), for diagnostics and
    /// placement tests.
    pub fn stripe_stats(&self, idx: usize) -> Option<BufPoolStats> {
        let stripe = self.shared.stripes.get(idx)?;
        let local_hits = stripe.local_hits.load(Ordering::Relaxed);
        let steals = stripe.steals.load(Ordering::Relaxed);
        Some(BufPoolStats {
            hits: local_hits + steals,
            local_hits,
            steals,
            misses: stripe.misses.load(Ordering::Relaxed),
            recycled_bytes: stripe.recycled_bytes.load(Ordering::Relaxed),
        })
    }

    /// Current counters, folded across stripes.
    pub fn stats(&self) -> BufPoolStats {
        let mut s = BufPoolStats::default();
        for stripe in self.shared.stripes.iter() {
            s.local_hits += stripe.local_hits.load(Ordering::Relaxed);
            s.steals += stripe.steals.load(Ordering::Relaxed);
            s.misses += stripe.misses.load(Ordering::Relaxed);
            s.recycled_bytes += stripe.recycled_bytes.load(Ordering::Relaxed);
        }
        s.hits = s.local_hits + s.steals;
        s
    }
}

impl std::fmt::Debug for BufPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BufPool")
            .field("enabled", &self.enabled)
            .field("stats", &self.stats())
            .finish()
    }
}

/// A byte buffer that returns its storage to its owning [`BufPool`] on
/// drop. Derefs to `[u8]`; grow through [`vec_mut`](Self::vec_mut).
pub struct PoolBuf {
    vec: Vec<u8>,
    /// Size-class index; unused when `pool` is `None`.
    class: usize,
    /// Stripe the storage was taken on; drops return it there, whatever
    /// core they happen on.
    origin: usize,
    pool: Option<Arc<PoolShared>>,
}

impl PoolBuf {
    /// Wraps a plain vector with no recycling (dropped storage is freed).
    pub fn detached(vec: Vec<u8>) -> Self {
        Self { vec, class: 0, origin: 0, pool: None }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.vec.len()
    }

    /// Whether the buffer holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.vec.is_empty()
    }

    /// Mutable access to the backing vector (append, resize, clear).
    pub fn vec_mut(&mut self) -> &mut Vec<u8> {
        &mut self.vec
    }

    /// Steals the backing vector, opting its storage out of recycling.
    pub fn into_vec(mut self) -> Vec<u8> {
        self.pool = None;
        std::mem::take(&mut self.vec)
    }
}

impl std::ops::Deref for PoolBuf {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.vec
    }
}

impl std::ops::DerefMut for PoolBuf {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.vec
    }
}

impl AsRef<[u8]> for PoolBuf {
    fn as_ref(&self) -> &[u8] {
        &self.vec
    }
}

impl From<Vec<u8>> for PoolBuf {
    fn from(vec: Vec<u8>) -> Self {
        PoolBuf::detached(vec)
    }
}

impl Clone for PoolBuf {
    /// Deep copy, detached from any pool (clones are rare and cold).
    fn clone(&self) -> Self {
        PoolBuf::detached(self.vec.clone())
    }
}

impl std::fmt::Debug for PoolBuf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PoolBuf")
            .field("len", &self.vec.len())
            .field("pooled", &self.pool.is_some())
            .finish()
    }
}

impl Drop for PoolBuf {
    fn drop(&mut self) {
        if let Some(pool) = self.pool.take() {
            pool.put(self.class, self.origin, std::mem::take(&mut self.vec));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_math() {
        assert_eq!(class_of(0), Some(0));
        assert_eq!(class_of(1), Some(0));
        assert_eq!(class_of(128), Some(0));
        assert_eq!(class_of(129), Some(1));
        assert_eq!(class_of(256), Some(1));
        assert_eq!(class_of(MAX_CLASS), Some(NCLASSES - 1));
        assert_eq!(class_of(MAX_CLASS + 1), None);
        for idx in 0..NCLASSES {
            assert_eq!(class_of(class_size(idx)), Some(idx));
        }
    }

    #[test]
    fn recycle_round_trip() {
        let pool = BufPool::new(BufPoolConfig::default());
        let b = pool.stage_copy(&[7u8; 300]);
        assert_eq!(&b[..], &[7u8; 300]);
        let cap = b.vec.capacity();
        drop(b); // returns the 512-class buffer
        let b2 = pool.take_empty(400);
        assert_eq!(b2.vec.capacity(), cap, "same-class storage is reused");
        let s = pool.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
        assert_eq!((s.local_hits, s.steals), (1, 0), "same-thread reuse is owner-local");
        assert_eq!(s.recycled_bytes, 512);
    }

    #[test]
    fn take_len_zero_fills_recycled_storage() {
        let pool = BufPool::new(BufPoolConfig::default());
        let mut b = pool.take_len(200);
        b.copy_from_slice(&[0xAB; 200]);
        drop(b);
        let b2 = pool.take_len(200);
        assert_eq!(&b2[..], &[0u8; 200], "recycled buffer is re-zeroed");
    }

    #[test]
    fn oversize_and_disabled_are_detached() {
        let pool = BufPool::new(BufPoolConfig::default());
        let big = pool.take_empty(MAX_CLASS + 1);
        assert!(big.pool.is_none());
        drop(big);
        let off = BufPool::new(BufPoolConfig { enabled: false, ..Default::default() });
        let b = off.stage_copy(&[1u8; 256]);
        assert!(b.pool.is_none());
        drop(b);
        assert_eq!(off.stats().hits, 0);
        assert_eq!(off.stats().recycled_bytes, 0);
    }

    #[test]
    fn shelf_bound_is_respected() {
        let pool = BufPool::new(BufPoolConfig { enabled: true, max_per_class: 2, stripes: 1 });
        let bufs: Vec<_> = (0..4).map(|_| pool.take_len(128)).collect();
        drop(bufs);
        // Only two returns were shelved.
        assert_eq!(pool.stats().recycled_bytes, 2 * 128);
        let _a = pool.take_len(128);
        let _b = pool.take_len(128);
        let _c = pool.take_len(128);
        assert_eq!(pool.stats().hits, 2);
    }

    #[test]
    fn into_vec_opts_out_of_recycling() {
        let pool = BufPool::new(BufPoolConfig::default());
        let b = pool.stage_copy(&[3u8; 200]);
        let v = b.into_vec();
        assert_eq!(v.len(), 200);
        assert_eq!(pool.stats().recycled_bytes, 0);
    }

    #[test]
    fn stage_picks_inline_and_heap() {
        let pool = BufPool::new(BufPoolConfig::default());
        assert!(matches!(pool.stage(&[]), WirePayload::None));
        assert!(matches!(pool.stage(&[0u8; 64]), WirePayload::Inline { .. }));
        assert!(matches!(pool.stage(&[0u8; 65]), WirePayload::Heap(_)));
    }

    #[test]
    fn cross_core_free_returns_to_origin() {
        // Alloc on core 0, free on core 1: the storage comes home to
        // core 0's stripe, so core 0's next take is an owner-local hit
        // (the remote-free-to-owner discipline).
        let pool = BufPool::new(BufPoolConfig { enabled: true, max_per_class: 8, stripes: 2 });
        let (b, cap) = std::thread::scope(|s| {
            s.spawn(|| {
                topology::bind_current_thread(0);
                let b = pool.take_len(256);
                let cap = b.vec.capacity();
                (b, cap)
            })
            .join()
            .unwrap()
        });
        std::thread::scope(|s| {
            s.spawn(|| {
                topology::bind_current_thread(1);
                drop(b);
            });
        });
        std::thread::scope(|s| {
            s.spawn(|| {
                topology::bind_current_thread(0);
                let b2 = pool.take_empty(256);
                assert_eq!(b2.vec.capacity(), cap, "cross-core free came home to the origin shelf");
            });
        });
        let st = pool.stats();
        assert_eq!((st.local_hits, st.steals, st.misses), (1, 0, 1));
    }

    #[test]
    fn orphaned_surplus_is_stolen() {
        // Surplus storage shelved on core 1 (taken and freed there) is
        // found by core 0's steal sweep once core 0's own shelf is dry;
        // the victim's last buffer is left alone (stealing it would
        // just move the hole to core 1).
        let pool = BufPool::new(BufPoolConfig { enabled: true, max_per_class: 8, stripes: 2 });
        std::thread::scope(|s| {
            s.spawn(|| {
                topology::bind_current_thread(1);
                let a = pool.take_len(256);
                let b = pool.take_len(256);
                drop((a, b)); // core 1's shelf now holds two buffers
            });
        });
        std::thread::scope(|s| {
            s.spawn(|| {
                topology::bind_current_thread(0);
                let _stolen = pool.take_empty(256); // surplus: stolen
                let _alloced = pool.take_empty(256); // last buffer: refused
            });
        });
        let st = pool.stats();
        assert_eq!((st.local_hits, st.steals, st.misses), (0, 1, 3));
    }

    #[test]
    fn concurrent_take_put() {
        let pool = BufPool::new(BufPoolConfig::default());
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let pool = pool.clone();
                std::thread::spawn(move || {
                    for i in 0..1000usize {
                        let mut b = pool.take_len(64 + (i % 512));
                        b[0] = i as u8;
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let s = pool.stats();
        assert_eq!(s.hits + s.misses, 4000);
        assert!(s.hits > 0);
    }
}
