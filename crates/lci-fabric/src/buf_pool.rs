//! Size-classed recycled byte-buffer pool.
//!
//! The paper's packet pool (§4.1.2) exists so the critical path never
//! touches malloc; this module extends the same discipline to every
//! *staging* buffer the fabric and the LCI runtime allocate per
//! operation: `WirePayload::Heap` send staging, coalesced-frame
//! aggregation buffers, rendezvous gather-scratch slots, and the
//! unexpected-rendezvous bounce buffer. Buffers are recycled through
//! power-of-two size-class shelves guarded by leaf spinlocks (never
//! held while another lock is taken, so cross-device returns — a
//! receiver dropping a sender-staged payload — cannot deadlock).
//!
//! A [`PoolBuf`] carries an `Arc` back to its owning pool and returns
//! its storage on drop; [`PoolBuf::detached`] wraps a plain vector with
//! no recycling for the ablation opt-out and for oversize payloads.
//! Hit/miss/recycled-byte counters surface through
//! [`BufPoolStats`] and the LCI `DeviceStats` overlay.

use crate::sync::SpinLock;
use crate::types::{WirePayload, INLINE_MAX};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Smallest recycled size class, in bytes.
pub const MIN_CLASS: usize = 128;
/// Largest recycled size class, in bytes; bigger buffers are not pooled.
pub const MAX_CLASS: usize = 1 << 20;
/// Number of power-of-two shelves between [`MIN_CLASS`] and [`MAX_CLASS`].
const NCLASSES: usize = (MAX_CLASS / MIN_CLASS).trailing_zeros() as usize + 1;

/// Capacity of the size class with index `idx`.
#[inline]
fn class_size(idx: usize) -> usize {
    MIN_CLASS << idx
}

/// Index of the smallest class holding `len` bytes; `None` when `len`
/// exceeds [`MAX_CLASS`].
#[inline]
fn class_of(len: usize) -> Option<usize> {
    if len > MAX_CLASS {
        return None;
    }
    let c = len.next_power_of_two().max(MIN_CLASS);
    Some((c / MIN_CLASS).trailing_zeros() as usize)
}

/// Buffer-pool configuration (a [`DeviceConfig`](crate::DeviceConfig)
/// field).
#[derive(Clone, Copy, Debug)]
pub struct BufPoolConfig {
    /// Master switch; when off every request returns a detached (heap,
    /// non-recycled) buffer — the ablation baseline.
    pub enabled: bool,
    /// Maximum buffers kept per size class; returns past this bound are
    /// dropped (freed) instead of shelved.
    pub max_per_class: usize,
}

impl Default for BufPoolConfig {
    fn default() -> Self {
        Self { enabled: true, max_per_class: 64 }
    }
}

/// Point-in-time pool counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BufPoolStats {
    /// Requests satisfied from a shelf (no allocation).
    pub hits: u64,
    /// Requests that had to allocate (cold shelf, oversize, or pool
    /// disabled).
    pub misses: u64,
    /// Bytes of capacity returned to shelves for reuse.
    pub recycled_bytes: u64,
}

struct PoolShared {
    shelves: [SpinLock<Vec<Vec<u8>>>; NCLASSES],
    max_per_class: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    recycled_bytes: AtomicU64,
}

impl PoolShared {
    /// Returns `vec`'s storage to its class shelf (or frees it when the
    /// shelf is full or the capacity shrank below the class size).
    fn put(&self, class: usize, mut vec: Vec<u8>) {
        if vec.capacity() < class_size(class) {
            return;
        }
        let mut shelf = self.shelves[class].lock();
        if shelf.len() < self.max_per_class {
            vec.clear();
            shelf.push(vec);
            self.recycled_bytes.fetch_add(class_size(class) as u64, Ordering::Relaxed);
        }
    }
}

/// A size-classed recycled byte-buffer pool. Cheap to clone (a shared
/// handle); all clones feed the same shelves.
#[derive(Clone)]
pub struct BufPool {
    shared: Arc<PoolShared>,
    enabled: bool,
}

impl BufPool {
    /// Creates a pool with `cfg`.
    pub fn new(cfg: BufPoolConfig) -> Self {
        Self {
            shared: Arc::new(PoolShared {
                shelves: std::array::from_fn(|_| SpinLock::new(Vec::new())),
                max_per_class: cfg.max_per_class.max(1),
                hits: AtomicU64::new(0),
                misses: AtomicU64::new(0),
                recycled_bytes: AtomicU64::new(0),
            }),
            enabled: cfg.enabled,
        }
    }

    /// Whether buffers are actually recycled (false under the ablation
    /// opt-out: every request allocates and every return frees).
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// An empty buffer with capacity for at least `len` bytes.
    pub fn take_empty(&self, len: usize) -> PoolBuf {
        let class = if self.enabled { class_of(len) } else { None };
        let Some(class) = class else {
            self.shared.misses.fetch_add(1, Ordering::Relaxed);
            return PoolBuf::detached(Vec::with_capacity(len));
        };
        let recycled = self.shared.shelves[class].lock().pop();
        let vec = match recycled {
            Some(v) => {
                self.shared.hits.fetch_add(1, Ordering::Relaxed);
                v
            }
            None => {
                self.shared.misses.fetch_add(1, Ordering::Relaxed);
                Vec::with_capacity(class_size(class))
            }
        };
        PoolBuf { vec, class, pool: Some(self.shared.clone()) }
    }

    /// A zero-filled buffer of exactly `len` bytes.
    pub fn take_len(&self, len: usize) -> PoolBuf {
        let mut b = self.take_empty(len);
        b.vec.resize(len, 0);
        b
    }

    /// A recycled copy of `src`.
    pub fn stage_copy(&self, src: &[u8]) -> PoolBuf {
        let mut b = self.take_empty(src.len());
        b.vec.extend_from_slice(src);
        b
    }

    /// Stages `src` as a wire payload: empty → `None`, small → `Inline`,
    /// larger → a recycled `Heap` buffer.
    pub fn stage(&self, src: &[u8]) -> WirePayload {
        if src.is_empty() {
            WirePayload::None
        } else if src.len() <= INLINE_MAX {
            let mut data = [0u8; INLINE_MAX];
            data[..src.len()].copy_from_slice(src);
            WirePayload::Inline { data, len: src.len() as u8 }
        } else {
            WirePayload::Heap(self.stage_copy(src))
        }
    }

    /// Current counters.
    pub fn stats(&self) -> BufPoolStats {
        BufPoolStats {
            hits: self.shared.hits.load(Ordering::Relaxed),
            misses: self.shared.misses.load(Ordering::Relaxed),
            recycled_bytes: self.shared.recycled_bytes.load(Ordering::Relaxed),
        }
    }
}

impl std::fmt::Debug for BufPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BufPool")
            .field("enabled", &self.enabled)
            .field("stats", &self.stats())
            .finish()
    }
}

/// A byte buffer that returns its storage to its owning [`BufPool`] on
/// drop. Derefs to `[u8]`; grow through [`vec_mut`](Self::vec_mut).
pub struct PoolBuf {
    vec: Vec<u8>,
    /// Size-class index; unused when `pool` is `None`.
    class: usize,
    pool: Option<Arc<PoolShared>>,
}

impl PoolBuf {
    /// Wraps a plain vector with no recycling (dropped storage is freed).
    pub fn detached(vec: Vec<u8>) -> Self {
        Self { vec, class: 0, pool: None }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.vec.len()
    }

    /// Whether the buffer holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.vec.is_empty()
    }

    /// Mutable access to the backing vector (append, resize, clear).
    pub fn vec_mut(&mut self) -> &mut Vec<u8> {
        &mut self.vec
    }

    /// Steals the backing vector, opting its storage out of recycling.
    pub fn into_vec(mut self) -> Vec<u8> {
        self.pool = None;
        std::mem::take(&mut self.vec)
    }
}

impl std::ops::Deref for PoolBuf {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.vec
    }
}

impl std::ops::DerefMut for PoolBuf {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.vec
    }
}

impl AsRef<[u8]> for PoolBuf {
    fn as_ref(&self) -> &[u8] {
        &self.vec
    }
}

impl From<Vec<u8>> for PoolBuf {
    fn from(vec: Vec<u8>) -> Self {
        PoolBuf::detached(vec)
    }
}

impl Clone for PoolBuf {
    /// Deep copy, detached from any pool (clones are rare and cold).
    fn clone(&self) -> Self {
        PoolBuf::detached(self.vec.clone())
    }
}

impl std::fmt::Debug for PoolBuf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PoolBuf")
            .field("len", &self.vec.len())
            .field("pooled", &self.pool.is_some())
            .finish()
    }
}

impl Drop for PoolBuf {
    fn drop(&mut self) {
        if let Some(pool) = self.pool.take() {
            pool.put(self.class, std::mem::take(&mut self.vec));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_math() {
        assert_eq!(class_of(0), Some(0));
        assert_eq!(class_of(1), Some(0));
        assert_eq!(class_of(128), Some(0));
        assert_eq!(class_of(129), Some(1));
        assert_eq!(class_of(256), Some(1));
        assert_eq!(class_of(MAX_CLASS), Some(NCLASSES - 1));
        assert_eq!(class_of(MAX_CLASS + 1), None);
        for idx in 0..NCLASSES {
            assert_eq!(class_of(class_size(idx)), Some(idx));
        }
    }

    #[test]
    fn recycle_round_trip() {
        let pool = BufPool::new(BufPoolConfig::default());
        let b = pool.stage_copy(&[7u8; 300]);
        assert_eq!(&b[..], &[7u8; 300]);
        let cap = b.vec.capacity();
        drop(b); // returns the 512-class buffer
        let b2 = pool.take_empty(400);
        assert_eq!(b2.vec.capacity(), cap, "same-class storage is reused");
        let s = pool.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
        assert_eq!(s.recycled_bytes, 512);
    }

    #[test]
    fn take_len_zero_fills_recycled_storage() {
        let pool = BufPool::new(BufPoolConfig::default());
        let mut b = pool.take_len(200);
        b.copy_from_slice(&[0xAB; 200]);
        drop(b);
        let b2 = pool.take_len(200);
        assert_eq!(&b2[..], &[0u8; 200], "recycled buffer is re-zeroed");
    }

    #[test]
    fn oversize_and_disabled_are_detached() {
        let pool = BufPool::new(BufPoolConfig::default());
        let big = pool.take_empty(MAX_CLASS + 1);
        assert!(big.pool.is_none());
        drop(big);
        let off = BufPool::new(BufPoolConfig { enabled: false, ..Default::default() });
        let b = off.stage_copy(&[1u8; 256]);
        assert!(b.pool.is_none());
        drop(b);
        assert_eq!(off.stats().hits, 0);
        assert_eq!(off.stats().recycled_bytes, 0);
    }

    #[test]
    fn shelf_bound_is_respected() {
        let pool = BufPool::new(BufPoolConfig { enabled: true, max_per_class: 2 });
        let bufs: Vec<_> = (0..4).map(|_| pool.take_len(128)).collect();
        drop(bufs);
        // Only two returns were shelved.
        assert_eq!(pool.stats().recycled_bytes, 2 * 128);
        let _a = pool.take_len(128);
        let _b = pool.take_len(128);
        let _c = pool.take_len(128);
        assert_eq!(pool.stats().hits, 2);
    }

    #[test]
    fn into_vec_opts_out_of_recycling() {
        let pool = BufPool::new(BufPoolConfig::default());
        let b = pool.stage_copy(&[3u8; 200]);
        let v = b.into_vec();
        assert_eq!(v.len(), 200);
        assert_eq!(pool.stats().recycled_bytes, 0);
    }

    #[test]
    fn stage_picks_inline_and_heap() {
        let pool = BufPool::new(BufPoolConfig::default());
        assert!(matches!(pool.stage(&[]), WirePayload::None));
        assert!(matches!(pool.stage(&[0u8; 64]), WirePayload::Inline { .. }));
        assert!(matches!(pool.stage(&[0u8; 65]), WirePayload::Heap(_)));
    }

    #[test]
    fn concurrent_take_put() {
        let pool = BufPool::new(BufPoolConfig::default());
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let pool = pool.clone();
                std::thread::spawn(move || {
                    for i in 0..1000usize {
                        let mut b = pool.take_len(64 + (i % 512));
                        b[0] = i as u8;
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let s = pool.stats();
        assert_eq!(s.hits + s.misses, 4000);
        assert!(s.hits > 0);
    }
}
