//! Multi-process bootstrap: an environment-variable rendezvous plus a
//! launcher that re-executes the current binary as the worker ranks,
//! for both real transports (shm segment, tcp mesh).
//!
//! The protocol is deliberately tiny (the PMI of this repo):
//!
//! 1. The launcher creates the rendezvous resource — a fully-sized
//!    segment file (under `/dev/shm` when present) for shm, or a root
//!    listener socket for tcp — and spawns `nranks` copies of the
//!    current executable with `LCI_RANK`, `LCI_NRANKS`, and either
//!    `LCI_SHM_PATH` or `LCI_TCP_ROOT` set.
//! 2. Each child calls [`launch`] (or [`from_env`]) and attaches: shm
//!    children map the file and block on the attach barrier; tcp
//!    children dial the root, exchange mesh listener addresses through
//!    it, and build the full socket mesh.
//! 3. The launcher waits for the children and reports their exit codes.
//!    A per-child reaper marks the peer dead (shm: `PEER_DIED` slot;
//!    tcp: the mesh sockets EOF on their own) so survivors observe the
//!    death instead of hanging.

use crate::fabric::Fabric;
#[cfg(unix)]
use crate::shm::os;
#[cfg(unix)]
use crate::shm::segment::{geometry_from_env, ShmSegment, PEER_DIED};
use std::ffi::OsString;
use std::net::SocketAddr;
#[cfg(unix)]
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Environment variable carrying the segment path to children (shm).
pub const ENV_PATH: &str = "LCI_SHM_PATH";
/// Environment variable carrying the root-service address (tcp).
pub const ENV_TCP_ROOT: &str = "LCI_TCP_ROOT";
/// Environment variable overriding the host tcp mesh listeners bind
/// (default loopback; set to a routable address for real cross-host
/// jobs).
pub const ENV_TCP_HOST: &str = "LCI_TCP_HOST";
/// Environment variable carrying the child's rank.
pub const ENV_RANK: &str = "LCI_RANK";
/// Environment variable carrying the job size.
pub const ENV_NRANKS: &str = "LCI_NRANKS";
/// Environment variable selecting a transport by name (`sim-ibv`,
/// `sim-ofi`, `shm`, `tcp`); read by the higher layers, re-exported here
/// so the whole rendezvous contract lives in one module.
pub const ENV_TRANSPORT: &str = "LCI_TRANSPORT";

/// How long children wait for the rendezvous and for their peers.
const ATTACH_TIMEOUT: Duration = Duration::from_secs(30);

/// What went wrong while joining (or parsing) a multi-process job.
/// Every variant is a *typed* surface for a condition that previously
/// panicked or hid inside an opaque I/O error.
#[derive(Debug)]
pub enum BootstrapError {
    /// A rendezvous variable the selected mode requires is absent.
    MissingEnv { var: &'static str },
    /// A rendezvous variable is present but unparseable.
    MalformedEnv { var: &'static str, value: String },
    /// `LCI_RANK` does not fit the job size.
    RankOutOfRange { rank: usize, nranks: usize },
    /// A peer (or the rendezvous resource) did not appear in time.
    AttachTimeout { what: &'static str },
    /// The platform cannot run this mode at all.
    Unsupported(&'static str),
    /// Everything else (socket/file errors during attach).
    Io(std::io::Error),
}

impl std::fmt::Display for BootstrapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BootstrapError::MissingEnv { var } => {
                write!(f, "bootstrap: required environment variable {var} is not set")
            }
            BootstrapError::MalformedEnv { var, value } => {
                write!(f, "bootstrap: environment variable {var} has unparseable value {value:?}")
            }
            BootstrapError::RankOutOfRange { rank, nranks } => {
                write!(f, "bootstrap: rank {rank} out of range for a {nranks}-rank job")
            }
            BootstrapError::AttachTimeout { what } => {
                write!(f, "bootstrap: timed out waiting for {what}")
            }
            BootstrapError::Unsupported(what) => write!(f, "bootstrap: {what}"),
            BootstrapError::Io(e) => write!(f, "bootstrap: {e}"),
        }
    }
}

impl std::error::Error for BootstrapError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BootstrapError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for BootstrapError {
    fn from(e: std::io::Error) -> Self {
        if e.kind() == std::io::ErrorKind::TimedOut {
            BootstrapError::AttachTimeout { what: "a bootstrap I/O operation" }
        } else {
            BootstrapError::Io(e)
        }
    }
}

impl From<BootstrapError> for std::io::Error {
    fn from(e: BootstrapError) -> Self {
        match e {
            BootstrapError::Io(io) => io,
            BootstrapError::MissingEnv { .. } | BootstrapError::MalformedEnv { .. } => {
                std::io::Error::new(std::io::ErrorKind::InvalidInput, e.to_string())
            }
            BootstrapError::RankOutOfRange { .. } => {
                std::io::Error::new(std::io::ErrorKind::InvalidInput, e.to_string())
            }
            BootstrapError::AttachTimeout { .. } => {
                std::io::Error::new(std::io::ErrorKind::TimedOut, e.to_string())
            }
            BootstrapError::Unsupported(_) => {
                std::io::Error::new(std::io::ErrorKind::Unsupported, e.to_string())
            }
        }
    }
}

/// The rendezvous a child's environment describes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Rendezvous {
    /// Attach the named shm segment as `rank`.
    Shm { path: String, rank: usize },
    /// Dial the tcp root service as `rank` of `nranks`.
    Tcp { root: SocketAddr, rank: usize, nranks: usize },
}

fn env_usize(
    lookup: &impl Fn(&str) -> Option<String>,
    var: &'static str,
) -> Result<usize, BootstrapError> {
    let v = lookup(var).ok_or(BootstrapError::MissingEnv { var })?;
    v.trim().parse().map_err(|_| BootstrapError::MalformedEnv { var, value: v })
}

/// Decides which rendezvous (if any) an environment describes, with
/// every malformation typed. Pure over `lookup` so the decision table is
/// unit-testable without touching the process environment.
pub fn parse_rendezvous(
    lookup: impl Fn(&str) -> Option<String>,
) -> Result<Option<Rendezvous>, BootstrapError> {
    if let Some(path) = lookup(ENV_PATH) {
        let rank = env_usize(&lookup, ENV_RANK)?;
        return Ok(Some(Rendezvous::Shm { path, rank }));
    }
    if let Some(root) = lookup(ENV_TCP_ROOT) {
        let addr: SocketAddr = root
            .trim()
            .parse()
            .map_err(|_| BootstrapError::MalformedEnv { var: ENV_TCP_ROOT, value: root })?;
        let rank = env_usize(&lookup, ENV_RANK)?;
        let nranks = env_usize(&lookup, ENV_NRANKS)?;
        if rank >= nranks {
            return Err(BootstrapError::RankOutOfRange { rank, nranks });
        }
        return Ok(Some(Rendezvous::Tcp { root: addr, rank, nranks }));
    }
    Ok(None)
}

/// The outcome of [`launch`]: either this process is one of the worker
/// ranks, or it was the launcher and the whole job has finished.
pub enum Launch {
    /// This process is a worker rank; run the job body.
    Child(ChildCtx),
    /// This process spawned the workers and they have all exited.
    Parent(ParentReport),
}

/// Worker-side context: an attached [`Fabric`] whose other ranks are
/// separate OS processes.
pub struct ChildCtx {
    /// This process's rank.
    pub rank: usize,
    /// Total ranks in the job.
    pub nranks: usize,
    /// The attached fabric (OOB collectives route through the segment
    /// or the tcp root service).
    pub fabric: Arc<Fabric>,
}

/// Launcher-side report.
pub struct ParentReport {
    /// Exit codes in rank order (`-1` for signal-killed children).
    pub exit_codes: Vec<i32>,
}

impl ParentReport {
    /// Whether every rank exited 0.
    pub fn all_ok(&self) -> bool {
        self.exit_codes.iter().all(|&c| c == 0)
    }
}

/// Attaches to a spawner-provided rendezvous if one is present in the
/// environment; `Ok(None)` when this process was started directly.
pub fn from_env() -> Result<Option<ChildCtx>, BootstrapError> {
    #[cfg(unix)]
    {
        match parse_rendezvous(|k| std::env::var(k).ok())? {
            None => Ok(None),
            Some(Rendezvous::Shm { path, rank }) => attach_shm(&path, rank).map(Some),
            Some(Rendezvous::Tcp { root, rank, nranks }) => {
                attach_tcp(root, rank, nranks).map(Some)
            }
        }
    }
    #[cfg(not(unix))]
    {
        match parse_rendezvous(|k| std::env::var(k).ok())? {
            None => Ok(None),
            Some(_) => {
                Err(BootstrapError::Unsupported("multi-process transports require a unix host"))
            }
        }
    }
}

#[cfg(unix)]
fn attach_shm(path: &str, rank: usize) -> Result<ChildCtx, BootstrapError> {
    let seg = Arc::new(
        ShmSegment::attach_file(PathBuf::from(path).as_path(), ATTACH_TIMEOUT)
            .map_err(map_attach_err("the shm segment file"))?,
    );
    let nranks = seg.nranks();
    if rank >= nranks {
        return Err(BootstrapError::RankOutOfRange { rank, nranks });
    }
    seg.attach(rank);
    seg.attach_barrier(ATTACH_TIMEOUT).map_err(map_attach_err("the shm attach barrier"))?;
    Ok(ChildCtx { rank, nranks, fabric: Fabric::attached(seg, rank) })
}

#[cfg(unix)]
fn map_attach_err(what: &'static str) -> impl Fn(std::io::Error) -> BootstrapError {
    move |e| {
        if e.kind() == std::io::ErrorKind::TimedOut {
            BootstrapError::AttachTimeout { what }
        } else {
            BootstrapError::Io(e)
        }
    }
}

/// Builds the tcp mesh: dial the root, allgather listener addresses,
/// then connect one socket per unordered rank pair (this rank dials
/// every lower rank; higher ranks dial us).
#[cfg(unix)]
fn attach_tcp(root: SocketAddr, rank: usize, nranks: usize) -> Result<ChildCtx, BootstrapError> {
    use crate::tcp::oob::OobClient;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::time::Instant;

    let deadline = Instant::now() + ATTACH_TIMEOUT;
    let oob = OobClient::connect(root, rank, nranks, deadline)
        .map_err(map_attach_err("the tcp root service"))?;
    let host = std::env::var(ENV_TCP_HOST).unwrap_or_else(|_| "127.0.0.1".into());
    let listener = TcpListener::bind((host.as_str(), 0)).map_err(BootstrapError::Io)?;
    let my_addr = listener.local_addr().map_err(BootstrapError::Io)?;
    let blobs = oob
        .allgather(my_addr.to_string().as_bytes())
        .map_err(map_attach_err("the tcp address exchange"))?;
    let mut addrs = Vec::with_capacity(nranks);
    for b in &blobs {
        let s = std::str::from_utf8(b).map_err(|_| {
            BootstrapError::Io(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "tcp mesh address is not utf-8",
            ))
        })?;
        addrs.push(s.parse::<SocketAddr>().map_err(|_| {
            BootstrapError::Io(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("tcp mesh address {s:?} is unparseable"),
            ))
        })?);
    }
    let mut conns: Vec<Option<TcpStream>> = (0..nranks).map(|_| None).collect();
    // Dial every lower rank, identifying ourselves with a 4-byte rank.
    for (peer, addr) in addrs.iter().enumerate().take(rank) {
        let mut s = loop {
            match TcpStream::connect(addr) {
                Ok(s) => break s,
                Err(_) if Instant::now() < deadline => std::thread::sleep(Duration::from_millis(5)),
                Err(e) => return Err(BootstrapError::Io(e)),
            }
        };
        s.set_nodelay(true).map_err(BootstrapError::Io)?;
        s.write_all(&(rank as u32).to_le_bytes()).map_err(BootstrapError::Io)?;
        conns[peer] = Some(s);
    }
    // Accept every higher rank.
    listener.set_nonblocking(true).map_err(BootstrapError::Io)?;
    let mut need = nranks - rank - 1;
    while need > 0 {
        if Instant::now() >= deadline {
            return Err(BootstrapError::AttachTimeout { what: "tcp mesh peers" });
        }
        match listener.accept() {
            Ok((mut s, _)) => {
                // Accepted sockets are blocking regardless of the
                // listener flag; bound the hello read anyway.
                s.set_nonblocking(false).map_err(BootstrapError::Io)?;
                s.set_read_timeout(Some(Duration::from_secs(5))).map_err(BootstrapError::Io)?;
                let mut hello = [0u8; 4];
                if s.read_exact(&mut hello).is_err() {
                    continue; // stray connection: drop it
                }
                let peer = u32::from_le_bytes(hello) as usize;
                if peer <= rank || peer >= nranks || conns[peer].is_some() {
                    continue;
                }
                s.set_read_timeout(None).map_err(BootstrapError::Io)?;
                conns[peer] = Some(s);
                need -= 1;
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(e) => return Err(BootstrapError::Io(e)),
        }
    }
    // Everyone's mesh is complete before any data-path frame flows.
    oob.barrier().map_err(map_attach_err("the tcp mesh barrier"))?;
    Ok(ChildCtx { rank, nranks, fabric: Fabric::attached_tcp(conns, rank, nranks, oob) })
}

static SEG_COUNTER: AtomicU64 = AtomicU64::new(0);

#[cfg(unix)]
fn segment_path() -> PathBuf {
    let dir = if cfg!(target_os = "linux") && PathBuf::from("/dev/shm").is_dir() {
        PathBuf::from("/dev/shm")
    } else {
        std::env::temp_dir()
    };
    dir.join(format!(
        "lci-seg-{}-{}",
        std::process::id(),
        SEG_COUNTER.fetch_add(1, Ordering::Relaxed)
    ))
}

/// Spawns `nranks` copies of the current executable with `child_args`,
/// connected through a fresh rendezvous, and waits for them. The
/// transport is shm unless `LCI_TRANSPORT=tcp` is set in this
/// (launcher) process's environment.
///
/// `timeout` bounds the whole job; on expiry the remaining children are
/// SIGKILLed (and reported as `-1`).
pub fn spawn_local(
    nranks: usize,
    child_args: &[OsString],
    timeout: Duration,
) -> std::io::Result<ParentReport> {
    #[cfg(not(unix))]
    {
        let _ = (nranks, child_args, timeout);
        return Err(std::io::Error::new(
            std::io::ErrorKind::Unsupported,
            "multi-process transports require a unix host",
        ));
    }
    #[cfg(unix)]
    {
        let tcp = std::env::var(ENV_TRANSPORT).is_ok_and(|v| v.trim() == "tcp");
        if tcp {
            spawn_local_tcp(nranks, child_args, timeout)
        } else {
            spawn_local_unix(nranks, child_args, timeout)
        }
    }
}

/// Waits for every reaper to report, SIGKILLing stragglers at the
/// deadline. Shared by the shm and tcp launchers.
#[cfg(unix)]
fn collect_exit_codes(
    rx: std::sync::mpsc::Receiver<(usize, i32)>,
    pids: &[u64],
    nranks: usize,
    timeout: Duration,
) -> Vec<i32> {
    let deadline = std::time::Instant::now() + timeout;
    let mut codes = vec![i32::MIN; nranks];
    let mut pending = nranks;
    while pending > 0 {
        let left = deadline.saturating_duration_since(std::time::Instant::now());
        match rx.recv_timeout(left) {
            Ok((rank, code)) => {
                codes[rank] = code;
                pending -= 1;
            }
            Err(_) => {
                for (rank, &pid) in pids.iter().enumerate() {
                    if codes[rank] == i32::MIN {
                        os::kill_process(pid);
                        codes[rank] = -1;
                    }
                }
                break;
            }
        }
    }
    for c in codes.iter_mut() {
        if *c == i32::MIN {
            *c = -1;
        }
    }
    codes
}

#[cfg(unix)]
fn spawn_local_unix(
    nranks: usize,
    child_args: &[OsString],
    timeout: Duration,
) -> std::io::Result<ParentReport> {
    let path = segment_path();
    let seg = Arc::new(ShmSegment::create_file(&path, nranks, geometry_from_env())?);
    let exe = std::env::current_exe()?;
    let mut pids = Vec::with_capacity(nranks);
    let (tx, rx) = std::sync::mpsc::channel::<(usize, i32)>();
    for rank in 0..nranks {
        let child = std::process::Command::new(&exe)
            .args(child_args)
            .env(ENV_PATH, &path)
            .env(ENV_RANK, rank.to_string())
            .env(ENV_NRANKS, nranks.to_string())
            .spawn();
        let mut child = match child {
            Ok(c) => c,
            Err(e) => {
                seg.unlink();
                for &pid in &pids {
                    os::kill_process(pid);
                }
                return Err(e);
            }
        };
        pids.push(child.id() as u64);
        // Reaper: wait for the child and mark its slot dead if it never
        // detached cleanly (the CAS inside only fires from ATTACHED, so
        // a clean exit — slot already EXITED — is left alone).
        let seg = seg.clone();
        let tx = tx.clone();
        std::thread::spawn(move || {
            let code = match child.wait() {
                Ok(st) => st.code().unwrap_or(-1),
                Err(_) => -1,
            };
            seg.set_peer_state(rank, PEER_DIED);
            let _ = tx.send((rank, code));
        });
    }
    drop(tx);
    // Unlink as soon as everyone is attached; if a child dies first the
    // barrier times out and we fall through to the unconditional unlink.
    if seg.attach_barrier(ATTACH_TIMEOUT).is_ok() {
        seg.unlink();
    }
    let codes = collect_exit_codes(rx, &pids, nranks, timeout);
    seg.unlink();
    Ok(ParentReport { exit_codes: codes })
}

/// The tcp launcher: hosts the root service in this process and hands
/// children its address. No filesystem artifacts — the root listener
/// closes with its accept thread, and every mesh socket dies with the
/// children.
#[cfg(unix)]
fn spawn_local_tcp(
    nranks: usize,
    child_args: &[OsString],
    timeout: Duration,
) -> std::io::Result<ParentReport> {
    use crate::tcp::oob::RootServer;
    let accept_deadline = std::time::Instant::now() + ATTACH_TIMEOUT;
    let root = RootServer::spawn("127.0.0.1", nranks, accept_deadline)?;
    let root_addr = root.addr().to_string();
    let exe = std::env::current_exe()?;
    let mut pids = Vec::with_capacity(nranks);
    let (tx, rx) = std::sync::mpsc::channel::<(usize, i32)>();
    for rank in 0..nranks {
        let child = std::process::Command::new(&exe)
            .args(child_args)
            .env(ENV_TCP_ROOT, &root_addr)
            .env(ENV_RANK, rank.to_string())
            .env(ENV_NRANKS, nranks.to_string())
            .env(ENV_TRANSPORT, "tcp")
            .spawn();
        let mut child = match child {
            Ok(c) => c,
            Err(e) => {
                for &pid in &pids {
                    os::kill_process(pid);
                }
                return Err(e);
            }
        };
        pids.push(child.id() as u64);
        // Reaper: a dying child EOFs its root and mesh sockets, which is
        // all the death notification tcp peers need.
        let tx = tx.clone();
        std::thread::spawn(move || {
            let code = match child.wait() {
                Ok(st) => st.code().unwrap_or(-1),
                Err(_) => -1,
            };
            let _ = tx.send((rank, code));
        });
    }
    drop(tx);
    let codes = collect_exit_codes(rx, &pids, nranks, timeout);
    Ok(ParentReport { exit_codes: codes })
}

/// One-call harness: in a freshly-started process, spawns the job; in a
/// spawned child, attaches and returns the worker context. Test and
/// example code writes
///
/// ```ignore
/// match bootstrap::launch(2, &args, timeout)? {
///     Launch::Child(ctx) => run_rank(ctx),
///     Launch::Parent(report) => assert!(report.all_ok()),
/// }
/// ```
pub fn launch(
    nranks: usize,
    child_args: &[OsString],
    timeout: Duration,
) -> std::io::Result<Launch> {
    if let Some(ctx) = from_env()? {
        return Ok(Launch::Child(ctx));
    }
    spawn_local(nranks, child_args, timeout).map(Launch::Parent)
}

/// The argument vector that re-runs exactly one libtest test in a child
/// process: `<name> --exact --nocapture --test-threads=1`.
pub fn test_child_args(test_name: &str) -> Vec<OsString> {
    vec![
        OsString::from(test_name),
        OsString::from("--exact"),
        OsString::from("--nocapture"),
        OsString::from("--test-threads=1"),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn env(pairs: &[(&'static str, &str)]) -> impl Fn(&str) -> Option<String> {
        let map: HashMap<String, String> =
            pairs.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect();
        move |k: &str| map.get(k).cloned()
    }

    #[test]
    fn empty_env_is_no_rendezvous() {
        assert_eq!(parse_rendezvous(env(&[])).unwrap(), None);
    }

    #[test]
    fn shm_env_parses() {
        let r = parse_rendezvous(env(&[(ENV_PATH, "/dev/shm/lci-seg-1"), (ENV_RANK, "2")]))
            .unwrap()
            .expect("rendezvous");
        assert_eq!(r, Rendezvous::Shm { path: "/dev/shm/lci-seg-1".into(), rank: 2 });
    }

    #[test]
    fn shm_missing_rank_is_typed() {
        let e = parse_rendezvous(env(&[(ENV_PATH, "/tmp/seg")])).unwrap_err();
        assert!(matches!(e, BootstrapError::MissingEnv { var } if var == ENV_RANK));
    }

    #[test]
    fn malformed_rank_is_typed() {
        let e = parse_rendezvous(env(&[(ENV_PATH, "/tmp/seg"), (ENV_RANK, "banana")])).unwrap_err();
        assert!(matches!(e, BootstrapError::MalformedEnv { var, .. } if var == ENV_RANK));
    }

    #[test]
    fn tcp_env_parses() {
        let r = parse_rendezvous(env(&[
            (ENV_TCP_ROOT, "127.0.0.1:5000"),
            (ENV_RANK, "1"),
            (ENV_NRANKS, "4"),
        ]))
        .unwrap()
        .expect("rendezvous");
        assert_eq!(
            r,
            Rendezvous::Tcp { root: "127.0.0.1:5000".parse().unwrap(), rank: 1, nranks: 4 }
        );
    }

    #[test]
    fn tcp_malformed_root_is_typed() {
        let e = parse_rendezvous(env(&[
            (ENV_TCP_ROOT, "not-an-addr"),
            (ENV_RANK, "0"),
            (ENV_NRANKS, "2"),
        ]))
        .unwrap_err();
        assert!(matches!(e, BootstrapError::MalformedEnv { var, .. } if var == ENV_TCP_ROOT));
    }

    #[test]
    fn tcp_missing_nranks_is_typed() {
        let e = parse_rendezvous(env(&[(ENV_TCP_ROOT, "127.0.0.1:5000"), (ENV_RANK, "0")]))
            .unwrap_err();
        assert!(matches!(e, BootstrapError::MissingEnv { var } if var == ENV_NRANKS));
    }

    #[test]
    fn tcp_rank_out_of_range_is_typed() {
        let e = parse_rendezvous(env(&[
            (ENV_TCP_ROOT, "127.0.0.1:5000"),
            (ENV_RANK, "4"),
            (ENV_NRANKS, "4"),
        ]))
        .unwrap_err();
        assert!(matches!(e, BootstrapError::RankOutOfRange { rank: 4, nranks: 4 }), "got {e:?}");
    }

    #[test]
    fn shm_takes_precedence_over_tcp() {
        let r = parse_rendezvous(env(&[
            (ENV_PATH, "/tmp/seg"),
            (ENV_TCP_ROOT, "127.0.0.1:5000"),
            (ENV_RANK, "0"),
            (ENV_NRANKS, "2"),
        ]))
        .unwrap()
        .expect("rendezvous");
        assert!(matches!(r, Rendezvous::Shm { .. }));
    }

    #[test]
    fn bootstrap_error_maps_to_io_kinds() {
        let e: std::io::Error = BootstrapError::MissingEnv { var: ENV_RANK }.into();
        assert_eq!(e.kind(), std::io::ErrorKind::InvalidInput);
        let e: std::io::Error = BootstrapError::AttachTimeout { what: "peers" }.into();
        assert_eq!(e.kind(), std::io::ErrorKind::TimedOut);
        let e: std::io::Error =
            BootstrapError::Unsupported("multi-process transports require a unix host").into();
        assert_eq!(e.kind(), std::io::ErrorKind::Unsupported);
    }
}
