//! Multi-process bootstrap for the shared-memory transport: a named
//! segment plus an environment-variable rendezvous, and a launcher that
//! re-executes the current binary as the worker ranks.
//!
//! The protocol is deliberately tiny (the PMI of this repo):
//!
//! 1. The launcher creates a fully-sized segment file (under `/dev/shm`
//!    when present) and spawns `nranks` copies of the current executable
//!    with `LCI_SHM_PATH`, `LCI_RANK`, `LCI_NRANKS` set.
//! 2. Each child calls [`launch`] (or [`from_env`]), attaches the file,
//!    marks its peer slot attached, and blocks on the attach barrier in
//!    the segment header until every rank has arrived.
//! 3. The launcher waits for the same barrier, unlinks the file (the
//!    mappings stay valid), then waits for the children and reports
//!    their exit codes. A per-child reaper marks the peer slot
//!    `PEER_DIED` if the child exits without detaching cleanly, so
//!    survivors observe the death instead of hanging.

use crate::fabric::Fabric;
use crate::shm::os;
use crate::shm::segment::{geometry_from_env, ShmSegment, PEER_DIED};
use std::ffi::OsString;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Environment variable carrying the segment path to children.
pub const ENV_PATH: &str = "LCI_SHM_PATH";
/// Environment variable carrying the child's rank.
pub const ENV_RANK: &str = "LCI_RANK";
/// Environment variable carrying the job size.
pub const ENV_NRANKS: &str = "LCI_NRANKS";
/// Environment variable selecting a transport by name (`sim-ibv`,
/// `sim-ofi`, `shm`); read by the higher layers, re-exported here so the
/// whole rendezvous contract lives in one module.
pub const ENV_TRANSPORT: &str = "LCI_TRANSPORT";

/// How long children wait for the segment and for their peers.
const ATTACH_TIMEOUT: Duration = Duration::from_secs(30);

/// The outcome of [`launch`]: either this process is one of the worker
/// ranks, or it was the launcher and the whole job has finished.
pub enum Launch {
    /// This process is a worker rank; run the job body.
    Child(ChildCtx),
    /// This process spawned the workers and they have all exited.
    Parent(ParentReport),
}

/// Worker-side context: an attached [`Fabric`] whose other ranks are
/// separate OS processes.
pub struct ChildCtx {
    /// This process's rank.
    pub rank: usize,
    /// Total ranks in the job.
    pub nranks: usize,
    /// The attached fabric (OOB collectives route through the segment).
    pub fabric: Arc<Fabric>,
}

/// Launcher-side report.
pub struct ParentReport {
    /// Exit codes in rank order (`-1` for signal-killed children).
    pub exit_codes: Vec<i32>,
}

impl ParentReport {
    /// Whether every rank exited 0.
    pub fn all_ok(&self) -> bool {
        self.exit_codes.iter().all(|&c| c == 0)
    }
}

/// Attaches to a spawner-provided segment if the rendezvous environment
/// is present; `Ok(None)` when this process was started directly.
pub fn from_env() -> std::io::Result<Option<ChildCtx>> {
    #[cfg(unix)]
    {
        let Ok(path) = std::env::var(ENV_PATH) else { return Ok(None) };
        let rank: usize = std::env::var(ENV_RANK)
            .ok()
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidInput, "bad LCI_RANK"))?;
        let seg = Arc::new(ShmSegment::attach_file(PathBuf::from(path).as_path(), ATTACH_TIMEOUT)?);
        seg.attach(rank);
        seg.attach_barrier(ATTACH_TIMEOUT)?;
        let nranks = seg.nranks();
        Ok(Some(ChildCtx { rank, nranks, fabric: Fabric::attached(seg, rank) }))
    }
    #[cfg(not(unix))]
    Ok(None)
}

static SEG_COUNTER: AtomicU64 = AtomicU64::new(0);

fn segment_path() -> PathBuf {
    let dir = if cfg!(target_os = "linux") && PathBuf::from("/dev/shm").is_dir() {
        PathBuf::from("/dev/shm")
    } else {
        std::env::temp_dir()
    };
    dir.join(format!(
        "lci-seg-{}-{}",
        std::process::id(),
        SEG_COUNTER.fetch_add(1, Ordering::Relaxed)
    ))
}

/// Spawns `nranks` copies of the current executable with `child_args`,
/// connected through a fresh named segment, and waits for them.
///
/// `timeout` bounds the whole job; on expiry the remaining children are
/// SIGKILLed (and reported as `-1`). The segment file is unlinked as
/// soon as every rank has attached, and unconditionally before this
/// returns.
pub fn spawn_local(
    nranks: usize,
    child_args: &[OsString],
    timeout: Duration,
) -> std::io::Result<ParentReport> {
    #[cfg(not(unix))]
    {
        let _ = (nranks, child_args, timeout);
        return Err(std::io::Error::new(
            std::io::ErrorKind::Unsupported,
            "multi-process shm requires a unix host",
        ));
    }
    #[cfg(unix)]
    spawn_local_unix(nranks, child_args, timeout)
}

#[cfg(unix)]
fn spawn_local_unix(
    nranks: usize,
    child_args: &[OsString],
    timeout: Duration,
) -> std::io::Result<ParentReport> {
    let path = segment_path();
    let seg = Arc::new(ShmSegment::create_file(&path, nranks, geometry_from_env())?);
    let exe = std::env::current_exe()?;
    let mut pids = Vec::with_capacity(nranks);
    let (tx, rx) = std::sync::mpsc::channel::<(usize, i32)>();
    for rank in 0..nranks {
        let child = std::process::Command::new(&exe)
            .args(child_args)
            .env(ENV_PATH, &path)
            .env(ENV_RANK, rank.to_string())
            .env(ENV_NRANKS, nranks.to_string())
            .spawn();
        let mut child = match child {
            Ok(c) => c,
            Err(e) => {
                seg.unlink();
                for &pid in &pids {
                    os::kill_process(pid);
                }
                return Err(e);
            }
        };
        pids.push(child.id() as u64);
        // Reaper: wait for the child and mark its slot dead if it never
        // detached cleanly (the CAS inside only fires from ATTACHED, so
        // a clean exit — slot already EXITED — is left alone).
        let seg = seg.clone();
        let tx = tx.clone();
        std::thread::spawn(move || {
            let code = match child.wait() {
                Ok(st) => st.code().unwrap_or(-1),
                Err(_) => -1,
            };
            seg.set_peer_state(rank, PEER_DIED);
            let _ = tx.send((rank, code));
        });
    }
    drop(tx);
    // Unlink as soon as everyone is attached; if a child dies first the
    // barrier times out and we fall through to the unconditional unlink.
    if seg.attach_barrier(ATTACH_TIMEOUT).is_ok() {
        seg.unlink();
    }
    let deadline = std::time::Instant::now() + timeout;
    let mut codes = vec![i32::MIN; nranks];
    let mut pending = nranks;
    while pending > 0 {
        let left = deadline.saturating_duration_since(std::time::Instant::now());
        match rx.recv_timeout(left) {
            Ok((rank, code)) => {
                codes[rank] = code;
                pending -= 1;
            }
            Err(_) => {
                for (rank, &pid) in pids.iter().enumerate() {
                    if codes[rank] == i32::MIN {
                        os::kill_process(pid);
                        codes[rank] = -1;
                    }
                }
                break;
            }
        }
    }
    seg.unlink();
    for c in codes.iter_mut() {
        if *c == i32::MIN {
            *c = -1;
        }
    }
    Ok(ParentReport { exit_codes: codes })
}

/// One-call harness: in a freshly-started process, spawns the job; in a
/// spawned child, attaches and returns the worker context. Test and
/// example code writes
///
/// ```ignore
/// match bootstrap::launch(2, &args, timeout)? {
///     Launch::Child(ctx) => run_rank(ctx),
///     Launch::Parent(report) => assert!(report.all_ok()),
/// }
/// ```
pub fn launch(
    nranks: usize,
    child_args: &[OsString],
    timeout: Duration,
) -> std::io::Result<Launch> {
    if let Some(ctx) = from_env()? {
        return Ok(Launch::Child(ctx));
    }
    spawn_local(nranks, child_args, timeout).map(Launch::Parent)
}

/// The argument vector that re-runs exactly one libtest test in a child
/// process: `<name> --exact --nocapture --test-threads=1`.
pub fn test_child_args(test_name: &str) -> Vec<OsString> {
    vec![
        OsString::from(test_name),
        OsString::from("--exact"),
        OsString::from("--nocapture"),
        OsString::from("--test-threads=1"),
    ]
}
