//! Threading-efficiency primitives shared by the fabric and the LCI
//! runtime: a spinlock with first-class `try_lock`, the *trylock wrapper*
//! of paper §4.2.2, the resizable MPMC array of paper §4.1.1, and the
//! [`Doorbell`] eventcount that lets progress threads park instead of
//! spin-polling.

use std::cell::UnsafeCell;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{fence, AtomicBool, AtomicPtr, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Duration;

/// A simple test-and-test-and-set spinlock.
///
/// Lower-level network stacks (libibverbs, libfabric) protect their queue
/// structures with spinlocks; we model the same. Unlike `parking_lot`
/// mutexes, a failed `try_lock` here costs a single atomic read-modify-
/// write and never syscalls, matching the behaviour the paper's trylock
/// wrapper (§4.2.2) relies on.
pub struct SpinLock<T: ?Sized> {
    locked: AtomicBool,
    data: UnsafeCell<T>,
}

// SAFETY: SpinLock provides mutual exclusion for `data`; it is Sync as
// long as the protected data may be sent across threads.
unsafe impl<T: ?Sized + Send> Sync for SpinLock<T> {}
unsafe impl<T: ?Sized + Send> Send for SpinLock<T> {}

/// RAII guard for [`SpinLock`].
pub struct SpinGuard<'a, T: ?Sized> {
    lock: &'a SpinLock<T>,
}

impl<T> SpinLock<T> {
    /// Creates a new unlocked spinlock.
    pub const fn new(data: T) -> Self {
        Self { locked: AtomicBool::new(false), data: UnsafeCell::new(data) }
    }

    /// Consumes the lock, returning the protected data.
    pub fn into_inner(self) -> T {
        self.data.into_inner()
    }
}

impl<T: ?Sized> SpinLock<T> {
    /// Attempts to acquire the lock without spinning.
    ///
    /// This is the primitive behind the trylock wrapper: a failure is
    /// reported to the caller (ultimately as an LCI `retry` status)
    /// instead of blocking the thread.
    #[inline]
    pub fn try_lock(&self) -> Option<SpinGuard<'_, T>> {
        // Test first to avoid bouncing the cache line on contention.
        if self.locked.load(Ordering::Relaxed) {
            return None;
        }
        if self.locked.compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed).is_ok() {
            Some(SpinGuard { lock: self })
        } else {
            None
        }
    }

    /// Acquires the lock, spinning until it is available.
    ///
    /// Used to model *blocking* acquisition inside the lower-level network
    /// stack (the behaviour LCI's trylock wrapper exists to avoid).
    /// After a bounded spin the waiter yields: on an oversubscribed host
    /// (this reproduction's single-core CI box) a preempted holder would
    /// otherwise cost every waiter a full scheduler quantum.
    #[inline]
    pub fn lock(&self) -> SpinGuard<'_, T> {
        loop {
            if let Some(g) = self.try_lock() {
                return g;
            }
            let mut spins = 0u32;
            while self.locked.load(Ordering::Relaxed) {
                std::hint::spin_loop();
                spins += 1;
                if spins > 256 {
                    std::thread::yield_now();
                    spins = 0;
                }
            }
        }
    }

    /// Returns whether the lock is currently held (racy; diagnostics only).
    pub fn is_locked(&self) -> bool {
        self.locked.load(Ordering::Relaxed)
    }
}

impl<T: ?Sized> Deref for SpinGuard<'_, T> {
    type Target = T;
    #[inline]
    fn deref(&self) -> &T {
        // SAFETY: the guard's existence proves exclusive access.
        unsafe { &*self.lock.data.get() }
    }
}

impl<T: ?Sized> DerefMut for SpinGuard<'_, T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: the guard's existence proves exclusive access.
        unsafe { &mut *self.lock.data.get() }
    }
}

impl<T: ?Sized> Drop for SpinGuard<'_, T> {
    #[inline]
    fn drop(&mut self) {
        self.lock.locked.store(false, Ordering::Release);
    }
}

impl<T: Default> Default for SpinLock<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for SpinLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("SpinLock").field("data", &*g).finish(),
            None => f.write_str("SpinLock { <locked> }"),
        }
    }
}

/// The acquisition discipline a lock site uses.
///
/// The paper's ablation (§4.2.2 and the `ablations` bench) compares the
/// trylock wrapper against blocking acquisition; this enum lets a device
/// be constructed either way.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LockDiscipline {
    /// Fail fast; the caller receives a retryable error.
    TryLock,
    /// Spin until acquired, like the stock lower-level network stacks.
    Blocking,
}

impl LockDiscipline {
    /// Acquire `lock` according to the discipline. Returns `None` only
    /// under [`LockDiscipline::TryLock`] when the lock is busy.
    #[inline]
    pub fn acquire<'a, T: ?Sized>(self, lock: &'a SpinLock<T>) -> Option<SpinGuard<'a, T>> {
        match self {
            LockDiscipline::TryLock => lock.try_lock(),
            LockDiscipline::Blocking => Some(lock.lock()),
        }
    }
}

/// A resizable multi-producer/multi-consumer array with lock-free reads
/// (paper §4.1.1).
///
/// Writes (appends and in-place stores) take an internal mutex so no
/// update is lost; reads are a pair of atomic loads. Every resize swaps in
/// a doubled array; old arrays are retired but **not freed until the
/// `MpmcArray` itself drops**, so a concurrent reader can never observe
/// freed memory (the postponed-deallocation scheme the paper borrows from
/// hazard-pointer literature).
///
/// `T` must be `Clone` (in practice `Arc<_>` or `Copy` handles): a read
/// returns a clone taken while the slot is guaranteed live.
pub struct MpmcArray<T: Clone> {
    /// Current array block (capacity + slots in one allocation, so readers
    /// always see a pointer whose bound travels with it).
    current: AtomicPtr<ArrayBlock<T>>,
    /// Number of appended elements (may trail concurrent appends).
    len: AtomicUsize,
    /// Serializes writers; also protects `retired`.
    writer: Mutex<Retired<T>>,
}

struct ArrayBlock<T> {
    slots: Box<[Slot<T>]>,
}

struct Retired<T> {
    /// Older array blocks kept alive for concurrent readers.
    arrays: Vec<*mut ArrayBlock<T>>,
}

// SAFETY: Slot values are only written under the writer mutex and read
// via atomic pointer loads; T: Send + Sync via Clone bounds at use sites.
unsafe impl<T: Clone + Send + Sync> Send for MpmcArray<T> {}
unsafe impl<T: Clone + Send + Sync> Sync for MpmcArray<T> {}

struct Slot<T> {
    /// 0 = empty, 1 = being written, 2 = full.
    state: AtomicUsize,
    value: UnsafeCell<Option<T>>,
}

impl<T: Clone> MpmcArray<T> {
    /// Creates an array with the given initial capacity (rounded up to 2).
    pub fn with_capacity(cap: usize) -> Self {
        let cap = cap.max(2);
        let arr = Self::alloc_block(cap);
        Self {
            current: AtomicPtr::new(arr),
            len: AtomicUsize::new(0),
            writer: Mutex::new(Retired { arrays: Vec::new() }),
        }
    }

    fn alloc_block(cap: usize) -> *mut ArrayBlock<T> {
        let mut v: Vec<Slot<T>> = Vec::with_capacity(cap);
        for _ in 0..cap {
            v.push(Slot { state: AtomicUsize::new(0), value: UnsafeCell::new(None) });
        }
        Box::into_raw(Box::new(ArrayBlock { slots: v.into_boxed_slice() }))
    }

    /// Appends a value, resizing if necessary. Returns the index.
    pub fn push(&self, value: T) -> usize {
        let mut retired = self.writer.lock().expect("MpmcArray writer poisoned");
        let idx = self.len.load(Ordering::Relaxed);
        let block = self.current.load(Ordering::Relaxed);
        // SAFETY: `block` is the live block; only writers (serialized by
        // the mutex we hold) replace it.
        let cap = unsafe { (&*block).slots.len() };
        if idx == cap {
            // Grow: allocate double, copy clones of existing values.
            let new_block = Self::alloc_block(cap * 2);
            for i in 0..idx {
                // SAFETY: slots 0..idx of the old block are fully written
                // (state==2) and we hold the writer lock, so no concurrent
                // writer mutates them.
                unsafe {
                    let old_slot = &(*block).slots[i];
                    if old_slot.state.load(Ordering::Acquire) == 2 {
                        let v = (*old_slot.value.get()).clone();
                        let new_slot = &(*new_block).slots[i];
                        *new_slot.value.get() = v;
                        new_slot.state.store(2, Ordering::Release);
                    }
                }
            }
            retired.arrays.push(block);
            self.current.store(new_block, Ordering::Release);
        }
        let block = self.current.load(Ordering::Relaxed);
        // SAFETY: idx < capacity of the (possibly new) block; we hold the
        // writer lock.
        unsafe {
            let slot = &(*block).slots[idx];
            slot.state.store(1, Ordering::Relaxed);
            *slot.value.get() = Some(value);
            slot.state.store(2, Ordering::Release);
        }
        self.len.store(idx + 1, Ordering::Release);
        idx
    }

    /// Stores a value at an existing index (write; takes the writer lock).
    ///
    /// Panics if `idx` has never been appended.
    pub fn store(&self, idx: usize, value: T) {
        let _retired = self.writer.lock().expect("MpmcArray writer poisoned");
        assert!(idx < self.len.load(Ordering::Relaxed), "MpmcArray::store out of bounds");
        let block = self.current.load(Ordering::Relaxed);
        // SAFETY: idx is in bounds and we hold the writer lock.
        unsafe {
            let slot = &(*block).slots[idx];
            slot.state.store(1, Ordering::Relaxed);
            *slot.value.get() = Some(value);
            slot.state.store(2, Ordering::Release);
        }
    }

    /// Clears the value at an existing index.
    pub fn clear_at(&self, idx: usize) {
        let _retired = self.writer.lock().expect("MpmcArray writer poisoned");
        if idx >= self.len.load(Ordering::Relaxed) {
            return;
        }
        let block = self.current.load(Ordering::Relaxed);
        // SAFETY: idx is in bounds and we hold the writer lock.
        unsafe {
            let slot = &(*block).slots[idx];
            slot.state.store(1, Ordering::Relaxed);
            *slot.value.get() = None;
            slot.state.store(0, Ordering::Release);
        }
    }

    /// Lock-free read of the value at `idx`.
    ///
    /// Returns `None` for out-of-range indices, still-empty slots, or
    /// slots caught mid-write (the caller retries or treats it as absent,
    /// mirroring the C++ implementation).
    #[inline]
    pub fn read(&self, idx: usize) -> Option<T> {
        let block = self.current.load(Ordering::Acquire);
        // SAFETY: blocks are never freed while `self` lives (retired
        // blocks are kept until drop), so the pointer is valid, and its
        // capacity bound travels with the allocation.
        unsafe {
            let slots = &(*block).slots;
            let slot = slots.get(idx)?;
            if slot.state.load(Ordering::Acquire) == 2 {
                (*slot.value.get()).clone()
            } else {
                None
            }
        }
    }

    /// Number of appended elements.
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Acquire)
    }

    /// Whether no element has been appended yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of all currently-set values.
    pub fn snapshot(&self) -> Vec<T> {
        let n = self.len();
        (0..n).filter_map(|i| self.read(i)).collect()
    }
}

impl<T: Clone> Drop for MpmcArray<T> {
    fn drop(&mut self) {
        let block = self.current.load(Ordering::Relaxed);
        // SAFETY: we have exclusive access in drop; reconstruct the boxes
        // to free current and retired blocks.
        unsafe {
            drop(Box::from_raw(block));
            let retired = self.writer.get_mut().expect("MpmcArray writer poisoned");
            for ptr in retired.arrays.drain(..) {
                drop(Box::from_raw(ptr));
            }
        }
    }
}

impl<T: Clone> Default for MpmcArray<T> {
    fn default() -> Self {
        Self::with_capacity(8)
    }
}

/// An eventcount ("doorbell") that lets a polling thread park until work
/// plausibly exists.
///
/// The NIC simulators ring a device's doorbell whenever a wire message
/// lands in its RX ring or a local completion is staged; a dedicated
/// progress thread parks on the doorbell when a full poll round found
/// nothing, instead of burning a core (the concern the AMT companion
/// paper raises about burn-a-core progress engines).
///
/// ## Protocol (no lost wakeups)
///
/// The waiter:
/// 1. reads [`Doorbell::epoch`] — call it `seen`;
/// 2. polls for work; if it finds any it never parks;
/// 3. calls [`Doorbell::wait`]`(seen, ..)`, which parks only while the
///    epoch still equals `seen`.
///
/// The ringer bumps the epoch *after* publishing the work, then wakes any
/// parked waiters. A SeqCst fence separates each side's store from its
/// subsequent load (store-buffer litmus): either the ringer observes the
/// registered waiter and takes the mutex to notify it, or the waiter's
/// epoch check (made while holding the mutex) observes the bumped epoch
/// and returns without parking. The work published before the epoch bump
/// is visible to any waiter that observes the bump (release/acquire on
/// the epoch counter).
pub struct Doorbell {
    /// Bumped on every ring; waiters park only while it is unchanged.
    epoch: AtomicU64,
    /// Total rings (stats; relaxed).
    rings: AtomicU64,
    /// Number of threads registered in [`Doorbell::wait`]. A ringer only
    /// touches the mutex when this is non-zero, so the idle-free fast
    /// path of `ring` is a handful of atomics.
    waiters: AtomicUsize,
    mutex: Mutex<()>,
    cond: Condvar,
    /// Peer doorbells also rung by [`Doorbell::ring`] — used by progress
    /// threads to aggregate several devices' doorbells into one parkable
    /// bell. One level only: subscribers must not have subscribers of
    /// their own (no cycle detection is performed).
    subscribers: OnceLock<MpmcArray<Arc<Doorbell>>>,
}

impl Default for Doorbell {
    fn default() -> Self {
        Self::new()
    }
}

impl Doorbell {
    /// Creates a quiet doorbell. Allocation-free (subscriber storage is
    /// created lazily), so it can be embedded in hot-path objects.
    pub const fn new() -> Self {
        Self {
            epoch: AtomicU64::new(0),
            rings: AtomicU64::new(0),
            waiters: AtomicUsize::new(0),
            mutex: Mutex::new(()),
            cond: Condvar::new(),
            subscribers: OnceLock::new(),
        }
    }

    /// Current epoch; pass it to [`Doorbell::wait`] after a failed poll.
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Total number of rings so far (stats).
    #[inline]
    pub fn rings(&self) -> u64 {
        self.rings.load(Ordering::Relaxed)
    }

    /// Rings the doorbell: bumps the epoch, wakes parked waiters, and
    /// forwards the ring to subscribed peer doorbells.
    #[inline]
    pub fn ring(&self) {
        self.epoch.fetch_add(1, Ordering::Release);
        self.rings.fetch_add(1, Ordering::Relaxed);
        // Store-buffer fence: pairs with the fence in `wait` so that at
        // least one side observes the other (see type-level docs).
        fence(Ordering::SeqCst);
        if self.waiters.load(Ordering::Relaxed) > 0 {
            // Taking the mutex serializes with a waiter between its epoch
            // check and its condvar wait, so the notify cannot be lost.
            let _g = self.mutex.lock().expect("Doorbell mutex poisoned");
            self.cond.notify_all();
        }
        if let Some(subs) = self.subscribers.get() {
            for i in 0..subs.len() {
                if let Some(peer) = subs.read(i) {
                    peer.ring();
                }
            }
        }
    }

    /// Also rings `peer` on every subsequent ring of `self`.
    ///
    /// Used once per (device, progress thread) pairing at spawn time;
    /// subscriptions cannot be removed.
    pub fn subscribe(&self, peer: Arc<Doorbell>) {
        self.subscribers.get_or_init(|| MpmcArray::with_capacity(2)).push(peer);
    }

    /// Parks until the epoch differs from `seen` or `timeout` elapses.
    /// Returns whether the epoch advanced.
    ///
    /// The timeout is a belt-and-braces bound, not part of the
    /// correctness argument: callers re-poll after every return.
    pub fn wait(&self, seen: u64, timeout: Duration) -> bool {
        let mut g = self.mutex.lock().expect("Doorbell mutex poisoned");
        self.waiters.fetch_add(1, Ordering::Relaxed);
        // Store-buffer fence: pairs with the fence in `ring`.
        fence(Ordering::SeqCst);
        let deadline = std::time::Instant::now() + timeout;
        let advanced = loop {
            if self.epoch.load(Ordering::Acquire) != seen {
                break true;
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                break false;
            }
            let (g2, res) =
                self.cond.wait_timeout(g, deadline - now).expect("Doorbell mutex poisoned");
            g = g2;
            if res.timed_out() {
                break self.epoch.load(Ordering::Acquire) != seen;
            }
        };
        self.waiters.fetch_sub(1, Ordering::Relaxed);
        advanced
    }
}

impl std::fmt::Debug for Doorbell {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Doorbell")
            .field("epoch", &self.epoch())
            .field("rings", &self.rings())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn spinlock_basic() {
        let l = SpinLock::new(5usize);
        {
            let mut g = l.lock();
            *g += 1;
        }
        assert_eq!(*l.lock(), 6);
    }

    #[test]
    fn spinlock_trylock_fails_when_held() {
        let l = SpinLock::new(());
        let g = l.try_lock().unwrap();
        assert!(l.try_lock().is_none());
        drop(g);
        assert!(l.try_lock().is_some());
    }

    #[test]
    fn spinlock_contended_counter() {
        let l = Arc::new(SpinLock::new(0u64));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let l = l.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..10_000 {
                    *l.lock() += 1;
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*l.lock(), 40_000);
    }

    #[test]
    fn lock_discipline_acquire() {
        let l = SpinLock::new(1);
        let g = l.lock();
        assert!(LockDiscipline::TryLock.acquire(&l).is_none());
        drop(g);
        assert!(LockDiscipline::TryLock.acquire(&l).is_some());
        assert!(LockDiscipline::Blocking.acquire(&l).is_some());
    }

    #[test]
    fn mpmc_array_push_read() {
        let a: MpmcArray<usize> = MpmcArray::with_capacity(2);
        for i in 0..100 {
            let idx = a.push(i * 10);
            assert_eq!(idx, i);
        }
        assert_eq!(a.len(), 100);
        for i in 0..100 {
            assert_eq!(a.read(i), Some(i * 10));
        }
        assert_eq!(a.read(100), None);
    }

    #[test]
    fn mpmc_array_store_and_clear() {
        let a: MpmcArray<usize> = MpmcArray::with_capacity(4);
        a.push(1);
        a.push(2);
        a.store(0, 99);
        assert_eq!(a.read(0), Some(99));
        a.clear_at(0);
        assert_eq!(a.read(0), None);
        assert_eq!(a.read(1), Some(2));
    }

    #[test]
    fn mpmc_array_concurrent_push_read() {
        let a: Arc<MpmcArray<usize>> = Arc::new(MpmcArray::with_capacity(2));
        let writers: Vec<_> = (0..4)
            .map(|t| {
                let a = a.clone();
                std::thread::spawn(move || {
                    for i in 0..500 {
                        a.push(t * 1000 + i);
                    }
                })
            })
            .collect();
        let readers: Vec<_> = (0..2)
            .map(|_| {
                let a = a.clone();
                std::thread::spawn(move || {
                    let mut seen = 0usize;
                    for _ in 0..20_000 {
                        let n = a.len();
                        if n > 0 && a.read(n / 2).is_some() {
                            seen += 1;
                        }
                    }
                    seen
                })
            })
            .collect();
        for w in writers {
            w.join().unwrap();
        }
        for r in readers {
            r.join().unwrap();
        }
        assert_eq!(a.len(), 2000);
        let snap = a.snapshot();
        assert_eq!(snap.len(), 2000);
    }

    #[test]
    fn doorbell_ring_before_wait_returns_immediately() {
        let bell = Doorbell::new();
        let seen = bell.epoch();
        bell.ring();
        // The epoch advanced between the snapshot and the wait, so the
        // waiter must not park at all.
        assert!(bell.wait(seen, Duration::from_secs(5)));
        assert_eq!(bell.rings(), 1);
    }

    #[test]
    fn doorbell_wait_times_out_when_quiet() {
        let bell = Doorbell::new();
        let seen = bell.epoch();
        assert!(!bell.wait(seen, Duration::from_millis(10)));
    }

    #[test]
    fn doorbell_wakes_parked_waiter() {
        let bell = Arc::new(Doorbell::new());
        let waiter = {
            let bell = bell.clone();
            std::thread::spawn(move || {
                let seen = bell.epoch();
                bell.wait(seen, Duration::from_secs(10))
            })
        };
        // Give the waiter a moment to park, then ring.
        std::thread::sleep(Duration::from_millis(20));
        bell.ring();
        assert!(waiter.join().unwrap());
    }

    #[test]
    fn doorbell_subscriber_forwarding() {
        let dev_bell = Arc::new(Doorbell::new());
        let agg = Arc::new(Doorbell::new());
        dev_bell.subscribe(agg.clone());
        let seen = agg.epoch();
        dev_bell.ring();
        assert_ne!(agg.epoch(), seen);
        assert_eq!(agg.rings(), 1);
    }

    #[test]
    fn doorbell_no_lost_wakeup_stress() {
        // Producer rings after each publish; consumer parks between
        // observations. Every published value must be observed promptly
        // (the long per-wait timeout would turn a lost wakeup into a
        // multi-minute run; the outer assert bounds total time).
        const N: u64 = 2000;
        let bell = Arc::new(Doorbell::new());
        let published = Arc::new(AtomicU64::new(0));
        let t0 = std::time::Instant::now();
        let consumer = {
            let bell = bell.clone();
            let published = published.clone();
            std::thread::spawn(move || {
                let mut seen_val = 0u64;
                while seen_val < N {
                    let seen = bell.epoch();
                    let now = published.load(Ordering::Acquire);
                    if now > seen_val {
                        seen_val = now;
                        continue;
                    }
                    bell.wait(seen, Duration::from_secs(10));
                }
            })
        };
        for i in 1..=N {
            published.store(i, Ordering::Release);
            bell.ring();
        }
        consumer.join().unwrap();
        assert!(t0.elapsed() < Duration::from_secs(60), "lost wakeups made the stress crawl");
    }

    #[test]
    fn mpmc_array_snapshot_skips_cleared() {
        let a: MpmcArray<u8> = MpmcArray::with_capacity(2);
        a.push(1);
        a.push(2);
        a.push(3);
        a.clear_at(1);
        assert_eq!(a.snapshot(), vec![1, 3]);
    }
}
