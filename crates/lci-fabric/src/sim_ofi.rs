//! The ofi-like backend (paper §4.2.4).
//!
//! Mirrors the libfabric cxi/verbs provider lock structure: **one spinlock
//! per endpoint** guards `post_send`, `post_recv` *and* `poll_cq`, so a
//! worker thread posting and a progress thread polling the same device
//! always contend. Memory (de)registration goes through a per-domain
//! registration cache protected by a mutex (the pthread mutex the paper
//! mentions), and — matching the paper — registration is *not* wrapped in
//! a trylock because a registration failure cannot be back-propagated.
//!
//! LCI wraps the endpoint lock in a single trylock (§4.2.4); baselines use
//! blocking acquisition (`LockDiscipline::Blocking`), which is how stock
//! MPI implementations drive libfabric.

use crate::backend::{deliver_into, DeviceConfig, NetDevice, SendDesc};
use crate::buf_pool::{BufPool, BufPoolStats};
use crate::fabric::{Fabric, RxEndpoint};
use crate::mem::{MemoryRegion, Rkey};
use crate::reg_cache::{RegCache, RegCacheStats};
use crate::sync::{Doorbell, SpinLock};
use crate::types::{
    Cqe, CqeKind, DevId, NetError, NetResult, Rank, RecvBufDesc, RetryReason, WireMsg, WireMsgKind,
    WirePayload,
};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Everything the endpoint lock protects.
struct EpState {
    srq: VecDeque<RecvBufDesc>,
    cq: VecDeque<Cqe>,
    posted: u64,
}

/// The ofi-like device.
pub struct OfiDevice {
    fabric: Arc<Fabric>,
    rank: Rank,
    dev_id: DevId,
    cfg: DeviceConfig,
    rx: Arc<RxEndpoint>,
    /// The single endpoint lock (paper §4.2.4): post and poll serialize.
    ep: SpinLock<EpState>,
    /// Per-domain registration cache behind a mutex (see
    /// [`crate::reg_cache`]).
    reg_cache: RegCache,
    /// Recycled staging-buffer pool feeding `WirePayload::Heap`.
    buf_pool: BufPool,
    posted_recvs: AtomicUsize,
    /// Shared with the RX endpoint; rung here whenever a *local*
    /// completion is staged (SendDone/WriteDone/ReadDone) so a parked
    /// progress thread wakes to reap it.
    bell: Arc<Doorbell>,
}

impl OfiDevice {
    /// Creates the device. Called by
    /// [`NetContext::create_device`](crate::backend::NetContext::create_device).
    pub(crate) fn new(
        fabric: Arc<Fabric>,
        rank: Rank,
        dev_id: DevId,
        rx: Arc<RxEndpoint>,
        bell: Arc<Doorbell>,
        cfg: DeviceConfig,
    ) -> Self {
        Self {
            fabric,
            rank,
            dev_id,
            cfg,
            rx,
            ep: SpinLock::new(EpState { srq: VecDeque::new(), cq: VecDeque::new(), posted: 0 }),
            reg_cache: RegCache::new(cfg.reg_cache),
            buf_pool: BufPool::new(cfg.buf_pool),
            posted_recvs: AtomicUsize::new(0),
            bell,
        }
    }

    /// Acquires the endpoint lock per the configured discipline.
    #[inline]
    fn lock_ep(&self) -> NetResult<crate::sync::SpinGuard<'_, EpState>> {
        self.cfg.discipline.acquire(&self.ep).ok_or(NetError::Retry(RetryReason::LockBusy))
    }

    /// Drains inbound traffic into the CQ. Caller holds the endpoint
    /// lock. The receive descriptor is taken before the wire message is
    /// popped so the ring stays strictly FIFO (see the ibv backend for
    /// the overtaking-deadlock rationale).
    fn deliver_inbound(&self, st: &mut EpState, budget: usize) -> NetResult<()> {
        for _ in 0..budget {
            let Some(desc) = st.srq.pop_front() else { break };
            let Some(msg) = self.rx.pop() else {
                st.srq.push_front(desc);
                break;
            };
            self.posted_recvs.fetch_sub(1, Ordering::AcqRel);
            let cqe = deliver_into(&msg, &desc)?;
            st.cq.push_back(cqe);
        }
        Ok(())
    }
}

impl NetDevice for OfiDevice {
    fn rank(&self) -> Rank {
        self.rank
    }

    fn dev_id(&self) -> DevId {
        self.dev_id
    }

    fn config(&self) -> &DeviceConfig {
        &self.cfg
    }

    fn post_send(
        &self,
        target: Rank,
        target_dev: DevId,
        data: &[u8],
        imm: u64,
        ctx: u64,
    ) -> NetResult<()> {
        let ep_remote = self.fabric.endpoint(target, target_dev)?;
        let mut st = self.lock_ep()?;
        ep_remote.push(WireMsg {
            src_rank: self.rank,
            src_dev: self.dev_id,
            imm,
            kind: WireMsgKind::Send,
            payload: self.buf_pool.stage(data),
        })?;
        st.posted += 1;
        st.cq.push_back(Cqe::local(CqeKind::SendDone, ctx));
        drop(st);
        self.bell.ring();
        Ok(())
    }

    fn post_send_batch(
        &self,
        target: Rank,
        target_dev: DevId,
        msgs: &[SendDesc<'_>],
    ) -> NetResult<usize> {
        let ep_remote = self.fabric.endpoint(target, target_dev)?;
        // The batch is the whole point here: the single endpoint lock
        // serializes post *and* poll (§4.2.4), so paying it once for N
        // messages instead of N times is a direct hot-path win.
        let mut st = self.lock_ep()?;
        let mut posted = 0;
        for m in msgs {
            let res = ep_remote.push(WireMsg {
                src_rank: self.rank,
                src_dev: self.dev_id,
                imm: m.imm,
                kind: WireMsgKind::Send,
                payload: self.buf_pool.stage(m.data),
            });
            match res {
                Ok(()) => posted += 1,
                Err(e) if posted == 0 => return Err(e),
                Err(_) => break, // ring full mid-batch: partial progress
            }
        }
        st.posted += posted as u64;
        for m in &msgs[..posted] {
            st.cq.push_back(Cqe::local(CqeKind::SendDone, m.ctx));
        }
        drop(st);
        if posted > 0 {
            self.bell.ring();
        }
        Ok(posted)
    }

    fn post_recv(&self, desc: RecvBufDesc) -> NetResult<()> {
        let mut st = self.lock_ep()?;
        st.srq.push_back(desc);
        self.posted_recvs.fetch_add(1, Ordering::AcqRel);
        drop(st);
        // A fresh receive can unpark RNR-parked wire messages: wake the
        // progress thread so it re-polls (delivery happens in poll_cq).
        if self.rx.occupancy() > 0 {
            self.bell.ring();
        }
        Ok(())
    }

    fn post_recv_batch(&self, descs: &[RecvBufDesc]) -> NetResult<usize> {
        // One endpoint-lock acquisition restocks the whole batch — on
        // this backend that lock also serializes post_send and poll_cq
        // (§4.2.4), so the amortization directly shortens the critical
        // section other threads contend on.
        let mut st = self.lock_ep()?;
        st.srq.extend(descs.iter().copied());
        self.posted_recvs.fetch_add(descs.len(), Ordering::AcqRel);
        drop(st);
        if !descs.is_empty() && self.rx.occupancy() > 0 {
            self.bell.ring();
        }
        Ok(descs.len())
    }

    fn poll_cq(&self, out: &mut Vec<Cqe>, max: usize) -> NetResult<usize> {
        let mut st = self.lock_ep()?;
        self.deliver_inbound(&mut st, max.max(self.cfg.cq_drain_batch))?;
        let n = max.min(st.cq.len());
        out.extend(st.cq.drain(..n));
        Ok(n)
    }

    fn post_write(
        &self,
        target: Rank,
        target_dev: DevId,
        data: &[u8],
        rkey: Rkey,
        offset: usize,
        imm: Option<u64>,
        ctx: u64,
    ) -> NetResult<()> {
        let base = self.fabric.mem().validate(rkey, offset, data.len())?;
        let mut st = self.lock_ep()?;
        // SAFETY: bounds validated against a live registration; region is
        // externally-shared bytes per the registration contract.
        unsafe {
            std::ptr::copy_nonoverlapping(data.as_ptr(), base as *mut u8, data.len());
        }
        if let Some(imm) = imm {
            let ep_remote = self.fabric.endpoint(target, target_dev)?;
            ep_remote.push(WireMsg {
                src_rank: self.rank,
                src_dev: self.dev_id,
                imm,
                kind: WireMsgKind::WriteImm,
                payload: WirePayload::None,
            })?;
        }
        st.posted += 1;
        st.cq.push_back(Cqe::local(CqeKind::WriteDone, ctx));
        drop(st);
        self.bell.ring();
        Ok(())
    }

    fn post_read(
        &self,
        target: Rank,
        local: RecvBufDesc,
        rkey: Rkey,
        offset: usize,
    ) -> NetResult<()> {
        let _ = target;
        let base = self.fabric.mem().validate(rkey, offset, local.len)?;
        let mut st = self.lock_ep()?;
        // SAFETY: bounds validated; local buffer validity is the
        // RecvBufDesc contract.
        unsafe {
            std::ptr::copy_nonoverlapping(base as *const u8, local.ptr, local.len);
        }
        st.posted += 1;
        let mut cqe = Cqe::local(CqeKind::ReadDone, local.ctx);
        cqe.len = local.len;
        st.cq.push_back(cqe);
        drop(st);
        self.bell.ring();
        Ok(())
    }

    fn register(&self, ptr: *const u8, len: usize) -> NetResult<MemoryRegion> {
        // The registration cache mutex is acquired blockingly: LCI has no
        // way to back-propagate a registration retry (paper §4.2.4).
        Ok(self.reg_cache.register(self.fabric.mem(), self.rank, ptr, len))
    }

    fn deregister(&self, mr: &MemoryRegion) -> NetResult<()> {
        self.reg_cache.release(self.fabric.mem(), mr);
        Ok(())
    }

    fn reg_cache_stats(&self) -> RegCacheStats {
        self.reg_cache.stats()
    }

    fn buf_pool(&self) -> Option<BufPool> {
        Some(self.buf_pool.clone())
    }

    fn buf_pool_stats(&self) -> BufPoolStats {
        self.buf_pool.stats()
    }

    fn posted_recvs(&self) -> usize {
        self.posted_recvs.load(Ordering::Acquire)
    }

    fn doorbell(&self) -> Option<Arc<Doorbell>> {
        Some(self.bell.clone())
    }

    fn inbound_pending(&self) -> usize {
        self.rx.occupancy()
    }

    fn teardown(&self) -> (Vec<Cqe>, Vec<RecvBufDesc>) {
        self.rx.close();
        let mut st = self.ep.lock();
        let cqes: Vec<Cqe> = st.cq.drain(..).collect();
        let descs: Vec<RecvBufDesc> = st.srq.drain(..).collect();
        self.posted_recvs.store(0, Ordering::Release);
        (cqes, descs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::NetContext;

    fn pair() -> (Arc<dyn NetDevice>, Arc<dyn NetDevice>) {
        let fabric = Fabric::new(2);
        let cfg = DeviceConfig::ofi();
        let d0 = NetContext::new(fabric.clone(), 0).create_device(cfg);
        let d1 = NetContext::new(fabric, 1).create_device(cfg);
        (d0, d1)
    }

    #[test]
    fn send_recv_roundtrip() {
        let (d0, d1) = pair();
        let mut rbuf = vec![0u8; 64];
        let desc = unsafe { RecvBufDesc::new(rbuf.as_mut_ptr(), rbuf.len(), 21) };
        d1.post_recv(desc).unwrap();
        d0.post_send(1, 0, b"ofi", 5, 1).unwrap();

        let mut cqes = Vec::new();
        d0.poll_cq(&mut cqes, 8).unwrap();
        assert_eq!(cqes[0].kind, CqeKind::SendDone);

        cqes.clear();
        d1.poll_cq(&mut cqes, 8).unwrap();
        assert_eq!(cqes[0].kind, CqeKind::RecvDone);
        assert_eq!(cqes[0].ctx, 21);
        assert_eq!(cqes[0].imm, 5);
        assert_eq!(&rbuf[..3], b"ofi");
    }

    #[test]
    fn batched_post_partial_progress_on_ring_full() {
        let fabric = Fabric::new(2);
        let cfg = DeviceConfig::ofi().with_rx_capacity(4);
        let d0 = NetContext::new(fabric.clone(), 0).create_device(cfg);
        let _d1 = NetContext::new(fabric, 1).create_device(cfg);
        let bufs: Vec<[u8; 1]> = (0..8u8).map(|i| [i]).collect();
        let msgs: Vec<SendDesc> = bufs
            .iter()
            .enumerate()
            .map(|(i, b)| SendDesc { data: b, imm: i as u64, ctx: i as u64 })
            .collect();
        // Ring holds 4: the batch makes partial progress, not all-or-nothing.
        assert_eq!(d0.post_send_batch(1, 0, &msgs).unwrap(), 4);
        let mut cqes = Vec::new();
        d0.poll_cq(&mut cqes, 16).unwrap();
        assert_eq!(cqes.iter().filter(|c| c.kind == CqeKind::SendDone).count(), 4);
        assert_eq!(cqes.iter().map(|c| c.ctx).collect::<Vec<_>>(), vec![0, 1, 2, 3]);
        // Retrying the tail against a still-full ring posts nothing.
        assert!(matches!(
            d0.post_send_batch(1, 0, &msgs[4..]).unwrap_err(),
            NetError::Retry(RetryReason::RxFull)
        ));
    }

    #[test]
    fn batched_post_delivers_in_order() {
        let (d0, d1) = pair();
        let mut rbufs: Vec<Vec<u8>> = (0..3).map(|_| vec![0u8; 16]).collect();
        for (i, b) in rbufs.iter_mut().enumerate() {
            let desc = unsafe { RecvBufDesc::new(b.as_mut_ptr(), b.len(), i as u64) };
            d1.post_recv(desc).unwrap();
        }
        let bufs: Vec<[u8; 2]> = (0..3u8).map(|i| [i, i + 10]).collect();
        let msgs: Vec<SendDesc> = bufs
            .iter()
            .enumerate()
            .map(|(i, b)| SendDesc { data: b, imm: 100 + i as u64, ctx: i as u64 })
            .collect();
        assert_eq!(d0.post_send_batch(1, 0, &msgs).unwrap(), 3);
        let mut cqes = Vec::new();
        d1.poll_cq(&mut cqes, 8).unwrap();
        assert_eq!(cqes.len(), 3);
        for (i, c) in cqes.iter().enumerate() {
            assert_eq!(c.kind, CqeKind::RecvDone);
            assert_eq!(c.imm, 100 + i as u64);
            assert_eq!(&rbufs[c.ctx as usize][..2], &[i as u8, i as u8 + 10]);
        }
    }

    #[test]
    fn batched_recv_roundtrip() {
        let (d0, d1) = pair();
        let mut rbufs: Vec<Vec<u8>> = (0..3).map(|_| vec![0u8; 16]).collect();
        let descs: Vec<RecvBufDesc> = rbufs
            .iter_mut()
            .enumerate()
            .map(|(i, b)| unsafe { RecvBufDesc::new(b.as_mut_ptr(), b.len(), i as u64) })
            .collect();
        assert_eq!(d1.post_recv_batch(&descs).unwrap(), 3);
        assert_eq!(d1.posted_recvs(), 3);
        for i in 0..3u8 {
            d0.post_send(1, 0, &[i], i as u64, 0).unwrap();
        }
        let mut cqes = Vec::new();
        d1.poll_cq(&mut cqes, 8).unwrap();
        assert_eq!(cqes.len(), 3);
        for (i, c) in cqes.iter().enumerate() {
            assert_eq!(c.ctx, i as u64);
            assert_eq!(rbufs[i][0], i as u8);
        }
        assert_eq!(d1.posted_recvs(), 0);
    }

    #[test]
    fn registration_cache_hits() {
        let (d0, _d1) = pair();
        let buf = vec![0u8; 256];
        let a = d0.register(buf.as_ptr(), buf.len()).unwrap();
        let b = d0.register(buf.as_ptr(), buf.len()).unwrap();
        assert_eq!(a.rkey, b.rkey, "cache should return the same registration");
        d0.deregister(&a).unwrap();
        d0.deregister(&b).unwrap();
        let c = d0.register(buf.as_ptr(), buf.len()).unwrap();
        assert_eq!(a.rkey, c.rkey, "deregister releases: the cached registration is reused");
        assert_eq!(
            d0.reg_cache_stats(),
            crate::reg_cache::RegCacheStats { hits: 2, misses: 1, evictions: 0 }
        );
    }

    #[test]
    fn rdma_write_and_read() {
        let (d0, d1) = pair();
        let mut region = [0u8; 64];
        let mr = d1.register(region.as_ptr(), region.len()).unwrap();
        d0.post_write(1, 0, &[7u8; 8], mr.rkey, 0, None, 2).unwrap();
        let mut cqes = Vec::new();
        d0.poll_cq(&mut cqes, 4).unwrap();
        assert_eq!(cqes[0].kind, CqeKind::WriteDone);
        assert_eq!(&region[..8], &[7u8; 8]);

        let mut dst = vec![0u8; 8];
        let desc = unsafe { RecvBufDesc::new(dst.as_mut_ptr(), dst.len(), 4) };
        d0.post_read(1, desc, mr.rkey, 0).unwrap();
        cqes.clear();
        d0.poll_cq(&mut cqes, 4).unwrap();
        assert_eq!(cqes[0].kind, CqeKind::ReadDone);
        assert_eq!(dst, vec![7u8; 8]);
        // keep region alive past the RDMA ops
        std::hint::black_box(&mut region);
    }

    #[test]
    fn endpoint_lock_busy_surfaces_as_retry() {
        let fabric = Fabric::new(1);
        let dev = NetContext::new(fabric, 0).create_device(DeviceConfig::ofi());
        // Downcast trick: hold the lock by calling poll on another thread
        // in a loop, and observe retries here. On 1 core collisions may
        // not occur; this test only checks nothing deadlocks.
        let dev2 = dev.clone();
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let s2 = stop.clone();
        let t = std::thread::spawn(move || {
            let mut out = Vec::new();
            while !s2.load(Ordering::Relaxed) {
                let _ = dev2.poll_cq(&mut out, 1);
                out.clear();
            }
        });
        let mut out = Vec::new();
        for _ in 0..50_000 {
            let _ = dev.poll_cq(&mut out, 1);
            out.clear();
        }
        stop.store(true, Ordering::Relaxed);
        t.join().unwrap();
    }
}
