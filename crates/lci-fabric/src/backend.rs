//! The network backend layer (paper §4.2.1).
//!
//! LCI isolates network backends from its core runtime with a small
//! wrapper operating on two resources: a *network context* (global
//! resources, one per runtime) and *network devices* (critical-path
//! resources, any number per context). All critical-path operations —
//! posting sends/recvs/writes/reads, polling completions, registering
//! memory — go through a device. The backend is **not** required to do tag
//! matching or handle unexpected messages: the LCI progress engine keeps
//! enough receives pre-posted.

use crate::buf_pool::{BufPool, BufPoolConfig, BufPoolStats};
use crate::fabric::{Fabric, RxEndpoint, DEFAULT_RX_CAPACITY};
use crate::mem::{MemoryRegion, Rkey};
use crate::reg_cache::{RegCacheConfig, RegCacheStats};
use crate::shm::ShmDevice;
use crate::sim_ibv::IbvDevice;
use crate::sim_ofi::OfiDevice;
use crate::sync::{Doorbell, LockDiscipline};
use crate::types::{Cqe, CqeKind, DevId, NetResult, Rank, RecvBufDesc, WireMsg, WireMsgKind};
use std::sync::Arc;

/// Which simulated provider a device uses.
///
/// Both run on the same [`Fabric`]; they differ only in lock placement,
/// mirroring the paper's libibverbs (§4.2.3) vs libfabric (§4.2.4)
/// analysis. In the benchmarks, `Ibv` plays the role of SDSC Expanse
/// (InfiniBand) and `Ofi` the role of NCSA Delta (Slingshot-11).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BackendKind {
    /// Fine-grained locks: per-QP, per-CQ, per-SRQ spinlocks with
    /// configurable thread-domain strategies.
    Ibv,
    /// Coarse endpoint lock: one spinlock serializes post and poll;
    /// registration goes through a mutex-protected cache.
    Ofi,
    /// Real shared-memory transport (DESIGN.md §4.9): frames travel
    /// through per-rank-pair SPSC rings in a memory segment other OS
    /// processes can map, with ibv-style lock granularity on the
    /// posting side.
    Shm,
    /// Real TCP transport (DESIGN.md §4.12): a full socket mesh with
    /// per-peer send queues drained by vectored writes and an
    /// epoll-driven doorbell bridge, with ibv-style lock granularity on
    /// the posting side. Unix only.
    Tcp,
}

/// How queue pairs share posting locks on the ibv backend — the
/// `ibv_td_strategy` device attribute of paper §4.2.3.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TdStrategy {
    /// One thread domain (lock) per queue pair: threads posting to
    /// different targets never interfere. The default.
    PerQp,
    /// A single thread domain for all queue pairs of the device;
    /// recommended when each thread owns a dedicated device.
    AllQp,
    /// No thread domains: the provider falls back to one *blocking* lock
    /// shared by all queue pairs (LCI cannot trylock-wrap a lock it does
    /// not control).
    None,
}

/// Device creation parameters.
#[derive(Clone, Copy, Debug)]
pub struct DeviceConfig {
    /// Provider selection.
    pub backend: BackendKind,
    /// Thread-domain strategy (ibv backend only).
    pub td_strategy: TdStrategy,
    /// Lock acquisition discipline for wrapped locks: LCI uses
    /// [`LockDiscipline::TryLock`] (the §4.2.2 trylock wrapper); stock
    /// library behaviour is [`LockDiscipline::Blocking`].
    pub discipline: LockDiscipline,
    /// RX ring capacity (inbound flow-control window).
    pub rx_capacity: usize,
    /// How many inbound wire messages one `poll_cq` may convert to
    /// completions while it holds the CQ/endpoint lock. Larger values
    /// amortize the lock acquisition over more deliveries; smaller
    /// values bound the time any single poll can monopolize the lock.
    pub cq_drain_batch: usize,
    /// Memory-registration cache (see [`crate::reg_cache`]). Shared by
    /// both backends; disable for the per-message-registration ablation.
    pub reg_cache: RegCacheConfig,
    /// Recycled staging-buffer pool (see [`crate::buf_pool`]). Feeds
    /// `WirePayload::Heap` staging on both backends and the LCI layer's
    /// staging copies; disable for the allocate-per-message ablation.
    pub buf_pool: BufPoolConfig,
    /// Whether the tcp backend gathers its whole per-peer send queue
    /// into one `writev` per readiness cycle (default) or issues one
    /// write per frame (the syscall-amortization ablation). Ignored by
    /// other backends.
    pub tcp_batch: bool,
}

impl Default for DeviceConfig {
    fn default() -> Self {
        Self {
            backend: BackendKind::Ibv,
            td_strategy: TdStrategy::PerQp,
            discipline: LockDiscipline::TryLock,
            rx_capacity: DEFAULT_RX_CAPACITY,
            cq_drain_batch: 64,
            reg_cache: RegCacheConfig::default(),
            buf_pool: BufPoolConfig::default(),
            tcp_batch: true,
        }
    }
}

impl DeviceConfig {
    /// Config preset for the ibv-like backend (Expanse stand-in).
    pub fn ibv() -> Self {
        Self::default()
    }

    /// Config preset for the ofi-like backend (Delta stand-in).
    pub fn ofi() -> Self {
        Self { backend: BackendKind::Ofi, ..Self::default() }
    }

    /// Config preset for the shared-memory backend (same lock layout as
    /// `ibv`; the wire is a real cross-process segment).
    pub fn shm() -> Self {
        Self { backend: BackendKind::Shm, ..Self::default() }
    }

    /// Config preset for the tcp backend (same lock layout as `ibv`;
    /// the wire is a real socket mesh).
    pub fn tcp() -> Self {
        Self { backend: BackendKind::Tcp, ..Self::default() }
    }

    /// Sets the lock discipline.
    pub fn with_discipline(mut self, d: LockDiscipline) -> Self {
        self.discipline = d;
        self
    }

    /// Sets the thread-domain strategy.
    pub fn with_td_strategy(mut self, s: TdStrategy) -> Self {
        self.td_strategy = s;
        self
    }

    /// Sets the RX ring capacity.
    pub fn with_rx_capacity(mut self, c: usize) -> Self {
        self.rx_capacity = c;
        self
    }

    /// Sets the per-poll inbound delivery budget.
    pub fn with_cq_drain_batch(mut self, n: usize) -> Self {
        self.cq_drain_batch = n.max(1);
        self
    }

    /// Enables or disables the registration cache.
    pub fn with_reg_cache(mut self, enabled: bool) -> Self {
        self.reg_cache.enabled = enabled;
        self
    }

    /// Sets the registration-cache bounds.
    pub fn with_reg_cache_bounds(mut self, max_entries: usize, max_bytes: usize) -> Self {
        self.reg_cache.max_entries = max_entries;
        self.reg_cache.max_bytes = max_bytes;
        self
    }

    /// Enables or disables the recycled staging-buffer pool.
    pub fn with_buf_pool(mut self, enabled: bool) -> Self {
        self.buf_pool.enabled = enabled;
        self
    }

    /// Enables or disables tcp `writev` batching (the ablation knob).
    pub fn with_tcp_batch(mut self, enabled: bool) -> Self {
        self.tcp_batch = enabled;
        self
    }
}

/// Transport-level counters exposed by backends that have a physical
/// (or physically modeled) wire; all-zero elsewhere. Snapshotted into
/// the LCI stats overlay.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TransportStats {
    /// High-water mark of per-channel ring occupancy (frames) over every
    /// shm channel touching this device's rank. Monotone.
    pub shm_ring_hwm: u64,
    /// Times the cross-process doorbell bridge woke this rank's devices
    /// on behalf of a remote producer. Monotone; zero in-process.
    pub doorbell_cross_proc_wakes: u64,
    /// `writev` syscalls issued by the tcp backend that made progress.
    /// Monotone; zero on other backends.
    pub tcp_writev_calls: u64,
    /// Frames fully shipped by those `writev` calls. The ratio
    /// `tcp_writev_frames / tcp_writev_calls` is the average gather
    /// fill — the syscall-amortization factor.
    pub tcp_writev_frames: u64,
}

/// One send in a [`NetDevice::post_send_batch`] call.
#[derive(Clone, Copy, Debug)]
pub struct SendDesc<'a> {
    /// Payload bytes (staged by the backend, like `post_send`).
    pub data: &'a [u8],
    /// Immediate word delivered with the message.
    pub imm: u64,
    /// Opaque context echoed in the `SendDone` completion.
    pub ctx: u64,
}

/// A network device: the critical-path resource. Two threads operating on
/// different devices never interfere (paper §4.2.1); interference *within*
/// a device depends on the backend's lock granularity.
pub trait NetDevice: Send + Sync {
    /// The owning rank.
    fn rank(&self) -> Rank;
    /// This device's index on its rank.
    fn dev_id(&self) -> DevId;
    /// The configuration the device was created with.
    fn config(&self) -> &DeviceConfig;

    /// Posts a two-sided send toward `(target, target_dev)`. The payload
    /// is staged immediately (the send buffer may be reused as soon as
    /// the `SendDone` completion is polled; in this simulation it may be
    /// reused on return, but portable callers must wait for the CQE).
    fn post_send(
        &self,
        target: Rank,
        target_dev: DevId,
        data: &[u8],
        imm: u64,
        ctx: u64,
    ) -> NetResult<()>;

    /// Posts up to `msgs.len()` two-sided sends toward `(target,
    /// target_dev)` under **one** posting-lock acquisition, amortizing
    /// the per-message lock round-trip that dominates small-message
    /// overhead on coarse-lock providers (paper §4.2.4).
    ///
    /// Returns the number of messages actually posted, in order:
    /// partial progress, not all-or-nothing. If the target ring fills
    /// (or the peer is not ready) after `n > 0` messages, `Ok(n)` is
    /// returned and the caller retries the tail later. An error is
    /// returned only when *nothing* was posted.
    ///
    /// The default implementation loops over [`NetDevice::post_send`]
    /// (one lock acquisition per message); backends override it.
    fn post_send_batch(
        &self,
        target: Rank,
        target_dev: DevId,
        msgs: &[SendDesc<'_>],
    ) -> NetResult<usize> {
        let mut posted = 0;
        for m in msgs {
            match self.post_send(target, target_dev, m.data, m.imm, m.ctx) {
                Ok(()) => posted += 1,
                Err(e) if posted == 0 => return Err(e),
                Err(_) => break,
            }
        }
        Ok(posted)
    }

    /// Pre-posts a receive buffer to the shared receive queue.
    fn post_recv(&self, desc: RecvBufDesc) -> NetResult<()>;

    /// Pre-posts up to `descs.len()` receive buffers under **one**
    /// SRQ/endpoint-lock acquisition — the receive-side mirror of
    /// [`NetDevice::post_send_batch`], used by the LCI progress engine
    /// to restock the shared receive queue in bulk.
    ///
    /// Returns the number of buffers actually posted, in order: partial
    /// progress, not all-or-nothing. An error is returned only when
    /// *nothing* was posted; the caller keeps ownership of the unposted
    /// tail.
    ///
    /// The default implementation loops over [`NetDevice::post_recv`]
    /// (one lock acquisition per buffer); backends override it.
    fn post_recv_batch(&self, descs: &[RecvBufDesc]) -> NetResult<usize> {
        let mut posted = 0;
        for d in descs {
            match self.post_recv(*d) {
                Ok(()) => posted += 1,
                Err(e) if posted == 0 => return Err(e),
                Err(_) => break,
            }
        }
        Ok(posted)
    }

    /// Polls for up to `max` completions, appending them to `out`.
    /// Returns the number of completions delivered. Under the trylock
    /// discipline a busy lower-level lock surfaces as
    /// `Err(Retry(LockBusy))`.
    fn poll_cq(&self, out: &mut Vec<Cqe>, max: usize) -> NetResult<usize>;

    /// RDMA-writes `data` into the remote registered region `rkey` at
    /// `offset`. With `imm`, additionally consumes a pre-posted receive at
    /// `(target, target_dev)` to deliver a `WriteImmRecv` completion.
    #[allow(clippy::too_many_arguments)]
    fn post_write(
        &self,
        target: Rank,
        target_dev: DevId,
        data: &[u8],
        rkey: Rkey,
        offset: usize,
        imm: Option<u64>,
        ctx: u64,
    ) -> NetResult<()>;

    /// RDMA-reads from the remote registered region `rkey` at `offset`
    /// into `local` (length = `local.len`). Completes with a `ReadDone`
    /// carrying `local.ctx`.
    fn post_read(
        &self,
        target: Rank,
        local: RecvBufDesc,
        rkey: Rkey,
        offset: usize,
    ) -> NetResult<()>;

    /// Registers local memory for remote access. Goes through the
    /// device's registration cache when one is enabled (see
    /// [`crate::reg_cache`]), so repeat registrations of the same buffer
    /// are hits.
    fn register(&self, ptr: *const u8, len: usize) -> NetResult<MemoryRegion>;

    /// Deregisters a region. With a registration cache this is a cached
    /// *release*: the registration stays alive for reuse until evicted.
    fn deregister(&self, mr: &MemoryRegion) -> NetResult<()>;

    /// Registration-cache counters for this device; all-zero when the
    /// device has no cache (or it is disabled).
    fn reg_cache_stats(&self) -> RegCacheStats {
        RegCacheStats::default()
    }

    /// The device's recycled staging-buffer pool, if it has one. The LCI
    /// layer stages its own per-operation copies (eager staging,
    /// coalesced frames, rendezvous scratch, bounce buffers) through it
    /// so the whole data path shares one recycling domain.
    fn buf_pool(&self) -> Option<BufPool> {
        None
    }

    /// Buffer-pool counters; all-zero when the device has no pool.
    fn buf_pool_stats(&self) -> BufPoolStats {
        BufPoolStats::default()
    }

    /// Number of currently pre-posted receives (used by the LCI progress
    /// engine to decide when to replenish).
    fn posted_recvs(&self) -> usize;

    /// The device's doorbell, rung whenever work plausibly becomes
    /// available for `poll_cq` (wire delivery into the RX ring, locally
    /// staged completions). A progress thread parks on it instead of
    /// spin-polling. `None` for backends without doorbell support.
    fn doorbell(&self) -> Option<Arc<Doorbell>> {
        None
    }

    /// Number of inbound wire messages waiting in the device's RX ring
    /// (racy snapshot). A progress thread refuses to park while this is
    /// non-zero: a message can sit in the ring without a matching
    /// pre-posted receive (RNR), and draining it needs further polls,
    /// not another doorbell ring.
    fn inbound_pending(&self) -> usize {
        0
    }

    /// Outbound work accepted by a post call but not yet on the wire
    /// (deferred-flush transports: the tcp send queues). Quiescence
    /// checks poll this — a send that completed locally may still need
    /// progress calls before the peer can observe it. Zero for
    /// transports that ship at post time.
    fn outbound_pending(&self) -> usize {
        0
    }

    /// Transport-level counters (ring occupancy HWM, cross-process
    /// doorbell wakes). All-zero for backends without a transport layer.
    fn transport_stats(&self) -> TransportStats {
        TransportStats::default()
    }

    /// Tears the device down: closes its RX endpoint (subsequent sends
    /// to it fail fatally), and hands back every undelivered completion
    /// and every still-posted receive buffer so the owner can reclaim
    /// the contexts (buffers, packets) they reference.
    fn teardown(&self) -> (Vec<Cqe>, Vec<RecvBufDesc>);
}

/// Per-rank handle onto the fabric; creates devices.
#[derive(Clone)]
pub struct NetContext {
    fabric: Arc<Fabric>,
    rank: Rank,
}

impl NetContext {
    /// Opens the context for `rank` on `fabric`.
    pub fn new(fabric: Arc<Fabric>, rank: Rank) -> Self {
        assert!(rank < fabric.nranks(), "rank {rank} out of range");
        Self { fabric, rank }
    }

    /// This context's rank.
    pub fn rank(&self) -> Rank {
        self.rank
    }

    /// Total ranks on the fabric.
    pub fn nranks(&self) -> usize {
        self.fabric.nranks()
    }

    /// The underlying fabric.
    pub fn fabric(&self) -> &Arc<Fabric> {
        &self.fabric
    }

    /// Creates a device with the given configuration.
    pub fn create_device(&self, cfg: DeviceConfig) -> Arc<dyn NetDevice> {
        // One doorbell per device, shared by the RX endpoint (remote
        // senders ring it on wire delivery) and the backend (local posts
        // ring it when they stage completions).
        let bell = Arc::new(Doorbell::new());
        let rx = Arc::new(RxEndpoint::with_doorbell(cfg.rx_capacity, bell.clone()));
        let dev_id = self.fabric.add_device(self.rank, rx.clone());
        match cfg.backend {
            BackendKind::Ibv => {
                Arc::new(IbvDevice::new(self.fabric.clone(), self.rank, dev_id, rx, bell, cfg))
            }
            BackendKind::Ofi => {
                Arc::new(OfiDevice::new(self.fabric.clone(), self.rank, dev_id, rx, bell, cfg))
            }
            BackendKind::Shm => {
                Arc::new(ShmDevice::new(self.fabric.clone(), self.rank, dev_id, rx, bell, cfg))
            }
            #[cfg(unix)]
            BackendKind::Tcp => Arc::new(crate::tcp::TcpDevice::new(
                self.fabric.clone(),
                self.rank,
                dev_id,
                rx,
                bell,
                cfg,
            )),
            #[cfg(not(unix))]
            BackendKind::Tcp => panic!("the tcp backend requires a unix platform"),
        }
    }
}

/// Copies a delivered wire message into a pre-posted receive buffer and
/// builds the corresponding CQE. Shared by both backends (stands in for
/// NIC DMA + CQE write).
pub(crate) fn deliver_into(msg: &WireMsg, desc: &RecvBufDesc) -> NetResult<Cqe> {
    match msg.kind {
        WireMsgKind::Send => {
            let data = msg.payload.as_slice();
            if data.len() > desc.len {
                return Err(crate::types::NetError::fatal(format!(
                    "receive buffer too small: {} < {}",
                    desc.len,
                    data.len()
                )));
            }
            // SAFETY: the RecvBufDesc contract guarantees the region is
            // valid for writes and unaliased while posted.
            unsafe {
                std::ptr::copy_nonoverlapping(data.as_ptr(), desc.ptr, data.len());
            }
            Ok(Cqe {
                kind: CqeKind::RecvDone,
                ctx: desc.ctx,
                imm: msg.imm,
                len: data.len(),
                src_rank: msg.src_rank,
                src_dev: msg.src_dev,
            })
        }
        WireMsgKind::WriteImm => Ok(Cqe {
            kind: CqeKind::WriteImmRecv,
            ctx: desc.ctx,
            imm: msg.imm,
            len: 0,
            src_rank: msg.src_rank,
            src_dev: msg.src_dev,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::WirePayload;

    #[test]
    fn deliver_into_copies_payload() {
        let mut buf = vec![0u8; 32];
        // SAFETY: buf outlives the descriptor use.
        let desc = unsafe { RecvBufDesc::new(buf.as_mut_ptr(), buf.len(), 7) };
        let msg = WireMsg {
            src_rank: 3,
            src_dev: 1,
            imm: 99,
            kind: WireMsgKind::Send,
            payload: WirePayload::from_slice(&[1, 2, 3, 4]),
        };
        let cqe = deliver_into(&msg, &desc).unwrap();
        assert_eq!(cqe.kind, CqeKind::RecvDone);
        assert_eq!(cqe.ctx, 7);
        assert_eq!(cqe.imm, 99);
        assert_eq!(cqe.len, 4);
        assert_eq!(cqe.src_rank, 3);
        assert_eq!(&buf[..4], &[1, 2, 3, 4]);
    }

    #[test]
    fn deliver_into_rejects_overflow() {
        let mut buf = vec![0u8; 2];
        let desc = unsafe { RecvBufDesc::new(buf.as_mut_ptr(), buf.len(), 0) };
        let msg = WireMsg {
            src_rank: 0,
            src_dev: 0,
            imm: 0,
            kind: WireMsgKind::Send,
            payload: WirePayload::from_slice(&[1, 2, 3]),
        };
        assert!(deliver_into(&msg, &desc).is_err());
    }

    #[test]
    fn deliver_write_imm_no_copy() {
        let mut buf = vec![9u8; 4];
        let desc = unsafe { RecvBufDesc::new(buf.as_mut_ptr(), buf.len(), 5) };
        let msg = WireMsg {
            src_rank: 1,
            src_dev: 0,
            imm: 0xDEAD,
            kind: WireMsgKind::WriteImm,
            payload: WirePayload::None,
        };
        let cqe = deliver_into(&msg, &desc).unwrap();
        assert_eq!(cqe.kind, CqeKind::WriteImmRecv);
        assert_eq!(cqe.imm, 0xDEAD);
        assert_eq!(cqe.len, 0);
        assert_eq!(buf, vec![9u8; 4]); // untouched
    }
}
