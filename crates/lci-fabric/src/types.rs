//! Common identifier, descriptor, and error types for the fabric layer.

/// A process-like endpoint of the fabric. The paper runs one OS process
/// per rank; this reproduction runs ranks as threads of one process (see
/// DESIGN.md), so a `Rank` is just an index into the fabric.
pub type Rank = usize;

/// Index of a network device within a rank. Devices are created in the
/// same order on every rank in all our workloads, so `(rank, DevId)`
/// addresses a unique queue-pair peer, like a connected RC queue pair.
pub type DevId = usize;

/// Maximum payload carried inline inside a wire slot without touching the
/// heap — models NIC inline data / injected sends.
pub const INLINE_MAX: usize = 64;

/// Why an operation could not be carried out *right now*.
///
/// The LCI runtime maps these to its user-visible `retry` status category
/// (paper §3.2.5); baselines typically spin instead.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RetryReason {
    /// The target device's RX ring is full (flow-control backpressure).
    RxFull,
    /// A trylock-wrapped lower-level lock was busy (paper §4.2.2).
    LockBusy,
    /// The local packet/buffer pool had nothing to hand out.
    NoPacket,
    /// Too many operations outstanding (send-queue depth exhausted).
    QueueFull,
    /// The target device does not exist (yet); resources may still be
    /// bootstrapping.
    PeerNotReady,
}

impl std::fmt::Display for RetryReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            RetryReason::RxFull => "target RX ring full",
            RetryReason::LockBusy => "lower-level lock busy",
            RetryReason::NoPacket => "no packet available",
            RetryReason::QueueFull => "send queue full",
            RetryReason::PeerNotReady => "peer device not ready",
        };
        f.write_str(s)
    }
}

/// Fabric-layer errors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NetError {
    /// The operation should be resubmitted later.
    Retry(RetryReason),
    /// The operation failed permanently (bad rank, bad rkey, out-of-bounds
    /// RDMA, device closed, ...).
    Fatal(String),
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Retry(r) => write!(f, "retry: {r}"),
            NetError::Fatal(m) => write!(f, "fatal network error: {m}"),
        }
    }
}

impl std::error::Error for NetError {}

/// Result alias for fabric operations.
pub type NetResult<T> = Result<T, NetError>;

impl NetError {
    /// Convenience constructor for fatal errors.
    pub fn fatal(msg: impl Into<String>) -> Self {
        NetError::Fatal(msg.into())
    }

    /// Whether this error is retryable.
    pub fn is_retry(&self) -> bool {
        matches!(self, NetError::Retry(_))
    }
}

/// Payload staged on the wire.
///
/// Tiny messages ride inline in the ring slot (like NIC inline sends);
/// larger eager messages are staged through one heap buffer — the analog
/// of the NIC reading the send buffer over PCIe. RDMA never uses this
/// path. The heap buffer is a [`PoolBuf`](crate::buf_pool::PoolBuf):
/// when the sending device has buffer recycling enabled, its storage
/// returns to the sender's pool as soon as the message is delivered
/// (dropped on the receive side) — the steady-state staging path never
/// touches malloc.
#[derive(Clone, Debug)]
pub enum WirePayload {
    /// No payload (pure notification, e.g. RDMA-write immediate).
    None,
    /// Payload stored inline.
    Inline { data: [u8; INLINE_MAX], len: u8 },
    /// Payload staged on the heap (recycled when pooled).
    Heap(crate::buf_pool::PoolBuf),
}

impl WirePayload {
    /// Builds a payload from a byte slice, choosing inline vs heap. The
    /// heap copy is detached (not recycled); backends stage through
    /// their device pool instead ([`BufPool::stage`](crate::buf_pool::BufPool::stage)).
    pub fn from_slice(src: &[u8]) -> Self {
        if src.is_empty() {
            WirePayload::None
        } else if src.len() <= INLINE_MAX {
            let mut data = [0u8; INLINE_MAX];
            data[..src.len()].copy_from_slice(src);
            WirePayload::Inline { data, len: src.len() as u8 }
        } else {
            WirePayload::Heap(crate::buf_pool::PoolBuf::detached(src.to_vec()))
        }
    }

    /// The payload bytes.
    pub fn as_slice(&self) -> &[u8] {
        match self {
            WirePayload::None => &[],
            WirePayload::Inline { data, len } => &data[..*len as usize],
            WirePayload::Heap(b) => b,
        }
    }

    /// Payload length in bytes.
    pub fn len(&self) -> usize {
        match self {
            WirePayload::None => 0,
            WirePayload::Inline { len, .. } => *len as usize,
            WirePayload::Heap(b) => b.len(),
        }
    }

    /// Whether the payload is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A message in flight on the simulated wire (one RX-ring slot).
#[derive(Debug)]
pub struct WireMsg {
    /// Sending rank.
    pub src_rank: Rank,
    /// Sending device on `src_rank`.
    pub src_dev: DevId,
    /// 64-bit immediate data, available to the upper layer. (Real verbs
    /// grants 32 bits; we grant 64 and let the LCI layer pack its
    /// protocol header into it.)
    pub imm: u64,
    /// Message kind.
    pub kind: WireMsgKind,
    /// Staged payload (empty for write-immediate notifications).
    pub payload: WirePayload,
}

/// Kind of wire message.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WireMsgKind {
    /// A two-sided send; consumes a pre-posted receive at the target.
    Send,
    /// RDMA-write-with-immediate notification; consumes a pre-posted
    /// receive at the target but carries no payload (data was written
    /// directly into registered memory).
    WriteImm,
}

/// Completion-queue entry kinds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CqeKind {
    /// A `post_send` finished; the send buffer may be reused.
    SendDone,
    /// A pre-posted receive was filled by an incoming send.
    RecvDone,
    /// An RDMA write finished locally.
    WriteDone,
    /// An RDMA read finished locally; the local buffer is filled.
    ReadDone,
    /// A pre-posted receive was consumed by an incoming
    /// RDMA-write-with-immediate (carries `imm`, zero-length data).
    WriteImmRecv,
}

/// A completion-queue entry returned by `poll_cq`.
#[derive(Clone, Debug)]
pub struct Cqe {
    /// What completed.
    pub kind: CqeKind,
    /// Opaque user context supplied at post time (for local completions)
    /// or at receive-post time (for receive completions).
    pub ctx: u64,
    /// Immediate data (receive-side entries).
    pub imm: u64,
    /// Number of bytes delivered (receive-side entries).
    pub len: usize,
    /// Source rank (receive-side entries).
    pub src_rank: Rank,
    /// Source device (receive-side entries).
    pub src_dev: DevId,
}

impl Cqe {
    /// Builds a local (send/write/read) completion.
    pub fn local(kind: CqeKind, ctx: u64) -> Self {
        Cqe { kind, ctx, imm: 0, len: 0, src_rank: usize::MAX, src_dev: usize::MAX }
    }
}

/// Descriptor of a pre-posted receive buffer handed to the device.
///
/// The memory is owned by the upper layer (an LCI packet, a baseline's
/// staging buffer, ...) and must stay valid until the matching `RecvDone`
/// completion is polled — the same contract as `ibv_post_srq_recv`.
#[derive(Clone, Copy, Debug)]
pub struct RecvBufDesc {
    /// Base address of the writable region.
    pub ptr: *mut u8,
    /// Capacity in bytes.
    pub len: usize,
    /// Opaque context returned in the completion.
    pub ctx: u64,
}

// SAFETY: the descriptor is an address + promise; the upper layer
// guarantees the pointed-to region outlives the posted receive and is not
// accessed concurrently while posted (documented contract, as in verbs).
unsafe impl Send for RecvBufDesc {}

impl RecvBufDesc {
    /// Creates a descriptor for a raw region.
    ///
    /// # Safety
    /// `ptr..ptr+len` must be valid for writes until the receive
    /// completion for this descriptor is polled, and must not be read or
    /// written by the application in that window.
    pub unsafe fn new(ptr: *mut u8, len: usize, ctx: u64) -> Self {
        RecvBufDesc { ptr, len, ctx }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_payload_inline_roundtrip() {
        let src = [7u8; 48];
        let p = WirePayload::from_slice(&src);
        assert!(matches!(p, WirePayload::Inline { .. }));
        assert_eq!(p.as_slice(), &src);
        assert_eq!(p.len(), 48);
    }

    #[test]
    fn wire_payload_heap_roundtrip() {
        let src: Vec<u8> = (0..200).map(|i| i as u8).collect();
        let p = WirePayload::from_slice(&src);
        assert!(matches!(p, WirePayload::Heap(_)));
        assert_eq!(p.as_slice(), &src[..]);
    }

    #[test]
    fn wire_payload_empty() {
        let p = WirePayload::from_slice(&[]);
        assert!(matches!(p, WirePayload::None));
        assert!(p.is_empty());
    }

    #[test]
    fn neterror_display_and_retry() {
        let e = NetError::Retry(RetryReason::RxFull);
        assert!(e.is_retry());
        assert!(e.to_string().contains("RX ring full"));
        let f = NetError::fatal("boom");
        assert!(!f.is_retry());
        assert!(f.to_string().contains("boom"));
    }
}
