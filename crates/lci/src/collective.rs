//! Basic collective communication (paper §6): a dissemination-based
//! barrier and binomial-tree broadcast/reduce, built entirely from LCI
//! point-to-point primitives — the paper's position is that point-to-
//! point operations are the building blocks for collectives.
//!
//! Tags with the highest bit set are reserved for collectives; a
//! per-runtime sequence number keeps concurrent collectives of the same
//! kind apart (all ranks must invoke collectives in the same order, the
//! usual MPI-style contract).
//!
//! These are *blocking* convenience wrappers that pump progress on the
//! runtime's default device; non-blocking collectives can be composed by
//! the user with the completion graph (see `comp::graph`).

use crate::comp::Comp;
use crate::error::{PostResult, Result};
use crate::runtime::Runtime;
use crate::types::{Rank, Tag};
use std::sync::atomic::{AtomicU32, Ordering};

/// Reserved tag space marker.
const COLL_TAG: Tag = 0x8000_0000;

fn coll_tag(seq: u32, round: u32) -> Tag {
    COLL_TAG | ((seq & 0x7FFF) << 16) | (round & 0xFFFF)
}

/// Waits for `expected` signals on a synchronizer comp.
fn wait_sync(rt: &Runtime, comp: &Comp) -> Result<()> {
    let sync = comp.as_sync().expect("synchronizer comp");
    while !sync.test() {
        rt.progress()?;
        std::hint::spin_loop();
    }
    sync.reset();
    Ok(())
}

/// Collective sequence number for `rt` (ranks advance in lockstep).
fn next_seq(rt: &Runtime) -> u32 {
    // One counter per runtime would be ideal; runtimes are per-rank
    // objects here, so a per-process counter would be shared across
    // ranks. Instead derive the sequence from a per-runtime atomic
    // stored in the runtime's collective state.
    rt.coll_seq().fetch_add(1, Ordering::Relaxed)
}

/// Dissemination barrier across all ranks.
///
/// Round `r`: rank `i` signals `(i + 2^r) mod n` and waits for a signal
/// from `(i - 2^r) mod n`; after `ceil(log2 n)` rounds every rank has
/// transitively heard from every other.
pub fn barrier(rt: &Runtime) -> Result<()> {
    let n = rt.rank_n();
    if n == 1 {
        return Ok(());
    }
    let me = rt.rank_me();
    let seq = next_seq(rt);
    let mut round: u32 = 0;
    let mut dist = 1usize;
    while dist < n {
        let to = (me + dist) % n;
        let from = (me + n - dist) % n;
        let tag = coll_tag(seq, round);
        let recv_comp = Comp::alloc_sync(1);
        // Post the receive first so an eager peer matches instantly.
        let posted = rt.post_recv(from, vec![0u8; 1], tag, recv_comp.clone())?;
        // Inject-sized: anything but retry is `done` (no signal) or
        // parked in the backlog.
        while let PostResult::Retry(_) =
            rt.post_send(to, vec![round as u8], tag, Comp::alloc_sync(1))?
        {
            rt.progress()?;
        }
        match posted {
            PostResult::Done(_) => {}
            PostResult::Posted => wait_sync(rt, &recv_comp)?,
            PostResult::Retry(_) => unreachable!("recv never retries"),
        }
        dist <<= 1;
        round += 1;
    }
    Ok(())
}

/// Binomial-tree broadcast of `buf` from `root`. Every rank passes a
/// buffer of identical length; on non-root ranks it is overwritten.
pub fn broadcast(rt: &Runtime, root: Rank, buf: &mut Vec<u8>) -> Result<()> {
    let n = rt.rank_n();
    if n == 1 {
        return Ok(());
    }
    let me = rt.rank_me();
    let vr = (me + n - root) % n; // rank relative to root
    let seq = next_seq(rt);
    let tag = coll_tag(seq, 0xBC);

    // Receive phase: every non-root receives once, from the relative
    // rank with the highest set bit of `vr` cleared.
    if vr != 0 {
        let hb = 1usize << (usize::BITS - 1 - vr.leading_zeros());
        let parent = ((vr - hb) + root) % n;
        let comp = Comp::alloc_sync(1);
        match rt.post_recv(parent, std::mem::take(buf).into_boxed_slice(), tag, comp.clone())? {
            PostResult::Done(desc) => *buf = desc.data.into_vec(),
            PostResult::Posted => {
                let sync = comp.as_sync().unwrap();
                while !sync.test() {
                    rt.progress()?;
                }
                let desc = sync.take().pop().expect("bcast recv desc");
                *buf = desc.data.into_vec();
            }
            PostResult::Retry(_) => unreachable!("recv never retries"),
        }
    }

    // Send phase: forward to children vr + m for doubling m.
    let mut m = if vr == 0 { 1 } else { 1usize << (usize::BITS - vr.leading_zeros()) };
    while vr + m < n {
        let child = ((vr + m) + root) % n;
        let comp = Comp::alloc_sync(1);
        loop {
            match rt.post_send(child, buf.clone(), tag, comp.clone())? {
                PostResult::Done(_) => break,
                PostResult::Posted => {
                    wait_sync(rt, &comp)?;
                    break;
                }
                PostResult::Retry(_) => rt.progress().map(|_| ())?,
            }
        }
        m <<= 1;
    }
    Ok(())
}

/// Binomial-tree reduction of `u64` vectors to `root` with `op`.
/// Returns `Some(result)` on the root, `None` elsewhere.
pub fn reduce_u64(
    rt: &Runtime,
    root: Rank,
    contrib: &[u64],
    op: impl Fn(u64, u64) -> u64 + Copy,
) -> Result<Option<Vec<u64>>> {
    let n = rt.rank_n();
    let me = rt.rank_me();
    let mut acc: Vec<u64> = contrib.to_vec();
    if n == 1 {
        return Ok(Some(acc));
    }
    let vr = (me + n - root) % n;
    let seq = next_seq(rt);
    let tag = coll_tag(seq, 0x4D);

    let mut m = 1usize;
    loop {
        if vr & m != 0 {
            // Send the partial to the parent and exit.
            let parent = ((vr - m) + root) % n;
            let bytes: Vec<u8> = acc.iter().flat_map(|v| v.to_le_bytes()).collect();
            let comp = Comp::alloc_sync(1);
            loop {
                match rt.post_send(parent, bytes.clone(), tag, comp.clone())? {
                    PostResult::Done(_) => break,
                    PostResult::Posted => {
                        wait_sync(rt, &comp)?;
                        break;
                    }
                    PostResult::Retry(_) => {
                        rt.progress()?;
                    }
                }
            }
            return Ok(None);
        }
        if vr + m < n {
            // Receive a child's partial and fold it in.
            let child = ((vr + m) + root) % n;
            let comp = Comp::alloc_sync(1);
            let buf = vec![0u8; acc.len() * 8];
            let desc = match rt.post_recv(child, buf, tag, comp.clone())? {
                PostResult::Done(desc) => desc,
                PostResult::Posted => {
                    let sync = comp.as_sync().unwrap();
                    while !sync.test() {
                        rt.progress()?;
                    }
                    sync.take().pop().expect("reduce recv desc")
                }
                PostResult::Retry(_) => unreachable!("recv never retries"),
            };
            let bytes = desc.data.as_slice();
            for (i, chunk) in bytes.chunks_exact(8).enumerate() {
                let v = u64::from_le_bytes(chunk.try_into().unwrap());
                acc[i] = op(acc[i], v);
            }
        }
        m <<= 1;
        if m >= n {
            break;
        }
    }
    Ok(Some(acc))
}

/// Allgather: every rank contributes `mine`; returns all contributions
/// rank-ordered. All contributions must have equal length.
pub fn allgather(rt: &Runtime, mine: &[u8]) -> Result<Vec<Vec<u8>>> {
    let n = rt.rank_n();
    let me = rt.rank_me();
    let seq = next_seq(rt);
    let tag = coll_tag(seq, 0xA6);
    let mut out: Vec<Vec<u8>> = vec![Vec::new(); n];
    out[me] = mine.to_vec();
    if n == 1 {
        return Ok(out);
    }
    // Bruck-style ring: in round r every rank sends what it has from
    // rank (me - r) to its right neighbour; n-1 rounds.
    let right = (me + 1) % n;
    let left = (me + n - 1) % n;
    for r in 0..n - 1 {
        let src_rank = (me + n - r) % n; // whose data we forward
        let payload = out[src_rank].clone();
        let comp = Comp::alloc_sync(1);
        let recv_comp = Comp::alloc_sync(1);
        let posted = rt.post_recv(left, vec![0u8; mine.len().max(8)], tag, recv_comp.clone())?;
        loop {
            match rt.post_send(right, payload.clone(), tag, comp.clone())? {
                PostResult::Done(_) => break,
                PostResult::Posted => {
                    wait_sync(rt, &comp)?;
                    break;
                }
                PostResult::Retry(_) => {
                    rt.progress()?;
                }
            }
        }
        let desc = match posted {
            PostResult::Done(d) => d,
            PostResult::Posted => {
                let sync = recv_comp.as_sync().unwrap();
                while !sync.test() {
                    rt.progress()?;
                }
                sync.take().pop().expect("allgather recv desc")
            }
            PostResult::Retry(_) => unreachable!("recv never retries"),
        };
        let incoming_rank = (left + n - r) % n;
        out[incoming_rank] = desc.data.into_vec();
    }
    Ok(out)
}

/// All-to-all personalized exchange: `send[i]` goes to rank `i`; returns
/// what every rank sent to us, rank-ordered. All blocks must have equal
/// length across ranks.
pub fn alltoall(rt: &Runtime, send: &[Vec<u8>]) -> Result<Vec<Vec<u8>>> {
    let n = rt.rank_n();
    let me = rt.rank_me();
    assert_eq!(send.len(), n, "alltoall needs one block per rank");
    let seq = next_seq(rt);
    let tag = coll_tag(seq, 0xAA);
    let mut out: Vec<Vec<u8>> = vec![Vec::new(); n];
    out[me] = send[me].clone();
    // Post all receives first, then pairwise-exchange by XOR-like
    // rotation (works for any n with (me + r) % n scheduling).
    let mut recvs = Vec::new();
    for peer in (0..n).filter(|&p| p != me) {
        let comp = Comp::alloc_sync(1);
        match rt.post_recv(peer, vec![0u8; send[peer].len().max(8)], tag, comp.clone())? {
            PostResult::Done(d) => out[peer] = d.data.into_vec(),
            PostResult::Posted => recvs.push((peer, comp)),
            PostResult::Retry(_) => unreachable!("recv never retries"),
        }
    }
    for r in 1..n {
        let peer = (me + r) % n;
        let comp = Comp::alloc_sync(1);
        loop {
            match rt.post_send(peer, send[peer].clone(), tag, comp.clone())? {
                PostResult::Done(_) => break,
                PostResult::Posted => {
                    wait_sync(rt, &comp)?;
                    break;
                }
                PostResult::Retry(_) => {
                    rt.progress()?;
                }
            }
        }
    }
    for (peer, comp) in recvs {
        let sync = comp.as_sync().unwrap();
        while !sync.test() {
            rt.progress()?;
        }
        out[peer] = sync.take().pop().expect("alltoall desc").data.into_vec();
    }
    Ok(out)
}

/// Non-blocking dissemination barrier composed as a completion graph
/// (paper §3.2.5: "the local partial execution order and the ordering
/// imposed by communication operations allow intuitive implementations
/// of complex nonblocking collective algorithms").
///
/// Returns the started graph; poll it with
/// [`Graph::test`](crate::Graph::test) while progressing the runtime.
pub fn ibarrier(rt: &Runtime) -> Result<std::sync::Arc<crate::Graph>> {
    use crate::GraphBuilder;
    let n = rt.rank_n();
    let me = rt.rank_me();
    let seq = next_seq(rt);
    let mut gb = GraphBuilder::new();
    if n == 1 {
        let g = gb.build();
        g.start();
        return Ok(g);
    }
    let mut prev: Option<crate::NodeId> = None;
    let mut dist = 1usize;
    let mut round: u32 = 0;
    while dist < n {
        let to = (me + dist) % n;
        let from = (me + n - dist) % n;
        let tag = coll_tag(seq, round);
        // One node per round: completes when both the round's send has
        // been accepted and its receive delivered (the receive is the
        // ordering carrier; sends are fire-and-forget inject messages).
        let rt2 = rt.clone();
        let node = gb.add_comm(move |comp| {
            while let Ok(PostResult::Retry(_)) =
                rt2.post_send(to, vec![0u8; 1], tag, Comp::alloc_handler(|_| {}))
            {
                let _ = rt2.progress();
            }
            match rt2.post_recv(from, vec![0u8; 8], tag, comp.clone()) {
                Ok(PostResult::Done(d)) => comp.signal(d),
                Ok(PostResult::Posted) => {}
                _ => unreachable!("recv never retries"),
            }
        });
        if let Some(p) = prev {
            gb.add_edge(p, node);
        }
        prev = Some(node);
        dist <<= 1;
        round += 1;
    }
    let g = gb.build();
    g.start();
    Ok(g)
}

/// Allreduce = reduce to rank `0` + broadcast.
pub fn allreduce_u64(
    rt: &Runtime,
    contrib: &[u64],
    op: impl Fn(u64, u64) -> u64 + Copy,
) -> Result<Vec<u64>> {
    let reduced = reduce_u64(rt, 0, contrib, op)?;
    let mut bytes: Vec<u8> = match reduced {
        Some(v) => v.iter().flat_map(|x| x.to_le_bytes()).collect(),
        None => vec![0u8; contrib.len() * 8],
    };
    broadcast(rt, 0, &mut bytes)?;
    Ok(bytes.chunks_exact(8).map(|c| u64::from_le_bytes(c.try_into().unwrap())).collect())
}

/// Internal hook: collective sequence counter accessor on Runtime.
impl Runtime {
    pub(crate) fn coll_seq(&self) -> &AtomicU32 {
        // The counter lives beside the runtime's inner state; a process-
        // global fallback would break multi-runtime composition, so it is
        // stored per runtime.
        &self.inner.coll_seq
    }
}
