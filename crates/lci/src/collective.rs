//! Legacy alias of [`crate::coll`], kept so existing `lci::collective`
//! call sites compile unchanged. New code should use [`crate::coll`]
//! directly — it adds the byte-slice collectives
//! ([`coll::allreduce`](crate::coll::allreduce),
//! [`coll::alltoall_bytes`](crate::coll::alltoall_bytes), …), the
//! [`ReduceOp`](crate::coll::ReduceOp) operators, and the non-blocking
//! [`IColl`](crate::coll::IColl) variants.

pub use crate::coll::*;
