//! Completion objects (paper §3.2.5, §4.1.4).
//!
//! A completion object is signaled with a completion descriptor
//! ([`CompDesc`]) when a posted communication completes locally. LCI
//! defines four built-in types, all atomic-based:
//!
//! * [`Synchronizer`](sync_obj::Synchronizer) — like an MPI request, but
//!   can accept multiple signals before becoming ready;
//! * [`CompQueue`](queue::CompQueue) — a concurrent completion queue
//!   (an FAA-based fixed-size array, a hand-written [`lcrq`], and a
//!   crossbeam segmented queue as ablation yardstick);
//! * handler — a function invoked inline by the progress engine;
//! * [`Graph`](graph::Graph) — a CUDA-Graph-like partial order of
//!   operations, each started when its predecessors complete.

pub mod graph;
pub mod lcrq;
pub mod queue;
pub mod sync_obj;

use crate::types::CompDesc;
use std::sync::Arc;

/// Completion handler function type.
pub type HandlerFn = Box<dyn Fn(CompDesc) + Send + Sync>;

pub(crate) enum CompInner {
    Sync(sync_obj::Synchronizer),
    Queue(queue::CompQueue),
    Handler(HandlerFn),
    GraphNode { graph: Arc<graph::Graph>, node: graph::NodeId },
}

/// A completion-object handle (the paper's `comp_t`). Cheap to clone;
/// the object is freed when the last handle drops.
#[derive(Clone)]
pub struct Comp {
    inner: Arc<CompInner>,
}

impl Comp {
    /// Allocates a synchronizer expecting `expected` signals.
    pub fn alloc_sync(expected: usize) -> Comp {
        Comp { inner: Arc::new(CompInner::Sync(sync_obj::Synchronizer::new(expected))) }
    }

    /// Allocates a completion queue with the default implementation.
    pub fn alloc_cq() -> Comp {
        Comp { inner: Arc::new(CompInner::Queue(queue::CompQueue::default())) }
    }

    /// Allocates a completion queue with an explicit configuration.
    pub fn alloc_cq_with(cfg: queue::CqConfig) -> Comp {
        Comp { inner: Arc::new(CompInner::Queue(queue::CompQueue::new(cfg))) }
    }

    /// Allocates a handler completion object.
    pub fn alloc_handler(f: impl Fn(CompDesc) + Send + Sync + 'static) -> Comp {
        Comp { inner: Arc::new(CompInner::Handler(Box::new(f))) }
    }

    /// A handle that signals node `node` of `graph`.
    pub fn graph_node(graph: Arc<graph::Graph>, node: graph::NodeId) -> Comp {
        Comp { inner: Arc::new(CompInner::GraphNode { graph, node }) }
    }

    /// Signals the completion object with a descriptor. Called by the
    /// runtime when an operation completes; also usable directly (e.g.
    /// manually invoking a handler after a `done`-category post).
    pub fn signal(&self, desc: CompDesc) {
        match &*self.inner {
            CompInner::Sync(s) => s.signal(desc),
            CompInner::Queue(q) => q.push(desc),
            CompInner::Handler(f) => f(desc),
            CompInner::GraphNode { graph, node } => graph.signal_node(*node, desc),
        }
    }

    /// Pops a descriptor from a queue completion object.
    ///
    /// Returns `None` both when empty and when the object is not a queue
    /// — use [`Comp::as_queue`] to distinguish.
    pub fn pop(&self) -> Option<CompDesc> {
        self.as_queue()?.pop()
    }

    /// Pops from the completion queue, parking for up to `timeout` while
    /// it stays empty (see [`queue::CompQueue::pop_wait`]). `None` if
    /// this is not a queue or on timeout.
    pub fn pop_wait(&self, timeout: std::time::Duration) -> Option<CompDesc> {
        self.as_queue()?.pop_wait(timeout)
    }

    /// Borrows the synchronizer, if this is one.
    pub fn as_sync(&self) -> Option<&sync_obj::Synchronizer> {
        match &*self.inner {
            CompInner::Sync(s) => Some(s),
            _ => None,
        }
    }

    /// Borrows the completion queue, if this is one.
    pub fn as_queue(&self) -> Option<&queue::CompQueue> {
        match &*self.inner {
            CompInner::Queue(q) => Some(q),
            _ => None,
        }
    }
}

impl std::fmt::Debug for Comp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let kind = match &*self.inner {
            CompInner::Sync(_) => "Sync",
            CompInner::Queue(_) => "Queue",
            CompInner::Handler(_) => "Handler",
            CompInner::GraphNode { node, .. } => return write!(f, "Comp::GraphNode({node})"),
        };
        write!(f, "Comp::{kind}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::CompKind;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn desc(tag: u32) -> CompDesc {
        CompDesc { tag, kind: CompKind::Send, ..Default::default() }
    }

    #[test]
    fn handler_invoked_on_signal() {
        let hits = Arc::new(AtomicUsize::new(0));
        let h = hits.clone();
        let c = Comp::alloc_handler(move |d| {
            assert_eq!(d.tag, 42);
            h.fetch_add(1, Ordering::SeqCst);
        });
        c.signal(desc(42));
        c.signal(desc(42));
        assert_eq!(hits.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn queue_signal_pop() {
        let c = Comp::alloc_cq();
        assert!(c.pop().is_none());
        c.signal(desc(1));
        c.signal(desc(2));
        assert_eq!(c.pop().unwrap().tag, 1);
        assert_eq!(c.pop().unwrap().tag, 2);
        assert!(c.pop().is_none());
    }

    #[test]
    fn sync_accessor() {
        let c = Comp::alloc_sync(1);
        assert!(c.as_sync().is_some());
        assert!(c.as_queue().is_none());
        c.signal(desc(0));
        assert!(c.as_sync().unwrap().test());
    }
}
