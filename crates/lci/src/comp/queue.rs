//! The completion-queue object (paper §4.1.4).
//!
//! Three implementations (the paper ships the first two):
//!
//! * [`CqImpl::FaaArray`] — a hand-written fetch-and-add-based fixed-size
//!   array (a bounded MPMC ring with per-slot sequence numbers). Its
//!   throughput is bounded by how fast threads can FAA the shared head
//!   and tail counters — the limit paper Fig. 5 measures.
//! * [`CqImpl::Lcrq`] — a hand-written LCRQ (Morrison & Afek): a linked
//!   list of closable circular rings; see [`crate::comp::lcrq`] for the
//!   indirect-slot adaptation to 64-bit CAS.
//! * [`CqImpl::Segmented`] — an unbounded lock-free segmented queue
//!   (`crossbeam::queue::SegQueue`), kept as a well-tested yardstick for
//!   the ablation bench.
//!
//! On a full FAA-array queue, `push` *spins*: LCI sizes completion queues
//! so overflow is a deployment error, and a spin preserves the no-loss
//! contract (completions must never be dropped).

use crate::types::CompDesc;
use crossbeam::queue::SegQueue;
use lci_fabric::sync::Doorbell;
use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

/// Completion-queue implementation selector.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CqImpl {
    /// Bounded FAA-based array of the given capacity (rounded up to a
    /// power of two).
    FaaArray,
    /// Hand-written LCRQ (linked list of closable circular rings).
    Lcrq,
    /// Unbounded segmented lock-free queue (crossbeam yardstick).
    Segmented,
}

/// Completion-queue configuration.
#[derive(Clone, Copy, Debug)]
pub struct CqConfig {
    /// Which implementation backs the queue.
    pub imp: CqImpl,
    /// Capacity for the bounded implementation.
    pub capacity: usize,
}

impl Default for CqConfig {
    fn default() -> Self {
        Self { imp: CqImpl::FaaArray, capacity: 65536 }
    }
}

/// One slot of the FAA array: a sequence number gates writer/reader
/// handoff (Vyukov-style bounded MPMC).
struct Slot {
    seq: AtomicUsize,
    value: UnsafeCell<Option<CompDesc>>,
}

/// The FAA-based fixed-size array queue.
struct FaaArrayQueue {
    slots: Box<[Slot]>,
    mask: usize,
    head: AtomicUsize,
    tail: AtomicUsize,
}

// SAFETY: slot values are accessed only by the thread holding the
// matching sequence ticket (enqueue/dequeue protocol below).
unsafe impl Send for FaaArrayQueue {}
unsafe impl Sync for FaaArrayQueue {}

impl FaaArrayQueue {
    fn new(capacity: usize) -> Self {
        let cap = capacity.next_power_of_two().max(2);
        let slots: Vec<Slot> = (0..cap)
            .map(|i| Slot { seq: AtomicUsize::new(i), value: UnsafeCell::new(None) })
            .collect();
        Self {
            slots: slots.into_boxed_slice(),
            mask: cap - 1,
            head: AtomicUsize::new(0),
            tail: AtomicUsize::new(0),
        }
    }

    fn push(&self, desc: CompDesc) {
        let mut desc = Some(desc);
        loop {
            let pos = self.tail.load(Ordering::Relaxed);
            let slot = &self.slots[pos & self.mask];
            let seq = slot.seq.load(Ordering::Acquire);
            match seq.cmp(&pos) {
                std::cmp::Ordering::Equal => {
                    if self
                        .tail
                        .compare_exchange_weak(pos, pos + 1, Ordering::Relaxed, Ordering::Relaxed)
                        .is_ok()
                    {
                        // SAFETY: we own this slot until we bump seq.
                        unsafe {
                            *slot.value.get() = desc.take();
                        }
                        slot.seq.store(pos + 1, Ordering::Release);
                        return;
                    }
                }
                std::cmp::Ordering::Less => {
                    // Queue full: spin until a consumer frees the slot
                    // (completions must not be lost).
                    std::hint::spin_loop();
                }
                std::cmp::Ordering::Greater => { /* stale view; retry */ }
            }
        }
    }

    fn pop(&self) -> Option<CompDesc> {
        loop {
            let pos = self.head.load(Ordering::Relaxed);
            let slot = &self.slots[pos & self.mask];
            let seq = slot.seq.load(Ordering::Acquire);
            let expect = pos + 1;
            match seq.cmp(&expect) {
                std::cmp::Ordering::Equal => {
                    if self
                        .head
                        .compare_exchange_weak(pos, pos + 1, Ordering::Relaxed, Ordering::Relaxed)
                        .is_ok()
                    {
                        // SAFETY: we own this slot until we bump seq.
                        let v = unsafe { (*slot.value.get()).take() };
                        slot.seq.store(pos + self.mask + 1, Ordering::Release);
                        return v;
                    }
                }
                std::cmp::Ordering::Less => return None, // empty
                std::cmp::Ordering::Greater => { /* stale view; retry */ }
            }
        }
    }

    fn len(&self) -> usize {
        let t = self.tail.load(Ordering::Acquire);
        let h = self.head.load(Ordering::Acquire);
        t.saturating_sub(h)
    }
}

enum Inner {
    Faa(FaaArrayQueue),
    Lcrq(crate::comp::lcrq::Lcrq),
    Seg(SegQueue<CompDesc>),
}

/// A concurrent completion queue.
pub struct CompQueue {
    inner: Inner,
    /// Rung on every push; lets consumers park in
    /// [`pop_wait`](Self::pop_wait) instead of spinning on `pop`. Cheap
    /// when unused (one atomic increment per push, no waiters to wake).
    bell: Doorbell,
}

impl CompQueue {
    /// Creates a queue with `cfg`.
    pub fn new(cfg: CqConfig) -> Self {
        let inner = match cfg.imp {
            CqImpl::FaaArray => Inner::Faa(FaaArrayQueue::new(cfg.capacity)),
            CqImpl::Lcrq => Inner::Lcrq(crate::comp::lcrq::Lcrq::new()),
            CqImpl::Segmented => Inner::Seg(SegQueue::new()),
        };
        Self { inner, bell: Doorbell::new() }
    }

    /// Enqueues a completion descriptor (never loses it).
    pub fn push(&self, desc: CompDesc) {
        match &self.inner {
            Inner::Faa(q) => q.push(desc),
            Inner::Lcrq(q) => q.push(desc),
            Inner::Seg(q) => q.push(desc),
        }
        self.bell.ring();
    }

    /// Dequeues a descriptor if one is available.
    pub fn pop(&self) -> Option<CompDesc> {
        match &self.inner {
            Inner::Faa(q) => q.pop(),
            Inner::Lcrq(q) => q.pop(),
            Inner::Seg(q) => q.pop(),
        }
    }

    /// Dequeues a descriptor, parking the calling thread for up to
    /// `timeout` while the queue stays empty — for runtimes with
    /// dedicated progress threads, where consumers should sleep rather
    /// than poll. Returns `None` only on timeout.
    ///
    /// Eventcount protocol against the embedded doorbell (snapshot the
    /// epoch, re-pop, park only while the epoch is unchanged); every
    /// push rings after its enqueue, so a push racing the park either
    /// hands its descriptor to the re-pop or advances the epoch — no
    /// lost wakeup (see DESIGN.md §4.8).
    pub fn pop_wait(&self, timeout: Duration) -> Option<CompDesc> {
        let deadline = std::time::Instant::now() + timeout;
        loop {
            let seen = self.bell.epoch();
            if let Some(d) = self.pop() {
                return Some(d);
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return None;
            }
            self.bell.wait(seen, deadline - now);
        }
    }

    /// Approximate number of queued descriptors.
    pub fn len(&self) -> usize {
        match &self.inner {
            Inner::Faa(q) => q.len(),
            Inner::Lcrq(q) => q.len(),
            Inner::Seg(q) => q.len(),
        }
    }

    /// Whether the queue appears empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Default for CompQueue {
    fn default() -> Self {
        Self::new(CqConfig::default())
    }
}

impl std::fmt::Debug for CompQueue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let imp = match &self.inner {
            Inner::Faa(_) => "FaaArray",
            Inner::Lcrq(_) => "Lcrq",
            Inner::Seg(_) => "Segmented",
        };
        f.debug_struct("CompQueue").field("imp", &imp).field("len", &self.len()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::CompKind;
    use std::sync::Arc;

    fn desc(tag: u32) -> CompDesc {
        CompDesc { tag, kind: CompKind::Am, ..Default::default() }
    }

    fn cfg(imp: CqImpl) -> CqConfig {
        CqConfig { imp, capacity: 256 }
    }

    #[test]
    fn fifo_single_thread_both_impls() {
        for imp in [CqImpl::FaaArray, CqImpl::Lcrq, CqImpl::Segmented] {
            let q = CompQueue::new(cfg(imp));
            assert!(q.pop().is_none());
            for i in 0..100 {
                q.push(desc(i));
            }
            for i in 0..100 {
                assert_eq!(q.pop().unwrap().tag, i, "{imp:?}");
            }
            assert!(q.pop().is_none());
        }
    }

    #[test]
    fn wraparound_faa() {
        let q = CompQueue::new(CqConfig { imp: CqImpl::FaaArray, capacity: 8 });
        for round in 0..10u32 {
            for i in 0..8 {
                q.push(desc(round * 8 + i));
            }
            for i in 0..8 {
                assert_eq!(q.pop().unwrap().tag, round * 8 + i);
            }
        }
    }

    #[test]
    fn mpmc_stress_no_loss() {
        for imp in [CqImpl::FaaArray, CqImpl::Lcrq, CqImpl::Segmented] {
            let q = Arc::new(CompQueue::new(CqConfig { imp, capacity: 1024 }));
            let producers: u32 = 3;
            let per: u32 = 5_000;
            let consumed = Arc::new(AtomicUsize::new(0));
            let sum = Arc::new(AtomicUsize::new(0));
            let mut handles = Vec::new();
            for p in 0..producers {
                let q = q.clone();
                handles.push(std::thread::spawn(move || {
                    for i in 0..per {
                        q.push(desc(p * per + i));
                    }
                }));
            }
            for _ in 0..2 {
                let q = q.clone();
                let consumed = consumed.clone();
                let sum = sum.clone();
                let total = (producers * per) as usize;
                handles.push(std::thread::spawn(move || {
                    while consumed.load(Ordering::Relaxed) < total {
                        if let Some(d) = q.pop() {
                            consumed.fetch_add(1, Ordering::Relaxed);
                            sum.fetch_add(d.tag as usize, Ordering::Relaxed);
                        } else {
                            std::hint::spin_loop();
                        }
                    }
                }));
            }
            for h in handles {
                h.join().unwrap();
            }
            let total = (producers * per) as usize;
            assert_eq!(consumed.load(Ordering::Relaxed), total, "{imp:?}");
            let expect: usize = (0..producers * per).map(|x| x as usize).sum();
            assert_eq!(sum.load(Ordering::Relaxed), expect, "{imp:?}");
        }
    }

    #[test]
    fn len_tracks_occupancy() {
        let q = CompQueue::default();
        assert!(q.is_empty());
        q.push(desc(0));
        q.push(desc(1));
        assert_eq!(q.len(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
    }
}
