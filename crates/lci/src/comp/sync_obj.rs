//! The synchronizer completion object (paper §4.1.4).
//!
//! Similar to an MPI request but able to accept multiple signals before
//! becoming ready. Implemented exactly as the paper describes: a
//! fixed-size descriptor array protected by two atomic counters — writers
//! claim a slot with one counter, publish with the other; the reader
//! observes readiness when the publish counter reaches the expected
//! count (an acquire load that orders all slot writes before the read).

use crate::types::CompDesc;
use lci_fabric::sync::Doorbell;
use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

/// A completion object that becomes ready after a fixed number of
/// signals.
pub struct Synchronizer {
    expected: usize,
    /// Writers claim slots here.
    claimed: AtomicUsize,
    /// Writers publish here after writing their slot.
    published: AtomicUsize,
    slots: Box<[UnsafeCell<Option<CompDesc>>]>,
    /// Rung by the publishing thread of the *final* expected signal;
    /// lets waiters park instead of polling (see
    /// [`wait_blocking`](Self::wait_blocking)). Zero-alloc and cheap
    /// when unused: a quiet doorbell is one atomic increment per ring.
    bell: Doorbell,
}

// SAFETY: slot i is written exclusively by the thread that claimed i
// (fetch_add on `claimed`), and only read after `published == expected`
// (acquire), which happens-after every release publish.
unsafe impl Send for Synchronizer {}
unsafe impl Sync for Synchronizer {}

impl Synchronizer {
    /// Creates a synchronizer expecting `expected` signals (>= 1).
    pub fn new(expected: usize) -> Self {
        let expected = expected.max(1);
        let slots = (0..expected).map(|_| UnsafeCell::new(None)).collect::<Vec<_>>();
        Self {
            expected,
            claimed: AtomicUsize::new(0),
            published: AtomicUsize::new(0),
            slots: slots.into_boxed_slice(),
            bell: Doorbell::new(),
        }
    }

    /// Number of signals needed for readiness.
    pub fn expected(&self) -> usize {
        self.expected
    }

    /// Delivers one signal. Panics if signaled more than `expected`
    /// times without a [`reset`](Self::reset) (a use-after-completion
    /// bug in the caller).
    pub fn signal(&self, desc: CompDesc) {
        let idx = self.claimed.fetch_add(1, Ordering::AcqRel);
        assert!(idx < self.expected, "synchronizer signaled more than {} times", self.expected);
        // SAFETY: we exclusively own slot `idx` (claimed above); readers
        // wait for the publish counter.
        unsafe {
            *self.slots[idx].get() = Some(desc);
        }
        let published = self.published.fetch_add(1, Ordering::Release) + 1;
        if published == self.expected {
            // Readiness flipped: wake blocked waiters. Intermediate
            // signals don't ring — `test()` stays false until the last.
            self.bell.ring();
        }
    }

    /// Whether all expected signals have arrived.
    pub fn test(&self) -> bool {
        self.published.load(Ordering::Acquire) == self.expected
    }

    /// Spins until ready, invoking `progress` between polls (the caller
    /// decides who progresses the network — paper §3.2.6).
    pub fn wait_with(&self, mut progress: impl FnMut()) {
        while !self.test() {
            progress();
            std::hint::spin_loop();
        }
    }

    /// Parks the calling thread until ready — for runtimes with
    /// dedicated progress threads, where waiting workers should sleep
    /// rather than poll (paper §3.2.6's completion-polling cost, moved
    /// off the workers).
    ///
    /// Eventcount protocol against the embedded doorbell: snapshot the
    /// epoch, re-test, and park only while the epoch is unchanged. The
    /// final signal rings after its release-publish, so a waiter either
    /// sees readiness on the re-test or sees the epoch advance — a lost
    /// wakeup is impossible (the doorbell's SeqCst-fence pairing; see
    /// DESIGN.md §4.8).
    pub fn wait_blocking(&self) {
        const WAIT_SLICE: Duration = Duration::from_millis(100);
        loop {
            let seen = self.bell.epoch();
            if self.test() {
                return;
            }
            self.bell.wait(seen, WAIT_SLICE);
        }
    }

    /// Takes the collected descriptors after readiness, resetting the
    /// synchronizer for reuse. Panics if not ready.
    pub fn take(&self) -> Vec<CompDesc> {
        assert!(self.test(), "synchronizer not ready");
        // SAFETY: ready (publish==expected, acquired), so all writers are
        // done and no new writer may claim until reset.
        let out = (0..self.expected)
            .map(|i| unsafe { (*self.slots[i].get()).take().expect("published slot empty") })
            .collect();
        self.claimed.store(0, Ordering::Relaxed);
        self.published.store(0, Ordering::Release);
        out
    }

    /// Resets without reading the descriptors.
    pub fn reset(&self) {
        assert!(self.test(), "resetting a synchronizer that is not ready");
        // SAFETY: as in `take`.
        for i in 0..self.expected {
            unsafe {
                (*self.slots[i].get()).take();
            }
        }
        self.claimed.store(0, Ordering::Relaxed);
        self.published.store(0, Ordering::Release);
    }
}

impl std::fmt::Debug for Synchronizer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Synchronizer")
            .field("expected", &self.expected)
            .field("published", &self.published.load(Ordering::Relaxed))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::CompKind;
    use std::sync::Arc;

    fn desc(tag: u32) -> CompDesc {
        CompDesc { tag, kind: CompKind::Recv, ..Default::default() }
    }

    #[test]
    fn single_signal_ready() {
        let s = Synchronizer::new(1);
        assert!(!s.test());
        s.signal(desc(5));
        assert!(s.test());
        let v = s.take();
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].tag, 5);
        assert!(!s.test(), "take resets");
    }

    #[test]
    fn multi_signal_threshold() {
        let s = Synchronizer::new(3);
        s.signal(desc(0));
        s.signal(desc(1));
        assert!(!s.test());
        s.signal(desc(2));
        assert!(s.test());
        let mut tags: Vec<u32> = s.take().into_iter().map(|d| d.tag).collect();
        tags.sort_unstable();
        assert_eq!(tags, vec![0, 1, 2]);
    }

    #[test]
    fn reuse_after_reset() {
        let s = Synchronizer::new(2);
        s.signal(desc(1));
        s.signal(desc(2));
        s.reset();
        assert!(!s.test());
        s.signal(desc(3));
        s.signal(desc(4));
        assert!(s.test());
    }

    #[test]
    #[should_panic(expected = "more than")]
    fn oversignal_panics() {
        let s = Synchronizer::new(1);
        s.signal(desc(0));
        s.signal(desc(1));
    }

    #[test]
    fn concurrent_signals() {
        let s = Arc::new(Synchronizer::new(8));
        let handles: Vec<_> = (0..8)
            .map(|i| {
                let s = s.clone();
                std::thread::spawn(move || s.signal(desc(i)))
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert!(s.test());
        let mut tags: Vec<u32> = s.take().into_iter().map(|d| d.tag).collect();
        tags.sort_unstable();
        assert_eq!(tags, (0..8).collect::<Vec<u32>>());
    }

    #[test]
    fn wait_with_pumps_progress() {
        let s = Arc::new(Synchronizer::new(1));
        let s2 = s.clone();
        let t = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(10));
            s2.signal(desc(7));
        });
        let mut polls = 0usize;
        s.wait_with(|| polls += 1);
        assert!(s.test());
        t.join().unwrap();
    }
}
