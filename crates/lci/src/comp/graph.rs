//! The completion graph (paper §3.2.5, §4.1.4).
//!
//! A CUDA-Graph-like completion object: the user declares a set of
//! operations (user functions or communication posts) with a partial
//! execution order. If `u` precedes `v`, then `v` starts only after `u`
//! completes. Every node carries an atomic counter tracking received
//! signals; a node whose predecessors (plus its own trigger) are all
//! signaled fires immediately, and a completed node signals its
//! descendants. The combination of the local partial order and the
//! ordering imposed by communication completion allows intuitive
//! implementations of complex non-blocking collective algorithms
//! (see `lci::collective`, which builds its trees this way).

use crate::types::CompDesc;
use lci_fabric::sync::SpinLock;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Node identifier within a graph.
pub type NodeId = usize;

/// What a node does when fired.
pub enum NodeOp {
    /// Run a user function to completion (completes synchronously).
    Func(Box<dyn Fn() + Send + Sync>),
    /// Post a communication: the closure receives the node's completion
    /// handle to attach to the operation; the node completes when that
    /// handle is signaled. The closure must ensure the post eventually
    /// succeeds (retry internally if needed).
    Comm(Box<dyn Fn(crate::comp::Comp) + Send + Sync>),
    /// Complete immediately (join/fork points).
    Noop,
}

struct Node {
    op: NodeOp,
    children: Vec<NodeId>,
    /// Signals still needed before firing: one per predecessor.
    waiting: AtomicUsize,
    /// Initial value of `waiting` (for reuse across runs).
    indegree: usize,
    /// The descriptor that completed this node (communication nodes).
    desc: SpinLock<Option<CompDesc>>,
}

/// Builder for a [`Graph`].
#[derive(Default)]
pub struct GraphBuilder {
    nodes: Vec<(NodeOp, Vec<NodeId>, usize)>,
}

impl GraphBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a node; returns its id.
    pub fn add_node(&mut self, op: NodeOp) -> NodeId {
        self.nodes.push((op, Vec::new(), 0));
        self.nodes.len() - 1
    }

    /// Adds a user-function node.
    pub fn add_fn(&mut self, f: impl Fn() + Send + Sync + 'static) -> NodeId {
        self.add_node(NodeOp::Func(Box::new(f)))
    }

    /// Adds a communication node.
    pub fn add_comm(&mut self, post: impl Fn(crate::comp::Comp) + Send + Sync + 'static) -> NodeId {
        self.add_node(NodeOp::Comm(Box::new(post)))
    }

    /// Declares that `u` must complete before `v` starts.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) {
        assert!(u < self.nodes.len() && v < self.nodes.len(), "edge references unknown node");
        assert_ne!(u, v, "self-edge");
        self.nodes[u].1.push(v);
        self.nodes[v].2 += 1;
    }

    /// Finalizes into an executable graph.
    pub fn build(self) -> Arc<Graph> {
        let total = self.nodes.len();
        let nodes: Vec<Node> = self
            .nodes
            .into_iter()
            .map(|(op, children, indegree)| Node {
                op,
                children,
                waiting: AtomicUsize::new(indegree),
                indegree,
                desc: SpinLock::new(None),
            })
            .collect();
        Arc::new(Graph { nodes, total, completed: AtomicUsize::new(0) })
    }
}

/// An executable completion graph.
pub struct Graph {
    nodes: Vec<Node>,
    total: usize,
    completed: AtomicUsize,
}

impl Graph {
    /// Starts the graph: fires every node with no predecessors. Call once
    /// per run (reusable after [`test`](Self::test) returns true via
    /// [`reset`](Self::reset)).
    pub fn start(self: &Arc<Self>) {
        let roots: Vec<NodeId> = self
            .nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.indegree == 0)
            .map(|(i, _)| i)
            .collect();
        for r in roots {
            self.fire(r);
        }
    }

    /// Whether every node has completed.
    pub fn test(&self) -> bool {
        self.completed.load(Ordering::Acquire) == self.total
    }

    /// Spins until done, invoking `progress` between polls.
    pub fn wait_with(&self, mut progress: impl FnMut()) {
        while !self.test() {
            progress();
            std::hint::spin_loop();
        }
    }

    /// The completion descriptor of `node`, once completed.
    pub fn node_desc(&self, node: NodeId) -> Option<CompDesc> {
        self.nodes[node].desc.lock().take()
    }

    /// Rearms the graph for another run. Panics if a run is in flight.
    pub fn reset(&self) {
        assert!(self.test(), "resetting a graph that is still running");
        for n in &self.nodes {
            n.waiting.store(n.indegree, Ordering::Relaxed);
            *n.desc.lock() = None;
        }
        self.completed.store(0, Ordering::Release);
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.total
    }

    /// Whether the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Fires a ready node.
    fn fire(self: &Arc<Self>, id: NodeId) {
        match &self.nodes[id].op {
            NodeOp::Func(f) => {
                f();
                self.complete(id);
            }
            NodeOp::Comm(post) => {
                let comp = crate::comp::Comp::graph_node(self.clone(), id);
                post(comp);
                // Completion arrives via signal_node when the operation
                // finishes.
            }
            NodeOp::Noop => self.complete(id),
        }
    }

    /// Signal entry point used by `Comp::graph_node` handles.
    pub(crate) fn signal_node(self: &Arc<Self>, id: NodeId, desc: CompDesc) {
        *self.nodes[id].desc.lock() = Some(desc);
        self.complete(id);
    }

    /// Marks `id` complete and fires newly-ready descendants
    /// iteratively (no recursion: deep chains must not overflow the
    /// stack).
    fn complete(self: &Arc<Self>, id: NodeId) {
        let mut ready: Vec<NodeId> = Vec::new();
        self.completed.fetch_add(1, Ordering::AcqRel);
        for &c in &self.nodes[id].children {
            if self.nodes[c].waiting.fetch_sub(1, Ordering::AcqRel) == 1 {
                ready.push(c);
            }
        }
        while let Some(n) = ready.pop() {
            match &self.nodes[n].op {
                NodeOp::Func(f) => {
                    f();
                    self.completed.fetch_add(1, Ordering::AcqRel);
                    for &c in &self.nodes[n].children {
                        if self.nodes[c].waiting.fetch_sub(1, Ordering::AcqRel) == 1 {
                            ready.push(c);
                        }
                    }
                }
                NodeOp::Noop => {
                    self.completed.fetch_add(1, Ordering::AcqRel);
                    for &c in &self.nodes[n].children {
                        if self.nodes[c].waiting.fetch_sub(1, Ordering::AcqRel) == 1 {
                            ready.push(c);
                        }
                    }
                }
                NodeOp::Comm(post) => {
                    let comp = crate::comp::Comp::graph_node(self.clone(), n);
                    post(comp);
                }
            }
        }
    }
}

impl std::fmt::Debug for Graph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Graph")
            .field("nodes", &self.total)
            .field("completed", &self.completed.load(Ordering::Relaxed))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn linear_chain_runs_in_order() {
        let log = Arc::new(SpinLock::new(Vec::new()));
        let mut b = GraphBuilder::new();
        let ids: Vec<NodeId> = (0..5)
            .map(|i| {
                let log = log.clone();
                b.add_fn(move || log.lock().push(i))
            })
            .collect();
        for w in ids.windows(2) {
            b.add_edge(w[0], w[1]);
        }
        let g = b.build();
        g.start();
        assert!(g.test());
        assert_eq!(*log.lock(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn diamond_dependencies() {
        let order = Arc::new(SpinLock::new(Vec::new()));
        let mut b = GraphBuilder::new();
        let mk = |name: &'static str, order: &Arc<SpinLock<Vec<&'static str>>>| {
            let order = order.clone();
            move || order.lock().push(name)
        };
        let a = b.add_fn(mk("a", &order));
        let l = b.add_fn(mk("l", &order));
        let r = b.add_fn(mk("r", &order));
        let d = b.add_fn(mk("d", &order));
        b.add_edge(a, l);
        b.add_edge(a, r);
        b.add_edge(l, d);
        b.add_edge(r, d);
        let g = b.build();
        g.start();
        assert!(g.test());
        let o = order.lock();
        assert_eq!(o[0], "a");
        assert_eq!(o[3], "d");
    }

    #[test]
    fn comm_node_waits_for_signal() {
        let mut b = GraphBuilder::new();
        let pending: Arc<SpinLock<Option<crate::comp::Comp>>> = Arc::new(SpinLock::new(None));
        let p2 = pending.clone();
        let flag = Arc::new(AtomicU64::new(0));
        let f2 = flag.clone();
        let c = b.add_comm(move |comp| {
            // Simulate an async post: stash the comp for later signaling.
            *p2.lock() = Some(comp);
        });
        let after = b.add_fn(move || {
            f2.store(1, Ordering::SeqCst);
        });
        b.add_edge(c, after);
        let g = b.build();
        g.start();
        assert!(!g.test());
        assert_eq!(flag.load(Ordering::SeqCst), 0);
        // "Communication" completes now.
        let comp = pending.lock().take().unwrap();
        comp.signal(CompDesc { tag: 7, ..Default::default() });
        assert!(g.test());
        assert_eq!(flag.load(Ordering::SeqCst), 1);
        assert_eq!(g.node_desc(c).unwrap().tag, 7);
    }

    #[test]
    fn deep_chain_no_stack_overflow() {
        let mut b = GraphBuilder::new();
        let n = 100_000;
        let ids: Vec<NodeId> = (0..n).map(|_| b.add_node(NodeOp::Noop)).collect();
        for w in ids.windows(2) {
            b.add_edge(w[0], w[1]);
        }
        let g = b.build();
        g.start();
        assert!(g.test());
    }

    #[test]
    fn reset_and_rerun() {
        let count = Arc::new(AtomicU64::new(0));
        let mut b = GraphBuilder::new();
        let c2 = count.clone();
        let a = b.add_fn(move || {
            c2.fetch_add(1, Ordering::SeqCst);
        });
        let c3 = count.clone();
        let z = b.add_fn(move || {
            c3.fetch_add(10, Ordering::SeqCst);
        });
        b.add_edge(a, z);
        let g = b.build();
        g.start();
        assert!(g.test());
        g.reset();
        assert!(!g.test());
        g.start();
        assert!(g.test());
        assert_eq!(count.load(Ordering::SeqCst), 22);
    }
}
