//! A hand-written LCRQ-style lock-free queue (Morrison & Afek, PPoPP'13)
//! — the "state-of-the-art LCRQ" completion-queue implementation the
//! paper names in §4.1.4.
//!
//! The original LCRQ stores values directly in slots updated with
//! double-width CAS (CAS2). Stable Rust has no 128-bit atomics, so this
//! is the standard *indirect* variant: descriptors live in a lock-free
//! slab and slots hold `(cycle, slab index)` packed into one `AtomicU64`
//! updated with single-width CAS — the same ring/cycle algorithm, same
//! FAA-based fast path, same closed-ring + linked-list-of-CRQs overflow
//! behaviour.
//!
//! Layout of a slot word:
//!
//! ```text
//! 63      safe bit (1 = usable; cleared when a dequeuer abandons a
//!         ticket whose slot still holds an older-cycle value, so the
//!         late enqueuer of that ticket cannot strand a value there)
//! 62..32  cycle (ring generation when the slot was last written)
//! 31..0   slab index + 1 (0 = empty)
//! ```
//!
//! A CRQ of capacity N serves enqueue tickets `t` at slot `t % N` on
//! cycle `t / N`. An enqueuer CASes `(safe, cycle(t), 0) -> (safe,
//! cycle(t), idx+1)` — only on safe slots; a dequeuer at ticket `h`
//! consumes `(_, cycle(h), idx+1) -> (_, cycle(h)+1, 0)`, *skips* an
//! empty slot by bumping its cycle, and marks an old-value slot unsafe
//! before abandoning its ticket. No path ever waits on another thread.
//! When an enqueuer fails too often (dequeuers wrapped past it, or
//! unsafe slots accumulated) it *closes* the CRQ (tail bit 63) and
//! appends a fresh CRQ to the list, exactly like LCRQ.

use crate::types::CompDesc;
use lci_fabric::sync::SpinLock;
use std::sync::atomic::{AtomicPtr, AtomicU64, Ordering};

/// Slots per constituent ring.
const RING: usize = 1024;
/// Tail bit marking a closed ring.
const CLOSED: u64 = 1 << 63;

/// A lock-free slab handing out `u32` indices for parked descriptors.
///
/// Free indices form a Treiber stack threaded through `next`; the data
/// lives in boxed chunks so descriptors never move.
struct DescSlab {
    chunks: SpinLock<Vec<Box<[SlabEntry]>>>,
    /// Head of the free list (index+1; 0 = empty) in the low 32 bits and
    /// an ABA tag in the high 32 bits.
    free: AtomicU64,
    /// Total entries allocated so far.
    len: AtomicU64,
}

struct SlabEntry {
    value: SpinLock<Option<CompDesc>>,
    next: AtomicU64,
}

const CHUNK: usize = 256;

impl DescSlab {
    fn new() -> Self {
        Self { chunks: SpinLock::new(Vec::new()), free: AtomicU64::new(0), len: AtomicU64::new(0) }
    }

    fn entry(&self, idx: u32) -> *const SlabEntry {
        let chunks = self.chunks.lock();
        &chunks[idx as usize / CHUNK][idx as usize % CHUNK] as *const SlabEntry
    }

    /// Parks a descriptor, returning its index.
    fn put(&self, desc: CompDesc) -> u32 {
        loop {
            let head = self.free.load(Ordering::Acquire);
            let idx_plus_1 = (head & 0xFFFF_FFFF) as u32;
            if idx_plus_1 == 0 {
                // Free list empty: grow by one chunk and retry via the
                // newly freed indices (the grower keeps one for itself).
                let mut chunks = self.chunks.lock();
                // Re-check: another thread may have grown meanwhile.
                if (self.free.load(Ordering::Acquire) & 0xFFFF_FFFF) != 0 {
                    continue;
                }
                let base = (chunks.len() * CHUNK) as u32;
                let chunk: Vec<SlabEntry> = (0..CHUNK)
                    .map(|_| SlabEntry { value: SpinLock::new(None), next: AtomicU64::new(0) })
                    .collect();
                chunks.push(chunk.into_boxed_slice());
                self.len.fetch_add(CHUNK as u64, Ordering::Relaxed);
                // Keep slot `base` for ourselves; free the rest.
                for i in (base + 1)..(base + CHUNK as u32) {
                    self.release_locked(&chunks, i);
                }
                let e = &chunks[base as usize / CHUNK][base as usize % CHUNK];
                *e.value.lock() = Some(desc);
                return base;
            }
            let idx = idx_plus_1 - 1;
            let e = self.entry(idx);
            // SAFETY: entries are never freed while the slab lives.
            let next = unsafe { (*e).next.load(Ordering::Acquire) };
            let tag = head >> 32;
            let new = ((tag + 1) << 32) | (next & 0xFFFF_FFFF);
            if self
                .free
                .compare_exchange_weak(head, new, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                // SAFETY: we own idx now.
                unsafe {
                    *(*e).value.lock() = Some(desc);
                }
                return idx;
            }
        }
    }

    /// Takes the descriptor at `idx` and recycles the slot.
    fn take(&self, idx: u32) -> CompDesc {
        let e = self.entry(idx);
        // SAFETY: the caller owns idx (it was dequeued from a ring).
        let desc = unsafe { (*e).value.lock().take().expect("slab slot empty") };
        self.release(idx);
        desc
    }

    fn release(&self, idx: u32) {
        let e = self.entry(idx);
        loop {
            let head = self.free.load(Ordering::Acquire);
            // SAFETY: entries are never freed while the slab lives.
            unsafe {
                (*e).next.store(head & 0xFFFF_FFFF, Ordering::Release);
            }
            let tag = head >> 32;
            let new = ((tag + 1) << 32) | (idx as u64 + 1);
            if self
                .free
                .compare_exchange_weak(head, new, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                return;
            }
        }
    }

    /// Like `release` but with the chunks lock already held (during
    /// growth); the free-list CAS protocol is identical.
    fn release_locked(&self, chunks: &[Box<[SlabEntry]>], idx: u32) {
        let e = &chunks[idx as usize / CHUNK][idx as usize % CHUNK];
        loop {
            let head = self.free.load(Ordering::Acquire);
            e.next.store(head & 0xFFFF_FFFF, Ordering::Release);
            let tag = head >> 32;
            let new = ((tag + 1) << 32) | (idx as u64 + 1);
            if self
                .free
                .compare_exchange_weak(head, new, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                return;
            }
        }
    }
}

/// One circular ring queue (CRQ).
struct Crq {
    slots: Box<[AtomicU64]>,
    head: AtomicU64,
    tail: AtomicU64,
    next: AtomicPtr<Crq>,
}

const SAFE: u64 = 1 << 63;

#[inline]
fn pack(safe: bool, cycle: u64, idx_plus_1: u32) -> u64 {
    (if safe { SAFE } else { 0 }) | ((cycle & 0x7FFF_FFFF) << 32) | idx_plus_1 as u64
}

#[inline]
fn slot_safe(word: u64) -> bool {
    word & SAFE != 0
}

#[inline]
fn slot_cycle(word: u64) -> u64 {
    (word >> 32) & 0x7FFF_FFFF
}

#[inline]
fn slot_idx(word: u64) -> u32 {
    (word & 0xFFFF_FFFF) as u32
}

impl Crq {
    fn new() -> Box<Crq> {
        let slots: Vec<AtomicU64> = (0..RING).map(|_| AtomicU64::new(pack(true, 0, 0))).collect();
        Box::new(Crq {
            slots: slots.into_boxed_slice(),
            head: AtomicU64::new(0),
            tail: AtomicU64::new(0),
            next: AtomicPtr::new(std::ptr::null_mut()),
        })
    }

    /// Tries to enqueue `idx`; fails when the ring is (or becomes)
    /// closed. Never waits: a lost slot race moves to a fresh ticket.
    fn enqueue(&self, idx: u32) -> bool {
        let mut tries = 0;
        loop {
            let t = self.tail.fetch_add(1, Ordering::AcqRel);
            if t & CLOSED != 0 {
                return false;
            }
            let cycle = t / RING as u64;
            let slot = &self.slots[(t % RING as u64) as usize];
            let cur = slot.load(Ordering::Acquire);
            // Deposit only into a safe, empty slot whose cycle has not
            // passed ours (a dequeuer bumping past means our ticket was
            // skipped).
            if slot_safe(cur)
                && slot_idx(cur) == 0
                && slot_cycle(cur) <= cycle
                && slot
                    .compare_exchange(
                        cur,
                        pack(true, cycle, idx + 1),
                        Ordering::AcqRel,
                        Ordering::Acquire,
                    )
                    .is_ok()
            {
                return true;
            }
            tries += 1;
            if tries > RING || t.wrapping_sub(self.head.load(Ordering::Acquire)) >= RING as u64 {
                // Starving (ring full, wrapped, or unsafe-ridden): close
                // it (LCRQ's CLOSED bit) and let the list grow.
                self.tail.fetch_or(CLOSED, Ordering::AcqRel);
                return false;
            }
        }
    }

    /// Tries to dequeue; `None` means currently empty (not closed-empty).
    /// Never waits on another thread:
    ///
    /// * value present for our cycle → consume it;
    /// * empty slot → bump the cycle (the late enqueuer's CAS will fail
    ///   and it retries with a new ticket) and take a fresh ticket;
    /// * older-cycle value still parked → mark the slot unsafe (so our
    ///   ticket's enqueuer can never strand a value) and take a fresh
    ///   ticket; the old value's own dequeuer consumes it regardless of
    ///   the safe bit.
    fn dequeue(&self) -> Option<u32> {
        loop {
            let h = self.head.load(Ordering::Acquire);
            let t = self.tail.load(Ordering::Acquire) & !CLOSED;
            if h >= t {
                return None;
            }
            if self
                .head
                .compare_exchange_weak(h, h + 1, Ordering::AcqRel, Ordering::Acquire)
                .is_err()
            {
                continue;
            }
            let cycle = h / RING as u64;
            let slot = &self.slots[(h % RING as u64) as usize];
            loop {
                let cur = slot.load(Ordering::Acquire);
                if slot_cycle(cur) == cycle && slot_idx(cur) != 0 {
                    // Consume, preserving the safe bit (an unsafe slot
                    // must stay unsafe: its skipped enqueuer may still
                    // show up).
                    if slot
                        .compare_exchange(
                            cur,
                            pack(slot_safe(cur), cycle + 1, 0),
                            Ordering::AcqRel,
                            Ordering::Acquire,
                        )
                        .is_ok()
                    {
                        return Some(slot_idx(cur) - 1);
                    }
                } else if slot_cycle(cur) > cycle {
                    break; // our ticket was skipped; take the next one
                } else if slot_idx(cur) == 0 {
                    // Empty: skip this cycle so the late enqueuer retries
                    // elsewhere.
                    if slot
                        .compare_exchange(
                            cur,
                            pack(slot_safe(cur), cycle + 1, 0),
                            Ordering::AcqRel,
                            Ordering::Acquire,
                        )
                        .is_ok()
                    {
                        break;
                    }
                } else {
                    // Older-cycle value still parked: poison the slot and
                    // abandon the ticket.
                    if slot
                        .compare_exchange(
                            cur,
                            pack(false, slot_cycle(cur), slot_idx(cur)),
                            Ordering::AcqRel,
                            Ordering::Acquire,
                        )
                        .is_ok()
                    {
                        break;
                    }
                }
            }
        }
    }

    /// Whether the ring is closed and fully drained.
    fn closed_and_empty(&self) -> bool {
        let t = self.tail.load(Ordering::Acquire);
        t & CLOSED != 0 && self.head.load(Ordering::Acquire) >= (t & !CLOSED)
    }
}

/// The LCRQ: a Michael-Scott list of CRQs with an indirect descriptor
/// slab.
pub struct Lcrq {
    head: AtomicPtr<Crq>,
    tail: AtomicPtr<Crq>,
    slab: DescSlab,
    /// Exact occupancy (ring tail tickets overshoot on contention, so
    /// ring arithmetic cannot provide this).
    size: AtomicU64,
    /// Retired rings (kept until drop; safe reclamation without hazard
    /// pointers — ring memory is bounded by total overflow events).
    retired: SpinLock<Vec<*mut Crq>>,
}

// SAFETY: all shared state is atomics/locks; descriptors are owned by
// exactly one side at a time per the ring protocol.
unsafe impl Send for Lcrq {}
unsafe impl Sync for Lcrq {}

impl Lcrq {
    /// Creates an empty queue.
    pub fn new() -> Lcrq {
        let first = Box::into_raw(Crq::new());
        Lcrq {
            head: AtomicPtr::new(first),
            tail: AtomicPtr::new(first),
            slab: DescSlab::new(),
            size: AtomicU64::new(0),
            retired: SpinLock::new(Vec::new()),
        }
    }

    /// Enqueues a descriptor (never fails, never blocks on consumers).
    pub fn push(&self, desc: CompDesc) {
        let idx = self.slab.put(desc);
        self.size.fetch_add(1, Ordering::AcqRel);
        loop {
            let tail = self.tail.load(Ordering::Acquire);
            // SAFETY: rings are only retired (not freed) while the queue
            // lives.
            let crq = unsafe { &*tail };
            if crq.enqueue(idx) {
                return;
            }
            // Ring closed: append a new CRQ (or chase an existing next).
            let next = crq.next.load(Ordering::Acquire);
            if next.is_null() {
                let fresh = Box::into_raw(Crq::new());
                // SAFETY: fresh is valid; we only install it once.
                unsafe {
                    (*fresh).enqueue(idx);
                }
                match crq.next.compare_exchange(
                    std::ptr::null_mut(),
                    fresh,
                    Ordering::AcqRel,
                    Ordering::Acquire,
                ) {
                    Ok(_) => {
                        let _ = self.tail.compare_exchange(
                            tail,
                            fresh,
                            Ordering::AcqRel,
                            Ordering::Acquire,
                        );
                        return;
                    }
                    Err(_) => {
                        // Someone else appended: retire our fresh ring
                        // after pulling the value back out.
                        // SAFETY: we exclusively own `fresh`.
                        unsafe {
                            let _ = (*fresh).dequeue();
                            drop(Box::from_raw(fresh));
                        }
                        let _ = idx; // still parked; retry the loop
                    }
                }
            } else {
                let _ = self.tail.compare_exchange(tail, next, Ordering::AcqRel, Ordering::Acquire);
            }
        }
    }

    /// Dequeues a descriptor if available.
    pub fn pop(&self) -> Option<CompDesc> {
        loop {
            let head = self.head.load(Ordering::Acquire);
            // SAFETY: retired rings outlive the queue.
            let crq = unsafe { &*head };
            if let Some(idx) = crq.dequeue() {
                self.size.fetch_sub(1, Ordering::AcqRel);
                return Some(self.slab.take(idx));
            }
            if !crq.closed_and_empty() {
                return None;
            }
            let next = crq.next.load(Ordering::Acquire);
            if next.is_null() {
                return None;
            }
            if self.head.compare_exchange(head, next, Ordering::AcqRel, Ordering::Acquire).is_ok() {
                self.retired.lock().push(head);
            }
        }
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.size.load(Ordering::Acquire) as usize
    }

    /// Whether the queue appears empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Default for Lcrq {
    fn default() -> Self {
        Self::new()
    }
}

impl Drop for Lcrq {
    fn drop(&mut self) {
        // Drain remaining descriptors so their buffers free.
        while self.pop().is_some() {}
        let mut p = self.head.load(Ordering::Relaxed);
        while !p.is_null() {
            // SAFETY: exclusive access in drop.
            let next = unsafe { (*p).next.load(Ordering::Relaxed) };
            unsafe { drop(Box::from_raw(p)) };
            p = next;
        }
        for r in self.retired.lock().drain(..) {
            // Retired rings were unlinked; free them (they are not part
            // of the head list anymore).
            // SAFETY: exclusive access in drop; each retired pointer was
            // unlinked exactly once.
            unsafe { drop(Box::from_raw(r)) };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    fn desc(tag: u32) -> CompDesc {
        CompDesc { tag, ..Default::default() }
    }

    #[test]
    fn fifo_single_thread() {
        let q = Lcrq::new();
        assert!(q.pop().is_none());
        for i in 0..3000 {
            q.push(desc(i));
        }
        for i in 0..3000 {
            assert_eq!(q.pop().unwrap().tag, i);
        }
        assert!(q.pop().is_none());
    }

    #[test]
    fn overflow_to_next_ring() {
        let q = Lcrq::new();
        // More than one ring's worth without any pops: must chain CRQs.
        let n = (RING * 3) as u32;
        for i in 0..n {
            q.push(desc(i));
        }
        assert_eq!(q.len(), n as usize);
        for i in 0..n {
            assert_eq!(q.pop().unwrap().tag, i, "at {i}");
        }
        assert!(q.pop().is_none());
    }

    #[test]
    fn interleaved_push_pop() {
        let q = Lcrq::new();
        let mut next_push = 0u32;
        let mut next_pop = 0u32;
        for round in 0..1000 {
            for _ in 0..(round % 7) + 1 {
                q.push(desc(next_push));
                next_push += 1;
            }
            for _ in 0..(round % 5) + 1 {
                if let Some(d) = q.pop() {
                    assert_eq!(d.tag, next_pop);
                    next_pop += 1;
                }
            }
        }
        while let Some(d) = q.pop() {
            assert_eq!(d.tag, next_pop);
            next_pop += 1;
        }
        assert_eq!(next_pop, next_push);
    }

    #[test]
    fn mpmc_no_loss_no_dup() {
        let q = Arc::new(Lcrq::new());
        let producers: u32 = 3;
        let per: u32 = 4000;
        let total = (producers * per) as usize;
        let seen = Arc::new((0..total).map(|_| AtomicUsize::new(0)).collect::<Vec<_>>());
        let done = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for p in 0..producers {
            let q = q.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..per {
                    q.push(desc(p * per + i));
                }
            }));
        }
        for _ in 0..2 {
            let q = q.clone();
            let seen = seen.clone();
            let done = done.clone();
            handles.push(std::thread::spawn(move || {
                while done.load(Ordering::Relaxed) < total {
                    if let Some(d) = q.pop() {
                        seen[d.tag as usize].fetch_add(1, Ordering::Relaxed);
                        done.fetch_add(1, Ordering::Relaxed);
                    } else {
                        std::thread::yield_now();
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        for (i, s) in seen.iter().enumerate() {
            assert_eq!(s.load(Ordering::Relaxed), 1, "element {i}");
        }
    }

    #[test]
    fn per_producer_order_preserved() {
        // FIFO per producer: a single producer's elements come out in
        // order even with a racing consumer.
        let q = Arc::new(Lcrq::new());
        let q2 = q.clone();
        let producer = std::thread::spawn(move || {
            for i in 0..20_000u32 {
                q2.push(desc(i));
            }
        });
        let mut last = None;
        let mut got = 0;
        while got < 20_000 {
            if let Some(d) = q.pop() {
                if let Some(l) = last {
                    assert!(d.tag > l, "order violated: {} after {}", d.tag, l);
                }
                last = Some(d.tag);
                got += 1;
            } else {
                std::thread::yield_now();
            }
        }
        producer.join().unwrap();
    }
}
