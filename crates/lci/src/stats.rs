//! Per-device operation counters, striped per core.
//!
//! Production communication runtimes expose counters for tuning; these
//! back the ablation analyses (retry rates under different lock
//! disciplines) and give applications the visibility the paper's
//! "explicit control" philosophy implies.
//!
//! Counters live in **per-core cells** ([`StatsCell`]) laid out over
//! the [`topology`](lci_fabric::topology) core map: a bump touches only
//! the calling core's cache line, so the hot path shares no counter
//! line between cores (the scale matrix showed shared relaxed atomics
//! bouncing at high thread counts). [`DeviceStats::snapshot`] folds the
//! cells.
//!
//! ## Snapshot consistency
//!
//! A snapshot taken while progress engines are live cannot be a true
//! point-in-time cut across independent relaxed counters, but it is
//! made *tear-proof for the derived rates*: the fold reads every cell's
//! `progress_useful` before any cell's `progress_calls` (the bump order
//! is calls-then-useful, so reading in the reverse order can only
//! under-count useful relative to calls), and
//! [`StatsSnapshot::useful_poll_rate`] clamps at 1.0.
//! [`StatsSnapshot::since`] uses saturating subtraction so an interval
//! against a live earlier snapshot can never underflow.

use lci_fabric::topology;
use std::sync::atomic::{AtomicU64, Ordering};

/// One core's counter cell. Padded to its own (double) cache line so
/// neighbouring cores never write-share. Field meanings are documented
/// on [`StatsSnapshot`].
#[repr(align(128))]
#[derive(Debug, Default)]
pub(crate) struct StatsCell {
    pub(crate) posts: AtomicU64,
    pub(crate) retries: AtomicU64,
    pub(crate) progress_calls: AtomicU64,
    pub(crate) progress_useful: AtomicU64,
    pub(crate) completions: AtomicU64,
    pub(crate) matched: AtomicU64,
    pub(crate) rendezvous: AtomicU64,
    pub(crate) backlogged: AtomicU64,
    pub(crate) coalesced_msgs: AtomicU64,
    pub(crate) coalesce_flushes: AtomicU64,
    pub(crate) batch_posts: AtomicU64,
    pub(crate) batch_posted_msgs: AtomicU64,
    pub(crate) zero_copy_deliveries: AtomicU64,
    pub(crate) copied_deliveries: AtomicU64,
    pub(crate) replenish_batches: AtomicU64,
    pub(crate) replenish_posted: AtomicU64,
    pub(crate) rendezvous_retried: AtomicU64,
    pub(crate) rdv_chunks_posted: AtomicU64,
    pub(crate) rdv_inflight_hwm: AtomicU64,
    pub(crate) rdv_scratch_reuses: AtomicU64,
    pub(crate) worker_polls: AtomicU64,
    pub(crate) progress_parks: AtomicU64,
    pub(crate) early_inbound: AtomicU64,
    pub(crate) coll_rounds: AtomicU64,
    pub(crate) coll_bytes: AtomicU64,
    pub(crate) coll_chunks_inflight_hwm: AtomicU64,
    pub(crate) coll_skipped_pairs: AtomicU64,
    pub(crate) coll_v_bytes_hwm: AtomicU64,
}

/// Monotonic counters for one device, striped per core and folded at
/// snapshot time.
#[derive(Debug)]
pub struct DeviceStats {
    cells: Box<[StatsCell]>,
    /// `cells.len() - 1`; cell counts are powers of two.
    mask: usize,
}

impl Default for DeviceStats {
    fn default() -> Self {
        Self::with_stripes(0)
    }
}

/// Projects one counter out of a cell; plain fn pointers keep the
/// accessors monomorphic and inline-friendly.
pub(crate) type CellField = fn(&StatsCell) -> &AtomicU64;

impl DeviceStats {
    /// Stats with `stripes` per-core cells (`0` = one per detected
    /// core, rounded to a power of two).
    pub fn with_stripes(stripes: usize) -> Self {
        let n = topology::stripe_count(stripes);
        Self { cells: (0..n).map(|_| StatsCell::default()).collect(), mask: n - 1 }
    }

    /// The calling core's cell.
    #[inline]
    fn cell(&self) -> &StatsCell {
        &self.cells[topology::current_core() & self.mask]
    }

    /// Increments `field` in the calling core's cell.
    #[inline]
    pub(crate) fn bump(&self, field: CellField) {
        field(self.cell()).fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n` to `field` in the calling core's cell.
    #[inline]
    pub(crate) fn add(&self, field: CellField, n: u64) {
        field(self.cell()).fetch_add(n, Ordering::Relaxed);
    }

    /// Raises `field` in the calling core's cell to at least `v`
    /// (per-cell maxima; the fold takes the max across cells).
    #[inline]
    pub(crate) fn raise(&self, field: CellField, v: u64) {
        field(self.cell()).fetch_max(v, Ordering::Relaxed);
    }

    /// Number of per-core cells.
    pub fn stripes(&self) -> usize {
        self.cells.len()
    }

    fn fold(&self, field: CellField) -> u64 {
        self.cells.iter().map(|c| field(c).load(Ordering::Relaxed)).sum()
    }

    fn fold_max(&self, field: CellField) -> u64 {
        self.cells.iter().map(|c| field(c).load(Ordering::Relaxed)).max().unwrap_or(0)
    }

    /// Folds all cells into a snapshot. See the module docs for the
    /// tear-proofing order of the progress counters.
    pub fn snapshot(&self) -> StatsSnapshot {
        // `progress_useful` first, across every cell, *then*
        // `progress_calls`: bumps go calls-then-useful, so this read
        // order guarantees useful <= calls in the folded result even
        // while engines are live.
        let progress_useful = self.fold(|c| &c.progress_useful);
        let progress_calls = self.fold(|c| &c.progress_calls);
        StatsSnapshot {
            posts: self.fold(|c| &c.posts),
            retries: self.fold(|c| &c.retries),
            progress_calls,
            progress_useful: progress_useful.min(progress_calls),
            completions: self.fold(|c| &c.completions),
            matched: self.fold(|c| &c.matched),
            rendezvous: self.fold(|c| &c.rendezvous),
            backlogged: self.fold(|c| &c.backlogged),
            coalesced_msgs: self.fold(|c| &c.coalesced_msgs),
            coalesce_flushes: self.fold(|c| &c.coalesce_flushes),
            batch_posts: self.fold(|c| &c.batch_posts),
            batch_posted_msgs: self.fold(|c| &c.batch_posted_msgs),
            zero_copy_deliveries: self.fold(|c| &c.zero_copy_deliveries),
            copied_deliveries: self.fold(|c| &c.copied_deliveries),
            replenish_batches: self.fold(|c| &c.replenish_batches),
            replenish_posted: self.fold(|c| &c.replenish_posted),
            rendezvous_retried: self.fold(|c| &c.rendezvous_retried),
            rdv_chunks_posted: self.fold(|c| &c.rdv_chunks_posted),
            rdv_inflight_hwm: self.fold_max(|c| &c.rdv_inflight_hwm),
            rdv_scratch_reuses: self.fold(|c| &c.rdv_scratch_reuses),
            worker_polls: self.fold(|c| &c.worker_polls),
            progress_parks: self.fold(|c| &c.progress_parks),
            early_inbound: self.fold(|c| &c.early_inbound),
            coll_rounds: self.fold(|c| &c.coll_rounds),
            coll_bytes: self.fold(|c| &c.coll_bytes),
            coll_chunks_inflight_hwm: self.fold_max(|c| &c.coll_chunks_inflight_hwm),
            coll_skipped_pairs: self.fold(|c| &c.coll_skipped_pairs),
            coll_v_bytes_hwm: self.fold_max(|c| &c.coll_v_bytes_hwm),
            doorbell_rings: 0,
            reg_cache_hits: 0,
            reg_cache_misses: 0,
            reg_cache_evictions: 0,
            buf_pool_hits: 0,
            buf_pool_local_hits: 0,
            buf_pool_steals: 0,
            buf_pool_misses: 0,
            buf_pool_recycled_bytes: 0,
            matching_contended: 0,
            shm_ring_hwm: 0,
            doorbell_cross_proc_wakes: 0,
            tcp_writev_calls: 0,
            tcp_writev_frames: 0,
        }
    }
}

/// A point-in-time snapshot of [`DeviceStats`] (cells folded).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Communication posting operations accepted (posted or done).
    pub posts: u64,
    /// Posting operations that returned `retry`.
    pub retries: u64,
    /// Progress invocations.
    pub progress_calls: u64,
    /// Progress invocations that found work (folded so that
    /// `progress_useful <= progress_calls` always holds, even for
    /// snapshots taken while engines are live).
    pub progress_useful: u64,
    /// Completions handled (CQEs).
    pub completions: u64,
    /// Messages delivered through the matching engine (eager receives).
    pub matched: u64,
    /// Rendezvous transfers started (RTS sent or received+matched).
    pub rendezvous: u64,
    /// Requests parked in the backlog queue.
    pub backlogged: u64,
    /// Small sends absorbed into coalescing buffers.
    pub coalesced_msgs: u64,
    /// Coalesced frames shipped (threshold, ordering, or idle flushes).
    pub coalesce_flushes: u64,
    /// Batched backlog submissions (one posting-lock acquisition each).
    pub batch_posts: u64,
    /// Messages posted through batched submissions.
    pub batch_posted_msgs: u64,
    /// Eager payloads delivered zero-copy (packet- or view-backed).
    pub zero_copy_deliveries: u64,
    /// Eager payloads delivered through a copy (posted user buffer or
    /// owned staging when zero-copy delivery is disabled).
    pub copied_deliveries: u64,
    /// Batched SRQ restocks (one SRQ/endpoint-lock acquisition each).
    pub replenish_batches: u64,
    /// Receive buffers posted through batched restocks.
    pub replenish_posted: u64,
    /// Rendezvous posts that backed out with `retry` (RTS could not be
    /// sent). `rendezvous - rendezvous_retried` is the number of
    /// transfers actually started.
    pub rendezvous_retried: u64,
    /// RDMA-write chunks posted by the rendezvous pipeline.
    pub rdv_chunks_posted: u64,
    /// High-water mark of in-flight chunks across all transfers of this
    /// device (max across cells, not a delta counter; see
    /// [`StatsSnapshot::since`]).
    pub rdv_inflight_hwm: u64,
    /// Scratch-ring slots reused (gather copies that did not allocate).
    pub rdv_scratch_reuses: u64,
    /// Progress polls driven by *worker* threads (through
    /// [`Device::worker_progress`](crate::device::Device::worker_progress)).
    /// Zero in `Dedicated` mode: the worker entry point never polls there.
    pub worker_polls: u64,
    /// Times a dedicated progress thread parked this device on its
    /// doorbell (idle, consuming no CPU).
    pub progress_parks: u64,
    /// Inbound deliveries that arrived before their target rcomp was
    /// registered and were parked for retry (the registration race an
    /// auto-spawned progress engine makes real).
    pub early_inbound: u64,
    /// Collective communication rounds executed through this device
    /// (ring/dissemination/binomial steps; one bump per peer exchange a
    /// rank takes part in).
    pub coll_rounds: u64,
    /// Payload bytes moved by collectives through this device (sends
    /// only, so cross-rank sums count each byte once).
    pub coll_bytes: u64,
    /// High-water mark of concurrently in-flight collective chunks
    /// (pipelined ring-allreduce chunk sends + bounded-inflight alltoall
    /// block sends; max across cells, not a delta counter — see
    /// [`StatsSnapshot::since`]). Values above 1 demonstrate real
    /// chunk-level overlap.
    pub coll_chunks_inflight_hwm: u64,
    /// Zero-byte `alltoallv` peer pairs that posted nothing on the wire
    /// (send-side skips; the dense `alltoall` and the `coll_naive`
    /// store-and-forward `alltoallv` both pay a full message per empty
    /// pair instead). MoE routing matrices are mostly sparse, so this
    /// counter is the direct evidence the vector exchange exploited it.
    pub coll_skipped_pairs: u64,
    /// High-water mark of total payload bytes one `alltoallv` call
    /// contributed (sum of its send-count vector, self block included;
    /// max across cells, not a delta counter — see
    /// [`StatsSnapshot::since`]). Sizes the largest vector exchange the
    /// device has carried.
    pub coll_v_bytes_hwm: u64,
    /// Times the device's fabric doorbell rang (overlaid by
    /// [`Device::stats`](crate::device::Device::stats) from the
    /// [`lci_fabric::Doorbell`] counter, not tracked in [`DeviceStats`]).
    pub doorbell_rings: u64,
    /// Registration-cache hits on the device's fabric cache (overlaid by
    /// [`Device::stats`](crate::device::Device::stats), not tracked in
    /// [`DeviceStats`]).
    pub reg_cache_hits: u64,
    /// Registration-cache misses (see [`Self::reg_cache_hits`]).
    pub reg_cache_misses: u64,
    /// Registration-cache evictions (see [`Self::reg_cache_hits`]).
    pub reg_cache_evictions: u64,
    /// Buffer-pool requests served from a shelf, no allocation
    /// (`buf_pool_local_hits + buf_pool_steals`; overlaid by
    /// [`Device::stats`](crate::device::Device::stats) from the shared
    /// fabric pool, not tracked in [`DeviceStats`]).
    pub buf_pool_hits: u64,
    /// Buffer-pool requests served from the calling core's own stripe —
    /// the owner-local fast path (see [`Self::buf_pool_hits`]).
    pub buf_pool_local_hits: u64,
    /// Buffer-pool requests served by stealing from another core's
    /// stripe (see [`Self::buf_pool_hits`]).
    pub buf_pool_steals: u64,
    /// Buffer-pool requests that allocated (see [`Self::buf_pool_hits`]).
    pub buf_pool_misses: u64,
    /// Bytes of buffer capacity recycled through pool shelves (see
    /// [`Self::buf_pool_hits`]).
    pub buf_pool_recycled_bytes: u64,
    /// Matching-engine bucket-lock acquisitions that found the lock
    /// busy (overlaid by [`Device::stats`](crate::device::Device::stats)
    /// from the runtime's shared matching engine — every device of one
    /// runtime reports the same engine-wide value).
    pub matching_contended: u64,
    /// High-water mark of shared-memory ring occupancy (frames) over
    /// every shm channel touching this device's rank (overlaid by
    /// [`Device::stats`](crate::device::Device::stats) from the
    /// transport; zero on simulated backends).
    pub shm_ring_hwm: u64,
    /// Cross-process doorbell wakes delivered to this device's rank by
    /// the shm futex bridge (overlaid by
    /// [`Device::stats`](crate::device::Device::stats); zero in-process
    /// and on simulated backends).
    pub doorbell_cross_proc_wakes: u64,
    /// `writev` syscalls that made progress on this rank's tcp mesh
    /// (overlaid by [`Device::stats`](crate::device::Device::stats);
    /// zero on non-tcp transports).
    pub tcp_writev_calls: u64,
    /// Frames fully shipped by those `writev` calls; the ratio
    /// `tcp_writev_frames / tcp_writev_calls` (see
    /// [`Self::avg_writev_fill`]) is the average gather fill — the
    /// syscall-amortization figure of merit for the batching ablation.
    pub tcp_writev_frames: u64,
}

impl StatsSnapshot {
    /// Difference against an earlier snapshot (for per-phase
    /// accounting). Saturating: counters racing with live engines can
    /// never drive an interval negative.
    pub fn since(&self, earlier: &StatsSnapshot) -> StatsSnapshot {
        StatsSnapshot {
            posts: self.posts.saturating_sub(earlier.posts),
            retries: self.retries.saturating_sub(earlier.retries),
            progress_calls: self.progress_calls.saturating_sub(earlier.progress_calls),
            progress_useful: self.progress_useful.saturating_sub(earlier.progress_useful),
            completions: self.completions.saturating_sub(earlier.completions),
            matched: self.matched.saturating_sub(earlier.matched),
            rendezvous: self.rendezvous.saturating_sub(earlier.rendezvous),
            backlogged: self.backlogged.saturating_sub(earlier.backlogged),
            coalesced_msgs: self.coalesced_msgs.saturating_sub(earlier.coalesced_msgs),
            coalesce_flushes: self.coalesce_flushes.saturating_sub(earlier.coalesce_flushes),
            batch_posts: self.batch_posts.saturating_sub(earlier.batch_posts),
            batch_posted_msgs: self.batch_posted_msgs.saturating_sub(earlier.batch_posted_msgs),
            zero_copy_deliveries: self
                .zero_copy_deliveries
                .saturating_sub(earlier.zero_copy_deliveries),
            copied_deliveries: self.copied_deliveries.saturating_sub(earlier.copied_deliveries),
            replenish_batches: self.replenish_batches.saturating_sub(earlier.replenish_batches),
            replenish_posted: self.replenish_posted.saturating_sub(earlier.replenish_posted),
            rendezvous_retried: self.rendezvous_retried.saturating_sub(earlier.rendezvous_retried),
            rdv_chunks_posted: self.rdv_chunks_posted.saturating_sub(earlier.rdv_chunks_posted),
            // A high-water mark, not a flow counter: the later value is
            // the mark over the whole interval.
            rdv_inflight_hwm: self.rdv_inflight_hwm,
            rdv_scratch_reuses: self.rdv_scratch_reuses.saturating_sub(earlier.rdv_scratch_reuses),
            worker_polls: self.worker_polls.saturating_sub(earlier.worker_polls),
            progress_parks: self.progress_parks.saturating_sub(earlier.progress_parks),
            early_inbound: self.early_inbound.saturating_sub(earlier.early_inbound),
            coll_rounds: self.coll_rounds.saturating_sub(earlier.coll_rounds),
            coll_bytes: self.coll_bytes.saturating_sub(earlier.coll_bytes),
            // High-water mark: the later value covers the interval.
            coll_chunks_inflight_hwm: self.coll_chunks_inflight_hwm,
            coll_skipped_pairs: self.coll_skipped_pairs.saturating_sub(earlier.coll_skipped_pairs),
            // High-water mark: the later value covers the interval.
            coll_v_bytes_hwm: self.coll_v_bytes_hwm,
            doorbell_rings: self.doorbell_rings.saturating_sub(earlier.doorbell_rings),
            reg_cache_hits: self.reg_cache_hits.saturating_sub(earlier.reg_cache_hits),
            reg_cache_misses: self.reg_cache_misses.saturating_sub(earlier.reg_cache_misses),
            reg_cache_evictions: self
                .reg_cache_evictions
                .saturating_sub(earlier.reg_cache_evictions),
            buf_pool_hits: self.buf_pool_hits.saturating_sub(earlier.buf_pool_hits),
            buf_pool_local_hits: self
                .buf_pool_local_hits
                .saturating_sub(earlier.buf_pool_local_hits),
            buf_pool_steals: self.buf_pool_steals.saturating_sub(earlier.buf_pool_steals),
            buf_pool_misses: self.buf_pool_misses.saturating_sub(earlier.buf_pool_misses),
            buf_pool_recycled_bytes: self
                .buf_pool_recycled_bytes
                .saturating_sub(earlier.buf_pool_recycled_bytes),
            matching_contended: self.matching_contended.saturating_sub(earlier.matching_contended),
            // High-water mark: the later value covers the interval.
            shm_ring_hwm: self.shm_ring_hwm,
            doorbell_cross_proc_wakes: self
                .doorbell_cross_proc_wakes
                .saturating_sub(earlier.doorbell_cross_proc_wakes),
            tcp_writev_calls: self.tcp_writev_calls.saturating_sub(earlier.tcp_writev_calls),
            tcp_writev_frames: self.tcp_writev_frames.saturating_sub(earlier.tcp_writev_frames),
        }
    }

    /// Average frames shipped per productive `writev` — the vectored
    /// write batching fill factor (1.0 with batching disabled; greater
    /// when the send queue amortizes syscalls). Zero when the tcp
    /// transport was not in use.
    pub fn avg_writev_fill(&self) -> f64 {
        if self.tcp_writev_calls == 0 {
            0.0
        } else {
            self.tcp_writev_frames as f64 / self.tcp_writev_calls as f64
        }
    }

    /// Fraction of progress polls that found work — the progress-engine
    /// efficiency metric of ablation section 10. Low under all-worker
    /// polling (most polls are wasted lock traffic, paper §5.3); high
    /// under dedicated progress (the thread polls only when the doorbell
    /// says there is plausible work). Clamped to `[0, 1]` — the fold
    /// order plus this clamp is what makes live snapshots tear-proof.
    pub fn useful_poll_rate(&self) -> f64 {
        if self.progress_calls == 0 {
            0.0
        } else {
            (self.progress_useful as f64 / self.progress_calls as f64).min(1.0)
        }
    }

    /// Fraction of posting attempts that had to retry.
    pub fn retry_rate(&self) -> f64 {
        let attempts = self.posts + self.retries;
        if attempts == 0 {
            0.0
        } else {
            self.retries as f64 / attempts as f64
        }
    }

    /// Average sub-messages per coalesced frame (0 when no frame shipped).
    pub fn avg_coalesce_fill(&self) -> f64 {
        if self.coalesce_flushes == 0 {
            0.0
        } else {
            self.coalesced_msgs as f64 / self.coalesce_flushes as f64
        }
    }

    /// Average messages per batched backlog submission (0 when none ran).
    pub fn avg_batch_fill(&self) -> f64 {
        if self.batch_posts == 0 {
            0.0
        } else {
            self.batch_posted_msgs as f64 / self.batch_posts as f64
        }
    }

    /// Average receive buffers per batched SRQ restock (0 when none ran).
    pub fn avg_replenish_fill(&self) -> f64 {
        if self.replenish_batches == 0 {
            0.0
        } else {
            self.replenish_posted as f64 / self.replenish_batches as f64
        }
    }

    /// Registration-cache hit rate (0 when no registrations happened).
    pub fn reg_cache_hit_rate(&self) -> f64 {
        let total = self.reg_cache_hits + self.reg_cache_misses;
        if total == 0 {
            0.0
        } else {
            self.reg_cache_hits as f64 / total as f64
        }
    }

    /// Buffer-pool hit rate (0 when no buffers were requested).
    pub fn buf_pool_hit_rate(&self) -> f64 {
        let total = self.buf_pool_hits + self.buf_pool_misses;
        if total == 0 {
            0.0
        } else {
            self.buf_pool_hits as f64 / total as f64
        }
    }

    /// Owner-local share of buffer-pool shelf hits (0 when no hit
    /// happened) — the thread-per-core placement quality metric: near
    /// 1.0 when every core recycles through its own stripe.
    pub fn buf_pool_local_rate(&self) -> f64 {
        let total = self.buf_pool_local_hits + self.buf_pool_steals;
        if total == 0 {
            0.0
        } else {
            self.buf_pool_local_hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_and_since() {
        let s = DeviceStats::default();
        s.bump(|c| &c.posts);
        s.bump(|c| &c.posts);
        s.bump(|c| &c.retries);
        let a = s.snapshot();
        assert_eq!(a.posts, 2);
        assert_eq!(a.retries, 1);
        s.bump(|c| &c.posts);
        let b = s.snapshot();
        let d = b.since(&a);
        assert_eq!(d.posts, 1);
        assert_eq!(d.retries, 0);
    }

    #[test]
    fn retry_rate() {
        let snap = StatsSnapshot { posts: 3, retries: 1, ..Default::default() };
        assert!((snap.retry_rate() - 0.25).abs() < 1e-12);
        assert_eq!(StatsSnapshot::default().retry_rate(), 0.0);
    }

    #[test]
    fn cells_fold_across_cores() {
        let s = DeviceStats::with_stripes(4);
        assert_eq!(s.stripes(), 4);
        std::thread::scope(|sc| {
            for core in 0..4 {
                let s = &s;
                sc.spawn(move || {
                    lci_fabric::topology::bind_current_thread(core);
                    for _ in 0..10 {
                        s.bump(|c| &c.posts);
                    }
                    s.raise(|c| &c.rdv_inflight_hwm, core as u64 + 1);
                });
            }
        });
        let snap = s.snapshot();
        assert_eq!(snap.posts, 40, "cells fold by summing");
        assert_eq!(snap.rdv_inflight_hwm, 4, "high-water marks fold by max");
    }

    #[test]
    fn useful_poll_rate_cannot_tear() {
        // Even a hand-built torn snapshot (useful > calls) clamps.
        let torn = StatsSnapshot { progress_calls: 10, progress_useful: 12, ..Default::default() };
        assert_eq!(torn.useful_poll_rate(), 1.0);
        // And the fold itself clamps: bump useful without calls on one
        // cell (emulating a read racing a calls-then-useful writer).
        let s = DeviceStats::with_stripes(2);
        s.bump(|c| &c.progress_useful);
        let snap = s.snapshot();
        assert!(snap.progress_useful <= snap.progress_calls);
        assert!(snap.useful_poll_rate() <= 1.0);
    }

    #[test]
    fn since_saturates_instead_of_underflowing() {
        let a = StatsSnapshot { posts: 5, ..Default::default() };
        let b = StatsSnapshot { posts: 3, ..Default::default() };
        assert_eq!(b.since(&a).posts, 0, "live-race interval must not underflow");
    }
}
