//! Per-device operation counters.
//!
//! Production communication runtimes expose counters for tuning; these
//! back the ablation analyses (retry rates under different lock
//! disciplines) and give applications the visibility the paper's
//! "explicit control" philosophy implies. All counters are relaxed
//! atomics — negligible cost on the critical path.

use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic counters for one device.
#[derive(Debug, Default)]
pub struct DeviceStats {
    /// Communication posting operations accepted (posted or done).
    pub posts: AtomicU64,
    /// Posting operations that returned `retry`.
    pub retries: AtomicU64,
    /// Progress invocations.
    pub progress_calls: AtomicU64,
    /// Progress invocations that found work.
    pub progress_useful: AtomicU64,
    /// Completions handled (CQEs).
    pub completions: AtomicU64,
    /// Messages delivered through the matching engine (eager receives).
    pub matched: AtomicU64,
    /// Rendezvous transfers started (RTS sent or received+matched).
    pub rendezvous: AtomicU64,
    /// Requests parked in the backlog queue.
    pub backlogged: AtomicU64,
    /// Small sends absorbed into coalescing buffers.
    pub coalesced_msgs: AtomicU64,
    /// Coalesced frames shipped (threshold, ordering, or idle flushes).
    pub coalesce_flushes: AtomicU64,
    /// Batched backlog submissions (one posting-lock acquisition each).
    pub batch_posts: AtomicU64,
    /// Messages posted through batched submissions.
    pub batch_posted_msgs: AtomicU64,
    /// Eager payloads delivered zero-copy (packet- or view-backed).
    pub zero_copy_deliveries: AtomicU64,
    /// Eager payloads delivered through a copy (posted user buffer or
    /// owned staging when zero-copy delivery is disabled).
    pub copied_deliveries: AtomicU64,
    /// Batched SRQ restocks (one SRQ/endpoint-lock acquisition each).
    pub replenish_batches: AtomicU64,
    /// Receive buffers posted through batched restocks.
    pub replenish_posted: AtomicU64,
    /// Rendezvous posts that backed out with `retry` (RTS could not be
    /// sent). `rendezvous - rendezvous_retried` is the number of
    /// transfers actually started.
    pub rendezvous_retried: AtomicU64,
    /// RDMA-write chunks posted by the rendezvous pipeline.
    pub rdv_chunks_posted: AtomicU64,
    /// High-water mark of in-flight chunks across all transfers of this
    /// device (not a delta counter; see [`StatsSnapshot::since`]).
    pub rdv_inflight_hwm: AtomicU64,
    /// Scratch-ring slots reused (gather copies that did not allocate).
    pub rdv_scratch_reuses: AtomicU64,
    /// Progress polls driven by *worker* threads (through
    /// [`Device::worker_progress`](crate::device::Device::worker_progress)).
    /// Zero in `Dedicated` mode: the worker entry point never polls there.
    pub worker_polls: AtomicU64,
    /// Times a dedicated progress thread parked this device on its
    /// doorbell (idle, consuming no CPU).
    pub progress_parks: AtomicU64,
    /// Inbound deliveries that arrived before their target rcomp was
    /// registered and were parked for retry (the registration race an
    /// auto-spawned progress engine makes real).
    pub early_inbound: AtomicU64,
}

/// A point-in-time snapshot of [`DeviceStats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// See [`DeviceStats::posts`].
    pub posts: u64,
    /// See [`DeviceStats::retries`].
    pub retries: u64,
    /// See [`DeviceStats::progress_calls`].
    pub progress_calls: u64,
    /// See [`DeviceStats::progress_useful`].
    pub progress_useful: u64,
    /// See [`DeviceStats::completions`].
    pub completions: u64,
    /// See [`DeviceStats::matched`].
    pub matched: u64,
    /// See [`DeviceStats::rendezvous`].
    pub rendezvous: u64,
    /// See [`DeviceStats::backlogged`].
    pub backlogged: u64,
    /// See [`DeviceStats::coalesced_msgs`].
    pub coalesced_msgs: u64,
    /// See [`DeviceStats::coalesce_flushes`].
    pub coalesce_flushes: u64,
    /// See [`DeviceStats::batch_posts`].
    pub batch_posts: u64,
    /// See [`DeviceStats::batch_posted_msgs`].
    pub batch_posted_msgs: u64,
    /// See [`DeviceStats::zero_copy_deliveries`].
    pub zero_copy_deliveries: u64,
    /// See [`DeviceStats::copied_deliveries`].
    pub copied_deliveries: u64,
    /// See [`DeviceStats::replenish_batches`].
    pub replenish_batches: u64,
    /// See [`DeviceStats::replenish_posted`].
    pub replenish_posted: u64,
    /// See [`DeviceStats::rendezvous_retried`].
    pub rendezvous_retried: u64,
    /// See [`DeviceStats::rdv_chunks_posted`].
    pub rdv_chunks_posted: u64,
    /// See [`DeviceStats::rdv_inflight_hwm`].
    pub rdv_inflight_hwm: u64,
    /// See [`DeviceStats::rdv_scratch_reuses`].
    pub rdv_scratch_reuses: u64,
    /// See [`DeviceStats::worker_polls`].
    pub worker_polls: u64,
    /// See [`DeviceStats::progress_parks`].
    pub progress_parks: u64,
    /// See [`DeviceStats::early_inbound`].
    pub early_inbound: u64,
    /// Times the device's fabric doorbell rang (overlaid by
    /// [`Device::stats`](crate::device::Device::stats) from the
    /// [`lci_fabric::Doorbell`] counter, not tracked in [`DeviceStats`]).
    pub doorbell_rings: u64,
    /// Registration-cache hits on the device's fabric cache (overlaid by
    /// [`Device::stats`](crate::device::Device::stats), not tracked in
    /// [`DeviceStats`]).
    pub reg_cache_hits: u64,
    /// Registration-cache misses (see [`Self::reg_cache_hits`]).
    pub reg_cache_misses: u64,
    /// Registration-cache evictions (see [`Self::reg_cache_hits`]).
    pub reg_cache_evictions: u64,
    /// Buffer-pool requests served from a shelf, no allocation (overlaid
    /// by [`Device::stats`](crate::device::Device::stats) from the shared
    /// fabric pool, not tracked in [`DeviceStats`]).
    pub buf_pool_hits: u64,
    /// Buffer-pool requests that allocated (see [`Self::buf_pool_hits`]).
    pub buf_pool_misses: u64,
    /// Bytes of buffer capacity recycled through pool shelves (see
    /// [`Self::buf_pool_hits`]).
    pub buf_pool_recycled_bytes: u64,
    /// High-water mark of shared-memory ring occupancy (frames) over
    /// every shm channel touching this device's rank (overlaid by
    /// [`Device::stats`](crate::device::Device::stats) from the
    /// transport; zero on simulated backends).
    pub shm_ring_hwm: u64,
    /// Cross-process doorbell wakes delivered to this device's rank by
    /// the shm futex bridge (overlaid by
    /// [`Device::stats`](crate::device::Device::stats); zero in-process
    /// and on simulated backends).
    pub doorbell_cross_proc_wakes: u64,
}

impl DeviceStats {
    #[inline]
    pub(crate) fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn raise(counter: &AtomicU64, v: u64) {
        counter.fetch_max(v, Ordering::Relaxed);
    }

    /// Takes a snapshot of all counters.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            posts: self.posts.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            progress_calls: self.progress_calls.load(Ordering::Relaxed),
            progress_useful: self.progress_useful.load(Ordering::Relaxed),
            completions: self.completions.load(Ordering::Relaxed),
            matched: self.matched.load(Ordering::Relaxed),
            rendezvous: self.rendezvous.load(Ordering::Relaxed),
            backlogged: self.backlogged.load(Ordering::Relaxed),
            coalesced_msgs: self.coalesced_msgs.load(Ordering::Relaxed),
            coalesce_flushes: self.coalesce_flushes.load(Ordering::Relaxed),
            batch_posts: self.batch_posts.load(Ordering::Relaxed),
            batch_posted_msgs: self.batch_posted_msgs.load(Ordering::Relaxed),
            zero_copy_deliveries: self.zero_copy_deliveries.load(Ordering::Relaxed),
            copied_deliveries: self.copied_deliveries.load(Ordering::Relaxed),
            replenish_batches: self.replenish_batches.load(Ordering::Relaxed),
            replenish_posted: self.replenish_posted.load(Ordering::Relaxed),
            rendezvous_retried: self.rendezvous_retried.load(Ordering::Relaxed),
            rdv_chunks_posted: self.rdv_chunks_posted.load(Ordering::Relaxed),
            rdv_inflight_hwm: self.rdv_inflight_hwm.load(Ordering::Relaxed),
            rdv_scratch_reuses: self.rdv_scratch_reuses.load(Ordering::Relaxed),
            worker_polls: self.worker_polls.load(Ordering::Relaxed),
            progress_parks: self.progress_parks.load(Ordering::Relaxed),
            early_inbound: self.early_inbound.load(Ordering::Relaxed),
            doorbell_rings: 0,
            reg_cache_hits: 0,
            reg_cache_misses: 0,
            reg_cache_evictions: 0,
            buf_pool_hits: 0,
            buf_pool_misses: 0,
            buf_pool_recycled_bytes: 0,
            shm_ring_hwm: 0,
            doorbell_cross_proc_wakes: 0,
        }
    }
}

impl StatsSnapshot {
    /// Difference against an earlier snapshot (for per-phase accounting).
    pub fn since(&self, earlier: &StatsSnapshot) -> StatsSnapshot {
        StatsSnapshot {
            posts: self.posts - earlier.posts,
            retries: self.retries - earlier.retries,
            progress_calls: self.progress_calls - earlier.progress_calls,
            progress_useful: self.progress_useful - earlier.progress_useful,
            completions: self.completions - earlier.completions,
            matched: self.matched - earlier.matched,
            rendezvous: self.rendezvous - earlier.rendezvous,
            backlogged: self.backlogged - earlier.backlogged,
            coalesced_msgs: self.coalesced_msgs - earlier.coalesced_msgs,
            coalesce_flushes: self.coalesce_flushes - earlier.coalesce_flushes,
            batch_posts: self.batch_posts - earlier.batch_posts,
            batch_posted_msgs: self.batch_posted_msgs - earlier.batch_posted_msgs,
            zero_copy_deliveries: self.zero_copy_deliveries - earlier.zero_copy_deliveries,
            copied_deliveries: self.copied_deliveries - earlier.copied_deliveries,
            replenish_batches: self.replenish_batches - earlier.replenish_batches,
            replenish_posted: self.replenish_posted - earlier.replenish_posted,
            rendezvous_retried: self.rendezvous_retried - earlier.rendezvous_retried,
            rdv_chunks_posted: self.rdv_chunks_posted - earlier.rdv_chunks_posted,
            // A high-water mark, not a flow counter: the later value is
            // the mark over the whole interval.
            rdv_inflight_hwm: self.rdv_inflight_hwm,
            rdv_scratch_reuses: self.rdv_scratch_reuses - earlier.rdv_scratch_reuses,
            worker_polls: self.worker_polls - earlier.worker_polls,
            progress_parks: self.progress_parks - earlier.progress_parks,
            early_inbound: self.early_inbound - earlier.early_inbound,
            doorbell_rings: self.doorbell_rings - earlier.doorbell_rings,
            reg_cache_hits: self.reg_cache_hits - earlier.reg_cache_hits,
            reg_cache_misses: self.reg_cache_misses - earlier.reg_cache_misses,
            reg_cache_evictions: self.reg_cache_evictions - earlier.reg_cache_evictions,
            buf_pool_hits: self.buf_pool_hits - earlier.buf_pool_hits,
            buf_pool_misses: self.buf_pool_misses - earlier.buf_pool_misses,
            buf_pool_recycled_bytes: self.buf_pool_recycled_bytes - earlier.buf_pool_recycled_bytes,
            // High-water mark: the later value covers the interval.
            shm_ring_hwm: self.shm_ring_hwm,
            doorbell_cross_proc_wakes: self.doorbell_cross_proc_wakes
                - earlier.doorbell_cross_proc_wakes,
        }
    }

    /// Fraction of progress polls that found work — the progress-engine
    /// efficiency metric of ablation section 10. Low under all-worker
    /// polling (most polls are wasted lock traffic, paper §5.3); high
    /// under dedicated progress (the thread polls only when the doorbell
    /// says there is plausible work).
    pub fn useful_poll_rate(&self) -> f64 {
        if self.progress_calls == 0 {
            0.0
        } else {
            self.progress_useful as f64 / self.progress_calls as f64
        }
    }

    /// Fraction of posting attempts that had to retry.
    pub fn retry_rate(&self) -> f64 {
        let attempts = self.posts + self.retries;
        if attempts == 0 {
            0.0
        } else {
            self.retries as f64 / attempts as f64
        }
    }

    /// Average sub-messages per coalesced frame (0 when no frame shipped).
    pub fn avg_coalesce_fill(&self) -> f64 {
        if self.coalesce_flushes == 0 {
            0.0
        } else {
            self.coalesced_msgs as f64 / self.coalesce_flushes as f64
        }
    }

    /// Average messages per batched backlog submission (0 when none ran).
    pub fn avg_batch_fill(&self) -> f64 {
        if self.batch_posts == 0 {
            0.0
        } else {
            self.batch_posted_msgs as f64 / self.batch_posts as f64
        }
    }

    /// Average receive buffers per batched SRQ restock (0 when none ran).
    pub fn avg_replenish_fill(&self) -> f64 {
        if self.replenish_batches == 0 {
            0.0
        } else {
            self.replenish_posted as f64 / self.replenish_batches as f64
        }
    }

    /// Registration-cache hit rate (0 when no registrations happened).
    pub fn reg_cache_hit_rate(&self) -> f64 {
        let total = self.reg_cache_hits + self.reg_cache_misses;
        if total == 0 {
            0.0
        } else {
            self.reg_cache_hits as f64 / total as f64
        }
    }

    /// Buffer-pool hit rate (0 when no buffers were requested).
    pub fn buf_pool_hit_rate(&self) -> f64 {
        let total = self.buf_pool_hits + self.buf_pool_misses;
        if total == 0 {
            0.0
        } else {
            self.buf_pool_hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_and_since() {
        let s = DeviceStats::default();
        DeviceStats::bump(&s.posts);
        DeviceStats::bump(&s.posts);
        DeviceStats::bump(&s.retries);
        let a = s.snapshot();
        assert_eq!(a.posts, 2);
        assert_eq!(a.retries, 1);
        DeviceStats::bump(&s.posts);
        let b = s.snapshot();
        let d = b.since(&a);
        assert_eq!(d.posts, 1);
        assert_eq!(d.retries, 0);
    }

    #[test]
    fn retry_rate() {
        let snap = StatsSnapshot { posts: 3, retries: 1, ..Default::default() };
        assert!((snap.retry_rate() - 0.25).abs() < 1e-12);
        assert_eq!(StatsSnapshot::default().retry_rate(), 0.0);
    }
}
