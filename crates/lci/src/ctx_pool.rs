//! Generation-tagged pooled operation contexts (DESIGN.md §4.7).
//!
//! Every posted operation travels through the fabric's 64-bit completion
//! context. The seed implementation boxed an `OpCtx` per post and
//! reconstituted it from the raw pointer at completion — one
//! malloc/free round trip per message on the hottest path. This pool
//! replaces that with a sharded slab: slots are recycled through a
//! per-shard free list, so the steady state touches no allocator at all.
//!
//! Encoding: `ctx = (generation << 32) | (slot_id << 1) | 1`. The low
//! tag bit distinguishes pooled ids from boxed pointers (which are at
//! least 8-aligned, hence even) — the ablation opt-out and teardown can
//! mix both. The generation is bumped every time a slot is vacated, so a
//! stale or double decode of an old context misses the generation check
//! and is reported instead of silently handing back the wrong operation
//! (the pooled analogue of a use-after-free).

use lci_fabric::sync::SpinLock;
use lci_fabric::topology;

/// One slot of a shard: the stored value plus its current generation.
struct CtxSlot<T> {
    gen: u32,
    val: Option<T>,
}

/// A shard: a slab of slots with an embedded free list.
struct CtxShard<T> {
    slots: Vec<CtxSlot<T>>,
    free: Vec<u32>,
}

/// Sharded generation-tagged slab pool for operation contexts.
///
/// Shard selection is keyed by the poster's logical core
/// ([`topology::current_core`]): in the thread-per-core regime each
/// core inserts into its own shard, so posting neither bounces a
/// round-robin cursor between cores nor contends on a shared shard
/// lock. Completion decodes the shard from the context id, so a
/// cross-core completion returns the slot to its home shard.
pub(crate) struct CtxPool<T> {
    shards: Box<[SpinLock<CtxShard<T>>]>,
}

impl<T> CtxPool<T> {
    pub fn new(shards: usize) -> Self {
        let n = shards.clamp(1, 256);
        Self {
            shards: (0..n)
                .map(|_| SpinLock::new(CtxShard { slots: Vec::new(), free: Vec::new() }))
                .collect(),
        }
    }

    /// Stores `val` and returns its encoded context (always odd, never
    /// zero — distinguishable from both boxed pointers and the
    /// inject/control sentinel).
    pub fn insert(&self, val: T) -> u64 {
        let nshards = self.shards.len();
        let shard_idx = topology::current_core() % nshards;
        let mut shard = self.shards[shard_idx].lock();
        let slot_idx = match shard.free.pop() {
            Some(i) => i as usize,
            None => {
                shard.slots.push(CtxSlot { gen: 0, val: None });
                shard.slots.len() - 1
            }
        };
        let slot = &mut shard.slots[slot_idx];
        debug_assert!(slot.val.is_none(), "free list handed out an occupied slot");
        slot.val = Some(val);
        let id = (slot_idx * nshards + shard_idx) as u64;
        debug_assert!(id < (1 << 31), "ctx pool id overflow");
        ((slot.gen as u64) << 32) | (id << 1) | 1
    }

    /// Takes the value stored under `ctx` out of the pool. Returns
    /// `None` when the context is stale (already decoded, or never
    /// issued) — the poisoned-generation detection.
    pub fn remove(&self, ctx: u64) -> Option<T> {
        debug_assert_eq!(ctx & 1, 1, "not a pooled context");
        let gen = (ctx >> 32) as u32;
        let id = ((ctx & 0xFFFF_FFFF) >> 1) as usize;
        let nshards = self.shards.len();
        let (slot_idx, shard_idx) = (id / nshards, id % nshards);
        let mut shard = self.shards[shard_idx].lock();
        let slot = shard.slots.get_mut(slot_idx)?;
        if slot.gen != gen {
            return None;
        }
        let val = slot.val.take()?;
        // Vacating bumps the generation: any copy of this ctx value still
        // in flight can never decode again.
        slot.gen = slot.gen.wrapping_add(1);
        shard.free.push(slot_idx as u32);
        Some(val)
    }

    /// Contexts currently checked out (diagnostics/tests).
    #[cfg(test)]
    pub fn in_flight(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                let s = s.lock();
                s.slots.len() - s.free.len()
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::sync::Arc;

    #[test]
    fn insert_remove_roundtrip() {
        let pool: CtxPool<String> = CtxPool::new(4);
        let a = pool.insert("a".into());
        let b = pool.insert("b".into());
        assert_ne!(a, b);
        assert_eq!(a & 1, 1);
        assert_eq!(pool.in_flight(), 2);
        assert_eq!(pool.remove(b).as_deref(), Some("b"));
        assert_eq!(pool.remove(a).as_deref(), Some("a"));
        assert_eq!(pool.in_flight(), 0);
    }

    #[test]
    fn double_decode_is_detected() {
        let pool: CtxPool<u32> = CtxPool::new(2);
        let ctx = pool.insert(7);
        assert_eq!(pool.remove(ctx), Some(7));
        assert_eq!(pool.remove(ctx), None, "second decode of one ctx must fail");
        // The slot is recycled under a new generation; the stale ctx
        // still cannot steal the new occupant.
        let ctx2 = pool.insert(8);
        assert_eq!(pool.remove(ctx), None);
        assert_eq!(pool.remove(ctx2), Some(8));
    }

    #[test]
    fn slots_are_recycled() {
        let pool: CtxPool<usize> = CtxPool::new(1);
        let warm: Vec<u64> = (0..8).map(|i| pool.insert(i)).collect();
        for (i, c) in warm.into_iter().enumerate() {
            assert_eq!(pool.remove(c), Some(i));
        }
        let grown = pool.shards[0].lock().slots.len();
        for round in 0..100usize {
            let c = pool.insert(round);
            assert_eq!(pool.remove(c), Some(round));
        }
        assert_eq!(pool.shards[0].lock().slots.len(), grown, "steady state must not grow the slab");
    }

    /// Multi-threaded post/complete stress: concurrent inserts and
    /// removes never collide on a generation tag — every thread gets its
    /// own values back and every context decodes exactly once.
    #[test]
    fn concurrent_stress_no_generation_collisions() {
        let pool: Arc<CtxPool<(usize, usize)>> = Arc::new(CtxPool::new(8));
        let nthreads = 4;
        let per = 5_000;
        let window = 16;
        let handles: Vec<_> = (0..nthreads)
            .map(|t| {
                let pool = pool.clone();
                std::thread::spawn(move || {
                    let mut inflight: Vec<(u64, usize)> = Vec::new();
                    for i in 0..per {
                        inflight.push((pool.insert((t, i)), i));
                        if inflight.len() >= window {
                            // Complete out of order (front of the window).
                            let (ctx, i) = inflight.remove(0);
                            assert_eq!(pool.remove(ctx), Some((t, i)), "wrong value for ctx");
                            // A second decode must always miss.
                            assert_eq!(pool.remove(ctx), None);
                        }
                    }
                    for (ctx, i) in inflight {
                        assert_eq!(pool.remove(ctx), Some((t, i)));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(pool.in_flight(), 0);
    }

    proptest! {
        /// Interleaved get/put never hands out an in-flight slot: under
        /// any interleaving of inserts and removes, live contexts stay
        /// distinct and decode to exactly their own value.
        #[test]
        fn interleaved_ops_never_alias(ops in proptest::collection::vec(0u8..4, 1..200)) {
            let pool: CtxPool<u64> = CtxPool::new(3);
            let mut live: Vec<(u64, u64)> = Vec::new();
            let mut retired: Vec<u64> = Vec::new();
            let mut seq = 0u64;
            for op in ops {
                match op {
                    // Insert a fresh value.
                    0 | 1 => {
                        let ctx = pool.insert(seq);
                        prop_assert!(live.iter().all(|(c, _)| *c != ctx),
                            "pool issued a ctx already in flight");
                        live.push((ctx, seq));
                        seq += 1;
                    }
                    // Remove the oldest live entry.
                    2 => {
                        if !live.is_empty() {
                            let (ctx, v) = live.remove(0);
                            prop_assert_eq!(pool.remove(ctx), Some(v));
                            retired.push(ctx);
                        }
                    }
                    // Replay a retired ctx: must never resolve.
                    _ => {
                        if let Some(ctx) = retired.last() {
                            prop_assert_eq!(pool.remove(*ctx), None);
                        }
                    }
                }
            }
            for (ctx, v) in live {
                prop_assert_eq!(pool.remove(ctx), Some(v));
            }
        }
    }
}
