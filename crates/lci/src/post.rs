//! Communication posting: the generic `post_comm` operation and the five
//! derived operations (paper §3.2.4, Table 1), with the *Objectified
//! Flexible Function* (OFF) idiom of §3.1.
//!
//! The C++ OFF variant is a functor whose setters can be chained in any
//! order before the final `()` call. The Rust rendering is a builder with
//! the same shape; `call()` plays the role of `operator()`:
//!
//! ```
//! # use lci_fabric::Fabric;
//! # use lci::{Runtime, Comp, MatchingPolicy};
//! # let fabric = Fabric::new(1);
//! # let rt = Runtime::with_defaults(fabric, 0).unwrap();
//! # let comp = Comp::alloc_cq();
//! let ret = rt
//!     .post_send_x(0, vec![1, 2, 3], 5, comp)
//!     .matching_policy(MatchingPolicy::RankOnly)
//!     .call()
//!     .unwrap();
//! ```
//!
//! Table 1 mapping (direction × remote buffer × remote completion):
//!
//! | Direction | Remote buffer | Remote completion | Operation |
//! |-----------|---------------|-------------------|-----------|
//! | OUT | none | none | send |
//! | OUT | none | specified | active message |
//! | OUT | specified | none | RMA put |
//! | OUT | specified | specified | RMA put w. signal |
//! | IN  | none | none | receive |
//! | IN  | none | specified | **invalid** |
//! | IN  | specified | none | RMA get |
//! | IN  | specified | specified | RMA get w. signal |

use crate::comp::Comp;
use crate::device::{CommArgs, Device};
use crate::error::{PostResult, Result};
use crate::runtime::Runtime;
use crate::types::{Direction, MatchingPolicy, RComp, Rank, SendBuf, Tag};
use lci_fabric::{DevId, Rkey};

/// The OFF builder for the generic communication-posting operation.
///
/// Construct through [`Runtime::post_comm_x`] or one of the derived
/// `post_*_x` methods, chain optional arguments in any order, and finish
/// with [`call`](CommBuilder::call).
#[must_use = "a builder does nothing until .call()"]
pub struct CommBuilder {
    device: Device,
    args: CommArgs,
}

impl CommBuilder {
    pub(crate) fn new(device: Device, direction: Direction, rank: Rank) -> Self {
        Self {
            device,
            args: CommArgs {
                direction,
                rank,
                send_buf: None,
                recv_buf: None,
                tag: 0,
                comp: None,
                remote_buf: None,
                remote_comp: None,
                policy: MatchingPolicy::RankTag,
                target_dev: None,
                user_ctx: 0,
                allow_retry: true,
                allow_coalescing: true,
            },
        }
    }

    /// Uses `device` instead of the runtime default (the
    /// `.device(device)` optional argument of Listing 1).
    pub fn device(mut self, device: &Device) -> Self {
        self.device = device.clone();
        self
    }

    /// Sets the message tag.
    pub fn tag(mut self, tag: Tag) -> Self {
        self.args.tag = tag;
        self
    }

    /// Sets the local completion object.
    pub fn comp(mut self, comp: Comp) -> Self {
        self.args.comp = Some(comp);
        self
    }

    /// Sets the local source buffer (OUT direction).
    pub fn send_buf(mut self, buf: impl Into<SendBuf>) -> Self {
        self.args.send_buf = Some(buf.into());
        self
    }

    /// Sets the local destination buffer (IN direction).
    pub fn recv_buf(mut self, buf: impl Into<Box<[u8]>>) -> Self {
        self.args.recv_buf = Some(buf.into());
        self
    }

    /// Sets the remote buffer (turns a send into a put, a receive into a
    /// get — Table 1).
    pub fn remote_buf(mut self, rkey: Rkey, offset: usize) -> Self {
        self.args.remote_buf = Some((rkey, offset));
        self
    }

    /// Sets the remote completion handle (turns a send into an active
    /// message, a put/get into its signalled variant — Table 1).
    pub fn remote_comp(mut self, rcomp: RComp) -> Self {
        self.args.remote_comp = Some(rcomp);
        self
    }

    /// Sets the matching policy (the `.matching_policy(...)` optional
    /// argument of Listing 1).
    pub fn matching_policy(mut self, policy: MatchingPolicy) -> Self {
        self.args.policy = policy;
        self
    }

    /// Addresses a specific device index on the target rank (defaults to
    /// the sending device's own index — the symmetric-allocation
    /// convention of DESIGN.md).
    pub fn target_device(mut self, dev: DevId) -> Self {
        self.args.target_dev = Some(dev);
        self
    }

    /// Attaches an opaque user context returned in the completion
    /// descriptor.
    pub fn user_ctx(mut self, ctx: u64) -> Self {
        self.args.user_ctx = ctx;
        self
    }

    /// Disallows the `retry` return value: on temporary resource
    /// exhaustion the request is parked in the backlog queue instead
    /// (paper §4.4), and the operation reports `posted`.
    pub fn no_retry(mut self) -> Self {
        self.args.allow_retry = false;
        self
    }

    /// Opts this message in or out of sender-side coalescing (default:
    /// in). Only effective when the runtime enables coalescing
    /// ([`RuntimeConfig::coalesce`](crate::RuntimeConfig)); opting out
    /// forces an individual post and first flushes any sub-messages
    /// already buffered for the destination, preserving order.
    pub fn allow_coalescing(mut self, allow: bool) -> Self {
        self.args.allow_coalescing = allow;
        self
    }

    /// Executes the post (the OFF `operator()`).
    pub fn call(self) -> Result<PostResult> {
        self.device.post_comm(self.args)
    }
}

/// OFF builder for the explicit progress function (paper §3.2.6 /
/// Listing 2 line 70: `lci::progress_x().device(device)()`).
#[must_use = "a builder does nothing until .call()"]
pub struct ProgressBuilder {
    device: Device,
}

impl ProgressBuilder {
    /// Progresses `device` instead of the runtime default.
    pub fn device(mut self, device: &Device) -> Self {
        self.device = device.clone();
        self
    }

    /// Executes one progress pass (the OFF `operator()`); returns
    /// whether any work was performed.
    pub fn call(self) -> Result<bool> {
        self.device.progress()
    }
}

impl Runtime {
    /// OFF variant of [`progress`](Runtime::progress).
    pub fn progress_x(&self) -> ProgressBuilder {
        ProgressBuilder { device: self.device().clone() }
    }

    /// The generic posting operation in OFF form (paper §3.2.4).
    pub fn post_comm_x(&self, direction: Direction, rank: Rank) -> CommBuilder {
        CommBuilder::new(self.device().clone(), direction, rank)
    }

    /// Two-sided send (derived operation). `comp` is signaled on local
    /// completion unless the result is `done`.
    pub fn post_send(
        &self,
        rank: Rank,
        buf: impl Into<SendBuf>,
        tag: Tag,
        comp: Comp,
    ) -> Result<PostResult> {
        self.post_send_x(rank, buf, tag, comp).call()
    }

    /// OFF variant of [`post_send`](Runtime::post_send).
    pub fn post_send_x(
        &self,
        rank: Rank,
        buf: impl Into<SendBuf>,
        tag: Tag,
        comp: Comp,
    ) -> CommBuilder {
        self.post_comm_x(Direction::Out, rank).send_buf(buf).tag(tag).comp(comp)
    }

    /// Two-sided receive into `buf` (derived operation).
    pub fn post_recv(
        &self,
        rank: Rank,
        buf: impl Into<Box<[u8]>>,
        tag: Tag,
        comp: Comp,
    ) -> Result<PostResult> {
        self.post_recv_x(rank, buf, tag, comp).call()
    }

    /// OFF variant of [`post_recv`](Runtime::post_recv).
    pub fn post_recv_x(
        &self,
        rank: Rank,
        buf: impl Into<Box<[u8]>>,
        tag: Tag,
        comp: Comp,
    ) -> CommBuilder {
        self.post_comm_x(Direction::In, rank).recv_buf(buf).tag(tag).comp(comp)
    }

    /// Active message (derived operation): `scomp` is the source-side
    /// completion, `rcomp` the handle the target registered.
    pub fn post_am(
        &self,
        rank: Rank,
        buf: impl Into<SendBuf>,
        scomp: Comp,
        rcomp: RComp,
    ) -> Result<PostResult> {
        self.post_am_x(rank, buf, scomp, rcomp).call()
    }

    /// OFF variant of [`post_am`](Runtime::post_am).
    pub fn post_am_x(
        &self,
        rank: Rank,
        buf: impl Into<SendBuf>,
        scomp: Comp,
        rcomp: RComp,
    ) -> CommBuilder {
        self.post_comm_x(Direction::Out, rank).send_buf(buf).comp(scomp).remote_comp(rcomp)
    }

    /// RMA put into the remote registered region (derived operation).
    pub fn post_put(
        &self,
        rank: Rank,
        buf: impl Into<SendBuf>,
        rkey: Rkey,
        offset: usize,
        comp: Comp,
    ) -> Result<PostResult> {
        self.post_put_x(rank, buf, rkey, offset, comp).call()
    }

    /// OFF variant of [`post_put`](Runtime::post_put). Chain
    /// [`remote_comp`](CommBuilder::remote_comp) for put-with-signal.
    pub fn post_put_x(
        &self,
        rank: Rank,
        buf: impl Into<SendBuf>,
        rkey: Rkey,
        offset: usize,
        comp: Comp,
    ) -> CommBuilder {
        self.post_comm_x(Direction::Out, rank).send_buf(buf).remote_buf(rkey, offset).comp(comp)
    }

    /// RMA get from the remote registered region into `buf` (derived
    /// operation).
    pub fn post_get(
        &self,
        rank: Rank,
        buf: impl Into<Box<[u8]>>,
        rkey: Rkey,
        offset: usize,
        comp: Comp,
    ) -> Result<PostResult> {
        self.post_get_x(rank, buf, rkey, offset, comp).call()
    }

    /// OFF variant of [`post_get`](Runtime::post_get). Chain
    /// [`remote_comp`](CommBuilder::remote_comp) for get-with-signal
    /// (supported by this reproduction's fabric; see `proto` docs).
    pub fn post_get_x(
        &self,
        rank: Rank,
        buf: impl Into<Box<[u8]>>,
        rkey: Rkey,
        offset: usize,
        comp: Comp,
    ) -> CommBuilder {
        self.post_comm_x(Direction::In, rank).recv_buf(buf).remote_buf(rkey, offset).comp(comp)
    }

    /// Registers memory on the default device (paper §3.3.1).
    pub fn register_memory(&self, buf: &[u8]) -> Result<lci_fabric::MemoryRegion> {
        self.device().register_memory(buf)
    }

    /// Deregisters a memory region. Deferred when the registration cache
    /// is enabled — see [`Device::deregister_memory`](crate::Device::deregister_memory).
    pub fn deregister_memory(&self, mr: &lci_fabric::MemoryRegion) -> Result<()> {
        self.device().deregister_memory(mr)
    }
}
