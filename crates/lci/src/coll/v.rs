//! Pipelined uneven-block alltoallv engine (DESIGN.md §4.13).
//!
//! The dense pairwise alltoall in [`ring`](super::ring) posts one
//! identical block per peer; a vector exchange can't — MoE routing
//! matrices are ragged (every pair its own byte count) and mostly
//! sparse (most pairs zero). This engine turns those irregularities
//! into the optimization surface:
//!
//! * **Sparse pair skipping.** A zero-byte pair posts *nothing*: no
//!   send, no landing box, no completion. Each send-side skip bumps
//!   `coll_skipped_pairs` (send-side only, so the global counter sums
//!   to the number of skipped edges, not twice that). The dense
//!   baselines pay a full eager round-trip per empty pair.
//! * **Size-adaptive per-block protocol.** A block is cut into
//!   `coll_chunk_size` pieces; each piece rides the same
//!   [`post_windowed`](super::post_windowed) staging ladder as every
//!   collective payload — inline descriptor (≤ `SENDBUF_INLINE_CAP`),
//!   pooled eager (≤ `eager_size`), chunked rendezvous above — so one
//!   multi-megabyte hot-expert block pipelines through the rendezvous
//!   chunk pumps while hundreds of small blocks ship in single eager
//!   (or inline) frames with no chunking overhead.
//! * **Skew-aware bounded-inflight scheduling.** All landing boxes are
//!   pre-posted, then sends are issued **largest-block-first** under
//!   the `coll_max_inflight` window: the straggler that bounds the
//!   exchange's critical path departs first and overlaps every smaller
//!   block behind it. Ties (the uniform case) break by rank-rotated
//!   distance `(peer − me − 1) mod n`, the classic alltoall rotation,
//!   so equal-size schedules do not converge on one hot receiver.
//!
//! Chunk identity rides `user_ctx = peer << 32 | chunk` on each posted
//! receive; per-`(rank, tag)` matching is FIFO and all transports
//! deliver in order per peer pair, so the k-th posted landing box gets
//! the k-th sent piece. Both sides cut blocks with their *local*
//! `coll_chunk_size`, which is therefore part of the collective
//! contract: it must match across ranks (like invocation order).
//!
//! While sends drain, arrivals are swallowed opportunistically (a
//! non-blocking CQ pop per posted piece) so landing boxes recycle back
//! onto the shelf mid-exchange instead of piling up until the final
//! drain loop — that keeps the warm loop allocation-free even when the
//! receive side is the bottleneck.

use super::{coll_tag, drain_sends, next_seq, pop_recv, post_recv_cq, post_windowed, CollState};
use crate::device::Device;
use crate::error::Result;
use crate::runtime::Runtime;
use crate::types::CompDesc;

/// Copies one delivered piece into its slot in `recv` and recycles the
/// landing box. `user_ctx = peer << 32 | chunk`.
fn land(
    st: &mut CollState,
    desc: CompDesc,
    recv: &mut [u8],
    recv_offs: &[usize],
    recv_counts: &[usize],
    chunk: usize,
) {
    let peer = (desc.user_ctx >> 32) as usize;
    let c = (desc.user_ctx & 0xffff_ffff) as usize;
    let off = recv_offs[peer] + c * chunk;
    let clen = chunk.min(recv_counts[peer] - c * chunk);
    recv[off..off + clen].copy_from_slice(&desc.data.as_slice()[..clen]);
    st.put_databuf(desc.data);
}

pub(super) fn alltoallv(
    rt: &Runtime,
    st: &mut CollState,
    send: &[u8],
    send_counts: &[usize],
    recv: &mut [u8],
    recv_counts: &[usize],
) -> Result<()> {
    let n = rt.rank_n();
    let me = rt.rank_me();
    let dev = rt.device().clone();
    let seq = next_seq(rt);
    let tag = coll_tag(seq, super::ROUND_A2AV);
    let chunk = rt.config().coll_chunk_size;

    // Scratch comes out of the state (so the helpers below can borrow
    // `st` mutably) and goes back at the end; `resize`/`clear` reuse
    // capacity, so the warm path allocates nothing.
    let mut send_offs = std::mem::take(&mut st.v_send_offs);
    let mut recv_offs = std::mem::take(&mut st.v_recv_offs);
    let mut order = std::mem::take(&mut st.v_order);
    send_offs.clear();
    recv_offs.clear();
    let (mut sacc, mut racc) = (0usize, 0usize);
    for p in 0..n {
        send_offs.push(sacc);
        recv_offs.push(racc);
        sacc += send_counts[p];
        racc += recv_counts[p];
    }

    // Pre-post every landing box (sparse: zero-byte inbound pairs post
    // nothing). Pre-posting before any send leaves the exchange
    // deadlock-free under any schedule: every in-flight piece has a
    // matched box waiting.
    let mut expected = 0usize;
    for r in 1..n {
        let peer = (me + r) % n;
        let blen = recv_counts[peer];
        if blen == 0 {
            continue;
        }
        for c in 0..blen.div_ceil(chunk) {
            let clen = chunk.min(blen - c * chunk);
            let ctx = ((peer as u64) << 32) | c as u64;
            post_recv_cq(rt, &dev, st, peer, clen, tag, ctx)?;
            expected += 1;
        }
    }

    // Skew-aware send schedule: largest block first (the straggler
    // bounds the critical path — start it before everything it must
    // overlap), rank-rotated distance as the tie-break so uniform
    // schedules keep the classic `(me + r) mod n` rotation instead of
    // hammering one receiver. `sort_unstable_by_key` allocates nothing.
    order.clear();
    let mut skipped = 0u64;
    for r in 1..n {
        let peer = (me + r) % n;
        if send_counts[peer] == 0 {
            skipped += 1;
        } else {
            order.push(peer);
        }
    }
    order.sort_unstable_by_key(|&p| (usize::MAX - send_counts[p], (p + n - me - 1) % n));
    if skipped > 0 {
        dev.inner.stats.add(|c| &c.coll_skipped_pairs, skipped);
    }

    // Issue the schedule under the in-flight window, swallowing
    // arrivals opportunistically so landing boxes recycle mid-exchange.
    let mut landed = 0usize;
    for &peer in order.iter() {
        let (boff, blen) = (send_offs[peer], send_counts[peer]);
        for c in 0..blen.div_ceil(chunk) {
            let off = boff + c * chunk;
            let clen = chunk.min(boff + blen - off);
            post_windowed(rt, &dev, st, peer, &send[off..off + clen], tag)?;
            while let Some(desc) = st.recv_cq.pop() {
                land(st, desc, recv, &recv_offs, recv_counts, chunk);
                landed += 1;
            }
        }
    }

    // Drain the remaining arrivals, then the send window.
    while landed < expected {
        let desc = pop_recv(rt, st)?;
        land(st, desc, recv, &recv_offs, recv_counts, chunk);
        landed += 1;
    }
    dev.inner.stats.bump(|c| &c.coll_rounds);
    raise_v_bytes(&dev, send_counts);
    st.v_send_offs = send_offs;
    st.v_recv_offs = recv_offs;
    st.v_order = order;
    drain_sends(rt, st)
}

/// Records the call's total contributed payload (self block included)
/// in the `coll_v_bytes_hwm` high-water mark.
pub(super) fn raise_v_bytes(dev: &Device, send_counts: &[usize]) {
    let total: usize = send_counts.iter().sum();
    dev.inner.stats.raise(|c| &c.coll_v_bytes_hwm, total as u64);
}
