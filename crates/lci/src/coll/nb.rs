//! Non-blocking collectives composed on the completion graph (paper
//! §3.2.5: "the local partial execution order and the ordering imposed
//! by communication operations allow intuitive implementations of
//! complex nonblocking collective algorithms").
//!
//! Each `i*` collective builds its rank's program order — the exact
//! per-rank sequence of sends/receives its blocking counterpart would
//! execute — as a linear chain of graph nodes, starts the graph, and
//! returns immediately. Receive nodes carry the data: their handler
//! comps write the delivered bytes into the result slot before
//! signalling the node, so successor sends read fully-arrived state.
//! Poll with [`IColl::test`] (progressing the runtime) or block with
//! [`IColl::wait`], which parks mode-aware via
//! [`Runtime::wait_until`](crate::Runtime::wait_until).

use super::{
    coll_tag, next_seq, ROUND_A2A, ROUND_A2AV, ROUND_A2AV_CNT, ROUND_AG_BASE, ROUND_BCAST,
    ROUND_REDUCE,
};
use crate::comp::Comp;
use crate::error::{PostResult, Result};
use crate::runtime::Runtime;
use crate::types::{CompDesc, Rank, Tag};
use crate::{Graph, GraphBuilder, NodeId};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Handle to an in-flight non-blocking collective: a started completion
/// graph plus the slot its receive handlers fill.
pub struct IColl<T> {
    graph: Arc<Graph>,
    slot: Arc<Mutex<Option<T>>>,
}

impl<T> IColl<T> {
    /// Whether the collective has completed (non-blocking; the runtime
    /// must be progressed by someone for this to advance).
    pub fn test(&self) -> bool {
        self.graph.test()
    }

    /// The underlying completion graph (e.g. to chain further work).
    pub fn graph(&self) -> &Arc<Graph> {
        &self.graph
    }

    /// Blocks (mode-aware) until completion and returns the result.
    pub fn wait(self, rt: &Runtime) -> Result<T> {
        let g = self.graph.clone();
        rt.wait_until(|| g.test())?;
        Ok(self.slot.lock().take().expect("collective result"))
    }
}

/// Posts a send whose completion *is* the node's completion (`done`
/// results never signal, so they are forwarded manually).
fn post_send_node(rt: &Runtime, to: Rank, payload: Vec<u8>, tag: Tag, node: Comp) {
    loop {
        match rt
            .post_send_x(to, payload.clone(), tag, node.clone())
            .allow_coalescing(false)
            .call()
            .expect("graph send post")
        {
            PostResult::Done(_) => {
                node.signal(CompDesc::empty());
                return;
            }
            PostResult::Posted => return,
            PostResult::Retry(_) => {
                let _ = rt.progress();
                std::thread::yield_now();
            }
        }
    }
}

/// Posts a fire-and-forget send (the receive is the ordering carrier).
fn post_send_ff(rt: &Runtime, to: Rank, payload: Vec<u8>, tag: Tag) {
    loop {
        match rt
            .post_send_x(to, payload.clone(), tag, Comp::alloc_handler(|_| {}))
            .allow_coalescing(false)
            .call()
            .expect("graph send post")
        {
            PostResult::Retry(_) => {
                let _ = rt.progress();
                std::thread::yield_now();
            }
            _ => return,
        }
    }
}

/// Posts a receive that runs `on_data` on the delivered bytes and then
/// signals `node` — including for matches completed at post time.
fn post_recv_node(
    rt: &Runtime,
    from: Rank,
    len: usize,
    tag: Tag,
    node: Comp,
    on_data: impl Fn(&[u8]) + Send + Sync + 'static,
) {
    let on_data = Arc::new(on_data);
    let handler = {
        let node = node.clone();
        let on_data = on_data.clone();
        Comp::alloc_handler(move |desc: CompDesc| {
            on_data(desc.data.as_slice());
            node.signal(CompDesc::empty());
        })
    };
    match rt.post_recv(from, vec![0u8; len.max(1)], tag, handler).expect("graph recv post") {
        PostResult::Done(d) => {
            on_data(d.data.as_slice());
            node.signal(CompDesc::empty());
        }
        PostResult::Posted => {}
        PostResult::Retry(_) => unreachable!("recv never retries"),
    }
}

/// Appends `node` to a linear chain.
fn chain(gb: &mut GraphBuilder, prev: &mut Option<NodeId>, node: NodeId) {
    if let Some(p) = *prev {
        gb.add_edge(p, node);
    }
    *prev = Some(node);
}

/// Non-blocking dissemination barrier. Returns the started graph; poll
/// it with [`Graph::test`] while progressing the runtime.
pub fn ibarrier(rt: &Runtime) -> Result<Arc<Graph>> {
    let n = rt.rank_n();
    let me = rt.rank_me();
    let seq = next_seq(rt);
    let mut gb = GraphBuilder::new();
    let mut prev: Option<NodeId> = None;
    let mut dist = 1usize;
    let mut round: u32 = 0;
    while dist < n {
        let to = (me + dist) % n;
        let from = (me + n - dist) % n;
        let tag = coll_tag(seq, round);
        // One node per round: the receive is the ordering carrier, the
        // signal to the next rank is a fire-and-forget inject.
        let rt2 = rt.clone();
        let node = gb.add_comm(move |comp| {
            post_send_ff(&rt2, to, vec![round as u8], tag);
            post_recv_node(&rt2, from, 8, tag, comp, |_| {});
        });
        chain(&mut gb, &mut prev, node);
        dist <<= 1;
        round += 1;
    }
    let g = gb.build();
    g.start();
    Ok(g)
}

/// Non-blocking binomial broadcast; the result is the (root's) buffer.
pub fn ibroadcast(rt: &Runtime, root: Rank, buf: Vec<u8>) -> Result<IColl<Vec<u8>>> {
    let n = rt.rank_n();
    let me = rt.rank_me();
    let len = buf.len();
    let slot = Arc::new(Mutex::new(Some(buf)));
    let seq = next_seq(rt);
    let tag = coll_tag(seq, ROUND_BCAST);
    let mut gb = GraphBuilder::new();
    let mut prev: Option<NodeId> = None;
    let vr = (me + n - root) % n;
    if vr != 0 {
        let hb = 1usize << (usize::BITS - 1 - vr.leading_zeros());
        let parent = ((vr - hb) + root) % n;
        let rt2 = rt.clone();
        let slot2 = slot.clone();
        let node = gb.add_comm(move |comp| {
            let slot3 = slot2.clone();
            post_recv_node(&rt2, parent, len, tag, comp, move |data| {
                let mut g = slot3.lock();
                let buf = g.as_mut().expect("broadcast slot");
                buf[..data.len()].copy_from_slice(data);
            });
        });
        chain(&mut gb, &mut prev, node);
    }
    let mut m = if vr == 0 { 1 } else { 1usize << (usize::BITS - vr.leading_zeros()) };
    while vr + m < n {
        let child = ((vr + m) + root) % n;
        let rt2 = rt.clone();
        let slot2 = slot.clone();
        let node = gb.add_comm(move |comp| {
            let payload = slot2.lock().as_ref().expect("broadcast slot").clone();
            post_send_node(&rt2, child, payload, tag, comp);
        });
        chain(&mut gb, &mut prev, node);
        m <<= 1;
    }
    let graph = gb.build();
    graph.start();
    Ok(IColl { graph, slot })
}

/// Non-blocking binomial reduction to `root`; resolves to
/// `Some(result)` on the root and `None` elsewhere.
pub fn ireduce_u64(
    rt: &Runtime,
    root: Rank,
    contrib: &[u64],
    op: impl Fn(u64, u64) -> u64 + Copy + Send + Sync + 'static,
) -> Result<IColl<Option<Vec<u64>>>> {
    let n = rt.rank_n();
    let me = rt.rank_me();
    let len = contrib.len() * 8;
    let slot: Arc<Mutex<Option<Option<Vec<u64>>>>> =
        Arc::new(Mutex::new(Some(Some(contrib.to_vec()))));
    let seq = next_seq(rt);
    let tag = coll_tag(seq, ROUND_REDUCE);
    let mut gb = GraphBuilder::new();
    let mut prev: Option<NodeId> = None;
    let vr = (me + n - root) % n;
    let mut m = 1usize;
    while m < n {
        if vr & m != 0 {
            let parent = ((vr - m) + root) % n;
            let rt2 = rt.clone();
            let slot2 = slot.clone();
            let node = gb.add_comm(move |comp| {
                let bytes: Vec<u8> = {
                    let g = slot2.lock();
                    let acc = g.as_ref().unwrap().as_ref().expect("reduce slot");
                    acc.iter().flat_map(|v| v.to_le_bytes()).collect()
                };
                post_send_node(&rt2, parent, bytes, tag, comp);
            });
            chain(&mut gb, &mut prev, node);
            break;
        }
        if vr + m < n {
            let child = ((vr + m) + root) % n;
            let rt2 = rt.clone();
            let slot2 = slot.clone();
            let node = gb.add_comm(move |comp| {
                let slot3 = slot2.clone();
                post_recv_node(&rt2, child, len, tag, comp, move |data| {
                    let mut g = slot3.lock();
                    let acc = g.as_mut().unwrap().as_mut().expect("reduce slot");
                    for (i, c) in data.chunks_exact(8).enumerate() {
                        acc[i] = op(acc[i], u64::from_le_bytes(c.try_into().unwrap()));
                    }
                });
            });
            chain(&mut gb, &mut prev, node);
        }
        m <<= 1;
    }
    if vr != 0 {
        // Non-roots resolve to None once their send is accepted.
        let slot2 = slot.clone();
        let node = gb.add_fn(move || {
            *slot2.lock() = Some(None);
        });
        chain(&mut gb, &mut prev, node);
    }
    let graph = gb.build();
    graph.start();
    Ok(IColl { graph, slot })
}

/// Non-blocking forwarding-ring allgather; resolves to the rank-ordered
/// contributions.
pub fn iallgather(rt: &Runtime, mine: &[u8]) -> Result<IColl<Vec<Vec<u8>>>> {
    let n = rt.rank_n();
    let me = rt.rank_me();
    let len = mine.len();
    let mut out: Vec<Vec<u8>> = vec![Vec::new(); n];
    out[me] = mine.to_vec();
    let slot = Arc::new(Mutex::new(Some(out)));
    let seq = next_seq(rt);
    let tag = coll_tag(seq, ROUND_AG_BASE);
    let right = (me + 1) % n;
    let left = (me + n - 1) % n;
    let mut gb = GraphBuilder::new();
    let mut prev: Option<NodeId> = None;
    for r in 0..n.saturating_sub(1) {
        let src = (me + n - r) % n; // whose block we forward this round
        let inc = (left + n - r) % n; // whose block arrives this round
        let rt2 = rt.clone();
        let slot2 = slot.clone();
        let node = gb.add_comm(move |comp| {
            let payload = slot2.lock().as_ref().expect("allgather slot")[src].clone();
            post_send_ff(&rt2, right, payload, tag);
            let slot3 = slot2.clone();
            post_recv_node(&rt2, left, len, tag, comp, move |data| {
                slot3.lock().as_mut().expect("allgather slot")[inc] = data.to_vec();
            });
        });
        chain(&mut gb, &mut prev, node);
    }
    let graph = gb.build();
    graph.start();
    Ok(IColl { graph, slot })
}

/// Non-blocking pairwise alltoall; resolves to the rank-ordered blocks
/// received. All blocks must have equal length across ranks.
pub fn ialltoall(rt: &Runtime, send: &[Vec<u8>]) -> Result<IColl<Vec<Vec<u8>>>> {
    let n = rt.rank_n();
    let me = rt.rank_me();
    assert_eq!(send.len(), n, "alltoall needs one block per rank");
    let block = send.first().map_or(0, |b| b.len());
    assert!(send.iter().all(|b| b.len() == block), "alltoall blocks must have equal length");
    let mut out: Vec<Vec<u8>> = vec![Vec::new(); n];
    out[me] = send[me].clone();
    let slot = Arc::new(Mutex::new(Some(out)));
    let seq = next_seq(rt);
    let tag = coll_tag(seq, ROUND_A2A);
    let mut gb = GraphBuilder::new();
    if n > 1 {
        let rt2 = rt.clone();
        let slot2 = slot.clone();
        let blocks: Vec<Vec<u8>> = send.to_vec();
        gb.add_comm(move |comp| {
            // One node: all receives pre-posted (the handler counts
            // them down into the node's single signal), sends
            // fire-and-forget in (me + r) mod n order.
            let remaining = Arc::new(AtomicUsize::new(n - 1));
            for peer in (0..n).filter(|&p| p != me) {
                let slot3 = slot2.clone();
                let remaining = remaining.clone();
                let comp = comp.clone();
                post_recv_node(&rt2, peer, block, tag, Comp::alloc_handler(|_| {}), move |data| {
                    slot3.lock().as_mut().expect("alltoall slot")[peer] = data.to_vec();
                    if remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
                        comp.signal(CompDesc::empty());
                    }
                });
            }
            for r in 1..n {
                let peer = (me + r) % n;
                post_send_ff(&rt2, peer, blocks[peer].clone(), tag);
            }
        });
    }
    let graph = gb.build();
    graph.start();
    Ok(IColl { graph, slot })
}

/// Non-blocking uneven-block alltoallv; resolves to the rank-ordered
/// blocks received. Blocks may differ in length per pair and the
/// receive sizes need not be known: the graph chains a **count round**
/// (every pair exchanges its block length, 8 bytes LE) into a **data
/// round** that posts exactly the learned landing sizes — the MoE
/// dispatch shape, overlappable behind compute via [`IColl::test`].
/// Zero-byte pairs post nothing in the data round (counted in
/// `coll_skipped_pairs`); unlike [`alltoallv`](super::alltoallv) there
/// is no chunking — each block is one message (the blocking engine is
/// the bandwidth path, this is the overlap path).
pub fn ialltoallv(rt: &Runtime, send: &[Vec<u8>]) -> Result<IColl<Vec<Vec<u8>>>> {
    let n = rt.rank_n();
    let me = rt.rank_me();
    assert_eq!(send.len(), n, "alltoallv needs one block per rank");
    let mut out: Vec<Vec<u8>> = vec![Vec::new(); n];
    out[me] = send[me].clone();
    let slot = Arc::new(Mutex::new(Some(out)));
    let seq = next_seq(rt);
    let ctag = coll_tag(seq, ROUND_A2AV_CNT);
    let dtag = coll_tag(seq, ROUND_A2AV);
    let mut gb = GraphBuilder::new();
    if n > 1 {
        let counts: Arc<Mutex<Vec<usize>>> = Arc::new(Mutex::new(vec![0usize; n]));

        // Count round: one node, all 8-byte count receives counted down
        // into its signal, count sends fire-and-forget.
        let rt2 = rt.clone();
        let counts2 = counts.clone();
        let lens: Vec<usize> = send.iter().map(Vec::len).collect();
        let cnt_node = gb.add_comm(move |comp| {
            let remaining = Arc::new(AtomicUsize::new(n - 1));
            for peer in (0..n).filter(|&p| p != me) {
                let counts3 = counts2.clone();
                let remaining = remaining.clone();
                let comp = comp.clone();
                post_recv_node(&rt2, peer, 8, ctag, Comp::alloc_handler(|_| {}), move |data| {
                    let c = u64::from_le_bytes(data[..8].try_into().unwrap()) as usize;
                    counts3.lock()[peer] = c;
                    if remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
                        comp.signal(CompDesc::empty());
                    }
                });
            }
            for r in 1..n {
                let peer = (me + r) % n;
                post_send_ff(&rt2, peer, (lens[peer] as u64).to_le_bytes().to_vec(), ctag);
            }
        });

        // Data round: posts exactly the learned landing sizes, skips
        // zero pairs both ways. Runs only after every count arrived.
        let rt2 = rt.clone();
        let slot2 = slot.clone();
        let blocks: Vec<Vec<u8>> = send.to_vec();
        let data_node = gb.add_comm(move |comp| {
            let learned = counts.lock().clone();
            let inbound = (0..n).filter(|&p| p != me && learned[p] > 0).count();
            if inbound == 0 {
                comp.signal(CompDesc::empty());
            } else {
                let remaining = Arc::new(AtomicUsize::new(inbound));
                for peer in (0..n).filter(|&p| p != me && learned[p] > 0) {
                    let slot3 = slot2.clone();
                    let remaining = remaining.clone();
                    let comp = comp.clone();
                    post_recv_node(
                        &rt2,
                        peer,
                        learned[peer],
                        dtag,
                        Comp::alloc_handler(|_| {}),
                        move |data| {
                            slot3.lock().as_mut().expect("alltoallv slot")[peer] = data.to_vec();
                            if remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
                                comp.signal(CompDesc::empty());
                            }
                        },
                    );
                }
            }
            let mut skipped = 0u64;
            for r in 1..n {
                let peer = (me + r) % n;
                if blocks[peer].is_empty() {
                    skipped += 1;
                } else {
                    post_send_ff(&rt2, peer, blocks[peer].clone(), dtag);
                }
            }
            if skipped > 0 {
                rt2.device().inner.stats.add(|c| &c.coll_skipped_pairs, skipped);
            }
        });
        gb.add_edge(cnt_node, data_node);
    }
    let graph = gb.build();
    graph.start();
    Ok(IColl { graph, slot })
}

/// Non-blocking allreduce (binomial reduce to rank 0 + broadcast) of
/// `u64` lanes; resolves to the reduced vector on every rank.
pub fn iallreduce_u64(
    rt: &Runtime,
    contrib: &[u64],
    op: impl Fn(u64, u64) -> u64 + Copy + Send + Sync + 'static,
) -> Result<IColl<Vec<u64>>> {
    let n = rt.rank_n();
    let me = rt.rank_me();
    let len = contrib.len() * 8;
    let slot = Arc::new(Mutex::new(Some(contrib.to_vec())));
    let seq = next_seq(rt);
    let rtag = coll_tag(seq, ROUND_REDUCE);
    let btag = coll_tag(seq, ROUND_BCAST);
    let mut gb = GraphBuilder::new();
    let mut prev: Option<NodeId> = None;
    let vr = me; // root 0
                 // Phase 1: binomial reduce to rank 0 (program order of this rank).
    let mut m = 1usize;
    while m < n {
        if vr & m != 0 {
            let parent = vr - m;
            let rt2 = rt.clone();
            let slot2 = slot.clone();
            let node = gb.add_comm(move |comp| {
                let bytes: Vec<u8> = {
                    let g = slot2.lock();
                    g.as_ref()
                        .expect("allreduce slot")
                        .iter()
                        .flat_map(|v| v.to_le_bytes())
                        .collect()
                };
                post_send_node(&rt2, parent, bytes, rtag, comp);
            });
            chain(&mut gb, &mut prev, node);
            break;
        }
        if vr + m < n {
            let child = vr + m;
            let rt2 = rt.clone();
            let slot2 = slot.clone();
            let node = gb.add_comm(move |comp| {
                let slot3 = slot2.clone();
                post_recv_node(&rt2, child, len, rtag, comp, move |data| {
                    let mut g = slot3.lock();
                    let acc = g.as_mut().expect("allreduce slot");
                    for (i, c) in data.chunks_exact(8).enumerate() {
                        acc[i] = op(acc[i], u64::from_le_bytes(c.try_into().unwrap()));
                    }
                });
            });
            chain(&mut gb, &mut prev, node);
        }
        m <<= 1;
    }
    // Phase 2: binomial broadcast of the reduced vector from rank 0.
    if vr != 0 {
        let hb = 1usize << (usize::BITS - 1 - vr.leading_zeros());
        let parent = vr - hb;
        let rt2 = rt.clone();
        let slot2 = slot.clone();
        let node = gb.add_comm(move |comp| {
            let slot3 = slot2.clone();
            post_recv_node(&rt2, parent, len, btag, comp, move |data| {
                let mut g = slot3.lock();
                let acc = g.as_mut().expect("allreduce slot");
                for (i, c) in data.chunks_exact(8).enumerate() {
                    acc[i] = u64::from_le_bytes(c.try_into().unwrap());
                }
            });
        });
        chain(&mut gb, &mut prev, node);
    }
    let mut m = if vr == 0 { 1 } else { 1usize << (usize::BITS - vr.leading_zeros()) };
    while vr + m < n {
        let child = vr + m;
        let rt2 = rt.clone();
        let slot2 = slot.clone();
        let node = gb.add_comm(move |comp| {
            let bytes: Vec<u8> = {
                let g = slot2.lock();
                g.as_ref().expect("allreduce slot").iter().flat_map(|v| v.to_le_bytes()).collect()
            };
            post_send_node(&rt2, child, bytes, btag, comp);
        });
        chain(&mut gb, &mut prev, node);
        m <<= 1;
    }
    let graph = gb.build();
    graph.start();
    Ok(IColl { graph, slot })
}
