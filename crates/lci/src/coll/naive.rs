//! Naive collective baselines, kept as the measured ablation behind the
//! [`coll_naive`](crate::RuntimeConfig::coll_naive) knob (and as the
//! fallback for worlds too large for the ring's tag round field).
//!
//! These are the pre-pipelining algorithms: allreduce as binomial
//! reduce + broadcast (2·log₂ n latency, ~2× the ring's byte volume on
//! the root's links), whole-buffer clone-per-child broadcast, an
//! `n−1`-round forwarding ring allgather, and an alltoall whose sends
//! each wait for completion before the next is posted. They clone
//! payloads freely — that is the point of the baseline — but their
//! blocking waits still go through the mode-aware
//! [`Runtime::wait_until`](crate::Runtime::wait_until) (via
//! `wait_sync`), so even the ablation parks instead of burning a core
//! under a dedicated progress engine.

use super::ops::ReduceOp;
use super::{
    coll_tag, next_seq, wait_sync, wait_sync_take, ROUND_A2A, ROUND_A2AV, ROUND_AG_BASE,
    ROUND_BCAST, ROUND_REDUCE,
};
use crate::comp::Comp;
use crate::error::{PostResult, Result};
use crate::runtime::Runtime;
use crate::types::Rank;

/// Sends `payload` (cloned) and waits for the send to complete before
/// returning — the per-send barrier the pipelined engines avoid.
fn send_wait(rt: &Runtime, peer: Rank, payload: &[u8], tag: crate::types::Tag) -> Result<()> {
    let comp = Comp::alloc_sync(1);
    loop {
        // Coalesced sends complete with the frame still buffered; the
        // blocking baseline needs on-wire completions too (the last rank
        // out of a collective stops progressing), so opt out.
        match rt
            .post_send_x(peer, payload.to_vec(), tag, comp.clone())
            .allow_coalescing(false)
            .call()?
        {
            PostResult::Done(_) => return Ok(()),
            PostResult::Posted => return wait_sync(rt, &comp),
            PostResult::Retry(_) => {
                rt.worker_progress_all()?;
                std::thread::yield_now();
            }
        }
    }
}

/// Posts a fresh-buffer receive and blocks for its delivery.
fn recv_wait(
    rt: &Runtime,
    peer: Rank,
    len: usize,
    tag: crate::types::Tag,
) -> Result<crate::types::CompDesc> {
    let comp = Comp::alloc_sync(1);
    match rt.post_recv(peer, vec![0u8; len.max(1)], tag, comp.clone())? {
        PostResult::Done(d) => Ok(d),
        PostResult::Posted => wait_sync_take(rt, &comp),
        PostResult::Retry(_) => unreachable!("recv never retries"),
    }
}

/// Allreduce as binomial reduce to rank 0 followed by a broadcast.
pub(super) fn allreduce<O: ReduceOp + ?Sized>(rt: &Runtime, buf: &mut [u8], op: &O) -> Result<()> {
    let n = rt.rank_n();
    let vr = rt.rank_me(); // root 0, so virtual rank == rank
    let seq = next_seq(rt);
    let tag = coll_tag(seq, ROUND_REDUCE);
    let mut m = 1usize;
    loop {
        if vr & m != 0 {
            send_wait(rt, vr - m, buf, tag)?;
            break;
        }
        if vr + m < n {
            let desc = recv_wait(rt, vr + m, buf.len(), tag)?;
            op.fold(buf, &desc.data.as_slice()[..buf.len()]);
        }
        m <<= 1;
        if m >= n {
            break;
        }
    }
    broadcast_bytes(rt, 0, buf)
}

/// Binomial-tree broadcast, whole buffer per edge, clone per child.
pub(super) fn broadcast_bytes(rt: &Runtime, root: Rank, buf: &mut [u8]) -> Result<()> {
    let n = rt.rank_n();
    let me = rt.rank_me();
    let vr = (me + n - root) % n;
    let seq = next_seq(rt);
    let tag = coll_tag(seq, ROUND_BCAST);
    if vr != 0 {
        let hb = 1usize << (usize::BITS - 1 - vr.leading_zeros());
        let parent = ((vr - hb) + root) % n;
        let desc = recv_wait(rt, parent, buf.len(), tag)?;
        buf.copy_from_slice(&desc.data.as_slice()[..buf.len()]);
    }
    let mut m = if vr == 0 { 1 } else { 1usize << (usize::BITS - vr.leading_zeros()) };
    while vr + m < n {
        let child = ((vr + m) + root) % n;
        send_wait(rt, child, buf, tag)?;
        m <<= 1;
    }
    Ok(())
}

/// Forwarding-ring allgather: `n − 1` rounds, each forwarding one
/// cloned block to the right neighbour.
pub(super) fn allgather_bytes(rt: &Runtime, mine: &[u8], out: &mut [u8]) -> Result<()> {
    let n = rt.rank_n();
    let me = rt.rank_me();
    let len = mine.len();
    out[me * len..(me + 1) * len].copy_from_slice(mine);
    let seq = next_seq(rt);
    let tag = coll_tag(seq, ROUND_AG_BASE);
    let right = (me + 1) % n;
    let left = (me + n - 1) % n;
    for r in 0..n - 1 {
        let src = (me + n - r) % n; // whose block we forward this round
        let payload = out[src * len..(src + 1) * len].to_vec();
        let recv_comp = Comp::alloc_sync(1);
        let posted = rt.post_recv(left, vec![0u8; len.max(1)], tag, recv_comp.clone())?;
        send_wait(rt, right, &payload, tag)?;
        let desc = match posted {
            PostResult::Done(d) => d,
            PostResult::Posted => wait_sync_take(rt, &recv_comp)?,
            PostResult::Retry(_) => unreachable!("recv never retries"),
        };
        let inc = (left + n - r) % n; // whose block just arrived
        out[inc * len..(inc + 1) * len].copy_from_slice(&desc.data.as_slice()[..len]);
    }
    Ok(())
}

/// Pairwise alltoall with serialized sends (each waits before the next
/// posts); receives are still pre-posted so rounds can't deadlock.
pub(super) fn alltoall_bytes(
    rt: &Runtime,
    send: &[u8],
    recv: &mut [u8],
    block: usize,
) -> Result<()> {
    let n = rt.rank_n();
    let me = rt.rank_me();
    let seq = next_seq(rt);
    let tag = coll_tag(seq, ROUND_A2A);
    let mut pending = Vec::new();
    for peer in (0..n).filter(|&p| p != me) {
        let comp = Comp::alloc_sync(1);
        match rt.post_recv(peer, vec![0u8; block.max(1)], tag, comp.clone())? {
            PostResult::Done(d) => {
                recv[peer * block..(peer + 1) * block].copy_from_slice(&d.data.as_slice()[..block]);
            }
            PostResult::Posted => pending.push((peer, comp)),
            PostResult::Retry(_) => unreachable!("recv never retries"),
        }
    }
    for r in 1..n {
        let peer = (me + r) % n;
        send_wait(rt, peer, &send[peer * block..(peer + 1) * block], tag)?;
    }
    for (peer, comp) in pending {
        let desc = wait_sync_take(rt, &comp)?;
        recv[peer * block..(peer + 1) * block].copy_from_slice(&desc.data.as_slice()[..block]);
    }
    Ok(())
}

/// Dense store-and-forward alltoallv: every pair exchanges a message
/// even when its block is empty (a zero-byte pair still pays a full
/// eager round-trip — the sparse-skipping contrast the pipelined engine
/// measures against), every block is cloned whole (no chunking, so one
/// giant block serializes the rendezvous pump), and sends wait one at a
/// time. Receives are still pre-posted so the rounds can't deadlock.
pub(super) fn alltoallv(
    rt: &Runtime,
    send: &[u8],
    send_counts: &[usize],
    recv: &mut [u8],
    recv_counts: &[usize],
) -> Result<()> {
    let n = rt.rank_n();
    let me = rt.rank_me();
    let seq = next_seq(rt);
    let tag = coll_tag(seq, ROUND_A2AV);
    let off = |counts: &[usize], p: usize| -> usize { counts[..p].iter().sum() };
    let mut pending = Vec::new();
    for peer in (0..n).filter(|&p| p != me) {
        let len = recv_counts[peer];
        let comp = Comp::alloc_sync(1);
        match rt.post_recv(peer, vec![0u8; len.max(1)], tag, comp.clone())? {
            PostResult::Done(d) => {
                let ro = off(recv_counts, peer);
                recv[ro..ro + len].copy_from_slice(&d.data.as_slice()[..len]);
            }
            PostResult::Posted => pending.push((peer, comp)),
            PostResult::Retry(_) => unreachable!("recv never retries"),
        }
    }
    for r in 1..n {
        let peer = (me + r) % n;
        let so = off(send_counts, peer);
        let block = &send[so..so + send_counts[peer]];
        // An empty pair still ships a 1-byte frame (into the peer's
        // `max(1)` box): the full-message-per-pair cost being ablated.
        send_wait(rt, peer, if block.is_empty() { &[0u8] } else { block }, tag)?;
    }
    for (peer, comp) in pending {
        let desc = wait_sync_take(rt, &comp)?;
        let ro = off(recv_counts, peer);
        recv[ro..ro + recv_counts[peer]]
            .copy_from_slice(&desc.data.as_slice()[..recv_counts[peer]]);
    }
    Ok(())
}
