//! Pipelined collective engines: chunked ring allreduce, chunk-streamed
//! binomial broadcast, Bruck allgather, bounded-inflight pairwise
//! alltoall.
//!
//! ## Ring allreduce (the tentpole)
//!
//! The buffer is cut into `n` near-equal blocks. Over `2(n−1)` rounds
//! each rank sends one block to its right neighbour and receives one
//! from its left: rounds `0..n−1` fold the arrival into the local block
//! (reduce-scatter — after them rank `b+1 mod n` owns the fully reduced
//! block `b`), rounds `n−1..2(n−1)` copy it (allgather). Per rank this
//! moves `2(n−1)/n · bytes` each way — bandwidth-optimal.
//!
//! Pipelining happens at chunk granularity *across* rounds: the arrival
//! of round `t`'s chunk `c` is exactly what enables sending round
//! `t+1`'s chunk `c` (it is the same byte range, now carrying one more
//! fold), so a chunk's next hop departs while later chunks of the same
//! round are still in flight. Sends never wait individually; they ride
//! a `coll_max_inflight` window with pool-recycled staging.
//!
//! Receives are posted two rounds ahead of the processing frontier.
//! That window is a *performance* lookahead (arrivals usually match a
//! posted landing box and skip the unexpected path), not a correctness
//! requirement: ring skew between neighbours is bounded by the
//! send-enablement chain, and anything arriving early is held by the
//! matching engine's unexpected queue (eager copies on match,
//! rendezvous RTS answered on match) and still lands in our posted box.
//!
//! Chunk identity rides `user_ctx = round << 32 | chunk` on each posted
//! receive, so completion-order interleavings (immediate `done` vs
//! queued, rendezvous FIN reordering) cannot misattribute an arrival.

use super::ops::ReduceOp;
use super::{
    coll_tag, drain_sends, next_seq, pop_recv, post_recv_cq, post_windowed, CollState, ROUND_A2A,
    ROUND_AG_BASE, ROUND_BCAST,
};
use crate::error::Result;
use crate::runtime::Runtime;

pub(super) fn allreduce<O: ReduceOp + ?Sized>(
    rt: &Runtime,
    st: &mut CollState,
    buf: &mut [u8],
    op: &O,
) -> Result<()> {
    let n = rt.rank_n();
    let me = rt.rank_me();
    let elem = op.elem_size();
    let nelems = buf.len() / elem;
    let dev = rt.device().clone();
    let seq = next_seq(rt);
    let right = (me + 1) % n;
    let left = (me + n - 1) % n;
    let rounds = 2 * (n - 1);
    // Chunk granularity: the configured size, aligned down to whole
    // elements so folds never split a lane.
    let chunk = (rt.config().coll_chunk_size / elem).max(1) * elem;

    // Block `b` covers elements `[b·q + min(b, r), +q + (b < r))` —
    // near-equal blocks that also handle `nelems < n` (empty blocks).
    let q = nelems / n;
    let r = nelems % n;
    let block = |b: usize| -> (usize, usize) {
        let start = b * q + b.min(r);
        let len = q + usize::from(b < r);
        (start * elem, len * elem)
    };
    // Round `t`: send block `(me − t) mod n`, receive `(me − t − 1)
    // mod n` (each rank's receive is its send of the next round).
    let send_block = |t: usize| (me + 2 * n - t) % n;
    let recv_block = |t: usize| (me + 2 * n - t - 1) % n;
    let chunks_of = |bytes: usize| bytes.div_ceil(chunk);
    let round_full =
        |st: &CollState, t: usize| st.arrived[t] as usize == chunks_of(block(recv_block(t)).1);

    let total: usize = (0..rounds).map(|t| chunks_of(block(recv_block(t)).1)).sum();
    st.arrived.clear();
    st.arrived.resize(rounds, 0);

    // Advance the receive window: rounds `[0, posted)` have landing
    // boxes posted; round `t + 2` opens when round `t` fully arrived
    // (zero-chunk rounds cascade straight through).
    let mut posted = 0usize;
    let advance = |rt: &Runtime, st: &mut CollState, posted: &mut usize| -> Result<()> {
        while *posted < rounds {
            if *posted >= 2 && !round_full(st, *posted - 2) {
                break;
            }
            let t = *posted;
            let (_, blen) = block(recv_block(t));
            for c in 0..chunks_of(blen) {
                let clen = chunk.min(blen - c * chunk);
                let ctx = ((t as u64) << 32) | c as u64;
                post_recv_cq(rt, &dev, st, left, clen, coll_tag(seq, t as u32), ctx)?;
            }
            *posted += 1;
        }
        Ok(())
    };
    advance(rt, st, &mut posted)?;

    // Seed the pipeline: round 0 sends the whole owned block, chunk by
    // chunk, under the in-flight window.
    {
        let (boff, blen) = block(send_block(0));
        for c in 0..chunks_of(blen) {
            let off = boff + c * chunk;
            let clen = chunk.min(boff + blen - off);
            post_windowed(rt, &dev, st, right, &buf[off..off + clen], coll_tag(seq, 0))?;
        }
    }

    let mut processed = 0usize;
    while processed < total {
        let desc = pop_recv(rt, st)?;
        let t = (desc.user_ctx >> 32) as usize;
        let c = (desc.user_ctx & 0xffff_ffff) as usize;
        let (boff, blen) = block(recv_block(t));
        let off = boff + c * chunk;
        let clen = chunk.min(boff + blen - off);
        {
            let incoming = &desc.data.as_slice()[..clen];
            if t < n - 1 {
                op.fold(&mut buf[off..off + clen], incoming);
            } else {
                buf[off..off + clen].copy_from_slice(incoming);
            }
        }
        st.put_databuf(desc.data);
        st.arrived[t] += 1;
        processed += 1;
        // This arrival is exactly what enables the same chunk's
        // next-round departure.
        if t + 1 < rounds {
            post_windowed(
                rt,
                &dev,
                st,
                right,
                &buf[off..off + clen],
                coll_tag(seq, (t + 1) as u32),
            )?;
        }
        if round_full(st, t) {
            dev.inner.stats.bump(|cell| &cell.coll_rounds);
            advance(rt, st, &mut posted)?;
        }
    }
    drain_sends(rt, st)
}

/// Chunk-streamed binomial broadcast: each parent→child edge carries
/// the buffer as a stream of `coll_chunk_size` chunks on one tag, and a
/// non-root forwards chunk `c` to all its children as soon as it
/// arrives — the subtree below starts filling before the parent has the
/// full buffer.
pub(super) fn broadcast(
    rt: &Runtime,
    st: &mut CollState,
    root: usize,
    buf: &mut [u8],
) -> Result<()> {
    let n = rt.rank_n();
    let me = rt.rank_me();
    let dev = rt.device().clone();
    let seq = next_seq(rt);
    let tag = coll_tag(seq, ROUND_BCAST);
    let chunk = rt.config().coll_chunk_size;
    let k = buf.len().div_ceil(chunk);
    let vr = (me + n - root) % n;

    // Binomial-tree children of virtual rank `vr`: `vr + m` for every
    // power of two `m > vr` with `vr + m < n` (at most `log₂ n` of
    // them, so a fixed array avoids allocation).
    let mut children = [0usize; usize::BITS as usize];
    let mut nch = 0;
    // Smallest power of two strictly greater than vr (1 for the root).
    let mut m =
        if vr == 0 { 1usize } else { (1usize << (usize::BITS - 1 - vr.leading_zeros())) << 1 };
    while vr + m < n {
        children[nch] = (vr + m + root) % n;
        nch += 1;
        m <<= 1;
    }

    if vr == 0 {
        for c in 0..k {
            let off = c * chunk;
            let clen = chunk.min(buf.len() - off);
            for &ch in &children[..nch] {
                post_windowed(rt, &dev, st, ch, &buf[off..off + clen], tag)?;
            }
        }
    } else {
        let hb = 1usize << (usize::BITS - 1 - vr.leading_zeros());
        let parent = ((vr - hb) + root) % n;
        // Pre-post every chunk's landing box; the stream is FIFO per
        // (rank, tag), so posted order pairs with sent order.
        for c in 0..k {
            let clen = chunk.min(buf.len() - c * chunk);
            post_recv_cq(rt, &dev, st, parent, clen, tag, c as u64)?;
        }
        let mut done = 0;
        while done < k {
            let desc = pop_recv(rt, st)?;
            let c = desc.user_ctx as usize;
            let off = c * chunk;
            let clen = chunk.min(buf.len() - off);
            buf[off..off + clen].copy_from_slice(&desc.data.as_slice()[..clen]);
            st.put_databuf(desc.data);
            for &ch in &children[..nch] {
                post_windowed(rt, &dev, st, ch, &buf[off..off + clen], tag)?;
            }
            done += 1;
        }
    }
    dev.inner.stats.bump(|cell| &cell.coll_rounds);
    drain_sends(rt, st)
}

/// Bruck allgather in `⌈log₂ n⌉` rounds: after round `k` every rank
/// holds `2^k` blocks (its own plus the next `2^k − 1` ranks'), kept
/// rotated so each round sends one contiguous prefix; a final in-place
/// rotation restores rank order. Sends ride the in-flight window (the
/// staging copy decouples them from the buffer being received into).
pub(super) fn allgather(
    rt: &Runtime,
    st: &mut CollState,
    mine: &[u8],
    out: &mut [u8],
) -> Result<()> {
    let n = rt.rank_n();
    let me = rt.rank_me();
    let len = mine.len();
    out[..len].copy_from_slice(mine);
    if len == 0 {
        return Ok(());
    }
    let dev = rt.device().clone();
    let seq = next_seq(rt);
    let mut have = 1usize;
    let mut round = 0u32;
    while have < n {
        let cnt = have.min(n - have);
        let to = (me + n - have) % n;
        let from = (me + have) % n;
        let tag = coll_tag(seq, ROUND_AG_BASE + round);
        post_recv_cq(rt, &dev, st, from, cnt * len, tag, round as u64)?;
        post_windowed(rt, &dev, st, to, &out[..cnt * len], tag)?;
        let desc = pop_recv(rt, st)?;
        out[have * len..(have + cnt) * len].copy_from_slice(&desc.data.as_slice()[..cnt * len]);
        st.put_databuf(desc.data);
        dev.inner.stats.bump(|cell| &cell.coll_rounds);
        have += cnt;
        round += 1;
    }
    drain_sends(rt, st)?;
    // Position `j` holds rank `(me + j) mod n`; rotate into rank order.
    out.rotate_right(me * len);
    Ok(())
}

/// Bounded-inflight pairwise alltoall: all `n − 1` receives are posted
/// up front (identified by sender rank), then all sends are posted in
/// `(me + r) mod n` order under the in-flight window with no per-send
/// wait — large blocks ride the chunked rendezvous pump concurrently.
pub(super) fn alltoall(
    rt: &Runtime,
    st: &mut CollState,
    send: &[u8],
    recv: &mut [u8],
    block: usize,
) -> Result<()> {
    let n = rt.rank_n();
    let me = rt.rank_me();
    let dev = rt.device().clone();
    let seq = next_seq(rt);
    let tag = coll_tag(seq, ROUND_A2A);
    for r in 1..n {
        let peer = (me + r) % n;
        post_recv_cq(rt, &dev, st, peer, block, tag, peer as u64)?;
    }
    for r in 1..n {
        let peer = (me + r) % n;
        post_windowed(rt, &dev, st, peer, &send[peer * block..(peer + 1) * block], tag)?;
    }
    let mut done = 0;
    while done < n - 1 {
        let desc = pop_recv(rt, st)?;
        let peer = desc.user_ctx as usize;
        recv[peer * block..(peer + 1) * block].copy_from_slice(&desc.data.as_slice()[..block]);
        st.put_databuf(desc.data);
        done += 1;
    }
    dev.inner.stats.bump(|cell| &cell.coll_rounds);
    drain_sends(rt, st)
}
