//! Byte-generic reduction operators for collectives.
//!
//! The ring allreduce works over raw byte buffers so one pipelined
//! engine serves every element type; a [`ReduceOp`] tells it the
//! element width and how to fold an incoming lane into the local
//! accumulator. Operators must be associative and commutative — the
//! chunk pipeline folds arrivals in whatever order the wire delivers
//! rounds, and the ring visits peers in rank order per chunk.

/// A byte-generic, element-wise reduction operator.
pub trait ReduceOp {
    /// Element width in bytes; buffers passed to collectives using this
    /// operator must be a multiple of this long.
    fn elem_size(&self) -> usize;

    /// Folds `incoming` into `acc` element-wise (`acc[i] = op(acc[i],
    /// incoming[i])`). Both slices have equal length, a multiple of
    /// [`elem_size`](Self::elem_size).
    fn fold(&self, acc: &mut [u8], incoming: &[u8]);
}

macro_rules! lane_op {
    ($name:ident, $ty:ty, $width:expr, $doc:expr, |$a:ident, $b:ident| $fold:expr) => {
        #[doc = $doc]
        #[derive(Clone, Copy, Debug, Default)]
        pub struct $name;

        impl ReduceOp for $name {
            fn elem_size(&self) -> usize {
                $width
            }

            fn fold(&self, acc: &mut [u8], incoming: &[u8]) {
                debug_assert_eq!(acc.len(), incoming.len());
                for (a, b) in acc.chunks_exact_mut($width).zip(incoming.chunks_exact($width)) {
                    let $a = <$ty>::from_le_bytes(a.try_into().unwrap());
                    let $b = <$ty>::from_le_bytes(b.try_into().unwrap());
                    a.copy_from_slice(&($fold).to_le_bytes());
                }
            }
        }
    };
}

lane_op!(SumU64, u64, 8, "Element-wise `u64` sum.", |a, b| a.wrapping_add(b));
lane_op!(MaxU64, u64, 8, "Element-wise `u64` max.", |a, b| a.max(b));
lane_op!(SumF32, f32, 4, "Element-wise `f32` sum.", |a, b| a + b);
lane_op!(MaxF32, f32, 4, "Element-wise `f32` max.", |a, b| a.max(b));

/// Adapts a `u64` closure (the legacy `allreduce_u64`/`reduce_u64`
/// operator shape) into a [`ReduceOp`] over little-endian 8-byte lanes.
#[derive(Clone, Copy, Debug)]
pub struct FnOpU64<F: Fn(u64, u64) -> u64>(pub F);

impl<F: Fn(u64, u64) -> u64> ReduceOp for FnOpU64<F> {
    fn elem_size(&self) -> usize {
        8
    }

    fn fold(&self, acc: &mut [u8], incoming: &[u8]) {
        debug_assert_eq!(acc.len(), incoming.len());
        for (a, b) in acc.chunks_exact_mut(8).zip(incoming.chunks_exact(8)) {
            let x = u64::from_le_bytes(a.try_into().unwrap());
            let y = u64::from_le_bytes(b.try_into().unwrap());
            a.copy_from_slice(&(self.0)(x, y).to_le_bytes());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sum_u64_folds_lanes() {
        let mut acc: Vec<u8> = [1u64, 2].iter().flat_map(|v| v.to_le_bytes()).collect();
        let inc: Vec<u8> = [10u64, 20].iter().flat_map(|v| v.to_le_bytes()).collect();
        SumU64.fold(&mut acc, &inc);
        let out: Vec<u64> =
            acc.chunks_exact(8).map(|c| u64::from_le_bytes(c.try_into().unwrap())).collect();
        assert_eq!(out, vec![11, 22]);
    }

    #[test]
    fn max_f32_folds_lanes() {
        let mut acc: Vec<u8> = [1.5f32, 9.0].iter().flat_map(|v| v.to_le_bytes()).collect();
        let inc: Vec<u8> = [2.5f32, 3.0].iter().flat_map(|v| v.to_le_bytes()).collect();
        MaxF32.fold(&mut acc, &inc);
        let out: Vec<f32> =
            acc.chunks_exact(4).map(|c| f32::from_le_bytes(c.try_into().unwrap())).collect();
        assert_eq!(out, vec![2.5, 9.0]);
    }

    #[test]
    fn fn_op_adapts_closures() {
        let op = FnOpU64(|a, b| a ^ b);
        assert_eq!(op.elem_size(), 8);
        let mut acc = 0b1100u64.to_le_bytes().to_vec();
        op.fold(&mut acc, &0b1010u64.to_le_bytes());
        assert_eq!(u64::from_le_bytes(acc.try_into().unwrap()), 0b0110);
    }
}
