//! Performance-grade collective communication (paper §6).
//!
//! The paper's position is that LCI's point-to-point primitives are the
//! building blocks for collectives; this module builds them for real:
//!
//! * **Chunk-pipelined ring allreduce** ([`allreduce`]): reduce-scatter
//!   and allgather phases moving the bandwidth-optimal `2(n−1)/n ·
//!   bytes` per rank, each block split into [`coll_chunk_size`] chunks whose
//!   sends overlap the folds of earlier chunks under a bounded
//!   [`coll_max_inflight`] window (see [`ring`]).
//! * **Bounded-inflight pairwise alltoall** ([`alltoall_bytes`]): all
//!   receives pre-posted, sends posted without per-send wait barriers,
//!   large blocks riding the chunked rendezvous pump.
//! * **Sparse size-adaptive alltoallv** ([`alltoallv`]): uneven blocks
//!   per pair, zero-byte pairs skipped, size-adaptive per-block
//!   protocol, largest-block-first scheduling (see [`v`];
//!   [`alltoallv_counts`] handles the recv-side-unknown MoE case).
//! * **Bruck allgather** ([`allgather_bytes`]) in `⌈log₂ n⌉` rounds and
//!   a **chunk-pipelined binomial broadcast** ([`broadcast_bytes`]),
//!   both clone-free over slices with pool-recycled staging.
//!
//! Every payload a collective stages rides the device's recycled buffer
//! pool ([`SendBuf::Pooled`]) and every landing buffer comes from a
//! per-runtime shelf ([`CollState`]), so a warm collective loop
//! allocates nothing (enforced by `tests/alloc_steady_state.rs`).
//! Blocking waits go through the mode-aware [`Runtime::wait_until`], so
//! collectives park on the completion doorbell under
//! `Dedicated`/`Hybrid` progress instead of burning a core.
//!
//! The naive implementations (clone-per-round, serialized sends,
//! allreduce as reduce+broadcast at twice the optimal byte volume) are
//! kept behind the [`coll_naive`] runtime knob as the measured ablation
//! baseline; `benches/collectives.rs` sweeps both.
//!
//! Non-blocking `i*` variants composed on the completion graph live in
//! [`nb`] (re-exported here): [`ibarrier`], [`ibroadcast`],
//! [`ireduce_u64`], [`iallgather`], [`ialltoall`], [`ialltoallv`],
//! [`iallreduce_u64`].
//!
//! ## Tags and ordering
//!
//! Tags with the highest bit set are reserved for collectives. The tag
//! packs a 22-bit per-runtime sequence number and a 9-bit round index
//! (`1 + 22 + 9 = 32`): collectives must be invoked in the same order
//! on every rank (the usual MPI-style contract), the sequence keeps
//! consecutive collectives apart, and the round keeps a collective's
//! internal stages apart. The sequence wraps at ~4.2 M collectives,
//! which is safe because at most one collective per runtime is live at
//! a time (the state lock serializes them) — a wrapped tag can only
//! collide with a collective that fully completed long ago. Chunks of
//! one round share the round's tag and are told apart by the posting
//! order (`user_ctx` carries the chunk index): per-`(rank, tag)`
//! matching is FIFO and all three transports deliver in order per peer
//! pair, so the k-th posted receive gets the k-th sent chunk.

mod naive;
pub mod nb;
pub mod ops;
mod ring;
mod v;

pub use nb::{
    iallgather, iallreduce_u64, ialltoall, ialltoallv, ibarrier, ibroadcast, ireduce_u64, IColl,
};
pub use ops::{FnOpU64, MaxF32, MaxU64, ReduceOp, SumF32, SumU64};

use crate::comp::Comp;
use crate::device::Device;
use crate::error::{FatalError, PostResult, Result};
use crate::runtime::Runtime;
use crate::types::{CompDesc, DataBuf, Rank, SendBuf, Tag};
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

/// Reserved tag-space marker (collectives own the high bit).
pub(crate) const COLL_TAG: Tag = 0x8000_0000;
/// Sequence-number width (bits 9..31 of the tag).
const SEQ_BITS: u32 = 22;
/// Round-index width (bits 0..9 of the tag).
const ROUND_BITS: u32 = 9;
/// Largest rank count the pipelined ring allreduce supports: its
/// `2(n−1)` rounds must fit the tag's round field. Bigger worlds fall
/// back to the naive (binomial) path, whose round codes are O(log n).
pub(crate) const MAX_RING_RANKS: usize = 256;

/// Round codes for single-stage collectives (must fit [`ROUND_BITS`];
/// distinct sequences already separate collectives, so these only
/// separate stages *within* one collective call).
pub(crate) const ROUND_BCAST: u32 = 0x1BC & 0x1FF;
pub(crate) const ROUND_REDUCE: u32 = 0x14D & 0x1FF;
pub(crate) const ROUND_A2A: u32 = 0x1AA & 0x1FF;
pub(crate) const ROUND_A2AV: u32 = 0x1A5 & 0x1FF;
pub(crate) const ROUND_A2AV_CNT: u32 = 0x1A6 & 0x1FF;
pub(crate) const ROUND_AG_BASE: u32 = 0x1C0;

pub(crate) fn coll_tag(seq: u32, round: u32) -> Tag {
    debug_assert!(round < (1 << ROUND_BITS), "collective round {round} overflows the tag field");
    COLL_TAG | ((seq & ((1 << SEQ_BITS) - 1)) << ROUND_BITS) | (round & ((1 << ROUND_BITS) - 1))
}

/// Collective sequence number for `rt` (ranks advance in lockstep; the
/// 22-bit wrap is benign, see the module docs).
pub(crate) fn next_seq(rt: &Runtime) -> u32 {
    rt.coll_seq().fetch_add(1, Ordering::Relaxed)
}

/// Internal hook: collective sequence counter accessor on Runtime.
impl Runtime {
    pub(crate) fn coll_seq(&self) -> &AtomicU32 {
        &self.inner.coll_seq
    }
}

/// How many recycled landing boxes the state keeps across collectives.
const SHELF_CAP: usize = 128;

/// Cached collective-engine state, lazily created per runtime and
/// reused across collectives so the warm path allocates nothing:
/// a reusable completion queue for receives (FAA-array backed,
/// alloc-free push/pop), a shared send-completion handler with an
/// in-flight counter (the pipelining window), and a shelf of
/// chunk-capacity landing boxes recycled between rounds.
pub struct CollState {
    /// Receive-completion queue shared by every posted receive.
    recv_cq: Comp,
    /// Chunk sends outstanding (incremented at post, decremented on
    /// completion or immediate `done`).
    inflight: Arc<AtomicU64>,
    /// Handler comp decrementing [`inflight`](Self::inflight).
    send_comp: Comp,
    /// Recycled landing boxes, all of [`chunk_cap`](Self::chunk_cap)
    /// capacity.
    shelf: Vec<Box<[u8]>>,
    /// Landing-box capacity (`coll_chunk_size` at creation).
    chunk_cap: usize,
    /// Per-round arrival counters, reused across collectives.
    arrived: Vec<u32>,
    /// `alltoallv` send-schedule scratch (peer indices, sorted
    /// largest-block-first), reused so the warm path allocates nothing.
    v_order: Vec<usize>,
    /// `alltoallv` block-offset scratch (send prefix sums), reused.
    v_send_offs: Vec<usize>,
    /// `alltoallv` block-offset scratch (recv prefix sums), reused.
    v_recv_offs: Vec<usize>,
    /// Count-exchange staging (send side), reused across exchanges.
    cnt_send: Vec<u8>,
    /// Count-exchange staging (recv side), reused across exchanges.
    cnt_recv: Vec<u8>,
}

impl CollState {
    fn new(rt: &Runtime) -> CollState {
        let inflight = Arc::new(AtomicU64::new(0));
        let dec = inflight.clone();
        CollState {
            recv_cq: Comp::alloc_cq(),
            inflight,
            send_comp: Comp::alloc_handler(move |_| {
                dec.fetch_sub(1, Ordering::AcqRel);
            }),
            shelf: Vec::new(),
            chunk_cap: rt.config().coll_chunk_size,
            arrived: Vec::new(),
            v_order: Vec::new(),
            v_send_offs: Vec::new(),
            v_recv_offs: Vec::new(),
            cnt_send: Vec::new(),
            cnt_recv: Vec::new(),
        }
    }

    /// A landing box of at least `len` bytes: shelf-recycled when the
    /// chunk capacity suffices, freshly allocated otherwise (oversize
    /// alltoall/allgather blocks).
    fn take_box(&mut self, len: usize) -> Box<[u8]> {
        if len <= self.chunk_cap {
            if let Some(b) = self.shelf.pop() {
                return b;
            }
            vec![0u8; self.chunk_cap].into_boxed_slice()
        } else {
            vec![0u8; len].into_boxed_slice()
        }
    }

    /// Recycles a delivered landing box back onto the shelf. Only
    /// chunk-capacity boxes are kept (posted receives always get their
    /// box back as `Owned`/`Partial`: the user-posted-buffer path
    /// copies into it, and rendezvous lands directly in it).
    fn put_databuf(&mut self, data: DataBuf) {
        let b = match data {
            DataBuf::Partial(b, _) | DataBuf::Owned(b) => b,
            _ => return,
        };
        if b.len() == self.chunk_cap && self.shelf.len() < SHELF_CAP {
            self.shelf.push(b);
        }
    }
}

/// Runs `f` with the runtime's (lazily created) collective state.
/// Collectives on one runtime serialize on this lock.
fn with_state<R>(rt: &Runtime, f: impl FnOnce(&mut CollState) -> Result<R>) -> Result<R> {
    let mut guard = rt.inner.coll.lock();
    let state = guard.get_or_insert_with(|| CollState::new(rt));
    f(state)
}

// ---------------------------------------------------------------------
// Shared posting helpers (pipelined engines and barrier)
// ---------------------------------------------------------------------

/// Posts one collective payload to `peer` under the in-flight window:
/// waits (mode-aware) for a window slot, stages the payload through the
/// device's recycled buffer pool, and retries transient backpressure.
/// Never waits for the send itself — completion decrements the window
/// through the state's handler comp.
fn post_windowed(
    rt: &Runtime,
    dev: &Device,
    st: &CollState,
    peer: Rank,
    payload: &[u8],
    tag: Tag,
) -> Result<()> {
    let window = rt.config().coll_max_inflight as u64;
    let inflight = &st.inflight;
    rt.wait_until(|| inflight.load(Ordering::Acquire) < window)?;
    loop {
        // Size-adaptive staging: payloads that fit the inline send
        // variant skip the pool entirely (no staging copy bookkeeping);
        // everything else stages through the recycled buffer pool and
        // the runtime's protocol thresholds pick eager vs rendezvous.
        let staged: SendBuf = if payload.len() <= crate::types::SENDBUF_INLINE_CAP {
            payload.into()
        } else {
            dev.buf_pool().stage_copy(payload).into()
        };
        st.inflight.fetch_add(1, Ordering::AcqRel);
        // Collectives batch at chunk granularity themselves, and the
        // drain contract ("window empty" = "bytes on the wire") requires
        // real completions — coalesced sends complete at append time
        // with the frame still buffered, which would let the last rank
        // exit before its final frame ships. Opt out.
        let res = rt
            .post_send_x(peer, staged, tag, st.send_comp.clone())
            .device(dev)
            .allow_coalescing(false)
            .call()?;
        match res {
            PostResult::Posted => break,
            PostResult::Done(_) => {
                // Completed at post time: `done` results never signal
                // the handler, so back the window slot out here.
                settle_done(st, &res);
                break;
            }
            PostResult::Retry(_) => {
                // The staged copy was consumed; back out the window
                // slot, make progress, and restage.
                st.inflight.fetch_sub(1, Ordering::AcqRel);
                rt.worker_progress_all()?;
                std::thread::yield_now();
            }
        }
    }
    let now = st.inflight.load(Ordering::Acquire);
    dev.inner.stats.raise(|c| &c.coll_chunks_inflight_hwm, now);
    dev.inner.stats.add(|c| &c.coll_bytes, payload.len() as u64);
    Ok(())
}

/// Backs out one window slot for a send that completed at post time
/// (`done` results never signal the completion handler).
fn settle_done(st: &CollState, res: &PostResult) {
    if matches!(res, PostResult::Done(_)) {
        st.inflight.fetch_sub(1, Ordering::AcqRel);
    }
}

/// Waits (mode-aware) until every windowed send has completed.
fn drain_sends(rt: &Runtime, st: &CollState) -> Result<()> {
    let inflight = &st.inflight;
    rt.wait_until(|| inflight.load(Ordering::Acquire) == 0)
}

/// Pops the next receive completion, blocking mode-aware.
fn pop_recv(rt: &Runtime, st: &CollState) -> Result<CompDesc> {
    let mut got = None;
    let cq = &st.recv_cq;
    rt.wait_until(|| {
        got = cq.pop();
        got.is_some()
    })?;
    Ok(got.expect("recv completion"))
}

/// Posts a receive whose completion lands in the state's receive queue;
/// immediate (`done`) matches are forwarded into the queue so the
/// processing loop sees one uniform stream. `ctx` identifies the
/// arrival (round/chunk/peer, collective-specific).
fn post_recv_cq(
    rt: &Runtime,
    dev: &Device,
    st: &mut CollState,
    from: Rank,
    len: usize,
    tag: Tag,
    ctx: u64,
) -> Result<()> {
    let bx = st.take_box(len);
    let res = rt.post_recv_x(from, bx, tag, st.recv_cq.clone()).user_ctx(ctx).device(dev).call()?;
    match res {
        PostResult::Done(d) => st.recv_cq.signal(d),
        PostResult::Posted => {}
        PostResult::Retry(_) => unreachable!("recv never retries"),
    }
    Ok(())
}

/// Mode-aware wait for a synchronizer comp; resets it for reuse and
/// returns the delivered descriptors' count worth of state via `take`.
pub(crate) fn wait_sync(rt: &Runtime, comp: &Comp) -> Result<()> {
    let sync = comp.as_sync().expect("synchronizer comp");
    rt.wait_until(|| sync.test())?;
    sync.reset();
    Ok(())
}

/// Mode-aware wait for a synchronizer comp, taking its descriptor.
pub(crate) fn wait_sync_take(rt: &Runtime, comp: &Comp) -> Result<CompDesc> {
    let sync = comp.as_sync().expect("synchronizer comp");
    rt.wait_until(|| sync.test())?;
    Ok(sync.take().pop().expect("sync descriptor"))
}

// ---------------------------------------------------------------------
// Public collectives
// ---------------------------------------------------------------------

/// Dissemination barrier across all ranks.
///
/// Round `r`: rank `i` signals `(i + 2^r) mod n` and waits for a signal
/// from `(i - 2^r) mod n`; after `⌈log₂ n⌉` rounds every rank has
/// transitively heard from every other. Waits are mode-aware (parks
/// under a dedicated progress engine).
pub fn barrier(rt: &Runtime) -> Result<()> {
    let n = rt.rank_n();
    if n == 1 {
        return Ok(());
    }
    let me = rt.rank_me();
    with_state(rt, |st| {
        let dev = rt.device().clone();
        let seq = next_seq(rt);
        let mut round: u32 = 0;
        let mut dist = 1usize;
        while dist < n {
            let to = (me + dist) % n;
            let from = (me + n - dist) % n;
            let tag = coll_tag(seq, round);
            let recv_comp = Comp::alloc_sync(1);
            // Post the receive first so an eager peer matches instantly.
            let posted = rt.post_recv(from, st.take_box(1), tag, recv_comp.clone())?;
            // Inject-sized send: anything but retry is `done` (no
            // signal) or parked in the backlog.
            st.inflight.fetch_add(1, Ordering::AcqRel);
            loop {
                let res = rt
                    .post_send_x(to, &[round as u8][..], tag, st.send_comp.clone())
                    .device(&dev)
                    .allow_coalescing(false)
                    .call()?;
                match res {
                    PostResult::Retry(_) => {
                        rt.worker_progress_all()?;
                        std::thread::yield_now();
                    }
                    _ => {
                        settle_done(st, &res);
                        break;
                    }
                }
            }
            match posted {
                PostResult::Done(d) => st.put_databuf(d.data),
                PostResult::Posted => {
                    let d = wait_sync_take(rt, &recv_comp)?;
                    st.put_databuf(d.data);
                }
                PostResult::Retry(_) => unreachable!("recv never retries"),
            }
            dev.inner.stats.bump(|c| &c.coll_rounds);
            dist <<= 1;
            round += 1;
        }
        drain_sends(rt, st)
    })
}

/// In-place allreduce over raw bytes with a byte-generic [`ReduceOp`]:
/// every rank passes an identical-length buffer; on return every rank
/// holds the element-wise reduction. The primary collective — the
/// chunk-pipelined bandwidth-optimal ring unless [`coll_naive`] is set
/// (or the world exceeds [`MAX_RING_RANKS`]), in which case the
/// reduce+broadcast baseline runs.
///
/// [`coll_naive`]: crate::RuntimeConfig::coll_naive
pub fn allreduce<O: ReduceOp + ?Sized>(rt: &Runtime, buf: &mut [u8], op: &O) -> Result<()> {
    let elem = op.elem_size();
    if elem == 0 || !buf.len().is_multiple_of(elem) {
        return Err(FatalError::InvalidArg(format!(
            "allreduce buffer length {} is not a multiple of the element size {elem}",
            buf.len()
        )));
    }
    if rt.rank_n() == 1 {
        return Ok(());
    }
    if rt.config().coll_naive || rt.rank_n() > MAX_RING_RANKS {
        return naive::allreduce(rt, buf, op);
    }
    with_state(rt, |st| ring::allreduce(rt, st, buf, op))
}

/// Allreduce of `u64` lanes with a closure operator (legacy-shaped
/// convenience over [`allreduce`]; allocates its result vector).
pub fn allreduce_u64(
    rt: &Runtime,
    contrib: &[u64],
    op: impl Fn(u64, u64) -> u64 + Copy,
) -> Result<Vec<u64>> {
    let mut bytes: Vec<u8> = contrib.iter().flat_map(|v| v.to_le_bytes()).collect();
    allreduce(rt, &mut bytes, &FnOpU64(op))?;
    Ok(bytes.chunks_exact(8).map(|c| u64::from_le_bytes(c.try_into().unwrap())).collect())
}

/// Binomial-tree broadcast of `buf` from `root` over a mutable slice;
/// chunk-pipelined (children forward chunk `c` as soon as it arrives)
/// unless [`coll_naive`](crate::RuntimeConfig::coll_naive) selects the
/// whole-buffer clone-per-child baseline. Every rank passes a buffer of
/// identical length; non-root buffers are overwritten.
pub fn broadcast_bytes(rt: &Runtime, root: Rank, buf: &mut [u8]) -> Result<()> {
    if rt.rank_n() == 1 || buf.is_empty() {
        return Ok(());
    }
    if rt.config().coll_naive {
        return naive::broadcast_bytes(rt, root, buf);
    }
    with_state(rt, |st| ring::broadcast(rt, st, root, buf))
}

/// Legacy-shaped broadcast over a `Vec` (see [`broadcast_bytes`]).
pub fn broadcast(rt: &Runtime, root: Rank, buf: &mut Vec<u8>) -> Result<()> {
    broadcast_bytes(rt, root, buf.as_mut_slice())
}

/// Binomial-tree reduction of `u64` vectors to `root` with `op`.
/// Returns `Some(result)` on the root, `None` elsewhere.
pub fn reduce_u64(
    rt: &Runtime,
    root: Rank,
    contrib: &[u64],
    op: impl Fn(u64, u64) -> u64 + Copy,
) -> Result<Option<Vec<u64>>> {
    let mut acc: Vec<u8> = contrib.iter().flat_map(|v| v.to_le_bytes()).collect();
    let mine = reduce_bytes(rt, root, &mut acc, &FnOpU64(op))?;
    Ok(mine
        .then(|| acc.chunks_exact(8).map(|c| u64::from_le_bytes(c.try_into().unwrap())).collect()))
}

/// Binomial-tree byte reduction to `root`, in place: on return the
/// root's `acc` holds the reduction (returns `true` there), other
/// ranks' buffers are unspecified partials (returns `false`).
pub fn reduce_bytes<O: ReduceOp + ?Sized>(
    rt: &Runtime,
    root: Rank,
    acc: &mut [u8],
    op: &O,
) -> Result<bool> {
    let n = rt.rank_n();
    let me = rt.rank_me();
    if n == 1 {
        return Ok(true);
    }
    let vr = (me + n - root) % n;
    with_state(rt, |st| {
        let dev = rt.device().clone();
        let seq = next_seq(rt);
        let tag = coll_tag(seq, ROUND_REDUCE);
        let mut m = 1usize;
        loop {
            if vr & m != 0 {
                // Send the partial to the parent and exit.
                let parent = ((vr - m) + root) % n;
                post_windowed(rt, &dev, st, parent, acc, tag)?;
                dev.inner.stats.bump(|c| &c.coll_rounds);
                drain_sends(rt, st)?;
                return Ok(false);
            }
            if vr + m < n {
                // Receive a child's partial and fold it in.
                let child = ((vr + m) + root) % n;
                post_recv_cq(rt, &dev, st, child, acc.len(), tag, 0)?;
                let desc = pop_recv(rt, st)?;
                op.fold(acc, desc.data.as_slice());
                st.put_databuf(desc.data);
                dev.inner.stats.bump(|c| &c.coll_rounds);
            }
            m <<= 1;
            if m >= n {
                break;
            }
        }
        drain_sends(rt, st)?;
        Ok(true)
    })
}

/// Allgather over flat buffers: every rank contributes `mine`
/// (identical length everywhere); `out` (`n × mine.len()` bytes)
/// receives all contributions in rank order. Bruck's algorithm in
/// `⌈log₂ n⌉` rounds unless
/// [`coll_naive`](crate::RuntimeConfig::coll_naive) selects the
/// `n−1`-round forwarding-ring baseline.
pub fn allgather_bytes(rt: &Runtime, mine: &[u8], out: &mut [u8]) -> Result<()> {
    let n = rt.rank_n();
    if out.len() != n * mine.len() {
        return Err(FatalError::InvalidArg(format!(
            "allgather output must be n*len = {} bytes, got {}",
            n * mine.len(),
            out.len()
        )));
    }
    if n == 1 {
        out.copy_from_slice(mine);
        return Ok(());
    }
    if rt.config().coll_naive {
        return naive::allgather_bytes(rt, mine, out);
    }
    with_state(rt, |st| ring::allgather(rt, st, mine, out))
}

/// Legacy-shaped allgather returning one `Vec` per rank (see
/// [`allgather_bytes`]; all contributions must have equal length).
pub fn allgather(rt: &Runtime, mine: &[u8]) -> Result<Vec<Vec<u8>>> {
    let n = rt.rank_n();
    let len = mine.len();
    let mut flat = vec![0u8; n * len];
    allgather_bytes(rt, mine, &mut flat)?;
    Ok((0..n).map(|r| flat[r * len..(r + 1) * len].to_vec()).collect())
}

/// All-to-all personalized exchange over flat buffers: `send` holds `n`
/// equal blocks (`block = send.len() / n`), block `i` goes to rank `i`;
/// `recv` (same length) receives rank `j`'s block for us at offset
/// `j * block`. All receives are pre-posted, sends ride the bounded
/// in-flight window with no per-send wait (the rendezvous pump chunks
/// large blocks internally) unless
/// [`coll_naive`](crate::RuntimeConfig::coll_naive) selects the
/// serialized baseline.
pub fn alltoall_bytes(rt: &Runtime, send: &[u8], recv: &mut [u8]) -> Result<()> {
    let n = rt.rank_n();
    if !send.len().is_multiple_of(n) || recv.len() != send.len() {
        return Err(FatalError::InvalidArg(format!(
            "alltoall buffers must be n equal blocks each way ({} ranks, {} send, {} recv)",
            n,
            send.len(),
            recv.len()
        )));
    }
    let block = send.len() / n;
    let me = rt.rank_me();
    recv[me * block..(me + 1) * block].copy_from_slice(&send[me * block..(me + 1) * block]);
    if n == 1 {
        return Ok(());
    }
    if rt.config().coll_naive {
        return naive::alltoall_bytes(rt, send, recv, block);
    }
    with_state(rt, |st| ring::alltoall(rt, st, send, recv, block))
}

/// Uneven-block all-to-all personalized exchange (`MPI_Alltoallv`
/// shape): `send` is the concatenation of `n` blocks where block `i`
/// (`send_counts[i]` bytes) goes to rank `i`, and `recv` receives rank
/// `j`'s block for us (`recv_counts[j]` bytes) at the `j`-th recv
/// offset. Counts may differ per pair and per direction; the count
/// vectors must agree pairwise across ranks (rank `a`'s
/// `send_counts[b]` == rank `b`'s `recv_counts[a]` — use
/// [`alltoallv_counts`] when the receive side is unknown, the MoE
/// dispatch case).
///
/// Performance engineering (see [`v`] and DESIGN.md §4.13):
/// **zero-byte pairs post nothing** (`coll_skipped_pairs` counts them —
/// MoE routing matrices are mostly sparse), each block rides a
/// **size-adaptive protocol** (inline / pooled eager / chunked
/// rendezvous per `coll_chunk_size` piece, so one giant hot-expert
/// block pipelines through the rendezvous chunk pumps while small
/// blocks stay eager), and sends are issued **largest-block-first with
/// rank-rotated tie-breaking** under the bounded `coll_max_inflight`
/// window, so the straggler block departs first and equal-size blocks
/// do not hotspot one receiver. `coll_chunk_size` must match across
/// ranks (it fixes the chunk split both sides compute), like the
/// invocation-order contract itself.
///
/// [`coll_naive`](crate::RuntimeConfig::coll_naive) selects the
/// store-and-forward ablation instead: dense (a full message per empty
/// pair), whole-block clones, one send in flight.
pub fn alltoallv(
    rt: &Runtime,
    send: &[u8],
    send_counts: &[usize],
    recv: &mut [u8],
    recv_counts: &[usize],
) -> Result<()> {
    let n = rt.rank_n();
    let me = rt.rank_me();
    if send_counts.len() != n || recv_counts.len() != n {
        return Err(FatalError::InvalidArg(format!(
            "alltoallv needs one count per rank each way ({n} ranks, {} send counts, {} recv counts)",
            send_counts.len(),
            recv_counts.len()
        )));
    }
    let send_total: usize = send_counts.iter().sum();
    let recv_total: usize = recv_counts.iter().sum();
    if send.len() != send_total || recv.len() != recv_total {
        return Err(FatalError::InvalidArg(format!(
            "alltoallv buffers must match their count sums (send {} vs {send_total}, recv {} vs {recv_total})",
            send.len(),
            recv.len()
        )));
    }
    if send_counts[me] != recv_counts[me] {
        return Err(FatalError::InvalidArg(format!(
            "alltoallv self block disagrees ({} send vs {} recv bytes)",
            send_counts[me], recv_counts[me]
        )));
    }
    // The self block never touches the wire.
    let soff: usize = send_counts[..me].iter().sum();
    let roff: usize = recv_counts[..me].iter().sum();
    recv[roff..roff + recv_counts[me]].copy_from_slice(&send[soff..soff + send_counts[me]]);
    if n == 1 {
        return Ok(());
    }
    if rt.config().coll_naive {
        return naive::alltoallv(rt, send, send_counts, recv, recv_counts);
    }
    with_state(rt, |st| v::alltoallv(rt, st, send, send_counts, recv, recv_counts))
}

/// One-round count exchange for the receive-side-unknown `alltoallv`
/// case (MoE dispatch: every rank knows how many bytes it routes *to*
/// each peer, none knows what it will get): a dense 8-byte alltoall of
/// the send-count vector. On return `recv_counts[j]` is rank `j`'s
/// `send_counts[me]` — exactly the vector to pass as `recv_counts` to
/// [`alltoallv`]. Allocation-free once the collective state is warm
/// (the staging rides reusable [`CollState`] scratch).
pub fn exchange_counts(
    rt: &Runtime,
    send_counts: &[usize],
    recv_counts: &mut [usize],
) -> Result<()> {
    let n = rt.rank_n();
    let me = rt.rank_me();
    if send_counts.len() != n || recv_counts.len() != n {
        return Err(FatalError::InvalidArg(format!(
            "count exchange needs one count per rank each way ({n} ranks, {} send, {} recv)",
            send_counts.len(),
            recv_counts.len()
        )));
    }
    if n == 1 {
        recv_counts[0] = send_counts[0];
        return Ok(());
    }
    if rt.config().coll_naive {
        let bytes: Vec<u8> = send_counts.iter().flat_map(|&c| (c as u64).to_le_bytes()).collect();
        let mut out = vec![0u8; n * 8];
        out[me * 8..(me + 1) * 8].copy_from_slice(&bytes[me * 8..(me + 1) * 8]);
        naive::alltoall_bytes(rt, &bytes, &mut out, 8)?;
        for (dst, c) in recv_counts.iter_mut().zip(out.chunks_exact(8)) {
            *dst = u64::from_le_bytes(c.try_into().unwrap()) as usize;
        }
        return Ok(());
    }
    with_state(rt, |st| {
        // Take the scratch out of the state so the pairwise engine can
        // borrow it alongside `st`; put it back for the next exchange.
        let mut sb = std::mem::take(&mut st.cnt_send);
        let mut rb = std::mem::take(&mut st.cnt_recv);
        sb.clear();
        for &c in send_counts {
            sb.extend_from_slice(&(c as u64).to_le_bytes());
        }
        rb.clear();
        rb.resize(n * 8, 0);
        rb[me * 8..(me + 1) * 8].copy_from_slice(&sb[me * 8..(me + 1) * 8]);
        let res = ring::alltoall(rt, st, &sb, &mut rb, 8);
        if res.is_ok() {
            for (dst, c) in recv_counts.iter_mut().zip(rb.chunks_exact(8)) {
                *dst = u64::from_le_bytes(c.try_into().unwrap()) as usize;
            }
        }
        st.cnt_send = sb;
        st.cnt_recv = rb;
        res
    })
}

/// Allocating convenience over [`exchange_counts`]: returns the learned
/// receive-count vector.
pub fn alltoallv_counts(rt: &Runtime, send_counts: &[usize]) -> Result<Vec<usize>> {
    let mut recv_counts = vec![0usize; rt.rank_n()];
    exchange_counts(rt, send_counts, &mut recv_counts)?;
    Ok(recv_counts)
}

/// Legacy-shaped alltoall over per-rank `Vec` blocks (see
/// [`alltoall_bytes`]; all blocks must have equal length across ranks).
pub fn alltoall(rt: &Runtime, send: &[Vec<u8>]) -> Result<Vec<Vec<u8>>> {
    let n = rt.rank_n();
    assert_eq!(send.len(), n, "alltoall needs one block per rank");
    let block = send.first().map_or(0, |b| b.len());
    assert!(send.iter().all(|b| b.len() == block), "alltoall blocks must have equal length");
    let mut flat = Vec::with_capacity(n * block);
    for b in send {
        flat.extend_from_slice(b);
    }
    let mut out = vec![0u8; n * block];
    alltoall_bytes(rt, &flat, &mut out)?;
    Ok((0..n).map(|r| out[r * block..(r + 1) * block].to_vec()).collect())
}
