//! The matching engine (paper §4.1.3): matches incoming sends with
//! user-posted receives on the target side.
//!
//! Two methods matter: `make_key` builds a matching key from the source
//! rank, the tag, and the matching policy; `insert` inserts a key/value
//! of a type (send or receive) and either stores it (returning `None`) or
//! returns a matched value of the complementary type.
//!
//! The default implementation is a hashtable where each bucket is a list
//! of queues, protected by a per-bucket spinlock. With the bucket count
//! (default 65536 in the paper; configurable here, default 4096 to fit
//! many simulated ranks in one process) far above the thread count,
//! contention is rare. The paper's small-structure optimization is kept:
//! buckets hold up to three queues inline and queues hold up to two
//! entries inline before spilling to heap structures, so a low-load-factor
//! insertion touches a single cache line chain.
//!
//! LCI adopts out-of-order delivery and *restricted* wildcard matching
//! (§3.3.2): wildcards are expressed by the [`MatchingPolicy`] both sides
//! agree on, which selects how the key is formed, keeping the hashtable
//! approach valid (no linear scans, unlike MPI's `ANY_SOURCE`/`ANY_TAG`).

use crate::types::{MatchingPolicy, Rank, Tag};
use lci_fabric::sync::SpinLock;
use lci_fabric::topology::StripedU64;
use std::collections::VecDeque;
use std::sync::Arc;

/// Whether an entry is a send (unexpected message) or a receive (posted
/// receive descriptor).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MatchKind {
    /// An arrived send waiting for its receive.
    Send,
    /// A posted receive waiting for its send.
    Recv,
}

impl MatchKind {
    /// The complementary kind.
    pub fn opposite(self) -> Self {
        match self {
            MatchKind::Send => MatchKind::Recv,
            MatchKind::Recv => MatchKind::Send,
        }
    }
}

/// User-supplied key derivation (§3.3.2 "supplying their own make_key").
pub type MakeKeyFn = dyn Fn(Rank, Tag) -> u64 + Send + Sync;

/// Builds the default matching key for `(rank, tag)` under `policy`.
///
/// Policy bits are folded into the key so different policies occupy
/// disjoint key spaces (a rank-only send can never accidentally collide
/// with a rank+tag send).
pub fn make_key(rank: Rank, tag: Tag, policy: MatchingPolicy) -> u64 {
    let p = (policy.encode() as u64) << 62;
    match policy {
        MatchingPolicy::RankTag => p | ((rank as u64 & 0x3FFF_FFFF) << 32) | tag as u64,
        MatchingPolicy::RankOnly => p | ((rank as u64 & 0x3FFF_FFFF) << 32),
        MatchingPolicy::TagOnly => p | tag as u64,
        MatchingPolicy::None => p,
    }
}

/// Recycled overflow deques the engine keeps (see
/// [`MatchingEngine`]'s `spares`): collectives burst many same-key
/// entries on fresh tags, so the spilled `VecDeque` would otherwise be
/// allocated and dropped once per burst.
const SPARES_CAP: usize = 32;
/// Largest capacity (entries) a deque may have and still be recycled —
/// bounds the freelist's worst-case footprint.
const SPARE_MAX_ELEMS: usize = 512;

/// The engine-wide freelist of emptied overflow deques.
type Spares<T> = SpinLock<Vec<Box<VecDeque<T>>>>;

/// A same-key FIFO of entries, two inline slots before heap spill.
struct EntryQueue<T> {
    key: u64,
    kind: MatchKind,
    a: Option<T>,
    b: Option<T>,
    // Boxed so the empty-overflow queue costs one pointer inline.
    #[allow(clippy::box_collection)]
    overflow: Option<Box<VecDeque<T>>>,
}

impl<T> EntryQueue<T> {
    fn new(key: u64, kind: MatchKind, first: T) -> Self {
        Self { key, kind, a: Some(first), b: None, overflow: None }
    }

    fn push(&mut self, v: T, spares: &Spares<T>) {
        if self.a.is_none()
            && self.overflow.as_ref().is_none_or(|o| o.is_empty())
            && self.b.is_none()
        {
            self.a = Some(v);
        } else if self.b.is_none() && self.overflow.as_ref().is_none_or(|o| o.is_empty()) {
            self.b = Some(v);
        } else {
            // Spill: reuse a recycled deque (warm capacity included)
            // before asking the allocator for a fresh one.
            let of = match &mut self.overflow {
                Some(of) => of,
                slot @ None => slot.insert(spares.lock().pop().unwrap_or_default()),
            };
            of.push_back(v);
        }
    }

    /// Hands the (empty) overflow deque back to the freelist; called
    /// when this queue is removed from its bucket.
    fn reclaim_overflow(mut self, spares: &Spares<T>) {
        if let Some(mut of) = self.overflow.take() {
            if of.capacity() <= SPARE_MAX_ELEMS {
                of.clear();
                let mut s = spares.lock();
                if s.len() < SPARES_CAP {
                    s.push(of);
                }
            }
        }
    }

    fn pop(&mut self) -> Option<T> {
        // FIFO invariant: a is the front, then b, then overflow; b is
        // only occupied while a is.
        let v = self.a.take()?;
        self.a = self.b.take();
        if let Some(of) = self.overflow.as_mut() {
            self.b = of.pop_front();
        }
        Some(v)
    }

    fn is_empty(&self) -> bool {
        self.a.is_none() && self.b.is_none() && self.overflow.as_ref().is_none_or(|o| o.is_empty())
    }

    fn len(&self) -> usize {
        self.a.is_some() as usize
            + self.b.is_some() as usize
            + self.overflow.as_ref().map_or(0, |o| o.len())
    }
}

/// A bucket: up to three queues inline, spilling to a heap vector.
struct Bucket<T> {
    q: [Option<EntryQueue<T>>; 3],
    // Boxed so the common spill-free bucket stays one pointer wide.
    #[allow(clippy::box_collection)]
    overflow: Option<Box<Vec<EntryQueue<T>>>>,
}

impl<T> Default for Bucket<T> {
    fn default() -> Self {
        Self { q: [None, None, None], overflow: None }
    }
}

impl<T> Bucket<T> {
    fn find_mut(&mut self, key: u64) -> Option<&mut EntryQueue<T>> {
        for slot in self.q.iter_mut() {
            if let Some(q) = slot {
                if q.key == key {
                    return slot.as_mut();
                }
            }
        }
        self.overflow.as_mut()?.iter_mut().find(|q| q.key == key)
    }

    fn remove_if_empty(&mut self, key: u64, spares: &Spares<T>) {
        for slot in self.q.iter_mut() {
            if slot.as_ref().is_some_and(|q| q.key == key && q.is_empty()) {
                slot.take().expect("checked above").reclaim_overflow(spares);
                return;
            }
        }
        if let Some(of) = self.overflow.as_mut() {
            if let Some(pos) = of.iter().position(|q| q.key == key && q.is_empty()) {
                // Queue order within a bucket only matters per key, so
                // the swap removal is safe.
                of.swap_remove(pos).reclaim_overflow(spares);
            }
        }
    }

    fn insert_queue(&mut self, q: EntryQueue<T>) {
        for slot in self.q.iter_mut() {
            if slot.is_none() {
                *slot = Some(q);
                return;
            }
        }
        self.overflow.get_or_insert_with(Default::default).push(q);
    }

    fn total_entries(&self) -> usize {
        self.q.iter().flatten().map(|q| q.len()).sum::<usize>()
            + self.overflow.as_ref().map_or(0, |of| of.iter().map(|q| q.len()).sum())
    }
}

/// Matching-engine configuration.
#[derive(Clone, Copy, Debug)]
pub struct MatchingConfig {
    /// Number of hash buckets (power of two). The paper defaults to
    /// 65536; this reproduction defaults to 4096 because it instantiates
    /// one engine per simulated rank inside a single process.
    pub buckets: usize,
}

impl Default for MatchingConfig {
    fn default() -> Self {
        Self { buckets: 4096 }
    }
}

/// The matching engine. Generic over the stored descriptor type so the
/// resource microbenchmark (paper Fig. 5) can drive it directly.
pub struct MatchingEngine<T> {
    buckets: Box<[SpinLock<Bucket<T>>]>,
    mask: u64,
    make_key: Option<Arc<MakeKeyFn>>,
    /// Stored-entry count, maintained on insert/match so [`len`](Self::len)
    /// never walks the table. Striped per core (an insert on core A
    /// matched on core B adjusts two different cells; the fold stays
    /// exact) so the hot path shares no counter line between cores.
    /// Readers want a monotonic-ish estimate, not a linearizable
    /// snapshot (matching correctness never depends on it).
    entries: StripedU64,
    /// Recycled overflow deques: a same-key burst past the two inline
    /// slots spills to a `VecDeque`, and bursts arrive on fresh keys
    /// (collective tags carry a sequence number), so without recycling
    /// every burst would allocate the deque anew. Only touched on the
    /// spill path — point-to-point inserts never look at it.
    spares: Spares<T>,
    /// Bucket-lock acquisitions that found the lock busy — the
    /// contention signal the scale matrix uses to attribute msgrate
    /// cliffs to matching pressure (tune `MatchingConfig::buckets`).
    contended: StripedU64,
}

impl<T> MatchingEngine<T> {
    /// Creates an engine with the default configuration.
    pub fn new() -> Self {
        Self::with_config(MatchingConfig::default())
    }

    /// Creates an engine with `cfg`.
    pub fn with_config(cfg: MatchingConfig) -> Self {
        let n = cfg.buckets.next_power_of_two().max(2);
        let buckets: Vec<SpinLock<Bucket<T>>> =
            (0..n).map(|_| SpinLock::new(Bucket::default())).collect();
        Self {
            buckets: buckets.into_boxed_slice(),
            mask: (n - 1) as u64,
            make_key: None,
            entries: StripedU64::new(0),
            spares: SpinLock::new(Vec::new()),
            contended: StripedU64::new(0),
        }
    }

    /// Installs a custom key-derivation function used by
    /// [`key_for`](Self::key_for) regardless of policy.
    pub fn set_make_key(&mut self, f: Arc<MakeKeyFn>) {
        self.make_key = Some(f);
    }

    /// Derives the matching key for `(rank, tag)` under `policy`,
    /// honouring a custom `make_key` when installed.
    pub fn key_for(&self, rank: Rank, tag: Tag, policy: MatchingPolicy) -> u64 {
        match &self.make_key {
            Some(f) => f(rank, tag),
            None => make_key(rank, tag, policy),
        }
    }

    #[inline]
    fn bucket_of(&self, key: u64) -> &SpinLock<Bucket<T>> {
        // Fibonacci hashing spreads sequential tags/ranks across buckets.
        let h = key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32;
        &self.buckets[(h & self.mask) as usize]
    }

    /// Inserts `(key, value)` of `kind`. If an entry of the complementary
    /// kind with the same key exists, removes and returns it together
    /// with the caller's value (which is then *not* stored); otherwise
    /// stores the value and returns `None`.
    pub fn insert(&self, key: u64, value: T, kind: MatchKind) -> Option<(T, T)> {
        let lock = self.bucket_of(key);
        // Try-lock first so bucket contention is *observable*: a busy
        // lock bumps the per-core contended counter before falling back
        // to the blocking acquire (§4.2.2 trylock discipline).
        let mut bucket = match lock.try_lock() {
            Some(b) => b,
            None => {
                self.contended.bump();
                lock.lock()
            }
        };
        if let Some(q) = bucket.find_mut(key) {
            if q.kind == kind.opposite() {
                if let Some(matched) = q.pop() {
                    if q.is_empty() {
                        bucket.remove_if_empty(key, &self.spares);
                    }
                    drop(bucket);
                    self.entries.sub(1);
                    return Some((matched, value));
                }
                // Complementary queue exists but is empty (transient;
                // normally removed) — repurpose it.
                q.kind = kind;
                q.push(value, &self.spares);
                drop(bucket);
                self.entries.add(1);
                return None;
            }
            q.push(value, &self.spares);
            drop(bucket);
            self.entries.add(1);
            return None;
        }
        bucket.insert_queue(EntryQueue::new(key, kind, value));
        drop(bucket);
        self.entries.add(1);
        None
    }

    /// Total stored entries: an O(stripes) fold of per-core cells,
    /// approximate while inserts race (each insert either stores one
    /// entry or removes one).
    pub fn len(&self) -> usize {
        self.entries.sum() as usize
    }

    /// Bucket-lock acquisitions that found the lock busy since
    /// construction (surfaced as `matching_contended` in
    /// [`StatsSnapshot`](crate::stats::StatsSnapshot)).
    pub fn contended(&self) -> u64 {
        self.contended.sum()
    }

    /// Whether the engine holds no entries (O(1); see [`len`](Self::len)).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Exact stored-entry count by walking every bucket under its lock
    /// (diagnostics; at quiescence it equals [`len`](Self::len)).
    pub fn len_slow(&self) -> usize {
        self.buckets.iter().map(|b| b.lock().total_entries()).sum()
    }

    /// Number of buckets (for tests/benches).
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }
}

impl<T> Default for MatchingEngine<T> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_then_recv_matches() {
        let m: MatchingEngine<u32> = MatchingEngine::new();
        assert!(m.insert(7, 100, MatchKind::Send).is_none());
        assert_eq!(m.insert(7, 200, MatchKind::Recv), Some((100, 200)));
        assert!(m.is_empty());
    }

    #[test]
    fn recv_then_send_matches() {
        let m: MatchingEngine<u32> = MatchingEngine::new();
        assert!(m.insert(9, 1, MatchKind::Recv).is_none());
        assert_eq!(m.insert(9, 2, MatchKind::Send), Some((1, 2)));
    }

    #[test]
    fn different_keys_do_not_match() {
        let m: MatchingEngine<u32> = MatchingEngine::new();
        assert!(m.insert(1, 10, MatchKind::Send).is_none());
        assert!(m.insert(2, 20, MatchKind::Recv).is_none());
        assert_eq!(m.len(), 2);
        assert_eq!(m.len_slow(), 2);
    }

    #[test]
    fn fifo_order_within_key() {
        let m: MatchingEngine<u32> = MatchingEngine::new();
        for i in 0..5 {
            assert!(m.insert(3, i, MatchKind::Send).is_none());
        }
        for i in 0..5 {
            assert_eq!(m.insert(3, 99, MatchKind::Recv), Some((i, 99)));
        }
        assert!(m.is_empty());
        assert_eq!(m.len_slow(), 0);
    }

    #[test]
    fn overflow_past_inline_slots() {
        let m: MatchingEngine<usize> = MatchingEngine::with_config(MatchingConfig { buckets: 2 });
        // Many keys in few buckets exercises bucket overflow; many values
        // per key exercises queue overflow.
        for key in 0..32u64 {
            for v in 0..8usize {
                assert!(m.insert(key, key as usize * 100 + v, MatchKind::Send).is_none());
            }
        }
        assert_eq!(m.len(), 32 * 8);
        assert_eq!(m.len_slow(), 32 * 8);
        for key in 0..32u64 {
            for v in 0..8usize {
                assert_eq!(
                    m.insert(key, 0, MatchKind::Recv),
                    Some((key as usize * 100 + v, 0)),
                    "key {key} v {v}"
                );
            }
        }
        assert!(m.is_empty());
    }

    #[test]
    fn make_key_policies_disjoint() {
        let k1 = make_key(1, 2, MatchingPolicy::RankTag);
        let k2 = make_key(1, 2, MatchingPolicy::RankOnly);
        let k3 = make_key(1, 2, MatchingPolicy::TagOnly);
        let k4 = make_key(1, 2, MatchingPolicy::None);
        let keys = [k1, k2, k3, k4];
        for i in 0..4 {
            for j in i + 1..4 {
                assert_ne!(keys[i], keys[j]);
            }
        }
        // Rank-only ignores tag; tag-only ignores rank.
        assert_eq!(
            make_key(1, 5, MatchingPolicy::RankOnly),
            make_key(1, 9, MatchingPolicy::RankOnly)
        );
        assert_eq!(
            make_key(3, 5, MatchingPolicy::TagOnly),
            make_key(8, 5, MatchingPolicy::TagOnly)
        );
    }

    #[test]
    fn custom_make_key() {
        let mut m: MatchingEngine<u8> = MatchingEngine::new();
        m.set_make_key(Arc::new(|rank, tag| (rank as u64) + (tag as u64)));
        assert_eq!(m.key_for(2, 3, MatchingPolicy::RankTag), 5);
        assert_eq!(m.key_for(3, 2, MatchingPolicy::TagOnly), 5);
    }

    #[test]
    fn concurrent_matching_conserves_entries() {
        let m: Arc<MatchingEngine<usize>> = Arc::new(MatchingEngine::new());
        let nthreads = 4;
        let per = 2_000;
        let matched: Arc<std::sync::atomic::AtomicUsize> = Default::default();
        let handles: Vec<_> = (0..nthreads)
            .map(|t| {
                let m = m.clone();
                let matched = matched.clone();
                std::thread::spawn(move || {
                    let kind = if t % 2 == 0 { MatchKind::Send } else { MatchKind::Recv };
                    for i in 0..per {
                        let key = (i % 64) as u64;
                        if m.insert(key, t * per + i, kind).is_some() {
                            matched.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let matched = matched.load(std::sync::atomic::Ordering::Relaxed);
        let total = nthreads * per;
        // Every insert either stored or matched exactly one stored entry.
        assert_eq!(m.len() + 2 * matched, total);
        // At quiescence the O(1) counter agrees with the locked walk.
        assert_eq!(m.len(), m.len_slow());
    }
}
