//! # LCI — a Lightweight Communication Interface (Rust reproduction)
//!
//! A from-scratch Rust implementation of the communication library
//! presented in *"LCI: a Lightweight Communication Interface for
//! Efficient Asynchronous Multithreaded Communication"* (SC 2025).
//!
//! LCI provides a concise interface supporting all common point-to-point
//! primitives — send/receive, active messages, RMA put/get (with or
//! without notification) — and diverse completion mechanisms
//! (synchronizers, completion queues, handlers, completion graphs), on
//! top of a threading-efficient runtime built from atomic data
//! structures, fine-grained non-blocking locks, and low-level network
//! insight.
//!
//! This reproduction runs on [`lci_fabric`], an in-process simulated RDMA
//! fabric whose two backends mirror the lock granularity of libibverbs
//! and libfabric (see DESIGN.md for the substitution argument).
//!
//! ## Quick start
//!
//! ```
//! use lci_fabric::Fabric;
//! use lci::{Comp, PostResult, Runtime};
//!
//! // Two ranks in one process (threads).
//! let fabric = Fabric::new(2);
//! let f2 = fabric.clone();
//! let peer = std::thread::spawn(move || {
//!     let rt = Runtime::with_defaults(f2, 1).unwrap();
//!     let cq = Comp::alloc_cq();
//!     rt.post_recv(0, vec![0u8; 64], 7, cq.clone()).unwrap();
//!     loop {
//!         rt.progress().unwrap();
//!         if let Some(desc) = cq.pop() {
//!             assert_eq!(desc.as_slice(), b"hello from rank 0");
//!             break;
//!         }
//!     }
//! });
//!
//! let rt = Runtime::with_defaults(fabric, 0).unwrap();
//! let scomp = Comp::alloc_sync(1);
//! // Retry covers transient shortages — including the peer's device
//! // still bootstrapping.
//! let ret = loop {
//!     match rt.post_send(1, b"hello from rank 0".as_slice(), 7, scomp.clone()).unwrap() {
//!         PostResult::Retry(_) => rt.progress().map(|_| ()).unwrap(),
//!         other => break other,
//!     }
//! };
//! if ret.is_posted() {
//!     scomp.as_sync().unwrap().wait_with(|| {
//!         rt.progress().unwrap();
//!     });
//! }
//! peer.join().unwrap();
//! ```
//!
//! ## Module map (paper section → module)
//!
//! | Paper | Module |
//! |---|---|
//! | §3.1 OFF idiom | [`post`] |
//! | §3.2.2 runtime | [`runtime`] |
//! | §3.2.3 resources | [`device`], [`packet_pool`], [`matching`] |
//! | §3.2.4 posting, Table 1 | [`post`] |
//! | §3.2.5 statuses & completion | [`error`], [`comp`] |
//! | §3.2.6 progress | [`device`] |
//! | §3.3.2 matching semantics | [`matching`] |
//! | §4.1.1 MPMC array | [`lci_fabric::sync`] (re-exported) |
//! | §4.1.2 packet pool | [`packet_pool`] |
//! | §4.1.3 matching engine | [`matching`] |
//! | §4.1.4 completion objects | [`comp`] |
//! | §4.1.5 backlog queue | `backlog` (internal) |
//! | §4.2 network backends | [`lci_fabric`] |
//! | §4.3 protocols | [`proto`] |
//! | §6 collectives | [`coll`] (chunk-pipelined; [`collective`] is the legacy alias) |

mod backlog;
pub mod coalesce;
pub mod coll;
pub mod collective;
pub mod comp;
mod ctx_pool;
pub mod device;
pub mod error;
pub mod matching;
pub mod packet_pool;
pub mod post;
pub mod progress;
pub mod proto;
pub mod runtime;
pub mod stats;
pub mod types;
mod util;

pub use coalesce::CoalesceConfig;
pub use coll::{FnOpU64, IColl, MaxF32, MaxU64, ReduceOp, SumF32, SumU64};
pub use comp::graph::{Graph, GraphBuilder, NodeId, NodeOp};
pub use comp::lcrq::Lcrq;
pub use comp::queue::{CompQueue, CqConfig, CqImpl};
pub use comp::sync_obj::Synchronizer;
pub use comp::Comp;
pub use device::{Device, DeviceAttr};
pub use error::{FatalError, PostResult, Result, RetryReason};
pub use matching::{MatchKind, MatchingConfig, MatchingEngine};
pub use packet_pool::{Packet, PacketPool, PacketPoolConfig, PacketView, SharedPacket};
pub use post::CommBuilder;
pub use progress::ProgressMode;
pub use runtime::{Placement, Runtime, RuntimeConfig};
pub use stats::{DeviceStats, StatsSnapshot};
pub use types::{
    CompDesc, CompKind, DataBuf, Direction, MatchingPolicy, RComp, Rank, SendBuf, Tag,
};

// Re-export the fabric handle types users need for setup.
pub use lci_fabric::topology;
pub use lci_fabric::{
    BackendKind, BufPool, BufPoolConfig, BufPoolStats, DeviceConfig, Fabric, MemoryRegion, PoolBuf,
    Rkey, TdStrategy,
};

/// Commonly used items.
pub mod prelude {
    pub use crate::comp::Comp;
    pub use crate::device::Device;
    pub use crate::error::{PostResult, Result};
    pub use crate::runtime::{Runtime, RuntimeConfig};
    pub use crate::types::{CompDesc, CompKind, Direction, MatchingPolicy};
    pub use lci_fabric::Fabric;
}
