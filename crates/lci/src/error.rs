//! Operation return values (paper §3.2.5).
//!
//! An LCI communication posting operation returns a status in one of four
//! categories:
//!
//! * **done** — completed immediately; the completion object will *not*
//!   be signaled, and the returned descriptor carries valid information;
//! * **posted** — accepted; the completion object will be signaled later;
//! * **retry** — temporary resource unavailability; resubmit (the extra
//!   category that lets clients do something useful — poll other queues,
//!   aggregate — instead of blocking);
//! * **fatal error** — reported through `Result::Err`, the Rust analog of
//!   the paper's C++ exceptions.

use crate::types::CompDesc;

/// Why an operation must be resubmitted (the `retry` category's error
/// codes, telling the client *which* resource was unavailable).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RetryReason {
    /// A lower-level network lock was busy (trylock wrapper, §4.2.2).
    LockBusy,
    /// The target device's inbound ring is full (flow control).
    RxFull,
    /// The packet pool could not supply a packet.
    NoPacket,
    /// The backlog queue is full (when retries are disallowed).
    BacklogFull,
    /// The peer's device is not created yet.
    PeerNotReady,
    /// A completion queue with bounded capacity was full.
    CqFull,
}

impl From<lci_fabric::RetryReason> for RetryReason {
    fn from(r: lci_fabric::RetryReason) -> Self {
        match r {
            lci_fabric::RetryReason::RxFull => RetryReason::RxFull,
            lci_fabric::RetryReason::LockBusy => RetryReason::LockBusy,
            lci_fabric::RetryReason::NoPacket => RetryReason::NoPacket,
            lci_fabric::RetryReason::QueueFull => RetryReason::RxFull,
            lci_fabric::RetryReason::PeerNotReady => RetryReason::PeerNotReady,
        }
    }
}

/// Fatal errors (the paper reports these via C++ exceptions).
#[derive(Clone, Debug)]
pub enum FatalError {
    /// The fabric reported an unrecoverable error.
    Net(String),
    /// Invalid arguments (e.g. the invalid Table-1 combination:
    /// direction IN + no remote buffer + remote completion).
    InvalidArg(String),
    /// The requested feature is not supported by this build/backend.
    NotSupported(String),
}

impl std::fmt::Display for FatalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FatalError::Net(m) => write!(f, "network error: {m}"),
            FatalError::InvalidArg(m) => write!(f, "invalid argument: {m}"),
            FatalError::NotSupported(m) => write!(f, "not supported: {m}"),
        }
    }
}

impl std::error::Error for FatalError {}

/// Result alias for LCI operations.
pub type Result<T> = std::result::Result<T, FatalError>;

/// The status of a posting operation (paper §3.2.5).
#[derive(Debug)]
pub enum PostResult {
    /// Completed immediately; the descriptor is valid and the completion
    /// object will not be signaled.
    Done(CompDesc),
    /// Accepted; completion will be signaled through the completion
    /// object.
    Posted,
    /// Temporarily out of resources; resubmit later.
    Retry(RetryReason),
}

impl PostResult {
    /// Whether the operation completed immediately.
    pub fn is_done(&self) -> bool {
        matches!(self, PostResult::Done(_))
    }

    /// Whether the operation was posted for asynchronous completion.
    pub fn is_posted(&self) -> bool {
        matches!(self, PostResult::Posted)
    }

    /// Whether the operation must be resubmitted.
    pub fn is_retry(&self) -> bool {
        matches!(self, PostResult::Retry(_))
    }

    /// Extracts the completion descriptor of a `Done` result.
    pub fn into_done(self) -> Option<CompDesc> {
        match self {
            PostResult::Done(d) => Some(d),
            _ => None,
        }
    }

    /// Panics unless `Done`, returning the descriptor (test helper).
    pub fn unwrap_done(self) -> CompDesc {
        match self {
            PostResult::Done(d) => d,
            other => panic!("expected Done, got {other:?}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn postresult_categories() {
        assert!(PostResult::Posted.is_posted());
        assert!(PostResult::Retry(RetryReason::NoPacket).is_retry());
        assert!(PostResult::Done(CompDesc::empty()).is_done());
        assert!(!PostResult::Posted.is_done());
        assert!(PostResult::Posted.into_done().is_none());
    }

    #[test]
    fn retry_reason_from_fabric() {
        assert_eq!(RetryReason::from(lci_fabric::RetryReason::LockBusy), RetryReason::LockBusy);
        assert_eq!(RetryReason::from(lci_fabric::RetryReason::RxFull), RetryReason::RxFull);
    }
}
