//! Core value types of the LCI interface.

use crate::packet_pool::{Packet, PacketView};

/// Process index (see DESIGN.md: ranks are threads of one process in this
/// reproduction).
pub type Rank = usize;

/// Message tag. LCI matches by `(matching engine, source rank, tag)` by
/// default (§3.3.2).
pub type Tag = u32;

/// Remote completion handle: a small integer the *target* rank registered
/// with [`Runtime::register_rcomp`](crate::runtime::Runtime::register_rcomp)
/// and the source passes when posting active messages or signalled RMA.
pub type RComp = u32;

/// Matching policy (§3.3.2): how the matching key is formed from
/// `(rank, tag)`. The sender and receiver of a message must use the same
/// policy — the paper's "restricted wildcard" semantics, where a sender
/// must know its message will be matched by a wildcard receive.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum MatchingPolicy {
    /// Match on both source rank and tag (default).
    #[default]
    RankTag,
    /// Match on source rank only (tag wildcard).
    RankOnly,
    /// Match on tag only (source wildcard).
    TagOnly,
    /// Match on nothing (any send matches any receive on the engine).
    None,
}

impl MatchingPolicy {
    /// Compact 2-bit encoding carried in the wire header.
    pub fn encode(self) -> u8 {
        match self {
            MatchingPolicy::RankTag => 0,
            MatchingPolicy::RankOnly => 1,
            MatchingPolicy::TagOnly => 2,
            MatchingPolicy::None => 3,
        }
    }

    /// Inverse of [`encode`](Self::encode).
    pub fn decode(v: u8) -> Self {
        match v & 0b11 {
            0 => MatchingPolicy::RankTag,
            1 => MatchingPolicy::RankOnly,
            2 => MatchingPolicy::TagOnly,
            _ => MatchingPolicy::None,
        }
    }
}

/// Direction of a generic [`post_comm`](crate::post::CommBuilder)
/// operation (paper Table 1).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    /// Data flows out of the local buffer (send / am / put).
    Out,
    /// Data flows into the local buffer (recv / get).
    In,
}

/// Payload handed to a send-like operation.
///
/// The Rust port replaces the paper's raw `void*` + completion-frees-it
/// convention with owned buffers: the buffer travels with the operation
/// and comes back in the completion descriptor, where the user can reuse
/// or drop it.
/// Payloads at most this long borrowed as `&[u8]` are stored inline in
/// the [`SendBuf`] itself — no heap allocation on the small-send fast
/// path.
pub const SENDBUF_INLINE_CAP: usize = 24;

#[derive(Debug)]
pub enum SendBuf {
    /// A small payload stored inline (no allocation).
    Inline([u8; SENDBUF_INLINE_CAP], u8),
    /// An owned heap buffer (zero-copy for rendezvous-size messages).
    Owned(Box<[u8]>),
    /// An explicitly-assembled packet (§3.3.1): saves the staging copy of
    /// the buffer-copy protocol.
    Packet(Packet),
    /// A list of owned buffers transmitted as one message (§3.3.1,
    /// "transmitting a list of source and target buffers").
    Iovec(Vec<Box<[u8]>>),
    /// A pool-recycled staging buffer: its storage returns to the
    /// buffer pool when the completion descriptor carrying it back is
    /// dropped, so steady-state senders (collectives staging per-round
    /// payloads) allocate nothing.
    Pooled(lci_fabric::PoolBuf),
}

impl SendBuf {
    /// Total payload length in bytes.
    pub fn len(&self) -> usize {
        match self {
            SendBuf::Inline(_, len) => *len as usize,
            SendBuf::Owned(b) => b.len(),
            SendBuf::Packet(p) => p.len(),
            SendBuf::Iovec(v) => v.iter().map(|b| b.len()).sum(),
            SendBuf::Pooled(b) => b.len(),
        }
    }

    /// Whether the payload is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A contiguous view when one exists without copying.
    pub fn as_contiguous(&self) -> Option<&[u8]> {
        match self {
            SendBuf::Inline(b, len) => Some(&b[..*len as usize]),
            SendBuf::Owned(b) => Some(b),
            // Only the filled prefix of a packet is message payload.
            SendBuf::Packet(p) => Some(&p.as_slice()[..p.len()]),
            SendBuf::Iovec(v) if v.len() == 1 => Some(&v[0]),
            SendBuf::Iovec(_) => None,
            SendBuf::Pooled(b) => Some(b),
        }
    }

    /// Flattens to contiguous bytes, copying only if an iovec has
    /// multiple segments.
    pub fn flatten(&self) -> Vec<u8> {
        match self.as_contiguous() {
            Some(s) => s.to_vec(),
            None => match self {
                SendBuf::Iovec(v) => {
                    let mut out = Vec::with_capacity(self.len());
                    for seg in v {
                        out.extend_from_slice(seg);
                    }
                    out
                }
                _ => unreachable!(),
            },
        }
    }
}

impl From<Vec<u8>> for SendBuf {
    fn from(v: Vec<u8>) -> Self {
        SendBuf::Owned(v.into_boxed_slice())
    }
}

impl From<Box<[u8]>> for SendBuf {
    fn from(b: Box<[u8]>) -> Self {
        SendBuf::Owned(b)
    }
}

impl From<&[u8]> for SendBuf {
    fn from(s: &[u8]) -> Self {
        if s.len() <= SENDBUF_INLINE_CAP {
            let mut buf = [0u8; SENDBUF_INLINE_CAP];
            buf[..s.len()].copy_from_slice(s);
            SendBuf::Inline(buf, s.len() as u8)
        } else {
            SendBuf::Owned(s.into())
        }
    }
}

impl From<Packet> for SendBuf {
    fn from(p: Packet) -> Self {
        SendBuf::Packet(p)
    }
}

impl From<Vec<Box<[u8]>>> for SendBuf {
    fn from(v: Vec<Box<[u8]>>) -> Self {
        SendBuf::Iovec(v)
    }
}

impl From<lci_fabric::PoolBuf> for SendBuf {
    fn from(b: lci_fabric::PoolBuf) -> Self {
        SendBuf::Pooled(b)
    }
}

/// Data delivered by a completed operation.
#[derive(Debug, Default)]
pub enum DataBuf {
    /// No data (e.g. a put-with-signal notification).
    #[default]
    Empty,
    /// An owned heap buffer.
    Owned(Box<[u8]>),
    /// Data delivered in an LCI packet (§3.3.1); returning the packet to
    /// the pool happens automatically when this is dropped.
    Packet(Packet, usize),
    /// A zero-copy view of a shared packet (one coalesced frame backs
    /// many sub-message views); the packet slot returns to the pool when
    /// the last view drops.
    View(PacketView),
    /// An owned buffer of which only the first `len` bytes are message
    /// data (zero-copy receives into a larger posted buffer).
    Partial(Box<[u8]>, usize),
    /// A pool-recycled buffer of which only the first `len` bytes are
    /// message data (unexpected AM rendezvous bounce buffers); its
    /// storage returns to the buffer pool when this is dropped.
    Pooled(lci_fabric::PoolBuf, usize),
    /// The send buffer coming back to its owner on a send completion.
    SendBuf(SendBuf),
}

impl DataBuf {
    /// Byte view of the delivered data.
    pub fn as_slice(&self) -> &[u8] {
        match self {
            DataBuf::Empty => &[],
            DataBuf::Owned(b) => b,
            DataBuf::Packet(p, len) => &p.as_slice()[..*len],
            DataBuf::View(v) => v.as_slice(),
            DataBuf::Partial(b, len) => &b[..*len],
            DataBuf::Pooled(b, len) => &b[..*len],
            DataBuf::SendBuf(s) => s.as_contiguous().unwrap_or(&[]),
        }
    }

    /// Length of the delivered data.
    pub fn len(&self) -> usize {
        match self {
            DataBuf::Empty => 0,
            DataBuf::Owned(b) => b.len(),
            DataBuf::Packet(_, len) => *len,
            DataBuf::View(v) => v.len(),
            DataBuf::Partial(_, len) => *len,
            DataBuf::Pooled(_, len) => *len,
            DataBuf::SendBuf(s) => s.len(),
        }
    }

    /// Whether there is no data.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copies the data out into a `Vec` (packets return to the pool).
    pub fn into_vec(self) -> Vec<u8> {
        match self {
            DataBuf::Empty => Vec::new(),
            DataBuf::Owned(b) => b.into_vec(),
            DataBuf::Packet(p, len) => p.as_slice()[..len].to_vec(),
            DataBuf::View(v) => v.as_slice().to_vec(),
            DataBuf::Partial(b, len) => {
                let mut v = b.into_vec();
                v.truncate(len);
                v
            }
            DataBuf::Pooled(b, len) => b[..len].to_vec(),
            DataBuf::SendBuf(s) => s.flatten(),
        }
    }
}

/// What kind of operation a completion descriptor reports.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum CompKind {
    /// Unspecified (empty descriptors).
    #[default]
    Unknown,
    /// A send completed locally.
    Send,
    /// A receive matched and delivered.
    Recv,
    /// An active message arrived.
    Am,
    /// An RMA put completed locally.
    Put,
    /// An RMA get completed locally.
    Get,
    /// A remote-signal notification arrived (put/get with signal).
    RemoteSignal,
    /// A completion-graph node finished.
    GraphNode,
}

/// The completion descriptor (the paper's `status_t`): delivered to a
/// completion object when an operation completes, or returned directly
/// for `done`-category operations.
#[derive(Debug, Default)]
pub struct CompDesc {
    /// The peer rank (source for receives, target for sends).
    pub rank: Rank,
    /// The message tag.
    pub tag: Tag,
    /// Delivered data (receives/AMs) or the returned send buffer.
    pub data: DataBuf,
    /// Opaque user context attached at post time.
    pub user_ctx: u64,
    /// What completed.
    pub kind: CompKind,
}

impl CompDesc {
    /// An empty descriptor (for `done` results with nothing to report).
    pub fn empty() -> Self {
        Self::default()
    }

    /// Convenience: borrow the delivered bytes.
    pub fn as_slice(&self) -> &[u8] {
        self.data.as_slice()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matching_policy_roundtrip() {
        for p in [
            MatchingPolicy::RankTag,
            MatchingPolicy::RankOnly,
            MatchingPolicy::TagOnly,
            MatchingPolicy::None,
        ] {
            assert_eq!(MatchingPolicy::decode(p.encode()), p);
        }
    }

    #[test]
    fn sendbuf_conversions_and_len() {
        let s: SendBuf = vec![1u8, 2, 3].into();
        assert_eq!(s.len(), 3);
        assert_eq!(s.as_contiguous().unwrap(), &[1, 2, 3]);

        let small: SendBuf = [7u8; 8].as_slice().into();
        assert!(matches!(small, SendBuf::Inline(..)), "small slices must not allocate");
        assert_eq!(small.len(), 8);
        assert_eq!(small.as_contiguous().unwrap(), &[7u8; 8]);

        let big: SendBuf = [7u8; SENDBUF_INLINE_CAP + 1].as_slice().into();
        assert!(matches!(big, SendBuf::Owned(_)));
        assert_eq!(big.len(), SENDBUF_INLINE_CAP + 1);

        let iov: SendBuf =
            vec![vec![1u8].into_boxed_slice(), vec![2u8, 3].into_boxed_slice()].into();
        assert_eq!(iov.len(), 3);
        assert!(iov.as_contiguous().is_none());
        assert_eq!(iov.flatten(), vec![1, 2, 3]);
    }

    #[test]
    fn databuf_owned_roundtrip() {
        let d = DataBuf::Owned(vec![9u8; 4].into_boxed_slice());
        assert_eq!(d.len(), 4);
        assert_eq!(d.as_slice(), &[9u8; 4]);
        assert_eq!(d.into_vec(), vec![9u8; 4]);
    }

    #[test]
    fn compdesc_empty() {
        let d = CompDesc::empty();
        assert_eq!(d.kind, CompKind::Unknown);
        assert!(d.data.is_empty());
    }
}
