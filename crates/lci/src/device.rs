//! Devices and the progress engine (paper §3.2.3, §3.2.6, §4.4).
//!
//! A device encapsulates a complete set of low-level network resources;
//! threads operating on different devices never interfere. This module
//! also hosts the runtime's data path: the generic posting operation
//! behind `post_comm` and the explicit progress function that drives the
//! backlog queue, polls the network, reacts to completions (matching,
//! rendezvous, signaling) and replenishes pre-posted receives — steps
//! (1)-(11) of the paper's Figure 1.

use crate::backlog::{Backlog, Backlogged};
use crate::coalesce::{Coalescer, Frame};
use crate::comp::Comp;
use crate::error::{FatalError, PostResult, Result};
use crate::matching::MatchKind;
use crate::packet_pool::Packet;
use crate::proto::{coalesce_unpack_ranges, Header, MsgType, RtrPayload, RtsPayload};
use crate::runtime::RuntimeInner;
use crate::stats::DeviceStats;
use crate::types::{
    CompDesc, CompKind, DataBuf, Direction, MatchingPolicy, RComp, Rank, SendBuf, Tag,
};
use crate::util::Slab;
use lci_fabric::sync::SpinLock;
use lci_fabric::{
    Cqe, CqeKind, DevId, MemoryRegion, NetDevice, NetError, RecvBufDesc, Rkey, SendDesc,
};
use std::sync::Arc;

/// Longest run of backlogged sends submitted as one fabric batch.
const BACKLOG_BATCH: usize = 32;

/// Entries stored in the matching engine.
pub(crate) enum MatchEntry {
    /// An unexpected eager message. The payload is parked without
    /// copying whenever possible: a whole packet for standalone
    /// arrivals, a refcounted [`crate::PacketView`] for sub-messages of
    /// a coalesced frame (an owned copy only when zero-copy delivery is
    /// disabled).
    UnexpEager { src: Rank, tag: Tag, data: DataBuf },
    /// An unexpected rendezvous RTS.
    UnexpRts { src: Rank, src_dev: DevId, tag: Tag, send_id: u32, size: usize },
    /// A posted receive.
    Recv(RecvEntry),
}

/// A posted receive waiting in the matching engine.
pub(crate) struct RecvEntry {
    pub buf: Box<[u8]>,
    pub comp: Comp,
    pub user_ctx: u64,
    /// The device whose resources serve this receive's rendezvous reply.
    pub device: Device,
}

/// A pending zero-copy send (RTS issued, waiting for RTR).
struct RdvSend {
    buf: SendBuf,
    /// Flattened contiguous payload (kept alive for the RDMA write; for
    /// contiguous `buf` this is empty and `buf` is used directly).
    flat: Option<Box<[u8]>>,
    comp: Option<Comp>,
    rank: Rank,
    tag: Tag,
    user_ctx: u64,
}

/// A pending zero-copy receive (RTR issued, waiting for FIN).
struct RdvRecv {
    buf: Box<[u8]>,
    mr: MemoryRegion,
    comp: Comp,
    user_ctx: u64,
    src: Rank,
    tag: Tag,
    size: usize,
    is_am: bool,
}

/// Per-operation context travelling through the fabric's completion
/// context field as a raw `Box` pointer.
enum OpCtx {
    EagerSend {
        comp: Option<Comp>,
        buf: SendBuf,
        rank: Rank,
        tag: Tag,
        user_ctx: u64,
    },
    RdvWrite {
        send_id: u32,
    },
    Put {
        comp: Option<Comp>,
        buf: SendBuf,
        rank: Rank,
        tag: Tag,
        user_ctx: u64,
    },
    Get {
        comp: Option<Comp>,
        buf: Box<[u8]>,
        rank: Rank,
        tag: Tag,
        user_ctx: u64,
        signal: Option<(DevId, RComp)>,
    },
}

fn ctx_encode(op: OpCtx) -> u64 {
    Box::into_raw(Box::new(op)) as u64
}

/// # Safety
/// `ctx` must come from [`ctx_encode`] and be decoded exactly once (the
/// fabric delivers each completion exactly once).
unsafe fn ctx_decode(ctx: u64) -> Box<OpCtx> {
    unsafe { Box::from_raw(ctx as *mut OpCtx) }
}

pub(crate) struct DeviceInner {
    pub rt: Arc<RuntimeInner>,
    pub net: Arc<dyn NetDevice>,
    backlog: Backlog,
    coalescer: Coalescer,
    rdv_sends: SpinLock<Slab<RdvSend>>,
    rdv_recvs: SpinLock<Slab<RdvRecv>>,
    stats: DeviceStats,
}

/// A communication device handle (cheap to clone, `Send + Sync`).
#[derive(Clone)]
pub struct Device {
    pub(crate) inner: Arc<DeviceInner>,
}

/// Queryable device attributes (paper §3.2.3).
#[derive(Clone, Copy, Debug)]
pub struct DeviceAttr {
    /// Fabric-wide device index on its rank.
    pub dev_id: DevId,
    /// Simulated provider backing the device.
    pub backend: lci_fabric::BackendKind,
    /// Thread-domain strategy (the `ibv_td_strategy` attribute, §4.2.3).
    pub td_strategy: lci_fabric::TdStrategy,
    /// Inbound flow-control window.
    pub rx_capacity: usize,
    /// Pre-posted receive target.
    pub prepost_target: usize,
}

/// Arguments of the generic communication-posting operation
/// (assembled by the builders in [`crate::post`]).
pub(crate) struct CommArgs {
    pub direction: Direction,
    pub rank: Rank,
    pub send_buf: Option<SendBuf>,
    pub recv_buf: Option<Box<[u8]>>,
    pub tag: Tag,
    pub comp: Option<Comp>,
    pub remote_buf: Option<(Rkey, usize)>,
    pub remote_comp: Option<RComp>,
    pub policy: MatchingPolicy,
    pub target_dev: Option<DevId>,
    pub user_ctx: u64,
    pub allow_retry: bool,
    pub allow_coalescing: bool,
}

impl Device {
    pub(crate) fn create(rt: Arc<RuntimeInner>) -> Result<Device> {
        let net = rt.netctx.create_device(rt.config.device);
        let coalescer = Coalescer::new(rt.config.coalesce, rt.fabric.nranks());
        let dev = Device {
            inner: Arc::new(DeviceInner {
                rt,
                net,
                backlog: Backlog::new(),
                coalescer,
                rdv_sends: SpinLock::new(Slab::new()),
                rdv_recvs: SpinLock::new(Slab::new()),
                stats: DeviceStats::default(),
            }),
        };
        // Stock the shared receive queue so peers can start immediately.
        dev.replenish_recvs()?;
        Ok(dev)
    }

    /// The owning rank.
    pub fn rank(&self) -> Rank {
        self.inner.rt.rank
    }

    /// This device's fabric-wide index on its rank.
    pub fn dev_id(&self) -> DevId {
        self.inner.net.dev_id()
    }

    /// Queries the device's attributes (paper §3.2.3: resources have
    /// queryable attribute lists).
    pub fn attr(&self) -> DeviceAttr {
        let cfg = self.inner.net.config();
        DeviceAttr {
            dev_id: self.inner.net.dev_id(),
            backend: cfg.backend,
            td_strategy: cfg.td_strategy,
            rx_capacity: cfg.rx_capacity,
            prepost_target: self.inner.rt.config.prepost,
        }
    }

    /// Snapshot of this device's operation counters.
    pub fn stats(&self) -> crate::stats::StatsSnapshot {
        self.inner.stats.snapshot()
    }

    /// Registers memory for remote access (paper §3.3.1: mandatory for
    /// remote buffers, optional for local ones).
    pub fn register_memory(&self, buf: &[u8]) -> Result<MemoryRegion> {
        self.inner.net.register(buf.as_ptr(), buf.len()).map_err(net_fatal)
    }

    /// Deregisters a memory region.
    pub fn deregister_memory(&self, mr: &MemoryRegion) -> Result<()> {
        self.inner.net.deregister(mr).map_err(net_fatal)
    }

    // ------------------------------------------------------------------
    // Posting (paper Figure 1, steps 1-2)
    // ------------------------------------------------------------------

    /// The generic communication-posting operation (`post_comm`).
    pub(crate) fn post_comm(&self, args: CommArgs) -> Result<PostResult> {
        let res = self.post_comm_inner(args);
        if let Ok(r) = &res {
            if r.is_retry() {
                DeviceStats::bump(&self.inner.stats.retries);
            } else {
                DeviceStats::bump(&self.inner.stats.posts);
            }
        }
        res
    }

    fn post_comm_inner(&self, args: CommArgs) -> Result<PostResult> {
        match (args.direction, args.remote_buf.is_some(), args.remote_comp.is_some()) {
            (Direction::Out, false, false) => self.post_send_impl(args, None),
            (Direction::Out, false, true) => {
                let rcomp = args.remote_comp.unwrap();
                self.post_send_impl(args, Some(rcomp))
            }
            (Direction::Out, true, _) => self.post_put_impl(args),
            (Direction::In, false, false) => self.post_recv_impl(args),
            (Direction::In, false, true) => Err(FatalError::InvalidArg(
                "a receive with a remote completion is invalid (paper Table 1)".into(),
            )),
            (Direction::In, true, _) => self.post_get_impl(args),
        }
    }

    /// Send / active message (eager or rendezvous by size).
    fn post_send_impl(&self, args: CommArgs, rcomp: Option<RComp>) -> Result<PostResult> {
        let cfg = &self.inner.rt.config;
        let buf = args
            .send_buf
            .ok_or_else(|| FatalError::InvalidArg("send requires a local buffer".into()))?;
        let size = buf.len();
        let target_dev = args.target_dev.unwrap_or_else(|| self.dev_id());

        let coal = &self.inner.coalescer;
        let coalescable = coal.enabled()
            && args.allow_coalescing
            && size <= cfg.eager_size
            && coal.eligible(size);
        if coal.enabled() && !coalescable {
            // A non-coalesced message must not overtake sub-messages
            // already buffered for this destination (FIFO per
            // destination, which per-(rank, tag) matching order relies
            // on): flush the destination first.
            coal.take_with(args.rank, target_dev, |frame| self.post_frame(frame))?;
        }

        if size > cfg.eager_size {
            return self.post_rendezvous(
                args.rank,
                target_dev,
                buf,
                args.tag,
                args.comp,
                args.policy,
                args.user_ctx,
                rcomp,
                args.allow_retry,
            );
        }

        let (ty, aux) = match rcomp {
            Some(rc) => (MsgType::EagerAm, rc),
            None => (MsgType::Eager, 0),
        };
        let imm = Header::new(ty, args.policy, args.tag, aux).encode();

        if coalescable {
            // Coalescing path: absorb the message into the destination's
            // aggregation buffer. Like inject, the operation is done at
            // return and the completion object is *not* signaled.
            // Contiguous buffers append without the flatten staging copy.
            match buf.as_contiguous() {
                Some(data) => {
                    coal.append_with(args.rank, target_dev, imm, data, |frame| {
                        self.post_frame(frame)
                    })?;
                }
                None => {
                    let data = buf.flatten();
                    coal.append_with(args.rank, target_dev, imm, &data, |frame| {
                        self.post_frame(frame)
                    })?;
                }
            }
            DeviceStats::bump(&self.inner.stats.coalesced_msgs);
            return Ok(PostResult::Done(CompDesc {
                rank: args.rank,
                tag: args.tag,
                data: DataBuf::SendBuf(buf),
                user_ctx: args.user_ctx,
                kind: if rcomp.is_some() { CompKind::Am } else { CompKind::Send },
            }));
        }

        if size <= cfg.inject_size {
            // Inject protocol: completes immediately; the completion
            // object is *not* signaled (paper §3.2.5 "done"). Contiguous
            // buffers post without the flatten staging copy.
            let res = match buf.as_contiguous() {
                Some(data) => self.inner.net.post_send(args.rank, target_dev, data, imm, 0),
                None => {
                    let data = buf.flatten();
                    self.inner.net.post_send(args.rank, target_dev, &data, imm, 0)
                }
            };
            match res {
                Ok(()) => {
                    return Ok(PostResult::Done(CompDesc {
                        rank: args.rank,
                        tag: args.tag,
                        data: DataBuf::SendBuf(buf),
                        user_ctx: args.user_ctx,
                        kind: if rcomp.is_some() { CompKind::Am } else { CompKind::Send },
                    }));
                }
                Err(NetError::Retry(r)) if args.allow_retry => {
                    return Ok(PostResult::Retry(r.into()));
                }
                Err(NetError::Retry(_)) => {
                    // Retry disallowed: degrade to the posted path below,
                    // which parks the request in the backlog and signals
                    // the completion object when it eventually ships.
                }
                Err(NetError::Fatal(m)) => return Err(FatalError::Net(m)),
            }
        }

        // Buffer-copy protocol: stage through the fabric; the send buffer
        // comes back with the completion.
        let data = buf.flatten();
        let ctx = ctx_encode(OpCtx::EagerSend {
            comp: args.comp.clone(),
            buf,
            rank: args.rank,
            tag: args.tag,
            user_ctx: args.user_ctx,
        });
        match self.inner.net.post_send(args.rank, target_dev, &data, imm, ctx) {
            Ok(()) => Ok(PostResult::Posted),
            Err(e) => {
                match e {
                    NetError::Retry(r) if args.allow_retry => {
                        // Back out: reclaim the context and hand the
                        // buffer back through the retry descriptor path
                        // (caller resubmits with the same buffer).
                        // SAFETY: the fabric rejected the post, so the
                        // context was never handed over.
                        let _op = unsafe { ctx_decode(ctx) };
                        Ok(PostResult::Retry(r.into()))
                    }
                    NetError::Retry(_) => {
                        // Retry disallowed: park the flattened payload in
                        // the backlog; the in-flight context (with the
                        // original buffer and completion) is posted when
                        // the wire frees up (paper §4.4).
                        self.push_backlog(Backlogged::UserSend {
                            target: args.rank,
                            target_dev,
                            data,
                            imm,
                            ctx,
                        });
                        Ok(PostResult::Posted)
                    }
                    NetError::Fatal(m) => {
                        // SAFETY: rejected post; context never handed over.
                        let _op = unsafe { ctx_decode(ctx) };
                        Err(FatalError::Net(m))
                    }
                }
            }
        }
    }

    /// Zero-copy rendezvous: allocate a send id, ship the RTS.
    #[allow(clippy::too_many_arguments)]
    fn post_rendezvous(
        &self,
        rank: Rank,
        target_dev: DevId,
        buf: SendBuf,
        tag: Tag,
        comp: Option<Comp>,
        policy: MatchingPolicy,
        user_ctx: u64,
        rcomp: Option<RComp>,
        allow_retry: bool,
    ) -> Result<PostResult> {
        let size = buf.len() as u64;
        let flat = match buf.as_contiguous() {
            Some(_) => None,
            None => Some(buf.flatten().into_boxed_slice()),
        };
        DeviceStats::bump(&self.inner.stats.rendezvous);
        let send_id =
            self.inner.rdv_sends.lock().insert(RdvSend { buf, flat, comp, rank, tag, user_ctx });
        let (ty, aux) = match rcomp {
            Some(rc) => (MsgType::RtsAm, rc),
            None => (MsgType::RtsSr, 0),
        };
        let imm = Header::new(ty, policy, tag, aux).encode();
        let payload = RtsPayload { send_id, size }.encode();
        match self.inner.net.post_send(rank, target_dev, &payload, imm, 0) {
            Ok(()) => Ok(PostResult::Posted),
            Err(NetError::Retry(r)) => {
                if allow_retry {
                    // Back the rendezvous out entirely; the user resubmits.
                    self.inner.rdv_sends.lock().remove(send_id);
                    Ok(PostResult::Retry(r.into()))
                } else {
                    self.push_backlog(Backlogged::Ctrl {
                        target: rank,
                        target_dev,
                        payload: payload.to_vec(),
                        imm,
                    });
                    Ok(PostResult::Posted)
                }
            }
            Err(NetError::Fatal(m)) => {
                self.inner.rdv_sends.lock().remove(send_id);
                Err(FatalError::Net(m))
            }
        }
    }

    /// RMA put (direct write, optional remote signal).
    fn post_put_impl(&self, args: CommArgs) -> Result<PostResult> {
        let buf = args
            .send_buf
            .ok_or_else(|| FatalError::InvalidArg("put requires a local buffer".into()))?;
        let (rkey, offset) = args.remote_buf.unwrap();
        let target_dev = args.target_dev.unwrap_or_else(|| self.dev_id());
        let imm = args
            .remote_comp
            .map(|rc| Header::new(MsgType::PutSignal, args.policy, args.tag, rc).encode());
        let data = buf.flatten();
        let ctx = ctx_encode(OpCtx::Put {
            comp: args.comp,
            buf,
            rank: args.rank,
            tag: args.tag,
            user_ctx: args.user_ctx,
        });
        match self.inner.net.post_write(args.rank, target_dev, &data, rkey, offset, imm, ctx) {
            Ok(()) => Ok(PostResult::Posted),
            Err(e) => {
                // SAFETY: rejected post; context never handed over.
                let _op = unsafe { ctx_decode(ctx) };
                match e {
                    NetError::Retry(r) => Ok(PostResult::Retry(r.into())),
                    NetError::Fatal(m) => Err(FatalError::Net(m)),
                }
            }
        }
    }

    /// RMA get (direct read, optional remote signal — the extension the
    /// paper leaves unimplemented; see `proto` module docs).
    fn post_get_impl(&self, args: CommArgs) -> Result<PostResult> {
        let buf = args
            .recv_buf
            .ok_or_else(|| FatalError::InvalidArg("get requires a local buffer".into()))?;
        let (rkey, offset) = args.remote_buf.unwrap();
        let target_dev = args.target_dev.unwrap_or_else(|| self.dev_id());
        let signal = args.remote_comp.map(|rc| (target_dev, rc));
        let len = buf.len();
        let ptr = buf.as_ptr() as *mut u8;
        let ctx = ctx_encode(OpCtx::Get {
            comp: args.comp,
            buf,
            rank: args.rank,
            tag: args.tag,
            user_ctx: args.user_ctx,
            signal,
        });
        // SAFETY: the buffer lives in the OpCtx until the ReadDone
        // completion, satisfying the descriptor contract.
        let desc = unsafe { RecvBufDesc::new(ptr, len, ctx) };
        match self.inner.net.post_read(args.rank, desc, rkey, offset) {
            Ok(()) => Ok(PostResult::Posted),
            Err(e) => {
                // SAFETY: rejected post; context never handed over.
                let _op = unsafe { ctx_decode(ctx) };
                match e {
                    NetError::Retry(r) => Ok(PostResult::Retry(r.into())),
                    NetError::Fatal(m) => Err(FatalError::Net(m)),
                }
            }
        }
    }

    /// Receive: insert into the matching engine; deliver immediately on an
    /// unexpected match.
    fn post_recv_impl(&self, args: CommArgs) -> Result<PostResult> {
        let buf = args
            .recv_buf
            .ok_or_else(|| FatalError::InvalidArg("recv requires a local buffer".into()))?;
        let comp = args
            .comp
            .ok_or_else(|| FatalError::InvalidArg("recv requires a completion object".into()))?;
        let engine = &self.inner.rt.matching;
        let key = engine.key_for(args.rank, args.tag, args.policy);
        let entry = MatchEntry::Recv(RecvEntry {
            buf,
            comp,
            user_ctx: args.user_ctx,
            device: self.clone(),
        });
        match engine.insert(key, entry, MatchKind::Recv) {
            None => Ok(PostResult::Posted),
            Some((unexpected, mine)) => {
                let MatchEntry::Recv(recv) = mine else { unreachable!() };
                match unexpected {
                    MatchEntry::UnexpEager { src, tag, data } => {
                        // Deliver synchronously: the operation is done and
                        // the completion object will not be signaled.
                        let (_comp, desc) = self.finish_matched_recv(recv, src, tag, data)?;
                        Ok(PostResult::Done(desc))
                    }
                    MatchEntry::UnexpRts { src, src_dev, tag, send_id, size } => {
                        self.start_rtr(
                            src,
                            src_dev,
                            tag,
                            send_id,
                            size,
                            recv.buf,
                            recv.comp,
                            recv.user_ctx,
                            false,
                        )?;
                        Ok(PostResult::Posted)
                    }
                    MatchEntry::Recv(_) => unreachable!("recv matched recv"),
                }
            }
        }
    }

    /// Copies an unexpected eager payload into a matched receive's
    /// buffer and builds the completion descriptor. This is the one copy
    /// the zero-copy receive path keeps: the user posted their own
    /// buffer, so the data must land there.
    fn finish_matched_recv(
        &self,
        recv: RecvEntry,
        src: Rank,
        tag: Tag,
        data: DataBuf,
    ) -> Result<(Comp, CompDesc)> {
        let mut buf = recv.buf;
        let payload = data.as_slice();
        if payload.len() > buf.len() {
            return Err(FatalError::InvalidArg(format!(
                "receive buffer too small: {} < {}",
                buf.len(),
                payload.len()
            )));
        }
        buf[..payload.len()].copy_from_slice(payload);
        DeviceStats::bump(&self.inner.stats.copied_deliveries);
        let len = payload.len();
        Ok((
            recv.comp,
            CompDesc {
                rank: src,
                tag,
                data: DataBuf::Partial(buf, len),
                user_ctx: recv.user_ctx,
                kind: CompKind::Recv,
            },
        ))
    }

    // ------------------------------------------------------------------
    // Rendezvous plumbing (paper Figure 1, steps 8 & 10)
    // ------------------------------------------------------------------

    /// Target side: register the buffer, record the pending receive, and
    /// answer RTR.
    #[allow(clippy::too_many_arguments)]
    fn start_rtr(
        &self,
        src: Rank,
        src_dev: DevId,
        tag: Tag,
        send_id: u32,
        size: usize,
        buf: Box<[u8]>,
        comp: Comp,
        user_ctx: u64,
        is_am: bool,
    ) -> Result<()> {
        if size > buf.len() {
            return Err(FatalError::InvalidArg(format!(
                "receive buffer too small for rendezvous: {} < {size}",
                buf.len()
            )));
        }
        let mr = self.inner.net.register(buf.as_ptr(), size).map_err(net_fatal)?;
        let recv_id = self.inner.rdv_recvs.lock().insert(RdvRecv {
            buf,
            mr,
            comp,
            user_ctx,
            src,
            tag,
            size,
            is_am,
        });
        let payload = RtrPayload { send_id, recv_id, rkey: mr.rkey.0 }.encode();
        let imm = Header::new(MsgType::Rtr, MatchingPolicy::RankTag, tag, 0).encode();
        match self.inner.net.post_send(src, src_dev, &payload, imm, 0) {
            Ok(()) => Ok(()),
            Err(NetError::Retry(_)) => {
                // The progress engine cannot bounce this to the user:
                // park it in the backlog (paper §4.1.5).
                self.push_backlog(Backlogged::Ctrl {
                    target: src,
                    target_dev: src_dev,
                    payload: payload.to_vec(),
                    imm,
                });
                Ok(())
            }
            Err(NetError::Fatal(m)) => Err(FatalError::Net(m)),
        }
    }

    /// Source side: RTR arrived; fire the RDMA write with FIN immediate.
    fn start_rdv_write(&self, target: Rank, target_dev: DevId, rtr: RtrPayload) -> Result<()> {
        let imm = Header::new(MsgType::Fin, MatchingPolicy::RankTag, 0, rtr.recv_id).encode();
        self.try_rdv_write(target, target_dev, rtr.send_id, Rkey(rtr.rkey), imm)
    }

    /// Attempts the rendezvous data write; parks in the backlog on retry.
    fn try_rdv_write(
        &self,
        target: Rank,
        target_dev: DevId,
        send_id: u32,
        rkey: Rkey,
        imm: u64,
    ) -> Result<()> {
        let ctx = ctx_encode(OpCtx::RdvWrite { send_id });
        let res = {
            let sends = self.inner.rdv_sends.lock();
            let Some(entry) = sends.get(send_id) else {
                // SAFETY: rejected before handoff.
                let _ = unsafe { ctx_decode(ctx) };
                return Err(FatalError::Net(format!("RTR for unknown send id {send_id}")));
            };
            let data: &[u8] = match &entry.flat {
                Some(f) => f,
                None => entry.buf.as_contiguous().expect("contiguous buf"),
            };
            self.inner.net.post_write(target, target_dev, data, rkey, 0, Some(imm), ctx)
        };
        match res {
            Ok(()) => Ok(()),
            Err(NetError::Retry(_)) => {
                // SAFETY: rejected before handoff.
                let _ = unsafe { ctx_decode(ctx) };
                self.push_backlog(Backlogged::RdvWrite { target, target_dev, send_id, rkey, imm });
                Ok(())
            }
            Err(NetError::Fatal(m)) => {
                // SAFETY: rejected before handoff.
                let _ = unsafe { ctx_decode(ctx) };
                Err(FatalError::Net(m))
            }
        }
    }

    // ------------------------------------------------------------------
    // Progress (paper Figure 1, steps 3-8)
    // ------------------------------------------------------------------

    /// Makes progress on this device: drains the backlog, polls the
    /// network, reacts to completions, and replenishes pre-posted
    /// receives. Returns whether any work was done.
    pub fn progress(&self) -> Result<bool> {
        DeviceStats::bump(&self.inner.stats.progress_calls);
        let mut did = false;
        did |= self.drain_backlog()?;
        if self.inner.coalescer.enabled() {
            did |= self.flush_idle_coalesced()?;
        }
        let batch = self.inner.rt.config.progress_batch;
        let mut cqes: Vec<Cqe> = Vec::with_capacity(batch);
        match self.inner.net.poll_cq(&mut cqes, batch) {
            Ok(n) => {
                did |= n > 0;
                for cqe in cqes {
                    self.handle_cqe(cqe)?;
                }
            }
            Err(NetError::Retry(_)) => {
                // Another thread holds the poll lock: it is making
                // progress on our behalf (trylock wrapper, §4.2.2).
                return Ok(did);
            }
            Err(NetError::Fatal(m)) => return Err(FatalError::Net(m)),
        }
        self.replenish_recvs()?;
        if did {
            DeviceStats::bump(&self.inner.stats.progress_useful);
        }
        Ok(did)
    }

    /// Parks a request in the backlog, counting it.
    fn push_backlog(&self, item: Backlogged) {
        DeviceStats::bump(&self.inner.stats.backlogged);
        self.inner.backlog.push(item);
    }

    /// Ships one coalesced frame; a full wire parks it in the backlog
    /// (like any control message the runtime itself must send). A frame
    /// also parks when the backlog is non-empty: an earlier frame may be
    /// waiting there, and frames for one destination must reach the wire
    /// in creation order (the backlog drains FIFO).
    fn post_frame(&self, frame: Frame) -> Result<()> {
        DeviceStats::bump(&self.inner.stats.coalesce_flushes);
        let Frame { target, target_dev, data, count } = frame;
        let imm = Header::new(MsgType::Coalesced, MatchingPolicy::None, 0, count as u32).encode();
        if !self.inner.backlog.is_empty() {
            self.push_backlog(Backlogged::Ctrl { target, target_dev, payload: data, imm });
            return Ok(());
        }
        match self.inner.net.post_send(target, target_dev, &data, imm, 0) {
            Ok(()) => Ok(()),
            Err(NetError::Retry(_)) => {
                self.push_backlog(Backlogged::Ctrl { target, target_dev, payload: data, imm });
                Ok(())
            }
            Err(NetError::Fatal(m)) => Err(FatalError::Net(m)),
        }
    }

    /// Ships every destination's buffer that sat idle for a full
    /// progress epoch (buffers being actively appended to are left to
    /// fill). Returns whether anything shipped.
    fn flush_idle_coalesced(&self) -> Result<bool> {
        let mut did = false;
        self.inner.coalescer.take_idle_with(|frame| {
            did = true;
            self.post_frame(frame)
        })?;
        Ok(did)
    }

    /// Ships every open coalescing buffer now (explicit flush — e.g.
    /// before a termination barrier). Returns whether anything shipped.
    pub fn flush_coalesced(&self) -> Result<bool> {
        let mut did = false;
        self.inner.coalescer.take_all_with(|frame| {
            did = true;
            self.post_frame(frame)
        })?;
        Ok(did)
    }

    /// Sub-messages buffered for coalescing but not yet on the wire.
    /// They need further [`progress`](Device::progress) calls (or an
    /// explicit [`flush_coalesced`](Device::flush_coalesced)) to ship.
    pub fn coalesce_pending(&self) -> usize {
        self.inner.coalescer.pending()
    }

    /// Retries postponed requests (paper Figure 1, step 3). Consecutive
    /// plain sends to one `(target, target_dev)` submit as a single
    /// batched post, amortizing the fabric's posting lock over the run.
    fn drain_backlog(&self) -> Result<bool> {
        if self.inner.backlog.is_empty() {
            return Ok(false);
        }
        let mut did = false;
        loop {
            let mut run = self.inner.backlog.pop_run(BACKLOG_BATCH);
            match run.len() {
                0 => break,
                1 => match run.pop().unwrap() {
                    Backlogged::Ctrl { target, target_dev, payload, imm } => {
                        match self.inner.net.post_send(target, target_dev, &payload, imm, 0) {
                            Ok(()) => did = true,
                            Err(NetError::Retry(_)) => {
                                self.inner.backlog.push_front(Backlogged::Ctrl {
                                    target,
                                    target_dev,
                                    payload,
                                    imm,
                                });
                                break;
                            }
                            Err(NetError::Fatal(m)) => return Err(FatalError::Net(m)),
                        }
                    }
                    Backlogged::RdvWrite { target, target_dev, send_id, rkey, imm } => {
                        // try_rdv_write re-parks on retry.
                        self.try_rdv_write(target, target_dev, send_id, rkey, imm)?;
                        did = true;
                    }
                    Backlogged::UserSend { target, target_dev, data, imm, ctx } => {
                        match self.inner.net.post_send(target, target_dev, &data, imm, ctx) {
                            Ok(()) => did = true,
                            Err(NetError::Retry(_)) => {
                                self.inner.backlog.push_front(Backlogged::UserSend {
                                    target,
                                    target_dev,
                                    data,
                                    imm,
                                    ctx,
                                });
                                break;
                            }
                            Err(NetError::Fatal(m)) => return Err(FatalError::Net(m)),
                        }
                    }
                },
                _ => {
                    // A run of plain sends to one destination (pop_run
                    // guarantees the shape): one batched submission.
                    let (target, target_dev) = match &run[0] {
                        Backlogged::Ctrl { target, target_dev, .. }
                        | Backlogged::UserSend { target, target_dev, .. } => (*target, *target_dev),
                        Backlogged::RdvWrite { .. } => unreachable!("rdv in run"),
                    };
                    let descs: Vec<SendDesc<'_>> = run
                        .iter()
                        .map(|item| match item {
                            Backlogged::Ctrl { payload, imm, .. } => {
                                SendDesc { data: payload, imm: *imm, ctx: 0 }
                            }
                            Backlogged::UserSend { data, imm, ctx, .. } => {
                                SendDesc { data, imm: *imm, ctx: *ctx }
                            }
                            Backlogged::RdvWrite { .. } => unreachable!("rdv in run"),
                        })
                        .collect();
                    match self.inner.net.post_send_batch(target, target_dev, &descs) {
                        Ok(posted) => {
                            drop(descs);
                            did |= posted > 0;
                            DeviceStats::bump(&self.inner.stats.batch_posts);
                            DeviceStats::add(&self.inner.stats.batch_posted_msgs, posted as u64);
                            if posted < run.len() {
                                // Partial progress: the wire filled
                                // mid-batch. Re-park the unposted tail
                                // in order and stop.
                                self.inner.backlog.push_front_run(run.drain(posted..));
                                break;
                            }
                        }
                        Err(NetError::Retry(_)) => {
                            drop(descs);
                            self.inner.backlog.push_front_run(run.into_iter());
                            break;
                        }
                        Err(NetError::Fatal(m)) => return Err(FatalError::Net(m)),
                    }
                }
            }
        }
        Ok(did)
    }

    /// Keeps the shared receive queue stocked (paper Figure 1, step 7).
    ///
    /// Low-watermark hysteresis: while the posted count sits above the
    /// watermark this is one relaxed atomic read and no lock traffic.
    /// Once it falls to the watermark, one [`NetDevice::post_recv_batch`]
    /// call refills back to the prepost target under a single SRQ/
    /// endpoint-lock acquisition — instead of the old per-packet
    /// `post_recv` top-up on every progress call.
    fn replenish_recvs(&self) -> Result<()> {
        let cfg = &self.inner.rt.config;
        let target = cfg.prepost;
        let posted = self.inner.net.posted_recvs();
        if posted > cfg.effective_prepost_watermark() || posted >= target {
            return Ok(());
        }
        let mut packets = Vec::with_capacity(target - posted);
        for _ in 0..target - posted {
            let Some(packet) = self.inner.rt.pool.get() else { break };
            packets.push(packet);
        }
        if packets.is_empty() {
            return Ok(());
        }
        // SAFETY: each packet's slot stays checked out (leaked below)
        // until the receive completion reclaims it.
        let descs: Vec<RecvBufDesc> = packets
            .iter()
            .map(|p| unsafe { RecvBufDesc::new(p.raw_ptr(), p.capacity(), p.index() as u64) })
            .collect();
        match self.inner.net.post_recv_batch(&descs) {
            Ok(n) => {
                DeviceStats::bump(&self.inner.stats.replenish_batches);
                DeviceStats::add(&self.inner.stats.replenish_posted, n as u64);
                for p in packets.drain(..n) {
                    p.leak();
                }
                // The unposted tail (if any) drops back to the pool.
                Ok(())
            }
            // Lock busy: every packet drops back; retry next progress.
            Err(NetError::Retry(_)) => Ok(()),
            Err(NetError::Fatal(m)) => Err(FatalError::Net(m)),
        }
    }

    /// Reacts to one completion (paper Figure 1, steps 4-8).
    fn handle_cqe(&self, cqe: Cqe) -> Result<()> {
        DeviceStats::bump(&self.inner.stats.completions);
        match cqe.kind {
            CqeKind::SendDone | CqeKind::WriteDone | CqeKind::ReadDone => {
                if cqe.ctx == 0 {
                    return Ok(()); // inject / control message
                }
                // SAFETY: ctx was encoded at post time and this is its
                // unique completion.
                let op = unsafe { ctx_decode(cqe.ctx) };
                self.handle_local_completion(*op)
            }
            CqeKind::RecvDone => {
                // SAFETY: receive contexts are leaked packet indices.
                let packet = unsafe { self.inner.rt.pool.reclaim(cqe.ctx as u32, cqe.len) };
                self.handle_incoming(cqe, packet)
            }
            CqeKind::WriteImmRecv => {
                // A pre-posted receive was consumed without data.
                // SAFETY: as above.
                let packet = unsafe { self.inner.rt.pool.reclaim(cqe.ctx as u32, 0) };
                drop(packet); // immediately recycled
                let hdr = Header::decode(cqe.imm)?;
                match hdr.ty {
                    MsgType::Fin => self.handle_fin(hdr.aux),
                    MsgType::PutSignal => self.signal_rcomp(hdr.aux, cqe.src_rank, hdr.tag),
                    other => Err(FatalError::Net(format!("unexpected write-imm type {other:?}"))),
                }
            }
        }
    }

    /// A local (source-side) completion.
    fn handle_local_completion(&self, op: OpCtx) -> Result<()> {
        match op {
            OpCtx::EagerSend { comp, buf, rank, tag, user_ctx } => {
                if let Some(comp) = comp {
                    comp.signal(CompDesc {
                        rank,
                        tag,
                        data: DataBuf::SendBuf(buf),
                        user_ctx,
                        kind: CompKind::Send,
                    });
                }
                Ok(())
            }
            OpCtx::RdvWrite { send_id } => {
                let entry = self
                    .inner
                    .rdv_sends
                    .lock()
                    .remove(send_id)
                    .ok_or_else(|| FatalError::Net("rendezvous send vanished".into()))?;
                if let Some(comp) = entry.comp {
                    comp.signal(CompDesc {
                        rank: entry.rank,
                        tag: entry.tag,
                        data: DataBuf::SendBuf(entry.buf),
                        user_ctx: entry.user_ctx,
                        kind: CompKind::Send,
                    });
                }
                Ok(())
            }
            OpCtx::Put { comp, buf, rank, tag, user_ctx } => {
                if let Some(comp) = comp {
                    comp.signal(CompDesc {
                        rank,
                        tag,
                        data: DataBuf::SendBuf(buf),
                        user_ctx,
                        kind: CompKind::Put,
                    });
                }
                Ok(())
            }
            OpCtx::Get { comp, buf, rank, tag, user_ctx, signal } => {
                if let Some((target_dev, rcomp)) = signal {
                    // Get-with-signal: notify the target that its data was
                    // read (extension; see proto docs).
                    let imm = Header::new(MsgType::GetSignal, MatchingPolicy::RankTag, tag, rcomp)
                        .encode();
                    match self.inner.net.post_send(rank, target_dev, &[], imm, 0) {
                        Ok(()) => {}
                        Err(NetError::Retry(_)) => self.push_backlog(Backlogged::Ctrl {
                            target: rank,
                            target_dev,
                            payload: Vec::new(),
                            imm,
                        }),
                        Err(NetError::Fatal(m)) => return Err(FatalError::Net(m)),
                    }
                }
                if let Some(comp) = comp {
                    comp.signal(CompDesc {
                        rank,
                        tag,
                        data: DataBuf::Owned(buf),
                        user_ctx,
                        kind: CompKind::Get,
                    });
                }
                Ok(())
            }
        }
    }

    /// An incoming message delivered into `packet` (paper Figure 1,
    /// steps 5-6).
    fn handle_incoming(&self, cqe: Cqe, packet: Packet) -> Result<()> {
        let hdr = Header::decode(cqe.imm)?;
        match hdr.ty {
            MsgType::Eager | MsgType::EagerAm => {
                let len = cqe.len;
                self.deliver_eager(cqe.src_rank, hdr, DataBuf::Packet(packet, len))
            }
            MsgType::RtsSr => {
                let rts = RtsPayload::decode(&packet.as_slice()[..cqe.len])?;
                drop(packet);
                let engine = &self.inner.rt.matching;
                let key = engine.key_for(cqe.src_rank, hdr.tag, hdr.policy);
                let entry = MatchEntry::UnexpRts {
                    src: cqe.src_rank,
                    src_dev: cqe.src_dev,
                    tag: hdr.tag,
                    send_id: rts.send_id,
                    size: rts.size as usize,
                };
                if let Some((matched, _mine)) = engine.insert(key, entry, MatchKind::Send) {
                    let MatchEntry::Recv(recv) = matched else {
                        return Err(FatalError::Net("RTS matched non-recv".into()));
                    };
                    recv.device.clone().start_rtr(
                        cqe.src_rank,
                        cqe.src_dev,
                        hdr.tag,
                        rts.send_id,
                        rts.size as usize,
                        recv.buf,
                        recv.comp,
                        recv.user_ctx,
                        false,
                    )?;
                }
                Ok(())
            }
            MsgType::RtsAm => {
                let rts = RtsPayload::decode(&packet.as_slice()[..cqe.len])?;
                drop(packet);
                let comp = self
                    .inner
                    .rt
                    .rcomp
                    .read(hdr.aux as usize)
                    .ok_or_else(|| FatalError::Net(format!("unknown rcomp {}", hdr.aux)))?;
                let buf = vec![0u8; rts.size as usize].into_boxed_slice();
                self.start_rtr(
                    cqe.src_rank,
                    cqe.src_dev,
                    hdr.tag,
                    rts.send_id,
                    rts.size as usize,
                    buf,
                    comp,
                    0,
                    true,
                )
            }
            MsgType::Rtr => {
                let rtr = RtrPayload::decode(&packet.as_slice()[..cqe.len])?;
                drop(packet);
                self.start_rdv_write(cqe.src_rank, cqe.src_dev, rtr)
            }
            MsgType::GetSignal => {
                drop(packet);
                self.signal_rcomp(hdr.aux, cqe.src_rank, hdr.tag)
            }
            MsgType::Coalesced => {
                let subs = coalesce_unpack_ranges(&packet.as_slice()[..cqe.len])?;
                if hdr.aux as usize != subs.len() {
                    return Err(FatalError::Net(format!(
                        "coalesced frame count mismatch: header {} vs {}",
                        hdr.aux,
                        subs.len()
                    )));
                }
                if self.inner.rt.config.zero_copy_recv {
                    // Zero-copy demux: the frame packet becomes a shared
                    // refcounted buffer and every sub-message is handed
                    // out as a view into it; the slot returns to the pool
                    // when the last view drops.
                    let shared = packet.into_shared();
                    for (sub_imm, r) in subs {
                        let view = shared.view(r.start, r.end - r.start);
                        let hdr = Header::decode(sub_imm)?;
                        self.deliver_eager(cqe.src_rank, hdr, DataBuf::View(view))?;
                    }
                } else {
                    // Ablation path (PR-1 behaviour): copy every
                    // sub-payload out into an owned buffer.
                    for (sub_imm, r) in subs {
                        let data: Box<[u8]> = packet.as_slice()[r].into();
                        let hdr = Header::decode(sub_imm)?;
                        self.deliver_eager(cqe.src_rank, hdr, DataBuf::Owned(data))?;
                    }
                }
                Ok(())
            }
            MsgType::Fin | MsgType::PutSignal => {
                Err(FatalError::Net(format!("{:?} must arrive as write-immediate", hdr.ty)))
            }
        }
    }

    /// Delivers one eager payload — a standalone arrival (packet-backed)
    /// or one sub-message of a coalesced frame (view-backed, or an owned
    /// copy when zero-copy delivery is disabled) — through the matching
    /// engine (two-sided) or rcomp signaling (active message). The
    /// payload is parked as-is on a miss; no copy happens until (unless)
    /// a user-posted receive buffer consumes it.
    fn deliver_eager(&self, src: Rank, hdr: Header, data: DataBuf) -> Result<()> {
        match hdr.ty {
            MsgType::Eager => {
                let engine = &self.inner.rt.matching;
                let key = engine.key_for(src, hdr.tag, hdr.policy);
                let entry = MatchEntry::UnexpEager { src, tag: hdr.tag, data };
                if let Some((matched, mine)) = engine.insert(key, entry, MatchKind::Send) {
                    DeviceStats::bump(&self.inner.stats.matched);
                    let MatchEntry::Recv(recv) = matched else {
                        return Err(FatalError::Net("eager matched non-recv".into()));
                    };
                    let MatchEntry::UnexpEager { src, tag, data } = mine else { unreachable!() };
                    let (comp, desc) = self.finish_matched_recv(recv, src, tag, data)?;
                    comp.signal(desc);
                }
                Ok(())
            }
            MsgType::EagerAm => {
                let comp = self
                    .inner
                    .rt
                    .rcomp
                    .read(hdr.aux as usize)
                    .ok_or_else(|| FatalError::Net(format!("unknown rcomp {}", hdr.aux)))?;
                match &data {
                    DataBuf::Packet(..) | DataBuf::View(_) => {
                        DeviceStats::bump(&self.inner.stats.zero_copy_deliveries);
                    }
                    _ => DeviceStats::bump(&self.inner.stats.copied_deliveries),
                }
                comp.signal(CompDesc {
                    rank: src,
                    tag: hdr.tag,
                    data,
                    user_ctx: 0,
                    kind: CompKind::Am,
                });
                Ok(())
            }
            other => Err(FatalError::Net(format!("invalid eager payload type {other:?}"))),
        }
    }

    /// Target side of the rendezvous FIN: deliver the buffer.
    fn handle_fin(&self, recv_id: u32) -> Result<()> {
        let entry = self
            .inner
            .rdv_recvs
            .lock()
            .remove(recv_id)
            .ok_or_else(|| FatalError::Net(format!("FIN for unknown recv id {recv_id}")))?;
        self.inner.net.deregister(&entry.mr).map_err(net_fatal)?;
        entry.comp.signal(CompDesc {
            rank: entry.src,
            tag: entry.tag,
            data: DataBuf::Partial(entry.buf, entry.size),
            user_ctx: entry.user_ctx,
            kind: if entry.is_am { CompKind::Am } else { CompKind::Recv },
        });
        Ok(())
    }

    /// Signals a registered remote-completion object.
    fn signal_rcomp(&self, rcomp: u32, src: Rank, tag: Tag) -> Result<()> {
        let comp = self
            .inner
            .rt
            .rcomp
            .read(rcomp as usize)
            .ok_or_else(|| FatalError::Net(format!("unknown rcomp {rcomp}")))?;
        comp.signal(CompDesc {
            rank: src,
            tag,
            data: DataBuf::Empty,
            user_ctx: 0,
            kind: CompKind::RemoteSignal,
        });
        Ok(())
    }

    /// Backlog depth (diagnostics).
    pub fn backlog_len(&self) -> usize {
        self.inner.backlog.len()
    }

    /// Pending rendezvous operations (diagnostics).
    pub fn pending_rendezvous(&self) -> (usize, usize) {
        (self.inner.rdv_sends.lock().len(), self.inner.rdv_recvs.lock().len())
    }
}

impl Drop for DeviceInner {
    fn drop(&mut self) {
        // Reclaim everything still checked out to the fabric so packet
        // and context memory is returned: undelivered completions carry
        // either a packet index (receive side) or a boxed OpCtx (local
        // side); still-posted receives carry packet indices.
        let (cqes, descs) = self.net.teardown();
        for cqe in cqes {
            match cqe.kind {
                CqeKind::RecvDone | CqeKind::WriteImmRecv => {
                    // SAFETY: receive contexts are leaked packet indices.
                    drop(unsafe { self.rt.pool.reclaim(cqe.ctx as u32, 0) });
                }
                CqeKind::SendDone | CqeKind::WriteDone | CqeKind::ReadDone => {
                    if cqe.ctx != 0 {
                        // SAFETY: nonzero local contexts are unique boxed
                        // OpCtx pointers.
                        drop(unsafe { ctx_decode(cqe.ctx) });
                    }
                }
            }
        }
        for d in descs {
            // SAFETY: posted receives are leaked packet indices.
            drop(unsafe { self.rt.pool.reclaim(d.ctx as u32, 0) });
        }
    }
}

impl std::fmt::Debug for Device {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Device")
            .field("rank", &self.rank())
            .field("dev_id", &self.dev_id())
            .finish()
    }
}

fn net_fatal(e: NetError) -> FatalError {
    match e {
        NetError::Fatal(m) => FatalError::Net(m),
        NetError::Retry(r) => FatalError::Net(format!("unexpected retry: {r:?}")),
    }
}
