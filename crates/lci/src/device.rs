//! Devices and the progress engine (paper §3.2.3, §3.2.6, §4.4).
//!
//! A device encapsulates a complete set of low-level network resources;
//! threads operating on different devices never interfere. This module
//! also hosts the runtime's data path: the generic posting operation
//! behind `post_comm` and the explicit progress function that drives the
//! backlog queue, polls the network, reacts to completions (matching,
//! rendezvous, signaling) and replenishes pre-posted receives — steps
//! (1)-(11) of the paper's Figure 1.

use crate::backlog::{Backlog, Backlogged};
use crate::coalesce::{Coalescer, Frame};
use crate::comp::Comp;
use crate::ctx_pool::CtxPool;
use crate::error::{FatalError, PostResult, Result};
use crate::matching::MatchKind;
use crate::packet_pool::Packet;
use crate::proto::{coalesce_unpack_ranges, Header, MsgType, RtrPayload, RtsPayload};
use crate::runtime::RuntimeInner;
use crate::stats::DeviceStats;
use crate::types::{
    CompDesc, CompKind, DataBuf, Direction, MatchingPolicy, RComp, Rank, SendBuf, Tag,
};
use crate::util::ShardedSlab;
use lci_fabric::sync::{Doorbell, SpinLock};
use lci_fabric::{
    BufPool, Cqe, CqeKind, DevId, MemoryRegion, NetDevice, NetError, PoolBuf, RecvBufDesc, Rkey,
    SendDesc,
};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

/// Longest run of backlogged sends submitted as one fabric batch.
const BACKLOG_BATCH: usize = 32;

/// Completed [`RdvActive`] shells kept per device for reuse.
const RDV_REUSE_CAP: usize = 32;

/// Entries stored in the matching engine.
pub(crate) enum MatchEntry {
    /// An unexpected eager message. The payload is parked without
    /// copying whenever possible: a whole packet for standalone
    /// arrivals, a refcounted [`crate::PacketView`] for sub-messages of
    /// a coalesced frame (an owned copy only when zero-copy delivery is
    /// disabled).
    UnexpEager { src: Rank, tag: Tag, data: DataBuf },
    /// An unexpected rendezvous RTS.
    UnexpRts { src: Rank, src_dev: DevId, tag: Tag, send_id: u32, size: usize },
    /// A posted receive.
    Recv(RecvEntry),
}

/// A posted receive waiting in the matching engine.
pub(crate) struct RecvEntry {
    pub buf: Box<[u8]>,
    pub comp: Comp,
    pub user_ctx: u64,
    /// The device whose resources serve this receive's rendezvous reply.
    pub device: Device,
}

/// A pending zero-copy send (RTS issued, waiting for RTR). Non-contiguous
/// payloads are *not* flattened here: the chunk pump gathers them
/// per-chunk into a scratch ring once the transfer goes active.
struct RdvSend {
    buf: SendBuf,
    comp: Option<Comp>,
    tag: Tag,
    user_ctx: u64,
}

/// An active pipelined rendezvous send: RTR received, chunks being
/// written (DESIGN.md §4.6). All continuation state lives here — per
/// transfer, behind its own lock — so the chunk-completion hot path
/// acquires no table locks.
pub(crate) struct RdvActive {
    target: Rank,
    target_dev: DevId,
    rkey: Rkey,
    /// FIN immediate; rides the last chunk's write.
    fin_imm: u64,
    total: usize,
    chunk: usize,
    nchunks: usize,
    max_inflight: usize,
    tag: Tag,
    user_ctx: u64,
    /// Chunks posted but not yet completed.
    inflight: AtomicUsize,
    pump: SpinLock<RdvPump>,
}

/// Cursor and buffers of one transfer's chunk pump.
struct RdvPump {
    buf: Option<SendBuf>,
    comp: Option<Comp>,
    /// Next byte offset to post.
    next: usize,
    /// Chunks whose completion has been handled.
    done: usize,
    /// Iovec gather cursor: segment index, offset within segment.
    seg: usize,
    seg_off: usize,
    /// Reusable gather ring for non-contiguous payloads, one slot per
    /// inflight window position; empty for contiguous payloads.
    scratch: Vec<ScratchSlot>,
}

/// One gather buffer of the scratch ring.
#[derive(Default)]
struct ScratchSlot {
    /// Pool-recycled gather buffer; survives transfer recycling, so
    /// repeated iovec rendezvous reuses the same storage.
    buf: Option<PoolBuf>,
    /// Owned by an in-flight chunk write; reusable after its CQE.
    busy: bool,
}

#[cfg(test)]
impl RdvActive {
    /// A dummy transfer for backlog unit tests.
    pub(crate) fn test_stub() -> Self {
        RdvActive {
            target: 0,
            target_dev: 0,
            rkey: Rkey(0),
            fin_imm: 0,
            total: 0,
            chunk: 1,
            nchunks: 0,
            max_inflight: 1,
            tag: 0,
            user_ctx: 0,
            inflight: AtomicUsize::new(0),
            pump: SpinLock::new(RdvPump {
                buf: None,
                comp: None,
                next: 0,
                done: 0,
                seg: 0,
                seg_off: 0,
                scratch: Vec::new(),
            }),
        }
    }
}

/// Copies `out.len()` bytes out of `segs` starting at the (`seg`,
/// `seg_off`) cursor, advancing the cursor.
fn gather_iovec(segs: &[Box<[u8]>], seg: &mut usize, seg_off: &mut usize, out: &mut [u8]) {
    let mut filled = 0;
    while filled < out.len() {
        let s = &segs[*seg];
        let avail = s.len() - *seg_off;
        if avail == 0 {
            *seg += 1;
            *seg_off = 0;
            continue;
        }
        let take = avail.min(out.len() - filled);
        out[filled..filled + take].copy_from_slice(&s[*seg_off..*seg_off + take]);
        filled += take;
        *seg_off += take;
    }
}

/// Landing buffer of a rendezvous receive: the user's posted buffer
/// (two-sided) or a pool-recycled bounce buffer (unexpected AM
/// rendezvous, where the runtime must provide the storage itself).
enum RdvBuf {
    Owned(Box<[u8]>),
    Pooled(PoolBuf),
}

impl RdvBuf {
    fn as_ptr(&self) -> *const u8 {
        match self {
            RdvBuf::Owned(b) => b.as_ptr(),
            RdvBuf::Pooled(b) => b.as_ptr(),
        }
    }

    fn len(&self) -> usize {
        match self {
            RdvBuf::Owned(b) => b.len(),
            RdvBuf::Pooled(b) => b.len(),
        }
    }

    /// Converts into the completion-descriptor payload carrying the
    /// first `len` delivered bytes.
    fn into_databuf(self, len: usize) -> DataBuf {
        match self {
            RdvBuf::Owned(b) => DataBuf::Partial(b, len),
            RdvBuf::Pooled(b) => DataBuf::Pooled(b, len),
        }
    }
}

/// A pending zero-copy receive (RTR issued, waiting for FIN).
struct RdvRecv {
    buf: RdvBuf,
    mr: MemoryRegion,
    comp: Comp,
    user_ctx: u64,
    src: Rank,
    tag: Tag,
    size: usize,
    is_am: bool,
}

/// Per-operation context travelling through the fabric's completion
/// context field — a generation-tagged [`CtxPool`] id in the recycling
/// steady state (low bit set), or a raw `Box` pointer under the
/// allocation-recycling ablation opt-out (low bit clear: boxes are at
/// least 8-aligned).
enum OpCtx {
    EagerSend {
        comp: Option<Comp>,
        buf: SendBuf,
        rank: Rank,
        tag: Tag,
        user_ctx: u64,
    },
    RdvChunk {
        active: Arc<RdvActive>,
        /// Scratch-ring slot this chunk's gather copy occupies (iovec
        /// payloads only); freed when the chunk completes.
        slot: Option<usize>,
    },
    Put {
        comp: Option<Comp>,
        buf: SendBuf,
        rank: Rank,
        tag: Tag,
        user_ctx: u64,
    },
    Get {
        comp: Option<Comp>,
        buf: Box<[u8]>,
        rank: Rank,
        tag: Tag,
        user_ctx: u64,
        signal: Option<(DevId, RComp)>,
    },
}

/// Reusable buffers of one device's receive-replenish path: the packet
/// batch pulled from the pool and the descriptor array handed to
/// `post_recv_batch`. Persisted across refills so the steady state
/// allocates neither.
#[derive(Default)]
struct ReplenishScratch {
    packets: Vec<Packet>,
    descs: Vec<RecvBufDesc>,
}

pub(crate) struct DeviceInner {
    pub rt: Arc<RuntimeInner>,
    pub net: Arc<dyn NetDevice>,
    backlog: Backlog,
    coalescer: Coalescer,
    rdv_sends: ShardedSlab<RdvSend>,
    rdv_recvs: ShardedSlab<RdvRecv>,
    /// Transfers past RTR (chunks in flight): no longer in `rdv_sends`
    /// but not yet complete. Keeps `pending_rendezvous` (and lcw
    /// quiescence) truthful.
    rdv_active: AtomicUsize,
    /// Recycled staging-buffer pool shared with the fabric device (eager
    /// staging, coalesced frames, rendezvous scratch, bounce buffers).
    buf_pool: BufPool,
    /// Allocation-recycling master switch (`RuntimeConfig::
    /// alloc_recycling`). Off = the allocate-per-operation ablation:
    /// boxed op contexts, detached buffers, no transfer-shell reuse.
    recycle: bool,
    /// Pooled per-operation contexts (replaces a Box per post).
    ctx_pool: CtxPool<OpCtx>,
    /// Reusable CQE array for `progress` polls.
    cqe_scratch: SpinLock<Vec<Cqe>>,
    /// Reusable batch buffers for `replenish_recvs`.
    replenish_scratch: SpinLock<ReplenishScratch>,
    /// Completed rendezvous-transfer shells awaiting reuse (bounded by
    /// [`RDV_REUSE_CAP`]).
    rdv_reuse: SpinLock<Vec<Arc<RdvActive>>>,
    /// This device's doorbell (cached from the fabric device): rung on
    /// wire delivery, local completion staging, and worker-side backlog
    /// parking, it wakes the parked progress thread that owns this
    /// device (see [`crate::progress`]).
    bell: Option<Arc<Doorbell>>,
    /// Whether a dedicated progress thread currently polls this device
    /// (it is awake, not parked). Hybrid-mode workers skip stealing
    /// progress while this is set.
    dedicated_active: AtomicBool,
    /// Inbound deliveries whose target rcomp was not registered yet,
    /// parked for retry on later progress calls. The rcomp table is
    /// append-only, so a failed lookup always means "not yet" — a race
    /// an auto-spawned progress engine makes real (it can poll a wire
    /// message in before the application finishes registering handlers).
    pending_inbound: SpinLock<Vec<PendingInbound>>,
    /// Per-core operation counters; `pub(crate)` so the collectives
    /// layer can attribute its rounds/bytes/inflight marks to the
    /// device that carried them.
    pub(crate) stats: DeviceStats,
}

/// An inbound delivery parked until its rcomp is registered (see
/// [`DeviceInner::pending_inbound`]).
enum PendingInbound {
    /// An eager active message.
    EagerAm { rcomp: u32, src: Rank, tag: Tag, data: DataBuf },
    /// An AM-rendezvous RTS (the RTR is sent once the rcomp exists).
    RtsAm { rcomp: u32, src: Rank, src_dev: DevId, tag: Tag, send_id: u32, size: usize },
    /// A remote completion signal.
    RemoteSignal { rcomp: u32, src: Rank, tag: Tag },
}

impl PendingInbound {
    fn rcomp(&self) -> u32 {
        match self {
            PendingInbound::EagerAm { rcomp, .. }
            | PendingInbound::RtsAm { rcomp, .. }
            | PendingInbound::RemoteSignal { rcomp, .. } => *rcomp,
        }
    }
}

impl DeviceInner {
    /// Encodes a per-operation context for the fabric's 64-bit ctx
    /// field: a generation-tagged pool id (odd) in the recycling steady
    /// state, a boxed pointer (even) under the ablation opt-out.
    fn ctx_encode(&self, op: OpCtx) -> u64 {
        if self.recycle {
            self.ctx_pool.insert(op)
        } else {
            let ptr = Box::into_raw(Box::new(op)) as u64;
            debug_assert_eq!(ptr & 1, 0, "Box pointers are at least 8-aligned");
            ptr
        }
    }

    /// Decodes (and consumes) a context produced by [`Self::ctx_encode`].
    /// A pooled context that fails the generation check — a stale or
    /// double decode, the pooled analogue of a use-after-free — is
    /// reported as a fatal error instead of corrupting another operation.
    ///
    /// # Safety
    /// `ctx` must come from [`Self::ctx_encode`] on this device and be
    /// decoded at most once if it is a boxed (even) context.
    unsafe fn ctx_decode(&self, ctx: u64) -> Result<OpCtx> {
        if ctx & 1 == 1 {
            self.ctx_pool
                .remove(ctx)
                .ok_or_else(|| FatalError::Net(format!("stale or double-decoded op ctx {ctx:#x}")))
        } else {
            // SAFETY: even contexts are unique boxed OpCtx pointers per
            // this function's contract.
            Ok(*unsafe { Box::from_raw(ctx as *mut OpCtx) })
        }
    }

    /// Stages a send payload into one contiguous recycled buffer — the
    /// buffer-copy protocol's one staging copy, without its allocation.
    fn stage_payload(&self, buf: &SendBuf) -> PoolBuf {
        match buf.as_contiguous() {
            Some(data) => self.buf_pool.stage_copy(data),
            None => {
                let SendBuf::Iovec(segs) = buf else {
                    unreachable!("non-contiguous SendBuf is Iovec")
                };
                let mut out = self.buf_pool.take_empty(buf.len());
                for seg in segs.iter() {
                    out.vec_mut().extend_from_slice(seg);
                }
                out
            }
        }
    }
}

/// A communication device handle (cheap to clone, `Send + Sync`).
#[derive(Clone)]
pub struct Device {
    pub(crate) inner: Arc<DeviceInner>,
}

/// Queryable device attributes (paper §3.2.3).
#[derive(Clone, Copy, Debug)]
pub struct DeviceAttr {
    /// Fabric-wide device index on its rank.
    pub dev_id: DevId,
    /// Simulated provider backing the device.
    pub backend: lci_fabric::BackendKind,
    /// Thread-domain strategy (the `ibv_td_strategy` attribute, §4.2.3).
    pub td_strategy: lci_fabric::TdStrategy,
    /// Inbound flow-control window.
    pub rx_capacity: usize,
    /// Pre-posted receive target.
    pub prepost_target: usize,
}

/// Arguments of the generic communication-posting operation
/// (assembled by the builders in [`crate::post`]).
pub(crate) struct CommArgs {
    pub direction: Direction,
    pub rank: Rank,
    pub send_buf: Option<SendBuf>,
    pub recv_buf: Option<Box<[u8]>>,
    pub tag: Tag,
    pub comp: Option<Comp>,
    pub remote_buf: Option<(Rkey, usize)>,
    pub remote_comp: Option<RComp>,
    pub policy: MatchingPolicy,
    pub target_dev: Option<DevId>,
    pub user_ctx: u64,
    pub allow_retry: bool,
    pub allow_coalescing: bool,
}

impl Device {
    pub(crate) fn create(rt: Arc<RuntimeInner>) -> Result<Device> {
        let recycle = rt.config.alloc_recycling;
        let mut dev_cfg = rt.config.device;
        if !recycle {
            // The master switch overrides the fabric-level pool too, so
            // one flag yields the full allocate-per-operation ablation.
            dev_cfg.buf_pool.enabled = false;
        }
        let net = rt.netctx.create_device(dev_cfg);
        // Share the fabric device's pool so the whole data path recycles
        // through one set of shelves.
        let buf_pool = net.buf_pool().unwrap_or_else(|| BufPool::new(dev_cfg.buf_pool));
        let coalescer = Coalescer::new(rt.config.coalesce, rt.fabric.nranks(), buf_pool.clone());
        let shards = rt.config.rdv_shards;
        let batch = rt.config.progress_batch;
        let stat_stripes = rt.config.placement.stripes();
        let bell = net.doorbell();
        let dev = Device {
            inner: Arc::new(DeviceInner {
                rt,
                net,
                backlog: Backlog::new(),
                coalescer,
                rdv_sends: ShardedSlab::new(shards),
                rdv_recvs: ShardedSlab::new(shards),
                rdv_active: AtomicUsize::new(0),
                buf_pool,
                recycle,
                ctx_pool: CtxPool::new(shards),
                cqe_scratch: SpinLock::new(Vec::with_capacity(batch)),
                replenish_scratch: SpinLock::new(ReplenishScratch::default()),
                rdv_reuse: SpinLock::new(Vec::new()),
                bell,
                dedicated_active: AtomicBool::new(false),
                pending_inbound: SpinLock::new(Vec::new()),
                stats: DeviceStats::with_stripes(stat_stripes),
            }),
        };
        // Register in the runtime's device registry (weak: DeviceInner
        // holds the runtime strongly) and wake any parked progress
        // threads so the new device's owner subscribes to its doorbell.
        dev.inner.rt.devices.push(Arc::downgrade(&dev.inner));
        dev.inner.rt.progress.ring_all();
        // Stock the shared receive queue so peers can start immediately.
        dev.replenish_recvs()?;
        Ok(dev)
    }

    /// The owning rank.
    pub fn rank(&self) -> Rank {
        self.inner.rt.rank
    }

    /// This device's fabric-wide index on its rank.
    pub fn dev_id(&self) -> DevId {
        self.inner.net.dev_id()
    }

    /// Queries the device's attributes (paper §3.2.3: resources have
    /// queryable attribute lists).
    pub fn attr(&self) -> DeviceAttr {
        let cfg = self.inner.net.config();
        DeviceAttr {
            dev_id: self.inner.net.dev_id(),
            backend: cfg.backend,
            td_strategy: cfg.td_strategy,
            rx_capacity: cfg.rx_capacity,
            prepost_target: self.inner.rt.config.prepost,
        }
    }

    /// The device's recycled staging-buffer pool (shared with the
    /// fabric device) — for per-stripe diagnostics and placement tests.
    pub fn buf_pool(&self) -> &BufPool {
        &self.inner.buf_pool
    }

    /// Snapshot of this device's operation counters, with the fabric
    /// registration-cache and buffer-pool counters overlaid.
    pub fn stats(&self) -> crate::stats::StatsSnapshot {
        let mut s = self.inner.stats.snapshot();
        let rc = self.inner.net.reg_cache_stats();
        s.reg_cache_hits = rc.hits;
        s.reg_cache_misses = rc.misses;
        s.reg_cache_evictions = rc.evictions;
        let bp = self.inner.buf_pool.stats();
        s.buf_pool_hits = bp.hits;
        s.buf_pool_local_hits = bp.local_hits;
        s.buf_pool_steals = bp.steals;
        s.buf_pool_misses = bp.misses;
        s.buf_pool_recycled_bytes = bp.recycled_bytes;
        s.matching_contended = self.inner.rt.matching.contended();
        s.doorbell_rings = self.inner.bell.as_ref().map_or(0, |b| b.rings());
        let ts = self.inner.net.transport_stats();
        s.shm_ring_hwm = ts.shm_ring_hwm;
        s.doorbell_cross_proc_wakes = ts.doorbell_cross_proc_wakes;
        s.tcp_writev_calls = ts.tcp_writev_calls;
        s.tcp_writev_frames = ts.tcp_writev_frames;
        s
    }

    /// Registers memory for remote access (paper §3.3.1: mandatory for
    /// remote buffers, optional for local ones).
    pub fn register_memory(&self, buf: &[u8]) -> Result<MemoryRegion> {
        self.inner.net.register(buf.as_ptr(), buf.len()).map_err(net_fatal)
    }

    /// Deregisters a memory region.
    ///
    /// With the registration cache enabled (the default), deregistration
    /// is **deferred**: the registration stays cached (and the rkey stays
    /// valid for remote access) until the cache evicts it, so a remote
    /// Put/Get racing with deregistration does not fault. Build the
    /// device with
    /// [`with_reg_cache(false)`](lci_fabric::DeviceConfig::with_reg_cache)
    /// for strict deregister-now semantics.
    pub fn deregister_memory(&self, mr: &MemoryRegion) -> Result<()> {
        self.inner.net.deregister(mr).map_err(net_fatal)
    }

    // ------------------------------------------------------------------
    // Posting (paper Figure 1, steps 1-2)
    // ------------------------------------------------------------------

    /// The generic communication-posting operation (`post_comm`).
    pub(crate) fn post_comm(&self, args: CommArgs) -> Result<PostResult> {
        let res = self.post_comm_inner(args);
        if let Ok(r) = &res {
            if r.is_retry() {
                self.inner.stats.bump(|c| &c.retries);
            } else {
                self.inner.stats.bump(|c| &c.posts);
            }
        }
        res
    }

    fn post_comm_inner(&self, args: CommArgs) -> Result<PostResult> {
        match (args.direction, args.remote_buf.is_some(), args.remote_comp.is_some()) {
            (Direction::Out, false, false) => self.post_send_impl(args, None),
            (Direction::Out, false, true) => {
                let rcomp = args.remote_comp.unwrap();
                self.post_send_impl(args, Some(rcomp))
            }
            (Direction::Out, true, _) => self.post_put_impl(args),
            (Direction::In, false, false) => self.post_recv_impl(args),
            (Direction::In, false, true) => Err(FatalError::InvalidArg(
                "a receive with a remote completion is invalid (paper Table 1)".into(),
            )),
            (Direction::In, true, _) => self.post_get_impl(args),
        }
    }

    /// Send / active message (eager or rendezvous by size).
    fn post_send_impl(&self, args: CommArgs, rcomp: Option<RComp>) -> Result<PostResult> {
        let cfg = &self.inner.rt.config;
        let buf = args
            .send_buf
            .ok_or_else(|| FatalError::InvalidArg("send requires a local buffer".into()))?;
        let size = buf.len();
        let target_dev = args.target_dev.unwrap_or_else(|| self.dev_id());

        let coal = &self.inner.coalescer;
        let coalescable = coal.enabled()
            && args.allow_coalescing
            && size <= cfg.eager_size
            && coal.eligible(size);
        if coal.enabled() && !coalescable {
            // A non-coalesced message must not overtake sub-messages
            // already buffered for this destination (FIFO per
            // destination, which per-(rank, tag) matching order relies
            // on): flush the destination first.
            coal.take_with(args.rank, target_dev, |frame| self.post_frame(frame))?;
        }

        if size > cfg.eager_size {
            return self.post_rendezvous(
                args.rank,
                target_dev,
                buf,
                args.tag,
                args.comp,
                args.policy,
                args.user_ctx,
                rcomp,
                args.allow_retry,
            );
        }

        let (ty, aux) = match rcomp {
            Some(rc) => (MsgType::EagerAm, rc),
            None => (MsgType::Eager, 0),
        };
        let imm = Header::new(ty, args.policy, args.tag, aux).encode();

        if coalescable {
            // Coalescing path: absorb the message into the destination's
            // aggregation buffer. Like inject, the operation is done at
            // return and the completion object is *not* signaled.
            // Contiguous buffers append without the flatten staging copy.
            match buf.as_contiguous() {
                Some(data) => {
                    coal.append_with(args.rank, target_dev, imm, data, |frame| {
                        self.post_frame(frame)
                    })?;
                }
                None => {
                    let data = self.inner.stage_payload(&buf);
                    coal.append_with(args.rank, target_dev, imm, &data, |frame| {
                        self.post_frame(frame)
                    })?;
                }
            }
            self.inner.stats.bump(|c| &c.coalesced_msgs);
            return Ok(PostResult::Done(CompDesc {
                rank: args.rank,
                tag: args.tag,
                data: DataBuf::SendBuf(buf),
                user_ctx: args.user_ctx,
                kind: if rcomp.is_some() { CompKind::Am } else { CompKind::Send },
            }));
        }

        if size <= cfg.inject_size {
            // Inject protocol: completes immediately; the completion
            // object is *not* signaled (paper §3.2.5 "done"). Contiguous
            // buffers post without the flatten staging copy.
            let res = match buf.as_contiguous() {
                Some(data) => self.inner.net.post_send(args.rank, target_dev, data, imm, 0),
                None => {
                    let data = self.inner.stage_payload(&buf);
                    self.inner.net.post_send(args.rank, target_dev, &data, imm, 0)
                }
            };
            match res {
                Ok(()) => {
                    return Ok(PostResult::Done(CompDesc {
                        rank: args.rank,
                        tag: args.tag,
                        data: DataBuf::SendBuf(buf),
                        user_ctx: args.user_ctx,
                        kind: if rcomp.is_some() { CompKind::Am } else { CompKind::Send },
                    }));
                }
                Err(NetError::Retry(r)) if args.allow_retry => {
                    return Ok(PostResult::Retry(r.into()));
                }
                Err(NetError::Retry(_)) => {
                    // Retry disallowed: degrade to the posted path below,
                    // which parks the request in the backlog and signals
                    // the completion object when it eventually ships.
                }
                Err(NetError::Fatal(m)) => return Err(FatalError::Net(m)),
            }
        }

        // Buffer-copy protocol: stage through the fabric; the send buffer
        // comes back with the completion.
        let data = self.inner.stage_payload(&buf);
        let ctx = self.inner.ctx_encode(OpCtx::EagerSend {
            comp: args.comp.clone(),
            buf,
            rank: args.rank,
            tag: args.tag,
            user_ctx: args.user_ctx,
        });
        match self.inner.net.post_send(args.rank, target_dev, &data, imm, ctx) {
            Ok(()) => Ok(PostResult::Posted),
            Err(e) => {
                match e {
                    NetError::Retry(r) if args.allow_retry => {
                        // Back out: reclaim the context and hand the
                        // buffer back through the retry descriptor path
                        // (caller resubmits with the same buffer).
                        // SAFETY: the fabric rejected the post, so the
                        // context was never handed over.
                        let _op = unsafe { self.inner.ctx_decode(ctx) }?;
                        Ok(PostResult::Retry(r.into()))
                    }
                    NetError::Retry(_) => {
                        // Retry disallowed: park the flattened payload in
                        // the backlog; the in-flight context (with the
                        // original buffer and completion) is posted when
                        // the wire frees up (paper §4.4).
                        self.push_backlog(Backlogged::UserSend {
                            target: args.rank,
                            target_dev,
                            data,
                            imm,
                            ctx,
                        });
                        Ok(PostResult::Posted)
                    }
                    NetError::Fatal(m) => {
                        // SAFETY: rejected post; context never handed over.
                        let _op = unsafe { self.inner.ctx_decode(ctx) }?;
                        Err(FatalError::Net(m))
                    }
                }
            }
        }
    }

    /// Zero-copy rendezvous: allocate a send id, ship the RTS.
    #[allow(clippy::too_many_arguments)]
    fn post_rendezvous(
        &self,
        rank: Rank,
        target_dev: DevId,
        buf: SendBuf,
        tag: Tag,
        comp: Option<Comp>,
        policy: MatchingPolicy,
        user_ctx: u64,
        rcomp: Option<RComp>,
        allow_retry: bool,
    ) -> Result<PostResult> {
        let size = buf.len() as u64;
        self.inner.stats.bump(|c| &c.rendezvous);
        let send_id = self.inner.rdv_sends.insert(RdvSend { buf, comp, tag, user_ctx });
        let (ty, aux) = match rcomp {
            Some(rc) => (MsgType::RtsAm, rc),
            None => (MsgType::RtsSr, 0),
        };
        let imm = Header::new(ty, policy, tag, aux).encode();
        let payload = RtsPayload { send_id, size }.encode();
        match self.inner.net.post_send(rank, target_dev, &payload, imm, 0) {
            Ok(()) => Ok(PostResult::Posted),
            Err(NetError::Retry(r)) => {
                if allow_retry {
                    // Back the rendezvous out entirely; the user
                    // resubmits. The `rendezvous` bump above counts the
                    // attempt; `rendezvous_retried` keeps the stats
                    // reconcilable (started = rendezvous - retried).
                    self.inner.rdv_sends.remove(send_id);
                    self.inner.stats.bump(|c| &c.rendezvous_retried);
                    Ok(PostResult::Retry(r.into()))
                } else {
                    self.push_backlog(Backlogged::Ctrl {
                        target: rank,
                        target_dev,
                        payload: self.inner.buf_pool.stage_copy(&payload),
                        imm,
                    });
                    Ok(PostResult::Posted)
                }
            }
            Err(NetError::Fatal(m)) => {
                self.inner.rdv_sends.remove(send_id);
                Err(FatalError::Net(m))
            }
        }
    }

    /// RMA put (direct write, optional remote signal).
    fn post_put_impl(&self, args: CommArgs) -> Result<PostResult> {
        let buf = args
            .send_buf
            .ok_or_else(|| FatalError::InvalidArg("put requires a local buffer".into()))?;
        let (rkey, offset) = args.remote_buf.unwrap();
        let target_dev = args.target_dev.unwrap_or_else(|| self.dev_id());
        let imm = args
            .remote_comp
            .map(|rc| Header::new(MsgType::PutSignal, args.policy, args.tag, rc).encode());
        let data = self.inner.stage_payload(&buf);
        let ctx = self.inner.ctx_encode(OpCtx::Put {
            comp: args.comp,
            buf,
            rank: args.rank,
            tag: args.tag,
            user_ctx: args.user_ctx,
        });
        match self.inner.net.post_write(args.rank, target_dev, &data, rkey, offset, imm, ctx) {
            Ok(()) => Ok(PostResult::Posted),
            Err(e) => {
                // SAFETY: rejected post; context never handed over.
                let _op = unsafe { self.inner.ctx_decode(ctx) }?;
                match e {
                    NetError::Retry(r) => Ok(PostResult::Retry(r.into())),
                    NetError::Fatal(m) => Err(FatalError::Net(m)),
                }
            }
        }
    }

    /// RMA get (direct read, optional remote signal — the extension the
    /// paper leaves unimplemented; see `proto` module docs).
    fn post_get_impl(&self, args: CommArgs) -> Result<PostResult> {
        let buf = args
            .recv_buf
            .ok_or_else(|| FatalError::InvalidArg("get requires a local buffer".into()))?;
        let (rkey, offset) = args.remote_buf.unwrap();
        let target_dev = args.target_dev.unwrap_or_else(|| self.dev_id());
        let signal = args.remote_comp.map(|rc| (target_dev, rc));
        let len = buf.len();
        let ptr = buf.as_ptr() as *mut u8;
        let ctx = self.inner.ctx_encode(OpCtx::Get {
            comp: args.comp,
            buf,
            rank: args.rank,
            tag: args.tag,
            user_ctx: args.user_ctx,
            signal,
        });
        // SAFETY: the buffer lives in the OpCtx until the ReadDone
        // completion, satisfying the descriptor contract.
        let desc = unsafe { RecvBufDesc::new(ptr, len, ctx) };
        match self.inner.net.post_read(args.rank, desc, rkey, offset) {
            Ok(()) => Ok(PostResult::Posted),
            Err(e) => {
                // SAFETY: rejected post; context never handed over.
                let _op = unsafe { self.inner.ctx_decode(ctx) }?;
                match e {
                    NetError::Retry(r) => Ok(PostResult::Retry(r.into())),
                    NetError::Fatal(m) => Err(FatalError::Net(m)),
                }
            }
        }
    }

    /// Receive: insert into the matching engine; deliver immediately on an
    /// unexpected match.
    fn post_recv_impl(&self, args: CommArgs) -> Result<PostResult> {
        let buf = args
            .recv_buf
            .ok_or_else(|| FatalError::InvalidArg("recv requires a local buffer".into()))?;
        let comp = args
            .comp
            .ok_or_else(|| FatalError::InvalidArg("recv requires a completion object".into()))?;
        let engine = &self.inner.rt.matching;
        let key = engine.key_for(args.rank, args.tag, args.policy);
        let entry = MatchEntry::Recv(RecvEntry {
            buf,
            comp,
            user_ctx: args.user_ctx,
            device: self.clone(),
        });
        match engine.insert(key, entry, MatchKind::Recv) {
            None => Ok(PostResult::Posted),
            Some((unexpected, mine)) => {
                let MatchEntry::Recv(recv) = mine else { unreachable!() };
                match unexpected {
                    MatchEntry::UnexpEager { src, tag, data } => {
                        // Deliver synchronously: the operation is done and
                        // the completion object will not be signaled.
                        let (_comp, desc) = self.finish_matched_recv(recv, src, tag, data)?;
                        Ok(PostResult::Done(desc))
                    }
                    MatchEntry::UnexpRts { src, src_dev, tag, send_id, size } => {
                        self.start_rtr(
                            src,
                            src_dev,
                            tag,
                            send_id,
                            size,
                            RdvBuf::Owned(recv.buf),
                            recv.comp,
                            recv.user_ctx,
                            false,
                        )?;
                        Ok(PostResult::Posted)
                    }
                    MatchEntry::Recv(_) => unreachable!("recv matched recv"),
                }
            }
        }
    }

    /// Copies an unexpected eager payload into a matched receive's
    /// buffer and builds the completion descriptor. This is the one copy
    /// the zero-copy receive path keeps: the user posted their own
    /// buffer, so the data must land there.
    fn finish_matched_recv(
        &self,
        recv: RecvEntry,
        src: Rank,
        tag: Tag,
        data: DataBuf,
    ) -> Result<(Comp, CompDesc)> {
        let mut buf = recv.buf;
        let payload = data.as_slice();
        if payload.len() > buf.len() {
            return Err(FatalError::InvalidArg(format!(
                "receive buffer too small: {} < {}",
                buf.len(),
                payload.len()
            )));
        }
        buf[..payload.len()].copy_from_slice(payload);
        self.inner.stats.bump(|c| &c.copied_deliveries);
        let len = payload.len();
        Ok((
            recv.comp,
            CompDesc {
                rank: src,
                tag,
                data: DataBuf::Partial(buf, len),
                user_ctx: recv.user_ctx,
                kind: CompKind::Recv,
            },
        ))
    }

    // ------------------------------------------------------------------
    // Rendezvous plumbing (paper Figure 1, steps 8 & 10)
    // ------------------------------------------------------------------

    /// Target side: register the buffer, record the pending receive, and
    /// answer RTR.
    #[allow(clippy::too_many_arguments)]
    fn start_rtr(
        &self,
        src: Rank,
        src_dev: DevId,
        tag: Tag,
        send_id: u32,
        size: usize,
        buf: RdvBuf,
        comp: Comp,
        user_ctx: u64,
        is_am: bool,
    ) -> Result<()> {
        if size > buf.len() {
            return Err(FatalError::InvalidArg(format!(
                "receive buffer too small for rendezvous: {} < {size}",
                buf.len()
            )));
        }
        let mr = self.inner.net.register(buf.as_ptr(), size).map_err(net_fatal)?;
        let recv_id =
            self.inner.rdv_recvs.insert(RdvRecv { buf, mr, comp, user_ctx, src, tag, size, is_am });
        let payload = RtrPayload { send_id, recv_id, rkey: mr.rkey.0 }.encode();
        let imm = Header::new(MsgType::Rtr, MatchingPolicy::RankTag, tag, 0).encode();
        match self.inner.net.post_send(src, src_dev, &payload, imm, 0) {
            Ok(()) => Ok(()),
            Err(NetError::Retry(_)) => {
                // The progress engine cannot bounce this to the user:
                // park it in the backlog (paper §4.1.5).
                self.push_backlog(Backlogged::Ctrl {
                    target: src,
                    target_dev: src_dev,
                    payload: self.inner.buf_pool.stage_copy(&payload),
                    imm,
                });
                Ok(())
            }
            Err(NetError::Fatal(m)) => Err(FatalError::Net(m)),
        }
    }

    /// Source side: RTR arrived. Move the pending send out of the table
    /// (one table-lock acquisition for the whole transfer) into an
    /// [`RdvActive`] and start writing chunks.
    fn start_rdv_active(&self, target: Rank, target_dev: DevId, rtr: RtrPayload) -> Result<()> {
        // Increment before the table remove so `pending_rendezvous`
        // never transiently undercounts.
        self.inner.rdv_active.fetch_add(1, Ordering::Relaxed);
        let Some(entry) = self.inner.rdv_sends.remove(rtr.send_id) else {
            self.inner.rdv_active.fetch_sub(1, Ordering::Relaxed);
            return Err(FatalError::Net(format!("RTR for unknown send id {}", rtr.send_id)));
        };
        let cfg = &self.inner.rt.config;
        let total = entry.buf.len();
        let chunk = if cfg.rdv_chunking { cfg.rdv_chunk_size.min(total) } else { total };
        let nchunks = total.div_ceil(chunk);
        let max_inflight = cfg.rdv_max_inflight.min(nchunks).max(1);
        let contiguous = entry.buf.as_contiguous().is_some();
        let fin_imm = Header::new(MsgType::Fin, MatchingPolicy::RankTag, 0, rtr.recv_id).encode();
        let recycled = if self.inner.recycle { self.inner.rdv_reuse.lock().pop() } else { None };
        let active = match recycled {
            Some(mut arc) => {
                // Reuse a finished transfer's shell (Arc + pump lock +
                // scratch ring) instead of allocating a new one.
                let a = Arc::get_mut(&mut arc)
                    .expect("recycled transfer shells have a unique reference");
                a.target = target;
                a.target_dev = target_dev;
                a.rkey = Rkey(rtr.rkey);
                a.fin_imm = fin_imm;
                a.total = total;
                a.chunk = chunk;
                a.nchunks = nchunks;
                a.max_inflight = max_inflight;
                a.tag = entry.tag;
                a.user_ctx = entry.user_ctx;
                a.inflight.store(0, Ordering::Relaxed);
                {
                    let mut p = a.pump.lock();
                    p.buf = Some(entry.buf);
                    p.comp = entry.comp;
                    p.next = 0;
                    p.done = 0;
                    p.seg = 0;
                    p.seg_off = 0;
                    if contiguous {
                        p.scratch.clear();
                    } else {
                        // Keep surviving slots' pooled gather buffers;
                        // their size is re-checked against the new chunk
                        // size on first use.
                        p.scratch.resize_with(max_inflight, ScratchSlot::default);
                        debug_assert!(p.scratch.iter().all(|s| !s.busy));
                    }
                }
                arc
            }
            None => Arc::new(RdvActive {
                target,
                target_dev,
                rkey: Rkey(rtr.rkey),
                fin_imm,
                total,
                chunk,
                nchunks,
                max_inflight,
                tag: entry.tag,
                user_ctx: entry.user_ctx,
                inflight: AtomicUsize::new(0),
                pump: SpinLock::new(RdvPump {
                    buf: Some(entry.buf),
                    comp: entry.comp,
                    next: 0,
                    done: 0,
                    seg: 0,
                    seg_off: 0,
                    scratch: if contiguous {
                        Vec::new()
                    } else {
                        (0..max_inflight).map(|_| ScratchSlot::default()).collect()
                    },
                }),
            }),
        };
        if self.pump_rdv(&active)? {
            self.push_backlog(Backlogged::RdvPump { active });
        }
        Ok(())
    }

    /// Drives one transfer's chunk window: posts chunks until the payload
    /// is fully posted, the inflight window fills, or the wire pushes
    /// back. Serialized per transfer by the pump lock; acquires no table
    /// locks (the chunk-continuation hot path). Returns whether the
    /// transfer stalled (wire full with nothing in flight to re-drive
    /// it) — the caller must then park it in the backlog. (A completion
    /// racing with the park may pump and even park a duplicate; the pump
    /// is idempotent, so a stale backlog entry is a no-op.)
    fn pump_rdv(&self, active: &Arc<RdvActive>) -> Result<bool> {
        let mut st = active.pump.lock();
        while st.next < active.total
            && active.inflight.load(Ordering::Relaxed) < active.max_inflight
        {
            let off = st.next;
            let len = active.chunk.min(active.total - off);
            let last = off + len == active.total;
            // FIN rides the last chunk; posting order is serialized by
            // the pump lock, so it reaches the wire after every earlier
            // chunk.
            let imm = last.then_some(active.fin_imm);
            // Split borrows: the gather path reads `buf` while filling a
            // scratch slot.
            let RdvPump { buf, scratch, seg, seg_off, .. } = &mut *st;
            let buf_ref = buf.as_ref().expect("active transfer keeps its buffer");
            let (mut nseg, mut nseg_off) = (*seg, *seg_off);
            let (data, slot_idx): (&[u8], Option<usize>) = match buf_ref.as_contiguous() {
                Some(contig) => (&contig[off..off + len], None),
                None => {
                    let SendBuf::Iovec(segs) = buf_ref else {
                        unreachable!("non-contiguous SendBuf is Iovec")
                    };
                    // inflight < max_inflight guarantees a free slot:
                    // each busy slot is owned by one in-flight chunk, and
                    // the completion handler frees the slot before
                    // decrementing inflight, both under this pump lock.
                    let idx = scratch.iter().position(|s| !s.busy).expect("free scratch slot");
                    let slot = &mut scratch[idx];
                    // A recycled transfer shell may carry slots sized for
                    // a previous (smaller) chunk size: re-check.
                    if slot.buf.as_ref().is_some_and(|b| b.len() >= active.chunk) {
                        self.inner.stats.bump(|c| &c.rdv_scratch_reuses);
                    } else {
                        slot.buf = Some(self.inner.buf_pool.take_len(active.chunk));
                    }
                    let out = slot.buf.as_mut().expect("slot allocated");
                    gather_iovec(segs, &mut nseg, &mut nseg_off, &mut out[..len]);
                    slot.busy = true;
                    (&out[..len], Some(idx))
                }
            };
            let ctx =
                self.inner.ctx_encode(OpCtx::RdvChunk { active: active.clone(), slot: slot_idx });
            match self.inner.net.post_write(
                active.target,
                active.target_dev,
                data,
                active.rkey,
                off,
                imm,
                ctx,
            ) {
                Ok(()) => {
                    st.next = off + len;
                    st.seg = nseg;
                    st.seg_off = nseg_off;
                    let now = active.inflight.fetch_add(1, Ordering::Relaxed) + 1;
                    self.inner.stats.bump(|c| &c.rdv_chunks_posted);
                    self.inner.stats.raise(|c| &c.rdv_inflight_hwm, now as u64);
                }
                Err(NetError::Retry(_)) => {
                    // SAFETY: rejected post; context never handed over.
                    unsafe { self.inner.ctx_decode(ctx) }?;
                    if let Some(idx) = slot_idx {
                        st.scratch[idx].busy = false;
                    }
                    // With chunks in flight, their completions re-drive
                    // the transfer; otherwise report the stall so the
                    // caller parks it for the progress loop.
                    return Ok(active.inflight.load(Ordering::Relaxed) == 0);
                }
                Err(NetError::Fatal(m)) => {
                    // SAFETY: rejected post; context never handed over.
                    unsafe { self.inner.ctx_decode(ctx) }?;
                    return Err(FatalError::Net(m));
                }
            }
        }
        Ok(false)
    }

    // ------------------------------------------------------------------
    // Progress (paper Figure 1, steps 3-8)
    // ------------------------------------------------------------------

    /// Makes progress on this device: drains the backlog, polls the
    /// network, reacts to completions, and replenishes pre-posted
    /// receives. Returns whether any work was done.
    pub fn progress(&self) -> Result<bool> {
        self.inner.stats.bump(|c| &c.progress_calls);
        let mut did = false;
        did |= self.drain_backlog()?;
        did |= self.retry_pending_inbound()?;
        if self.inner.coalescer.enabled() {
            did |= self.flush_idle_coalesced()?;
        }
        let batch = self.inner.rt.config.progress_batch;
        // Reusable CQE scratch: the try-lock winner polls into the
        // persistent buffer. A concurrent loser falls back to an empty
        // local vector — which never allocates, because its poll bounces
        // off the CQ trylock (held by the winner) before anything is
        // pushed.
        let mut local: Vec<Cqe> = Vec::new();
        let mut guard = self.inner.cqe_scratch.try_lock();
        let cqes: &mut Vec<Cqe> = match guard.as_mut() {
            Some(g) => {
                g.clear();
                g
            }
            None => &mut local,
        };
        match self.inner.net.poll_cq(cqes, batch) {
            Ok(n) => {
                did |= n > 0;
                for cqe in cqes.drain(..) {
                    self.handle_cqe(cqe)?;
                }
            }
            Err(NetError::Retry(_)) => {
                // Another thread holds the poll lock: it is making
                // progress on our behalf (trylock wrapper, §4.2.2).
                return Ok(did);
            }
            Err(NetError::Fatal(m)) => return Err(FatalError::Net(m)),
        }
        self.replenish_recvs()?;
        if did {
            self.inner.stats.bump(|c| &c.progress_useful);
        }
        Ok(did)
    }

    /// Worker-side progress entry point: defers to the runtime's
    /// progress mode before really polling.
    ///
    /// * `Workers` (or no engine running) — polls like
    ///   [`progress`](Self::progress), counting a `worker_polls` stat.
    /// * `Dedicated` with the engine running — a no-op (`Ok(false)`):
    ///   the dedicated threads own all polling.
    /// * `Hybrid` with the engine running — steals a poll only while
    ///   this device's dedicated thread is parked.
    ///
    /// Useful worker polls ring the runtime's completion bell while an
    /// engine runs, so threads parked in `Runtime::wait_until` observe
    /// completions delivered by a stealing worker, not just by the
    /// engine.
    pub fn worker_progress(&self) -> Result<bool> {
        use crate::progress::ProgressMode;
        let engine_active = self.inner.rt.progress.engine_active();
        match self.inner.rt.config.progress_mode {
            ProgressMode::Dedicated(_) if engine_active => return Ok(false),
            ProgressMode::Hybrid(_)
                if engine_active && self.inner.dedicated_active.load(Ordering::Relaxed) =>
            {
                return Ok(false)
            }
            _ => {}
        }
        self.inner.stats.bump(|c| &c.worker_polls);
        let did = self.progress()?;
        if did && engine_active {
            self.inner.rt.comp_bell.ring();
        }
        Ok(did)
    }

    /// Marks whether this device's dedicated progress thread is awake
    /// (progress-engine bookkeeping).
    pub(crate) fn set_dedicated_active(&self, active: bool) {
        self.inner.dedicated_active.store(active, Ordering::Release);
    }

    /// Counts a progress-thread park against this device.
    pub(crate) fn note_progress_park(&self) {
        self.inner.stats.bump(|c| &c.progress_parks);
    }

    /// Whether this device holds deferred work that needs more progress
    /// calls but will never ring a doorbell: backlogged sends, buffered
    /// coalesced sub-messages, inbound wire messages parked by RNR, or
    /// deliveries waiting on an rcomp registration.
    /// A progress thread must not park while any of these are pending.
    pub(crate) fn has_deferred_work(&self) -> bool {
        !self.inner.backlog.is_empty()
            || self.inner.coalescer.pending() > 0
            || self.inner.net.inbound_pending() > 0
            || !self.inner.pending_inbound.lock().is_empty()
    }

    /// Parks a request in the backlog, counting it. Rings the device
    /// doorbell: in dedicated-progress modes the worker that parked this
    /// work never polls, so the (possibly parked) progress thread that
    /// owns the device must be told the backlog is non-empty.
    fn push_backlog(&self, item: Backlogged) {
        self.inner.stats.bump(|c| &c.backlogged);
        self.inner.backlog.push(item);
        if let Some(bell) = &self.inner.bell {
            bell.ring();
        }
    }

    /// Ships one coalesced frame; a full wire parks it in the backlog
    /// (like any control message the runtime itself must send). A frame
    /// also parks when the backlog is non-empty: an earlier frame may be
    /// waiting there, and frames for one destination must reach the wire
    /// in creation order (the backlog drains FIFO).
    fn post_frame(&self, frame: Frame) -> Result<()> {
        self.inner.stats.bump(|c| &c.coalesce_flushes);
        let Frame { target, target_dev, data, count } = frame;
        let imm = Header::new(MsgType::Coalesced, MatchingPolicy::None, 0, count as u32).encode();
        if !self.inner.backlog.is_empty() {
            self.push_backlog(Backlogged::Ctrl { target, target_dev, payload: data, imm });
            return Ok(());
        }
        match self.inner.net.post_send(target, target_dev, &data, imm, 0) {
            Ok(()) => Ok(()),
            Err(NetError::Retry(_)) => {
                self.push_backlog(Backlogged::Ctrl { target, target_dev, payload: data, imm });
                Ok(())
            }
            Err(NetError::Fatal(m)) => Err(FatalError::Net(m)),
        }
    }

    /// Ships every destination's buffer that sat idle for a full
    /// progress epoch (buffers being actively appended to are left to
    /// fill). Returns whether anything shipped.
    fn flush_idle_coalesced(&self) -> Result<bool> {
        let mut did = false;
        self.inner.coalescer.take_idle_with(|frame| {
            did = true;
            self.post_frame(frame)
        })?;
        Ok(did)
    }

    /// Ships every open coalescing buffer now (explicit flush — e.g.
    /// before a termination barrier). Returns whether anything shipped.
    pub fn flush_coalesced(&self) -> Result<bool> {
        let mut did = false;
        self.inner.coalescer.take_all_with(|frame| {
            did = true;
            self.post_frame(frame)
        })?;
        Ok(did)
    }

    /// Sub-messages buffered for coalescing but not yet on the wire.
    /// They need further [`progress`](Device::progress) calls (or an
    /// explicit [`flush_coalesced`](Device::flush_coalesced)) to ship.
    pub fn coalesce_pending(&self) -> usize {
        self.inner.coalescer.pending()
    }

    /// Retries postponed requests (paper Figure 1, step 3). Consecutive
    /// plain sends to one `(target, target_dev)` submit as a single
    /// batched post, amortizing the fabric's posting lock over the run.
    fn drain_backlog(&self) -> Result<bool> {
        if self.inner.backlog.is_empty() {
            return Ok(false);
        }
        let mut did = false;
        // Pumps that stalled this drain are held aside and re-parked
        // after the loop: unrelated entries queued behind them still get
        // attempted this round (the wire may accept sends to other
        // targets), and the drain cannot spin re-popping them.
        let mut stalled_pumps: Vec<Arc<RdvActive>> = Vec::new();
        loop {
            let mut run = self.inner.backlog.pop_run(BACKLOG_BATCH);
            match run.len() {
                0 => break,
                1 => match run.pop().unwrap() {
                    Backlogged::Ctrl { target, target_dev, payload, imm } => {
                        match self.inner.net.post_send(target, target_dev, &payload, imm, 0) {
                            Ok(()) => did = true,
                            Err(NetError::Retry(_)) => {
                                self.inner.backlog.push_front(Backlogged::Ctrl {
                                    target,
                                    target_dev,
                                    payload,
                                    imm,
                                });
                                break;
                            }
                            Err(NetError::Fatal(m)) => return Err(FatalError::Net(m)),
                        }
                    }
                    Backlogged::RdvPump { active } => {
                        if self.pump_rdv(&active)? {
                            stalled_pumps.push(active);
                        } else {
                            did = true;
                        }
                    }
                    Backlogged::UserSend { target, target_dev, data, imm, ctx } => {
                        match self.inner.net.post_send(target, target_dev, &data, imm, ctx) {
                            Ok(()) => did = true,
                            Err(NetError::Retry(_)) => {
                                self.inner.backlog.push_front(Backlogged::UserSend {
                                    target,
                                    target_dev,
                                    data,
                                    imm,
                                    ctx,
                                });
                                break;
                            }
                            Err(NetError::Fatal(m)) => return Err(FatalError::Net(m)),
                        }
                    }
                },
                _ => {
                    // A run of plain sends to one destination (pop_run
                    // guarantees the shape): one batched submission.
                    let (target, target_dev) = match &run[0] {
                        Backlogged::Ctrl { target, target_dev, .. }
                        | Backlogged::UserSend { target, target_dev, .. } => (*target, *target_dev),
                        Backlogged::RdvPump { .. } => unreachable!("rdv pump in run"),
                    };
                    let descs: Vec<SendDesc<'_>> = run
                        .iter()
                        .map(|item| match item {
                            Backlogged::Ctrl { payload, imm, .. } => {
                                SendDesc { data: payload.as_ref(), imm: *imm, ctx: 0 }
                            }
                            Backlogged::UserSend { data, imm, ctx, .. } => {
                                SendDesc { data: data.as_ref(), imm: *imm, ctx: *ctx }
                            }
                            Backlogged::RdvPump { .. } => unreachable!("rdv pump in run"),
                        })
                        .collect();
                    match self.inner.net.post_send_batch(target, target_dev, &descs) {
                        Ok(posted) => {
                            drop(descs);
                            did |= posted > 0;
                            self.inner.stats.bump(|c| &c.batch_posts);
                            self.inner.stats.add(|c| &c.batch_posted_msgs, posted as u64);
                            if posted < run.len() {
                                // Partial progress: the wire filled
                                // mid-batch. Re-park the unposted tail
                                // in order and stop.
                                self.inner.backlog.push_front_run(run.drain(posted..));
                                break;
                            }
                        }
                        Err(NetError::Retry(_)) => {
                            drop(descs);
                            self.inner.backlog.push_front_run(run.into_iter());
                            break;
                        }
                        Err(NetError::Fatal(m)) => return Err(FatalError::Net(m)),
                    }
                }
            }
        }
        for active in stalled_pumps {
            self.push_backlog(Backlogged::RdvPump { active });
        }
        Ok(did)
    }

    /// Keeps the shared receive queue stocked (paper Figure 1, step 7).
    ///
    /// Low-watermark hysteresis: while the posted count sits above the
    /// watermark this is one relaxed atomic read and no lock traffic.
    /// Once it falls to the watermark, one [`NetDevice::post_recv_batch`]
    /// call refills back to the prepost target under a single SRQ/
    /// endpoint-lock acquisition — instead of the old per-packet
    /// `post_recv` top-up on every progress call.
    fn replenish_recvs(&self) -> Result<()> {
        let cfg = &self.inner.rt.config;
        let target = cfg.prepost;
        let posted = self.inner.net.posted_recvs();
        if posted > cfg.effective_prepost_watermark() || posted >= target {
            return Ok(());
        }
        // Persistent refill scratch: a busy lock means another thread is
        // already refilling this device — skip, it has us covered.
        let Some(mut scratch) = self.inner.replenish_scratch.try_lock() else {
            return Ok(());
        };
        let ReplenishScratch { packets, descs } = &mut *scratch;
        packets.clear();
        descs.clear();
        for _ in 0..target - posted {
            let Some(packet) = self.inner.rt.pool.get() else { break };
            packets.push(packet);
        }
        if packets.is_empty() {
            return Ok(());
        }
        // SAFETY: each packet's slot stays checked out (leaked below)
        // until the receive completion reclaims it.
        descs.extend(
            packets
                .iter()
                .map(|p| unsafe { RecvBufDesc::new(p.raw_ptr(), p.capacity(), p.index() as u64) }),
        );
        match self.inner.net.post_recv_batch(descs) {
            Ok(n) => {
                self.inner.stats.bump(|c| &c.replenish_batches);
                self.inner.stats.add(|c| &c.replenish_posted, n as u64);
                for p in packets.drain(..n) {
                    p.leak();
                }
                // The unposted tail (if any) drops back to the pool.
                packets.clear();
                Ok(())
            }
            // Lock busy: every packet drops back; retry next progress.
            Err(NetError::Retry(_)) => {
                packets.clear();
                Ok(())
            }
            Err(NetError::Fatal(m)) => Err(FatalError::Net(m)),
        }
    }

    /// Reacts to one completion (paper Figure 1, steps 4-8).
    fn handle_cqe(&self, cqe: Cqe) -> Result<()> {
        self.inner.stats.bump(|c| &c.completions);
        match cqe.kind {
            CqeKind::SendDone | CqeKind::WriteDone | CqeKind::ReadDone => {
                if cqe.ctx == 0 {
                    return Ok(()); // inject / control message
                }
                // SAFETY: ctx was encoded at post time and this is its
                // unique completion.
                let op = unsafe { self.inner.ctx_decode(cqe.ctx) }?;
                self.handle_local_completion(op)
            }
            CqeKind::RecvDone => {
                // SAFETY: receive contexts are leaked packet indices.
                let packet = unsafe { self.inner.rt.pool.reclaim(cqe.ctx as u32, cqe.len) };
                self.handle_incoming(cqe, packet)
            }
            CqeKind::WriteImmRecv => {
                // A pre-posted receive was consumed without data.
                // SAFETY: as above.
                let packet = unsafe { self.inner.rt.pool.reclaim(cqe.ctx as u32, 0) };
                drop(packet); // immediately recycled
                let hdr = Header::decode(cqe.imm)?;
                match hdr.ty {
                    MsgType::Fin => self.handle_fin(hdr.aux),
                    MsgType::PutSignal => self.signal_rcomp(hdr.aux, cqe.src_rank, hdr.tag),
                    other => Err(FatalError::Net(format!("unexpected write-imm type {other:?}"))),
                }
            }
        }
    }

    /// A local (source-side) completion.
    fn handle_local_completion(&self, op: OpCtx) -> Result<()> {
        match op {
            OpCtx::EagerSend { comp, buf, rank, tag, user_ctx } => {
                if let Some(comp) = comp {
                    comp.signal(CompDesc {
                        rank,
                        tag,
                        data: DataBuf::SendBuf(buf),
                        user_ctx,
                        kind: CompKind::Send,
                    });
                }
                Ok(())
            }
            OpCtx::RdvChunk { active, slot } => {
                let finished = {
                    let mut st = active.pump.lock();
                    if let Some(idx) = slot {
                        st.scratch[idx].busy = false;
                    }
                    // The window-slot release must happen inside the pump
                    // critical section, after the scratch slot is freed: a
                    // concurrent pump checks `inflight < max_inflight`
                    // under this lock and relies on every freed window
                    // slot having already released its scratch slot.
                    active.inflight.fetch_sub(1, Ordering::Relaxed);
                    st.done += 1;
                    if st.done == active.nchunks {
                        Some((st.buf.take().expect("buffer present"), st.comp.take()))
                    } else {
                        None
                    }
                };
                match finished {
                    Some((buf, comp)) => {
                        if let Some(comp) = comp {
                            comp.signal(CompDesc {
                                rank: active.target,
                                tag: active.tag,
                                data: DataBuf::SendBuf(buf),
                                user_ctx: active.user_ctx,
                                kind: CompKind::Send,
                            });
                        }
                        self.inner.rdv_active.fetch_sub(1, Ordering::Relaxed);
                        // Recycle the transfer shell (Arc + lock + scratch
                        // ring) — but only when ours is the last reference:
                        // a stale backlog pump clone may still point here,
                        // and reusing the shell under it would corrupt an
                        // unrelated transfer.
                        if self.inner.recycle && Arc::strong_count(&active) == 1 {
                            let mut reuse = self.inner.rdv_reuse.lock();
                            if reuse.len() < RDV_REUSE_CAP {
                                reuse.push(active);
                            }
                        }
                        Ok(())
                    }
                    None => {
                        // Launch the next chunk(s) of this transfer.
                        if self.pump_rdv(&active)? {
                            self.push_backlog(Backlogged::RdvPump { active });
                        }
                        Ok(())
                    }
                }
            }
            OpCtx::Put { comp, buf, rank, tag, user_ctx } => {
                if let Some(comp) = comp {
                    comp.signal(CompDesc {
                        rank,
                        tag,
                        data: DataBuf::SendBuf(buf),
                        user_ctx,
                        kind: CompKind::Put,
                    });
                }
                Ok(())
            }
            OpCtx::Get { comp, buf, rank, tag, user_ctx, signal } => {
                if let Some((target_dev, rcomp)) = signal {
                    // Get-with-signal: notify the target that its data was
                    // read (extension; see proto docs).
                    let imm = Header::new(MsgType::GetSignal, MatchingPolicy::RankTag, tag, rcomp)
                        .encode();
                    match self.inner.net.post_send(rank, target_dev, &[], imm, 0) {
                        Ok(()) => {}
                        Err(NetError::Retry(_)) => self.push_backlog(Backlogged::Ctrl {
                            target: rank,
                            target_dev,
                            payload: PoolBuf::detached(Vec::new()),
                            imm,
                        }),
                        Err(NetError::Fatal(m)) => return Err(FatalError::Net(m)),
                    }
                }
                if let Some(comp) = comp {
                    comp.signal(CompDesc {
                        rank,
                        tag,
                        data: DataBuf::Owned(buf),
                        user_ctx,
                        kind: CompKind::Get,
                    });
                }
                Ok(())
            }
        }
    }

    /// An incoming message delivered into `packet` (paper Figure 1,
    /// steps 5-6).
    fn handle_incoming(&self, cqe: Cqe, packet: Packet) -> Result<()> {
        let hdr = Header::decode(cqe.imm)?;
        match hdr.ty {
            MsgType::Eager | MsgType::EagerAm => {
                let len = cqe.len;
                self.deliver_eager(cqe.src_rank, hdr, DataBuf::Packet(packet, len))
            }
            MsgType::RtsSr => {
                let rts = RtsPayload::decode(&packet.as_slice()[..cqe.len])?;
                drop(packet);
                let engine = &self.inner.rt.matching;
                let key = engine.key_for(cqe.src_rank, hdr.tag, hdr.policy);
                let entry = MatchEntry::UnexpRts {
                    src: cqe.src_rank,
                    src_dev: cqe.src_dev,
                    tag: hdr.tag,
                    send_id: rts.send_id,
                    size: rts.size as usize,
                };
                if let Some((matched, _mine)) = engine.insert(key, entry, MatchKind::Send) {
                    let MatchEntry::Recv(recv) = matched else {
                        return Err(FatalError::Net("RTS matched non-recv".into()));
                    };
                    recv.device.clone().start_rtr(
                        cqe.src_rank,
                        cqe.src_dev,
                        hdr.tag,
                        rts.send_id,
                        rts.size as usize,
                        RdvBuf::Owned(recv.buf),
                        recv.comp,
                        recv.user_ctx,
                        false,
                    )?;
                }
                Ok(())
            }
            MsgType::RtsAm => {
                let rts = RtsPayload::decode(&packet.as_slice()[..cqe.len])?;
                drop(packet);
                let Some(comp) = self.inner.rt.rcomp.read(hdr.aux as usize) else {
                    self.park_early_inbound(PendingInbound::RtsAm {
                        rcomp: hdr.aux,
                        src: cqe.src_rank,
                        src_dev: cqe.src_dev,
                        tag: hdr.tag,
                        send_id: rts.send_id,
                        size: rts.size as usize,
                    });
                    return Ok(());
                };
                // The runtime provides the landing storage for an
                // unexpected AM rendezvous: a pool-recycled bounce buffer.
                let buf = self.inner.buf_pool.take_len(rts.size as usize);
                self.start_rtr(
                    cqe.src_rank,
                    cqe.src_dev,
                    hdr.tag,
                    rts.send_id,
                    rts.size as usize,
                    RdvBuf::Pooled(buf),
                    comp,
                    0,
                    true,
                )
            }
            MsgType::Rtr => {
                let rtr = RtrPayload::decode(&packet.as_slice()[..cqe.len])?;
                drop(packet);
                self.start_rdv_active(cqe.src_rank, cqe.src_dev, rtr)
            }
            MsgType::GetSignal => {
                drop(packet);
                self.signal_rcomp(hdr.aux, cqe.src_rank, hdr.tag)
            }
            MsgType::Coalesced => {
                let subs = coalesce_unpack_ranges(&packet.as_slice()[..cqe.len])?;
                if hdr.aux as usize != subs.len() {
                    return Err(FatalError::Net(format!(
                        "coalesced frame count mismatch: header {} vs {}",
                        hdr.aux,
                        subs.len()
                    )));
                }
                if self.inner.rt.config.zero_copy_recv {
                    // Zero-copy demux: the frame packet becomes a shared
                    // refcounted buffer and every sub-message is handed
                    // out as a view into it; the slot returns to the pool
                    // when the last view drops.
                    let shared = packet.into_shared();
                    for (sub_imm, r) in subs {
                        let view = shared.view(r.start, r.end - r.start);
                        let hdr = Header::decode(sub_imm)?;
                        self.deliver_eager(cqe.src_rank, hdr, DataBuf::View(view))?;
                    }
                } else {
                    // Ablation path (PR-1 behaviour): copy every
                    // sub-payload out into an owned buffer.
                    for (sub_imm, r) in subs {
                        let data: Box<[u8]> = packet.as_slice()[r].into();
                        let hdr = Header::decode(sub_imm)?;
                        self.deliver_eager(cqe.src_rank, hdr, DataBuf::Owned(data))?;
                    }
                }
                Ok(())
            }
            MsgType::Fin | MsgType::PutSignal => {
                Err(FatalError::Net(format!("{:?} must arrive as write-immediate", hdr.ty)))
            }
        }
    }

    /// Delivers one eager payload — a standalone arrival (packet-backed)
    /// or one sub-message of a coalesced frame (view-backed, or an owned
    /// copy when zero-copy delivery is disabled) — through the matching
    /// engine (two-sided) or rcomp signaling (active message). The
    /// payload is parked as-is on a miss; no copy happens until (unless)
    /// a user-posted receive buffer consumes it.
    fn deliver_eager(&self, src: Rank, hdr: Header, data: DataBuf) -> Result<()> {
        match hdr.ty {
            MsgType::Eager => {
                let engine = &self.inner.rt.matching;
                let key = engine.key_for(src, hdr.tag, hdr.policy);
                let entry = MatchEntry::UnexpEager { src, tag: hdr.tag, data };
                if let Some((matched, mine)) = engine.insert(key, entry, MatchKind::Send) {
                    self.inner.stats.bump(|c| &c.matched);
                    let MatchEntry::Recv(recv) = matched else {
                        return Err(FatalError::Net("eager matched non-recv".into()));
                    };
                    let MatchEntry::UnexpEager { src, tag, data } = mine else { unreachable!() };
                    let (comp, desc) = self.finish_matched_recv(recv, src, tag, data)?;
                    comp.signal(desc);
                }
                Ok(())
            }
            MsgType::EagerAm => {
                match self.inner.rt.rcomp.read(hdr.aux as usize) {
                    Some(comp) => self.deliver_eager_am(&comp, src, hdr.tag, data),
                    None => self.park_early_inbound(PendingInbound::EagerAm {
                        rcomp: hdr.aux,
                        src,
                        tag: hdr.tag,
                        data,
                    }),
                }
                Ok(())
            }
            other => Err(FatalError::Net(format!("invalid eager payload type {other:?}"))),
        }
    }

    /// Target side of the rendezvous FIN: deliver the buffer.
    fn handle_fin(&self, recv_id: u32) -> Result<()> {
        let entry = self
            .inner
            .rdv_recvs
            .remove(recv_id)
            .ok_or_else(|| FatalError::Net(format!("FIN for unknown recv id {recv_id}")))?;
        self.inner.net.deregister(&entry.mr).map_err(net_fatal)?;
        entry.comp.signal(CompDesc {
            rank: entry.src,
            tag: entry.tag,
            data: entry.buf.into_databuf(entry.size),
            user_ctx: entry.user_ctx,
            kind: if entry.is_am { CompKind::Am } else { CompKind::Recv },
        });
        Ok(())
    }

    /// Signals a registered remote-completion object.
    fn signal_rcomp(&self, rcomp: u32, src: Rank, tag: Tag) -> Result<()> {
        match self.inner.rt.rcomp.read(rcomp as usize) {
            Some(comp) => comp.signal(CompDesc {
                rank: src,
                tag,
                data: DataBuf::Empty,
                user_ctx: 0,
                kind: CompKind::RemoteSignal,
            }),
            None => self.park_early_inbound(PendingInbound::RemoteSignal { rcomp, src, tag }),
        }
        Ok(())
    }

    /// Delivers an eager active message to its registered completion
    /// object, counting the delivery as zero-copy or copied.
    fn deliver_eager_am(&self, comp: &Comp, src: Rank, tag: Tag, data: DataBuf) {
        match &data {
            DataBuf::Packet(..) | DataBuf::View(_) => {
                self.inner.stats.bump(|c| &c.zero_copy_deliveries);
            }
            _ => self.inner.stats.bump(|c| &c.copied_deliveries),
        }
        comp.signal(CompDesc { rank: src, tag, data, user_ctx: 0, kind: CompKind::Am });
    }

    /// Parks an inbound delivery whose rcomp is not registered yet;
    /// retried on every progress call until the registration lands (see
    /// [`PendingInbound`]).
    fn park_early_inbound(&self, p: PendingInbound) {
        self.inner.stats.bump(|c| &c.early_inbound);
        self.inner.pending_inbound.lock().push(p);
    }

    /// Retries parked early-inbound deliveries whose rcomp may have
    /// been registered since. Still-unregistered entries are re-parked
    /// in arrival order. Returns whether anything was delivered.
    fn retry_pending_inbound(&self) -> Result<bool> {
        let pending = {
            let mut guard = self.inner.pending_inbound.lock();
            if guard.is_empty() {
                return Ok(false);
            }
            std::mem::take(&mut *guard)
        };
        let mut kept = Vec::new();
        let mut did = false;
        for p in pending {
            let Some(comp) = self.inner.rt.rcomp.read(p.rcomp() as usize) else {
                kept.push(p);
                continue;
            };
            did = true;
            match p {
                PendingInbound::EagerAm { src, tag, data, .. } => {
                    self.deliver_eager_am(&comp, src, tag, data);
                }
                PendingInbound::RtsAm { src, src_dev, tag, send_id, size, .. } => {
                    let buf = self.inner.buf_pool.take_len(size);
                    self.start_rtr(
                        src,
                        src_dev,
                        tag,
                        send_id,
                        size,
                        RdvBuf::Pooled(buf),
                        comp,
                        0,
                        true,
                    )?;
                }
                PendingInbound::RemoteSignal { src, tag, .. } => {
                    comp.signal(CompDesc {
                        rank: src,
                        tag,
                        data: DataBuf::Empty,
                        user_ctx: 0,
                        kind: CompKind::RemoteSignal,
                    });
                }
            }
        }
        if !kept.is_empty() {
            let mut guard = self.inner.pending_inbound.lock();
            // Entries parked while we held the taken batch arrived
            // after `kept`: splice them behind to keep arrival order.
            kept.append(&mut guard);
            *guard = kept;
        }
        Ok(did)
    }

    /// Backlog depth (diagnostics).
    pub fn backlog_len(&self) -> usize {
        self.inner.backlog.len()
    }

    /// Posted-but-unshipped wire work (diagnostics): frames a
    /// deferred-flush transport (tcp) has accepted but not yet written
    /// to a socket. They only move on progress calls, so quiescence
    /// loops must keep polling until this drains — a rank that blocks
    /// elsewhere (an out-of-band collective, say) with frames queued
    /// strands every peer waiting on those bytes.
    pub fn outbound_pending(&self) -> usize {
        self.inner.net.outbound_pending()
    }

    /// Pending rendezvous operations (diagnostics): sends awaiting RTR
    /// or mid-transfer, and receives awaiting FIN. Advisory: each table
    /// shard is sampled in turn, so the totals are a consistent
    /// per-shard snapshot, not an atomic cross-shard view — suitable for
    /// quiescence polling, not for exact accounting while transfers are
    /// being posted concurrently.
    pub fn pending_rendezvous(&self) -> (usize, usize) {
        let sends = self.inner.rdv_sends.len() + self.inner.rdv_active.load(Ordering::Relaxed);
        (sends, self.inner.rdv_recvs.len())
    }
}

impl Drop for DeviceInner {
    fn drop(&mut self) {
        // Reclaim everything still checked out to the fabric so packet
        // and context memory is returned: undelivered completions carry
        // either a packet index (receive side) or an encoded OpCtx
        // (local side); still-posted receives carry packet indices.
        let (cqes, descs) = self.net.teardown();
        for cqe in cqes {
            match cqe.kind {
                CqeKind::RecvDone | CqeKind::WriteImmRecv => {
                    // SAFETY: receive contexts are leaked packet indices.
                    drop(unsafe { self.rt.pool.reclaim(cqe.ctx as u32, 0) });
                }
                CqeKind::SendDone | CqeKind::WriteDone | CqeKind::ReadDone => {
                    if cqe.ctx != 0 {
                        // SAFETY: nonzero local contexts were produced by
                        // this device's ctx_encode and never decoded.
                        let _ = unsafe { self.ctx_decode(cqe.ctx) };
                    }
                }
            }
        }
        for d in descs {
            // SAFETY: posted receives are leaked packet indices.
            drop(unsafe { self.rt.pool.reclaim(d.ctx as u32, 0) });
        }
    }
}

impl std::fmt::Debug for Device {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Device")
            .field("rank", &self.rank())
            .field("dev_id", &self.dev_id())
            .finish()
    }
}

fn net_fatal(e: NetError) -> FatalError {
    match e {
        NetError::Fatal(m) => FatalError::Net(m),
        NetError::Retry(r) => FatalError::Net(format!("unexpected retry: {r:?}")),
    }
}
